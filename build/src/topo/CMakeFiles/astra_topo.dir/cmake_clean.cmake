file(REMOVE_RECURSE
  "CMakeFiles/astra_topo.dir/topology.cc.o"
  "CMakeFiles/astra_topo.dir/topology.cc.o.d"
  "libastra_topo.a"
  "libastra_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
