file(REMOVE_RECURSE
  "CMakeFiles/test_topo.dir/topo/scaleout_test.cc.o"
  "CMakeFiles/test_topo.dir/topo/scaleout_test.cc.o.d"
  "CMakeFiles/test_topo.dir/topo/topology_test.cc.o"
  "CMakeFiles/test_topo.dir/topo/topology_test.cc.o.d"
  "test_topo"
  "test_topo.pdb"
  "test_topo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
