/**
 * @file
 * A Stream is one chunk's journey through a multi-phase collective at
 * one node (the "chunk" of Table II once it has been issued).
 *
 * The set of a collective operation is divided into
 * preferred-set-splits chunks; each chunk becomes one Stream per
 * participating node. Streams with the same id on different nodes
 * cooperate by exchanging messages; a Stream also implements
 * AlgContext, providing the running phase algorithm its window onto
 * the system layer.
 *
 * Timing bookkeeping per phase (feeding the Fig. 12b breakdown):
 *   submittedAt           -> P0 ready-queue delay
 *   enqueuedAt[p]         \
 *   startedAt[p]           > queue delay of phase p (LSQ wait)
 *   finishedAt[p]         /  network/execution time of phase p
 */

#ifndef ASTRA_CORE_STREAM_HH
#define ASTRA_CORE_STREAM_HH

#include <memory>
#include <vector>

#include "collective/algorithm.hh"
#include "collective/chunk_state.hh"
#include "collective/phase_plan.hh"
#include "core/group_info.hh"

namespace astra
{

class Sys;

/**
 * Per-node completion tracker for one collective set (all its chunks).
 */
struct CollectiveHandle
{
    CollectiveKind kind = CollectiveKind::None;
    Bytes totalBytes = 0;
    LayerId layer = -1;
    Tick issuedAt = 0;
    Tick completedAt = kTickInvalid;
    int remainingChunks = 0;
    std::function<void()> onComplete;

    bool done() const { return completedAt != kTickInvalid; }

    /** Communication latency of the whole set at this node. */
    Tick
    duration() const
    {
        return done() ? completedAt - issuedAt : kTickInvalid;
    }
};

/**
 * One chunk at one node.
 */
class Stream final : public AlgContext
{
  public:
    Stream(Sys &sys, StreamId id, CollectiveKind kind, Bytes chunk_bytes,
           PhasePlan plan, GroupInfo group,
           std::shared_ptr<CollectiveHandle> handle);

    // --- identity / plan ----------------------------------------------
    StreamId id() const { return _id; }
    CollectiveKind kind() const { return _kind; }
    Bytes chunkBytes() const { return _chunkBytes; }
    const PhasePlan &plan() const { return _plan; }
    const GroupInfo &group() const { return _group; }
    const std::shared_ptr<CollectiveHandle> &handle() const
    {
        return _handle;
    }

    /** Phase currently enqueued/active; -1 before dispatch. */
    int phase() const { return _phase; }

    /** True once the phase algorithm has been started. */
    bool phaseStarted() const { return _alg != nullptr; }

    /** Channel this stream uses in phase @p p (consistent cluster-wide
     *  because stream ids are). */
    int channelFor(int p) const;

    // --- AlgContext ----------------------------------------------------
    int groupSize() const override;
    int myRank() const override;
    int direction() const override;
    Bytes entryBytes() const override { return _entryBytes; }
    ChunkState &data() override { return _data; }
    void sendToRank(int dst_rank, Bytes bytes, int step,
                    std::shared_ptr<void> payload) override;
    void sendToRankVia(int dst_rank, int channel, Bytes bytes, int step,
                       std::shared_ptr<void> payload) override;
    int numChannels() const override;
    int myChannel() const override { return channelFor(_phase); }
    void scheduleAfter(Tick delay, EventCallback fn) override;
    Tick endpointDelay() const override;
    int phaseCoordOfGlobalRank(int global_rank) const override;
    void phaseDone() override;

    // --- driven by Sys / Scheduler --------------------------------------
    Tick submittedAt = kTickInvalid; //!< entered the ready queue
    std::vector<Tick> enqueuedAt;    //!< per phase: entered its LSQ
    std::vector<Tick> startedAt;     //!< per phase: algorithm started
    std::vector<Tick> finishedAt;    //!< per phase: algorithm finished

    /** Enter phase @p p: compute entry bytes (Sys calls, then LSQ). */
    void enterPhase(int p, Tick now);

    /** Admitted by the LSQ: instantiate and start the algorithm. */
    void startPhase(Tick now);

    /** Phase algorithm object (null while waiting). */
    PhaseAlgorithm *algorithm() { return _alg.get(); }

    /** Drop the algorithm (between phases / at completion). */
    void clearAlgorithm() { _alg.reset(); }

    /** The phase descriptor of the current phase. */
    const PhaseDesc &phaseDesc() const;

  private:
    Sys &_sys;
    StreamId _id;
    CollectiveKind _kind;
    Bytes _chunkBytes;
    PhasePlan _plan;
    GroupInfo _group;
    std::shared_ptr<CollectiveHandle> _handle;
    ChunkState _data;

    int _phase = -1;
    Bytes _entryBytes = 0;
    std::unique_ptr<PhaseAlgorithm> _alg;
};

} // namespace astra

#endif // ASTRA_CORE_STREAM_HH
