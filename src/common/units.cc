#include "common/units.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace astra
{

bool
tryParseBytes(const std::string &text, Bytes *out, std::string *err)
{
    if (text.empty()) {
        *err = "empty size string";
        return false;
    }
    const char *s = text.c_str();
    char *end = nullptr;
    double value = std::strtod(s, &end);
    if (end == s || value < 0) {
        *err = "malformed size string '" + text + "'";
        return false;
    }
    while (*end && std::isspace(static_cast<unsigned char>(*end)))
        ++end;
    double mult = 1;
    switch (std::toupper(static_cast<unsigned char>(*end))) {
      case '\0':
        break;
      case 'B':
        ++end;
        break;
      case 'K':
        mult = static_cast<double>(KiB);
        ++end;
        break;
      case 'M':
        mult = static_cast<double>(MiB);
        ++end;
        break;
      case 'G':
        mult = static_cast<double>(GiB);
        ++end;
        break;
      default:
        *err = "malformed size suffix in '" + text + "'";
        return false;
    }
    // Allow a trailing 'B' / "iB" after K/M/G.
    if (*end == 'i' || *end == 'I')
        ++end;
    if (*end == 'b' || *end == 'B')
        ++end;
    if (*end != '\0') {
        *err = "trailing junk in size string '" + text + "'";
        return false;
    }
    *out = static_cast<Bytes>(std::llround(value * mult));
    return true;
}

Bytes
parseBytes(const std::string &text)
{
    Bytes out = 0;
    std::string err;
    if (!tryParseBytes(text, &out, &err))
        fatal("%s", err.c_str());
    return out;
}

std::string
formatBytes(Bytes bytes)
{
    if (bytes >= GiB) {
        double g = static_cast<double>(bytes) / static_cast<double>(GiB);
        return strprintf("%.4gGB", g);
    }
    if (bytes >= MiB) {
        double m = static_cast<double>(bytes) / static_cast<double>(MiB);
        return strprintf("%.4gMB", m);
    }
    if (bytes >= KiB) {
        double k = static_cast<double>(bytes) / static_cast<double>(KiB);
        return strprintf("%.4gKB", k);
    }
    return strprintf("%lluB", static_cast<unsigned long long>(bytes));
}

std::string
formatTicks(Tick ticks)
{
    double us = static_cast<double>(ticks) / 1e3;
    return strprintf("%llu cycles (%.3f us)",
                     static_cast<unsigned long long>(ticks), us);
}

} // namespace astra
