#include "common/json.hh"

#include <cmath>
#include <cstdio>

namespace astra
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    // %.12g round-trips every value the simulator produces (tick
    // counts and byte totals fit in 2^40) without trailing noise.
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

} // namespace astra
