#!/usr/bin/env bash
# Static-analysis gate of the simulation integrity layer (see
# docs/validation.md):
#
#  1. a grep lint over src/ banning constructions that break the
#     determinism contract or the repo's performance rules:
#       - rand()/srand(): nondeterministic; simulations must be
#         bit-for-bit repeatable (use a seeded engine if randomness is
#         ever needed);
#       - wall-clock time (std::chrono, gettimeofday, time(NULL),
#         clock()): simulated time comes from the event queue only;
#       - float for ticks/sizes: 32-bit floats silently lose precision
#         above 2^24 cycles; use Tick/Bytes/double;
#       - naked `new`: the simulator owns memory through containers,
#         unique_ptr and arenas. Intentional exceptions carry a
#         trailing `// NOLINT` comment, which this lint honours.
#       - raw `throw` / `abort()`: error handling goes through
#         ASTRA_CHECK/fatal()/panic() (src/common/check.hh,
#         logging.hh), which report context and honour the
#         throw-on-fatal test hook; only those two modules may touch
#         the underlying machinery.
#  2. clang-tidy (checks in .clang-tidy) over src/, when a clang-tidy
#     binary and a compile_commands.json are available. Machines
#     without clang-tidy (like the pinned CI container, which ships
#     gcc only) run the grep lint alone and say so.
#
#   tools/lint.sh [BUILD_DIR]   # BUILD_DIR holds compile_commands.json
#                               # (default: build)
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
STATUS=0

# --- 1. grep lint ----------------------------------------------------
# Each entry: <ERE pattern>|<message>. Patterns are written against
# code, not prose: they anchor on call syntax so comment words like
# "asynchronously" never false-positive.
# An optional third argument is an ERE matched against `path:line:`
# prefixes; matching hits are allowlisted (for the one or two modules
# that legitimately own a banned construction).
run_grep_rule() {
    local pattern="$1" message="$2" allow="${3:-}"
    local hits
    hits=$(grep -rnE "$pattern" src --include='*.cc' --include='*.hh' \
        | grep -v '// NOLINT' || true)
    if [ -n "$allow" ] && [ -n "$hits" ]; then
        hits=$(echo "$hits" | grep -vE "$allow" || true)
    fi
    if [ -n "$hits" ]; then
        echo "lint: $message"
        echo "$hits" | sed 's/^/    /'
        STATUS=1
    fi
}

run_grep_rule '\<s?rand\(' \
    'rand()/srand() break simulation determinism'
run_grep_rule 'std::chrono|gettimeofday\(|time\(NULL\)|time\(nullptr\)|\<clock\(\)' \
    'wall-clock time in simulation code (simulated time only)'
run_grep_rule '\<float\>' \
    'float is too narrow for ticks/sizes (use Tick/Bytes/double)'
run_grep_rule '= *new\>|\<new [A-Za-z_][A-Za-z0-9_:<>]*(\(|\[|\{)' \
    'naked new (own memory via containers/unique_ptr/arenas)'
run_grep_rule '\<throw\>|\<abort\(' \
    'raw throw/abort (use ASTRA_CHECK/fatal()/panic() so failures report context)' \
    '^src/common/(check|logging)\.(cc|hh):'

if [ "$STATUS" -eq 0 ]; then
    echo "lint: grep rules clean"
fi

# --- 2. clang-tidy ---------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
    if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
        echo "lint: generating $BUILD_DIR/compile_commands.json"
        cmake -B "$BUILD_DIR" -S . \
            -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    fi
    echo "lint: clang-tidy over src/"
    if ! find src -name '*.cc' -print0 \
        | xargs -0 clang-tidy -p "$BUILD_DIR" --quiet; then
        STATUS=1
    fi
else
    echo "lint: clang-tidy not installed; ran grep rules only"
fi

if [ "$STATUS" -eq 0 ]; then
    echo "lint: all green"
else
    echo "lint: FAILED" >&2
fi
exit "$STATUS"
