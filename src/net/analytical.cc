#include "net/analytical.hh"

#include <cmath>

#include "common/check.hh"
#include "common/logging.hh"
#include "fault/fault.hh"
#include "net/validate.hh"

namespace astra
{

AnalyticalNetwork::AnalyticalNetwork(EventQueue &eq, const Topology &topo,
                                     const SimConfig &cfg,
                                     bool one_to_one)
    : _eq(eq), _fabric(topo, cfg, one_to_one), _routing(cfg.packetRouting),
      _routerLatency(cfg.routerLatency),
      _protocolDelay(cfg.scaleoutProtocolDelay),
      _freeAt(std::size_t(_fabric.numLinks()), 0),
      _validate(validationAtLeast(ValidateLevel::kBasic)),
      _busyUntil(_validate ? std::size_t(_fabric.numLinks()) : 0, 0),
      _metrics(cfg.netMetrics),
      _usage(std::size_t(_fabric.numLinks()))
{
    setEnergyParams(cfg.energy, cfg.flitWidthBits);

    const Topology &t = _fabric.topology();
    std::vector<std::string> names;
    std::vector<int> counts(std::size_t(t.numDims()), 0);
    for (int d = 0; d < t.numDims(); ++d)
        names.push_back(t.dim(d).name);
    for (LinkId l = 0; l < _fabric.numLinks(); ++l)
        ++counts[std::size_t(_fabric.link(l).dim)];
    setupUtilLanes(std::move(names), std::move(counts));
}

void
AnalyticalNetwork::send(Message msg)
{
    msg.sentAt = _eq.now();
    if (msg.src == msg.dst) {
        // Loopback: deliver on the next tick with no link usage.
        _eq.scheduleAfter(1, [this, msg] { deliver(msg); });
        return;
    }
    auto path = std::make_shared<std::vector<LinkId>>(
        _fabric.resolve(msg.src, msg.dst, msg.hint));
    // Transport-layer cost: messages leaving the pod pay the sender's
    // protocol-stack processing once (scale-out extension).
    Tick proto = 0;
    for (LinkId l : *path) {
        if (_fabric.link(l).cls == LinkClass::ScaleOut) {
            proto = _protocolDelay;
            break;
        }
    }
    if (proto > 0) {
        _eq.scheduleAfter(proto,
                          [this, msg = std::move(msg), path]() mutable {
                              hop(std::move(msg), path, 0);
                          });
        return;
    }
    hop(std::move(msg), std::move(path), 0);
}

void
AnalyticalNetwork::hop(Message msg,
                       std::shared_ptr<std::vector<LinkId>> path,
                       std::size_t idx)
{
    const LinkId l = (*path)[idx];
    const LinkDesc &desc = _fabric.link(l);
    const LinkParams &p = _fabric.params(desc.cls);
    Tick &free_at = _freeAt[std::size_t(l)];

    const Tick now = _eq.now();
    if (free_at > now) {
        if (_metrics) {
            // The wait accrues in segments: a transfer pre-empted by an
            // earlier FIFO waiter re-enters here and adds the next leg.
            LinkUsage &u = _usage[std::size_t(l)];
            u.queueWait += free_at - now;
            _waitHist.record(static_cast<double>(free_at - now));
        }
        // Link busy: retry when it frees up. FIFO order is preserved by
        // the event queue's deterministic tiebreak.
        _eq.schedule(free_at,
                     [this, msg = std::move(msg), path, idx]() mutable {
                         hop(std::move(msg), path, idx);
                     });
        return;
    }

    Tick tx = txTime(desc.cls, msg.bytes);
    if (FaultManager *fm = faults()) {
        // The analytical model serializes whole messages, so faults
        // apply per busy interval: a degraded link stretches the
        // interval by 1/factor, a down link parks the transfer until
        // the window ends, and a link down for the rest of the run
        // turns the transfer into a loss the retry machinery owns.
        // (Counted packet drops are garnet-lite only — this backend
        // has no packets to count.)
        const double factor = fm->bandwidthFactor(int(l), now);
        if (factor <= 0.0) {
            const Tick resume = fm->downUntil(int(l), now);
            if (resume == FaultPlan::kEnd) {
                notifyLoss(msg, int(l));
                return;
            }
            _eq.schedule(resume,
                         [this, msg = std::move(msg), path,
                          idx]() mutable {
                             hop(std::move(msg), path, idx);
                         });
            return;
        }
        if (factor < 1.0)
            tx = static_cast<Tick>(
                std::ceil(static_cast<double>(tx) / factor));
    }
    const Tick start = now;
    if (_validate) {
        // Independent busy-interval ledger: the grant must start at or
        // after the previous transfer's end, and the two ledgers must
        // still agree at drain (validateDrain).
        validate::linkGrantNonOverlap(int(l), start,
                                      _busyUntil[std::size_t(l)]);
        _busyUntil[std::size_t(l)] = start + tx;
    }
    free_at = start + tx;
    accountHop(msg.bytes, desc.cls);
    if (_metrics) {
        LinkUsage &u = _usage[std::size_t(l)];
        u.busy += tx;
        u.bytes += msg.bytes;
        ++u.grants;
        _txHist.record(static_cast<double>(tx));
        addDimBusy(desc.dim, tx);
        maybeEmitUtilCounters(now);
    }

    const bool last = (idx + 1 == path->size());
    if (last) {
        // Full message present at destination after serialization and
        // propagation.
        _eq.schedule(start + tx + p.latency,
                     [this, msg = std::move(msg)] { deliver(msg); });
        return;
    }

    Tick next_ready;
    if (_routing == PacketRouting::Software) {
        // Store-and-forward: entire message must arrive before the next
        // hop can begin.
        next_ready = start + tx + p.latency + _routerLatency;
    } else {
        // Virtual cut-through: the head moves on after the wire
        // latency; serialization overlaps across hops. The next link
        // still serializes the full message, so bandwidth is conserved.
        next_ready = start + p.latency + _routerLatency;
    }
    _eq.schedule(next_ready,
                 [this, msg = std::move(msg), path, idx]() mutable {
                     hop(std::move(msg), path, idx + 1);
                 });
}

void
AnalyticalNetwork::exportStats(StatGroup &g, Tick elapsed) const
{
    NetworkApi::exportStats(g);
    g.set("backend", 0); // 0 = analytical, 1 = garnet-lite
    g.set("elapsed.ticks", double(elapsed));
    exportLinkUsage(_fabric, _usage, elapsed, g);
    g.histogramRef("hop.tx_time").merge(_txHist);
    g.histogramRef("hop.queue_wait").merge(_waitHist);
}

} // namespace astra
