/**
 * @file
 * Workload description: the DNN input file of Fig. 8.
 *
 * A workload is a parallelism strategy plus an ordered list of layers;
 * per layer the forward-pass / input-gradient / weight-gradient
 * compute delays, the collective type and size of each of the three
 * communications of Table I, and the local update time (average cycles
 * per KiB to process reduced data once its communication finishes).
 *
 * Concrete text format (line oriented, '#' comments):
 *
 *     PARALLELISM: DATA            # DATA | MODEL | HYBRID
 *     LAYERS: 2
 *     LAYER conv1
 *     COMPUTE 1200 1100 900        # fwd  input-grad  weight-grad
 *     COMM NONE 0 NONE 0 ALLREDUCE 37632
 *     UPDATE 2.0
 *     LAYER fc
 *     COMPUTE 800 700 600
 *     COMM ALLGATHER 4096 ALLTOALL 4096 NONE 0
 *     UPDATE 2.0
 */

#ifndef ASTRA_WORKLOAD_LAYER_HH
#define ASTRA_WORKLOAD_LAYER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace astra
{

/** Parallelization strategy (Table I). */
enum class ParallelismKind
{
    Data,
    Model,
    Hybrid,
};

const char *toString(ParallelismKind p);
ParallelismKind parseParallelismKind(const std::string &s);

/** The three communication slots of a layer (Table I columns). */
enum class CommSlot
{
    Forward,     //!< output activations, after the forward pass
    InputGrad,   //!< input (error) gradients, during back-propagation
    WeightGrad,  //!< weight gradients, during back-propagation
};

/** One DNN layer's entry in the workload file. */
struct LayerSpec
{
    std::string name;

    Tick fwdCompute = 0;
    Tick igCompute = 0;
    Tick wgCompute = 0;

    CollectiveKind fwdComm = CollectiveKind::None;
    CollectiveKind igComm = CollectiveKind::None;
    CollectiveKind wgComm = CollectiveKind::None;

    Bytes fwdCommSize = 0;
    Bytes igCommSize = 0;
    Bytes wgCommSize = 0;

    /** Cycles per KiB to apply reduced data after a comm finishes. */
    double updateTimePerKiB = 0.0;

    CollectiveKind comm(CommSlot slot) const;
    Bytes commSize(CommSlot slot) const;
    Tick compute(CommSlot slot) const;

    /** Local-update delay for @p slot's communication size. */
    Tick updateDelay(CommSlot slot) const;
};

/** A full workload: parallelism plus layers. */
struct WorkloadSpec
{
    std::string name = "workload";
    ParallelismKind parallelism = ParallelismKind::Data;
    std::vector<LayerSpec> layers;

    /** Parse the Fig. 8 format; fatal() with file/line on errors. */
    static WorkloadSpec parseFile(const std::string &path);
    static WorkloadSpec parse(std::istream &in, const std::string &what);

    /** Serialize in the same format (round-trips with parse). */
    std::string serialize() const;
    void writeFile(const std::string &path) const;

    /** Totals, for reporting. */
    Tick totalCompute() const;
    Bytes totalCommBytes() const;
};

} // namespace astra

#endif // ASTRA_WORKLOAD_LAYER_HH
