#include "lint/analyzer.hh"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <regex>
#include <sstream>
#include <thread>
#include <tuple>

#include "common/json.hh"
#include "lint/flow_rules.hh"
#include "lint/include_graph.hh"
#include "lint/symbols.hh"

namespace astra::lint
{

namespace
{

namespace fs = std::filesystem;

bool
isSourceFile(const fs::path &p)
{
    std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".hpp";
}

/** True when @p relpath sits inside a lint fixture corpus. */
bool
inFixtureDir(const std::string &relpath)
{
    return relpath.find("lint/fixtures/") != std::string::npos;
}

std::string
relNormal(const std::string &p)
{
    return fs::path(p).lexically_normal().generic_string();
}

/** Compile @p pattern as ERE; nullopt-style via the bool result. */
bool
compileRegex(const std::string &pattern, std::regex &out)
{
    try {
        out = std::regex(pattern, std::regex::extended);
    } catch (const std::regex_error &) {
        return false;
    }
    return true;
}

/**
 * @p p made root-relative when it points inside @p root; relative
 * paths and paths outside the root pass through (normalized), so
 * reports and baselines carry the same bytes on every checkout.
 */
std::string
rootRelative(const std::string &p, const std::string &root)
{
    fs::path fp(p);
    if (!fp.is_absolute())
        return relNormal(p);
    fs::path rel = fp.lexically_relative(fs::absolute(root));
    if (rel.empty() || rel.begin()->string() == "..")
        return relNormal(p);
    return rel.lexically_normal().generic_string();
}

/**
 * fn(0..n-1), fanned across @p threads workers pulling indices from a
 * shared atomic counter. threads <= 1 degenerates to a plain loop;
 * callers own any per-index output slots, so no locking is needed.
 */
void
forEachIndex(std::size_t n, int threads,
             const std::function<void(std::size_t)> &fn)
{
    if (threads <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::size_t workers =
        std::min(static_cast<std::size_t>(threads), n);
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&next, n, &fn] {
            for (std::size_t i = next.fetch_add(1); i < n;
                 i = next.fetch_add(1))
                fn(i);
        });
    }
    for (std::thread &th : pool)
        th.join();
}

} // namespace

bool
loadAllowlist(const std::string &path, LintOptions &opts, std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = path + ": cannot open allowlist";
        return false;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ss(line);
        std::string rule, pattern, extra;
        if (!(ss >> rule))
            continue; // blank line
        if (!(ss >> pattern) || (ss >> extra)) {
            if (err)
                *err = path + ":" + std::to_string(lineno) +
                       ": want `<rule-id> <path-regex>`";
            return false;
        }
        if (rule != "*" && !knownRule(rule)) {
            if (err)
                *err = path + ":" + std::to_string(lineno) +
                       ": unknown rule id '" + rule + "'";
            return false;
        }
        std::regex probe;
        if (!compileRegex(pattern, probe)) {
            if (err)
                *err = path + ":" + std::to_string(lineno) +
                       ": bad regex '" + pattern + "'";
            return false;
        }
        opts.allow.push_back(AllowEntry{rule, pattern, path, lineno});
    }
    return true;
}

std::vector<std::string>
collectFiles(const LintOptions &opts, const std::vector<std::string> &paths)
{
    std::vector<std::string> out;
    for (const std::string &p : paths) {
        fs::path abs = fs::path(opts.root) / p;
        if (fs::is_directory(abs)) {
            for (fs::recursive_directory_iterator
                     it(abs, fs::directory_options::skip_permission_denied),
                 end;
                 it != end; ++it) {
                if (!it->is_regular_file() || !isSourceFile(it->path()))
                    continue;
                std::string rel =
                    fs::path(it->path())
                        .lexically_relative(opts.root)
                        .generic_string();
                rel = relNormal(rel);
                if (opts.skipFixtureDirs && inFixtureDir(rel))
                    continue;
                out.push_back(rel);
            }
        } else if (fs::exists(abs)) {
            // Explicitly named file; absolute paths inside the root
            // are relativized so diagnostics match directory walks.
            out.push_back(rootRelative(p, opts.root));
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::vector<Diagnostic>
analyzeFiles(const LintOptions &opts, const std::vector<std::string> &files)
{
    std::vector<LexedFile> lexed(files.size());
    forEachIndex(files.size(), opts.threads, [&](std::size_t i) {
        LexedFile lf =
            lexFile((fs::path(opts.root) / files[i]).generic_string());
        lf.path = relNormal(files[i]); // diagnostics: repo-relative
        lexed[i] = std::move(lf);
    });

    // Unordered-container names declared per file, so a .cc sees the
    // members its sibling .hh declares.
    std::map<std::string, std::set<std::string>> declared;
    for (const LexedFile &lf : lexed)
        declared[lf.path] = unorderedNames(lf);

    // The cross-TU index is built serially, then only read by the
    // per-file workers below.
    SymbolIndex index = buildSymbolIndex(lexed);

    // Per-file rules fan out across workers, each appending to its
    // file's own slot; slots are merged in file order afterwards, so
    // the diagnostic stream is identical at every --threads value.
    struct FileSlot
    {
        std::vector<Diagnostic> diags;
        std::vector<SuppressionUse> uses;
    };
    std::vector<FileSlot> slots(lexed.size());
    forEachIndex(lexed.size(), opts.threads, [&](std::size_t i) {
        const LexedFile &lf = lexed[i];
        std::set<std::string> extra;
        fs::path p(lf.path);
        if (p.extension() == ".cc" || p.extension() == ".cpp") {
            for (const char *hext : {".hh", ".hpp"}) {
                fs::path sibling = p;
                sibling.replace_extension(hext);
                auto it = declared.find(sibling.generic_string());
                if (it != declared.end())
                    extra.insert(it->second.begin(), it->second.end());
            }
        }
        runTokenRules(lf, opts.rules, extra, slots[i].diags,
                      &slots[i].uses);
        runIndexRules(lf, index, opts.rules, slots[i].diags,
                      &slots[i].uses);
        runFlowRulesFile(lf, index, opts.rules, slots[i].diags,
                         &slots[i].uses);
    });

    std::vector<Diagnostic> diags;
    std::vector<SuppressionUse> uses;
    for (FileSlot &s : slots) {
        diags.insert(diags.end(), s.diags.begin(), s.diags.end());
        uses.insert(uses.end(), s.uses.begin(), s.uses.end());
    }

    // Whole-program passes stay serial: the call-graph rule and the
    // include graph need every file at once.
    runFlowRulesGlobal(lexed, index, opts.rules, diags, &uses);

    checkIncludeGraph(lexed, opts.root, opts.rules, diags, &uses);

    // Allowlist filter, counting the findings each entry absorbs: a
    // diagnostic must be tested against EVERY entry (not first-match)
    // so the stale pass below knows which entries are dead.
    std::vector<int> entry_hits(opts.allow.size(), 0);
    if (!opts.allow.empty()) {
        std::vector<std::pair<std::size_t, std::regex>> compiled;
        for (std::size_t n = 0; n < opts.allow.size(); ++n) {
            std::regex re;
            if (compileRegex(opts.allow[n].pattern, re))
                compiled.emplace_back(n, std::move(re));
        }
        auto allowed = [&](const Diagnostic &d) {
            bool hit = false;
            for (const auto &[n, re] : compiled) {
                const AllowEntry &entry = opts.allow[n];
                if ((entry.rule == "*" || entry.rule == d.rule) &&
                    std::regex_search(d.file, re)) {
                    ++entry_hits[n];
                    hit = true;
                }
            }
            return hit;
        };
        diags.erase(std::remove_if(diags.begin(), diags.end(), allowed),
                    diags.end());
    }

    // Stale-suppression pass: every suppression written in the tree
    // must have absorbed at least one finding in this run. Stale
    // findings are appended after the allowlist filter on purpose —
    // a suppression cannot suppress the report of its own staleness.
    if (opts.strictSuppressions &&
        (opts.rules.empty() || opts.rules.count("stale-suppression"))) {
        auto ruleChecked = [&](const std::string &r) {
            return opts.rules.empty() || opts.rules.count(r) > 0;
        };
        std::set<std::tuple<std::string, int, std::string>> used;
        for (const SuppressionUse &u : uses)
            used.insert({u.file, u.line, u.rule});
        for (const LexedFile &lf : lexed) {
            for (const auto &[line, m] : lf.marks) {
                for (const std::string &r : m.allowed) {
                    if (!knownRule(r)) {
                        diags.push_back(Diagnostic{
                            lf.path, line, 1, "stale-suppression",
                            "allow(" + r + ") names no known rule"});
                        continue;
                    }
                    if (r == "stale-suppression" || !ruleChecked(r))
                        continue;
                    if (used.count({lf.path, line, r}) == 0)
                        diags.push_back(Diagnostic{
                            lf.path, line, 1, "stale-suppression",
                            "inline allow(" + r +
                                ") matched no finding on this line "
                                "(delete it)"});
                }
            }
        }
        for (std::size_t n = 0; n < opts.allow.size(); ++n) {
            const AllowEntry &e = opts.allow[n];
            // A rule-filtered run cannot judge entries for rules it
            // did not execute ("*" entries need the full set).
            if (e.rule == "*" ? !opts.rules.empty() : !ruleChecked(e.rule))
                continue;
            if (entry_hits[n] == 0)
                diags.push_back(Diagnostic{
                    // Root-relative, so a default allowlist loaded via
                    // an absolute root reports the same path on every
                    // host (baselines diff cleanly across checkouts).
                    e.file.empty() ? std::string("<allowlist>")
                                   : rootRelative(e.file, opts.root),
                    e.line, 1, "stale-suppression",
                    "allowlist entry `" + e.rule + " " + e.pattern +
                        "` matched no finding (delete it)"});
        }
    }

    std::sort(diags.begin(), diags.end(), diagnosticLess);
    return diags;
}

std::string
renderText(const std::vector<Diagnostic> &diags)
{
    std::ostringstream ss;
    for (const Diagnostic &d : diags) {
        ss << d.file << ":" << d.line << ":" << d.col << ": [" << d.rule
           << "] " << d.message << "\n";
    }
    return ss.str();
}

std::string
renderJson(const std::vector<Diagnostic> &diags)
{
    std::ostringstream ss;
    ss << "[";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        ss << (i ? ",\n " : "\n ") << "{\"file\": \"" << jsonEscape(d.file)
           << "\", \"line\": " << d.line << ", \"col\": " << d.col
           << ", \"rule\": \"" << jsonEscape(d.rule)
           << "\", \"message\": \"" << jsonEscape(d.message) << "\"}";
    }
    ss << (diags.empty() ? "]" : "\n]") << "\n";
    return ss.str();
}

std::string
renderFixable(const std::vector<Diagnostic> &diags)
{
    std::map<std::string, int> counts;
    for (const Diagnostic &d : diags)
        ++counts[d.rule];
    if (counts.empty())
        return std::string();
    std::ostringstream ss;
    ss << "fixable summary (" << diags.size() << " finding"
       << (diags.size() == 1 ? "" : "s") << "):\n";
    for (const RuleInfo &r : allRules()) {
        auto it = counts.find(r.id);
        if (it == counts.end())
            continue;
        ss << "  " << it->second << "x [" << r.id << "] fix: " << r.fix
           << "\n";
    }
    return ss.str();
}

std::string
renderSarif(const std::vector<Diagnostic> &diags)
{
    std::ostringstream ss;
    ss << "{\n"
       << " \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << " \"version\": \"2.1.0\",\n"
       << " \"runs\": [{\n"
       << "  \"tool\": {\"driver\": {\n"
       << "   \"name\": \"astra-lint\",\n"
       << "   \"informationUri\": \"docs/static-analysis.md\",\n"
       << "   \"rules\": [";
    const std::vector<RuleInfo> &rules = allRules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        ss << (i ? ",\n    " : "\n    ") << "{\"id\": \""
           << jsonEscape(rules[i].id)
           << "\", \"shortDescription\": {\"text\": \""
           << jsonEscape(rules[i].summary)
           << "\"}, \"help\": {\"text\": \"" << jsonEscape(rules[i].fix)
           << "\"}}";
    }
    ss << "\n   ]\n"
       << "  }},\n"
       << "  \"results\": [";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        // SARIF regions are 1-based; clamp the line-0 file errors.
        int line = d.line > 0 ? d.line : 1;
        int col = d.col > 0 ? d.col : 1;
        ss << (i ? ",\n   " : "\n   ") << "{\"ruleId\": \""
           << jsonEscape(d.rule)
           << "\", \"level\": \"error\", \"message\": {\"text\": \""
           << jsonEscape(d.message)
           << "\"}, \"locations\": [{\"physicalLocation\": "
              "{\"artifactLocation\": {\"uri\": \""
           << jsonEscape(d.file) << "\"}, \"region\": {\"startLine\": "
           << line << ", \"startColumn\": " << col << "}}}]}";
    }
    ss << (diags.empty() ? "]\n" : "\n  ]\n") << " }]\n}\n";
    return ss.str();
}

std::string
baselineKey(const Diagnostic &d)
{
    return d.file + "\t" + d.rule + "\t" + d.message;
}

std::string
renderBaselineFile(const std::vector<Diagnostic> &diags)
{
    std::set<std::string> keys;
    for (const Diagnostic &d : diags)
        keys.insert(baselineKey(d));
    std::ostringstream ss;
    ss << "# astra-lint baseline v1 — one `file<TAB>rule<TAB>message`"
          " per line.\n"
       << "# Findings listed here are pre-existing debt: runs with"
          " --baseline fail\n"
       << "# only on findings NOT in this file, so the list can only"
          " shrink.\n";
    for (const std::string &k : keys)
        ss << k << "\n";
    return ss.str();
}

bool
loadBaseline(const std::string &path, std::set<std::string> &keys,
             std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = path + ": cannot open baseline";
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        keys.insert(line);
    }
    return true;
}

} // namespace astra::lint
