# Empty dependencies file for fig10_torus_dims.
# This may be replaced when dependencies are built.
