/**
 * @file
 * Putting the extensions together: GPT-2 on a two-pod platform.
 *
 * The platform is two pods of a 2x2x2 torus joined by ethernet-class
 * switches (the paper's future-work scale-out fabric). The run
 * compares:
 *
 *  1. hybrid data/tensor-parallel training spanning both pods — every
 *     weight-gradient all-reduce crosses the pod boundary;
 *  2. pipeline parallelism across the pod (scale-out) dimension — only
 *     microbatch activations cross pods, point-to-point.
 *
 * It prints makespans, the interconnect energy split, and writes a
 * Chrome-trace timeline for the pipeline run
 * (/tmp/astra_multipod_trace.json — load it in Perfetto).
 */

#include <cstdio>

#include "common/units.hh"
#include "workload/models.hh"
#include "workload/pipeline.hh"
#include "workload/trainer.hh"

using namespace astra;

namespace
{

SimConfig
twoPodPlatform()
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    cfg.scaleoutDimSize = 2;
    cfg.local.bandwidth = 8 * cfg.package.bandwidth;
    return cfg;
}

void
printEnergy(const NetworkApi::Energy &e)
{
    std::printf("  energy: %.1f uJ (local %.1f | package %.1f | "
                "scale-out %.1f | routers %.1f)\n",
                e.totalUj(), e.localLinkPj * 1e-6,
                e.packageLinkPj * 1e-6, e.scaleoutLinkPj * 1e-6,
                e.routerPj * 1e-6);
}

} // namespace

int
main()
{
    GptConfig gc;
    gc.layers = 8;
    gc.seqLen = 256;
    gc.modelShards = 2; // tensor-parallel across the vertical dim

    // 1. Hybrid parallelism spanning the pods: the data-parallel group
    //    includes the scale-out dimension, so every weight gradient
    //    crosses the ethernet boundary.
    {
        SimConfig cfg = twoPodPlatform();
        Cluster cluster(cfg);
        WorkloadRun run(cluster, gptWorkload(gc),
                        TrainerOptions{.numPasses = 1});
        const Tick t = run.run();
        std::printf("hybrid across pods: %s, exposed comm %.1f%%\n",
                    formatTicks(t).c_str(), 100 * run.exposedRatio());
        printEnergy(cluster.network().energy());
    }

    // 2. Pipeline over the pod dimension: stages live in different
    //    pods; only activations/gradients of microbatches cross the
    //    ethernet links, and weight gradients stay inside each pod.
    {
        SimConfig cfg = twoPodPlatform();
        cfg.traceFile = "/tmp/astra_multipod_trace.json";
        Cluster cluster(cfg);
        PipelineRun run(cluster, gptWorkload(gc),
                        PipelineOptions{.numPasses = 1,
                                        .microbatches = 8,
                                        .pipelineDim = 3});
        const Tick t = run.run();
        std::printf("pipeline across pods: %s, bubble %.1f%%\n",
                    formatTicks(t).c_str(), 100 * run.bubbleRatio());
        printEnergy(cluster.network().energy());
        cluster.flushTrace();
        std::printf("  trace: /tmp/astra_multipod_trace.json "
                    "(open in Perfetto)\n");
    }
    return 0;
}
