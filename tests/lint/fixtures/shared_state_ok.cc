// Negative fixture for shared-state: each static-storage variable
// below is either synchronized by construction (atomic, mutex,
// thread_local), immutable, or annotated with a guarded-by /
// thread-confined mark that the symbol index can resolve.
#include <atomic>
#include <mutex>

std::atomic<int> g_hits{0};          // atomic: clean
std::atomic_bool g_armed{false};     // atomic alias: clean
constexpr int kLimit = 64;           // constexpr: clean
const char *const kName = "fixture"; // const: clean
thread_local int t_depth = 0;        // thread_local: clean
std::mutex g_lock;                   // sync primitive itself: clean

int g_table = 3; // astra-lint: guarded-by(g_lock)

// astra-lint: thread-confined(written only by the pump thread)
int g_pumpTicks = 0;

int
use()
{
    std::lock_guard<std::mutex> guard(g_lock);
    int local = kLimit + t_depth; // automatic storage: never shared
    return g_table + g_pumpTicks + local + g_hits.load() +
           static_cast<int>(g_armed.load());
}
