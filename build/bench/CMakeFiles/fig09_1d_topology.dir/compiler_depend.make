# Empty compiler generated dependencies file for fig09_1d_topology.
# This may be replaced when dependencies are built.
