// Positive fixture for no-rand: every marked line must produce
// exactly that diagnostic (tests/lint/lint_test.cc).
#include <cstdlib>
#include <random>

int
roll()
{
    srand(42);                      // FIRE(no-rand)
    int a = rand();                 // FIRE(no-rand)
    std::random_device seed_source; // FIRE(no-rand)
    double d = drand48();           // FIRE(no-rand)
    return a + static_cast<int>(d) + static_cast<int>(seed_source());
}
