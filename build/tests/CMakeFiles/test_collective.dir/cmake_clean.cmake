file(REMOVE_RECURSE
  "CMakeFiles/test_collective.dir/collective/chunk_state_test.cc.o"
  "CMakeFiles/test_collective.dir/collective/chunk_state_test.cc.o.d"
  "CMakeFiles/test_collective.dir/collective/closed_form_test.cc.o"
  "CMakeFiles/test_collective.dir/collective/closed_form_test.cc.o.d"
  "CMakeFiles/test_collective.dir/collective/collectives_test.cc.o"
  "CMakeFiles/test_collective.dir/collective/collectives_test.cc.o.d"
  "CMakeFiles/test_collective.dir/collective/hybrid_test.cc.o"
  "CMakeFiles/test_collective.dir/collective/hybrid_test.cc.o.d"
  "CMakeFiles/test_collective.dir/collective/phase_plan_test.cc.o"
  "CMakeFiles/test_collective.dir/collective/phase_plan_test.cc.o.d"
  "test_collective"
  "test_collective.pdb"
  "test_collective[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
