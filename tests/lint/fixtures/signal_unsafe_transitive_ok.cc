// Clean counterpart: the whole callee chain sticks to lock-free
// stores, so the handler is async-signal-safe transitively.

void
recordFlag(int sig)
{
    g_flag = sig;
}

void
forwardFlag(int sig)
{
    recordFlag(sig);
}

// astra-lint: signal-handler
extern "C" void
onSignalClean(int sig)
{
    forwardFlag(sig);
}
