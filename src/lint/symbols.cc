#include "lint/symbols.hh"

namespace astra::lint
{

namespace
{

const std::set<std::string> kMutexTypes = {
    "mutex",          "shared_mutex",           "recursive_mutex",
    "timed_mutex",    "recursive_timed_mutex",  "shared_timed_mutex"};

const std::set<std::string> kOtherSync = {
    "condition_variable", "condition_variable_any", "once_flag",
    "atomic_flag",        "counting_semaphore",     "binary_semaphore",
    "barrier",            "latch"};

const std::set<std::string> kControlKeywords = {
    "if",   "for",     "while",  "switch",   "do",    "else",
    "try",  "catch",   "case",   "default",  "return", "goto",
    "break", "continue"};

/**
 * Statement heads that are never variable declarations (class/struct/
 * union/enum here are the `;`-terminated forward declarations — a
 * defining body opens a scope before maybeRecordVar ever runs).
 */
const std::set<std::string> kSkipStatement = {
    "using",     "typedef", "friend", "template", "operator",
    "static_assert", "asm", "delete", "throw",    "new",
    "class",     "struct",  "union",  "enum",     "namespace"};

/**
 * Head identifiers that are never a function's return type (pure
 * specifiers). `void`/`auto`/`std` stay: they are legitimate first
 * type words, and only membership in mustUseTypes is ever consulted.
 */
const std::set<std::string> kSpecifiers = {
    "static",   "inline", "constexpr", "consteval", "virtual",
    "explicit", "extern", "friend",    "const",     "volatile",
    "mutable",  "unsigned", "signed",  "typename",  "template"};

/** Head identifiers skipped when naming a class/enum definition. */
const std::set<std::string> kTypeHeadSkip = {
    "enum",  "class",   "struct",  "union",     "final",
    "public", "private", "protected", "virtual"};

/** Idents that cannot be a declarator name (specifiers and types). */
const std::set<std::string> kNotAName = {
    "static",   "const",    "constexpr", "constinit", "thread_local",
    "inline",   "extern",   "mutable",   "volatile",  "register",
    "unsigned", "signed",   "int",       "long",      "short",
    "char",     "bool",     "double",    "auto",      "void",
    "std",      "struct",   "class",     "enum",      "union",
    "noexcept", "override", "final",     "public",    "private",
    "protected"};

/** Marks recorded for @p line, or nullptr. */
const LineMarks *
marksAt(const LexedFile &f, int line)
{
    auto it = f.marks.find(line);
    return it == f.marks.end() ? nullptr : &it->second;
}

/**
 * The recognizer for one file: a scope stack driven by braces, with a
 * statement scanner that understands paren/bracket nesting and a
 * template-angle heuristic (a `<` right after an identifier opens an
 * angle level). Runs over a directive-filtered copy of the token
 * stream so `#define` bodies (which have no `;` terminator) cannot
 * desynchronize the statement boundaries.
 */
class FileIndexer
{
  public:
    FileIndexer(const LexedFile &file, SymbolIndex &index)
        : _file(file), _index(index)
    {
        std::set<int> directive_lines;
        for (const auto &[first, last] : file.directiveSpans) {
            for (int l = first; l <= last; ++l)
                directive_lines.insert(l);
        }
        for (std::size_t n = 0; n < file.tokens.size(); ++n) {
            const Token &t = file.tokens[n];
            if (directive_lines.count(t.line) == 0) {
                _toks.push_back(t);
                _orig.push_back(n);
            }
        }
    }

    void
    run()
    {
        _scopes.push_back(Scope{ScopeKind::kNamespace, -1});
        std::size_t i = 0;
        while (i < _toks.size())
            i = step(i);
        // Unbalanced braces (or a recognizer miss) leave extents open;
        // close them at the last seen line so lookups stay sane.
        int last_line =
            _toks.empty() ? 1 : _toks.back().line;
        std::size_t last_orig = _orig.empty() ? 0 : _orig.back();
        while (_scopes.size() > 1)
            popScope(last_line, last_orig);
    }

  private:
    enum class ScopeKind
    {
        kNamespace,
        kClass,
        kEnum,
        kFunction,
        kBlock,
    };

    struct Scope
    {
        ScopeKind kind;
        int extent; //!< index into _index.functions, or -1
    };

    bool isPunct(std::size_t i, const char *p) const
    {
        return i < _toks.size() && _toks[i].kind == TokKind::kPunct &&
               _toks[i].text == p;
    }

    void
    popScope(int close_line, std::size_t close_orig)
    {
        Scope s = _scopes.back();
        _scopes.pop_back();
        if (s.extent >= 0) {
            FunctionExtent &fe =
                _index.functions[static_cast<std::size_t>(s.extent)];
            fe.lastLine = close_line;
            fe.bodyEnd = close_orig;
            fe.hasBody = close_orig > fe.bodyBegin;
        }
    }

    /**
     * Recover the declarator name (ident right before the first
     * statement-level `(`) and first non-specifier head identifier
     * from the head tokens [@p i, @p end).
     */
    void
    nameFunction(FunctionExtent &fe, std::size_t i, std::size_t end)
    {
        int paren = 0, angle = 0;
        std::string prev_ident;
        for (std::size_t k = i; k < end; ++k) {
            const Token &t = _toks[k];
            if (t.kind == TokKind::kPunct) {
                const std::string &p = t.text;
                if (p == "(") {
                    if (paren == 0 && angle == 0) {
                        // `operator()` and friends get no name: a
                        // call graph keyed by "operator" would only
                        // fabricate edges.
                        if (prev_ident != "operator")
                            fe.name = prev_ident;
                        return;
                    }
                    ++paren;
                } else if (p == "[") {
                    ++paren;
                } else if ((p == ")" || p == "]") && paren > 0) {
                    --paren;
                } else if (p == "<" && k > i &&
                           _toks[k - 1].kind == TokKind::kIdent &&
                           !isPunct(k + 1, "=") && !isPunct(k + 1, "<")) {
                    ++angle;
                } else if (p == ">" && angle > 0) {
                    --angle;
                }
                continue;
            }
            if (t.kind != TokKind::kIdent || paren > 0 || angle > 0)
                continue;
            prev_ident = t.text;
            if (fe.returnType.empty() && kSpecifiers.count(t.text) == 0)
                fe.returnType = t.text;
        }
    }

    void
    pushFunction(int head_line, std::size_t head_i, std::size_t body_open)
    {
        FunctionExtent fe;
        fe.file = _file.path;
        fe.firstLine = head_line;
        fe.lastLine = head_line;
        for (int l : {head_line - 1, head_line}) {
            if (const LineMarks *m = marksAt(_file, l)) {
                fe.threadConfined = fe.threadConfined || m->threadConfined;
                fe.signalHandler = fe.signalHandler || m->signalHandler;
            }
        }
        nameFunction(fe, head_i, body_open);
        fe.bodyBegin = _orig[body_open];
        _index.functions.push_back(fe);
        _scopes.push_back(Scope{ScopeKind::kFunction,
                                static_cast<int>(_index.functions.size()) -
                                    1});
    }

    /**
     * Record the class/enum defined by the head [@p i, @p end) into
     * mustUseTypes when the head carries a must-use annotation.
     */
    void
    maybeRecordMustUse(std::size_t i, std::size_t end)
    {
        int head_line = _toks[i].line;
        bool marked = false;
        for (int l : {head_line - 1, head_line}) {
            if (const LineMarks *m = marksAt(_file, l))
                marked = marked || m->mustUse;
        }
        if (!marked)
            return;
        for (std::size_t k = i; k < end; ++k) {
            if (_toks[k].kind == TokKind::kIdent &&
                kTypeHeadSkip.count(_toks[k].text) == 0) {
                _index.mustUseTypes.insert(_toks[k].text);
                return;
            }
            if (isPunct(k, ":")) // base/underlying-type list starts
                return;
        }
    }

    /** Consume one statement (or scope boundary) starting at @p i. */
    std::size_t
    step(std::size_t i)
    {
        if (isPunct(i, ";"))
            return i + 1;
        if (isPunct(i, "}")) {
            if (_scopes.size() > 1)
                popScope(_toks[i].line, _orig[i]);
            return i + 1;
        }
        // Access labels are not statements: `public: int _x;` must
        // still record the member after the label.
        if (_toks[i].kind == TokKind::kIdent &&
            (_toks[i].text == "public" || _toks[i].text == "private" ||
             _toks[i].text == "protected") &&
            isPunct(i + 1, ":"))
            return i + 2;

        // ---- scan the statement head ------------------------------
        int paren = 0; // () [] and nested {} while paren > 0
        int angle = 0;
        bool saw_top_paren = false;   // a `(` at statement level
        bool saw_top_equals = false;  // an `=` at statement level
        bool paren_before_equals = false;
        std::size_t j = i;
        std::size_t end = _toks.size(); // index of the terminator
        char term = '\0';
        for (; j < _toks.size(); ++j) {
            const Token &t = _toks[j];
            if (t.kind != TokKind::kPunct) {
                continue;
            }
            const std::string &p = t.text;
            if (p == "(" || p == "[") {
                if (paren == 0 && angle == 0 && p == "(") {
                    saw_top_paren = true;
                    if (!saw_top_equals)
                        paren_before_equals = true;
                }
                ++paren;
            } else if (p == ")" || p == "]") {
                if (paren > 0)
                    --paren;
            } else if (p == "<") {
                // The lexer emits `<=` and `<<` as two tokens; only a
                // lone `<` right after an identifier opens a template
                // argument list.
                if (j > i && _toks[j - 1].kind == TokKind::kIdent &&
                    !isPunct(j + 1, "=") && !isPunct(j + 1, "<"))
                    ++angle;
            } else if (p == ">") {
                if (angle > 0)
                    --angle;
            } else if (p == "=") {
                if (paren == 0 && angle == 0)
                    saw_top_equals = true;
            } else if (p == ";") {
                // A template argument list never contains a top-level
                // `;`, so terminate even with angle > 0 (the angle
                // count was a mis-read `<` comparison).
                if (paren == 0) {
                    term = ';';
                    end = j;
                    break;
                }
            } else if (p == "{") {
                // Same recovery as `;`: a body/initializer brace at
                // statement level terminates even with stale angle.
                if (paren == 0) {
                    term = '{';
                    end = j;
                    break;
                }
                ++paren; // lambda/init body nested inside parens
            } else if (p == "}") {
                if (paren > 0) {
                    --paren;
                } else {
                    term = '}';
                    end = j;
                    break;
                }
            }
        }
        if (end >= _toks.size())
            return _toks.size(); // ran off the file
        if (term == '}')
            return end; // let step() pop the scope

        // First significant identifier, skipping a `template <...>`
        // introducer.
        std::size_t head = i;
        if (head < end && _toks[head].kind == TokKind::kIdent &&
            _toks[head].text == "template" && isPunct(head + 1, "<")) {
            int d = 1;
            std::size_t k = head + 2;
            for (; k < end && d > 0; ++k) {
                if (isPunct(k, "<"))
                    ++d;
                else if (isPunct(k, ">"))
                    --d;
            }
            head = k;
        }
        std::string first_ident;
        for (std::size_t k = head; k < end; ++k) {
            if (_toks[k].kind == TokKind::kIdent) {
                first_ident = _toks[k].text;
                break;
            }
        }

        if (term == ';') {
            maybeRecordVar(i, end, saw_top_equals, saw_top_paren,
                           paren_before_equals, first_ident);
            return end + 1;
        }

        // ---- term == '{': open a scope or a brace initializer -----
        int head_line = _toks[i].line;
        // `extern "C" {` opens a linkage block (no parens); with a
        // statement-level paren it is a C-linkage function definition
        // — `extern "C" void onSignal(int) {` — and must fall through
        // to the function branch so its extent (and any signal-handler
        // mark on the head) is indexed.
        if (first_ident == "namespace" ||
            (first_ident == "extern" && !saw_top_paren)) {
            _scopes.push_back(Scope{ScopeKind::kNamespace, -1});
            return end + 1;
        }
        if (first_ident == "enum") {
            maybeRecordMustUse(i, end);
            _scopes.push_back(Scope{ScopeKind::kEnum, -1});
            return end + 1;
        }
        if ((first_ident == "class" || first_ident == "struct" ||
             first_ident == "union") &&
            !saw_top_paren) {
            maybeRecordMustUse(i, end);
            _scopes.push_back(Scope{ScopeKind::kClass, -1});
            return end + 1;
        }
        if (kControlKeywords.count(first_ident) > 0 ||
            first_ident.empty()) {
            _scopes.push_back(Scope{ScopeKind::kBlock, -1});
            return end + 1;
        }
        if (saw_top_paren && !saw_top_equals) {
            // `name(args) [const noexcept : init-list] {` — a function
            // (or TEST macro) definition.
            pushFunction(head_line, i, end);
            return end + 1;
        }
        if (saw_top_equals || !saw_top_paren) {
            // Brace initializer: `std::atomic<int> g{0};` or
            // `int tab[] = {1, 2};` — record the variable, then skip
            // the balanced braces to the trailing `;`.
            maybeRecordVar(i, end, saw_top_equals, saw_top_paren,
                           paren_before_equals, first_ident);
            int depth = 1;
            std::size_t k = end + 1;
            for (; k < _toks.size() && depth > 0; ++k) {
                if (isPunct(k, "{"))
                    ++depth;
                else if (isPunct(k, "}"))
                    --depth;
            }
            if (isPunct(k, ";"))
                ++k;
            return k;
        }
        _scopes.push_back(Scope{ScopeKind::kBlock, -1});
        return end + 1;
    }

    /**
     * Record the variable a statement spanning [@p i, @p end) declares,
     * when it declares one at an indexed scope. Heuristic skips are
     * silent: a missed declaration weakens a rule but cannot create a
     * false finding on valid code.
     */
    void
    maybeRecordVar(std::size_t i, std::size_t end, bool saw_equals,
                   bool saw_paren, bool paren_before_equals,
                   const std::string &first_ident)
    {
        ScopeKind at = _scopes.back().kind;
        if (at == ScopeKind::kEnum)
            return;
        if (first_ident.empty() ||
            kSkipStatement.count(first_ident) > 0 ||
            kControlKeywords.count(first_ident) > 0)
            return;
        // A statement-level paren with no `=` before it is a function
        // prototype / call / macro invocation, not a variable.
        if (saw_paren && paren_before_equals)
            return;
        (void)saw_equals;

        bool is_static = false, is_extern = false;
        VarDecl v;
        v.file = _file.path;
        v.line = _toks[i].line;

        int paren = 0, angle = 0;
        std::string name;
        bool name_final = false;
        bool saw_operator = false;
        for (std::size_t k = i; k < end; ++k) {
            const Token &t = _toks[k];
            if (t.kind == TokKind::kPunct) {
                const std::string &p = t.text;
                if (p == "(" || p == "[" || p == "{")
                    ++paren;
                else if ((p == ")" || p == "]" || p == "}") && paren > 0)
                    --paren;
                else if (p == "<" && k > i &&
                         _toks[k - 1].kind == TokKind::kIdent &&
                         !isPunct(k + 1, "=") && !isPunct(k + 1, "<"))
                    ++angle;
                else if (p == ">" && angle > 0)
                    --angle;
                else if ((p == "=" || p == ",") && paren == 0 &&
                         angle == 0)
                    name_final = true; // first declarator only
                continue;
            }
            if (t.kind != TokKind::kIdent || paren > 0 || angle > 0)
                continue;
            const std::string &id = t.text;
            if (id == "static")
                is_static = true;
            else if (id == "extern")
                is_extern = true;
            else if (id == "const" || id == "constexpr" ||
                     id == "constinit")
                v.isConst = true;
            else if (id == "thread_local")
                v.isThreadLocal = true;
            else if (id == "atomic" || id.rfind("atomic_", 0) == 0)
                v.isAtomic = true;
            else if (id == "operator")
                saw_operator = true;
            if (kMutexTypes.count(id) > 0 || kOtherSync.count(id) > 0)
                v.isSync = true;
            if (!name_final && kNotAName.count(id) == 0)
                name = id;
        }
        if (saw_operator || name.empty())
            return;
        if (is_extern && !saw_equals)
            return; // pure declaration; the defining TU is indexed
        v.name = name;

        switch (at) {
        case ScopeKind::kNamespace:
            v.scope = VarScope::kNamespace;
            break;
        case ScopeKind::kClass:
            v.scope = is_static ? VarScope::kClassStatic
                                : VarScope::kClassMember;
            break;
        case ScopeKind::kFunction:
        case ScopeKind::kBlock:
            if (!is_static)
                return; // automatic storage never shared
            v.scope = VarScope::kLocalStatic;
            break;
        case ScopeKind::kEnum:
            return;
        }

        int term_line = end < _toks.size() ? _toks[end].line : v.line;
        for (int l : {v.line - 1, v.line, term_line}) {
            if (const LineMarks *m = marksAt(_file, l)) {
                if (v.guardedBy.empty() && !m->guardedBy.empty())
                    v.guardedBy = m->guardedBy;
                v.threadConfined = v.threadConfined || m->threadConfined;
            }
        }

        bool is_mutex = false;
        for (std::size_t k = i; k < end; ++k) {
            if (_toks[k].kind == TokKind::kIdent &&
                kMutexTypes.count(_toks[k].text) > 0) {
                is_mutex = true;
                break;
            }
        }
        if (is_mutex)
            _index.mutexNames.insert(v.name);
        _index.vars.push_back(v);
    }

    const LexedFile &_file;
    SymbolIndex &_index;
    std::vector<Token> _toks;
    std::vector<std::size_t> _orig; //!< _toks[k] is file.tokens[_orig[k]]
    std::vector<Scope> _scopes;
};

} // namespace

bool
SymbolIndex::threadConfinedAt(const std::string &file, int line) const
{
    for (const FunctionExtent &fe : functions) {
        if (fe.threadConfined && fe.file == file &&
            fe.firstLine <= line && line <= fe.lastLine)
            return true;
    }
    return false;
}

SymbolIndex
buildSymbolIndex(const std::vector<LexedFile> &files)
{
    SymbolIndex index;
    for (const LexedFile &f : files)
        FileIndexer(f, index).run();
    return index;
}

} // namespace astra::lint
