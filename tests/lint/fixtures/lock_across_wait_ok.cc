// Clean counterparts: the lock is scoped out, released, or handed to
// the wait itself before anything blocks.

void
lockScopedOut()
{
    {
        std::lock_guard<std::mutex> hold(g_mutex);
        touchShared();
    }
    g_pool.submit(work);
}

void
unlockedBeforeSubmit()
{
    std::unique_lock<std::mutex> hold(g_mutex);
    touchShared();
    hold.unlock();
    g_pool.submit(work);
}

void
lockHandedToWait()
{
    std::unique_lock<std::mutex> lk(g_mutex);
    g_cv.wait(lk);
}

void
predicateWaitHandedLock()
{
    std::unique_lock<std::mutex> lk(g_mutex);
    g_cv.wait(lk, ready);
}
