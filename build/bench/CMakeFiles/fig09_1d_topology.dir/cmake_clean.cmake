file(REMOVE_RECURSE
  "CMakeFiles/fig09_1d_topology.dir/fig09_1d_topology.cc.o"
  "CMakeFiles/fig09_1d_topology.dir/fig09_1d_topology.cc.o.d"
  "fig09_1d_topology"
  "fig09_1d_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_1d_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
