/**
 * @file
 * astra-sim — the command-line front end of the simulator.
 *
 * Two modes:
 *
 *  Workload mode (the paper's end-to-end flow, Fig. 6):
 *      astra-sim --workload=resnet50.txt --num-passes=2 \
 *                --topology=torus --local-dim=2 --num-packages=4 \
 *                --package-rows=4 [--key=value ...]
 *      astra-sim --model=resnet50|transformer|dlrm  (generate instead
 *                of reading a Fig. 8 workload file)
 *
 *  Collective mode (the Sec. V-A..V-D studies):
 *      astra-sim --collective=allreduce --bytes=4MB [--key=value ...]
 *
 *  Explore mode (the paper's co-design exploration, parallelized):
 *      astra-sim --explore=64 --bytes=4MB --jobs=8 \
 *                [--local-dims=1,2,4] [--set-splits=1,4,16]
 *
 * Output: platform summary, per-layer compute/comm/exposed table (or
 * collective timing), the P0..P4 queue/network breakdown, network
 * energy, and totals. --report-csv=FILE exports the per-layer table.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include <memory>

#include "common/check.hh"
#include "common/csv.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "core/cluster.hh"
#include "explore/design_space.hh"
#include "explore/sweep_runner.hh"
#include "guard/interrupt.hh"
#include "guard/journal.hh"
#include "workload/models.hh"
#include "workload/pipeline.hh"
#include "workload/trainer.hh"

using namespace astra;

namespace
{

void
usage(const char *prog)
{
    std::printf(
        "usage: %s [mode] [--key=value ...]\n"
        "\n"
        "workload mode:\n"
        "  --workload=FILE        Fig. 8 workload description\n"
        "  --model=NAME           resnet50 | transformer | dlrm | gpt2 | vgg16\n"
        "  --num-passes=N         training iterations (default 1)\n"
        "  --compute-scale=X      compute-power multiplier (Fig. 18)\n"
        "  --pipeline=M           pipeline-parallel with M microbatches\n"
        "  --write-workload=FILE  dump the generated model and exit\n"
        "\n"
        "collective mode:\n"
        "  --collective=KIND      allreduce|allgather|reducescatter|"
        "alltoall\n"
        "  --bytes=SIZE           payload per node (e.g. 4MB)\n"
        "\n"
        "explore mode:\n"
        "  --explore=MODULES      rank candidate platforms for a\n"
        "                         module budget (uses --collective and\n"
        "                         --bytes as the target operation)\n"
        "  --local-dims=LIST      candidate local dims (default 1,2,4)\n"
        "  --set-splits=LIST      chunk counts to sweep (default: the\n"
        "                         configuration default only)\n"
        "  --top=N                print only the N best (default all)\n"
        "  --jobs=N               parallel candidate simulations\n"
        "                         (default: all hardware threads; the\n"
        "                         ranking is identical for every N)\n"
        "\n"
        "common:\n"
        "  --validate[=LEVEL]     run integrity checkers: off, basic\n"
        "                         (drain-time + ledger checks) or full\n"
        "                         (+ per-event ordering audit; the\n"
        "                         default for a bare --validate)\n"
        "  --digest[=verify]      print the retired-event-stream digest\n"
        "                         (determinism auditor); =verify runs\n"
        "                         the simulation twice — explore mode\n"
        "                         compares serial vs --jobs=N — and\n"
        "                         fails on any mismatch\n"
        "  --config=FILE          load key=value parameters\n"
        "  --report-csv=FILE      export the per-layer table as CSV\n"
        "  --report-json=FILE     export the full metric registry\n"
        "                         (sys/net/cluster groups; see\n"
        "                         docs/observability.md)\n"
        "  --trace-file=FILE      Chrome-trace output (Perfetto)\n"
        "  --key=value            override any Table III parameter\n"
        "  (topology: --topology=torus|alltoall --local-dim=M\n"
        "   --num-packages=N --package-rows=K --global-switches=S)\n"
        "\n"
        "fault injection (docs/faults.md):\n"
        "  --fault=RULE           add one deterministic fault rule\n"
        "                         (repeatable): degrade | down |\n"
        "                         straggle | drop\n"
        "  --fault-plan=FILE      load fault rules, one per line\n"
        "  --fault-timeout=T      base retransmission timeout, cycles\n"
        "  --fault-max-retries=N  retries before a send fails for good\n"
        "\n"
        "run supervision (docs/robustness.md):\n"
        "  --max-events=N         end the run (BudgetExceeded) after N\n"
        "                         events; partial results still flush\n"
        "  --max-sim-time=T       highest simulated tick the run may\n"
        "                         reach\n"
        "  --max-slab-bytes=SIZE  event-slab memory ceiling (e.g. 64MB)\n"
        "  --watchdog-window=N    declare livelock when N events drain\n"
        "                         without any stream/chunk progress\n"
        "  --journal=FILE         explore mode: append each completed\n"
        "                         candidate (crash-safe, digest-keyed)\n"
        "  --resume               explore mode: restore journaled\n"
        "                         candidates instead of re-running them\n"
        "  SIGINT/SIGTERM drain cooperatively at the next event\n"
        "  boundary, flushing the journal and partial results.\n"
        "\n"
        "  exit codes: 0 completed, 1 runtime error, 2 configuration\n"
        "  error, 3 degraded/deadlocked run (see the failure report),\n"
        "  4 run budget exceeded, 5 interrupted, 6 sweep finished with\n"
        "  failed candidates\n",
        prog);
}

struct CliOptions
{
    std::string workloadFile;
    std::string model;
    std::string writeWorkload;
    std::string configFile;
    std::string reportCsv;
    std::string reportJson;
    std::string collective;
    Bytes bytes = 4 * MiB;
    int numPasses = 1;
    double computeScale = 1.0;
    int pipelineMicrobatches = 0; //!< > 0 selects pipeline parallelism

    int exploreModules = 0; //!< > 0 selects explore mode
    std::vector<int> exploreLocalDims;
    std::vector<int> exploreSetSplits;
    int exploreTop = 0; //!< 0 = print every candidate
    int jobs = 0;       //!< sweep workers; 0 = hardware_concurrency

    bool digest = false;       //!< print the determinism digest
    bool digestVerify = false; //!< run twice, fatal on any mismatch

    std::string journalFile; //!< sweep journal path (explore mode)
    bool resume = false;     //!< restore journaled candidates
};

std::string
formatDigest(std::uint64_t d)
{
    return strprintf("0x%016llx", static_cast<unsigned long long>(d));
}

std::vector<int>
parseIntList(const std::string &value, const char *what)
{
    std::vector<int> out;
    std::size_t pos = 0;
    while (pos <= value.size()) {
        const std::size_t comma = value.find(',', pos);
        const std::string item =
            value.substr(pos, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - pos);
        if (item.empty())
            fatal("empty element in %s list '%s'", what, value.c_str());
        if (item.find_first_not_of("0123456789") != std::string::npos ||
            std::atoi(item.c_str()) <= 0) {
            fatal("%s expects positive integers, got '%s'", what,
                  item.c_str());
        }
        out.push_back(std::atoi(item.c_str()));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (out.empty())
        fatal("%s needs at least one value", what);
    return out;
}

void
printBreakdown(const StatGroup &stats)
{
    Table t;
    t.header({"stage", "queue_mean", "queue_max", "network_mean",
              "network_max", "chunk_phases"});
    for (int p = 0; p <= 4; ++p) {
        const Accumulator &q =
            stats.accumulator(strprintf("queue.P%d", p));
        const Accumulator &n =
            stats.accumulator(strprintf("network.P%d", p));
        if (q.count() == 0 && n.count() == 0)
            continue;
        t.row()
            .cell(strprintf("P%d", p))
            .cell(q.mean(), "%.0f")
            .cell(q.maximum(), "%.0f")
            .cell(n.mean(), "%.0f")
            .cell(n.maximum(), "%.0f")
            .cell(std::uint64_t(std::max(q.count(), n.count())));
    }
    std::printf("pipeline-stage delays [cycles]:\n");
    t.print();
}

void
printEnergy(const NetworkApi::Energy &e)
{
    std::printf("network energy: %.2f uJ (local links %.2f, "
                "package links %.2f, routers %.2f)\n",
                e.totalUj(), e.localLinkPj * 1e-6,
                e.packageLinkPj * 1e-6, e.routerPj * 1e-6);
}

/**
 * Top-level JSON members for the metric report: the outcome and
 * failure list when a fault plan is active or the run ended in any
 * non-Completed way (budget trip, watchdog, interrupt) — nothing (and
 * a byte-identical document) otherwise.
 */
std::string
reportExtra(const Cluster &cluster)
{
    if (!cluster.faults() &&
        cluster.outcome() == RunOutcome::Completed)
        return std::string();
    return failureReportJsonMembers(cluster.outcome(),
                                    cluster.failures());
}

/**
 * Print the failure report and map the run outcome to the process
 * exit code: 0 Completed, 3 Degraded/Deadlocked, 4 BudgetExceeded,
 * 5 Interrupted (runtime fatals keep exiting 1, configuration
 * errors 2, sweeps with failed candidates 6).
 */
int
reportOutcome(const Cluster &cluster)
{
    if (cluster.outcome() == RunOutcome::Completed)
        return 0;
    std::printf("\n%s",
                formatFailureReport(cluster.outcome(),
                                    cluster.failures())
                    .c_str());
    switch (cluster.outcome()) {
      case RunOutcome::BudgetExceeded:
        return 4;
      case RunOutcome::Interrupted:
        return 5;
      default:
        return 3;
    }
}

/** Compact JSON array of a candidate's failure records. */
std::string
candidateFailuresJson(const std::vector<FailureRecord> &failures)
{
    std::string out = "[";
    for (std::size_t i = 0; i < failures.size(); ++i) {
        const FailureRecord &f = failures[i];
        if (i)
            out += ", ";
        out += strprintf("{\"node\": %d, \"link\": %d, "
                         "\"stream\": %llu, \"tick\": %llu, "
                         "\"retries\": %d, \"reason\": \"%s\"}",
                         f.node, f.link,
                         static_cast<unsigned long long>(f.stream),
                         static_cast<unsigned long long>(f.tick),
                         f.retries, jsonEscape(f.reason).c_str());
    }
    out += "]";
    return out;
}

/** Write the cluster's metric registry if --report-json was given. */
void
writeReportJson(const CliOptions &opts, const Cluster &cluster)
{
    if (opts.reportJson.empty())
        return;
    MetricRegistry reg = cluster.exportMetrics();
    reg.writeFile(opts.reportJson, reportExtra(cluster));
    std::printf("wrote metric report: %s\n", opts.reportJson.c_str());
}

int
runCollectiveMode(const CliOptions &opts, SimConfig cfg)
{
    const CollectiveKind kind =
        parseCollectiveKind(opts.collective.c_str());
    cfg.digest = cfg.digest || opts.digest;
    Cluster cluster(cfg);
    std::printf("platform:\n%s\n", cfg.toString().c_str());
    const Tick t = cluster.runCollective(kind, opts.bytes);
    std::printf("%s %s: %s\n\n", formatBytes(opts.bytes).c_str(),
                toString(kind), formatTicks(t).c_str());
    if (opts.digest)
        std::printf("event digest: %s\n",
                    formatDigest(cluster.digest()).c_str());
    if (opts.digestVerify) {
        // Determinism audit: an identical platform must replay the
        // exact same event stream.
        Cluster second(cfg);
        const Tick t2 = second.runCollective(kind, opts.bytes);
        ASTRA_CHECK(t2 == t && second.digest() == cluster.digest(),
                    "determinism audit failed: run 1 (%llu cycles, "
                    "digest %s) != run 2 (%llu cycles, digest %s)",
                    static_cast<unsigned long long>(t),
                    formatDigest(cluster.digest()).c_str(),
                    static_cast<unsigned long long>(t2),
                    formatDigest(second.digest()).c_str());
        std::printf("determinism audit: two runs identical (%s)\n",
                    formatDigest(cluster.digest()).c_str());
    }
    StatGroup stats = cluster.aggregateStats();
    printBreakdown(stats);
    writeReportJson(opts, cluster);
    printEnergy(cluster.network().energy());
    if (t > 0) {
        const double gbps = static_cast<double>(opts.bytes) /
                            static_cast<double>(t);
        std::printf("effective per-node algorithm bandwidth: "
                    "%.2f GB/s\n",
                    gbps);
    }
    return reportOutcome(cluster);
}

int
runExploreMode(const CliOptions &opts, const SimConfig &cfg)
{
    ExploreSpec spec;
    spec.modules = opts.exploreModules;
    if (!opts.exploreLocalDims.empty())
        spec.localDims = opts.exploreLocalDims;
    spec.setSplits = opts.exploreSetSplits;
    spec.bytes = opts.bytes;
    if (!opts.collective.empty())
        spec.kind = parseCollectiveKind(opts.collective.c_str());
    // Per-candidate run budgets come from the shared config keys
    // (--max-events etc.) and are stamped onto every candidate.
    spec.maxEvents = cfg.maxEvents;
    spec.maxSimTime = cfg.maxSimTime;
    spec.maxSlabBytes = cfg.maxSlabBytes;
    spec.watchdogWindow = cfg.watchdogWindow;

    std::unique_ptr<guard::SweepJournal> journal;
    if (!opts.journalFile.empty())
        journal = std::make_unique<guard::SweepJournal>(opts.journalFile,
                                                        opts.resume);

    SweepRunner runner(opts.jobs);
    const auto candidates = enumerateCandidates(spec);
    std::printf("explore: %d modules, %zu candidates, %s of %s, "
                "%d worker thread(s)\n\n",
                spec.modules, candidates.size(), toString(spec.kind),
                formatBytes(spec.bytes).c_str(), runner.jobs());
    if (journal && opts.resume && journal->restoredCount() > 0)
        std::printf("resume: %zu candidate(s) restored from %s\n\n",
                    journal->restoredCount(),
                    journal->path().c_str());

    auto results = exploreDesignSpace(spec, runner.jobs(), journal.get());

    if (opts.digestVerify) {
        // Determinism audit: a serial sweep must reproduce the
        // parallel sweep's ranking, timings and event digests exactly.
        auto serial = exploreDesignSpace(spec, 1);
        ASTRA_CHECK(serial.size() == results.size(),
                    "determinism audit failed: serial sweep produced "
                    "%zu candidates, --jobs=%d produced %zu",
                    serial.size(), runner.jobs(), results.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            ASTRA_CHECK(serial[i].label == results[i].label &&
                            serial[i].commTime == results[i].commTime &&
                            serial[i].digest == results[i].digest,
                        "determinism audit failed at rank %zu: serial "
                        "(%s, %llu cycles, digest %s) != --jobs=%d "
                        "(%s, %llu cycles, digest %s)",
                        i + 1, serial[i].label.c_str(),
                        static_cast<unsigned long long>(
                            serial[i].commTime),
                        formatDigest(serial[i].digest).c_str(),
                        runner.jobs(), results[i].label.c_str(),
                        static_cast<unsigned long long>(
                            results[i].commTime),
                        formatDigest(results[i].digest).c_str());
        }
        std::printf("determinism audit: serial and --jobs=%d sweeps "
                    "identical (%zu candidates)\n\n",
                    runner.jobs(), results.size());
    }

    // The outcome column appears only when some candidate did not
    // complete, so a clean sweep's table (and CSV) stays byte-identical
    // to pre-guard output — which is also what lets an interrupted+
    // resumed sweep's merged table compare bit-for-bit against an
    // uninterrupted run's.
    bool any_bad = false;
    for (const CandidateResult &r : results)
        any_bad = any_bad || r.outcome != RunOutcome::Completed;

    Table t;
    std::vector<std::string> header = {"rank", "candidate",
                                       "comm_cycles", "energy_uJ",
                                       "vs_best"};
    if (opts.digest)
        header.push_back("digest");
    if (any_bad)
        header.push_back("outcome");
    t.header(header);
    const std::size_t limit =
        opts.exploreTop > 0
            ? std::min<std::size_t>(std::size_t(opts.exploreTop),
                                    results.size())
            : results.size();
    for (std::size_t i = 0; i < limit; ++i) {
        const CandidateResult &r = results[i];
        Table &row = t.row();
        row.cell(std::uint64_t(i + 1))
            .cell(r.label)
            .cell(std::uint64_t(r.commTime))
            .cell(r.energyUj, "%.2f")
            .cell(double(r.commTime) / double(results[0].commTime),
                  "%.3f");
        if (opts.digest)
            row.cell(formatDigest(r.digest));
        if (any_bad)
            row.cell(toString(r.outcome));
    }
    t.print();
    if (!opts.reportCsv.empty())
        t.writeCsv(opts.reportCsv);
    if (!opts.reportJson.empty()) {
        // One document, every candidate with its full metric registry.
        std::FILE *f = std::fopen(opts.reportJson.c_str(), "w");
        if (!f)
            fatal("cannot open report file '%s' for writing",
                  opts.reportJson.c_str());
        std::fprintf(f,
                     "{\n  \"schema\": \"astra-explore-v1\",\n"
                     "  \"operation\": \"%s\",\n  \"bytes\": %llu,\n"
                     "  \"candidates\": [",
                     toString(spec.kind),
                     static_cast<unsigned long long>(spec.bytes));
        for (std::size_t i = 0; i < results.size(); ++i) {
            const CandidateResult &r = results[i];
            std::string metrics = r.metrics.toJson();
            while (!metrics.empty() && metrics.back() == '\n')
                metrics.pop_back();
            std::fprintf(f,
                         "%s\n    {\"rank\": %zu, \"label\": \"%s\", "
                         "\"comm_cycles\": %llu, \"energy_uj\": %s, "
                         "\"digest\": \"%s\", \"outcome\": \"%s\", "
                         "\"failures\": %s, \"metrics\": %s}",
                         i == 0 ? "" : ",", i + 1,
                         jsonEscape(r.label).c_str(),
                         static_cast<unsigned long long>(r.commTime),
                         jsonNumber(r.energyUj).c_str(),
                         formatDigest(r.digest).c_str(),
                         toString(r.outcome),
                         candidateFailuresJson(r.failures).c_str(),
                         metrics.c_str());
        }
        std::fprintf(f, "\n  ]\n}\n");
        std::fclose(f);
        std::printf("wrote metric report: %s\n",
                    opts.reportJson.c_str());
    }
    std::printf("\nbest: %s (%s)\n", results[0].label.c_str(),
                formatTicks(results[0].commTime).c_str());
    // Sweep-level exit taxonomy: an interrupted sweep is 5 (resume it
    // with --journal/--resume), one that completed but contained
    // failed/budget-tripped candidates is 6, a clean sweep 0.
    bool any_interrupted = false;
    for (const CandidateResult &r : results)
        any_interrupted =
            any_interrupted || r.outcome == RunOutcome::Interrupted;
    if (any_interrupted)
        return 5;
    if (any_bad) {
        for (const CandidateResult &r : results) {
            if (r.outcome == RunOutcome::Completed)
                continue;
            std::printf("%s: %s%s\n", r.label.c_str(),
                        toString(r.outcome),
                        r.failures.empty()
                            ? ""
                            : strprintf(" (%s)",
                                        r.failures.front().reason
                                            .c_str())
                                  .c_str());
        }
        return 6;
    }
    return 0;
}

int
runWorkloadMode(const CliOptions &opts, SimConfig cfg)
{
    WorkloadSpec spec;
    if (!opts.workloadFile.empty()) {
        spec = WorkloadSpec::parseFile(opts.workloadFile);
    } else if (opts.model == "resnet50") {
        spec = resnet50Workload();
    } else if (opts.model == "transformer") {
        TransformerConfig tc;
        tc.modelShards = cfg.topology == TopologyKind::Torus3D
                             ? cfg.verticalDim
                             : cfg.localDim;
        spec = transformerWorkload(tc);
    } else if (opts.model == "dlrm") {
        spec = dlrmWorkload();
    } else if (opts.model == "gpt2") {
        GptConfig gc;
        gc.modelShards = cfg.topology == TopologyKind::Torus3D
                             ? cfg.verticalDim
                             : cfg.localDim;
        spec = gptWorkload(gc);
    } else if (opts.model == "vgg16") {
        spec = vgg16Workload();
    } else {
        fatal("unknown --model '%s' "
              "(resnet50/transformer/dlrm/gpt2/vgg16)",
              opts.model.c_str());
    }

    if (!opts.writeWorkload.empty()) {
        spec.writeFile(opts.writeWorkload);
        std::printf("wrote %s (%zu layers)\n",
                    opts.writeWorkload.c_str(), spec.layers.size());
        return 0;
    }

    std::printf("platform:\n%s\n", cfg.toString().c_str());
    std::printf("workload: %s, %s parallelism, %zu layers, "
                "%d pass(es), compute scale %.2gx\n\n",
                spec.name.c_str(), toString(spec.parallelism),
                spec.layers.size(), opts.numPasses, opts.computeScale);

    cfg.digest = cfg.digest || opts.digest;
    Cluster cluster(cfg);

    if (opts.pipelineMicrobatches > 0) {
        PipelineRun run(cluster, spec,
                        PipelineOptions{
                            .numPasses = opts.numPasses,
                            .microbatches = opts.pipelineMicrobatches,
                            .computeScale = opts.computeScale});
        const Tick makespan = run.run();
        Table t;
        t.header({"stage", "layers", "compute", "bubble", "wg_comm"});
        for (int s = 0; s < run.numStages(); ++s) {
            const StageStats &st = run.stage(s);
            t.row()
                .cell(std::uint64_t(s))
                .cell(std::uint64_t(st.layers))
                .cell(std::uint64_t(st.compute))
                .cell(std::uint64_t(st.bubble))
                .cell(std::uint64_t(st.commWg));
        }
        t.print();
        if (!opts.reportCsv.empty())
            t.writeCsv(opts.reportCsv);
        if (!opts.reportJson.empty()) {
            MetricRegistry reg = cluster.exportMetrics();
            StatGroup &pl = reg.group("pipeline");
            pl.set("makespan.ticks", double(makespan));
            pl.set("bubble.ratio", run.bubbleRatio());
            pl.set("stages", double(run.numStages()));
            for (int s = 0; s < run.numStages(); ++s) {
                const StageStats &st = run.stage(s);
                const std::string prefix = strprintf("stage%d.", s);
                pl.set(prefix + "layers", double(st.layers));
                pl.set(prefix + "compute", double(st.compute));
                pl.set(prefix + "bubble", double(st.bubble));
                pl.set(prefix + "comm_wg", double(st.commWg));
            }
            reg.writeFile(opts.reportJson);
            std::printf("wrote metric report: %s\n",
                        opts.reportJson.c_str());
        }
        std::printf("\n");
        printEnergy(cluster.network().energy());
        if (opts.digest)
            std::printf("event digest: %s\n",
                        formatDigest(cluster.digest()).c_str());
        if (opts.digestVerify) {
            Cluster second(cfg);
            PipelineRun rerun(
                second, spec,
                PipelineOptions{
                    .numPasses = opts.numPasses,
                    .microbatches = opts.pipelineMicrobatches,
                    .computeScale = opts.computeScale});
            const Tick m2 = rerun.run();
            ASTRA_CHECK(m2 == makespan &&
                            second.digest() == cluster.digest(),
                        "determinism audit failed: run 1 (%llu cycles, "
                        "digest %s) != run 2 (%llu cycles, digest %s)",
                        static_cast<unsigned long long>(makespan),
                        formatDigest(cluster.digest()).c_str(),
                        static_cast<unsigned long long>(m2),
                        formatDigest(second.digest()).c_str());
            std::printf("determinism audit: two runs identical (%s)\n",
                        formatDigest(cluster.digest()).c_str());
        }
        std::printf("\nmakespan: %s, pipeline bubble: %.1f%%\n",
                    formatTicks(makespan).c_str(),
                    100 * run.bubbleRatio());
        return reportOutcome(cluster);
    }

    WorkloadRun run(cluster, spec,
                    TrainerOptions{.numPasses = opts.numPasses,
                                   .computeScale = opts.computeScale});
    const Tick makespan = run.run();

    Table t;
    t.header({"layer", "name", "compute", "comm_fwd", "comm_ig",
              "comm_wg", "exposed"});
    const auto &stats = run.layerStats();
    for (std::size_t i = 0; i < stats.size(); ++i) {
        t.row()
            .cell(std::uint64_t(i))
            .cell(spec.layers[i].name)
            .cell(std::uint64_t(stats[i].compute))
            .cell(std::uint64_t(stats[i].commFwd))
            .cell(std::uint64_t(stats[i].commIg))
            .cell(std::uint64_t(stats[i].commWg))
            .cell(std::uint64_t(stats[i].exposed));
    }
    t.print();
    if (!opts.reportCsv.empty())
        t.writeCsv(opts.reportCsv);
    if (!opts.reportJson.empty()) {
        MetricRegistry reg = cluster.exportMetrics();
        run.exportStats(reg.group("workload"));
        reg.writeFile(opts.reportJson);
        std::printf("wrote metric report: %s\n",
                    opts.reportJson.c_str());
    }

    std::printf("\n");
    printBreakdown(cluster.aggregateStats());
    printEnergy(cluster.network().energy());
    if (opts.digest)
        std::printf("event digest: %s\n",
                    formatDigest(cluster.digest()).c_str());
    if (opts.digestVerify) {
        Cluster second(cfg);
        WorkloadRun rerun(second, spec,
                          TrainerOptions{
                              .numPasses = opts.numPasses,
                              .computeScale = opts.computeScale});
        const Tick m2 = rerun.run();
        ASTRA_CHECK(m2 == makespan &&
                        second.digest() == cluster.digest(),
                    "determinism audit failed: run 1 (%llu cycles, "
                    "digest %s) != run 2 (%llu cycles, digest %s)",
                    static_cast<unsigned long long>(makespan),
                    formatDigest(cluster.digest()).c_str(),
                    static_cast<unsigned long long>(m2),
                    formatDigest(second.digest()).c_str());
        std::printf("determinism audit: two runs identical (%s)\n",
                    formatDigest(cluster.digest()).c_str());
    }
    std::printf("\nmakespan: %s\n", formatTicks(makespan).c_str());
    std::printf("compute: %.1f%%  exposed communication: %.1f%%\n",
                100 * run.computeRatio(), 100 * run.exposedRatio());
    return reportOutcome(cluster);
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions opts;
    SimConfig cfg;
    cfg.torus(2, 2, 2); // a small default platform

    // First pass: CLI-level options; everything else goes to SimConfig.
    std::vector<std::pair<std::string, std::string>> cfg_args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        }
        auto eq = arg.find('=');
        // --validate, --digest and --resume are meaningful bare: a
        // bare --validate selects the full level, a bare --digest just
        // prints the digest, --resume takes no value at all.
        if (arg == "--validate" || arg == "--digest" ||
            arg == "--resume")
            eq = arg.size();
        if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
            std::fprintf(stderr, "unexpected argument '%s'\n",
                         arg.c_str());
            usage(argv[0]);
            return 1;
        }
        const std::string key = arg.substr(2, eq - 2);
        const std::string value =
            eq + 1 < arg.size() ? arg.substr(eq + 1) : std::string();
        if (key == "validate") {
            setValidationLevel(parseValidateLevel(value));
        } else if (key == "digest") {
            if (value == "verify") {
                opts.digest = true;
                opts.digestVerify = true;
            } else if (value.empty()) {
                opts.digest = true;
            } else {
                fatal("--digest takes no value or 'verify', got '%s'",
                      value.c_str());
            }
        } else if (key == "workload") {
            opts.workloadFile = value;
        } else if (key == "model") {
            opts.model = value;
        } else if (key == "write-workload") {
            opts.writeWorkload = value;
        } else if (key == "config") {
            opts.configFile = value;
        } else if (key == "report-csv") {
            opts.reportCsv = value;
        } else if (key == "report-json") {
            opts.reportJson = value;
        } else if (key == "collective") {
            opts.collective = value;
        } else if (key == "bytes") {
            opts.bytes = parseBytes(value);
        } else if (key == "num-passes") {
            opts.numPasses = std::atoi(value.c_str());
        } else if (key == "compute-scale") {
            opts.computeScale = std::atof(value.c_str());
        } else if (key == "pipeline") {
            opts.pipelineMicrobatches = std::atoi(value.c_str());
        } else if (key == "explore") {
            opts.exploreModules = std::atoi(value.c_str());
        } else if (key == "local-dims") {
            opts.exploreLocalDims = parseIntList(value, "--local-dims");
        } else if (key == "set-splits") {
            opts.exploreSetSplits = parseIntList(value, "--set-splits");
        } else if (key == "top") {
            opts.exploreTop = std::atoi(value.c_str());
        } else if (key == "jobs") {
            opts.jobs = std::atoi(value.c_str());
        } else if (key == "journal") {
            opts.journalFile = value;
        } else if (key == "resume") {
            opts.resume = true;
        } else {
            cfg_args.emplace_back(key, value);
        }
    }

    // The whole configuration phase reports through exit code 2 —
    // distinct from runtime errors (1) and degraded runs (3) so CI can
    // tell a bad config from a bad simulation. Errors are collected by
    // the parser (all problems at once, file:line prefixed) and land
    // here as one FatalError.
    setLoggingThrowOnFatal(true);
    try {
        if (!opts.configFile.empty())
            cfg.loadFile(opts.configFile);
        for (const auto &[k, v] : cfg_args)
            cfg.set(k, v);
        cfg.numPasses = opts.numPasses;
        cfg.validate();
        // Vet the fault rules now: a malformed rule is a config error,
        // not a runtime one.
        FaultPlan::fromConfig(cfg);
        if (opts.resume && opts.journalFile.empty())
            fatal("--resume requires --journal=FILE");
        if (!opts.journalFile.empty() && opts.exploreModules <= 0)
            fatal("--journal is an explore-mode option "
                  "(use --explore=MODULES)");
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    setLoggingThrowOnFatal(false);

    // Cooperative SIGINT/SIGTERM: the event loop drains at the next
    // slice boundary, flushes the journal and partial results, and the
    // process exits 5 (docs/robustness.md).
    guard::installInterruptHandlers();

    if (opts.exploreModules > 0)
        return runExploreMode(opts, cfg);
    if (!opts.collective.empty())
        return runCollectiveMode(opts, cfg);
    if (opts.workloadFile.empty() && opts.model.empty()) {
        std::fprintf(stderr, "need --workload, --model, --collective "
                             "or --explore\n");
        usage(argv[0]);
        return 1;
    }
    return runWorkloadMode(opts, cfg);
}
