file(REMOVE_RECURSE
  "CMakeFiles/fig16_resnet_breakdown.dir/fig16_resnet_breakdown.cc.o"
  "CMakeFiles/fig16_resnet_breakdown.dir/fig16_resnet_breakdown.cc.o.d"
  "fig16_resnet_breakdown"
  "fig16_resnet_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_resnet_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
