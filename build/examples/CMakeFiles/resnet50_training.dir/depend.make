# Empty dependencies file for resnet50_training.
# This may be replaced when dependencies are built.
