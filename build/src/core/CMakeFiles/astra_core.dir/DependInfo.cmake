
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/astra_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/astra_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/group_info.cc" "src/core/CMakeFiles/astra_core.dir/group_info.cc.o" "gcc" "src/core/CMakeFiles/astra_core.dir/group_info.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/astra_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/astra_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/stream.cc" "src/core/CMakeFiles/astra_core.dir/stream.cc.o" "gcc" "src/core/CMakeFiles/astra_core.dir/stream.cc.o.d"
  "/root/repo/src/core/sys.cc" "src/core/CMakeFiles/astra_core.dir/sys.cc.o" "gcc" "src/core/CMakeFiles/astra_core.dir/sys.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/astra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/astra_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/astra_net.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/astra_collective.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
