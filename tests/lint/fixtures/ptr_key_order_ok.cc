// Negative fixture: pointers as *values* are fine (no ordering by
// address), as are ordered containers keyed by stable ids.
#include <map>
#include <set>
#include <string>
#include <utility>

struct Node
{
    int id;
};

const std::map<int, Node *> g_byId;                   // pointer value: fine
const std::set<std::pair<int, int>> g_edges;          // value keys: fine
const std::map<std::string, int> g_byName;            // string keys: fine

int
use()
{
    return static_cast<int>(g_byId.size() + g_edges.size() +
                            g_byName.size());
}
