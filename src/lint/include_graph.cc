#include "lint/include_graph.hh"

#include <filesystem>
#include <functional>
#include <map>

namespace astra::lint
{

namespace
{

namespace fs = std::filesystem;

/** Rank of a layer directory name inside src/; -1 when unknown. */
int
srcDirRank(const std::string &dir)
{
    if (dir == "common")
        return 0;
    if (dir == "compute" || dir == "fault" || dir == "guard")
        return 1;
    if (dir == "net" || dir == "topo")
        return 2;
    if (dir == "collective")
        return 3;
    if (dir == "core")
        return 4;
    if (dir == "workload")
        return 5;
    if (dir == "explore" || dir == "lint")
        return 6;
    return -1;
}

constexpr int kTopRank = 1000; // tools/tests/bench/examples

/** First path component of @p relpath, or "" when there is none. */
std::string
firstComponent(const std::string &relpath)
{
    std::size_t slash = relpath.find('/');
    return slash == std::string::npos ? std::string()
                                      : relpath.substr(0, slash);
}

std::string
normalize(const std::string &path)
{
    return fs::path(path).lexically_normal().generic_string();
}

/**
 * Resolve a quoted include @p target written in @p includer to a
 * repo-root-relative path, or "" when it does not name a project file.
 */
std::string
resolveInclude(const std::string &root, const std::string &includer,
               const std::string &target)
{
    if (fs::exists(fs::path(root) / "src" / target))
        return normalize("src/" + target);
    if (fs::exists(fs::path(root) / target))
        return normalize(target);
    fs::path sibling = fs::path(includer).parent_path() / target;
    if (fs::exists(fs::path(root) / sibling))
        return normalize(sibling.generic_string());
    return std::string();
}

/** emit() with the same per-line suppression semantics as token rules. */
void
emitAt(const LexedFile &file, int line, const std::string &rule,
       const std::string &message,
       const std::set<std::string> &enabled,
       std::vector<Diagnostic> &out, std::vector<SuppressionUse> *uses)
{
    if (!enabled.empty() && enabled.count(rule) == 0)
        return;
    auto it = file.marks.find(line);
    if (it != file.marks.end() &&
        (it->second.nolint || it->second.allowed.count(rule) > 0)) {
        if (uses)
            uses->push_back(SuppressionUse{file.path, line, rule});
        return;
    }
    out.push_back(Diagnostic{file.path, line, 1, rule, message});
}

} // namespace

int
layerRank(const std::string &relpath)
{
    std::string norm = normalize(relpath);
    std::string top = firstComponent(norm);
    if (top == "src") {
        std::string rest = norm.substr(4);
        return srcDirRank(firstComponent(rest));
    }
    if (top == "tools" || top == "tests" || top == "bench" ||
        top == "examples")
        return kTopRank;
    return -1;
}

std::string
layerName(const std::string &relpath)
{
    std::string norm = normalize(relpath);
    std::string top = firstComponent(norm);
    if (top == "src")
        return firstComponent(norm.substr(4));
    return top.empty() ? norm : top;
}

void
checkIncludeGraph(const std::vector<LexedFile> &files,
                  const std::string &root,
                  const std::set<std::string> &enabled,
                  std::vector<Diagnostic> &out,
                  std::vector<SuppressionUse> *uses)
{
    // Resolved project-include edges, with the directive line of each.
    struct Edge
    {
        std::string to;
        int line;
    };
    std::map<std::string, std::vector<Edge>> graph;
    std::map<std::string, const LexedFile *> byPath;

    for (const LexedFile &f : files) {
        std::string from = normalize(f.path);
        byPath[from] = &f;
        int from_rank = layerRank(from);
        for (const IncludeDirective &inc : f.includes) {
            if (inc.angled)
                continue;
            std::string to = resolveInclude(root, from, inc.target);
            if (to.empty())
                continue;
            graph[from].push_back(Edge{to, inc.line});

            int to_rank = layerRank(to);
            if (from_rank >= 0 && to_rank >= 0 && from_rank < to_rank) {
                emitAt(f, inc.line, "layer-dag",
                       "layer '" + layerName(from) +
                           "' must not include upper layer '" +
                           layerName(to) + "' (" + inc.target +
                           "); the layer DAG flows workload > core > "
                           "collective > net/topo > compute/fault/"
                           "guard > common",
                       enabled, out, uses);
            }
        }
    }

    // File-level cycle detection (DFS, three colours) over edges whose
    // endpoints were both analyzed.
    std::map<std::string, int> colour; // 0 white, 1 grey, 2 black
    std::vector<std::string> path;
    std::set<std::string> reported;

    std::function<void(const std::string &)> visit =
        [&](const std::string &node) {
            colour[node] = 1;
            path.push_back(node);
            auto it = graph.find(node);
            if (it != graph.end()) {
                for (const Edge &e : it->second) {
                    if (byPath.count(e.to) == 0)
                        continue;
                    int c = colour[e.to];
                    if (c == 0) {
                        visit(e.to);
                    } else if (c == 1) {
                        // Back edge: the cycle is path[first..end] + to.
                        std::size_t first = 0;
                        while (first < path.size() &&
                               path[first] != e.to)
                            ++first;
                        std::string chain;
                        std::set<std::string> key;
                        for (std::size_t i = first; i < path.size();
                             ++i) {
                            chain += path[i] + " -> ";
                            key.insert(path[i]);
                        }
                        chain += e.to;
                        std::string canon;
                        for (const std::string &k : key)
                            canon += k + "|";
                        if (reported.insert(canon).second) {
                            emitAt(*byPath.at(node), e.line,
                                   "include-cycle",
                                   "include cycle: " + chain, enabled,
                                   out, uses);
                        }
                    }
                }
            }
            path.pop_back();
            colour[node] = 2;
        };

    for (const auto &[node, file] : byPath) {
        (void)file;
        if (colour[node] == 0)
            visit(node);
    }
}

} // namespace astra::lint
