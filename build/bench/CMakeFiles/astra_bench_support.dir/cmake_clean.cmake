file(REMOVE_RECURSE
  "../lib/libastra_bench_support.a"
  "../lib/libastra_bench_support.pdb"
  "CMakeFiles/astra_bench_support.dir/support.cc.o"
  "CMakeFiles/astra_bench_support.dir/support.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
