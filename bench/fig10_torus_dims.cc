/**
 * @file
 * Fig. 10 — impact of 2D/3D Torus dimensionality at 64 packages.
 *
 * All-reduce with symmetric links (intra-package links run at the
 * inter-package bandwidth) and the baseline per-dimension algorithm,
 * on 1x64x1, 1x8x8, 2x8x4 and 4x4x4.
 *
 * Expected shape (Sec. V-B): 1x64x1 is worst (63 hops per ring);
 * 1x8x8 wins at large sizes (lowest send volume, 28/8 N per node);
 * 2x8x4 is worse than 1x8x8 (more data, same bottleneck ring of 8);
 * 4x4x4 beats 2x8x4 everywhere and even 1x8x8 for small messages
 * (fewer worst-case hops) until bandwidth dominates (~4 MB).
 */

#include "bench/support.hh"

using namespace astra;
using namespace astra::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv);
    banner("Fig. 10", "2D/3D Torus all-reduce at 64 modules, "
                      "symmetric links, baseline algorithm");

    struct Shape
    {
        const char *name;
        int m, h, v;
    };
    const Shape shapes[] = {
        {"1x64x1", 1, 64, 1},
        {"1x8x8", 1, 8, 8},
        {"2x8x4", 2, 8, 4},
        {"4x4x4", 4, 4, 4},
    };

    const auto sizes = args.quick ? sizeSweep(256 * KiB, 4 * MiB)
                                  : sizeSweep(64 * KiB, 64 * MiB);

    // Independent (size, shape) simulations, fanned out over --jobs.
    std::vector<CollectiveJob> sweep;
    for (Bytes size : sizes) {
        for (const Shape &s : shapes) {
            SimConfig cfg;
            cfg.torus(s.m, s.h, s.v);
            // Symmetric links: same bandwidth/latency everywhere.
            cfg.local = cfg.package;
            cfg.algorithm = AlgorithmFlavor::Baseline;
            applyOverrides(args, cfg);
            sweep.push_back({cfg, CollectiveKind::AllReduce, size});
        }
    }
    const std::vector<Tick> times = timeCollectives(args, sweep);

    const std::size_t nshapes = std::size(shapes);
    Table t;
    t.header({"size", "1x64x1", "1x8x8", "2x8x4", "4x4x4"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        auto &row = t.row().cell(formatBytes(sizes[i]));
        for (std::size_t j = 0; j < nshapes; ++j)
            row.cell(std::uint64_t(times[i * nshapes + j]));
    }
    emitTable(args, "fig10_allreduce.csv", t);
    writeReport(args);
    return 0;
}
