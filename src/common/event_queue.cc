#include "common/event_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace astra
{

namespace
{

struct EntryGreater
{
    template <typename E>
    bool
    operator()(const E &a, const E &b) const
    {
        return a > b;
    }
};

} // namespace

EventId
EventQueue::schedule(Tick when, EventCallback cb, int priority)
{
    if (when < _now) {
        // A past-dated event would fire "now" but after everything
        // already run this tick, silently corrupting the
        // non-decreasing-time ordering every layer assumes. This is a
        // caller bug expressed through user-facing APIs (e.g. a
        // negative delay computed from a bad config), so fail loudly.
        fatal("event scheduled in the past (when=%llu now=%llu): "
              "delays must be non-negative",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    }
    EventId id = _nextId++;
    if (_heap.empty() && _heap.capacity() < kInitialReserve)
        _heap.reserve(kInitialReserve);
    _heap.push_back(Entry{when, priority, _seq++, id, std::move(cb)});
    std::push_heap(_heap.begin(), _heap.end(), EntryGreater{});
    _live.insert(id);
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    // An id is cancellable exactly while it is live: still in the heap
    // and not yet fired. Cancelled entries stay in the heap and are
    // skipped at pop time — unless they pile up, in which case
    // maybePurge() compacts them away in bulk.
    if (_live.erase(id) == 0)
        return false;
    ++_cancelledInHeap;
    maybePurge();
    return true;
}

void
EventQueue::maybePurge()
{
    if (_heap.size() < kPurgeMinHeap ||
        _cancelledInHeap * 2 < _heap.size()) {
        return;
    }
    std::erase_if(_heap, [this](const Entry &e) {
        return _live.find(e.id) == _live.end();
    });
    std::make_heap(_heap.begin(), _heap.end(), EntryGreater{});
    _cancelledInHeap = 0;
}

void
EventQueue::skim()
{
    while (!_heap.empty() && !_live.count(_heap.front().id)) {
        std::pop_heap(_heap.begin(), _heap.end(), EntryGreater{});
        _heap.pop_back();
        --_cancelledInHeap;
    }
}

bool
EventQueue::popNext(Entry &out)
{
    skim();
    if (_heap.empty())
        return false;
    std::pop_heap(_heap.begin(), _heap.end(), EntryGreater{});
    out = std::move(_heap.back());
    _heap.pop_back();
    _live.erase(out.id);
    return true;
}

bool
EventQueue::step()
{
    Entry e;
    if (!popNext(e))
        return false;
    _now = e.when;
    ++_executed;
    e.cb();
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && step())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t n = 0;
    while (true) {
        skim();
        if (_heap.empty() || _heap.front().when > until)
            break;
        Entry e;
        if (!popNext(e))
            break;
        _now = e.when;
        ++_executed;
        e.cb();
        ++n;
    }
    if (_now < until)
        _now = until;
    return n;
}

} // namespace astra
