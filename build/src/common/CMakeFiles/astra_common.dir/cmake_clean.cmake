file(REMOVE_RECURSE
  "CMakeFiles/astra_common.dir/bitvec.cc.o"
  "CMakeFiles/astra_common.dir/bitvec.cc.o.d"
  "CMakeFiles/astra_common.dir/config.cc.o"
  "CMakeFiles/astra_common.dir/config.cc.o.d"
  "CMakeFiles/astra_common.dir/csv.cc.o"
  "CMakeFiles/astra_common.dir/csv.cc.o.d"
  "CMakeFiles/astra_common.dir/event_queue.cc.o"
  "CMakeFiles/astra_common.dir/event_queue.cc.o.d"
  "CMakeFiles/astra_common.dir/logging.cc.o"
  "CMakeFiles/astra_common.dir/logging.cc.o.d"
  "CMakeFiles/astra_common.dir/stats.cc.o"
  "CMakeFiles/astra_common.dir/stats.cc.o.d"
  "CMakeFiles/astra_common.dir/trace.cc.o"
  "CMakeFiles/astra_common.dir/trace.cc.o.d"
  "CMakeFiles/astra_common.dir/types.cc.o"
  "CMakeFiles/astra_common.dir/types.cc.o.d"
  "CMakeFiles/astra_common.dir/units.cc.o"
  "CMakeFiles/astra_common.dir/units.cc.o.d"
  "libastra_common.a"
  "libastra_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
