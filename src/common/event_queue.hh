/**
 * @file
 * The event-driven execution core of ASTRA-SIM (Sec. IV of the paper).
 *
 * ASTRA-SIM maintains its own event queue in the system layer and
 * exposes it to the workload layer to schedule events. All three layers
 * (workload / system / network) share one EventQueue instance. Each
 * simulated platform owns a *private* EventQueue — queues are never
 * shared across simulations, which is what lets the sweep engine run
 * independent simulations on separate threads with no locking here.
 *
 * Ordering guarantees:
 *  - events fire in non-decreasing tick order;
 *  - events scheduled for the same tick fire in ascending priority;
 *  - events with equal (tick, priority) fire in insertion (FIFO) order.
 *
 * The FIFO tiebreak makes simulations bit-for-bit deterministic, which
 * the repeatability tests (and the sweep engine's determinism
 * contract, DESIGN.md) rely on.
 *
 * Hot-path design, in per-event cost order:
 *  - EventCallback stores small callables inline (48 bytes of
 *    in-object storage) instead of heap-allocating through
 *    std::function — nearly every callback in the simulator captures
 *    only a pointer or two plus an id;
 *  - the heap is an explicit std::vector kept warm across events with
 *    an up-front reservation, rather than a std::priority_queue whose
 *    container restarts cold on every simulation phase;
 *  - cancelled entries are lazily skipped at pop time, but when they
 *    come to dominate the heap they are purged eagerly in one O(n)
 *    compaction so sift costs track *live* events, not dead ones.
 */

#ifndef ASTRA_COMMON_EVENT_QUEUE_HH
#define ASTRA_COMMON_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.hh"
#include "common/types.hh"
#include "common/validate.hh"

namespace astra
{

/**
 * Move-only callable with small-buffer storage.
 *
 * Drop-in for the scheduling subset of std::function<void()>: any
 * callable whose state fits kInlineBytes and moves without throwing
 * lives inside the EventQueue entry itself; larger callables fall back
 * to one heap allocation, exactly like std::function.
 */
class EventCallback
{
  public:
    /** Inline storage: enough for several pointers/ids per capture. */
    static constexpr std::size_t kInlineBytes = 48;

    EventCallback() noexcept = default;

    template <typename F,
              typename Fn = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<Fn, EventCallback> &&
                  std::is_invocable_r_v<void, Fn &>>>
    EventCallback(F &&f) // NOLINT: implicit by design, like std::function
    {
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(_buf)) Fn(std::forward<F>(f));
            _ops = &kInlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(_buf) =
                new Fn(std::forward<F>(f)); // NOLINT: SBO heap fallback
            _ops = &kHeapOps<Fn>;
        }
    }

    EventCallback(EventCallback &&o) noexcept { moveFrom(o); }

    EventCallback &
    operator=(EventCallback &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    explicit operator bool() const noexcept { return _ops != nullptr; }

    /** True when the callable lives in the inline buffer (no heap). */
    bool storedInline() const noexcept { return _ops && _ops->isInline; }

    void operator()() { _ops->invoke(_buf); }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
        bool isInline;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops kInlineOps = {
        [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
        [](void *dst, void *src) noexcept {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) noexcept {
            std::launder(reinterpret_cast<Fn *>(p))->~Fn();
        },
        /*isInline=*/true,
    };

    template <typename Fn>
    static constexpr Ops kHeapOps = {
        [](void *p) { (**reinterpret_cast<Fn **>(p))(); },
        [](void *dst, void *src) noexcept {
            *reinterpret_cast<Fn **>(dst) = *reinterpret_cast<Fn **>(src);
        },
        [](void *p) noexcept { delete *reinterpret_cast<Fn **>(p); },
        /*isInline=*/false,
    };

    void
    moveFrom(EventCallback &o) noexcept
    {
        _ops = o._ops;
        if (_ops) {
            _ops->relocate(_buf, o._buf);
            o._ops = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (_ops) {
            _ops->destroy(_buf);
            _ops = nullptr;
        }
    }

    const Ops *_ops = nullptr;
    alignas(std::max_align_t) unsigned char _buf[kInlineBytes];
};

/** Opaque handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * A deterministic discrete-event queue.
 */
class EventQueue
{
  public:
    /** Default priority for ordinary events. */
    static constexpr int kDefaultPriority = 0;

    /**
     * The ordering audit (validate::eventOrder per fired event) is
     * armed here when the process-global validation level is `full` at
     * construction time; set the level before building the queue (the
     * CLI does, before any Cluster exists).
     */
    EventQueue() : _auditOrder(validationAtLeast(ValidateLevel::kFull)) {}
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when  Absolute tick; must be >= now(). Scheduling into
     *              the past is a fatal() error — it would silently
     *              violate the non-decreasing-time guarantee.
     * @param cb    Callback to invoke.
     * @param priority  Lower fires first within a tick.
     * @return a handle usable with cancel().
     */
    EventId schedule(Tick when, EventCallback cb,
                     int priority = kDefaultPriority);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId
    scheduleAfter(Tick delay, EventCallback cb,
                  int priority = kDefaultPriority)
    {
        return schedule(_now + delay, std::move(cb), priority);
    }

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event was pending and is now cancelled,
     *         false if it already fired or was already cancelled.
     */
    bool cancel(EventId id);

    /** Number of pending (live, non-cancelled) events. */
    std::size_t pendingEvents() const { return _live.size(); }

    /** True when no runnable events remain. */
    bool empty() const { return _live.empty(); }

    /**
     * Run events until the queue drains or @p max_events fire.
     *
     * @return the number of events executed.
     */
    std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

    /**
     * Run events with tick <= @p until (inclusive). Time advances to
     * @p until even if the queue drains earlier.
     *
     * @return the number of events executed.
     */
    std::uint64_t runUntil(Tick until);

    /** Execute exactly one event if available; @return true if one ran. */
    bool step();

    /** Total number of events executed over the queue's lifetime. */
    std::uint64_t executedEvents() const { return _executed; }

    /** Heap slots currently occupied by cancelled entries (for tests). */
    std::size_t cancelledInHeap() const { return _cancelledInHeap; }

    // --- integrity layer (docs/validation.md) -------------------------

    /**
     * Start folding every retired event's (tick, priority, seq) into
     * an FNV-1a determinism digest. Observer-only: enabling it never
     * changes simulated results, only makes them attributable.
     */
    void enableDigest() { _digestOn = true; }

    /** True when the determinism digest is being accumulated. */
    bool digestEnabled() const { return _digestOn; }

    /** The retired-event-stream digest accumulated so far. */
    std::uint64_t digest() const { return _digest.value(); }

    /** Force the per-event ordering audit on/off (tests). */
    void setOrderAudit(bool on) { _auditOrder = on; }

    /**
     * Drain-time checker: after run() returns, no live events may
     * remain and every cancelled entry must have been reclaimed.
     * Raises an ASTRA_CHECK diagnostic otherwise.
     */
    void validateDrained() const;

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq; //!< insertion order, for the FIFO tiebreak
        EventId id;
        EventCallback cb;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return seq > o.seq;
        }
    };

    /** Initial heap reservation: skips the early doubling ramp. */
    static constexpr std::size_t kInitialReserve = 1024;

    /** Below this heap size the lazy skim is always cheap enough. */
    static constexpr std::size_t kPurgeMinHeap = 64;

    /** Pop the next live entry; false if drained. */
    bool popNext(Entry &out);

    /**
     * Bookkeeping for the integrity layer, called once per fired
     * event: the ordering audit (level `full`) and the determinism
     * digest. Two branch tests on the fast path when both are off.
     */
    void
    noteFired(const Entry &e)
    {
        if (_auditOrder) {
            if (_firedAny) {
                validate::eventOrder(_lastWhen, _lastPrio, _lastSeq,
                                     e.when, e.priority, e.seq);
            }
            _firedAny = true;
            _lastWhen = e.when;
            _lastPrio = e.priority;
            _lastSeq = e.seq;
        }
        if (_digestOn) {
            _digest.mix(e.when);
            _digest.mix(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(e.priority)));
            _digest.mix(e.seq);
        }
    }

    /** Drop cancelled entries off the top of the heap. */
    void skim();

    /** Compact the heap when cancelled entries dominate it. */
    void maybePurge();

    std::vector<Entry> _heap; //!< binary min-heap (std::*_heap helpers)
    // Audited for astra-lint's unordered-iter rule: membership-only
    // (insert/erase/find/count/size/empty) — never iterated, so hash
    // order cannot leak into event order or the --digest stream.
    std::unordered_set<EventId> _live; //!< ids scheduled and not yet
                                       //!< fired or cancelled
    std::size_t _cancelledInHeap = 0; //!< dead entries still in _heap
    Tick _now = 0;
    std::uint64_t _seq = 0;
    EventId _nextId = 1;
    std::uint64_t _executed = 0;

    // Integrity layer (see noteFired).
    bool _auditOrder;
    bool _digestOn = false;
    bool _firedAny = false;
    Tick _lastWhen = 0;
    int _lastPrio = 0;
    std::uint64_t _lastSeq = 0;
    Fnv1aDigest _digest;
};

} // namespace astra

#endif // ASTRA_COMMON_EVENT_QUEUE_HH
