# Empty compiler generated dependencies file for astra_topo.
# This may be replaced when dependencies are built.
