// Negative fixture for hot-path-alloc: this TU is tagged hot-path AND
// allocator-tu — it owns the arena whose amortized growth is the one
// legitimate allocation site on the pump — so nothing fires.
//
// astra-lint: hot-path
// astra-lint: allocator-tu (fixture arena: growth amortized over reuse)
#include <memory>
#include <vector>

struct FixtureArena
{
    int *
    alloc()
    {
        if (_free.empty()) {
            _chunks.push_back(std::make_unique<int>(0));
            return _chunks.back().get();
        }
        int *slot = _free.back();
        _free.pop_back();
        return slot;
    }

    void
    release(int *slot)
    {
        _free.push_back(slot);
    }

    std::vector<std::unique_ptr<int>> _chunks;
    std::vector<int *> _free;
};

int
pump()
{
    FixtureArena arena;
    int *slot = arena.alloc();
    *slot = 5;
    int out = *slot;
    arena.release(slot);
    return out;
}
