/**
 * @file
 * A small fixed-size thread pool for fanning independent simulations
 * out across cores (the sweep engine's execution substrate).
 *
 * Deliberately work-stealing-free: jobs are pulled from one shared
 * FIFO under a mutex. Sweep jobs are whole-cluster simulations
 * (milliseconds to seconds each), so queue contention is irrelevant
 * and the simple design is easy to reason about under TSan.
 *
 * Determinism note: the pool itself guarantees nothing about
 * completion order. Callers that need deterministic output (the sweep
 * engine's contract, see DESIGN.md) must address results by job index,
 * as parallelFor() does.
 */

#ifndef ASTRA_COMMON_THREAD_POOL_HH
#define ASTRA_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace astra
{

/**
 * Fixed-size FIFO thread pool.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; <= 0 selects defaultThreads(). */
    explicit ThreadPool(int threads = 0);

    /**
     * Drains outstanding jobs, then joins the workers. A job that
     * throws during the drain is captured (never std::terminate) and
     * reported with a warning, since no wait() is left to rethrow it.
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    int size() const { return static_cast<int>(_workers.size()); }

    /** std::thread::hardware_concurrency(), never less than 1. */
    static int defaultThreads();

    /** Enqueue @p job; runs on some worker in FIFO order. */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished. If any job threw,
     * rethrows the first captured exception (the others are dropped).
     * The pool stays usable after wait().
     */
    void wait();

  private:
    void workerLoop();

    std::vector<std::thread> _workers;
    std::deque<std::function<void()>> _jobs;
    std::mutex _mutex;
    std::condition_variable _workCv; //!< workers: a job or stop arrived
    std::condition_variable _idleCv; //!< wait(): everything drained
    std::size_t _inFlight = 0;       //!< jobs popped but not finished
    bool _stop = false;
    std::exception_ptr _firstError;
};

/**
 * Run fn(i) for every i in [0, count) on up to @p jobs threads.
 *
 * Indices are claimed from an atomic counter, so each runs exactly
 * once; with jobs <= 1 (or count <= 1) everything runs inline on the
 * calling thread with no pool at all — the serial and parallel paths
 * execute the same per-index work. Rethrows the first exception any
 * index threw (remaining indices may still run).
 *
 * @param jobs  worker budget; <= 0 selects ThreadPool::defaultThreads().
 */
void parallelFor(int jobs, std::size_t count,
                 const std::function<void(std::size_t)> &fn);

} // namespace astra

#endif // ASTRA_COMMON_THREAD_POOL_HH
