#include "topo/topology.hh"

#include "common/logging.hh"

namespace astra
{

Topology::Topology(const SimConfig &cfg)
    : _kind(cfg.topology)
{
    cfg.validate();
    _numNodes = cfg.numNpus();

    _dims.push_back(DimInfo{
        "local", cfg.localDim, LinkClass::Local, DimPattern::Ring,
        cfg.local.rings,
    });

    if (_kind == TopologyKind::Torus3D) {
        // Bidirectional package rings are used as two unidirectional
        // rings each (Sec. III-C).
        _dims.push_back(DimInfo{
            "horizontal", cfg.horizontalDim, LinkClass::Package,
            DimPattern::Ring, cfg.package.rings * 2,
        });
        _dims.push_back(DimInfo{
            "vertical", cfg.verticalDim, LinkClass::Package,
            DimPattern::Ring, cfg.package.rings * 2,
        });
        _size = {cfg.localDim, cfg.horizontalDim, cfg.verticalDim,
                 cfg.scaleoutDimSize};
    } else {
        _dims.push_back(DimInfo{
            "alltoall", cfg.horizontalDim, LinkClass::Package,
            DimPattern::Switch, cfg.globalSwitches,
        });
        _size = {cfg.localDim, cfg.horizontalDim, cfg.scaleoutDimSize,
                 1};
    }

    // Scale-out extension (the paper's future work): pods of the
    // scale-up topology joined through ethernet-class switches.
    if (cfg.scaleoutDimSize > 1) {
        _scaleoutDim = static_cast<int>(_dims.size());
        _dims.push_back(DimInfo{
            "scaleout", cfg.scaleoutDimSize, LinkClass::ScaleOut,
            DimPattern::Switch, cfg.scaleoutSwitches,
        });
    }
}

void
Topology::checkDim(int d) const
{
    if (d < 0 || d >= numDims())
        panic("dimension %d out of range [0,%d)", d, numDims());
}

int
Topology::numSwitches(int d) const
{
    checkDim(d);
    return dim(d).pattern == DimPattern::Switch ? dim(d).channels : 0;
}

Coord
Topology::coordOf(NodeId node) const
{
    if (node < 0 || node >= _numNodes)
        panic("node %d out of range [0,%d)", node, _numNodes);
    Coord c;
    int rest = node;
    for (int d = 0; d < 4; ++d) {
        c[d] = rest % _size[std::size_t(d)];
        rest /= _size[std::size_t(d)];
    }
    return c;
}

NodeId
Topology::nodeAt(const Coord &c) const
{
    for (int d = 0; d < 4; ++d) {
        if (c[d] < 0 || c[d] >= _size[std::size_t(d)])
            panic("coordinate %d out of range in dim %d", c[d], d);
    }
    NodeId id = 0;
    for (int d = 3; d >= 0; --d)
        id = id * _size[std::size_t(d)] + c[d];
    return id;
}

std::vector<NodeId>
Topology::group(int d, NodeId member) const
{
    checkDim(d);
    Coord c = coordOf(member);
    std::vector<NodeId> out;
    out.reserve(std::size_t(dim(d).size));
    for (int i = 0; i < dim(d).size; ++i) {
        Coord cc = c;
        cc[d] = i;
        out.push_back(nodeAt(cc));
    }
    return out;
}

int
Topology::rankInGroup(int d, NodeId node) const
{
    checkDim(d);
    return coordOf(node)[d];
}

int
Topology::channelDirection(int d, int ch) const
{
    checkDim(d);
    const DimInfo &info = dim(d);
    if (info.pattern != DimPattern::Ring)
        panic("channelDirection on non-ring dimension %d", d);
    if (ch < 0 || ch >= info.channels)
        panic("channel %d out of range [0,%d)", ch, info.channels);
    if (info.linkClass == LinkClass::Local)
        return +1; // local rings are unidirectional
    return (ch % 2 == 0) ? +1 : -1;
}

NodeId
Topology::ringNext(int d, int ch, NodeId node) const
{
    const int dir = channelDirection(d, ch);
    Coord c = coordOf(node);
    const int size = dim(d).size;
    c[d] = (c[d] + dir + size) % size;
    return nodeAt(c);
}

int
Topology::ringDistance(int d, int ch, NodeId node, int dst_rank) const
{
    const int dir = channelDirection(d, ch);
    const int size = dim(d).size;
    const int src_rank = rankInGroup(d, node);
    if (dst_rank < 0 || dst_rank >= size)
        panic("destination rank %d out of range [0,%d)", dst_rank, size);
    int delta = (dst_rank - src_rank) * dir;
    return ((delta % size) + size) % size;
}

int
Topology::phaseOrderKey(int dim_idx) const
{
    checkDim(dim_idx);
    if (dim_idx == _scaleoutDim)
        return 3; // the scale-out fabric is traversed last
    if (dim_idx == kDimLocal)
        return 0;
    if (_kind == TopologyKind::Torus3D) {
        if (dim_idx == kDimVertical)
            return 1;
        return 2; // horizontal
    }
    return 1; // AllToAll family: the switch dimension
}

std::string
Topology::toString() const
{
    std::string base;
    if (_kind == TopologyKind::Torus3D)
        base = strprintf("Torus3D %dx%dx%d", _size[0], _size[1],
                         _size[2]);
    else
        base = strprintf("AllToAll %dx%d", _size[0], _size[1]);
    if (_scaleoutDim >= 0)
        base += strprintf(" x %d pods", dim(_scaleoutDim).size);
    if (_kind == TopologyKind::Torus3D)
        return base + strprintf(" (%d NPUs)", _numNodes);
    return base + strprintf(" (%d NPUs, %d switches)", _numNodes,
                            numSwitches(kDimAllToAll));
}

} // namespace astra
