#include "explore/sweep_runner.hh"

#include "common/thread_pool.hh"
#include "core/cluster.hh"

namespace astra
{

SweepRunner::SweepRunner(int jobs)
    : _jobs(jobs <= 0 ? ThreadPool::defaultThreads() : jobs)
{
}

// forEach delegates to parallelFor, which joins before returning;
// workers write disjoint candidates[i] slots by index.
// astra-lint: thread-confined(forEach joins before return)
void
SweepRunner::evaluate(std::vector<CandidateResult> &candidates,
                      CollectiveKind kind, Bytes bytes) const
{
    forEach(candidates.size(), [&](std::size_t i) {
        CandidateResult &r = candidates[i];
        // Always collect the determinism digest: candidate results
        // must be identical whether the sweep ran serially or under
        // --jobs=N, and the digest is what makes that auditable.
        SimConfig cfg = r.cfg;
        cfg.digest = true;
        Cluster cluster(cfg);
        r.commTime = cluster.runCollective(kind, bytes);
        r.energyUj = cluster.network().energy().totalUj();
        r.digest = cluster.digest();
        r.metrics = cluster.exportMetrics();
    });
}

void
SweepRunner::forEach(std::size_t count,
                     const std::function<void(std::size_t)> &fn) const
{
    parallelFor(_jobs, count, fn);
}

} // namespace astra
