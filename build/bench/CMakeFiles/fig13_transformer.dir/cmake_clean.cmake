file(REMOVE_RECURSE
  "CMakeFiles/fig13_transformer.dir/fig13_transformer.cc.o"
  "CMakeFiles/fig13_transformer.dir/fig13_transformer.cc.o.d"
  "fig13_transformer"
  "fig13_transformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
