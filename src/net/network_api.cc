#include "net/network_api.hh"

#include "common/logging.hh"

namespace astra
{

void
NetworkApi::deliver(const Message &msg)
{
    if (msg.dst < 0 || std::size_t(msg.dst) >= _receivers.size() ||
        !_receivers[std::size_t(msg.dst)]) {
        panic("message delivered to node %d with no receiver", msg.dst);
    }
    ++_delivered;
    _receivers[std::size_t(msg.dst)](msg);
}

} // namespace astra
