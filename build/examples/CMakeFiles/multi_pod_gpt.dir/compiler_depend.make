# Empty compiler generated dependencies file for multi_pod_gpt.
# This may be replaced when dependencies are built.
