/**
 * @file
 * Per-function control-flow graphs of astra-lint
 * (docs/static-analysis.md).
 *
 * A lightweight statement/block parser over the lexer's token stream
 * (lexer.hh): given a function body range recovered by the symbol
 * indexer (symbols.hh FunctionExtent::bodyBegin/bodyEnd), it builds
 * basic blocks of statements with the edges the flow-sensitive rules
 * need — if/else branches and merges, while/for/do loops with marked
 * back edges, switch dispatch with case fallthrough, early
 * return/break/continue, and try/catch as a branch at the try entry
 * merging after the handlers (an exception can leave the try block at
 * any statement, so the handler conservatively sees the try-entry
 * state).
 *
 * Like the symbol indexer, this is a recognizer, not a C++ parser:
 * brace initializers and lambda bodies inside a statement are
 * consumed as part of that statement, preprocessing-directive tokens
 * are skipped, and any construct the builder cannot pair up clears
 * `wellFormed` — the flow rules skip ill-formed graphs, so a parse
 * miss weakens a rule but cannot fabricate a finding.
 */

#ifndef ASTRA_LINT_CFG_HH
#define ASTRA_LINT_CFG_HH

#include <cstddef>
#include <vector>

#include "lint/lexer.hh"

namespace astra::lint
{

/** One statement (or synthetic scope-exit marker) in a basic block. */
struct CfgStmt
{
    std::size_t firstTok = 0; //!< index into LexedFile::tokens
    std::size_t lastTok = 0;  //!< inclusive

    /**
     * Synthetic statement emitted where a `{ ... }` scope closes:
     * [firstTok, lastTok] is the brace pair's token span. Dataflow
     * rules kill facts whose anchor (e.g. a RAII lock's declaration)
     * lies inside the span — the lexical point its destructor runs.
     */
    bool scopeExit = false;
};

/** One control-flow edge. */
struct CfgEdge
{
    std::size_t to = 0;
    bool back = false; //!< loop-closing edge (body/cond back to head)
};

/** A maximal straight-line run of statements. */
struct BasicBlock
{
    std::vector<CfgStmt> stmts;
    std::vector<CfgEdge> succs;
};

/** The control-flow graph of one function body. */
struct FunctionCfg
{
    std::vector<BasicBlock> blocks;
    std::size_t entry = 0;
    std::size_t exit = 0; //!< every return (and fall-off) edges here

    /**
     * False when the builder met a construct it could not pair up
     * (unbalanced delimiters, a do without while, a macro-heavy body).
     * Rules must skip ill-formed graphs.
     */
    bool wellFormed = true;
};

/**
 * Build the CFG of the body delimited by the brace pair at token
 * indices @p bodyBegin / @p bodyEnd of @p file (both exclusive:
 * statements are parsed strictly between them).
 */
FunctionCfg buildFunctionCfg(const LexedFile &file, std::size_t bodyBegin,
                             std::size_t bodyEnd);

} // namespace astra::lint

#endif // ASTRA_LINT_CFG_HH
