#include "common/stats.hh"

namespace astra
{

void
StatGroup::merge(const StatGroup &o)
{
    for (const auto &[name, v] : o._counters)
        _counters[name] += v;
    for (const auto &[name, acc] : o._accs)
        _accs[name].merge(acc);
}

} // namespace astra
