#include "fault/fault.hh"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/config.hh"
#include "common/json.hh"
#include "common/logging.hh"

namespace astra
{

const char *
toString(RunOutcome o)
{
    switch (o) {
      case RunOutcome::Completed:
        return "completed";
      case RunOutcome::Degraded:
        return "degraded";
      case RunOutcome::Deadlocked:
        return "deadlocked";
      case RunOutcome::BudgetExceeded:
        return "budget-exceeded";
      case RunOutcome::Interrupted:
        return "interrupted";
      case RunOutcome::Failed:
        return "failed";
    }
    return "?";
}

bool
parseRunOutcome(const std::string &name, RunOutcome *out)
{
    static const RunOutcome kAll[] = {
        RunOutcome::Completed,      RunOutcome::Degraded,
        RunOutcome::Deadlocked,     RunOutcome::BudgetExceeded,
        RunOutcome::Interrupted,    RunOutcome::Failed,
    };
    for (RunOutcome o : kAll) {
        if (name == toString(o)) {
            *out = o;
            return true;
        }
    }
    return false;
}

namespace
{

/** Split on any run of spaces/tabs. */
std::vector<std::string>
tokenize(const std::string &s)
{
    std::vector<std::string> out;
    std::string tok;
    std::istringstream in(s);
    while (in >> tok)
        out.push_back(tok);
    return out;
}

bool
parseU64Token(const std::string &s, std::uint64_t *out)
{
    if (s.empty() || s[0] == '-')
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end == s.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
parseIntToken(const std::string &s, int *out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (errno != 0 || end == s.c_str() || *end != '\0' ||
        v < INT_MIN || v > INT_MAX)
        return false;
    *out = static_cast<int>(v);
    return true;
}

bool
parseDoubleToken(const std::string &s, double *out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end == s.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

/** "end" / "inf" mean FaultPlan::kEnd (open window). */
bool
parseTickToken(const std::string &s, Tick *out)
{
    if (s == "end" || s == "inf") {
        *out = FaultPlan::kEnd;
        return true;
    }
    std::uint64_t v = 0;
    if (!parseU64Token(s, &v))
        return false;
    *out = v;
    return true;
}

/**
 * The key=value tokens of one rule, with required/optional lookup and
 * unknown-key detection.
 */
class RuleArgs
{
  public:
    bool
    parse(const std::vector<std::string> &tokens, std::string *err)
    {
        for (std::size_t i = 1; i < tokens.size(); ++i) {
            const std::string &t = tokens[i];
            const std::size_t eq = t.find('=');
            if (eq == std::string::npos || eq == 0) {
                *err = "expected key=value, got '" + t + "'";
                return false;
            }
            const std::string key = t.substr(0, eq);
            if (!_kv.emplace(key, t.substr(eq + 1)).second) {
                *err = "duplicate key '" + key + "'";
                return false;
            }
        }
        return true;
    }

    const std::string *
    get(const std::string &key)
    {
        auto it = _kv.find(key);
        if (it == _kv.end())
            return nullptr;
        _used.push_back(key);
        return &it->second;
    }

    /** After all get()s: complain about keys the verb does not take. */
    bool
    checkNoLeftovers(std::string *err) const
    {
        for (const auto &kv : _kv) {
            if (std::find(_used.begin(), _used.end(), kv.first) ==
                _used.end()) {
                *err = "unknown key '" + kv.first + "'";
                return false;
            }
        }
        return true;
    }

  private:
    std::map<std::string, std::string> _kv;
    std::vector<std::string> _used;
};

bool
wantInt(RuleArgs &args, const std::string &key, bool required, int *out,
        std::string *err)
{
    const std::string *v = args.get(key);
    if (!v) {
        if (required)
            *err = "missing " + key + "=";
        return !required;
    }
    if (!parseIntToken(*v, out) || *out < 0) {
        *err = "bad " + key + "='" + *v + "'";
        return false;
    }
    return true;
}

bool
wantWindow(RuleArgs &args, bool required, Tick *t0, Tick *t1,
           std::string *err)
{
    const std::string *from = args.get("from");
    if (!from)
        from = args.get("t0");
    const std::string *to = args.get("to");
    if (!to)
        to = args.get("t1");
    if (required && (!from || !to)) {
        *err = "missing from=/to=";
        return false;
    }
    if (from && !parseTickToken(*from, t0)) {
        *err = "bad from='" + *from + "'";
        return false;
    }
    if (to && !parseTickToken(*to, t1)) {
        *err = "bad to='" + *to + "'";
        return false;
    }
    if (*t0 == FaultPlan::kEnd || *t1 <= *t0) {
        *err = "empty window [" + std::to_string(*t0) + ", " +
               (*t1 == FaultPlan::kEnd ? std::string("end")
                                       : std::to_string(*t1)) +
               ")";
        return false;
    }
    return true;
}

} // namespace

bool
FaultPlan::parseRule(const std::string &rule, std::string *err)
{
    const std::vector<std::string> tokens = tokenize(rule);
    if (tokens.empty()) {
        *err = "empty fault rule";
        return false;
    }
    const std::string &verb = tokens[0];
    RuleArgs args;
    if (!args.parse(tokens, err))
        return false;

    if (verb == "degrade" || verb == "down") {
        LinkWindow w;
        w.t1 = kEnd;
        if (!wantInt(args, "link", true, &w.link, err))
            return false;
        if (!wantWindow(args, /*required=*/true, &w.t0, &w.t1, err))
            return false;
        if (verb == "down") {
            w.factor = 0.0;
        } else {
            const std::string *f = args.get("factor");
            if (!f) {
                *err = "missing factor=";
                return false;
            }
            if (!parseDoubleToken(*f, &w.factor) || w.factor <= 0.0 ||
                w.factor > 1.0) {
                *err = "factor must be in (0, 1], got '" + *f + "'";
                return false;
            }
        }
        if (!args.checkNoLeftovers(err))
            return false;
        _windows.push_back(w);
        return true;
    }

    if (verb == "straggle" || verb == "straggler") {
        StragglerRule r;
        int node = -1;
        if (!wantInt(args, "node", true, &node, err))
            return false;
        r.node = node;
        const std::string *f = args.get("factor");
        if (!f) {
            *err = "missing factor=";
            return false;
        }
        if (!parseDoubleToken(*f, &r.factor) || r.factor < 1.0) {
            *err = "factor must be >= 1, got '" + *f + "'";
            return false;
        }
        if (!args.checkNoLeftovers(err))
            return false;
        _stragglers.push_back(r);
        return true;
    }

    if (verb == "drop") {
        DropRule r;
        r.t1 = kEnd;
        if (!wantInt(args, "link", true, &r.link, err))
            return false;
        const std::string *every = args.get("every");
        if (!every) {
            *err = "missing every=";
            return false;
        }
        if (!parseU64Token(*every, &r.every) || r.every == 0) {
            *err = "bad every='" + *every + "'";
            return false;
        }
        if (!wantWindow(args, /*required=*/false, &r.t0, &r.t1, err))
            return false;
        const std::string *limit = args.get("limit");
        if (limit && !parseU64Token(*limit, &r.limit)) {
            *err = "bad limit='" + *limit + "'";
            return false;
        }
        if (!args.checkNoLeftovers(err))
            return false;
        _drops.push_back(r);
        return true;
    }

    *err = "unknown fault verb '" + verb +
           "' (expected degrade/down/straggle/drop)";
    return false;
}

void
FaultPlan::addRule(const std::string &rule)
{
    std::string err;
    if (!parseRule(rule, &err))
        fatal("fault rule '%s': %s", rule.c_str(), err.c_str());
}

void
FaultPlan::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open fault plan '%s'", path.c_str());
    std::vector<std::string> errors;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // CRLF endings and trailing whitespace.
        const std::size_t last = line.find_last_not_of(" \t\r");
        line = last == std::string::npos ? "" : line.substr(0, last + 1);
        const std::size_t first = line.find_first_not_of(" \t");
        line = first == std::string::npos ? "" : line.substr(first);
        if (line.empty() || line[0] == '#')
            continue;
        std::string err;
        if (!parseRule(line, &err))
            errors.push_back(path + ":" + std::to_string(lineno) + ": " +
                             err);
    }
    if (!errors.empty()) {
        std::string all;
        for (const std::string &e : errors)
            all += "\n  " + e;
        fatal("%zu bad fault rule(s):%s", errors.size(), all.c_str());
    }
}

FaultPlan
FaultPlan::fromConfig(const SimConfig &cfg)
{
    FaultPlan plan;
    std::vector<std::string> errors;
    for (std::size_t i = 0; i < cfg.faultRules.size(); ++i) {
        std::string err;
        if (!plan.parseRule(cfg.faultRules[i], &err))
            errors.push_back("fault rule " + std::to_string(i + 1) +
                             " ('" + cfg.faultRules[i] + "'): " + err);
    }
    if (!errors.empty()) {
        std::string all;
        for (const std::string &e : errors)
            all += "\n  " + e;
        fatal("%zu bad fault rule(s):%s", errors.size(), all.c_str());
    }
    if (!cfg.faultPlanFile.empty())
        plan.loadFile(cfg.faultPlanFile);
    plan.retryTimeout = cfg.faultTimeout;
    plan.maxRetries = cfg.faultMaxRetries;
    plan.normalize();
    return plan;
}

void
FaultPlan::normalize()
{
    std::sort(_windows.begin(), _windows.end(),
              [](const LinkWindow &a, const LinkWindow &b) {
                  if (a.link != b.link)
                      return a.link < b.link;
                  if (a.t0 != b.t0)
                      return a.t0 < b.t0;
                  if (a.t1 != b.t1)
                      return a.t1 < b.t1;
                  return a.factor < b.factor;
              });
    // Merge overlapping/adjacent down windows of one link; degraded
    // (factor > 0) windows stay separate — overlaps resolve to the
    // minimum factor at query time.
    std::vector<LinkWindow> merged;
    for (const LinkWindow &w : _windows) {
        if (!merged.empty()) {
            LinkWindow &p = merged.back();
            if (p.link == w.link && p.factor == 0.0 && w.factor == 0.0 &&
                w.t0 <= p.t1) {
                if (p.t1 != kEnd && (w.t1 == kEnd || w.t1 > p.t1))
                    p.t1 = w.t1;
                continue;
            }
        }
        merged.push_back(w);
    }
    _windows = std::move(merged);

    std::sort(_stragglers.begin(), _stragglers.end(),
              [](const StragglerRule &a, const StragglerRule &b) {
                  if (a.node != b.node)
                      return a.node < b.node;
                  return a.factor < b.factor;
              });
    std::sort(_drops.begin(), _drops.end(),
              [](const DropRule &a, const DropRule &b) {
                  if (a.link != b.link)
                      return a.link < b.link;
                  if (a.t0 != b.t0)
                      return a.t0 < b.t0;
                  return a.every < b.every;
              });
}

FaultManager::FaultManager(FaultPlan plan) : _plan(std::move(plan))
{
    _plan.normalize();
    for (const LinkWindow &w : _plan.windows())
        _byLink[w.link].push_back(w);
    // Several rules targeting one node resolve to the largest factor.
    for (const StragglerRule &r : _plan.stragglers()) {
        double &f = _slowdown[r.node];
        f = std::max(f, r.factor);
    }
    for (const DropRule &r : _plan.drops())
        _dropsByLink[r.link].push_back(DropState{r, 0, 0});
}

namespace
{

inline bool
covers(Tick t0, Tick t1, Tick now)
{
    return t0 <= now && (t1 == FaultPlan::kEnd || now < t1);
}

} // namespace

double
FaultManager::bandwidthFactor(int link, Tick now) const
{
    auto it = _byLink.find(link);
    if (it == _byLink.end())
        return 1.0;
    double factor = 1.0;
    for (const LinkWindow &w : it->second) {
        if (covers(w.t0, w.t1, now))
            factor = std::min(factor, w.factor);
    }
    return factor;
}

Tick
FaultManager::downUntil(int link, Tick now) const
{
    auto it = _byLink.find(link);
    if (it == _byLink.end())
        return 0;
    Tick until = 0;
    for (const LinkWindow &w : it->second) {
        if (w.factor == 0.0 && covers(w.t0, w.t1, now)) {
            if (w.t1 == FaultPlan::kEnd)
                return FaultPlan::kEnd;
            until = std::max(until, w.t1);
        }
    }
    return until;
}

bool
FaultManager::downForever(int link) const
{
    auto it = _byLink.find(link);
    if (it == _byLink.end())
        return false;
    for (const LinkWindow &w : it->second) {
        if (w.factor == 0.0 && w.t1 == FaultPlan::kEnd)
            return true;
    }
    return false;
}

double
FaultManager::computeSlowdown(NodeId node) const
{
    auto it = _slowdown.find(node);
    return it == _slowdown.end() ? 1.0 : it->second;
}

bool
FaultManager::shouldDropPacket(int link, Tick now)
{
    auto it = _dropsByLink.find(link);
    if (it == _dropsByLink.end())
        return false;
    bool drop = false;
    for (DropState &st : it->second) {
        if (!covers(st.rule.t0, st.rule.t1, now))
            continue;
        ++st.seen;
        if (!drop && st.seen % st.rule.every == 0 &&
            (st.rule.limit == 0 || st.dropped < st.rule.limit)) {
            ++st.dropped;
            drop = true;
        }
    }
    if (drop)
        ++_dropsInjected;
    return drop;
}

void
FaultManager::bindRingChannels(
    const std::map<std::pair<int, int>, std::vector<std::int32_t>>
        &ring_links)
{
    for (const auto &entry : ring_links) {
        const int dim = entry.first.first;
        const int channel = entry.first.second;
        int &bound = _boundChannels[dim];
        bound = std::max(bound, channel + 1);
        bool usable = true;
        for (const std::int32_t link : entry.second) {
            if (link >= 0 && downForever(link)) {
                usable = false;
                break;
            }
        }
        if (usable)
            _usableChannels[dim].push_back(channel);
    }
}

int
FaultManager::pickChannel(int dim, int channels, StreamId id) const
{
    const int fallback = static_cast<int>(id % StreamId(channels));
    auto bound = _boundChannels.find(dim);
    if (bound == _boundChannels.end() || bound->second < channels)
        return fallback;
    std::vector<int> ok;
    auto it = _usableChannels.find(dim);
    if (it != _usableChannels.end()) {
        for (const int c : it->second) {
            if (c < channels)
                ok.push_back(c);
        }
    }
    // Every channel usable: keep the historical choice bit-for-bit.
    // None usable: nowhere better to re-plan to; the retry machinery
    // owns what happens next.
    if (ok.empty() || static_cast<int>(ok.size()) == channels)
        return fallback;
    return ok[std::size_t(id % StreamId(ok.size()))];
}

std::string
formatFailureReport(RunOutcome outcome,
                    const std::vector<FailureRecord> &failures)
{
    if (outcome == RunOutcome::Completed && failures.empty())
        return "";
    std::string out = strprintf("outcome: %s\n", toString(outcome));
    out += strprintf("%zu failed transfer(s)\n", failures.size());
    for (const FailureRecord &f : failures) {
        out += strprintf(
            "  node %d link %d stream %llu at tick %llu after %d "
            "retr%s: %s\n",
            f.node, f.link, static_cast<unsigned long long>(f.stream),
            static_cast<unsigned long long>(f.tick), f.retries,
            f.retries == 1 ? "y" : "ies", f.reason.c_str());
    }
    return out;
}

std::string
failureReportJsonMembers(RunOutcome outcome,
                         const std::vector<FailureRecord> &failures)
{
    std::string out =
        strprintf("  \"outcome\": \"%s\",\n", toString(outcome));
    out += "  \"failures\": [";
    for (std::size_t i = 0; i < failures.size(); ++i) {
        const FailureRecord &f = failures[i];
        out += i ? ",\n    " : "\n    ";
        out += strprintf("{\"node\": %d, \"link\": %d, \"stream\": %llu, "
                         "\"tick\": %llu, \"retries\": %d, "
                         "\"reason\": \"%s\"}",
                         f.node, f.link,
                         static_cast<unsigned long long>(f.stream),
                         static_cast<unsigned long long>(f.tick),
                         f.retries, jsonEscape(f.reason).c_str());
    }
    out += failures.empty() ? "],\n" : "\n  ],\n";
    return out;
}

} // namespace astra
