/**
 * @file
 * Fig. 9 — 1D topology comparison: alltoall vs. Torus.
 *
 * 8 NAPs with one NAM each. Each NAM has 8 inter-package links:
 *  - alltoall: one link per peer through 7 global switches (one link
 *    sits unused, Sec. V-A);
 *  - Torus: a 1D ring with four links per neighbour direction
 *    (4 bidirectional rings).
 *
 * Sweeps the collective payload and reports communication time for the
 * all-to-all and all-reduce collectives on both topologies. Expected
 * shape (paper): for all-to-all the alltoall topology always wins with
 * the gap narrowing as size grows; for all-reduce the Torus overtakes
 * at large sizes (it uses all 8 links and pipelines chunks across
 * rings, while alltoall queues on the single link per peer pair).
 */

#include "bench/support.hh"

using namespace astra;
using namespace astra::bench;

namespace
{

SimConfig
torusConfig()
{
    SimConfig cfg;
    cfg.torus(1, 8, 1);
    cfg.package.rings = 4; // 4 bidirectional rings = 8 links per NAM
    return cfg;
}

SimConfig
allToAllConfig()
{
    SimConfig cfg;
    cfg.allToAll(1, 8, 7); // 7 switches, one link per peer
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv);
    banner("Fig. 9", "1D topology: alltoall vs Torus, 8 NAPs");

    const auto sizes = args.quick ? sizeSweep(64 * KiB, 1 * MiB)
                                  : sizeSweep(32 * KiB, 32 * MiB);

    for (CollectiveKind kind :
         {CollectiveKind::AllToAll, CollectiveKind::AllReduce}) {
        // Every (topology, size) cell is an independent simulation:
        // build the flat job list and fan it out across --jobs workers.
        std::vector<CollectiveJob> sweep;
        for (Bytes size : sizes) {
            SimConfig a2a = allToAllConfig();
            SimConfig torus = torusConfig();
            applyOverrides(args, a2a);
            applyOverrides(args, torus);
            sweep.push_back({a2a, kind, size});
            sweep.push_back({torus, kind, size});
        }
        const std::vector<Tick> times = timeCollectives(args, sweep);

        Table t;
        t.header({"size", "alltoall_cycles", "torus_cycles",
                  "alltoall/torus"});
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const Tick ta = times[2 * i];
            const Tick tt = times[2 * i + 1];
            t.row()
                .cell(formatBytes(sizes[i]))
                .cell(std::uint64_t(ta))
                .cell(std::uint64_t(tt))
                .cell(double(ta) / double(tt), "%.3f");
        }
        std::printf("collective: %s\n", toString(kind));
        emitTable(args,
                  std::string("fig09_") + toString(kind) + ".csv", t);
    }
    writeReport(args);
    return 0;
}
