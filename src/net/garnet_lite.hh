/**
 * @file
 * "Garnet-lite": a packet-level network backend with credit-based
 * backpressure, standing in for the Garnet NoC simulator the paper
 * builds on (see DESIGN.md, substitution #1).
 *
 * Modelled mechanisms:
 *  - messages are packetized per link class (512 B intra-package,
 *    256 B inter-package by default — parameters #20/#21);
 *  - a packet serializes on a link for flits * flit-time, where a flit
 *    is flit-width bits (#19) and flit-time is derived from the link
 *    bandwidth; link efficiency (#17/#18) models header-flit overhead;
 *  - each link's downstream input buffer holds at most
 *    vcs-per-vnet * buffers-per-vc flits (#24/#28); packets wait for
 *    credits before being granted the link, giving real backpressure;
 *  - each hop adds router pipeline latency (#25) plus wire latency;
 *  - injection policy (#15): Aggressive injects every packet of a
 *    message at once; Normal paces injection one packet at a time.
 *
 * Not modelled (vs. real Garnet): per-VC allocation/arbitration within
 * a router and flit-by-flit wormhole interleaving. Packets are the
 * atomic scheduling unit. Tests cross-check this backend against the
 * analytical one on uncongested transfers.
 */

#ifndef ASTRA_NET_GARNET_LITE_HH
#define ASTRA_NET_GARNET_LITE_HH

#include <deque>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "net/fabric.hh"
#include "net/network_api.hh"

namespace astra
{

/**
 * Packet-level backend with credits.
 */
class GarnetLiteNetwork : public NetworkApi
{
  public:
    /**
     * @param one_to_one  False when @p topo is a physical fabric
     *        distinct from the system layer's logical topology
     *        (Sec. IV-B mapping); see Fabric::resolve.
     */
    GarnetLiteNetwork(EventQueue &eq, const Topology &topo,
                      const SimConfig &cfg, bool one_to_one = true);

    void send(Message msg) override;

    EventQueue &eventQueue() override { return _eq; }

    const Fabric &fabric() const { return _fabric; }

    /** Total packets that completed their route. */
    std::uint64_t deliveredPackets() const { return _deliveredPackets; }

    /** Packets the fault plan discarded (flit drop + credit reclaim). */
    std::uint64_t droppedPackets() const { return _droppedPackets; }

    /** Peak flit occupancy seen in any input buffer (for tests). */
    int peakBufferOccupancy() const { return _peakOccupancy; }

    /**
     * Packet objects ever allocated (pool high-water mark). Bounded by
     * the peak number of concurrently in-flight packets, not by the
     * delivered-packet count — the free-list test relies on this.
     */
    std::size_t allocatedPackets() const { return _packetArena.size(); }

    /** Total packets handed to the injection queues. */
    std::uint64_t injectedPackets() const { return _injectedPackets; }

    /** Total ticks packets spent blocked on downstream credits. */
    Tick creditStallTicks() const { return _creditStall; }

    /** Usage tallies of link @p id (zeroes when net-metrics is off). */
    const LinkUsage &
    linkUsage(LinkId id) const
    {
        return _usage[std::size_t(id)];
    }

    /**
     * Publish link utilization (per link and per dimension), per-hop
     * latency and VC-occupancy histograms, credit-stall time, and
     * packet/flit injected-vs-retired counters into @p g. @p elapsed
     * is the observation window; zero yields 0.0 utilization.
     */
    void exportStats(StatGroup &g, Tick elapsed) const;

    void
    exportStats(StatGroup &g) const override
    {
        exportStats(g, _eq.now());
    }

    /**
     * Register the garnet-lite drain checker (credit ledger + packet/
     * flit conservation) with @p reg. See src/net/validate.cc.
     */
    void registerCheckers(ValidatorRegistry &reg) override;

    /**
     * Drain-time invariants: all credits returned (every input buffer
     * empty), no packet waiting on any link, injected == retired for
     * packets and flits, and every arena Packet back on the free list.
     * Raises an ASTRA_CHECK diagnostic on violation.
     */
    void validateDrain() const;

  private:
    struct MessageState
    {
        Message msg;
        int packetsLeft;
        int packetsUninjected; //!< for Normal injection pacing
        /**
         * Fault layer: some packet of this message was dropped, so the
         * message completes as a loss (notifyLoss) instead of a
         * delivery once the surviving packets retire.
         */
        bool lost = false;
        int lostLink = -1; //!< link of the first drop
    };
    using MessageRef = std::shared_ptr<MessageState>;

    /**
     * One packet in flight. At any instant a packet is referenced from
     * exactly one place — either some link's waiting queue or the one
     * arrive() event scheduled for it — so packets are plain pointers
     * into an arena owned by the network, recycled through a free
     * list instead of being heap-allocated per packet. Packetizing a
     * multi-megabyte message no longer churns the allocator: steady
     * state reuses as many Packet objects as are concurrently in
     * flight.
     */
    struct Packet
    {
        MessageRef parent;
        std::shared_ptr<std::vector<LinkId>> path;
        std::size_t hop = 0;
        int flits = 0;
        Bytes bytes = 0;
        /** When the packet joined its current link's waiting queue. */
        Tick waitSince = 0;
        /** First credit-check failure on this hop (invalid: none). */
        Tick creditStallSince = kTickInvalid;
    };
    using PacketRef = Packet *;

    struct LinkState
    {
        Tick freeAt = 0;
        std::deque<PacketRef> waiting;
        int bufferOcc = 0; //!< flits queued in the downstream buffer
        /**
         * Earliest already-scheduled pump event (kTickInvalid: none).
         * Coalesces retries: without it every waiting packet would
         * schedule its own wake-up at freeAt, turning a busy link into
         * an O(n^2) event storm.
         */
        Tick pumpAt = kTickInvalid;
    };

    /** Try to grant the head waiter(s) of link @p l. */
    void pump(LinkId l);

    /** Schedule pump(l) at @p when (coalesces duplicates). */
    void schedulePump(LinkId l, Tick when);

    /** Packet fully arrived at the downstream end of link @p l. */
    void arrive(PacketRef pkt, LinkId l);

    /**
     * Fault layer: discard @p pkt at link @p l. Reclaims the upstream
     * credits the packet held (or paces the next injection when it was
     * still at its source), marks the parent message lost, and fires
     * notifyLoss once the message's last packet has retired or
     * dropped. The single place dropped packets leave the network, so
     * credits are reclaimed exactly once.
     */
    void dropPacket(PacketRef pkt, LinkId l, Tick now);

    /** Begin injecting @p ms (after any transport-layer delay). */
    void inject(const MessageRef &ms,
                const std::shared_ptr<std::vector<LinkId>> &path);

    /** Inject the next not-yet-injected packet of @p ms. */
    void injectNext(const MessageRef &ms,
                    const std::shared_ptr<std::vector<LinkId>> &path);

    /** Flits in a packet of @p bytes. */
    int flitsOf(Bytes bytes) const;

    /** Serialization time of @p flits on a link of class @p cls. */
    Tick flitTxTime(LinkClass cls, int flits) const;

    /** Take a Packet from the free list (grows the arena if dry). */
    Packet *allocPacket();

    /** Return a finished Packet to the free list. */
    void recyclePacket(Packet *pkt);

    EventQueue &_eq;
    Fabric _fabric;
    InjectionPolicy _injection;
    Tick _routerLatency;
    int _flitBytes;
    int _bufferCapacityFlits;
    Tick _protocolDelay; //!< scale-out transport cost per message
    std::vector<LinkState> _links;
    /** Every Packet ever allocated; owns the storage _packetFree and
     *  in-flight PacketRefs point into. */
    std::vector<std::unique_ptr<Packet>> _packetArena;
    std::vector<Packet *> _packetFree; //!< recycled, ready for reuse
    std::uint64_t _deliveredPackets = 0;
    std::uint64_t _droppedPackets = 0;
    std::uint64_t _droppedFlits = 0;
    int _peakOccupancy = 0;

    /** Incremental credit-ledger checks on (level >= basic). */
    bool _validate;

    /**
     * Opt-in pump coalescing (net-coalesce, SimConfig::netCoalesce):
     * a busy source link batch-grants future wire slots from the
     * current pump event instead of waking once per packet. Delivery
     * times are unchanged; the retired-event stream (and so the event
     * digest) is not — see pump().
     */
    bool _coalesce;

    // Observer-only instrumentation (see DESIGN.md).
    bool _metrics;
    std::vector<LinkUsage> _usage;
    std::uint64_t _injectedPackets = 0;
    std::uint64_t _injectedFlits = 0;
    std::uint64_t _retiredFlits = 0;
    Tick _creditStall = 0;   //!< total ticks blocked on credits
    Histogram _hopLatency;   //!< queue -> arrival time per hop, ticks
    Histogram _occHist;      //!< buffer occupancy at grant, flits
};

} // namespace astra

#endif // ASTRA_NET_GARNET_LITE_HH
