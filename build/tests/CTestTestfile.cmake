# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_collective[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_explore[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
add_test(cli_collective_mode "/root/repo/build/tools/astra-sim" "--collective=allreduce" "--bytes=1MB" "--config=/root/repo/configs/asymmetric_4x4x4.cfg")
set_tests_properties(cli_collective_mode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;78;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_workload_mode "/root/repo/build/tools/astra-sim" "--model=transformer" "--num-passes=1")
set_tests_properties(cli_workload_mode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;81;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_pipeline_mode "/root/repo/build/tools/astra-sim" "--model=resnet50" "--pipeline=2" "--num-passes=1" "--local-dim=2" "--num-packages=4" "--package-rows=1")
set_tests_properties(cli_pipeline_mode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;83;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_scaleout_config "/root/repo/build/tools/astra-sim" "--collective=allreduce" "--bytes=256KB" "--config=/root/repo/configs/two_pod_scaleout.cfg")
set_tests_properties(cli_scaleout_config PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;86;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_table4_config "/root/repo/build/tools/astra-sim" "--collective=alltoall" "--bytes=256KB" "--config=/root/repo/configs/table4_defaults.cfg")
set_tests_properties(cli_table4_config PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;89;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;92;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_custom_workload "/root/repo/build/examples/custom_workload")
set_tests_properties(example_custom_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;93;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_multi_pod_gpt "/root/repo/build/examples/multi_pod_gpt")
set_tests_properties(example_multi_pod_gpt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;94;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bench_fig09_quick "/root/repo/build/bench/fig09_1d_topology" "--quick")
set_tests_properties(bench_fig09_quick PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;95;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bench_fig12_quick "/root/repo/build/bench/fig12_scaling" "--quick")
set_tests_properties(bench_fig12_quick PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;96;add_test;/root/repo/tests/CMakeLists.txt;0;")
