#include "net/fabric.hh"

#include "common/logging.hh"

namespace astra
{

Fabric::Fabric(const Topology &topo, const SimConfig &cfg,
               bool one_to_one)
    : _topo(topo), _oneToOne(one_to_one), _local(cfg.local),
      _package(cfg.package), _scaleout(cfg.scaleout)
{
    const int nodes = topo.numNodes();

    for (int d = 0; d < topo.numDims(); ++d) {
        const DimInfo &info = topo.dim(d);
        if (info.size < 2)
            continue; // degenerate dimension: no links needed
        if (info.pattern == DimPattern::Ring) {
            for (int ch = 0; ch < info.channels; ++ch) {
                std::vector<LinkId> per_node(std::size_t(nodes), -1);
                for (NodeId u = 0; u < nodes; ++u) {
                    NodeId v = topo.ringNext(d, ch, u);
                    per_node[std::size_t(u)] =
                        static_cast<LinkId>(_links.size());
                    _links.push_back(LinkDesc{u, v, info.linkClass});
                }
                _ringLinks[{d, ch}] = std::move(per_node);
            }
        } else {
            // Switch dimension: every node connects to every global
            // switch of the dimension. Switch ports get ids above the
            // node id space, unique across dimensions.
            const int switches = topo.numSwitches(d);
            for (int s = 0; s < switches; ++s) {
                const std::int32_t port = nodes + _switchPorts++;
                auto &up = _upLinks[{d, s}];
                auto &down = _downLinks[{d, s}];
                up.resize(std::size_t(nodes));
                down.resize(std::size_t(nodes));
                for (NodeId u = 0; u < nodes; ++u) {
                    up[std::size_t(u)] =
                        static_cast<LinkId>(_links.size());
                    _links.push_back(LinkDesc{u, port, info.linkClass});
                    down[std::size_t(u)] =
                        static_cast<LinkId>(_links.size());
                    _links.push_back(LinkDesc{port, u, info.linkClass});
                }
            }
        }
    }
}

std::vector<LinkId>
Fabric::route(NodeId src, NodeId dst, const RouteHint &hint) const
{
    std::vector<LinkId> path;
    if (src == dst)
        return path;

    const int d = hint.dim;
    if (d < 0 || d >= _topo.numDims())
        panic("route: dimension %d out of range", d);
    const DimInfo &info = _topo.dim(d);

    // src and dst must differ only along dimension d.
    Coord cs = _topo.coordOf(src);
    Coord cd = _topo.coordOf(dst);
    for (int i = 0; i < 4; ++i) {
        if (i != d && cs[i] != cd[i]) {
            panic("route: %d -> %d not confined to dimension %d", src,
                  dst, d);
        }
    }

    if (info.pattern == DimPattern::Ring) {
        auto it = _ringLinks.find({d, hint.channel});
        if (it == _ringLinks.end())
            panic("route: no ring channel %d in dim %d", hint.channel, d);
        const auto &per_node = it->second;
        NodeId cur = src;
        int guard = info.size;
        while (cur != dst) {
            if (guard-- < 0)
                panic("route: ring walk did not terminate");
            LinkId l = per_node[std::size_t(cur)];
            path.push_back(l);
            cur = link(l).to;
        }
    } else {
        const int s = hint.channel;
        if (s < 0 || s >= _topo.numSwitches(d))
            panic("route: switch %d out of range in dim %d", s, d);
        path.push_back(_upLinks.at({d, s})[std::size_t(src)]);
        path.push_back(_downLinks.at({d, s})[std::size_t(dst)]);
    }
    return path;
}

std::vector<LinkId>
Fabric::routeMapped(NodeId src, NodeId dst, int channel_seed) const
{
    std::vector<LinkId> path;
    if (src == dst)
        return path;

    // Correct coordinates dimension by dimension, local dimension
    // first (it is the cheapest), using the seed to spread traffic
    // over the channels/switches of each dimension.
    NodeId cur = src;
    const Coord target = _topo.coordOf(dst);
    for (int d = 0; d < _topo.numDims(); ++d) {
        if (_topo.coordOf(cur)[d] == target[d])
            continue;
        Coord next_c = _topo.coordOf(cur);
        next_c[d] = target[d];
        const NodeId next = _topo.nodeAt(next_c);
        const int channels = _topo.dim(d).channels;
        const RouteHint hint{d, channel_seed % channels};
        std::vector<LinkId> seg = route(cur, next, hint);
        path.insert(path.end(), seg.begin(), seg.end());
        cur = next;
    }
    return path;
}

int
Fabric::hopCount(NodeId src, NodeId dst, const RouteHint &hint) const
{
    if (src == dst)
        return 0;
    const DimInfo &info = _topo.dim(hint.dim);
    if (info.pattern == DimPattern::Switch)
        return 2;
    return _topo.ringDistance(hint.dim, hint.channel, src,
                              _topo.rankInGroup(hint.dim, dst));
}

} // namespace astra
