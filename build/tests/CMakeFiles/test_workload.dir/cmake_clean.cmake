file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/compute_test.cc.o"
  "CMakeFiles/test_workload.dir/workload/compute_test.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/layer_test.cc.o"
  "CMakeFiles/test_workload.dir/workload/layer_test.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/models_test.cc.o"
  "CMakeFiles/test_workload.dir/workload/models_test.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/pipeline_test.cc.o"
  "CMakeFiles/test_workload.dir/workload/pipeline_test.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/trainer_test.cc.o"
  "CMakeFiles/test_workload.dir/workload/trainer_test.cc.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
