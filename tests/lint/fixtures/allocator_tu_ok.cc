// Negative fixture for allocator-tu: the file-level tag below declares
// this TU an allocator implementation (slab / arena / small-buffer
// storage), so its placement news are the legitimate machinery of
// manual lifetime management and produce no diagnostics. Allocating
// `new` is still banned here — the tag is not a blanket suppression —
// but this fixture stays clean so the negative case is unambiguous.
//
// astra-lint: allocator-tu (tiny slab used by the fixture)
#include <new>

class FixtureSlab
{
  public:
    int *
    construct(int v)
    {
        int *p = ::new (static_cast<void *>(_bytes + _used)) int(v);
        _used += sizeof(int);
        return p;
    }

  private:
    alignas(8) unsigned char _bytes[64];
    unsigned _used = 0;
};

int
use()
{
    FixtureSlab slab;
    return *slab.construct(7);
}
