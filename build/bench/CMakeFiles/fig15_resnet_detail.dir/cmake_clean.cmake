file(REMOVE_RECURSE
  "CMakeFiles/fig15_resnet_detail.dir/fig15_resnet_detail.cc.o"
  "CMakeFiles/fig15_resnet_detail.dir/fig15_resnet_detail.cc.o.d"
  "fig15_resnet_detail"
  "fig15_resnet_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_resnet_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
