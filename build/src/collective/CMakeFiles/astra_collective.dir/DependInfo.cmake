
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collective/algorithm_factory.cc" "src/collective/CMakeFiles/astra_collective.dir/algorithm_factory.cc.o" "gcc" "src/collective/CMakeFiles/astra_collective.dir/algorithm_factory.cc.o.d"
  "/root/repo/src/collective/chunk_state.cc" "src/collective/CMakeFiles/astra_collective.dir/chunk_state.cc.o" "gcc" "src/collective/CMakeFiles/astra_collective.dir/chunk_state.cc.o.d"
  "/root/repo/src/collective/direct_algorithms.cc" "src/collective/CMakeFiles/astra_collective.dir/direct_algorithms.cc.o" "gcc" "src/collective/CMakeFiles/astra_collective.dir/direct_algorithms.cc.o.d"
  "/root/repo/src/collective/phase_plan.cc" "src/collective/CMakeFiles/astra_collective.dir/phase_plan.cc.o" "gcc" "src/collective/CMakeFiles/astra_collective.dir/phase_plan.cc.o.d"
  "/root/repo/src/collective/ring_algorithms.cc" "src/collective/CMakeFiles/astra_collective.dir/ring_algorithms.cc.o" "gcc" "src/collective/CMakeFiles/astra_collective.dir/ring_algorithms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/astra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/astra_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/astra_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
