#include <gtest/gtest.h>

#include "common/bitvec.hh"
#include "common/logging.hh"

namespace astra
{
namespace
{

TEST(BitVec, StartsEmpty)
{
    BitVec v(100);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_TRUE(v.none());
    EXPECT_FALSE(v.all());
    EXPECT_EQ(v.count(), 0u);
}

TEST(BitVec, SetResetTest)
{
    BitVec v(130); // spans three words
    v.set(0);
    v.set(64);
    v.set(129);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(129));
    EXPECT_FALSE(v.test(1));
    EXPECT_EQ(v.count(), 3u);
    v.reset(64);
    EXPECT_FALSE(v.test(64));
    EXPECT_EQ(v.count(), 2u);
}

TEST(BitVec, AllDetectsFullVector)
{
    BitVec v(67);
    for (std::size_t i = 0; i < 67; ++i)
        v.set(i);
    EXPECT_TRUE(v.all());
    EXPECT_EQ(v.count(), 67u);
    v.reset(66);
    EXPECT_FALSE(v.all());
}

TEST(BitVec, UnionAndIntersection)
{
    BitVec a(10), b(10);
    a.set(1);
    a.set(3);
    b.set(3);
    b.set(7);
    EXPECT_TRUE(a.intersects(b));
    BitVec u = a;
    u |= b;
    EXPECT_EQ(u.count(), 3u);
    EXPECT_TRUE(u.test(1));
    EXPECT_TRUE(u.test(3));
    EXPECT_TRUE(u.test(7));
    BitVec i = a;
    i &= b;
    EXPECT_EQ(i.count(), 1u);
    EXPECT_TRUE(i.test(3));
}

TEST(BitVec, DisjointVectorsDoNotIntersect)
{
    BitVec a(128), b(128);
    a.set(0);
    b.set(127);
    EXPECT_FALSE(a.intersects(b));
}

TEST(BitVec, SizeMismatchPanics)
{
    BitVec a(10), b(11);
    EXPECT_THROW(a |= b, FatalError);
    EXPECT_THROW(a &= b, FatalError);
    EXPECT_THROW((void)a.intersects(b), FatalError);
}

TEST(BitVec, EqualityAndToString)
{
    BitVec a(4), b(4);
    a.set(1);
    b.set(1);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.toString(), "0100");
    b.set(3);
    EXPECT_NE(a, b);
}

TEST(BitVec, ZeroSized)
{
    BitVec v(0);
    EXPECT_TRUE(v.none());
    EXPECT_TRUE(v.all()); // vacuously
    EXPECT_EQ(v.count(), 0u);
}

} // namespace
} // namespace astra
