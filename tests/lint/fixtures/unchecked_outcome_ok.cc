// Clean counterparts: the must-use result is assigned and checked,
// returned, branched on, or explicitly discarded with (void).

// astra-lint: must-use
enum class LoadStatus
{
    kOk,
    kFailed,
};

LoadStatus
loadTable(int x)
{
    if (x > 0)
        return LoadStatus::kOk;
    return LoadStatus::kFailed;
}

LoadStatus
forwarded(int x)
{
    return loadTable(x);
}

void
assignedAndChecked()
{
    LoadStatus st = loadTable(3);
    if (st == LoadStatus::kFailed)
        recordFailure();
}

void
branchedDirectly()
{
    if (loadTable(0) == LoadStatus::kFailed)
        recordFailure();
}

void
intentionalDrop()
{
    (void)loadTable(1);
}
