#include "core/sys.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"
#include "fault/fault.hh"

namespace astra
{

Sys::Sys(NodeId id, const Topology &topo, NetworkApi &net,
         const SimConfig &cfg)
    : _id(id), _topo(topo), _net(net), _cfg(cfg), _scheduler(*this, cfg)
{
    if (id < 0 || id >= topo.numNodes())
        fatal("Sys node id %d out of range", id);
    _net.setReceiver(id, [this](const Message &m) { onMessage(m); });
}

std::shared_ptr<CollectiveHandle>
Sys::issueCollective(const CollectiveRequest &req)
{
    if (req.kind == CollectiveKind::None)
        fatal("cannot issue CollectiveKind::None");
    if (req.bytes == 0)
        fatal("cannot issue a zero-byte collective");

    std::vector<int> dims = req.dims;
    if (dims.empty()) {
        for (int d = 0; d < _topo.numDims(); ++d)
            dims.push_back(d);
    }

    GroupInfo group(_topo, _id, dims);
    PhasePlan plan =
        buildPhasePlan(_topo, dims, req.kind, _cfg.algorithm);

    int splits = req.setSplits > 0 ? req.setSplits
                                   : _cfg.preferredSetSplits;
    // Never create zero-byte chunks.
    splits = static_cast<int>(
        std::min<Bytes>(Bytes(splits), std::max<Bytes>(1, req.bytes)));

    auto handle = std::make_shared<CollectiveHandle>();
    handle->kind = req.kind;
    handle->totalBytes = req.bytes;
    handle->layer = req.layer;
    handle->issuedAt = now();
    handle->remainingChunks = splits;
    handle->onComplete = req.onComplete;

    const Bytes base = req.bytes / Bytes(splits);
    const Bytes rem = req.bytes % Bytes(splits);

    _stats.inc("issued.sets");
    _stats.inc("issued.chunks", splits);
    _stats.inc("issued.bytes", static_cast<double>(req.bytes));

    for (int i = 0; i < splits; ++i) {
        const Bytes chunk_bytes = base + (Bytes(i) < rem ? 1 : 0);
        const StreamId sid = _nextStreamId++;
        if (plan.empty()) {
            // Single-participant group: nothing to communicate; the
            // chunk completes on the next event boundary.
            eventQueue().scheduleAfter(0, [this, handle] {
                if (--handle->remainingChunks == 0) {
                    handle->completedAt = now();
                    if (handle->onComplete) {
                        // The callback usually captures the handle;
                        // clear it before firing or the shared_ptr
                        // cycle outlives completion.
                        auto cb = std::move(handle->onComplete);
                        handle->onComplete = nullptr;
                        cb();
                    }
                }
            });
            continue;
        }
        auto stream = std::make_unique<Stream>(
            *this, sid, req.kind, chunk_bytes, plan, group, handle);
        Stream *raw = stream.get();
        _streams[sid] = std::move(stream);
        _scheduler.submit(raw);
    }
    return handle;
}

void
Sys::sendMessage(Stream &stream, int dst_rank, int channel, Bytes bytes,
                 int step, std::shared_ptr<void> payload)
{
    const PhaseDesc &ph = stream.phaseDesc();
    Coord c = _topo.coordOf(_id);
    c[ph.dim] = dst_rank;
    const NodeId dst = _topo.nodeAt(c);

    Message msg;
    msg.src = _id;
    msg.dst = dst;
    msg.bytes = bytes;
    msg.hint = RouteHint{ph.dim, channel};
    msg.tag = MessageTag{stream.id(), stream.phase(), step,
                         stream.myRank()};
    msg.payload = std::move(payload);

    _stats.inc("sent.messages");
    _stats.inc("sent.bytes", static_cast<double>(bytes));
    _stats.inc("sent.bytes." + _topo.dim(ph.dim).name,
               static_cast<double>(bytes));
    _net.send(std::move(msg));
}

void
Sys::sendP2P(NodeId dst, Bytes bytes, std::uint64_t tag)
{
    if (dst < 0 || dst >= _topo.numNodes())
        fatal("sendP2P: destination %d out of range", dst);
    if (bytes == 0)
        fatal("sendP2P: zero-byte transfer");
    Message msg;
    msg.src = _id;
    msg.dst = dst;
    msg.bytes = bytes;
    // Negative dim marks a point-to-point transfer; the channel seed
    // spreads concurrent transfers over rings.
    msg.hint = RouteHint{-1, static_cast<int>(tag & 0xffff)};
    msg.tag.stream = tag;
    msg.tag.phase = -1;
    _stats.inc("sent.messages");
    _stats.inc("sent.bytes", static_cast<double>(bytes));
    _stats.inc("sent.bytes.p2p", static_cast<double>(bytes));
    _net.send(std::move(msg));
}

void
Sys::expectP2P(NodeId src, std::uint64_t tag, std::function<void()> cb)
{
    const auto key = std::make_pair(src, tag);
    auto arrived = _p2pArrived.find(key);
    if (arrived != _p2pArrived.end()) {
        if (--arrived->second == 0)
            _p2pArrived.erase(arrived);
        cb();
        return;
    }
    if (!_p2pExpected.emplace(key, std::move(cb)).second)
        panic("duplicate P2P expectation for (src=%d, tag=%llu)", src,
              static_cast<unsigned long long>(tag));
}

void
Sys::setFaults(const FaultManager *faults,
               std::function<void(const FailureRecord &)> sink)
{
    _faults = faults;
    _failureSink = std::move(sink);
}

void
Sys::onMessageLost(const Message &msg, int link)
{
    const int max_retries = _faults ? _faults->maxRetries() : 0;

    // Note the timeout on the live chunk so the legal-transition table
    // vets it: a loss racing a finalized chunk dies under validation.
    Stream *s = nullptr;
    if (msg.tag.phase >= 0) {
        auto it = _streams.find(msg.tag.stream);
        if (it != _streams.end())
            s = it->second.get();
    }
    if (s)
        s->data().noteTimeout();

    if (msg.attempt >= max_retries) {
        _stats.inc("fault.retries_exhausted");
        FailureRecord rec;
        rec.node = _id;
        rec.link = link;
        rec.stream = msg.tag.stream;
        rec.tick = now();
        rec.retries = msg.attempt;
        rec.reason = strprintf(
            "send %d -> %d (%llu B) lost on link %d; %d attempt(s) "
            "exhausted",
            _id, msg.dst, static_cast<unsigned long long>(msg.bytes),
            link, msg.attempt + 1);
        if (_failureSink)
            _failureSink(rec);
        return;
    }

    if (s)
        s->data().noteRetry();
    _stats.inc("fault.retries");
    // Bounded exponential backoff: retryTimeout * 2^attempt, the shift
    // capped so a pathological retry budget cannot overflow the Tick.
    const Tick base = _faults ? _faults->retryTimeout() : Tick(1);
    const int shift = std::min<std::int32_t>(msg.attempt, 20);
    const Tick wait = base << shift;
    Message again = msg;
    again.attempt += 1;
    eventQueue().scheduleAfter(wait, [this, again]() mutable {
        _net.send(std::move(again));
    });
}

int
Sys::pickChannel(int dim, int channels, StreamId id) const
{
    if (_faults)
        return _faults->pickChannel(dim, channels, id);
    return static_cast<int>(id % StreamId(channels));
}

double
Sys::computeSlowdown() const
{
    return _faults ? _faults->computeSlowdown(_id) : 1.0;
}

Tick
Sys::scaledEndpointDelay() const
{
    const double f = computeSlowdown();
    if (f == 1.0)
        return _cfg.endpointDelay;
    return static_cast<Tick>(
        std::ceil(static_cast<double>(_cfg.endpointDelay) * f));
}

void
Sys::onP2PMessage(const Message &msg)
{
    // Endpoint processing cost, then match the expectation.
    eventQueue().scheduleAfter(scaledEndpointDelay(), [this, msg] {
        const auto key = std::make_pair(msg.src, msg.tag.stream);
        auto it = _p2pExpected.find(key);
        if (it == _p2pExpected.end()) {
            ++_p2pArrived[key];
            return;
        }
        auto cb = std::move(it->second);
        _p2pExpected.erase(it);
        cb();
    });
}

bool
Sys::hasBufferedMessages(StreamId sid, int phase) const
{
    return _unmatched.count({sid, phase}) > 0;
}

void
Sys::onMessage(const Message &msg)
{
    if (msg.tag.phase < 0) {
        onP2PMessage(msg);
        return;
    }
    const StreamId sid = msg.tag.stream;
    const int phase = msg.tag.phase;

    auto it = _streams.find(sid);
    if (it != _streams.end()) {
        Stream &s = *it->second;
        if (s.phase() == phase && s.phaseStarted()) {
            s.algorithm()->onMessage(msg);
            return;
        }
        if (s.phase() > phase) {
            panic("node %d: message for past phase %d of stream %llu "
                  "(now in %d)",
                  _id, phase, static_cast<unsigned long long>(sid),
                  s.phase());
        }
        _unmatched[{sid, phase}].push_back(msg);
        if (s.phase() == phase || (s.phase() == -1 && phase == 0))
            _scheduler.promoteIfWaiting(&s, phase);
        return;
    }
    // The peer is ahead of us: it issued (or advanced) a collective we
    // have not reached yet. Buffer until our workload catches up.
    _unmatched[{sid, phase}].push_back(msg);
}

void
Sys::startStreamPhase(Stream &stream)
{
    stream.startPhase(now());
    drainUnmatched(stream);
}

void
Sys::drainUnmatched(Stream &stream)
{
    auto it = _unmatched.find({stream.id(), stream.phase()});
    if (it == _unmatched.end())
        return;
    std::vector<Message> msgs = std::move(it->second);
    _unmatched.erase(it);
    for (const Message &m : msgs) {
        if (!stream.phaseStarted())
            panic("draining messages into an unstarted phase");
        stream.algorithm()->onMessage(m);
    }
}

void
Sys::streamPhaseDone(Stream &stream)
{
    ++_progress; // watchdog heartbeat: a phase completed on this node
    const int p = stream.phase();
    const Tick t = now();
    stream.finishedAt[std::size_t(p)] = t;
    const double active =
        static_cast<double>(t - stream.startedAt[std::size_t(p)]);
    _stats.sample(strprintf("network.P%d", p + 1), active);
    _stats.record(strprintf("network.P%d", p + 1), active);
    if (_trace) {
        const PhaseDesc &ph = stream.phaseDesc();
        const char *op = toString(ph.op);
        _trace->span(_id, 1 + p, "phase",
                     strprintf("%s(%s) chunk %llu", op,
                               _topo.dim(ph.dim).name.c_str(),
                               static_cast<unsigned long long>(
                                   stream.id())),
                     stream.startedAt[std::size_t(p)], t);
    }
    if (stream.handle()->layer >= 0) {
        _stats.sample(strprintf("layer%d.network.P%d",
                                stream.handle()->layer, p + 1),
                      active);
    }

    // Defer the transition so the algorithm's stack unwinds before the
    // algorithm object is destroyed.
    const StreamId sid = stream.id();
    eventQueue().schedule(t, [this, sid] { advanceStream(sid); },
                          /*priority=*/10);
}

void
Sys::advanceStream(StreamId sid)
{
    auto it = _streams.find(sid);
    if (it == _streams.end())
        panic("advanceStream: stream %llu vanished",
              static_cast<unsigned long long>(sid));
    Stream &s = *it->second;
    const int p = s.phase();
    const bool last = (std::size_t(p) + 1 == s.plan().size());
    s.clearAlgorithm();
    _scheduler.onPhaseFinished(&s, p, last);
    if (!last) {
        s.enterPhase(p + 1, now());
        _scheduler.enqueuePhase(&s, p + 1);
    } else {
        finishStream(s);
    }
}

void
Sys::finishStream(Stream &stream)
{
    ++_progress; // watchdog heartbeat: a whole stream completed

    // Built-in semantic post-conditions (Fig. 4): a schedule that
    // merely *timed* like a collective but moved the wrong data dies
    // here, on every run, not just under test.
    const ChunkState &d =
        const_cast<const ChunkState &>(
            const_cast<Stream &>(stream).data());
    switch (stream.kind()) {
      case CollectiveKind::AllReduce:
        if (!d.allReduced())
            panic("all-reduce post-condition violated (stream %llu)",
                  static_cast<unsigned long long>(stream.id()));
        break;
      case CollectiveKind::ReduceScatter:
        for (int e = d.current().lo; e < d.current().hi; ++e) {
            if (!d.valid(e) || !d.fullyReduced(e))
                panic("reduce-scatter post-condition violated");
        }
        break;
      case CollectiveKind::AllGather:
        if (!d.allValid())
            panic("all-gather post-condition violated");
        break;
      case CollectiveKind::AllToAll:
        if (!d.allToAllComplete())
            panic("all-to-all post-condition violated");
        break;
      case CollectiveKind::None:
        break;
    }

    // Seal the chunk: under validation any later mutation (a stray
    // in-flight payload, a double finish) is an illegal FSM transition.
    if (stream.kind() != CollectiveKind::None)
        stream.data().finalize();

    // No protocol leftovers may exist for this stream.
    auto lo = _unmatched.lower_bound({stream.id(), 0});
    if (lo != _unmatched.end() && lo->first.first == stream.id())
        panic("stream %llu completed with unconsumed messages",
              static_cast<unsigned long long>(stream.id()));

    if (_inspector)
        _inspector(stream);

    auto handle = stream.handle();
    _stats.inc("completed.chunks");

    // End-to-end chunk latency (submit -> all phases complete), overall
    // and per collective kind, plus the data-movement count.
    const double latency =
        static_cast<double>(now() - stream.submittedAt);
    _stats.record("chunk.latency", latency);
    _stats.record(strprintf("chunk.latency.%s", toString(stream.kind())),
                  latency);
    _stats.inc("chunk.payloads", static_cast<double>(d.payloadsApplied()));

    // Erase before firing callbacks: onComplete may issue collectives.
    _streams.erase(stream.id());

    if (--handle->remainingChunks == 0) {
        handle->completedAt = now();
        _stats.inc("completed.sets");
        if (handle->onComplete) {
            // The callback usually captures the handle; clear it
            // before firing or the shared_ptr cycle outlives
            // completion.
            auto cb = std::move(handle->onComplete);
            handle->onComplete = nullptr;
            cb();
        }
    }
}

} // namespace astra
