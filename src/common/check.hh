/**
 * @file
 * ASTRA_CHECK / ASTRA_DCHECK — the invariant-checking macro family of
 * the simulation integrity layer (docs/validation.md).
 *
 * ASTRA_CHECK(cond, fmt, ...) is always compiled: when @p cond is
 * false it raises a formatted fatal diagnostic carrying the source
 * location and the failed expression, so the message a user sees
 * pinpoints the offending value ("when=90 now=100"), not just "bad
 * argument". Use it on cold paths: argument validation, drain-time
 * invariant checkers, configuration parsing.
 *
 * ASTRA_DCHECK is the hot-path variant: it compiles to nothing unless
 * the build enables -DASTRA_VALIDATE (the `ASTRA_VALIDATE` CMake
 * option), so per-event assertions are zero-cost in release sweeps.
 * The condition is still type-checked in the off configuration (via an
 * unevaluated operand) so validate-only code cannot rot.
 *
 * The *runtime* side — which registered checkers actually run — is a
 * process-global validation level set by `--validate[=level]`:
 *
 *   off   (0)  nothing runs; the default.
 *   basic (1)  drain-time Validator checkers + incremental ledger
 *              checks (credit bounds, link-grant non-overlap).
 *   full  (2)  basic + per-event ordering audit in the event queue.
 *
 * Builds configured with -DASTRA_VALIDATE default the runtime level to
 * `full` so the whole test suite exercises every checker.
 */

#ifndef ASTRA_COMMON_CHECK_HH
#define ASTRA_COMMON_CHECK_HH

#include <string>

namespace astra
{

/** How much runtime validation the integrity layer performs. */
enum class ValidateLevel
{
    kOff = 0,   //!< no checkers run
    kBasic = 1, //!< drain-time checkers + incremental ledgers
    kFull = 2,  //!< basic + per-event event-queue ordering audit
};

/** Set the process-global validation level (atomic; thread-safe). */
void setValidationLevel(ValidateLevel level);

/** The current process-global validation level. */
ValidateLevel validationLevel();

/** True when the current level is at least @p level. */
bool validationAtLeast(ValidateLevel level);

/**
 * Parse a --validate value: "off"/"basic"/"full" (or 0/1/2). The empty
 * string — a bare `--validate` — selects full. fatal() on anything
 * else.
 */
ValidateLevel parseValidateLevel(const std::string &s);

/** Human-readable name of a level. */
const char *toString(ValidateLevel level);

namespace detail
{

/**
 * Failure sink of ASTRA_CHECK: formats
 *   "<file>:<line>: check failed: (<expr>) <message>"
 * and routes it through fatal(), so tests that install the throwing
 * handler observe a FatalError and the CLI exits with status 1.
 */
[[noreturn]] void checkFailed(const char *file, int line,
                              const char *expr, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

} // namespace detail

} // namespace astra

/**
 * Always-on invariant check with a formatted fatal diagnostic. Needs
 * at least a format string: ASTRA_CHECK(x > 0, "x=%d", x).
 */
#define ASTRA_CHECK(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) [[unlikely]] {                                     \
            ::astra::detail::checkFailed(__FILE__, __LINE__, #cond,     \
                                         __VA_ARGS__);                  \
        }                                                               \
    } while (0)

#ifdef ASTRA_VALIDATE
/** Hot-path check, compiled only under -DASTRA_VALIDATE. */
#define ASTRA_DCHECK(cond, ...) ASTRA_CHECK(cond, __VA_ARGS__)
#else
/** Off build: no code, but the condition still type-checks. */
#define ASTRA_DCHECK(cond, ...)                                         \
    do {                                                                \
        (void)sizeof(!(cond));                                          \
    } while (0)
#endif

#endif // ASTRA_COMMON_CHECK_HH
