/**
 * @file
 * sweep_bench — tracks the two perf numbers the sweep engine is about:
 *
 *  1. Design-space sweep throughput: the fixed 64-module exploration
 *     (the paper's co-design study, Sec. V) run serially and with the
 *     parallel SweepRunner, verifying that the ranked results are
 *     byte-identical and reporting the wall-clock speedup.
 *  2. Event-loop hot-path cost: one packet-level (garnet-lite)
 *     all-reduce, reported as nanoseconds of host time per simulated
 *     event.
 *
 * Emits both as JSON (--out=FILE, default BENCH_sweep.json) so the
 * perf trajectory is tracked across PRs. --quick shrinks the sweep for
 * CI; checked-in numbers come from the full run.
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/support.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "explore/design_space.hh"
#include "explore/sweep_runner.hh"

using namespace astra;
using namespace astra::bench;

namespace
{

double
wallMs(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool
identicalResults(const std::vector<CandidateResult> &a,
                 const std::vector<CandidateResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].label != b[i].label || a[i].commTime != b[i].commTime ||
            a[i].energyUj != b[i].energyUj) {
            return false;
        }
    }
    return true;
}

/** Per-candidate retired-event-stream digests, pairwise identical. */
bool
identicalDigests(const std::vector<CandidateResult> &a,
                 const std::vector<CandidateResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].digest != b[i].digest)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv);
    banner("sweep_bench",
           "parallel sweep throughput + event-loop hot-path cost");

    // --out is ours, not a SimConfig parameter: consume it before the
    // remaining overrides reach applyOverrides().
    std::string out_path = "BENCH_sweep.json";
    std::erase_if(args.rawOverrides, [&](const auto &kv) {
        if (kv.first != "out")
            return false;
        out_path = kv.second;
        return true;
    });

    // --- 1. The fixed 64-module design-space sweep -------------------
    ExploreSpec spec;
    spec.modules = 64;
    spec.localDims = {1, 2, 4, 8};
    spec.setSplits = args.quick ? std::vector<int>{1, 8}
                                : std::vector<int>{1, 4, 16};
    spec.bytes = args.quick ? 128 * KiB : 1 * MiB;
    // Default to the hardware thread count: more workers than cores
    // only adds context-switch overhead (ThreadPool warns if --jobs
    // asks for that explicitly).
    const int hw = ThreadPool::defaultThreads();
    const int par_jobs = args.jobs > 0 ? args.jobs : hw;
    if (par_jobs > hw) {
        warn("--jobs=%d exceeds the %d hardware thread(s); expect "
             "oversubscription, not speedup",
             par_jobs, hw);
    }

    const std::size_t candidates = enumerateCandidates(spec).size();
    std::printf("sweep: %d modules, %zu candidates, %s allreduce\n",
                spec.modules, candidates,
                formatBytes(spec.bytes).c_str());

    std::vector<CandidateResult> serial, parallel;
    const double serial_ms =
        wallMs([&] { serial = exploreDesignSpace(spec, 1); });
    const double parallel_ms = wallMs(
        [&] { parallel = exploreDesignSpace(spec, par_jobs); });
    const bool identical = identicalResults(serial, parallel);
    const bool digests_identical = identicalDigests(serial, parallel);
    const double speedup = serial_ms / parallel_ms;

    std::printf("  serial (--jobs 1):   %8.1f ms\n", serial_ms);
    std::printf("  parallel (--jobs %d): %8.1f ms  (%.2fx)\n",
                par_jobs, parallel_ms, speedup);
    std::printf("  ranked results byte-identical: %s\n",
                identical ? "yes" : "NO — DETERMINISM BUG");
    std::printf("  event digests byte-identical:  %s\n",
                digests_identical ? "yes" : "NO — DETERMINISM BUG");
    std::printf("  best: %s\n", serial.front().label.c_str());
    if (!identical)
        fatal("parallel sweep diverged from the serial reference");
    if (!digests_identical)
        fatal("parallel sweep retired a different event stream than "
              "the serial reference");

    // --- 2. Per-event cost on the packet-level hot path --------------
    SimConfig cfg;
    cfg.torus(4, 4, 4);
    cfg.local.bandwidth = 8 * cfg.package.bandwidth;
    cfg.backend = NetworkBackend::GarnetLite;
    applyOverrides(args, cfg);
    const Bytes ev_bytes = args.quick ? 1 * MiB : 4 * MiB;

    std::uint64_t events = 0;
    Tick comm = 0;
    const double event_ms = wallMs([&] {
        Cluster cluster(cfg);
        comm = cluster.runCollective(CollectiveKind::AllReduce, ev_bytes);
        events = cluster.eventQueue().executedEvents();
    });
    const double per_event_ns = event_ms * 1e6 / double(events);
    std::printf("hot path: garnet-lite 4x4x4 allreduce %s: "
                "%llu events, %.1f ms, %.0f ns/event\n",
                formatBytes(ev_bytes).c_str(),
                static_cast<unsigned long long>(events), event_ms,
                per_event_ns);

    // --- Emit the JSON record ----------------------------------------
    FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f)
        fatal("cannot write %s", out_path.c_str());
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"sweep\",\n"
        "  \"quick\": %s,\n"
        "  \"hardware_threads\": %d,\n"
        "  \"sweep\": {\n"
        "    \"modules\": %d,\n"
        "    \"candidates\": %zu,\n"
        "    \"bytes\": %llu,\n"
        "    \"serial_ms\": %.1f,\n"
        "    \"parallel_ms\": %.1f,\n"
        "    \"parallel_jobs\": %d,\n"
        "    \"speedup\": %.3f,\n"
        "    \"results_identical\": %s,\n"
        "    \"digests_identical\": %s,\n"
        "    \"best\": \"%s\"\n"
        "  },\n"
        "  \"event_loop\": {\n"
        "    \"config\": \"garnet-lite torus-4x4x4 allreduce\",\n"
        "    \"bytes\": %llu,\n"
        "    \"events\": %llu,\n"
        "    \"wall_ms\": %.1f,\n"
        "    \"per_event_ns\": %.1f,\n"
        "    \"comm_cycles\": %llu\n"
        "  }\n"
        "}\n",
        args.quick ? "true" : "false", ThreadPool::defaultThreads(),
        spec.modules, candidates,
        static_cast<unsigned long long>(spec.bytes), serial_ms,
        parallel_ms, par_jobs, speedup, identical ? "true" : "false",
        digests_identical ? "true" : "false",
        serial.front().label.c_str(),
        static_cast<unsigned long long>(ev_bytes),
        static_cast<unsigned long long>(events), event_ms, per_event_ns,
        static_cast<unsigned long long>(comm));
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
