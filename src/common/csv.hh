/**
 * @file
 * Tiny CSV / table emitter used by the benchmark harnesses to print the
 * rows and series of the paper's tables and figures.
 */

#ifndef ASTRA_COMMON_CSV_HH
#define ASTRA_COMMON_CSV_HH

#include <cstdio>
#include <string>
#include <vector>

namespace astra
{

/**
 * Accumulates rows of string cells; renders as CSV or an aligned
 * text table.
 */
class Table
{
  public:
    /** Set the column headers. */
    void header(std::vector<std::string> cols) { _header = std::move(cols); }

    /** Append a full row of preformatted cells. */
    void addRow(std::vector<std::string> cells);

    /** Begin building a row cell-by-cell. */
    Table &row();
    /** Append a string cell to the row being built. */
    Table &cell(const std::string &v);
    /** Append a formatted double cell. */
    Table &cell(double v, const char *fmt = "%.4g");
    /** Append an integer cell. */
    Table &cell(std::uint64_t v);

    /** Number of data rows. */
    std::size_t rows() const { return _rows.size(); }

    /** Render as CSV (header first if set). */
    std::string toCsv() const;

    /** Render as an aligned, human-readable table. */
    std::string toText() const;

    /** Print toText() to @p out. */
    void print(std::FILE *out = stdout) const;

    /** Write toCsv() to @p path; fatal() on I/O error. */
    void writeCsv(const std::string &path) const;

  private:
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace astra

#endif // ASTRA_COMMON_CSV_HH
