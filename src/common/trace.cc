#include "common/trace.hh"

#include <cstdio>

#include "common/logging.hh"

namespace astra
{

void
TraceRecorder::span(NodeId node, int lane, const std::string &category,
                    const std::string &name, Tick start, Tick end)
{
    if (end < start)
        panic("trace span ends (%llu) before it starts (%llu)",
              static_cast<unsigned long long>(end),
              static_cast<unsigned long long>(start));
    _events.push_back(
        Event{node, lane, category, name, start, end - start});
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

} // namespace

std::string
TraceRecorder::toJson() const
{
    // Chrome Trace Event format: timestamps in microseconds; our ticks
    // are nanoseconds, so scale by 1e-3 (fractional ts is allowed).
    std::string out = "[\n";
    for (std::size_t i = 0; i < _events.size(); ++i) {
        const Event &e = _events[i];
        out += strprintf(
            "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
            "\"ts\": %.3f, \"dur\": %.3f, \"pid\": %d, \"tid\": %d}%s\n",
            jsonEscape(e.name).c_str(), jsonEscape(e.category).c_str(),
            static_cast<double>(e.start) / 1e3,
            static_cast<double>(e.duration) / 1e3, e.node, e.lane,
            i + 1 == _events.size() ? "" : ",");
    }
    out += "]\n";
    return out;
}

void
TraceRecorder::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    const std::string json = toJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
}

} // namespace astra
