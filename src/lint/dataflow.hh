/**
 * @file
 * Forward-dataflow fixpoint framework of astra-lint
 * (docs/static-analysis.md).
 *
 * A small gen/kill engine over the per-function CFG (cfg.hh): each
 * flow rule names its facts (small dense ids — "local `cfg` is
 * moved-from", "lock `hold` is held"), supplies a transfer function
 * that applies one statement's gen/kill to a fact set, and receives
 * the fixpoint entry state of every basic block. The lattice is the
 * powerset of facts with union at merges — a *may* analysis: a fact
 * holds at a point when it holds on at least one path there, which is
 * the right polarity for "moved on some path" and "held on some
 * path". The worklist visits blocks in creation order, so iteration
 * (and therefore diagnostic order) is deterministic.
 *
 * Rules that must not carry facts around loop back edges (use-after-
 * move: a value moved late in iteration N is usually reassigned
 * before the read early in iteration N+1, so propagating would
 * fabricate findings) pass followBackEdges = false.
 */

#ifndef ASTRA_LINT_DATAFLOW_HH
#define ASTRA_LINT_DATAFLOW_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lint/cfg.hh"

namespace astra::lint
{

/** Dense bitset over a rule's fact ids. */
class FactSet
{
  public:
    FactSet() = default;
    explicit FactSet(std::size_t bits) : _w((bits + 63) / 64, 0) {}

    bool
    test(std::size_t i) const
    {
        return i / 64 < _w.size() &&
               (_w[i / 64] >> (i % 64) & 1u) != 0;
    }

    void
    set(std::size_t i)
    {
        if (i / 64 < _w.size())
            _w[i / 64] |= std::uint64_t{1} << (i % 64);
    }

    void
    reset(std::size_t i)
    {
        if (i / 64 < _w.size())
            _w[i / 64] &= ~(std::uint64_t{1} << (i % 64));
    }

    /** this |= other; true when any bit was newly set. */
    bool
    uniteWith(const FactSet &other)
    {
        bool changed = false;
        for (std::size_t k = 0; k < _w.size() && k < other._w.size();
             ++k) {
            std::uint64_t merged = _w[k] | other._w[k];
            changed = changed || merged != _w[k];
            _w[k] = merged;
        }
        return changed;
    }

    bool
    any() const
    {
        for (std::uint64_t w : _w) {
            if (w != 0)
                return true;
        }
        return false;
    }

  private:
    std::vector<std::uint64_t> _w;
};

/** A rule's gen/kill transfer function, applied statement by statement. */
class Transfer
{
  public:
    virtual ~Transfer() = default;
    virtual void apply(const CfgStmt &stmt, FactSet &facts) const = 0;
};

/**
 * Solve the forward may-analysis to fixpoint: returns the entry fact
 * set of every block (empty at the CFG entry, union of predecessor
 * exits elsewhere). Rules re-walk a block's statements from its entry
 * state to observe the per-statement facts.
 */
std::vector<FactSet> solveForward(const FunctionCfg &cfg,
                                  std::size_t numFacts,
                                  const Transfer &transfer,
                                  bool followBackEdges);

} // namespace astra::lint

#endif // ASTRA_LINT_DATAFLOW_HH
