#include "common/bitvec.hh"

#include <bit>

#include "common/logging.hh"

namespace astra
{

std::size_t
BitVec::count() const
{
    std::size_t n = 0;
    for (std::uint64_t w : _words)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

bool
BitVec::none() const
{
    for (std::uint64_t w : _words) {
        if (w)
            return false;
    }
    return true;
}

BitVec &
BitVec::operator|=(const BitVec &o)
{
    if (_nbits != o._nbits)
        panic("BitVec size mismatch (%zu vs %zu)", _nbits, o._nbits);
    for (std::size_t i = 0; i < _words.size(); ++i)
        _words[i] |= o._words[i];
    return *this;
}

BitVec &
BitVec::operator&=(const BitVec &o)
{
    if (_nbits != o._nbits)
        panic("BitVec size mismatch (%zu vs %zu)", _nbits, o._nbits);
    for (std::size_t i = 0; i < _words.size(); ++i)
        _words[i] &= o._words[i];
    return *this;
}

bool
BitVec::intersects(const BitVec &o) const
{
    if (_nbits != o._nbits)
        panic("BitVec size mismatch (%zu vs %zu)", _nbits, o._nbits);
    for (std::size_t i = 0; i < _words.size(); ++i) {
        if (_words[i] & o._words[i])
            return true;
    }
    return false;
}

std::string
BitVec::toString() const
{
    std::string s;
    s.reserve(_nbits);
    for (std::size_t i = 0; i < _nbits; ++i)
        s.push_back(test(i) ? '1' : '0');
    return s;
}

} // namespace astra
