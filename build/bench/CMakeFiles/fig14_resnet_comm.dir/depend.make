# Empty dependencies file for fig14_resnet_comm.
# This may be replaced when dependencies are built.
