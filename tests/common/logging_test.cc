#include <gtest/gtest.h>

#include "common/logging.hh"

namespace astra
{
namespace
{

TEST(Logging, FatalThrowsInTestMode)
{
    ASSERT_TRUE(loggingThrowsOnFatal());
    try {
        fatal("bad %s #%d", "thing", 7);
        FAIL() << "fatal returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: bad thing #7");
    }
}

TEST(Logging, PanicThrowsInTestMode)
{
    try {
        panic("invariant %d", 42);
        FAIL() << "panic returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "panic: invariant 42");
    }
}

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("a=%d b=%s", 1, "x"), "a=1 b=x");
    EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST(Logging, StrprintfHandlesLongStrings)
{
    std::string big(10000, 'z');
    std::string out = strprintf("<%s>", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 2);
    EXPECT_EQ(out.front(), '<');
    EXPECT_EQ(out.back(), '>');
}

} // namespace
} // namespace astra
