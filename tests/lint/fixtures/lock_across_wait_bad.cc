// Deliberate violations: scoped locks held across blocking calls.

void
submitUnderLock()
{
    std::lock_guard<std::mutex> hold(g_mutex);
    g_pool.submit(work); // FIRE(lock-across-wait)
}

void
waitOnForeignLock()
{
    std::unique_lock<std::mutex> outer(g_mutex);
    g_cv.wait(inner); // FIRE(lock-across-wait)
}

void
pumpUnderLockInLoop(int n)
{
    std::unique_lock<std::mutex> hold(g_mutex);
    for (int i = 0; i < n; ++i)
        g_queue.run(budget); // FIRE(lock-across-wait)
}
