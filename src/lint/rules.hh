/**
 * @file
 * The token rules of astra-lint (docs/static-analysis.md).
 *
 * Each rule guards a piece of the determinism or error-handling
 * contract (DESIGN.md, docs/validation.md): two runs with the same
 * seed must retire the same event stream (`--digest`), and failures
 * must flow through ASTRA_CHECK/fatal()/panic() so users see context.
 * Rules operate on the lexer's token stream, so occurrences inside
 * comments and string literals never fire.
 *
 * Rule ids are stable (they appear in allowlists and inline
 * suppressions); new rules append, never rename.
 */

#ifndef ASTRA_LINT_RULES_HH
#define ASTRA_LINT_RULES_HH

#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hh"
#include "lint/symbols.hh"

namespace astra::lint
{

/** One finding. Column/line are 1-based. */
struct Diagnostic
{
    std::string file;
    int line = 0;
    int col = 0;
    std::string rule;
    std::string message;
};

/** Sort key: path, then position, then rule id. */
bool diagnosticLess(const Diagnostic &a, const Diagnostic &b);

/**
 * One inline suppression that absorbed a finding: the `allow(<rule>)`
 * (or NOLINT) on @p line of @p file matched a diagnostic of @p rule.
 * The analyzer compares these against every suppression written in
 * the tree to report the stale ones (--strict-suppressions).
 */
struct SuppressionUse
{
    std::string file;
    int line = 0;
    std::string rule;
};

/** Static description of a rule, for --list-rules and --fixable. */
struct RuleInfo
{
    std::string id;
    std::string summary; //!< one-line rationale
    std::string fix;     //!< suggested mechanical fix
};

/** Every token + project rule, in stable id order. */
const std::vector<RuleInfo> &allRules();

/** True if @p id names a known rule. */
bool knownRule(const std::string &id);

/**
 * Run every enabled token rule over @p file and append findings to
 * @p out. @p enabled is a set of rule ids (empty = all). Findings on
 * lines whose comments carry `NOLINT` or an allow-list mark naming
 * the rule are dropped here (and recorded in @p uses when given).
 *
 * @p extra_tracked seeds the unordered-container symbol table with
 * names declared elsewhere (the analyzer passes the names found in a
 * .cc file's sibling header, so iteration over unordered members is
 * caught in out-of-line definitions too).
 */
void runTokenRules(const LexedFile &file,
                   const std::set<std::string> &enabled,
                   const std::set<std::string> &extra_tracked,
                   std::vector<Diagnostic> &out,
                   std::vector<SuppressionUse> *uses = nullptr);

/**
 * Run the declaration-indexed concurrency rules (shared-state,
 * unresolved-mutex, thread-capture, hot-path-alloc) over every file,
 * against the cross-TU @p index built by buildSymbolIndex(). Same
 * suppression semantics as runTokenRules.
 */
void runIndexRules(const std::vector<LexedFile> &files,
                   const SymbolIndex &index,
                   const std::set<std::string> &enabled,
                   std::vector<Diagnostic> &out,
                   std::vector<SuppressionUse> *uses = nullptr);

/**
 * Single-file form of runIndexRules, so the analyzer can fan files
 * out across worker threads (--threads); the index itself is built
 * serially and only read here.
 */
void runIndexRules(const LexedFile &file, const SymbolIndex &index,
                   const std::set<std::string> &enabled,
                   std::vector<Diagnostic> &out,
                   std::vector<SuppressionUse> *uses = nullptr);

/**
 * Category of an identifier banned in async-signal context —
 * "allocates", "locks", "performs IO" or "throws" — or nullptr for a
 * safe token. Shared between the direct signal-unsafe rule and the
 * call-graph-transitive one (flow_rules.hh).
 */
const char *signalUnsafeCategory(const std::string &ident);

/**
 * The names of unordered-container variables/aliases declared in
 * @p file (the symbol table runTokenRules builds for itself); exposed
 * so the analyzer can share header declarations with sibling sources.
 */
std::set<std::string> unorderedNames(const LexedFile &file);

} // namespace astra::lint

#endif // ASTRA_LINT_RULES_HH
