#include "net/fabric.hh"

#include "common/logging.hh"
#include "common/stats.hh"

namespace astra
{

Fabric::Fabric(const Topology &topo, const SimConfig &cfg,
               bool one_to_one)
    : _topo(topo), _oneToOne(one_to_one), _local(cfg.local),
      _package(cfg.package), _scaleout(cfg.scaleout)
{
    const int nodes = topo.numNodes();

    for (int d = 0; d < topo.numDims(); ++d) {
        const DimInfo &info = topo.dim(d);
        if (info.size < 2)
            continue; // degenerate dimension: no links needed
        if (info.pattern == DimPattern::Ring) {
            for (int ch = 0; ch < info.channels; ++ch) {
                std::vector<LinkId> per_node(std::size_t(nodes), -1);
                for (NodeId u = 0; u < nodes; ++u) {
                    NodeId v = topo.ringNext(d, ch, u);
                    per_node[std::size_t(u)] =
                        static_cast<LinkId>(_links.size());
                    _links.push_back(LinkDesc{u, v, info.linkClass, d});
                }
                _ringLinks[{d, ch}] = std::move(per_node);
            }
        } else {
            // Switch dimension: every node connects to every global
            // switch of the dimension. Switch ports get ids above the
            // node id space, unique across dimensions.
            const int switches = topo.numSwitches(d);
            for (int s = 0; s < switches; ++s) {
                const std::int32_t port = nodes + _switchPorts++;
                auto &up = _upLinks[{d, s}];
                auto &down = _downLinks[{d, s}];
                up.resize(std::size_t(nodes));
                down.resize(std::size_t(nodes));
                for (NodeId u = 0; u < nodes; ++u) {
                    up[std::size_t(u)] =
                        static_cast<LinkId>(_links.size());
                    _links.push_back(
                        LinkDesc{u, port, info.linkClass, d});
                    down[std::size_t(u)] =
                        static_cast<LinkId>(_links.size());
                    _links.push_back(
                        LinkDesc{port, u, info.linkClass, d});
                }
            }
        }
    }
}

std::vector<LinkId>
Fabric::route(NodeId src, NodeId dst, const RouteHint &hint) const
{
    std::vector<LinkId> path;
    if (src == dst)
        return path;

    const int d = hint.dim;
    if (d < 0 || d >= _topo.numDims())
        panic("route: dimension %d out of range", d);
    const DimInfo &info = _topo.dim(d);

    // src and dst must differ only along dimension d.
    Coord cs = _topo.coordOf(src);
    Coord cd = _topo.coordOf(dst);
    for (int i = 0; i < 4; ++i) {
        if (i != d && cs[i] != cd[i]) {
            panic("route: %d -> %d not confined to dimension %d", src,
                  dst, d);
        }
    }

    if (info.pattern == DimPattern::Ring) {
        auto it = _ringLinks.find({d, hint.channel});
        if (it == _ringLinks.end())
            panic("route: no ring channel %d in dim %d", hint.channel, d);
        const auto &per_node = it->second;
        NodeId cur = src;
        int guard = info.size;
        while (cur != dst) {
            if (guard-- < 0)
                panic("route: ring walk did not terminate");
            LinkId l = per_node[std::size_t(cur)];
            path.push_back(l);
            cur = link(l).to;
        }
    } else {
        const int s = hint.channel;
        if (s < 0 || s >= _topo.numSwitches(d))
            panic("route: switch %d out of range in dim %d", s, d);
        path.push_back(_upLinks.at({d, s})[std::size_t(src)]);
        path.push_back(_downLinks.at({d, s})[std::size_t(dst)]);
    }
    return path;
}

std::vector<LinkId>
Fabric::routeMapped(NodeId src, NodeId dst, int channel_seed) const
{
    std::vector<LinkId> path;
    if (src == dst)
        return path;

    // Correct coordinates dimension by dimension, local dimension
    // first (it is the cheapest), using the seed to spread traffic
    // over the channels/switches of each dimension.
    NodeId cur = src;
    const Coord target = _topo.coordOf(dst);
    for (int d = 0; d < _topo.numDims(); ++d) {
        if (_topo.coordOf(cur)[d] == target[d])
            continue;
        Coord next_c = _topo.coordOf(cur);
        next_c[d] = target[d];
        const NodeId next = _topo.nodeAt(next_c);
        const int channels = _topo.dim(d).channels;
        const RouteHint hint{d, channel_seed % channels};
        std::vector<LinkId> seg = route(cur, next, hint);
        path.insert(path.end(), seg.begin(), seg.end());
        cur = next;
    }
    return path;
}

int
Fabric::hopCount(NodeId src, NodeId dst, const RouteHint &hint) const
{
    if (src == dst)
        return 0;
    const DimInfo &info = _topo.dim(hint.dim);
    if (info.pattern == DimPattern::Switch)
        return 2;
    return _topo.ringDistance(hint.dim, hint.channel, src,
                              _topo.rankInGroup(hint.dim, dst));
}

void
exportLinkUsage(const Fabric &fabric, const std::vector<LinkUsage> &usage,
                Tick elapsed, StatGroup &g)
{
    const int nlinks = fabric.numLinks();
    if (std::size_t(nlinks) != usage.size())
        panic("exportLinkUsage: %zu usage slots for %d links",
              usage.size(), nlinks);

    const Topology &topo = fabric.topology();
    struct DimAgg
    {
        Tick busy = 0;
        Tick queueWait = 0;
        std::uint64_t bytes = 0;
        std::uint64_t grants = 0;
        int links = 0;
    };
    std::vector<DimAgg> dims(std::size_t(topo.numDims()));

    const double elapsed_d = static_cast<double>(elapsed);
    double util_sum = 0;
    std::uint64_t bytes_total = 0;
    for (LinkId l = 0; l < nlinks; ++l) {
        const LinkUsage &u = usage[std::size_t(l)];
        const LinkDesc &desc = fabric.link(l);
        DimAgg &agg = dims[std::size_t(desc.dim)];
        agg.busy += u.busy;
        agg.queueWait += u.queueWait;
        agg.bytes += u.bytes;
        agg.grants += u.grants;
        ++agg.links;
        bytes_total += u.bytes;

        const double util =
            safeDiv(static_cast<double>(u.busy), elapsed_d);
        util_sum += util;
        g.record("link.util.pct", util * 100.0);
        if (u.grants > 0)
            g.set(strprintf("link.%04d.util", int(l)), util);
    }

    for (std::size_t d = 0; d < dims.size(); ++d) {
        const DimAgg &agg = dims[d];
        if (agg.links == 0)
            continue;
        const std::string prefix = "dim." + topo.dim(int(d)).name + ".";
        g.set(prefix + "links", double(agg.links));
        g.set(prefix + "busy", double(agg.busy));
        g.set(prefix + "queue_wait", double(agg.queueWait));
        g.set(prefix + "bytes", double(agg.bytes));
        g.set(prefix + "grants", double(agg.grants));
        g.set(prefix + "util",
              safeDiv(static_cast<double>(agg.busy),
                      elapsed_d * agg.links));
    }

    g.set("links.total", double(nlinks));
    g.set("bytes.total", double(bytes_total));
    g.set("util.mean", nlinks > 0 ? util_sum / nlinks : 0.0);
}

} // namespace astra
