// fault -> common: legal (rank 1 -> 0).
#ifndef FIXTURE_GOOD_FAULT_PLAN_HH
#define FIXTURE_GOOD_FAULT_PLAN_HH
#include "common/util.hh"
inline int planValue() { return utilValue() + 1; }
#endif
