#include "explore/design_space.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "core/cluster.hh"
#include "explore/sweep_runner.hh"

namespace astra
{

namespace
{

std::vector<std::pair<std::string, SimConfig>>
enumeratePlatforms(const ExploreSpec &spec)
{
    std::vector<std::pair<std::string, SimConfig>> out;
    // The label fully encodes a platform (family + dimensions), so a
    // label seen twice — repeated or unit factors in localDims
    // multiplying out to the same shape — is an exact-duplicate
    // SimConfig and is skipped.
    std::set<std::string> seen;
    for (int m : spec.localDims) {
        if (m < 1 || spec.modules % m)
            continue;
        const int packages = spec.modules / m;
        for (int h = 1; h <= packages; ++h) {
            if (packages % h)
                continue;
            const int v = packages / h;
            if (h < v)
                continue; // mirror-symmetric duplicate
            std::string name = strprintf("torus-%dx%dx%d", m, h, v);
            if (!seen.insert(name).second)
                continue;
            SimConfig cfg;
            cfg.torus(m, h, v);
            cfg.local.bandwidth =
                spec.localBandwidthRatio * cfg.package.bandwidth;
            out.emplace_back(std::move(name), cfg);
        }
        if (spec.includeAllToAll && packages >= 2 && packages <= 64) {
            std::string name = strprintf("a2a-%dx%d", m, packages);
            if (!seen.insert(name).second)
                continue;
            SimConfig cfg;
            cfg.allToAll(m, packages, std::min(packages - 1, 7));
            cfg.local.bandwidth =
                spec.localBandwidthRatio * cfg.package.bandwidth;
            out.emplace_back(std::move(name), cfg);
        }
    }
    if (out.empty())
        fatal("design space is empty: no factorization of %d modules "
              "matches the candidate local dimensions",
              spec.modules);
    return out;
}

} // namespace

std::vector<CandidateResult>
enumerateCandidates(const ExploreSpec &spec)
{
    if (spec.modules < 2)
        fatal("need at least 2 modules to explore");
    if (spec.bytes == 0)
        fatal("cannot explore a zero-byte collective");

    std::vector<AlgorithmFlavor> flavors = {AlgorithmFlavor::Baseline};
    if (spec.sweepFlavors)
        flavors.push_back(AlgorithmFlavor::Enhanced);
    std::vector<int> splits = spec.setSplits;
    if (splits.empty())
        splits.push_back(0); // configuration default

    std::vector<CandidateResult> candidates;
    for (const auto &[name, platform] : enumeratePlatforms(spec)) {
        for (AlgorithmFlavor flavor : flavors) {
            for (int split : splits) {
                CandidateResult r;
                r.cfg = platform;
                r.cfg.algorithm = flavor;
                if (split > 0)
                    r.cfg.preferredSetSplits = split;
                r.cfg.maxEvents = spec.maxEvents;
                r.cfg.maxSimTime = spec.maxSimTime;
                r.cfg.maxSlabBytes = spec.maxSlabBytes;
                r.cfg.watchdogWindow = spec.watchdogWindow;
                r.label = name + "/" + toString(flavor);
                if (split > 0)
                    r.label += strprintf("/%dch", split);
                candidates.push_back(std::move(r));
            }
        }
    }
    return candidates;
}

std::vector<CandidateResult>
exploreDesignSpace(const ExploreSpec &spec, int jobs,
                   guard::SweepJournal *journal)
{
    std::vector<CandidateResult> results = enumerateCandidates(spec);

    // Simulations run on private event queues and land in enumeration
    // order whatever the worker count; a stable sort on top keeps the
    // final ranking independent of jobs even among exact ties.
    SweepRunner runner(jobs);
    runner.evaluate(results, spec.kind, spec.bytes, journal);

    std::stable_sort(
        results.begin(), results.end(),
        [](const CandidateResult &a, const CandidateResult &b) {
            // Completed candidates first: a contained failure's zero
            // commTime must not crown it the winner. All-completed
            // sweeps rank exactly as they always have.
            const int fa = a.outcome == RunOutcome::Completed ? 0 : 1;
            const int fb = b.outcome == RunOutcome::Completed ? 0 : 1;
            if (fa != fb)
                return fa < fb;
            if (a.commTime != b.commTime)
                return a.commTime < b.commTime;
            return a.energyUj < b.energyUj;
        });
    return results;
}

CandidateResult
bestDesign(const ExploreSpec &spec, int jobs)
{
    return exploreDesignSpace(spec, jobs).front();
}

} // namespace astra
