/**
 * @file
 * SweepRunner — parallel execution engine for design-space sweeps.
 *
 * A sweep is a list of independent candidate platforms, each simulated
 * on its own Cluster (and therefore its own private EventQueue — no
 * simulator state is shared between candidates). The runner fans the
 * candidates out across a ThreadPool and writes each result into the
 * slot matching the candidate's index, so the output order — and every
 * simulated number in it — is bit-for-bit identical to running the
 * same list serially. Worker scheduling affects only wall-clock time,
 * never results (the determinism contract, see DESIGN.md).
 */

#ifndef ASTRA_EXPLORE_SWEEP_RUNNER_HH
#define ASTRA_EXPLORE_SWEEP_RUNNER_HH

#include <functional>
#include <vector>

#include "common/types.hh"
#include "explore/design_space.hh"

namespace astra
{

namespace guard
{
class SweepJournal;
}

/**
 * Runs candidate simulations across worker threads, results in
 * candidate order.
 */
class SweepRunner
{
  public:
    /** @param jobs worker budget; <= 0 selects all hardware threads. */
    explicit SweepRunner(int jobs = 0);

    /** The resolved worker budget (>= 1). */
    int jobs() const { return _jobs; }

    /**
     * Simulate every candidate's collective, filling commTime and
     * energyUj in place. cfg and label must already be set.
     *
     * Crash-contained (docs/robustness.md): an ASTRA_CHECK failure or
     * a config error inside one candidate is caught on its worker and
     * recorded as that candidate's Failed outcome + FailureRecord —
     * the other candidates complete normally. While the sweep runs,
     * fatal() throws instead of exiting (restored on return).
     *
     * With @p journal, already-journaled candidates are restored
     * bit-for-bit instead of re-simulated (metrics stay empty), and
     * every freshly evaluated candidate is appended + flushed. A
     * pending interrupt (guard::interruptRequested) makes remaining
     * candidates come back as Interrupted without being journaled, so
     * a later --resume re-runs exactly those.
     */
    void evaluate(std::vector<CandidateResult> &candidates,
                  CollectiveKind kind, Bytes bytes,
                  guard::SweepJournal *journal = nullptr) const;

    /**
     * General fan-out: run fn(i) for every i in [0, count) across the
     * worker budget. fn must only write state owned by index i.
     */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t)> &fn) const;

  private:
    int _jobs;
};

} // namespace astra

#endif // ASTRA_EXPLORE_SWEEP_RUNNER_HH
