#include <gtest/gtest.h>

#include "collective/chunk_state.hh"
#include "common/logging.hh"

namespace astra
{
namespace
{

TEST(ElemRange, SubRangeSplitsEvenly)
{
    ElemRange r{8, 24};
    EXPECT_EQ(r.length(), 16);
    EXPECT_EQ(r.subRange(4, 0), (ElemRange{8, 12}));
    EXPECT_EQ(r.subRange(4, 3), (ElemRange{20, 24}));
    EXPECT_TRUE(r.contains(8));
    EXPECT_FALSE(r.contains(24));
}

TEST(ElemRange, SubRangeRejectsBadSplits)
{
    ElemRange r{0, 10};
    EXPECT_THROW(r.subRange(3, 0), FatalError);  // 10 % 3 != 0
    EXPECT_THROW(r.subRange(5, 5), FatalError);  // index out of range
    EXPECT_THROW(r.subRange(5, -1), FatalError);
    EXPECT_THROW(r.subRange(0, 0), FatalError);
}

TEST(ChunkState, AllReduceStartsWithOwnPartialEverywhere)
{
    ChunkState s(4, 2, 4096, CollectiveKind::AllReduce);
    EXPECT_EQ(s.groupSize(), 4);
    EXPECT_EQ(s.myGlobalRank(), 2);
    EXPECT_EQ(s.current(), (ElemRange{0, 4}));
    for (int e = 0; e < 4; ++e) {
        EXPECT_TRUE(s.valid(e));
        EXPECT_EQ(s.contribs(e).count(), 1u);
        EXPECT_TRUE(s.contribs(e).test(2));
        EXPECT_FALSE(s.fullyReduced(e));
    }
    EXPECT_FALSE(s.allReduced());
}

TEST(ChunkState, AllGatherStartsWithOwnElementOnly)
{
    ChunkState s(4, 1, 4096, CollectiveKind::AllGather);
    EXPECT_EQ(s.current(), (ElemRange{1, 2}));
    EXPECT_TRUE(s.valid(1));
    EXPECT_FALSE(s.valid(0));
    EXPECT_FALSE(s.allValid());
}

TEST(ChunkState, AllToAllStartsWithOutgoingBlocks)
{
    ChunkState s(3, 0, 4096, CollectiveKind::AllToAll);
    ASSERT_EQ(s.blocks().size(), 3u);
    for (int d = 0; d < 3; ++d) {
        EXPECT_EQ(s.blocks()[std::size_t(d)].first, 0);
        EXPECT_EQ(s.blocks()[std::size_t(d)].second, d);
    }
    EXPECT_FALSE(s.allToAllComplete());
}

TEST(ChunkState, BytesForScalesWithElements)
{
    ChunkState s(4, 0, 4096, CollectiveKind::AllReduce);
    EXPECT_DOUBLE_EQ(s.bytesPerElem(), 1024.0);
    EXPECT_EQ(s.bytesFor(1), 1024u);
    EXPECT_EQ(s.bytesFor(4), 4096u);
    EXPECT_EQ(s.bytesFor(0), 0u);
    // Non-divisible totals round up.
    ChunkState odd(3, 0, 100, CollectiveKind::AllReduce);
    EXPECT_EQ(odd.bytesFor(1), 34u);
}

TEST(ChunkState, ReducePayloadMergesDisjointContribs)
{
    ChunkState a(2, 0, 64, CollectiveKind::AllReduce);
    ChunkState b(2, 1, 64, CollectiveKind::AllReduce);
    RangePayload p = b.makeRangePayload(ElemRange{0, 2}, true);
    a.applyRangePayload(p);
    EXPECT_TRUE(a.allReduced());
}

TEST(ChunkState, DuplicateReductionPanics)
{
    ChunkState a(2, 0, 64, CollectiveKind::AllReduce);
    RangePayload p = a.makeRangePayload(ElemRange{0, 2}, true);
    // Reducing our own partial back into ourselves double-counts.
    EXPECT_THROW(a.applyRangePayload(p), FatalError);
}

TEST(ChunkState, InstallPayloadSetsValidity)
{
    ChunkState a(4, 0, 64, CollectiveKind::AllGather);
    ChunkState b(4, 3, 64, CollectiveKind::AllGather);
    RangePayload p = b.makeRangePayload(ElemRange{3, 4}, false);
    a.applyRangePayload(p);
    EXPECT_TRUE(a.valid(3));
    EXPECT_TRUE(a.contribs(3).test(3));
}

TEST(ChunkState, SendingInvalidElementPanics)
{
    ChunkState a(4, 0, 64, CollectiveKind::AllGather);
    EXPECT_THROW(a.makeRangePayload(ElemRange{1, 2}, false), FatalError);
}

TEST(ChunkState, RestrictValidToNarrowsOwnership)
{
    ChunkState a(4, 0, 64, CollectiveKind::AllReduce);
    a.restrictValidTo(ElemRange{1, 2});
    EXPECT_EQ(a.current(), (ElemRange{1, 2}));
    EXPECT_TRUE(a.valid(1));
    EXPECT_FALSE(a.valid(0));
    EXPECT_FALSE(a.valid(2));
}

TEST(ChunkState, TakeBlocksIfPartitions)
{
    ChunkState a(4, 1, 64, CollectiveKind::AllToAll);
    auto taken = a.takeBlocksIf(
        [](int, int dst) { return dst % 2 == 0; });
    EXPECT_EQ(taken.size(), 2u);
    EXPECT_EQ(a.blocks().size(), 2u);
    for (const auto &[src, dst] : a.blocks())
        EXPECT_EQ(dst % 2, 1);
}

TEST(ChunkState, AllToAllCompletionRequiresExactBlocks)
{
    ChunkState a(2, 0, 64, CollectiveKind::AllToAll);
    // Drop the outgoing block for rank 1, keep (0,0).
    a.takeBlocksIf([](int, int dst) { return dst == 1; });
    EXPECT_FALSE(a.allToAllComplete());
    a.addBlocks({{1, 0}});
    EXPECT_TRUE(a.allToAllComplete());
    // A duplicate source breaks completeness.
    a.addBlocks({{1, 0}});
    EXPECT_FALSE(a.allToAllComplete());
}

TEST(ChunkState, BadPayloadRangePanics)
{
    ChunkState a(4, 0, 64, CollectiveKind::AllReduce);
    RangePayload p;
    p.range = ElemRange{2, 9};
    p.reduce = false;
    p.contribs.assign(7, BitVec(4));
    EXPECT_THROW(a.applyRangePayload(p), FatalError);
    RangePayload q;
    q.range = ElemRange{0, 2};
    q.contribs.assign(1, BitVec(4)); // size mismatch
    EXPECT_THROW(a.applyRangePayload(q), FatalError);
}

TEST(ChunkState, ConstructorValidatesRank)
{
    EXPECT_THROW(ChunkState(4, 4, 64, CollectiveKind::AllReduce),
                 FatalError);
    EXPECT_THROW(ChunkState(4, -1, 64, CollectiveKind::AllReduce),
                 FatalError);
    EXPECT_THROW(ChunkState(0, 0, 64, CollectiveKind::AllReduce),
                 FatalError);
    EXPECT_THROW(ChunkState(4, 0, 64, CollectiveKind::None), FatalError);
}

} // namespace
} // namespace astra
