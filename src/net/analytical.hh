/**
 * @file
 * Analytical link-level network backend.
 *
 * Each unidirectional link is a FIFO server: a message occupies it for
 * bytes / (bandwidth * efficiency) cycles, then propagates for the
 * link's latency. Multi-hop transfers advance hop-by-hop through
 * events, so congestion and queuing emerge naturally from link
 * occupancy — which is what produces the paper's queuing-delay effects
 * (e.g. the alltoall topology's higher queuing delay in Fig. 9).
 *
 * Two forwarding modes (parameter #14):
 *  - Software routing: store-and-forward at every hop (the endpoint
 *    relays whole messages). Used for all of the paper's experiments.
 *  - Hardware routing: virtual cut-through — the head claims each link
 *    as it arrives and serialization overlaps across hops.
 */

#ifndef ASTRA_NET_ANALYTICAL_HH
#define ASTRA_NET_ANALYTICAL_HH

#include <cmath>
#include <deque>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "net/fabric.hh"
#include "net/network_api.hh"

namespace astra
{

/**
 * The analytical backend. Fast enough for 64-node, multi-MB sweeps.
 */
class AnalyticalNetwork : public NetworkApi
{
  public:
    /**
     * @param one_to_one  False when @p topo is a physical fabric
     *        distinct from the system layer's logical topology
     *        (Sec. IV-B mapping); see Fabric::resolve.
     */
    AnalyticalNetwork(EventQueue &eq, const Topology &topo,
                      const SimConfig &cfg, bool one_to_one = true);

    void send(Message msg) override;

    EventQueue &eventQueue() override { return _eq; }

    const Fabric &fabric() const { return _fabric; }

    /** Serialization time of @p bytes on a link of class @p cls. */
    Tick
    txTime(LinkClass cls, Bytes bytes) const
    {
        const LinkParams &p = _fabric.params(cls);
        return static_cast<Tick>(std::ceil(
            static_cast<double>(bytes) / (p.bandwidth * p.efficiency)));
    }

    /** Busy-until tick of link @p id (for tests). */
    Tick linkFreeAt(LinkId id) const { return _freeAt[std::size_t(id)]; }

    /** Usage tallies of link @p id (zeroes when net-metrics is off). */
    const LinkUsage &
    linkUsage(LinkId id) const
    {
        return _usage[std::size_t(id)];
    }

    /**
     * Publish link utilization (per link and per dimension),
     * serialization-time and queue-wait histograms, and the base
     * delivery/energy totals into @p g. @p elapsed is the observation
     * window (usually the cluster's final tick); zero yields 0.0
     * utilization, never NaN.
     */
    void exportStats(StatGroup &g, Tick elapsed) const;

    void
    exportStats(StatGroup &g) const override
    {
        exportStats(g, _eq.now());
    }

    /**
     * Register the analytical drain checker (busy-interval ledger
     * agreement) with @p reg. See src/net/validate.cc.
     */
    void registerCheckers(ValidatorRegistry &reg) override;

    /**
     * Drain-time invariants: the independent busy-until ledger must
     * agree with the backend's own per-link free-at state. Raises an
     * ASTRA_CHECK diagnostic on violation. No-op unless the backend
     * was constructed with validation enabled.
     */
    void validateDrain() const;

  private:
    /**
     * Message @p msg is ready to claim link path[idx] at the current
     * time; reserve it and schedule the next hop / delivery.
     */
    void hop(Message msg, std::shared_ptr<std::vector<LinkId>> path,
             std::size_t idx);

    EventQueue &_eq;
    Fabric _fabric;
    PacketRouting _routing;
    Tick _routerLatency;
    Tick _protocolDelay; //!< scale-out transport cost per message
    std::vector<Tick> _freeAt;

    /**
     * Busy-interval non-overlap ledger (integrity layer): an
     * independently maintained copy of each link's busy-until tick,
     * advanced on the grant path and cross-checked against _freeAt at
     * drain. Empty (zero cost) unless validation was enabled when the
     * backend was constructed.
     */
    bool _validate;
    std::vector<Tick> _busyUntil;

    // Observer-only instrumentation (see DESIGN.md): tallies below are
    // written on the grant/busy paths but never scheduled against.
    bool _metrics;
    std::vector<LinkUsage> _usage;
    Histogram _txHist;   //!< per-grant serialization time, ticks
    Histogram _waitHist; //!< per-busy-retry queue wait segment, ticks
};

} // namespace astra

#endif // ASTRA_NET_ANALYTICAL_HH
