#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "common/units.hh"
#include "core/cluster.hh"
#include "tests/support/json_lite.hh"
#include "workload/models.hh"
#include "workload/trainer.hh"

namespace astra
{
namespace
{

using testsupport::jsonValid;

TEST(Trace, RecordsSpans)
{
    TraceRecorder tr;
    tr.span(0, 0, "compute", "layer1", 100, 250);
    tr.span(1, 2, "phase", "AR(local)", 50, 60);
    EXPECT_EQ(tr.size(), 2u);
    tr.clear();
    EXPECT_EQ(tr.size(), 0u);
}

TEST(Trace, RejectsNegativeDurations)
{
    TraceRecorder tr;
    EXPECT_THROW(tr.span(0, 0, "c", "n", 100, 50), FatalError);
}

TEST(Trace, JsonIsChromeTraceShaped)
{
    TraceRecorder tr;
    tr.span(3, 1, "phase", "RS(local) chunk 7", 1000, 3000);
    const std::string json = tr.toJson();
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);
    // ns -> us conversion.
    EXPECT_NE(json.find("\"ts\": 1.000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 2.000"), std::string::npos);
}

TEST(Trace, EscapesSpecialCharacters)
{
    TraceRecorder tr;
    tr.span(0, 0, "c", "quote\"back\\slash", 0, 1);
    const std::string json = tr.toJson();
    EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(Json, EscapesControlCharacters)
{
    // Tab/newline/CR use the short escapes; other bytes below 0x20
    // must come out as \u00XX, never raw (raw control characters are
    // invalid JSON).
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\rb"), "a\\rb");
    EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
    EXPECT_EQ(jsonEscape(std::string("a\x1f") + "b"), "a\\u001fb");
    EXPECT_EQ(jsonEscape(std::string(1, '\0')), "\\u0000");
}

TEST(Trace, ControlCharactersProduceValidJson)
{
    TraceRecorder tr;
    tr.span(0, 0, "c", std::string("bell\x07tab\there"), 0, 1);
    const std::string json = tr.toJson();
    std::string err;
    EXPECT_TRUE(jsonValid(json, &err)) << err << "\n" << json;
    EXPECT_NE(json.find("bell\\u0007tab\\there"), std::string::npos);
}

TEST(Trace, CounterEventsAreChromeCounterShaped)
{
    TraceRecorder tr;
    tr.counter(4, "net.util.local", 2048, 0.75);
    tr.counter(4, "net.util.local", 4096, 0.25);
    EXPECT_EQ(tr.counterCount(), 2u);
    EXPECT_EQ(tr.spanCount(), 0u);
    const std::string json = tr.toJson();
    std::string err;
    EXPECT_TRUE(jsonValid(json, &err)) << err << "\n" << json;
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"value\": 0.75}"),
              std::string::npos);
    // ns -> us conversion applies to counters too.
    EXPECT_NE(json.find("\"ts\": 2.048"), std::string::npos);
}

TEST(Trace, MetadataEventsNameProcessesAndThreads)
{
    TraceRecorder tr;
    tr.processName(0, "npu0");
    tr.threadName(0, 2, "lane2");
    const std::string json = tr.toJson();
    std::string err;
    EXPECT_TRUE(jsonValid(json, &err)) << err << "\n" << json;
    EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"name\": \"npu0\"}"),
              std::string::npos);
}

TEST(Trace, ClusterRecordsCollectivePhases)
{
    const char *path = "/tmp/astra_trace_test.json";
    {
        SimConfig cfg;
        cfg.torus(2, 2, 1);
        cfg.traceFile = path;
        cfg.preferredSetSplits = 2;
        Cluster cluster(cfg);
        cluster.runCollective(CollectiveKind::AllReduce, 64 * KiB);
        ASSERT_NE(cluster.trace(), nullptr);
        // 2 chunks x 2 phases x 4 nodes (metadata and counter events
        // ride alongside; only the spans are counted here).
        EXPECT_EQ(cluster.trace()->spanCount(), 16u);
        cluster.flushTrace();
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("ALLREDUCE(local)"), std::string::npos);
    std::remove(path);
}

TEST(Trace, TrainingRecordsComputeAndWaits)
{
    SimConfig cfg;
    cfg.torus(1, 4, 1);
    cfg.traceFile = "/tmp/astra_trace_train.json";
    Cluster cluster(cfg);
    WorkloadRun run(cluster, syntheticWorkload(4, 50'000, 4 * MiB),
                    TrainerOptions{.numPasses = 1});
    run.run();
    ASSERT_NE(cluster.trace(), nullptr);
    const std::string json = cluster.trace()->toJson();
    EXPECT_NE(json.find("\"cat\": \"compute\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"phase\""), std::string::npos);
    // Big collectives on a slow ring: some exposed wait must appear.
    EXPECT_NE(json.find("\"cat\": \"wait\""), std::string::npos);
    cluster.trace()->clear(); // avoid writing at destruction
}

TEST(Trace, DisabledByDefault)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    Cluster cluster(cfg);
    EXPECT_EQ(cluster.trace(), nullptr);
    cluster.runCollective(CollectiveKind::AllReduce, 1024);
}

} // namespace
} // namespace astra
