# Empty dependencies file for astra_test_main.
# This may be replaced when dependencies are built.
