# Empty compiler generated dependencies file for astra_compute.
# This may be replaced when dependencies are built.
