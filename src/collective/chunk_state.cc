#include "collective/chunk_state.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"
#include "common/logging.hh"

namespace astra
{

ElemRange
ElemRange::subRange(int parts, int j) const
{
    const int len = length();
    if (parts <= 0 || len % parts != 0)
        panic("range length %d not divisible into %d parts", len, parts);
    if (j < 0 || j >= parts)
        panic("subrange index %d out of [0,%d)", j, parts);
    const int step = len / parts;
    return ElemRange{lo + j * step, lo + (j + 1) * step};
}

ChunkState::ChunkState(int group_size, int my_global_rank,
                       Bytes total_bytes, CollectiveKind kind)
    : _e(group_size), _myRank(my_global_rank), _totalBytes(total_bytes),
      _kind(kind), _validate(validationAtLeast(ValidateLevel::kBasic))
{
    if (group_size < 1)
        panic("chunk group size %d < 1", group_size);
    if (my_global_rank < 0 || my_global_rank >= group_size)
        panic("rank %d out of [0,%d)", my_global_rank, group_size);

    switch (kind) {
      case CollectiveKind::AllReduce:
      case CollectiveKind::ReduceScatter:
        // Start holding a private partial of everything.
        _current = ElemRange{0, _e};
        _contribs.assign(std::size_t(_e), BitVec(std::size_t(_e)));
        _valid.assign(std::size_t(_e), true);
        for (auto &c : _contribs)
            c.set(std::size_t(_myRank));
        break;
      case CollectiveKind::AllGather:
        // Start holding only the own element, fully formed.
        _current = ElemRange{_myRank, _myRank + 1};
        _contribs.assign(std::size_t(_e), BitVec(std::size_t(_e)));
        _valid.assign(std::size_t(_e), false);
        _contribs[std::size_t(_myRank)].set(std::size_t(_myRank));
        _valid[std::size_t(_myRank)] = true;
        break;
      case CollectiveKind::AllToAll:
        _contribs.assign(std::size_t(_e), BitVec(std::size_t(_e)));
        _valid.assign(std::size_t(_e), false);
        _blocks.reserve(std::size_t(_e));
        for (int d = 0; d < _e; ++d)
            _blocks.emplace_back(_myRank, d);
        break;
      case CollectiveKind::None:
        panic("cannot build chunk state for CollectiveKind::None");
    }
}

Bytes
ChunkState::bytesFor(int elems) const
{
    if (elems <= 0)
        return 0;
    return static_cast<Bytes>(
        std::ceil(bytesPerElem() * static_cast<double>(elems)));
}

const BitVec &
ChunkState::contribs(int e) const
{
    if (e < 0 || e >= _e)
        panic("element %d out of [0,%d)", e, _e);
    return _contribs[std::size_t(e)];
}

void
ChunkState::checkOp(ChunkOp op) const
{
    if (_validate)
        validate::chunkTransition(_kind, op, _done, _myRank);
}

void
ChunkState::finalize()
{
    checkOp(ChunkOp::Finalize);
    _done = true;
}

void
ChunkState::noteTimeout()
{
    checkOp(ChunkOp::Timeout);
    ++_timeouts;
}

void
ChunkState::noteRetry()
{
    checkOp(ChunkOp::Retry);
    ++_retries;
}

RangePayload
ChunkState::makeRangePayload(const ElemRange &range, bool reduce) const
{
    checkOp(ChunkOp::MakePayload);
    RangePayload p;
    p.range = range;
    p.reduce = reduce;
    p.contribs.reserve(std::size_t(range.length()));
    for (int e = range.lo; e < range.hi; ++e) {
        if (!_valid[std::size_t(e)]) {
            panic("node rank %d sending invalid element %d", _myRank, e);
        }
        p.contribs.push_back(_contribs[std::size_t(e)]);
    }
    return p;
}

void
ChunkState::applyRangePayload(const RangePayload &payload)
{
    checkOp(payload.reduce ? ChunkOp::ApplyReduce
                           : ChunkOp::ApplyInstall);
    const ElemRange &r = payload.range;
    if (r.lo < 0 || r.hi > _e || r.lo >= r.hi)
        panic("bad payload range [%d,%d)", r.lo, r.hi);
    if (static_cast<int>(payload.contribs.size()) != r.length())
        panic("payload contribs size mismatch");
    for (int e = r.lo; e < r.hi; ++e) {
        const BitVec &incoming = payload.contribs[std::size_t(e - r.lo)];
        BitVec &mine = _contribs[std::size_t(e)];
        if (payload.reduce) {
            // Reducing the same partial twice would be numerically
            // wrong in a real system; catch schedule bugs here.
            BitVec overlap = incoming;
            overlap &= mine;
            if (!_valid[std::size_t(e)])
                panic("reducing into invalid element %d", e);
            if (!overlap.none()) {
                panic("duplicate contribution reduced into element %d "
                      "(mine=%s incoming=%s)",
                      e, mine.toString().c_str(),
                      incoming.toString().c_str());
            }
            mine |= incoming;
        } else {
            mine = incoming;
            _valid[std::size_t(e)] = true;
        }
    }
    ++_payloadsApplied;
}

void
ChunkState::restrictValidTo(const ElemRange &keep)
{
    checkOp(ChunkOp::Restrict);
    for (int e = 0; e < _e; ++e) {
        if (!keep.contains(e))
            _valid[std::size_t(e)] = false;
    }
    _current = keep;
}

std::vector<std::pair<int, int>>
ChunkState::takeBlocksIf(
    const std::function<bool(int src, int dst)> &pred)
{
    checkOp(ChunkOp::TakeBlocks);
    std::vector<std::pair<int, int>> taken;
    std::vector<std::pair<int, int>> kept;
    for (const auto &b : _blocks) {
        if (pred(b.first, b.second))
            taken.push_back(b);
        else
            kept.push_back(b);
    }
    _blocks = std::move(kept);
    return taken;
}

void
ChunkState::addBlocks(const std::vector<std::pair<int, int>> &blocks)
{
    checkOp(ChunkOp::AddBlocks);
    _blocks.insert(_blocks.end(), blocks.begin(), blocks.end());
    ++_payloadsApplied;
}

bool
ChunkState::allReduced() const
{
    for (int e = 0; e < _e; ++e) {
        if (!_valid[std::size_t(e)] || !_contribs[std::size_t(e)].all())
            return false;
    }
    return true;
}

bool
ChunkState::allValid() const
{
    for (int e = 0; e < _e; ++e) {
        if (!_valid[std::size_t(e)])
            return false;
    }
    return true;
}

bool
ChunkState::allToAllComplete() const
{
    if (static_cast<int>(_blocks.size()) != _e)
        return false;
    std::vector<bool> seen(std::size_t(_e), false);
    for (const auto &[src, dst] : _blocks) {
        if (dst != _myRank)
            return false;
        if (src < 0 || src >= _e || seen[std::size_t(src)])
            return false;
        seen[std::size_t(src)] = true;
    }
    return true;
}

} // namespace astra
