# Determinism check of astra-lint's --threads mode, run via ctest:
# the full fixture corpus (dozens of files, every rule family firing)
# must produce byte-identical stdout at --threads=1 and --threads=4,
# and a --write-baseline taken under each must also be byte-identical
# — parallel analysis may only change wall-clock, never output.
#
# Invoked with -DLINT_TOOL=... -DSOURCE_DIR=... -DWORK_DIR=...

set(fixtures "tests/lint/fixtures")

foreach(n 1 4)
    execute_process(
        COMMAND "${LINT_TOOL}" "--root=${SOURCE_DIR}" --no-allowlist
                --include-fixtures "--threads=${n}" "${fixtures}"
        OUTPUT_FILE "${WORK_DIR}/lint_threads_${n}.txt"
        RESULT_VARIABLE rc)
    if(rc EQUAL 0)
        message(FATAL_ERROR
            "fixture corpus reported nothing at --threads=${n}")
    endif()
    execute_process(
        COMMAND "${LINT_TOOL}" "--root=${SOURCE_DIR}" --no-allowlist
                --include-fixtures "--threads=${n}"
                "--write-baseline=${WORK_DIR}/lint_threads_${n}.baseline"
                "${fixtures}"
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "--write-baseline exited ${rc} at --threads=${n}, want 0")
    endif()
endforeach()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${WORK_DIR}/lint_threads_1.txt" "${WORK_DIR}/lint_threads_4.txt"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "diagnostics differ between --threads=1 and =4")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${WORK_DIR}/lint_threads_1.baseline"
            "${WORK_DIR}/lint_threads_4.baseline"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "baselines differ between --threads=1 and =4")
endif()
