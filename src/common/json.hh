/**
 * @file
 * Minimal JSON output helpers shared by every serializer in the tree
 * (trace recorder, metric registry, report writers).
 *
 * Only *emission* lives here — the simulator never parses JSON. The
 * helpers guarantee the two properties a hand-rolled writer usually
 * gets wrong: every control character in a string is escaped (invalid
 * JSON otherwise), and every double renders as a finite JSON number
 * (NaN/Inf have no JSON spelling).
 */

#ifndef ASTRA_COMMON_JSON_HH
#define ASTRA_COMMON_JSON_HH

#include <string>

namespace astra
{

/**
 * Escape @p s for inclusion inside a JSON string literal. Handles the
 * two-character escapes ("\n", "\"" ...) and renders every other byte
 * below 0x20 as \u00XX.
 */
std::string jsonEscape(const std::string &s);

/**
 * Render @p v as a JSON number token. NaN and infinities — which JSON
 * cannot represent — render as 0 (observer output must never make a
 * report unparsable).
 */
std::string jsonNumber(double v);

} // namespace astra

#endif // ASTRA_COMMON_JSON_HH
