/**
 * @file
 * The physical scale-up fabric: unidirectional links and route lookup.
 *
 * Both network backends share this structure. Links are built from the
 * logical topology with a one-to-one mapping (the ASTRA-SIM default):
 *
 *  - every ring channel of a Ring dimension contributes one link per
 *    node (node -> its successor on that channel);
 *  - every global switch of a Switch dimension contributes, per node,
 *    an up-link (node -> switch) and a down-link (switch -> node).
 *
 * Ports are integers: 0..numNodes-1 are NPU endpoints, numNodes..
 * numNodes+numSwitches-1 are global switches.
 */

#ifndef ASTRA_NET_FABRIC_HH
#define ASTRA_NET_FABRIC_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/config.hh"
#include "net/network_api.hh"
#include "topo/topology.hh"

namespace astra
{

/** Dense link identifier. */
using LinkId = std::int32_t;

/** One unidirectional physical link. */
struct LinkDesc
{
    std::int32_t from; //!< source port (node or switch)
    std::int32_t to;   //!< destination port (node or switch)
    LinkClass cls;     //!< intra- or inter-package technology
    int dim;           //!< topology dimension the link belongs to
};

/**
 * Immutable physical fabric.
 */
class Fabric
{
  public:
    /**
     * @param topo  The *physical* topology the links are built from.
     * @param cfg   Link technology parameters.
     * @param one_to_one  True when the system layer's logical topology
     *        equals @p topo (the ASTRA-SIM default); route hints are
     *        then followed literally. False for logical-on-physical
     *        mapping (Sec. IV-B): hints only seed the channel choice
     *        and transfers are routed dimension-ordered through the
     *        physical fabric.
     */
    Fabric(const Topology &topo, const SimConfig &cfg,
           bool one_to_one = true);

    /** Is the logical view identical to the physical fabric? */
    bool oneToOne() const { return _oneToOne; }

    /**
     * Route a transfer under the configured mapping: route() when
     * one-to-one, routeMapped() otherwise. A negative hint.dim marks a
     * point-to-point transfer between arbitrary endpoints (pipeline
     * parallelism): those are always routed dimension-ordered.
     */
    std::vector<LinkId>
    resolve(NodeId src, NodeId dst, const RouteHint &hint) const
    {
        if (!_oneToOne || hint.dim < 0)
            return routeMapped(src, dst, hint.channel);
        return route(src, dst, hint);
    }

    /**
     * Dimension-ordered route through the physical fabric between two
     * arbitrary endpoints; @p channel_seed selects ring channels and
     * switches deterministically.
     */
    std::vector<LinkId>
    routeMapped(NodeId src, NodeId dst, int channel_seed) const;

    /** Number of links. */
    int numLinks() const { return static_cast<int>(_links.size()); }

    /** Descriptor for @p id. */
    const LinkDesc &
    link(LinkId id) const
    {
        return _links[std::size_t(id)];
    }

    /** Technology parameters for @p cls (from the SimConfig). */
    const LinkParams &
    params(LinkClass cls) const
    {
        switch (cls) {
          case LinkClass::Local: return _local;
          case LinkClass::Package: return _package;
          case LinkClass::ScaleOut: return _scaleout;
        }
        return _package; // unreachable
    }

    /** Shorthand: parameters of link @p id's class. */
    const LinkParams &
    linkParams(LinkId id) const
    {
        return params(link(id).cls);
    }

    /**
     * Physical route for a transfer from @p src to @p dst under
     * @p hint. Ring dimensions walk the hinted channel; Switch
     * dimensions go via the hinted global switch. @p src and @p dst
     * must belong to the same dimension-@p hint.dim group.
     * An empty route is returned when src == dst.
     */
    std::vector<LinkId>
    route(NodeId src, NodeId dst, const RouteHint &hint) const;

    /** Number of hops route() would take (without building it). */
    int hopCount(NodeId src, NodeId dst, const RouteHint &hint) const;

    const Topology &topology() const { return _topo; }

    /**
     * Ring-channel link map: ringLinks()[(dim,ch)][node] is the link
     * leaving @p node on ring channel @p ch of dimension @p dim. The
     * fault layer uses it to find which channels a forever-down link
     * disables (FaultManager::bindRingChannels).
     */
    const std::map<std::pair<int, int>, std::vector<LinkId>> &
    ringLinks() const
    {
        return _ringLinks;
    }

  private:
    const Topology &_topo;
    bool _oneToOne;
    LinkParams _local;
    LinkParams _package;
    LinkParams _scaleout;
    std::vector<LinkDesc> _links;

    /** ringLink[(dim,ch)][node] = link leaving node on that channel. */
    std::map<std::pair<int, int>, std::vector<LinkId>> _ringLinks;
    /** upLink[(dim,switch)][node], downLink[(dim,switch)][node]. */
    std::map<std::pair<int, int>, std::vector<LinkId>> _upLinks;
    std::map<std::pair<int, int>, std::vector<LinkId>> _downLinks;
    std::int32_t _switchPorts = 0; //!< switch port id allocator
};

/**
 * Fold per-link usage tallies into metrics:
 *  - one "link.<id>.util" counter per link that carried traffic
 *    (busy / elapsed, NaN-free via safeDiv);
 *  - per-dimension aggregates "dim.<name>.{busy,queue_wait,bytes,
 *    grants,links,util}" where utilization is total busy over the
 *    dimension's aggregate link-time;
 *  - a "link.util.pct" histogram over all links (percent, so the log2
 *    buckets resolve the 0..100 range);
 *  - fabric-wide "links.total" / "bytes.total" / "util.mean".
 *
 * @p usage must be indexed by LinkId and sized fabric.numLinks().
 * A zero @p elapsed yields 0.0 utilization everywhere, never NaN.
 */
void exportLinkUsage(const Fabric &fabric,
                     const std::vector<LinkUsage> &usage, Tick elapsed,
                     StatGroup &g);

} // namespace astra

#endif // ASTRA_NET_FABRIC_HH
