/**
 * @file
 * Sweep journal — crash-safe record of completed candidates
 * (docs/robustness.md), the stepping stone to the ROADMAP's
 * digest-keyed result cache.
 *
 * `--journal=FILE` appends one entry per evaluated candidate, keyed by
 * an FNV-1a digest of the candidate's full configuration (label, op,
 * bytes, and the rendered SimConfig — budgets included). Each append
 * is flushed immediately, so a SIGINT/SIGTERM or a crash loses at most
 * the candidates still in flight. `--resume` reloads the file and
 * SweepRunner skips every journaled candidate, restoring its result
 * bit-for-bit: commTime and digest round-trip as integers and energy
 * as a C99 hexfloat, so the merged output table of an
 * interrupted-then-resumed sweep is byte-identical to an uninterrupted
 * run's.
 *
 * Text format, one record per line (v1):
 *
 *   astra-journal-v1
 *   C <key> <outcome> <commTime> <energy> <digest> <nfail> <label>
 *   F <node> <link> <stream> <tick> <retries> <reason...>
 *
 * `C` lines carry key/digest as hex, energy as %a hexfloat, and are
 * followed by exactly <nfail> `F` failure-record lines. Restored
 * entries carry no metric registry — the journal restores the ranked
 * table, not the full per-candidate JSON report (documented in
 * docs/robustness.md).
 */

#ifndef ASTRA_GUARD_JOURNAL_HH
#define ASTRA_GUARD_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hh"
#include "fault/fault.hh"

namespace astra
{
namespace guard
{

/** One journaled candidate result (everything the ranked table needs). */
struct JournalEntry
{
    std::uint64_t key = 0;    //!< config digest (journalKey)
    RunOutcome outcome = RunOutcome::Completed;
    Tick commTime = 0;
    double energyUj = 0;
    std::uint64_t digest = 0; //!< retired-event-stream digest
    std::string label;
    std::vector<FailureRecord> failures;
};

/**
 * FNV-1a key of a candidate: label, collective kind, payload size and
 * the rendered configuration (budget keys included, so a re-run with
 * different ceilings never matches a stale entry).
 */
std::uint64_t journalKey(const std::string &label, int kind,
                         std::uint64_t bytes, const std::string &cfg_text);

/**
 * The journal file. Thread-safe: SweepRunner workers append
 * concurrently under one mutex, each append flushed before the call
 * returns. Lookup is read-only after construction.
 */
class SweepJournal
{
  public:
    /**
     * Open @p path. With @p resume the existing file is parsed (a
     * malformed file is a config error — fatal) and then extended;
     * without it any existing content is truncated and a fresh header
     * written. fatal()s when the file cannot be opened.
     */
    SweepJournal(const std::string &path, bool resume);
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /** Entry journaled under @p key, or nullptr. */
    const JournalEntry *find(std::uint64_t key) const;

    /** Append @p entry and flush (thread-safe). */
    void append(const JournalEntry &entry);

    /** Entries loaded at construction (resume mode). */
    std::size_t restoredCount() const { return _entries.size(); }

    const std::string &path() const { return _path; }

  private:
    std::string _path;
    std::FILE *_file = nullptr;
    std::map<std::uint64_t, JournalEntry> _entries;
    mutable std::mutex _mutex;
};

} // namespace guard
} // namespace astra

#endif // ASTRA_GUARD_JOURNAL_HH
