# Empty compiler generated dependencies file for fig17_size_scaling.
# This may be replaced when dependencies are built.
