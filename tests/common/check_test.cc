/**
 * @file
 * Integrity-layer tests (docs/validation.md): the ASTRA_CHECK macro
 * family, the validation-level switch, the ValidatorRegistry, the
 * determinism digest, and — the heart of the layer — death tests
 * proving each checker actually catches an injected violation.
 */

#include <gtest/gtest.h>

#include "collective/chunk_state.hh"
#include "collective/validate.hh"
#include "common/check.hh"
#include "common/event_queue.hh"
#include "common/logging.hh"
#include "common/validate.hh"
#include "core/cluster.hh"
#include "net/validate.hh"

namespace astra
{
namespace
{

/** Pin the process-global validation level for one test body. */
class ScopedValidation
{
  public:
    explicit ScopedValidation(ValidateLevel level)
        : _prev(validationLevel())
    {
        setValidationLevel(level);
    }

    ~ScopedValidation() { setValidationLevel(_prev); }

  private:
    ValidateLevel _prev;
};

std::string
failureMessage(const std::function<void()> &fn)
{
    try {
        fn();
    } catch (const FatalError &e) {
        return e.what();
    }
    return std::string();
}

// --- the macro family ------------------------------------------------

TEST(Check, PassingCheckIsSilent)
{
    ASTRA_CHECK(1 + 1 == 2, "never printed");
    ASTRA_DCHECK(1 + 1 == 2, "never printed");
}

TEST(Check, FailingCheckCarriesLocationExpressionAndValues)
{
    const int npu = 7;
    const std::string msg = failureMessage(
        [&] { ASTRA_CHECK(npu < 4, "npu=%d out of range", npu); });
    EXPECT_NE(msg.find("check_test.cc"), std::string::npos) << msg;
    EXPECT_NE(msg.find("npu < 4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("npu=7"), std::string::npos) << msg;
}

TEST(Check, DcheckConditionIsNotEvaluatedInOffBuilds)
{
#ifndef ASTRA_VALIDATE
    int evaluations = 0;
    ASTRA_DCHECK(++evaluations > 0, "off build must not evaluate");
    EXPECT_EQ(evaluations, 0);
#else
    EXPECT_THROW(ASTRA_DCHECK(false, "on build must check"),
                 FatalError);
#endif
}

TEST(Check, LevelParseAndRoundTrip)
{
    EXPECT_EQ(parseValidateLevel(""), ValidateLevel::kFull);
    EXPECT_EQ(parseValidateLevel("full"), ValidateLevel::kFull);
    EXPECT_EQ(parseValidateLevel("2"), ValidateLevel::kFull);
    EXPECT_EQ(parseValidateLevel("basic"), ValidateLevel::kBasic);
    EXPECT_EQ(parseValidateLevel("1"), ValidateLevel::kBasic);
    EXPECT_EQ(parseValidateLevel("off"), ValidateLevel::kOff);
    EXPECT_EQ(parseValidateLevel("0"), ValidateLevel::kOff);
    EXPECT_THROW(parseValidateLevel("loud"), FatalError);
    EXPECT_STREQ(toString(ValidateLevel::kBasic), "basic");
}

TEST(Check, LevelThresholding)
{
    ScopedValidation guard(ValidateLevel::kBasic);
    EXPECT_TRUE(validationAtLeast(ValidateLevel::kOff));
    EXPECT_TRUE(validationAtLeast(ValidateLevel::kBasic));
    EXPECT_FALSE(validationAtLeast(ValidateLevel::kFull));
}

// --- the registry ----------------------------------------------------

TEST(ValidatorRegistryTest, RunsCheckersInRegistrationOrder)
{
    ValidatorRegistry reg;
    std::vector<int> order;
    reg.add("first", [&] { order.push_back(1); });
    reg.add("second", [&] { order.push_back(2); });
    reg.add("third", [&] { order.push_back(3); });
    reg.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(reg.size(), 3u);
    EXPECT_EQ(reg.names(),
              (std::vector<std::string>{"first", "second", "third"}));
}

TEST(ValidatorRegistryTest, ViolationInACheckerPropagates)
{
    ValidatorRegistry reg;
    reg.add("bad", [] { ASTRA_CHECK(false, "invariant broken"); });
    EXPECT_THROW(reg.runAll(), FatalError);
}

// --- the determinism digest ------------------------------------------

TEST(Digest, RepeatableAndOrderSensitive)
{
    Fnv1aDigest a, b, c;
    a.mix(1);
    a.mix(2);
    b.mix(1);
    b.mix(2);
    c.mix(2);
    c.mix(1);
    EXPECT_EQ(a.value(), b.value());
    EXPECT_NE(a.value(), c.value());
    EXPECT_NE(a.value(), Fnv1aDigest{}.value());
}

TEST(Digest, EventQueueDigestIsRunInvariant)
{
    auto run_once = [] {
        EventQueue eq;
        eq.enableDigest();
        for (int i = 0; i < 50; ++i)
            eq.schedule(Tick(100 - i), [] {}, i % 3);
        eq.run();
        return eq.digest();
    };
    EXPECT_EQ(run_once(), run_once());
}

// --- event-queue checkers --------------------------------------------

TEST(EventOrderChecker, CatchesInjectedViolations)
{
    // In-order progressions pass...
    validate::eventOrder(10, 0, 5, 10, 0, 6); // FIFO within a tick
    validate::eventOrder(10, 0, 5, 10, 1, 2); // higher priority later
    validate::eventOrder(10, 1, 5, 11, 0, 2); // later tick resets both
    // ...and each corrupted component dies.
    EXPECT_THROW(validate::eventOrder(10, 0, 5, 9, 0, 6), FatalError);
    EXPECT_THROW(validate::eventOrder(10, 1, 5, 10, 0, 6), FatalError);
    EXPECT_THROW(validate::eventOrder(10, 0, 5, 10, 0, 5), FatalError);
}

TEST(EventOrderChecker, AuditedQueuePassesOnRealTraffic)
{
    EventQueue eq;
    eq.setOrderAudit(true);
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        eq.schedule(Tick(i % 10), [&] { ++fired; }, -(i % 4));
    eq.run();
    EXPECT_EQ(fired, 100);
}

TEST(EventQueueDrainChecker, CatchesPendingEvents)
{
    EventQueue eq;
    eq.validateDrained(); // empty queue passes
    eq.schedule(5, [] {});
    const std::string msg =
        failureMessage([&] { eq.validateDrained(); });
    EXPECT_NE(msg.find("live event"), std::string::npos) << msg;
}

TEST(EventQueueSchedule, PastEventDiagnosticNamesTicks)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    const std::string msg =
        failureMessage([&] { eq.schedule(3, [] {}); });
    EXPECT_NE(msg.find("when=3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("now=10"), std::string::npos) << msg;
}

// --- network checkers ------------------------------------------------

TEST(CreditChecker, CatchesLeakAndOverGrant)
{
    validate::creditBounds(0, 0, 8);
    validate::creditBounds(0, 8, 8);
    // A released-twice credit drives occupancy negative...
    EXPECT_THROW(validate::creditBounds(3, -2, 8), FatalError);
    // ...and a grant without credits overflows the buffer.
    const std::string msg = failureMessage(
        [] { validate::creditBounds(3, 9, 8); });
    EXPECT_NE(msg.find("link 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("occupancy=9"), std::string::npos) << msg;
}

TEST(ConservationChecker, CatchesLostPackets)
{
    validate::packetConservation("packet", 100, 100);
    const std::string msg = failureMessage(
        [] { validate::packetConservation("flit", 100, 97); });
    EXPECT_NE(msg.find("flit"), std::string::npos) << msg;
    EXPECT_NE(msg.find("injected=100"), std::string::npos) << msg;
    EXPECT_NE(msg.find("retired=97"), std::string::npos) << msg;
}

TEST(BusyIntervalChecker, CatchesOverlappingGrants)
{
    validate::linkGrantNonOverlap(0, 100, 100);
    validate::linkGrantNonOverlap(0, 101, 100);
    EXPECT_THROW(validate::linkGrantNonOverlap(0, 99, 100),
                 FatalError);
}

TEST(DrainQueueChecker, CatchesStuckTransfers)
{
    validate::drainQueueEmpty("garnet-lite", 0, 0);
    EXPECT_THROW(validate::drainQueueEmpty("garnet-lite", 2, 3),
                 FatalError);
}

// --- chunk state machine ---------------------------------------------

TEST(ChunkFsm, TransitionTableMatchesCollectiveSemantics)
{
    using validate::chunkOpLegal;
    // Reduce-scatter moves partials: reduce yes, install no.
    EXPECT_TRUE(chunkOpLegal(CollectiveKind::ReduceScatter,
                             ChunkOp::ApplyReduce, false));
    EXPECT_FALSE(chunkOpLegal(CollectiveKind::ReduceScatter,
                              ChunkOp::ApplyInstall, false));
    // All-gather moves finished elements: install yes, reduce no.
    EXPECT_TRUE(chunkOpLegal(CollectiveKind::AllGather,
                             ChunkOp::ApplyInstall, false));
    EXPECT_FALSE(chunkOpLegal(CollectiveKind::AllGather,
                              ChunkOp::ApplyReduce, false));
    // All-to-all never touches the range view and vice versa.
    EXPECT_TRUE(chunkOpLegal(CollectiveKind::AllToAll,
                             ChunkOp::TakeBlocks, false));
    EXPECT_FALSE(chunkOpLegal(CollectiveKind::AllToAll,
                              ChunkOp::MakePayload, false));
    EXPECT_FALSE(chunkOpLegal(CollectiveKind::AllReduce,
                              ChunkOp::AddBlocks, false));
    // A finalized chunk accepts nothing.
    EXPECT_FALSE(chunkOpLegal(CollectiveKind::AllReduce,
                              ChunkOp::ApplyReduce, true));
    EXPECT_FALSE(chunkOpLegal(CollectiveKind::AllReduce,
                              ChunkOp::Finalize, true));
}

TEST(ChunkFsm, AllGatherChunkRejectsReducePayload)
{
    ScopedValidation guard(ValidateLevel::kBasic);
    ChunkState s(4, 0, 4096, CollectiveKind::AllGather);
    RangePayload p = s.makeRangePayload(ElemRange{0, 1}, false);
    p.reduce = true; // a reduce payload reaching an all-gather chunk
    const std::string msg =
        failureMessage([&] { s.applyRangePayload(p); });
    EXPECT_NE(msg.find("apply-reduce"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ALLGATHER"), std::string::npos) << msg;
}

TEST(ChunkFsm, AllToAllChunkRejectsRangeOps)
{
    ScopedValidation guard(ValidateLevel::kBasic);
    ChunkState s(4, 1, 4096, CollectiveKind::AllToAll);
    EXPECT_THROW(s.makeRangePayload(ElemRange{0, 1}, false),
                 FatalError);
    EXPECT_THROW(s.restrictValidTo(ElemRange{0, 1}), FatalError);
}

TEST(ChunkFsm, FinalizedChunkRejectsFurtherMutation)
{
    ScopedValidation guard(ValidateLevel::kBasic);
    ChunkState s(4, 2, 4096, CollectiveKind::AllReduce);
    EXPECT_FALSE(s.finalized());
    s.finalize();
    EXPECT_TRUE(s.finalized());
    EXPECT_THROW(s.restrictValidTo(ElemRange{0, 1}), FatalError);
    EXPECT_THROW(s.finalize(), FatalError); // double finish
    const std::string msg = failureMessage(
        [&] { s.makeRangePayload(ElemRange{0, 1}, false); });
    EXPECT_NE(msg.find("finalized"), std::string::npos) << msg;
}

TEST(ChunkFsm, ChecksAreOffAtLevelOff)
{
    ScopedValidation guard(ValidateLevel::kOff);
    ChunkState s(4, 1, 4096, CollectiveKind::AllToAll);
    // Illegal per the table, but the gate is disarmed: the op falls
    // through to the (well-defined) underlying behaviour.
    EXPECT_NO_THROW(s.restrictValidTo(ElemRange{0, 4}));
}

// --- whole-platform integration --------------------------------------

TEST(ClusterValidation, CheckersRegisterAndPassOnARealRun)
{
    ScopedValidation guard(ValidateLevel::kFull);
    SimConfig cfg;
    cfg.torus(2, 2, 1);
    Cluster cluster(cfg);
    // Event queue + network + one scheduler per node.
    EXPECT_EQ(cluster.validators().size(),
              2u + std::size_t(cfg.numNpus()));
    EXPECT_GT(cluster.runCollective(CollectiveKind::AllReduce,
                                    64 * 1024),
              0u);
}

TEST(ClusterValidation, GarnetBackendCheckersPass)
{
    ScopedValidation guard(ValidateLevel::kFull);
    SimConfig cfg;
    cfg.torus(2, 2, 1);
    cfg.backend = NetworkBackend::GarnetLite;
    Cluster cluster(cfg);
    EXPECT_GT(cluster.runCollective(CollectiveKind::AllToAll,
                                    64 * 1024),
              0u);
}

TEST(ClusterValidation, NoCheckersAtLevelOff)
{
    ScopedValidation guard(ValidateLevel::kOff);
    SimConfig cfg;
    cfg.torus(2, 2, 1);
    Cluster cluster(cfg);
    EXPECT_EQ(cluster.validators().size(), 0u);
}

TEST(ClusterValidation, DigestMatchesAcrossIdenticalRuns)
{
    SimConfig cfg;
    cfg.torus(2, 2, 1);
    cfg.digest = true;
    auto run_once = [&] {
        Cluster cluster(cfg);
        cluster.runCollective(CollectiveKind::AllReduce, 256 * 1024);
        return cluster.digest();
    };
    const std::uint64_t first = run_once();
    EXPECT_NE(first, 0u);
    EXPECT_EQ(first, run_once());
}

TEST(ClusterValidation, DigestOffByDefault)
{
    SimConfig cfg;
    cfg.torus(2, 2, 1);
    Cluster cluster(cfg);
    cluster.runCollective(CollectiveKind::AllReduce, 64 * 1024);
    EXPECT_EQ(cluster.digest(), Fnv1aDigest{}.value());
}

} // namespace
} // namespace astra
