#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "workload/layer.hh"

namespace astra
{
namespace
{

const char *kGood = R"(# example
PARALLELISM: HYBRID
LAYERS: 2
LAYER conv1
COMPUTE 1200 1100 900
COMM NONE 0 NONE 0 ALLREDUCE 37632
UPDATE 2.0
LAYER fc
COMPUTE 800 700 600
COMM ALLGATHER 4096 ALLTOALL 2048 NONE 0
UPDATE 1.5
)";

TEST(WorkloadFile, ParsesTheReferenceExample)
{
    std::istringstream in(kGood);
    WorkloadSpec spec = WorkloadSpec::parse(in, "inline");
    EXPECT_EQ(spec.parallelism, ParallelismKind::Hybrid);
    ASSERT_EQ(spec.layers.size(), 2u);
    const LayerSpec &c = spec.layers[0];
    EXPECT_EQ(c.name, "conv1");
    EXPECT_EQ(c.fwdCompute, 1200u);
    EXPECT_EQ(c.igCompute, 1100u);
    EXPECT_EQ(c.wgCompute, 900u);
    EXPECT_EQ(c.wgComm, CollectiveKind::AllReduce);
    EXPECT_EQ(c.wgCommSize, 37632u);
    EXPECT_EQ(c.fwdComm, CollectiveKind::None);
    EXPECT_DOUBLE_EQ(c.updateTimePerKiB, 2.0);
    const LayerSpec &f = spec.layers[1];
    EXPECT_EQ(f.fwdComm, CollectiveKind::AllGather);
    EXPECT_EQ(f.igComm, CollectiveKind::AllToAll);
    EXPECT_EQ(f.igCommSize, 2048u);
}

TEST(WorkloadFile, SerializeParsesBackIdentically)
{
    std::istringstream in(kGood);
    WorkloadSpec spec = WorkloadSpec::parse(in, "inline");
    std::istringstream again(spec.serialize());
    WorkloadSpec spec2 = WorkloadSpec::parse(again, "round-trip");
    ASSERT_EQ(spec2.layers.size(), spec.layers.size());
    EXPECT_EQ(spec2.parallelism, spec.parallelism);
    for (std::size_t i = 0; i < spec.layers.size(); ++i) {
        const LayerSpec &a = spec.layers[i];
        const LayerSpec &b = spec2.layers[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.fwdCompute, b.fwdCompute);
        EXPECT_EQ(a.igCompute, b.igCompute);
        EXPECT_EQ(a.wgCompute, b.wgCompute);
        EXPECT_EQ(a.fwdComm, b.fwdComm);
        EXPECT_EQ(a.igComm, b.igComm);
        EXPECT_EQ(a.wgComm, b.wgComm);
        EXPECT_EQ(a.fwdCommSize, b.fwdCommSize);
        EXPECT_EQ(a.igCommSize, b.igCommSize);
        EXPECT_EQ(a.wgCommSize, b.wgCommSize);
        EXPECT_DOUBLE_EQ(a.updateTimePerKiB, b.updateTimePerKiB);
    }
}

TEST(WorkloadFile, FileRoundTrip)
{
    std::istringstream in(kGood);
    WorkloadSpec spec = WorkloadSpec::parse(in, "inline");
    const char *path = "/tmp/astra_workload_test.txt";
    spec.writeFile(path);
    WorkloadSpec spec2 = WorkloadSpec::parseFile(path);
    EXPECT_EQ(spec2.layers.size(), 2u);
    std::remove(path);
}

struct BadCase
{
    const char *name;
    const char *text;
};

class WorkloadFileErrors : public ::testing::TestWithParam<BadCase>
{
};

TEST_P(WorkloadFileErrors, AreFatalWithoutCrashing)
{
    std::istringstream in(GetParam().text);
    EXPECT_THROW(WorkloadSpec::parse(in, "bad"), FatalError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, WorkloadFileErrors,
    ::testing::Values(
        BadCase{"empty", ""},
        BadCase{"no_parallelism", "LAYERS: 1\n"},
        BadCase{"bad_parallelism", "PARALLELISM: SIDEWAYS\nLAYERS: 1\n"},
        BadCase{"zero_layers", "PARALLELISM: DATA\nLAYERS: 0\n"},
        BadCase{"missing_layer",
                "PARALLELISM: DATA\nLAYERS: 1\n"},
        BadCase{"bad_compute",
                "PARALLELISM: DATA\nLAYERS: 1\nLAYER a\n"
                "COMPUTE 1 2\nCOMM NONE 0 NONE 0 NONE 0\nUPDATE 1\n"},
        BadCase{"negative_compute",
                "PARALLELISM: DATA\nLAYERS: 1\nLAYER a\n"
                "COMPUTE 1 -2 3\nCOMM NONE 0 NONE 0 NONE 0\nUPDATE 1\n"},
        BadCase{"bad_comm_kind",
                "PARALLELISM: DATA\nLAYERS: 1\nLAYER a\n"
                "COMPUTE 1 2 3\nCOMM WIBBLE 1 NONE 0 NONE 0\nUPDATE 1\n"},
        BadCase{"comm_with_zero_size",
                "PARALLELISM: DATA\nLAYERS: 1\nLAYER a\n"
                "COMPUTE 1 2 3\nCOMM NONE 0 NONE 0 ALLREDUCE 0\n"
                "UPDATE 1\n"},
        BadCase{"missing_update",
                "PARALLELISM: DATA\nLAYERS: 1\nLAYER a\n"
                "COMPUTE 1 2 3\nCOMM NONE 0 NONE 0 NONE 0\n"},
        BadCase{"trailing_garbage",
                "PARALLELISM: DATA\nLAYERS: 1\nLAYER a\n"
                "COMPUTE 1 2 3\nCOMM NONE 0 NONE 0 NONE 0\nUPDATE 1\n"
                "EXTRA\n"}),
    [](const ::testing::TestParamInfo<BadCase> &i) {
        return i.param.name;
    });

TEST(WorkloadFile, MissingFileIsFatal)
{
    EXPECT_THROW(WorkloadSpec::parseFile("/does/not/exist.txt"),
                 FatalError);
}

TEST(LayerSpec, SlotAccessors)
{
    LayerSpec l;
    l.fwdCompute = 1;
    l.igCompute = 2;
    l.wgCompute = 3;
    l.fwdComm = CollectiveKind::AllGather;
    l.igComm = CollectiveKind::AllToAll;
    l.wgComm = CollectiveKind::AllReduce;
    l.fwdCommSize = 10;
    l.igCommSize = 20;
    l.wgCommSize = 30;
    EXPECT_EQ(l.compute(CommSlot::Forward), 1u);
    EXPECT_EQ(l.compute(CommSlot::InputGrad), 2u);
    EXPECT_EQ(l.compute(CommSlot::WeightGrad), 3u);
    EXPECT_EQ(l.comm(CommSlot::Forward), CollectiveKind::AllGather);
    EXPECT_EQ(l.commSize(CommSlot::WeightGrad), 30u);
}

TEST(LayerSpec, UpdateDelayScalesPerKiB)
{
    LayerSpec l;
    l.wgComm = CollectiveKind::AllReduce;
    l.wgCommSize = 4096; // 4 KiB
    l.updateTimePerKiB = 2.5;
    EXPECT_EQ(l.updateDelay(CommSlot::WeightGrad), 10u);
    EXPECT_EQ(l.updateDelay(CommSlot::Forward), 0u);
}

TEST(WorkloadSpec, Totals)
{
    std::istringstream in(kGood);
    WorkloadSpec spec = WorkloadSpec::parse(in, "inline");
    EXPECT_EQ(spec.totalCompute(), 1200u + 1100 + 900 + 800 + 700 + 600);
    EXPECT_EQ(spec.totalCommBytes(), 37632u + 4096 + 2048);
}

} // namespace
} // namespace astra
