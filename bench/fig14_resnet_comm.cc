/**
 * @file
 * Fig. 14 — ResNet-50 layer-wise raw communication time.
 *
 * Two training iterations, data-parallel on a 2x4x4 torus, LIFO
 * scheduling, local minibatch 32. Only weight gradients are
 * communicated (Table I), so the per-layer series tracks each layer's
 * parameter count.
 */

#include "bench/support.hh"
#include "workload/models.hh"
#include "workload/trainer.hh"

using namespace astra;
using namespace astra::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv);
    banner("Fig. 14", "ResNet-50 layer-wise comm time, 2x4x4 torus, "
                      "data-parallel, 2 iterations");

    SimConfig cfg;
    cfg.torus(2, 4, 4);
    cfg.local.bandwidth = 8 * cfg.package.bandwidth;
    cfg.schedulingPolicy = SchedulingPolicy::LIFO;
    applyOverrides(args, cfg);

    Cluster cluster(cfg);
    WorkloadRun run(cluster, resnet50Workload(),
                    TrainerOptions{.numPasses = 2});
    const Tick makespan = run.run();
    mergeReport(args, cluster);

    Table t;
    t.header({"layer", "name", "wg_bytes", "wg_comm_cycles"});
    const auto &layers = run.spec().layers;
    const auto &stats = run.layerStats();
    for (std::size_t i = 0; i < stats.size(); ++i) {
        t.row()
            .cell(std::uint64_t(i))
            .cell(layers[i].name)
            .cell(formatBytes(layers[i].wgCommSize))
            .cell(std::uint64_t(stats[i].commWg));
    }
    emitTable(args, "fig14_resnet_comm.csv", t);
    std::printf("makespan: %s\n\n", formatTicks(makespan).c_str());
    writeReport(args);
    return 0;
}
