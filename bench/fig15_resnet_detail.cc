/**
 * @file
 * Fig. 15 — ResNet-50 layer-wise end-to-end breakdown: compute time,
 * raw communication time, and *exposed* communication (the part not
 * overlapped with compute, which stalls the training loop).
 *
 * Same setup as Fig. 14 (2x4x4 torus, data-parallel, 2 iterations).
 * Expected shape: exposed communication concentrates in the earliest
 * layers — their weight-gradient all-reduces are issued last during
 * back-propagation and have no compute left to hide behind
 * (Sec. III-E).
 */

#include "bench/support.hh"
#include "workload/models.hh"
#include "workload/trainer.hh"

using namespace astra;
using namespace astra::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv);
    banner("Fig. 15", "ResNet-50 layer-wise compute / comm / exposed "
                      "comm, 2x4x4 torus");

    SimConfig cfg;
    cfg.torus(2, 4, 4);
    cfg.local.bandwidth = 8 * cfg.package.bandwidth;
    applyOverrides(args, cfg);

    Cluster cluster(cfg);
    WorkloadRun run(cluster, resnet50Workload(),
                    TrainerOptions{.numPasses = 2});
    const Tick makespan = run.run();
    mergeReport(args, cluster);

    Table t;
    t.header({"layer", "name", "compute", "comm", "exposed_comm"});
    const auto &layers = run.spec().layers;
    const auto &stats = run.layerStats();
    Tick exposed_total = 0;
    for (std::size_t i = 0; i < stats.size(); ++i) {
        exposed_total += stats[i].exposed;
        t.row()
            .cell(std::uint64_t(i))
            .cell(layers[i].name)
            .cell(std::uint64_t(stats[i].compute))
            .cell(std::uint64_t(stats[i].commTotal()))
            .cell(std::uint64_t(stats[i].exposed));
    }
    emitTable(args, "fig15_resnet_detail.csv", t);
    std::printf("makespan: %s, exposed: %s (%.1f%%)\n\n",
                formatTicks(makespan).c_str(),
                formatTicks(exposed_total).c_str(),
                100 * run.exposedRatio());
    writeReport(args);
    return 0;
}
