// Negative fixture: near-miss identifiers and prose must not fire.
#include "common/logging.hh"

// abort() in a comment is prose
static const char *kDoc = "never call abort() directly";

void
stop(int v)
{
    bool aborted = v > 0;      // identifier containing "abort"
    if (aborted)
        astra::fatal("v=%d (doc: %s)", v, kDoc);
}
