/**
 * @file
 * Size/bandwidth/time unit helpers.
 *
 * The simulator clock runs at 1 GHz, so 1 cycle == 1 ns and a GB/s is
 * exactly a byte per cycle. Keeping the conversion in one place avoids
 * the classic off-by-10^3 bugs when reading Table IV style parameters.
 */

#ifndef ASTRA_COMMON_UNITS_HH
#define ASTRA_COMMON_UNITS_HH

#include <string>

#include "common/types.hh"

namespace astra
{

inline constexpr Bytes KiB = 1024;
inline constexpr Bytes MiB = 1024 * KiB;
inline constexpr Bytes GiB = 1024 * MiB;

/** Convert a bandwidth in GB/s into bytes per cycle (1 GHz clock). */
constexpr BytesPerCycle
gbpsToBytesPerCycle(double gb_per_s)
{
    return gb_per_s; // 1e9 B/s / 1e9 cycles/s
}

/**
 * Parse a human size string: "32KB", "4MB", "1.5GB", "512", "512B".
 * Decimal multipliers of 1024. fatal()s on malformed input.
 */
Bytes parseBytes(const std::string &text);

/**
 * parseBytes without the fatal: @return false (with a message in
 * @p err) on malformed input, leaving @p out untouched. Used where
 * parse errors are collected instead of aborting (SimConfig::trySet).
 */
bool tryParseBytes(const std::string &text, Bytes *out, std::string *err);

/** Render a byte count compactly: 512B, 32KB, 4MB, 1.5GB. */
std::string formatBytes(Bytes bytes);

/** Render a tick count as "12345 cycles (12.3 us)". */
std::string formatTicks(Tick ticks);

} // namespace astra

#endif // ASTRA_COMMON_UNITS_HH
