#include "collective/validate.hh"

#include "common/check.hh"

namespace astra
{

const char *
toString(ChunkOp op)
{
    switch (op) {
      case ChunkOp::MakePayload:
        return "make-payload";
      case ChunkOp::ApplyReduce:
        return "apply-reduce";
      case ChunkOp::ApplyInstall:
        return "apply-install";
      case ChunkOp::Restrict:
        return "restrict-valid";
      case ChunkOp::TakeBlocks:
        return "take-blocks";
      case ChunkOp::AddBlocks:
        return "add-blocks";
      case ChunkOp::Timeout:
        return "timeout";
      case ChunkOp::Retry:
        return "retry";
      case ChunkOp::Finalize:
        return "finalize";
    }
    return "unknown";
}

namespace validate
{

bool
chunkOpLegal(CollectiveKind kind, ChunkOp op, bool done)
{
    if (done)
        return false; // a sealed chunk accepts nothing
    switch (kind) {
      case CollectiveKind::ReduceScatter:
        switch (op) {
          case ChunkOp::MakePayload:
          case ChunkOp::ApplyReduce:
          case ChunkOp::Restrict:
          case ChunkOp::Timeout:
          case ChunkOp::Retry:
          case ChunkOp::Finalize:
            return true;
          default:
            return false;
        }
      case CollectiveKind::AllGather:
        switch (op) {
          case ChunkOp::MakePayload:
          case ChunkOp::ApplyInstall:
          case ChunkOp::Timeout:
          case ChunkOp::Retry:
          case ChunkOp::Finalize:
            return true;
          default:
            return false;
        }
      case CollectiveKind::AllReduce:
        // RS phases then AG phases: every range op is legal, block ops
        // are not.
        switch (op) {
          case ChunkOp::TakeBlocks:
          case ChunkOp::AddBlocks:
            return false;
          default:
            return true;
        }
      case CollectiveKind::AllToAll:
        switch (op) {
          case ChunkOp::TakeBlocks:
          case ChunkOp::AddBlocks:
          case ChunkOp::Timeout:
          case ChunkOp::Retry:
          case ChunkOp::Finalize:
            return true;
          default:
            return false;
        }
      case CollectiveKind::None:
        return false;
    }
    return false;
}

void
chunkTransition(CollectiveKind kind, ChunkOp op, bool done, int rank)
{
    ASTRA_CHECK(chunkOpLegal(kind, op, done),
                "illegal chunk transition: op %s on a%s %s chunk "
                "(rank %d)",
                toString(op), done ? " finalized" : "", toString(kind),
                rank);
}

} // namespace validate

} // namespace astra
