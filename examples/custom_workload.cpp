/**
 * @file
 * Driving the simulator from a workload file (the Fig. 8 interface):
 * generate a hybrid-parallel Transformer description, write it in the
 * input-file format, parse it back, and train — exactly the flow an
 * external user follows to simulate their own DNN.
 *
 * Also demonstrates the DLRM-style all-to-all workload on the
 * hierarchical alltoall platform (Facebook Zion-inspired, Sec. III).
 *
 *   ./examples/custom_workload [workload-file]
 */

#include <cstdio>

#include "common/units.hh"
#include "workload/models.hh"
#include "workload/trainer.hh"

using namespace astra;

namespace
{

void
report(const char *what, WorkloadRun &run, Tick makespan)
{
    std::printf("%s: makespan %s, exposed comm %.1f%%\n", what,
                formatTicks(makespan).c_str(),
                100 * run.exposedRatio());
    const auto &layers = run.spec().layers;
    const auto &stats = run.layerStats();
    for (std::size_t i = 0; i < stats.size(); ++i) {
        std::printf("  %-20s compute %-10llu comm %-10llu exposed %llu\n",
                    layers[i].name.c_str(),
                    static_cast<unsigned long long>(stats[i].compute),
                    static_cast<unsigned long long>(
                        stats[i].commTotal()),
                    static_cast<unsigned long long>(stats[i].exposed));
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string path =
        argc > 1 ? argv[1] : "/tmp/astra_transformer_workload.txt";

    // 1. Generate a workload description and persist it in the
    //    Fig. 8 file format (or start from a hand-written file).
    if (argc <= 1) {
        TransformerConfig tc;
        tc.modelShards = 2; // vertical dimension of the 2x2x2 torus
        transformerWorkload(tc).writeFile(path);
        std::printf("wrote %s\n\n", path.c_str());
    }

    // 2. Parse it back — this is the simulator's external interface.
    WorkloadSpec spec = WorkloadSpec::parseFile(path);
    std::printf("parsed '%s': %s parallelism, %zu layers, "
                "%s compute, %s of communication per pass\n\n",
                path.c_str(), toString(spec.parallelism),
                spec.layers.size(),
                formatTicks(spec.totalCompute()).c_str(),
                formatBytes(spec.totalCommBytes()).c_str());

    // 3. Train it on the paper's 2x2x2 hybrid-parallel platform.
    {
        SimConfig cfg;
        cfg.torus(2, 2, 2);
        cfg.local.bandwidth = 8 * cfg.package.bandwidth;
        Cluster cluster(cfg);
        WorkloadRun run(cluster, spec, TrainerOptions{.numPasses = 2});
        const Tick makespan = run.run();
        report("transformer on 2x2x2 torus (hybrid)", run, makespan);
    }

    // 4. Same flow for a DLRM-style model on the alltoall platform —
    //    the all-to-all collective serves the distributed embedding
    //    tables (Sec. II).
    {
        SimConfig cfg;
        cfg.allToAll(2, 8, 7);
        cfg.local.bandwidth = 8 * cfg.package.bandwidth;
        Cluster cluster(cfg);
        WorkloadRun run(cluster, dlrmWorkload(),
                        TrainerOptions{.numPasses = 2});
        const Tick makespan = run.run();
        report("dlrm on 2x8 alltoall (hybrid)", run, makespan);
    }
    return 0;
}
