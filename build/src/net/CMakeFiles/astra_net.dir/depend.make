# Empty dependencies file for astra_net.
# This may be replaced when dependencies are built.
