/**
 * @file
 * Fig. 18 — ResNet-50 compute vs. exposed communication as the NPU's
 * compute power scales from 0.5x to 4x the baseline accelerator
 * (2x4x4 torus, data-parallel).
 *
 * Expected shape: at 0.5x, collectives hide completely behind compute
 * (<1% exposed); as compute speeds up the same communication is
 * increasingly exposed (the paper reports 63.9% at 4x) — the
 * diminishing-returns argument for compute-only scaling.
 */

#include "bench/support.hh"

#include "common/logging.hh"
#include "workload/models.hh"
#include "workload/trainer.hh"

using namespace astra;
using namespace astra::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv);
    banner("Fig. 18", "ResNet-50 exposed-comm ratio vs compute power");

    WorkloadSpec spec = resnet50Workload();
    const double scales[] = {0.5, 1.0, 2.0, 4.0};

    Table t;
    t.header({"compute_power", "makespan", "compute_ratio",
              "exposed_comm_ratio"});
    for (double scale : scales) {
        SimConfig cfg;
        cfg.torus(2, 4, 4);
        cfg.local.bandwidth = 8 * cfg.package.bandwidth;
        applyOverrides(args, cfg);
        Cluster cluster(cfg);
        WorkloadRun run(cluster, spec,
                        TrainerOptions{.numPasses = 2,
                                       .computeScale = scale});
        const Tick makespan = run.run();
        mergeReport(args, cluster);
        t.row()
            .cell(strprintf("%.1fx", scale))
            .cell(std::uint64_t(makespan))
            .cell(100 * run.computeRatio(), "%.1f%%")
            .cell(100 * run.exposedRatio(), "%.1f%%");
    }
    emitTable(args, "fig18_compute_power.csv", t);
    writeReport(args);
    return 0;
}
