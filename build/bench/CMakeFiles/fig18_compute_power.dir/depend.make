# Empty dependencies file for fig18_compute_power.
# This may be replaced when dependencies are built.
