#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/units.hh"
#include "workload/models.hh"
#include "workload/pipeline.hh"

namespace astra
{
namespace
{

TEST(Pipeline, P2PSendAndExpectMatch)
{
    SimConfig cfg;
    cfg.torus(1, 4, 1);
    Cluster cluster(cfg);
    Tick got = kTickInvalid;
    cluster.node(3).expectP2P(0, 42, [&] {
        got = cluster.eventQueue().now();
    });
    cluster.node(0).sendP2P(3, 64 * KiB, 42);
    cluster.run();
    EXPECT_NE(got, kTickInvalid);
    EXPECT_GT(got, 0u);
}

TEST(Pipeline, P2PEarlyArrivalIsBuffered)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    Cluster cluster(cfg);
    cluster.node(0).sendP2P(1, 1024, 7);
    cluster.run(); // arrives before anyone expects it
    bool fired = false;
    cluster.node(1).expectP2P(0, 7, [&] { fired = true; });
    EXPECT_TRUE(fired); // satisfied immediately from the buffer
}

TEST(Pipeline, P2PErrors)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    Cluster cluster(cfg);
    EXPECT_THROW(cluster.node(0).sendP2P(9, 100, 1), FatalError);
    EXPECT_THROW(cluster.node(0).sendP2P(1, 0, 1), FatalError);
    cluster.node(0).expectP2P(1, 5, [] {});
    EXPECT_THROW(cluster.node(0).expectP2P(1, 5, [] {}), FatalError);
}

TEST(Pipeline, TrainsResnetAcrossFourStages)
{
    SimConfig cfg;
    cfg.torus(2, 4, 1); // pipeline over the horizontal dimension
    Cluster cluster(cfg);
    PipelineRun run(cluster, resnet50Workload(),
                    PipelineOptions{.numPasses = 1, .microbatches = 4});
    const Tick t = run.run();
    EXPECT_GT(t, 0u);
    EXPECT_EQ(run.numStages(), 4);
    int layers = 0;
    for (int s = 0; s < 4; ++s) {
        EXPECT_GT(run.stage(s).compute, 0u);
        layers += run.stage(s).layers;
    }
    EXPECT_EQ(layers, 54);
    // Intermediate stages stall during fill/drain: bubbles exist.
    EXPECT_GT(run.bubbleRatio(), 0.0);
    // The data-parallel (local) groups all-reduced stage weights.
    EXPECT_GT(run.stage(0).commWg, 0u);
}

TEST(Pipeline, MoreMicrobatchesShrinkTheBubble)
{
    // The GPipe bubble fraction ~ (S-1)/(S-1+M): more microbatches,
    // smaller bubble.
    auto bubble = [](int m) {
        SimConfig cfg;
        cfg.torus(1, 4, 1);
        Cluster cluster(cfg);
        PipelineRun run(cluster,
                        syntheticWorkload(8, 200'000, 1 * MiB),
                        PipelineOptions{.numPasses = 1,
                                        .microbatches = m});
        run.run();
        return run.bubbleRatio();
    };
    const double b2 = bubble(2);
    const double b8 = bubble(8);
    EXPECT_GT(b2, b8);
    EXPECT_GT(b8, 0.0);
}

TEST(Pipeline, ExplicitPipelineDim)
{
    SimConfig cfg;
    cfg.torus(1, 2, 4);
    Cluster cluster(cfg);
    PipelineRun run(cluster, syntheticWorkload(8, 1000, 64 * KiB),
                    PipelineOptions{.numPasses = 1, .microbatches = 2,
                                    .pipelineDim = 2});
    run.run();
    EXPECT_EQ(run.numStages(), 4);
}

TEST(Pipeline, MultiplePassesAccumulate)
{
    auto time = [](int passes) {
        SimConfig cfg;
        cfg.torus(1, 2, 1);
        Cluster cluster(cfg);
        PipelineRun run(cluster, syntheticWorkload(4, 10'000, 256 * KiB),
                        PipelineOptions{.numPasses = passes,
                                        .microbatches = 2,
                                        .pipelineDim = 1});
        return run.run();
    };
    const Tick one = time(1);
    const Tick three = time(3);
    EXPECT_GT(three, 2 * one);
    EXPECT_LT(three, 4 * one);
}

TEST(Pipeline, RejectsBadConfigurations)
{
    SimConfig cfg;
    cfg.torus(2, 1, 1);
    cfg.localDim = 2; // only a local dimension: nothing to pipeline on
    Cluster cluster(cfg);
    WorkloadSpec spec = syntheticWorkload(4, 100, 64);
    EXPECT_THROW(PipelineRun(cluster, spec, PipelineOptions{}),
                 FatalError);
    SimConfig cfg2;
    cfg2.torus(1, 8, 1);
    Cluster cluster2(cfg2);
    WorkloadSpec tiny = syntheticWorkload(4, 100, 64); // 4 layers < 8
    EXPECT_THROW(PipelineRun(cluster2, tiny, PipelineOptions{}),
                 FatalError);
    EXPECT_THROW(PipelineRun(cluster2, syntheticWorkload(8, 1, 1),
                             PipelineOptions{.numPasses = 0}),
                 FatalError);
}

TEST(Pipeline, Deterministic)
{
    auto once = [] {
        SimConfig cfg;
        cfg.torus(2, 4, 1);
        Cluster cluster(cfg);
        PipelineRun run(cluster, syntheticWorkload(8, 5'000, 512 * KiB),
                        PipelineOptions{.numPasses = 2,
                                        .microbatches = 4});
        return run.run();
    };
    EXPECT_EQ(once(), once());
}

} // namespace
} // namespace astra
