/**
 * @file
 * Status/error reporting in the gem5 tradition.
 *
 * fatal()  — the simulation cannot continue because of a *user* error
 *            (bad configuration, malformed workload file). Exits with
 *            status 1 unless a test has installed a throwing handler.
 * panic()  — an internal simulator bug (broken invariant). Aborts.
 * warn()   — something is suspicious but simulation continues.
 * inform() — plain status output.
 */

#ifndef ASTRA_COMMON_LOGGING_HH
#define ASTRA_COMMON_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace astra
{

/** Exception thrown by fatal()/panic() when test mode is enabled. */
struct FatalError : std::runtime_error
{
    explicit FatalError(const std::string &what) : std::runtime_error(what)
    {}
};

/**
 * When true (set by tests), fatal() and panic() throw FatalError instead
 * of terminating the process, so error paths are unit-testable.
 */
void setLoggingThrowOnFatal(bool throw_on_fatal);

/** True if fatal()/panic() currently throw instead of exiting. */
bool loggingThrowsOnFatal();

/** Suppress inform()/warn() output (quiet benchmarks). */
void setLoggingQuiet(bool quiet);

/** User-caused unrecoverable error; printf-style message. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Simulator-bug unrecoverable error; printf-style message. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list args);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace astra

#endif // ASTRA_COMMON_LOGGING_HH
