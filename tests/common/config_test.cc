#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/config.hh"
#include "common/logging.hh"

namespace astra
{
namespace
{

TEST(Config, TableIvDefaults)
{
    SimConfig cfg;
    // Intra-package (Table IV).
    EXPECT_DOUBLE_EQ(cfg.local.bandwidth, 200.0);
    EXPECT_EQ(cfg.local.latency, 90u);
    EXPECT_DOUBLE_EQ(cfg.local.efficiency, 0.94);
    EXPECT_EQ(cfg.local.packetSize, 512u);
    EXPECT_EQ(cfg.local.rings, 2);
    // Inter-package.
    EXPECT_DOUBLE_EQ(cfg.package.bandwidth, 25.0);
    EXPECT_EQ(cfg.package.latency, 200u);
    EXPECT_EQ(cfg.package.packetSize, 256u);
    EXPECT_EQ(cfg.package.rings, 2);
    // NPU / NMU.
    EXPECT_EQ(cfg.flitWidthBits, 1024);
    EXPECT_EQ(cfg.routerLatency, 1u);
    EXPECT_EQ(cfg.vcsPerVnet, 50);
    EXPECT_EQ(cfg.buffersPerVc, 5000);
    EXPECT_EQ(cfg.endpointDelay, 10u);
}

TEST(Config, TorusAndAllToAllHelpers)
{
    SimConfig cfg;
    cfg.torus(4, 4, 4);
    EXPECT_EQ(cfg.topology, TopologyKind::Torus3D);
    EXPECT_EQ(cfg.numNpus(), 64);
    EXPECT_EQ(cfg.numPackages(), 16);

    cfg.allToAll(2, 8, 7);
    EXPECT_EQ(cfg.topology, TopologyKind::AllToAll);
    EXPECT_EQ(cfg.numNpus(), 16);
    EXPECT_EQ(cfg.globalSwitches, 7);
    EXPECT_EQ(cfg.verticalDim, 1);
}

TEST(Config, SetCoversTableIiiParameters)
{
    SimConfig cfg;
    cfg.set("dnn-name", "resnet50.txt");
    cfg.set("num-passes", "3");
    cfg.set("algorithm", "enhanced");
    cfg.set("topology", "AllToAll");
    cfg.set("scheduling-policy", "FIFO");
    cfg.set("global-switches", "7");
    cfg.set("endpoint-delay", "25");
    cfg.set("packet-routing", "hardware");
    cfg.set("injection-policy", "aggressive");
    cfg.set("preferred-set-splits", "8");
    cfg.set("local-link-efficiency", "0.9");
    cfg.set("package-link-efficiency", "0.8");
    cfg.set("flit-width", "512");
    cfg.set("local-packet-size", "1KB");
    cfg.set("package-packet-size", "128");
    cfg.set("vcs-per-vnet", "4");
    cfg.set("router-latency", "2");
    cfg.set("local-link-latency", "45");
    cfg.set("package-link-latency", "400");
    cfg.set("buffers-per-vc", "16");
    cfg.set("local-rings", "4");
    cfg.set("horizontal-rings", "3");

    EXPECT_EQ(cfg.dnnName, "resnet50.txt");
    EXPECT_EQ(cfg.numPasses, 3);
    EXPECT_EQ(cfg.algorithm, AlgorithmFlavor::Enhanced);
    EXPECT_EQ(cfg.topology, TopologyKind::AllToAll);
    EXPECT_EQ(cfg.schedulingPolicy, SchedulingPolicy::FIFO);
    EXPECT_EQ(cfg.globalSwitches, 7);
    EXPECT_EQ(cfg.endpointDelay, 25u);
    EXPECT_EQ(cfg.packetRouting, PacketRouting::Hardware);
    EXPECT_EQ(cfg.injectionPolicy, InjectionPolicy::Aggressive);
    EXPECT_EQ(cfg.preferredSetSplits, 8);
    EXPECT_DOUBLE_EQ(cfg.local.efficiency, 0.9);
    EXPECT_DOUBLE_EQ(cfg.package.efficiency, 0.8);
    EXPECT_EQ(cfg.flitWidthBits, 512);
    EXPECT_EQ(cfg.local.packetSize, 1024u);
    EXPECT_EQ(cfg.package.packetSize, 128u);
    EXPECT_EQ(cfg.vcsPerVnet, 4);
    EXPECT_EQ(cfg.routerLatency, 2u);
    EXPECT_EQ(cfg.local.latency, 45u);
    EXPECT_EQ(cfg.package.latency, 400u);
    EXPECT_EQ(cfg.buffersPerVc, 16);
    EXPECT_EQ(cfg.local.rings, 4);
    EXPECT_EQ(cfg.package.rings, 3);
}

TEST(Config, SetAcceptsUnderscoresAndCase)
{
    SimConfig cfg;
    cfg.set("NUM_PASSES", "5");
    EXPECT_EQ(cfg.numPasses, 5);
}

TEST(Config, SetRejectsUnknownKeysAndBadValues)
{
    SimConfig cfg;
    EXPECT_THROW(cfg.set("no-such-param", "1"), FatalError);
    EXPECT_THROW(cfg.set("num-passes", "abc"), FatalError);
    EXPECT_THROW(cfg.set("num-passes", "3x"), FatalError);
    EXPECT_THROW(cfg.set("algorithm", "fancy"), FatalError);
    EXPECT_THROW(cfg.set("topology", "hypercube"), FatalError);
    EXPECT_THROW(cfg.set("scheduling-policy", "random"), FatalError);
}

TEST(Config, LoadFileParsesKeyValueWithComments)
{
    const char *path = "/tmp/astra_config_test.cfg";
    {
        std::ofstream out(path);
        out << "# a comment\n"
            << "num-passes = 4\n"
            << "\n"
            << "algorithm=enhanced   # trailing comment\n"
            << "  local-dim = 2  \n";
    }
    SimConfig cfg;
    cfg.loadFile(path);
    EXPECT_EQ(cfg.numPasses, 4);
    EXPECT_EQ(cfg.algorithm, AlgorithmFlavor::Enhanced);
    EXPECT_EQ(cfg.localDim, 2);
    std::remove(path);
}

TEST(Config, LoadFileErrors)
{
    SimConfig cfg;
    EXPECT_THROW(cfg.loadFile("/nonexistent/file.cfg"), FatalError);
    const char *path = "/tmp/astra_config_bad.cfg";
    {
        std::ofstream out(path);
        out << "this is not key value\n";
    }
    EXPECT_THROW(cfg.loadFile(path), FatalError);
    std::remove(path);
}

TEST(Config, LoadFileHandlesCrlfAndMissingTrailingNewline)
{
    const char *path = "/tmp/astra_config_crlf.cfg";
    {
        std::ofstream out(path, std::ios::binary);
        out << "# dos file\r\n"
            << "num-passes = 4\r\n"
            << "\r\n"
            << "local-dim = 2"; // no trailing newline
    }
    SimConfig cfg;
    cfg.loadFile(path);
    EXPECT_EQ(cfg.numPasses, 4);
    EXPECT_EQ(cfg.localDim, 2);
    std::remove(path);
}

TEST(Config, LoadFileCollectsAllErrorsWithFileAndLine)
{
    const char *path = "/tmp/astra_config_multi_bad.cfg";
    {
        std::ofstream out(path);
        out << "num-passes = 4\n"      // fine
            << "not a key value\n"     // malformed line
            << "no-such-param = 1\n"   // unknown key
            << "flit-width = 4\n"      // out of range (min 8)
            << "local-dim = 2\n"       // fine
            << "local-dim = 3\n";      // duplicate key
    }
    SimConfig cfg;
    try {
        cfg.loadFile(path);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("4 error(s)"), std::string::npos) << what;
        EXPECT_NE(what.find(":2:"), std::string::npos) << what;
        EXPECT_NE(what.find(":3:"), std::string::npos) << what;
        EXPECT_NE(what.find(":4:"), std::string::npos) << what;
        EXPECT_NE(what.find(":6:"), std::string::npos) << what;
        EXPECT_NE(what.find("unknown parameter"), std::string::npos)
            << what;
        EXPECT_NE(what.find("duplicate"), std::string::npos) << what;
    }
    std::remove(path);
}

TEST(Config, TrySetReportsInsteadOfThrowing)
{
    SimConfig cfg;
    std::string err;
    EXPECT_TRUE(cfg.trySet("num-passes", "3", &err));
    EXPECT_EQ(cfg.numPasses, 3);
    EXPECT_FALSE(cfg.trySet("num-passes", "abc", &err));
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(cfg.numPasses, 3); // unchanged on failure
    EXPECT_FALSE(cfg.trySet("no-such-param", "1", &err));
    EXPECT_NE(err.find("unknown parameter"), std::string::npos);
}

TEST(Config, FaultKeysAreRepeatableAndValidated)
{
    SimConfig cfg;
    cfg.set("fault", "down link=0 from=0 to=10");
    cfg.set("fault", "straggle node=1 factor=2");
    ASSERT_EQ(cfg.faultRules.size(), 2u);
    cfg.set("fault-plan", "/tmp/some_plan.txt");
    EXPECT_EQ(cfg.faultPlanFile, "/tmp/some_plan.txt");
    cfg.set("fault-timeout", "500");
    EXPECT_EQ(cfg.faultTimeout, 500u);
    cfg.set("fault-max-retries", "0");
    EXPECT_EQ(cfg.faultMaxRetries, 0);
    EXPECT_THROW(cfg.set("fault-timeout", "0"), FatalError);
    EXPECT_THROW(cfg.set("fault-max-retries", "-1"), FatalError);
}

TEST(Config, RepeatedFaultKeyIsNotADuplicateInFiles)
{
    const char *path = "/tmp/astra_config_faults.cfg";
    {
        std::ofstream out(path);
        out << "fault = down link=0 from=0 to=10\n"
            << "fault = drop link=1 every=8\n";
    }
    SimConfig cfg;
    cfg.loadFile(path);
    EXPECT_EQ(cfg.faultRules.size(), 2u);
    std::remove(path);
}

TEST(Config, ApplyArgsConsumesMatchingFlags)
{
    SimConfig cfg;
    const char *argv[] = {"prog", "--num-passes=2", "--topology=torus",
                          "positional", "--unknown-flag=3"};
    auto leftover = cfg.applyArgs(5, const_cast<char **>(argv));
    EXPECT_EQ(cfg.numPasses, 2);
    EXPECT_EQ(cfg.topology, TopologyKind::Torus3D);
    EXPECT_EQ(leftover.size(), 2u);
    EXPECT_TRUE(leftover.count("positional"));
    EXPECT_TRUE(leftover.count("unknown-flag"));
}

TEST(Config, ValidateCatchesBadConfigurations)
{
    {
        SimConfig cfg;
        cfg.torus(1, 1, 1);
        EXPECT_THROW(cfg.validate(), FatalError); // < 2 NPUs
    }
    {
        SimConfig cfg;
        cfg.torus(2, 2, 2);
        cfg.local.bandwidth = 0;
        EXPECT_THROW(cfg.validate(), FatalError);
    }
    {
        SimConfig cfg;
        cfg.torus(2, 2, 2);
        cfg.local.efficiency = 1.5;
        EXPECT_THROW(cfg.validate(), FatalError);
    }
    {
        SimConfig cfg;
        cfg.allToAll(2, 4);
        cfg.verticalDim = 2; // inconsistent with AllToAll family
        EXPECT_THROW(cfg.validate(), FatalError);
    }
    {
        SimConfig cfg;
        cfg.torus(2, 2, 2);
        cfg.preferredSetSplits = 0;
        EXPECT_THROW(cfg.validate(), FatalError);
    }
    {
        SimConfig cfg;
        cfg.torus(2, 2, 2);
        cfg.lsqConcurrency = 0;
        EXPECT_THROW(cfg.validate(), FatalError);
    }
    {
        SimConfig cfg;
        cfg.torus(2, 2, 2);
        EXPECT_NO_THROW(cfg.validate());
    }
}

TEST(Config, ToStringMentionsKeyFacts)
{
    SimConfig cfg;
    cfg.torus(4, 4, 4);
    std::string s = cfg.toString();
    EXPECT_NE(s.find("Torus3D"), std::string::npos);
    EXPECT_NE(s.find("npus=64"), std::string::npos);
    EXPECT_NE(s.find("baseline"), std::string::npos);
}

} // namespace
} // namespace astra
