/**
 * @file
 * Network-layer invariant checkers (integrity layer) — the free
 * checker predicates plus the backends' drain-time validators. Member
 * functions live here, in their own translation unit, so the checking
 * logic stays out of the hot-path files while retaining access to the
 * backends' private ledgers.
 */

#include "net/validate.hh"

#include "common/check.hh"
#include "common/validate.hh"
#include "net/analytical.hh"
#include "net/garnet_lite.hh"

namespace astra
{

namespace validate
{

void
creditBounds(int link, int occupancy_flits, int capacity_flits)
{
    ASTRA_CHECK(occupancy_flits >= 0,
                "credit ledger underflow on link %d: occupancy=%d flits "
                "(a credit was released twice)",
                link, occupancy_flits);
    ASTRA_CHECK(occupancy_flits <= capacity_flits,
                "credit ledger overflow on link %d: occupancy=%d flits "
                "exceeds VC capacity=%d (a packet was granted without "
                "credits)",
                link, occupancy_flits, capacity_flits);
}

void
packetConservation(const char *what, std::uint64_t injected,
                   std::uint64_t retired, std::uint64_t dropped)
{
    ASTRA_CHECK(injected == retired + dropped,
                "%s conservation violated at drain: injected=%llu "
                "retired=%llu dropped=%llu (delta=%lld)",
                what, static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(retired),
                static_cast<unsigned long long>(dropped),
                static_cast<long long>(injected) -
                    static_cast<long long>(retired + dropped));
}

void
linkGrantNonOverlap(int link, Tick grant_start, Tick busy_until)
{
    ASTRA_CHECK(grant_start >= busy_until,
                "busy-interval overlap on link %d: grant at tick %llu "
                "while the previous transfer occupies the link until "
                "tick %llu",
                link, static_cast<unsigned long long>(grant_start),
                static_cast<unsigned long long>(busy_until));
}

void
drainQueueEmpty(const char *what, int link, std::size_t waiting)
{
    ASTRA_CHECK(waiting == 0,
                "%s drained with %zu transfer(s) still waiting on "
                "link %d",
                what, waiting, link);
}

} // namespace validate

void
GarnetLiteNetwork::registerCheckers(ValidatorRegistry &reg)
{
    reg.add("net.garnet_lite.drain", [this] { validateDrain(); });
}

void
GarnetLiteNetwork::validateDrain() const
{
    for (std::size_t l = 0; l < _links.size(); ++l) {
        const LinkState &ls = _links[l];
        validate::drainQueueEmpty("garnet-lite", int(l),
                                  ls.waiting.size());
        ASTRA_CHECK(ls.bufferOcc == 0,
                    "garnet-lite drained with %d flit(s) of credit "
                    "still held in link %zu's input buffer",
                    ls.bufferOcc, l);
    }
    validate::packetConservation("packet", _injectedPackets,
                                 _deliveredPackets, _droppedPackets);
    validate::packetConservation("flit", _injectedFlits, _retiredFlits,
                                 _droppedFlits);
    ASTRA_CHECK(_packetFree.size() == _packetArena.size(),
                "garnet-lite drained with %zu of %zu arena packet(s) "
                "not returned to the free list",
                _packetArena.size() - _packetFree.size(),
                _packetArena.size());
}

void
AnalyticalNetwork::registerCheckers(ValidatorRegistry &reg)
{
    reg.add("net.analytical.drain", [this] { validateDrain(); });
}

void
AnalyticalNetwork::validateDrain() const
{
    if (!_validate)
        return; // ledger was never maintained; nothing to cross-check
    ASTRA_CHECK(_busyUntil.size() == _freeAt.size(),
                "analytical busy-until ledger tracks %zu link(s) but "
                "the backend has %zu",
                _busyUntil.size(), _freeAt.size());
    for (std::size_t l = 0; l < _freeAt.size(); ++l) {
        ASTRA_CHECK(_busyUntil[l] == _freeAt[l],
                    "analytical busy-until ledger disagrees on link "
                    "%zu: ledger=%llu backend=%llu",
                    l, static_cast<unsigned long long>(_busyUntil[l]),
                    static_cast<unsigned long long>(_freeAt[l]));
    }
}

} // namespace astra
