// core -> collective (4 -> 3): legal.
#ifndef FIXTURE_GOOD_CORE_ENGINE_HH
#define FIXTURE_GOOD_CORE_ENGINE_HH
#include "collective/ring.hh"
inline int engineValue() { return ringValue() + 1; }
#endif
