/**
 * @file
 * End-to-end fault-injection runs (docs/faults.md): deterministic
 * packet loss with timeout/retry on garnet-lite, retries-exhausted
 * degradation, straggler slowdown, and the determinism guarantees
 * (repeat runs and serial-vs-parallel sweeps bit-for-bit identical).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/units.hh"
#include "core/cluster.hh"
#include "explore/sweep_runner.hh"
#include "fault/fault.hh"

namespace astra
{
namespace
{

SimConfig
baseConfig()
{
    SimConfig cfg;
    cfg.torus(1, 4, 1);
    cfg.digest = true;
    return cfg;
}

TEST(FaultRun, PacketLossRetriesToCompletionOnGarnetLite)
{
    // limit=3 drops with a 3-retry budget: no send can be dropped more
    // than three times, so every chunk eventually completes.
    SimConfig cfg = baseConfig();
    cfg.backend = NetworkBackend::GarnetLite;
    cfg.faultRules = {"drop link=0 every=5 limit=3"};
    cfg.faultTimeout = 100;

    Cluster cluster(cfg);
    const Tick t =
        cluster.runCollective(CollectiveKind::AllReduce, 64 * KiB);
    EXPECT_GT(t, 0u);
    EXPECT_EQ(cluster.outcome(), RunOutcome::Completed);
    EXPECT_TRUE(cluster.failures().empty());
    ASSERT_NE(cluster.faults(), nullptr);
    EXPECT_EQ(cluster.faults()->dropsInjected(), 3u);
    EXPECT_GT(cluster.network().lostMessages(), 0u);

    const StatGroup stats = cluster.aggregateStats();
    EXPECT_GE(stats.counter("fault.retries"), 1.0);
    EXPECT_DOUBLE_EQ(stats.counter("fault.retries_exhausted"), 0.0);
}

TEST(FaultRun, FaultedRunsAreBitForBitReproducible)
{
    auto once = [] {
        SimConfig cfg = baseConfig();
        cfg.backend = NetworkBackend::GarnetLite;
        cfg.faultRules = {"drop link=0 every=5 limit=3",
                          "degrade link=1 from=0 to=5000 factor=0.5",
                          "straggle node=2 factor=1.5"};
        cfg.faultTimeout = 100;
        Cluster cluster(cfg);
        const Tick t =
            cluster.runCollective(CollectiveKind::AllReduce, 64 * KiB);
        return std::make_pair(t, cluster.digest());
    };
    const auto a = once();
    const auto b = once();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
    EXPECT_NE(a.second, 0u);
}

TEST(FaultRun, ReplansAroundAForeverDownLinkAndCompletes)
{
    // One direction of the bidirectional package ring down forever:
    // pickChannel routes every stream onto the surviving reverse ring,
    // so the run completes without a single loss — slower than a
    // fault-free run, but never degraded.
    auto runWith = [](std::vector<std::string> rules) {
        SimConfig cfg = baseConfig();
        cfg.package.rings = 1; // 2 channels: links 0..3 fwd, 4..7 rev
        cfg.faultRules = std::move(rules);
        Cluster cluster(cfg);
        const Tick t =
            cluster.runCollective(CollectiveKind::AllReduce, 16 * KiB);
        EXPECT_EQ(cluster.outcome(), RunOutcome::Completed);
        EXPECT_EQ(cluster.network().lostMessages(), 0u);
        return t;
    };
    const Tick healthy = runWith({});
    const Tick replanned = runWith({"down link=0 from=0 to=end"});
    EXPECT_GT(replanned, healthy);
}

TEST(FaultRun, RetriesExhaustedEndsDegradedNotFatal)
{
    // Both directions of the package ring down for the whole run: the
    // re-planner has nowhere left to route, the affected sends exhaust
    // their retries, and the run ends Degraded with structured failure
    // records — no fatal anywhere. (A single down direction is NOT
    // enough: pickChannel re-plans onto the reverse ring and the run
    // completes — see PickChannelReplansAroundForeverDownLinks.)
    SimConfig cfg = baseConfig();
    cfg.package.rings = 1; // 2 channels: links 0..3 fwd, 4..7 rev
    cfg.faultRules = {"down link=0 from=0 to=end",
                      "down link=4 from=0 to=end"};
    cfg.faultTimeout = 10;
    cfg.faultMaxRetries = 2;

    Cluster cluster(cfg);
    cluster.runCollective(CollectiveKind::AllReduce, 16 * KiB);
    EXPECT_EQ(cluster.outcome(), RunOutcome::Degraded);
    ASSERT_FALSE(cluster.failures().empty());
    const FailureRecord &f = cluster.failures().front();
    EXPECT_TRUE(f.link == 0 || f.link == 4);
    EXPECT_EQ(f.retries, 2);
    EXPECT_GT(f.tick, 0u);
    EXPECT_FALSE(f.reason.empty());

    const StatGroup stats = cluster.aggregateStats();
    EXPECT_GE(stats.counter("fault.retries_exhausted"), 1.0);

    // The failure report renders in both shapes.
    const std::string text =
        formatFailureReport(cluster.outcome(), cluster.failures());
    EXPECT_NE(text.find("outcome: degraded"), std::string::npos);
    const MetricRegistry reg = cluster.exportMetrics();
    const std::string json = reg.toJson(failureReportJsonMembers(
        cluster.outcome(), cluster.failures()));
    EXPECT_NE(json.find("\"outcome\": \"degraded\""), std::string::npos);
    EXPECT_NE(json.find("\"failures\": ["), std::string::npos);
}

TEST(FaultRun, DegradedRunsAreReproducibleToo)
{
    auto once = [] {
        SimConfig cfg = baseConfig();
        cfg.package.rings = 1;
        cfg.faultRules = {"down link=0 from=0 to=end",
                          "down link=4 from=0 to=end"};
        cfg.faultTimeout = 10;
        cfg.faultMaxRetries = 2;
        Cluster cluster(cfg);
        cluster.runCollective(CollectiveKind::AllReduce, 16 * KiB);
        return std::make_pair(cluster.digest(),
                              cluster.failures().size());
    };
    const auto a = once();
    const auto b = once();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

TEST(FaultRun, StragglerSlowsTheRunDown)
{
    auto timeWith = [](double factor) {
        SimConfig cfg = baseConfig();
        if (factor > 1.0)
            cfg.faultRules = {
                strprintf("straggle node=1 factor=%.1f", factor)};
        Cluster cluster(cfg);
        return cluster.runCollective(CollectiveKind::AllReduce,
                                     256 * KiB);
    };
    const Tick normal = timeWith(1.0);
    const Tick straggled = timeWith(4.0);
    EXPECT_GT(straggled, normal);
}

TEST(FaultRun, EmptyPlanIsBitForBitIdenticalToNoPlan)
{
    // Retry-policy keys alone leave the plan empty: no FaultManager is
    // built and the digest must match a config without any fault keys.
    auto digestOf = [](bool with_keys) {
        SimConfig cfg = baseConfig();
        if (with_keys) {
            cfg.faultTimeout = 123;
            cfg.faultMaxRetries = 9;
        }
        Cluster cluster(cfg);
        cluster.runCollective(CollectiveKind::AllReduce, 64 * KiB);
        EXPECT_EQ(cluster.faults(), nullptr);
        return cluster.digest();
    };
    EXPECT_EQ(digestOf(true), digestOf(false));
}

// astra-lint: thread-confined(forEach joins; disjoint results[i] slots)
TEST(FaultRun, SweepOverFaultScenariosIsSerialParallelIdentical)
{
    // Four fault scenarios, each its own Cluster: a --jobs=4 sweep must
    // reproduce the serial sweep's digests and timings exactly.
    const std::vector<std::string> scenarios = {
        "drop link=0 every=7 limit=2",
        "degrade link=0 from=0 to=10000 factor=0.25",
        "straggle node=3 factor=2",
        "down link=1 from=100 to=2000",
    };
    auto sweep = [&](int jobs) {
        std::vector<std::pair<Tick, std::uint64_t>> results(
            scenarios.size());
        SweepRunner runner(jobs);
        runner.forEach(scenarios.size(), [&](std::size_t i) {
            SimConfig cfg = baseConfig();
            cfg.backend = NetworkBackend::GarnetLite;
            cfg.faultRules = {scenarios[i]};
            cfg.faultTimeout = 100;
            Cluster cluster(cfg);
            const Tick t = cluster.runCollective(
                CollectiveKind::AllReduce, 64 * KiB);
            results[i] = {t, cluster.digest()};
        });
        return results;
    };
    EXPECT_EQ(sweep(1), sweep(4));
}

} // namespace
} // namespace astra
