#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hh"
#include "common/logging.hh"

namespace astra
{
namespace
{

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pendingEvents(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunsEventsInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, PriorityBreaksTiesBeforeInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); }, /*priority=*/10);
    eq.schedule(5, [&] { order.push_back(2); }, /*priority=*/-1);
    eq.schedule(5, [&] { order.push_back(3); }, /*priority=*/0);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(5, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(50, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(10, [] {}), FatalError);
}

TEST(EventQueue, RejectedPastEventLeavesQueueIntact)
{
    // Regression: a past-dated schedule() must fail loudly *and*
    // atomically — no ghost entry may survive to corrupt ordering.
    EventQueue eq;
    eq.schedule(50, [] {});
    eq.run();
    eq.schedule(100, [] {});
    EXPECT_EQ(eq.pendingEvents(), 1u);
    EXPECT_THROW(eq.schedule(10, [] {}), FatalError);
    EXPECT_EQ(eq.pendingEvents(), 1u);
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, SchedulingAtNowIsAllowed)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(50, [&] { eq.schedule(eq.now(), [&] { ran = true; }); });
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, SmallCallbacksNeedNoHeapAllocation)
{
    // The scheduling hot path: a capture of a couple of pointers/ids
    // must live in EventCallback's inline buffer.
    int a = 0;
    int *p = &a;
    std::uint64_t id = 7;
    EventCallback small([p, id] { *p = int(id); });
    EXPECT_TRUE(small.storedInline());
    small();
    EXPECT_EQ(a, 7);

    // Oversized captures transparently fall back to the heap.
    struct Big
    {
        char bytes[96];
    } big{};
    EventCallback large([big, p] { *p = big.bytes[0]; });
    EXPECT_FALSE(large.storedInline());
    large();
    EXPECT_EQ(a, 0);
}

TEST(EventQueue, MassCancellationReclaimsSlotsEagerly)
{
    // Cancelling an event recycles its slab slot immediately; only an
    // 8-byte stale ref stays parked in a bucket or the far heap.
    EventQueue eq;
    std::vector<EventId> victims;
    for (int i = 0; i < 1000; ++i)
        victims.push_back(eq.schedule(Tick(10 + i), [] {}));
    int survivors = 0;
    eq.schedule(2000, [&] { ++survivors; });
    for (EventId id : victims)
        EXPECT_TRUE(eq.cancel(id));
    EXPECT_EQ(eq.pendingEvents(), 1u);
    // Cancelled entries are dead handles already...
    for (EventId id : victims)
        EXPECT_FALSE(eq.live(id));
    // ...and their slots get reused: scheduling 1000 fresh events must
    // not grow the slab past its existing high-water mark.
    const std::size_t high_water = eq.allocatedSlots();
    std::vector<EventId> fresh;
    for (int i = 0; i < 1000; ++i)
        fresh.push_back(eq.schedule(Tick(10 + i), [] {}));
    EXPECT_EQ(eq.allocatedSlots(), high_water);
    for (EventId id : fresh)
        EXPECT_TRUE(eq.cancel(id));
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(survivors, 1);
    EXPECT_EQ(eq.now(), 2000u);
}

TEST(EventQueue, FarHeapPurgeCompactsStaleRefs)
{
    // Events past the near window (now + kWindow) park in the far
    // heap; cancelling most of them triggers the bulk purge so stale
    // refs never dominate the heap.
    EventQueue eq;
    const Tick far = Tick(EventQueue::kWindow) + 100;
    std::vector<EventId> victims;
    for (int i = 0; i < 1000; ++i)
        victims.push_back(eq.schedule(far + Tick(i), [] {}));
    EXPECT_EQ(eq.farHeapSize(), 1000u);
    int survivors = 0;
    eq.schedule(far + 2000, [&] { ++survivors; });
    for (EventId id : victims)
        EXPECT_TRUE(eq.cancel(id));
    EXPECT_EQ(eq.pendingEvents(), 1u);
    EXPECT_LT(eq.staleFarRefs(), 1000u);
    EXPECT_LT(eq.farHeapSize(), 1001u);
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(survivors, 1);
    EXPECT_EQ(eq.now(), far + 2000);
}

TEST(EventQueue, CancellationKeepsOrderingDeterministic)
{
    // Interleave schedules and cancels and check the survivors still
    // fire in exact (tick, priority, FIFO) order.
    EventQueue eq;
    std::vector<int> order;
    std::vector<EventId> cancel_later;
    for (int i = 0; i < 200; ++i) {
        EventId id =
            eq.schedule(Tick(100 + i % 7), [&order, i] { order.push_back(i); });
        if (i % 3 == 0)
            cancel_later.push_back(id);
    }
    for (EventId id : cancel_later)
        eq.cancel(id);
    eq.run();
    std::vector<int> expect;
    for (int tick = 0; tick < 7; ++tick)
        for (int i = 0; i < 200; ++i)
            if (i % 7 == tick && i % 3 != 0)
                expect.push_back(i);
    EXPECT_EQ(order, expect);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.now(), 0u); // nothing executed
}

TEST(EventQueue, CancelTwiceReturnsFalse)
{
    EventQueue eq;
    EventId id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelAfterFireReturnsFalse)
{
    EventQueue eq;
    EventId id = eq.schedule(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, PendingCountTracksCancellation)
{
    EventQueue eq;
    EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pendingEvents(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pendingEvents(), 1u);
    eq.run();
    EXPECT_EQ(eq.pendingEvents(), 0u);
}

TEST(EventQueue, RunMaxEventsStopsEarly)
{
    EventQueue eq;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(Tick(i), [&] { ++count; });
    EXPECT_EQ(eq.run(4), 4u);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.pendingEvents(), 6u);
}

TEST(EventQueue, RunUntilIsInclusiveAndAdvancesTime)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(21, [&] { ++count; });
    EXPECT_EQ(eq.runUntil(20), 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.now(), 20u);
    // Time advances to the requested point even with no events there.
    eq.runUntil(1000);
    EXPECT_EQ(eq.now(), 1000u);
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 50)
            eq.scheduleAfter(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 50);
    EXPECT_EQ(eq.now(), 49u);
    EXPECT_EQ(eq.executedEvents(), 50u);
}

TEST(EventQueue, CancelFromInsideAnEvent)
{
    EventQueue eq;
    bool victim_ran = false;
    EventId victim = eq.schedule(20, [&] { victim_ran = true; });
    eq.schedule(10, [&] { EXPECT_TRUE(eq.cancel(victim)); });
    eq.run();
    EXPECT_FALSE(victim_ran);
}

} // namespace
} // namespace astra
