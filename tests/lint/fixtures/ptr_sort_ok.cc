// Negative fixture: comparing through the pointer at a stable id is
// the sanctioned fix; value comparators never fire.
#include <algorithm>
#include <vector>

struct Chunk
{
    int seq;
};

void
arrange(std::vector<Chunk *> &v, std::vector<int> &ids)
{
    std::sort(v.begin(), v.end(),
              [](const Chunk *a, const Chunk *b) { return a->seq < b->seq; });
    std::sort(ids.begin(), ids.end(), [](int a, int b) { return a < b; });
}
