/**
 * @file
 * Lightweight statistics package (counters, accumulators, histograms,
 * and the metric registry that renders them all as JSON).
 *
 * The system layer publishes per-phase queue and network delays through
 * these (the P0..P4 breakdown of Fig. 12b); the workload layer publishes
 * per-layer compute / communication / exposed-communication time; the
 * network backends publish per-link utilization and per-hop latency.
 *
 * Everything here is observer-only: recording a sample must never
 * schedule an event or otherwise perturb simulated time (see the
 * observer contract in DESIGN.md).
 */

#ifndef ASTRA_COMMON_STATS_HH
#define ASTRA_COMMON_STATS_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace astra
{

/**
 * NaN-free division for utilization math: a cluster that ran zero
 * ticks has 0.0 utilization, not NaN (and never Inf).
 */
inline double
safeDiv(double num, double den) noexcept
{
    return den > 0.0 ? num / den : 0.0;
}

/**
 * Mean/min/max/total accumulator over double samples.
 */
class Accumulator
{
  public:
    /** Record one sample. */
    void
    sample(double v) noexcept
    {
        _sum += v;
        _count += 1;
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }

    std::uint64_t count() const noexcept { return _count; }
    double total() const noexcept { return _sum; }

    double
    mean() const noexcept
    {
        return _count ? _sum / static_cast<double>(_count) : 0.0;
    }

    double minimum() const noexcept { return _count ? _min : 0.0; }
    double maximum() const noexcept { return _count ? _max : 0.0; }

    /** Merge another accumulator into this one. */
    void
    merge(const Accumulator &o) noexcept
    {
        _sum += o._sum;
        _count += o._count;
        if (o._count) {
            _min = std::min(_min, o._min);
            _max = std::max(_max, o._max);
        }
    }

  private:
    double _sum = 0;
    std::uint64_t _count = 0;
    double _min = 1e300;
    double _max = -1e300;
};

/**
 * Log2-bucketed histogram over non-negative samples (latencies in
 * ticks, sizes in bytes).
 *
 * Bucket 0 holds samples < 1; bucket i (i >= 1) holds [2^(i-1), 2^i).
 * Recording is a handful of integer operations — cheap enough for the
 * network hot path — and two histograms merge bucket-by-bucket exactly
 * (mergeable like Accumulator, so per-node/per-thread instances can be
 * combined without loss). Percentiles are estimated by linear
 * interpolation inside the bucket the rank falls into, clamped to the
 * exact observed min/max.
 */
class Histogram
{
  public:
    /** Bucket count: enough for any double up to 2^62. */
    static constexpr int kBuckets = 64;

    /** Record one sample (negative samples count as 0). */
    void
    record(double v) noexcept
    {
        if (v < 0)
            v = 0;
        _acc.sample(v);
        ++_buckets[std::size_t(bucketOf(v))];
    }

    /** Bucket index a value falls into. */
    static int
    bucketOf(double v) noexcept
    {
        if (v < 1.0)
            return 0;
        // For u >= 1, bit_width(u) == floor(log2(u)) + 1, which is the
        // index of the [2^(i-1), 2^i) bucket holding v.
        const std::uint64_t u = v >= 9.2e18
                                    ? ~std::uint64_t(0)
                                    : static_cast<std::uint64_t>(v);
        return std::min(static_cast<int>(std::bit_width(u)),
                        kBuckets - 1);
    }

    /** Inclusive lower bound of bucket @p i (0 for the underflow). */
    static double
    lowerBound(int i) noexcept
    {
        if (i <= 0)
            return 0.0;
        return std::ldexp(1.0, i - 1); // 2^(i-1)
    }

    /** Exclusive upper bound of bucket @p i. */
    static double
    upperBound(int i) noexcept
    {
        return std::ldexp(1.0, i); // 2^i
    }

    std::uint64_t count() const noexcept { return _acc.count(); }
    double total() const noexcept { return _acc.total(); }
    double mean() const noexcept { return _acc.mean(); }
    double minimum() const noexcept { return _acc.minimum(); }
    double maximum() const noexcept { return _acc.maximum(); }

    /** Samples recorded into bucket @p i. */
    std::uint64_t
    bucketCount(int i) const noexcept
    {
        return _buckets[std::size_t(i)];
    }

    /**
     * Estimated value at percentile @p p (0..100). Exact at p=0/100
     * (observed min/max); otherwise a linear estimate within the
     * bucket containing the rank, clamped to [min, max].
     */
    double percentile(double p) const;

    /** Merge another histogram into this one. */
    void
    merge(const Histogram &o) noexcept
    {
        _acc.merge(o._acc);
        for (int i = 0; i < kBuckets; ++i)
            _buckets[std::size_t(i)] += o._buckets[std::size_t(i)];
    }

  private:
    Accumulator _acc;
    std::array<std::uint64_t, kBuckets> _buckets{};
};

/**
 * A named bag of counters, accumulators and histograms. Hierarchical
 * names use dots ("sys3.queue.P2").
 */
class StatGroup
{
  public:
    /** Add @p delta to counter @p name (creates it at zero). */
    void
    inc(const std::string &name, double delta = 1.0)
    {
        _counters[name] += delta;
    }

    /** Set counter @p name to @p value (creates it). */
    void
    set(const std::string &name, double value)
    {
        _counters[name] = value;
    }

    /** Read counter @p name (zero if absent). */
    double
    counter(const std::string &name) const
    {
        auto it = _counters.find(name);
        return it == _counters.end() ? 0.0 : it->second;
    }

    /** Record a sample into accumulator @p name. */
    void
    sample(const std::string &name, double v)
    {
        _accs[name].sample(v);
    }

    /** Record a sample into histogram @p name. */
    void
    record(const std::string &name, double v)
    {
        _hists[name].record(v);
    }

    /** Read accumulator @p name (empty default if absent). */
    const Accumulator &
    accumulator(const std::string &name) const
    {
        static const Accumulator empty;
        auto it = _accs.find(name);
        return it == _accs.end() ? empty : it->second;
    }

    /** Mutable histogram @p name, created empty on first use. */
    Histogram &histogramRef(const std::string &name)
    {
        return _hists[name];
    }

    /** Read histogram @p name (empty default if absent). */
    const Histogram &
    histogram(const std::string &name) const
    {
        static const Histogram empty;
        auto it = _hists.find(name);
        return it == _hists.end() ? empty : it->second;
    }

    /** All counters, sorted by name. */
    const std::map<std::string, double> &counters() const
    {
        return _counters;
    }

    /** All accumulators, sorted by name. */
    const std::map<std::string, Accumulator> &accumulators() const
    {
        return _accs;
    }

    /** All histograms, sorted by name. */
    const std::map<std::string, Histogram> &histograms() const
    {
        return _hists;
    }

    /**
     * Merge another group into this one: counters add, accumulators
     * and histograms with the same name merge sample-exactly.
     */
    void merge(const StatGroup &o);

    /** Render this group as a JSON object. */
    std::string toJson(int indent = 0) const;

    /** Drop all recorded data. */
    void
    clear()
    {
        _counters.clear();
        _accs.clear();
        _hists.clear();
    }

  private:
    std::map<std::string, double> _counters;
    std::map<std::string, Accumulator> _accs;
    std::map<std::string, Histogram> _hists;
};

/**
 * The metric registry: one named StatGroup per subsystem ("sys",
 * "net", "workload", "cluster", ...), renderable as one JSON document
 * (the --report-json output).
 *
 * Registries merge group-by-group, so the per-candidate registries of
 * a design-space sweep can be combined into one aggregate, and the
 * per-node stat groups of a cluster can be folded into a single "sys"
 * group.
 */
class MetricRegistry
{
  public:
    /** The named group, created empty on first use. */
    StatGroup &group(const std::string &name) { return _groups[name]; }

    /** Read-only lookup; empty default if absent. */
    const StatGroup &
    group(const std::string &name) const
    {
        static const StatGroup empty;
        auto it = _groups.find(name);
        return it == _groups.end() ? empty : it->second;
    }

    /** All groups, sorted by name. */
    const std::map<std::string, StatGroup> &groups() const
    {
        return _groups;
    }

    /** Merge another registry into this one (same-name groups merge). */
    void merge(const MetricRegistry &o);

    /**
     * Serialize the whole tree as one JSON document:
     * {"schema": "astra-metrics-v1", "groups": {...}}. @p extra is
     * spliced verbatim between the schema member and "groups" — raw
     * pre-rendered object members, each line ending in ",\n" (e.g. the
     * fault layer's failureReportJsonMembers). Empty adds nothing and
     * keeps the document byte-identical to the historical output.
     */
    std::string toJson(const std::string &extra = std::string()) const;

    /** Write toJson(@p extra) to @p path; fatal() on I/O error. */
    void writeFile(const std::string &path,
                   const std::string &extra = std::string()) const;

    /** Drop all groups. */
    void clear() { _groups.clear(); }

  private:
    std::map<std::string, StatGroup> _groups;
};

} // namespace astra

#endif // ASTRA_COMMON_STATS_HH
