file(REMOVE_RECURSE
  "CMakeFiles/astra_collective.dir/algorithm_factory.cc.o"
  "CMakeFiles/astra_collective.dir/algorithm_factory.cc.o.d"
  "CMakeFiles/astra_collective.dir/chunk_state.cc.o"
  "CMakeFiles/astra_collective.dir/chunk_state.cc.o.d"
  "CMakeFiles/astra_collective.dir/direct_algorithms.cc.o"
  "CMakeFiles/astra_collective.dir/direct_algorithms.cc.o.d"
  "CMakeFiles/astra_collective.dir/phase_plan.cc.o"
  "CMakeFiles/astra_collective.dir/phase_plan.cc.o.d"
  "CMakeFiles/astra_collective.dir/ring_algorithms.cc.o"
  "CMakeFiles/astra_collective.dir/ring_algorithms.cc.o.d"
  "libastra_collective.a"
  "libastra_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
