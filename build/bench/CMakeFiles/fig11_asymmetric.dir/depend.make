# Empty dependencies file for fig11_asymmetric.
# This may be replaced when dependencies are built.
