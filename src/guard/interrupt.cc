#include "guard/interrupt.hh"

#include <atomic>
#include <csignal>

namespace astra
{
namespace guard
{

namespace
{

/**
 * The only state the signal handler touches. A lock-free atomic store
 * is async-signal-safe; everything else (the drain, the journal
 * flush, the report) happens later on the event-loop thread when it
 * polls interruptRequested() at a slice boundary.
 */
std::atomic<int> g_interruptFlag{0};

// astra-lint: signal-handler
extern "C" void
onInterruptSignal(int)
{
    g_interruptFlag.store(1, std::memory_order_relaxed);
}

} // namespace

void
installInterruptHandlers()
{
    std::signal(SIGINT, onInterruptSignal);
    std::signal(SIGTERM, onInterruptSignal);
}

bool
interruptRequested()
{
    return g_interruptFlag.load(std::memory_order_relaxed) != 0;
}

void
requestInterrupt()
{
    g_interruptFlag.store(1, std::memory_order_relaxed);
}

void
clearInterrupt()
{
    g_interruptFlag.store(0, std::memory_order_relaxed);
}

} // namespace guard
} // namespace astra
