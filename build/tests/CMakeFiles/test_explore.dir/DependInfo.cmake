
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/explore/design_space_test.cc" "tests/CMakeFiles/test_explore.dir/explore/design_space_test.cc.o" "gcc" "tests/CMakeFiles/test_explore.dir/explore/design_space_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/astra_test_main.dir/DependInfo.cmake"
  "/root/repo/build/src/explore/CMakeFiles/astra_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/astra_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/astra_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/astra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/astra_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/astra_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/astra_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/astra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
