// Source half of the sibling-pair fixture (see member_iter.hh).
#include "member_iter.hh"

int
Table::sum() const
{
    int total = 0;
    for (const auto &row : _rows) // FIRE(unordered-iter)
        total += row.second;
    return total;
}
