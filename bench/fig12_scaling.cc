/**
 * @file
 * Fig. 12 — scaling the Torus from 8 to 64 modules.
 *
 * All-reduce with the 4-phase (enhanced) algorithm on 2x4x1, 2x4x2,
 * 2x4x4 and 2x4x8; reports (a) total communication time and (b) the
 * average queue delay per pipeline stage P0..P4 (P0 = ready queue)
 * and the average network/execution time per phase P1..P4.
 *
 * Expected shape (Sec. V-D): time grows with size, but slowly from
 * 2x4x2 to 2x4x4 — the bottleneck ring size stays 4, the bottleneck
 * merely moves to the vertical dimension (visible as queue delay
 * shifting into P2); 2x4x8 adds a ring of 8 and jumps again.
 */

#include "bench/support.hh"

#include "common/logging.hh"

using namespace astra;
using namespace astra::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv);
    banner("Fig. 12", "Torus scaling 8 -> 64 modules, 4-phase "
                      "all-reduce: total time and P0..P4 breakdown");

    struct Shape
    {
        const char *name;
        int m, h, v;
    };
    const Shape shapes[] = {
        {"2x4x1", 2, 4, 1},
        {"2x4x2", 2, 4, 2},
        {"2x4x4", 2, 4, 4},
        {"2x4x8", 2, 4, 8},
    };
    const Bytes size = args.quick ? 2 * MiB : 16 * MiB;

    Table total;
    total.header({"shape", "modules", "total_cycles"});
    Table breakdown;
    breakdown.header({"shape", "queue.P0", "queue.P1", "queue.P2",
                      "queue.P3", "queue.P4", "net.P1", "net.P2",
                      "net.P3", "net.P4"});

    for (const Shape &s : shapes) {
        SimConfig cfg;
        cfg.torus(s.m, s.h, s.v);
        cfg.local.bandwidth = 8 * cfg.package.bandwidth;
        cfg.algorithm = AlgorithmFlavor::Enhanced;
        applyOverrides(args, cfg);

        Cluster cluster(cfg);
        const Tick t =
            cluster.runCollective(CollectiveKind::AllReduce, size);
        mergeReport(args, cluster);
        total.row()
            .cell(s.name)
            .cell(std::uint64_t(s.m * s.h * s.v))
            .cell(std::uint64_t(t));

        StatGroup stats = cluster.aggregateStats();
        auto &row = breakdown.row().cell(s.name);
        for (int p = 0; p <= 4; ++p)
            row.cell(stats.accumulator(strprintf("queue.P%d", p)).mean(),
                     "%.0f");
        for (int p = 1; p <= 4; ++p)
            row.cell(
                stats.accumulator(strprintf("network.P%d", p)).mean(),
                "%.0f");
    }
    std::printf("(a) total communication time, %s all-reduce\n",
                formatBytes(size).c_str());
    emitTable(args, "fig12a_total.csv", total);
    std::printf("(b) average queue/network delay per stage [cycles]\n");
    emitTable(args, "fig12b_breakdown.csv", breakdown);
    writeReport(args);
    return 0;
}
