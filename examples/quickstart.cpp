/**
 * @file
 * Quickstart: simulate one all-reduce on a hierarchical torus.
 *
 * Builds the paper's 4x4x4 asymmetric platform (4 NAMs per package at
 * 8x local bandwidth, 16 packages), runs a 4 MB all-reduce with both
 * the baseline (3-phase) and enhanced (4-phase) collective algorithms,
 * and prints the communication times plus the per-phase plan.
 *
 *   ./examples/quickstart [--key=value ...]
 */

#include <cstdio>

#include "collective/phase_plan.hh"
#include "common/units.hh"
#include "core/cluster.hh"

using namespace astra;

int
main(int argc, char **argv)
{
    // 1. Describe the platform (Table III parameters, Table IV
    //    defaults). Any parameter can be overridden on the command
    //    line as --key=value.
    SimConfig cfg;
    cfg.torus(4, 4, 4); // local x horizontal x vertical
    cfg.local.bandwidth = 8 * cfg.package.bandwidth; // MCM packaging
    cfg.applyArgs(argc, argv);
    cfg.validate();

    std::printf("platform:\n%s\n", cfg.toString().c_str());

    const Bytes payload = 4 * MiB;

    for (AlgorithmFlavor flavor :
         {AlgorithmFlavor::Baseline, AlgorithmFlavor::Enhanced}) {
        SimConfig run_cfg = cfg;
        run_cfg.algorithm = flavor;

        // 2. Build the simulated cluster: event queue + network
        //    backend + one system layer (Sys) per NPU.
        Cluster cluster(run_cfg);

        // Show the multi-phase plan this flavour produces.
        std::vector<int> dims;
        for (int d = 0; d < cluster.topology().numDims(); ++d)
            dims.push_back(d);
        PhasePlan plan = buildPhasePlan(cluster.topology(), dims,
                                        CollectiveKind::AllReduce,
                                        flavor);
        std::printf("%s plan: %s\n", toString(flavor),
                    toString(cluster.topology(), plan).c_str());

        // 3. Issue the same collective on every node and run events
        //    to completion.
        const Tick t =
            cluster.runCollective(CollectiveKind::AllReduce, payload);
        std::printf("%s %s all-reduce: %s\n\n",
                    formatBytes(payload).c_str(), toString(flavor),
                    formatTicks(t).c_str());
    }
    return 0;
}
