/**
 * @file
 * Run supervision (docs/robustness.md): deterministic budgets and the
 * progress watchdog that make every simulation interruptible and
 * bounded without touching the determinism contract.
 *
 * A RunBudget is a set of hard ceilings checked only at event-loop
 * *boundaries* (between fixed-size event slices), never inside an
 * event: the retired-event stream of a run that completes under budget
 * is bit-for-bit identical to an unbudgeted run, so every config
 * digest is unchanged. Exceeding a budget ends the run with the
 * first-class RunOutcome::BudgetExceeded — partial metrics, the digest
 * accumulated so far, and a structured FailureRecord are still
 * flushed, instead of the process running forever or OOM-ing.
 *
 * The watchdog extends deadlock detection to livelock: events keep
 * draining but no stream or chunk completes over a configurable event
 * window. Tripping it is the Deadlocked outcome with a "watchdog:"
 * failure record.
 */

#ifndef ASTRA_GUARD_GUARD_HH
#define ASTRA_GUARD_GUARD_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace astra
{

struct SimConfig;

namespace guard
{

/**
 * Hard ceilings for one run. Zero means unlimited; a default
 * constructed budget supervises nothing and the event loop behaves
 * exactly as before the guard layer existed.
 */
struct RunBudget
{
    /** Total events the run may execute (max-events). */
    std::uint64_t maxEvents = 0;

    /** Highest simulated tick the run may reach (max-sim-time). */
    Tick maxSimTime = 0;

    /** Event-slab/arena byte ceiling (max-slab-bytes). */
    std::uint64_t maxSlabBytes = 0;

    /**
     * Progress watchdog window (watchdog-window): events the loop may
     * drain without a single stream/chunk completion before the run is
     * declared livelocked.
     */
    std::uint64_t watchdogWindow = 0;

    /** The budget keys of @p cfg, collected into one value. */
    static RunBudget fromConfig(const SimConfig &cfg);

    /** Any ceiling set? False selects the unsupervised fast semantics. */
    bool
    active() const
    {
        return maxEvents != 0 || maxSimTime != 0 || maxSlabBytes != 0 ||
               watchdogWindow != 0;
    }
};

} // namespace guard

} // namespace astra

#endif // ASTRA_GUARD_GUARD_HH
