// astra-lint: hot-path (per-flit hop scheduling lives here; packets
// come from allocPacket()'s arena, not the heap — the three allows
// below mark the per-message setup and the arena's own growth)
#include "net/garnet_lite.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"
#include "common/logging.hh"
#include "fault/fault.hh"
#include "net/validate.hh"

namespace astra
{

GarnetLiteNetwork::GarnetLiteNetwork(EventQueue &eq, const Topology &topo,
                                     const SimConfig &cfg,
                                     bool one_to_one)
    : _eq(eq), _fabric(topo, cfg, one_to_one), _injection(cfg.injectionPolicy),
      _routerLatency(cfg.routerLatency),
      _flitBytes(std::max(1, cfg.flitWidthBits / 8)),
      _bufferCapacityFlits(cfg.vcsPerVnet * cfg.buffersPerVc),
      _protocolDelay(cfg.scaleoutProtocolDelay),
      _links(std::size_t(_fabric.numLinks())),
      _validate(validationAtLeast(ValidateLevel::kBasic)),
      _coalesce(cfg.netCoalesce),
      _metrics(cfg.netMetrics),
      _usage(std::size_t(_fabric.numLinks()))
{
    setEnergyParams(cfg.energy, cfg.flitWidthBits);

    const Topology &t = _fabric.topology();
    std::vector<std::string> names;
    std::vector<int> counts(std::size_t(t.numDims()), 0);
    for (int d = 0; d < t.numDims(); ++d)
        names.push_back(t.dim(d).name);
    for (LinkId l = 0; l < _fabric.numLinks(); ++l)
        ++counts[std::size_t(_fabric.link(l).dim)];
    setupUtilLanes(std::move(names), std::move(counts));
}

int
GarnetLiteNetwork::flitsOf(Bytes bytes) const
{
    const Bytes fb = static_cast<Bytes>(_flitBytes);
    return static_cast<int>(std::max<Bytes>(1, (bytes + fb - 1) / fb));
}

Tick
GarnetLiteNetwork::flitTxTime(LinkClass cls, int flits) const
{
    const LinkParams &p = _fabric.params(cls);
    const double bytes = static_cast<double>(flits) * _flitBytes;
    return static_cast<Tick>(
        std::ceil(bytes / (p.bandwidth * p.efficiency)));
}

void
GarnetLiteNetwork::send(Message msg)
{
    msg.sentAt = _eq.now();
    if (msg.src == msg.dst) {
        _eq.scheduleAfter(1, [this, msg] { deliver(msg); });
        return;
    }
    // Once per message, not per flit: the route is shared by every
    // packet of the message.
    auto path = std::make_shared< // astra-lint: allow(hot-path-alloc)
        std::vector<LinkId>>(_fabric.resolve(msg.src, msg.dst, msg.hint));
    const Bytes pkt_size =
        _fabric.linkParams((*path)[0]).packetSize;
    const int npackets = static_cast<int>(
        std::max<Bytes>(1, (msg.bytes + pkt_size - 1) / pkt_size));

    // Once per message.
    auto ms = std::make_shared<MessageState>( // astra-lint: allow(hot-path-alloc)
        MessageState{std::move(msg), npackets, npackets});

    Tick proto = 0;
    for (LinkId l : *path) {
        if (_fabric.link(l).cls == LinkClass::ScaleOut) {
            proto = _protocolDelay;
            break;
        }
    }
    if (proto > 0) {
        _eq.scheduleAfter(proto, [this, ms, path] { inject(ms, path); });
        return;
    }
    inject(ms, path);
}

void
GarnetLiteNetwork::inject(const MessageRef &ms,
                          const std::shared_ptr<std::vector<LinkId>> &path)
{
    if (_injection == InjectionPolicy::Aggressive) {
        while (ms->packetsUninjected > 0)
            injectNext(ms, path);
    } else {
        injectNext(ms, path);
    }
}

void
GarnetLiteNetwork::injectNext(
    const MessageRef &ms, const std::shared_ptr<std::vector<LinkId>> &path)
{
    if (ms->packetsUninjected <= 0)
        return;
    const Bytes pkt_size = _fabric.linkParams((*path)[0]).packetSize;
    const int idx = ms->packetsLeft - ms->packetsUninjected;
    --ms->packetsUninjected;

    // The final packet carries the remainder.
    Bytes remaining = ms->msg.bytes - Bytes(idx) * pkt_size;
    Bytes bytes = std::min(pkt_size, remaining);
    if (ms->msg.bytes == 0)
        bytes = 0; // zero-byte control message: one minimal packet

    Packet *pkt = allocPacket();
    pkt->parent = ms;
    pkt->path = path;
    pkt->hop = 0;
    pkt->bytes = bytes;
    pkt->flits = flitsOf(bytes);
    pkt->waitSince = _eq.now();
    pkt->creditStallSince = kTickInvalid;
    ++_injectedPackets;
    _injectedFlits += std::uint64_t(pkt->flits);

    _links[std::size_t((*path)[0])].waiting.push_back(pkt);
    pump((*path)[0]);
}

void
GarnetLiteNetwork::schedulePump(LinkId l, Tick when)
{
    LinkState &ls = _links[std::size_t(l)];
    when = std::max(when, _eq.now());
    if (ls.pumpAt <= when)
        return; // an earlier (or equal) pump is already on the way
    ls.pumpAt = when;
    _eq.schedule(when, [this, l] { pump(l); });
}

void
GarnetLiteNetwork::pump(LinkId l)
{
    LinkState &ls = _links[std::size_t(l)];
    if (ls.pumpAt <= _eq.now())
        ls.pumpAt = kTickInvalid;
    const LinkDesc &desc = _fabric.link(l);
    const LinkParams &p = _fabric.params(desc.cls);

    while (!ls.waiting.empty()) {
        PacketRef pkt = ls.waiting.front();

        // Credit check: room in the downstream input buffer?
        if (ls.bufferOcc + pkt->flits > _bufferCapacityFlits) {
            if (_metrics && pkt->creditStallSince == kTickInvalid)
                pkt->creditStallSince = _eq.now();
            return; // retried when credits are released
        }

        const Tick now = _eq.now();
        // `start` is when the wire begins serializing this packet.
        // Normally the pump runs at that instant (start == now); under
        // net-coalesce a busy link batch-grants future wire slots from
        // the current event instead of waking once per packet, but
        // only where that is ordering-equivalent: source-link grants
        // (no upstream credits to release at a specific time, no
        // injection-pacing side effect) on a fault-free run (fault
        // windows are sampled at grant time). Every per-packet time —
        // serialization start, arrival, queue-wait — still uses
        // `start`, so deliveries are bit-identical to the unbatched
        // schedule; only the pump wake-ups themselves are folded.
        Tick start = now;
        if (ls.freeAt > now) {
            const bool batchable =
                _coalesce && !faults() && pkt->hop == 0 &&
                (_injection == InjectionPolicy::Aggressive ||
                 pkt->parent->packetsUninjected <= 0);
            if (!batchable) {
                schedulePump(l, ls.freeAt);
                return;
            }
            start = ls.freeAt;
        }

        Tick tx = flitTxTime(desc.cls, pkt->flits);
        bool dropped = false;
        if (FaultManager *fm = faults()) {
            const double factor = fm->bandwidthFactor(int(l), now);
            if (factor <= 0.0) {
                const Tick resume = fm->downUntil(int(l), now);
                if (resume != FaultPlan::kEnd) {
                    // Down window: everything queued here waits it
                    // out; upstream backpressure follows from the
                    // credits they keep holding.
                    schedulePump(l, resume);
                    return;
                }
                // Down for the rest of the run: the queue can never
                // drain; every waiter is a loss.
                while (!ls.waiting.empty()) {
                    PacketRef dead = ls.waiting.front();
                    ls.waiting.pop_front();
                    dropPacket(dead, l, now);
                }
                return;
            }
            if (factor < 1.0)
                tx = static_cast<Tick>(
                    std::ceil(static_cast<double>(tx) / factor));
            // Counted transient loss: the packet still serializes on
            // the wire (freeAt advances, energy is spent) but never
            // enters the downstream buffer.
            dropped = fm->shouldDropPacket(int(l), now);
        }

        // Grant.
        ls.waiting.pop_front();
        ls.freeAt = start + tx;
        if (!dropped) {
            ls.bufferOcc += pkt->flits;
            if (_validate)
                validate::creditBounds(int(l), ls.bufferOcc,
                                       _bufferCapacityFlits);
            _peakOccupancy = std::max(_peakOccupancy, ls.bufferOcc);
        }
        accountHop(pkt->bytes, desc.cls);
        if (_metrics) {
            LinkUsage &u = _usage[std::size_t(l)];
            u.busy += tx;
            u.bytes += pkt->bytes;
            ++u.grants;
            u.queueWait += start - pkt->waitSince;
            if (pkt->creditStallSince != kTickInvalid) {
                _creditStall += start - pkt->creditStallSince;
                pkt->creditStallSince = kTickInvalid;
            }
            if (!dropped)
                _occHist.record(double(ls.bufferOcc));
            addDimBusy(desc.dim, tx);
            maybeEmitUtilCounters(now);
        }

        if (dropped) {
            dropPacket(pkt, l, now);
            continue;
        }

        if (pkt->hop > 0) {
            // Leaving the previous link's downstream buffer: release
            // those credits and let its waiters retry.
            const LinkId up = (*pkt->path)[pkt->hop - 1];
            _links[std::size_t(up)].bufferOcc -= pkt->flits;
            if (_validate)
                validate::creditBounds(int(up),
                                       _links[std::size_t(up)].bufferOcc,
                                       _bufferCapacityFlits);
            schedulePump(up, now);
        } else if (_injection == InjectionPolicy::Normal) {
            // Paced injection: next packet enters once this one has
            // been granted the first link.
            injectNext(pkt->parent, pkt->path);
        }

        const Tick arrival = start + tx + p.latency + _routerLatency;
        _eq.schedule(arrival, [this, pkt, l] { arrive(pkt, l); });
    }
}

void
GarnetLiteNetwork::arrive(PacketRef pkt, LinkId l)
{
    const Tick now = _eq.now();
    if (_metrics)
        _hopLatency.record(static_cast<double>(now - pkt->waitSince));
    ++pkt->hop;
    if (pkt->hop == pkt->path->size()) {
        // Ejected at the destination NPU: credits return immediately.
        _links[std::size_t(l)].bufferOcc -= pkt->flits;
        if (_validate)
            validate::creditBounds(int(l),
                                   _links[std::size_t(l)].bufferOcc,
                                   _bufferCapacityFlits);
        schedulePump(l, now);
        ++_deliveredPackets;
        _retiredFlits += std::uint64_t(pkt->flits);
        MessageRef parent = pkt->parent;
        recyclePacket(pkt);
        if (--parent->packetsLeft == 0) {
            // A message with any dropped packet is incomplete at the
            // destination no matter how many packets made it.
            if (parent->lost)
                notifyLoss(parent->msg, parent->lostLink);
            else
                deliver(parent->msg);
        }
        return;
    }
    const LinkId next = (*pkt->path)[pkt->hop];
    pkt->waitSince = now;
    pkt->creditStallSince = kTickInvalid;
    _links[std::size_t(next)].waiting.push_back(pkt);
    pump(next);
}

void
GarnetLiteNetwork::dropPacket(PacketRef pkt, LinkId l, Tick now)
{
    ++_droppedPackets;
    _droppedFlits += std::uint64_t(pkt->flits);
    if (pkt->hop > 0) {
        // The packet dies holding the previous link's downstream
        // buffer space: reclaim those credits and wake its waiters.
        const LinkId up = (*pkt->path)[pkt->hop - 1];
        _links[std::size_t(up)].bufferOcc -= pkt->flits;
        if (_validate)
            validate::creditBounds(int(up),
                                   _links[std::size_t(up)].bufferOcc,
                                   _bufferCapacityFlits);
        schedulePump(up, now);
    } else if (_injection == InjectionPolicy::Normal) {
        // Dropped at its source link: keep the injection pipeline
        // moving exactly as a granted packet would have.
        injectNext(pkt->parent, pkt->path);
    }
    MessageRef parent = pkt->parent;
    recyclePacket(pkt);
    if (!parent->lost) {
        parent->lost = true;
        parent->lostLink = int(l);
    }
    if (--parent->packetsLeft == 0)
        notifyLoss(parent->msg, parent->lostLink);
}

auto
GarnetLiteNetwork::allocPacket() -> Packet *
{
    if (_packetFree.empty()) {
        // Arena growth: amortized over every later reuse of the slot.
        _packetArena.push_back(std::make_unique<Packet>()); // astra-lint: allow(hot-path-alloc)
        return _packetArena.back().get();
    }
    Packet *pkt = _packetFree.back();
    _packetFree.pop_back();
    return pkt;
}

void
GarnetLiteNetwork::recyclePacket(Packet *pkt)
{
    // Release the message/path references now so recycling a packet
    // cannot pin a completed message's payload in memory.
    pkt->parent.reset();
    pkt->path.reset();
    _packetFree.push_back(pkt);
}

void
GarnetLiteNetwork::exportStats(StatGroup &g, Tick elapsed) const
{
    NetworkApi::exportStats(g);
    g.set("backend", 1); // 0 = analytical, 1 = garnet-lite
    g.set("elapsed.ticks", double(elapsed));
    exportLinkUsage(_fabric, _usage, elapsed, g);
    g.set("packets.injected", double(_injectedPackets));
    g.set("packets.retired", double(_deliveredPackets));
    g.set("flits.injected", double(_injectedFlits));
    g.set("flits.retired", double(_retiredFlits));
    if (_droppedPackets) {
        g.set("packets.dropped", double(_droppedPackets));
        g.set("flits.dropped", double(_droppedFlits));
    }
    g.set("credit.stall_ticks", double(_creditStall));
    g.set("buffer.peak_occupancy", double(_peakOccupancy));
    g.histogramRef("hop.latency").merge(_hopLatency);
    g.histogramRef("vc.occupancy").merge(_occHist);
}

} // namespace astra
