// Positive fixture for parse-error: the string literal below is never
// terminated, so the lexer reports instead of guessing.
static const char *kBroken = "no closing quote; // FIRE(parse-error)
