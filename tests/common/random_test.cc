#include <gtest/gtest.h>

#include "common/random.hh"

namespace astra
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiverge)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() != b.next())
            ++differing;
    }
    EXPECT_GT(differing, 90);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

} // namespace
} // namespace astra
