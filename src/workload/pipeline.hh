/**
 * @file
 * Pipelined parallelism (the third strategy of Sec. III-A).
 *
 * The paper lists pipelined parallelism among the partitioning
 * strategies but evaluates only data/model/hybrid; this module
 * implements it as the natural extension. GPipe-style schedule:
 *
 *  - the layers are partitioned contiguously into S stages, S being
 *    the size of one topology dimension (the *pipeline dimension*);
 *    a node's stage is its coordinate along that dimension;
 *  - the per-NPU minibatch is split into M microbatches; stage s
 *    forwards microbatch m as soon as it has received its input
 *    activations from stage s-1 (point-to-point transfer through the
 *    fabric), then back-propagates in reverse order with gradients
 *    flowing stage s+1 -> s;
 *  - after the flush, each stage all-reduces its weight gradients
 *    across the remaining (data-parallel) dimensions and the next
 *    pass begins.
 *
 * The run reports, per stage, compute time, point-to-point exchange
 * wait ("bubble" time) and weight-gradient collective latency — the
 * pipeline-bubble ratio is the headline metric.
 */

#ifndef ASTRA_WORKLOAD_PIPELINE_HH
#define ASTRA_WORKLOAD_PIPELINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/cluster.hh"
#include "workload/layer.hh"

namespace astra
{

/** Options of a pipeline-parallel training run. */
struct PipelineOptions
{
    int numPasses = 1;
    int microbatches = 4;
    /**
     * Topology dimension used as the pipeline axis; -1 picks the
     * largest inter-package dimension.
     */
    int pipelineDim = -1;
    double computeScale = 1.0;
    /**
     * Bytes of activations crossing each stage boundary per full
     * minibatch; 0 derives them from the boundary layer's forward
     * communication size (falling back to 1 MiB).
     */
    Bytes activationBytes = 0;
};

/** Per-stage results (identical across a stage's data-parallel group). */
struct StageStats
{
    Tick compute = 0;  //!< busy cycles
    Tick bubble = 0;   //!< stalled waiting for activations/gradients
    Tick commWg = 0;   //!< weight-gradient all-reduce latency
    int layers = 0;    //!< layers assigned to the stage
};

/**
 * One node's pipeline schedule execution.
 */
class PipelineNode
{
  public:
    PipelineNode(Sys &sys, const WorkloadSpec &spec,
                 const PipelineOptions &opts,
                 std::function<void()> on_finish);

    void start();

    int stage() const { return _stage; }
    int numStages() const { return _numStages; }
    bool finished() const { return _finished; }
    Tick totalTime() const { return _finishedAt - _startedAt; }
    const StageStats &stats() const { return _stats; }

  private:
    void beginPass();
    void forwardMicrobatch(int m);
    void backwardMicrobatch(int m);
    void reduceWeights();
    void finishPass();

    /** Stall until (src, tag) arrives, charging bubble time. */
    void await(NodeId src, std::uint64_t tag, std::function<void()> cont);

    /** Busy the node for @p cycles. */
    void compute(Tick cycles, EventCallback cont);

    /** Transfer tag for (pass, microbatch, direction, boundary). */
    std::uint64_t tagFor(int m, bool backward, int boundary) const;

    Tick stageCompute(CommSlot slot) const;
    Bytes stageWgBytes() const;
    Bytes microActivationBytes() const;

    Sys &_sys;
    const WorkloadSpec &_spec;
    PipelineOptions _opts;
    std::function<void()> _onFinish;

    int _pipeDim = 0;
    int _numStages = 1;
    int _stage = 0;
    NodeId _prev = kNodeInvalid; //!< node holding stage - 1
    NodeId _next = kNodeInvalid; //!< node holding stage + 1
    std::vector<int> _dataDims;  //!< non-pipeline dimensions
    std::size_t _layerLo = 0;    //!< first layer of this stage
    std::size_t _layerHi = 0;    //!< one past the last layer

    int _pass = 0;
    bool _finished = false;
    Tick _startedAt = 0;
    Tick _finishedAt = 0;
    StageStats _stats;
};

/**
 * Cluster-wide pipeline-parallel training run.
 */
class PipelineRun
{
  public:
    PipelineRun(Cluster &cluster, WorkloadSpec spec,
                PipelineOptions opts);

    /** Run to completion; @return the makespan. */
    Tick run();

    int numStages() const { return _nodes.front()->numStages(); }
    Tick makespan() const { return _makespan; }

    /** Stage s's stats (taken from one representative node). */
    const StageStats &stage(int s) const;

    /** Fraction of the makespan the average stage spends stalled. */
    double bubbleRatio() const;

  private:
    Cluster &_cluster;
    WorkloadSpec _spec;
    std::vector<std::unique_ptr<PipelineNode>> _nodes;
    int _unfinished = 0;
    Tick _makespan = 0;
};

} // namespace astra

#endif // ASTRA_WORKLOAD_PIPELINE_HH
