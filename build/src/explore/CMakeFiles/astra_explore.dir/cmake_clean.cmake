file(REMOVE_RECURSE
  "CMakeFiles/astra_explore.dir/design_space.cc.o"
  "CMakeFiles/astra_explore.dir/design_space.cc.o.d"
  "libastra_explore.a"
  "libastra_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
