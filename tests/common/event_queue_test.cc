#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hh"
#include "common/logging.hh"

namespace astra
{
namespace
{

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pendingEvents(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunsEventsInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, PriorityBreaksTiesBeforeInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); }, /*priority=*/10);
    eq.schedule(5, [&] { order.push_back(2); }, /*priority=*/-1);
    eq.schedule(5, [&] { order.push_back(3); }, /*priority=*/0);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(5, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(50, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(10, [] {}), FatalError);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.now(), 0u); // nothing executed
}

TEST(EventQueue, CancelTwiceReturnsFalse)
{
    EventQueue eq;
    EventId id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelAfterFireReturnsFalse)
{
    EventQueue eq;
    EventId id = eq.schedule(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, PendingCountTracksCancellation)
{
    EventQueue eq;
    EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pendingEvents(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pendingEvents(), 1u);
    eq.run();
    EXPECT_EQ(eq.pendingEvents(), 0u);
}

TEST(EventQueue, RunMaxEventsStopsEarly)
{
    EventQueue eq;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(Tick(i), [&] { ++count; });
    EXPECT_EQ(eq.run(4), 4u);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.pendingEvents(), 6u);
}

TEST(EventQueue, RunUntilIsInclusiveAndAdvancesTime)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(21, [&] { ++count; });
    EXPECT_EQ(eq.runUntil(20), 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.now(), 20u);
    // Time advances to the requested point even with no events there.
    eq.runUntil(1000);
    EXPECT_EQ(eq.now(), 1000u);
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 50)
            eq.scheduleAfter(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 50);
    EXPECT_EQ(eq.now(), 49u);
    EXPECT_EQ(eq.executedEvents(), 50u);
}

TEST(EventQueue, CancelFromInsideAnEvent)
{
    EventQueue eq;
    bool victim_ran = false;
    EventId victim = eq.schedule(20, [&] { victim_ran = true; });
    eq.schedule(10, [&] { EXPECT_TRUE(eq.cancel(victim)); });
    eq.run();
    EXPECT_FALSE(victim_ran);
}

} // namespace
} // namespace astra
