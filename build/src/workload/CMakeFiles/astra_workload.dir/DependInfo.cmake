
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/layer.cc" "src/workload/CMakeFiles/astra_workload.dir/layer.cc.o" "gcc" "src/workload/CMakeFiles/astra_workload.dir/layer.cc.o.d"
  "/root/repo/src/workload/models.cc" "src/workload/CMakeFiles/astra_workload.dir/models.cc.o" "gcc" "src/workload/CMakeFiles/astra_workload.dir/models.cc.o.d"
  "/root/repo/src/workload/pipeline.cc" "src/workload/CMakeFiles/astra_workload.dir/pipeline.cc.o" "gcc" "src/workload/CMakeFiles/astra_workload.dir/pipeline.cc.o.d"
  "/root/repo/src/workload/trainer.cc" "src/workload/CMakeFiles/astra_workload.dir/trainer.cc.o" "gcc" "src/workload/CMakeFiles/astra_workload.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/astra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/astra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/astra_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/astra_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/astra_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/astra_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
