/**
 * @file
 * Cross-TU symbol index of astra-lint (docs/static-analysis.md).
 *
 * A single-pass recursive-descent recognizer over the lexer's token
 * stream — not a C++ parser — that recovers just enough declaration
 * structure for the concurrency rules:
 *
 *   - namespace-scope and static-storage variables with the traits
 *     the shared-state rule decides on (const/constexpr, std::atomic,
 *     thread_local, synchronization primitive),
 *   - class data members (so `guarded-by(_mutex)` annotations on
 *     members can name a mutex declared in the same class),
 *   - every declared mutex name, unioned across all analyzed TUs
 *     (the resolution domain of `guarded-by(<mutex>)`),
 *   - function/lambda extents with their `thread-confined` marks, so
 *     the thread-capture rule can tell whether a `[&]` lambda lives
 *     inside a scope that provably joins before returning.
 *
 * The recognizer tracks brace scopes (namespace / class / function /
 * block), scans statements to the `;` or `{` at paren depth zero with
 * template-angle tracking, and skips tokens inside preprocessing
 * directive spans (lexer.hh directiveSpans). It is deliberately
 * heuristic: unrecognized statements are ignored, never guessed at —
 * a miss weakens a rule, it cannot fabricate a finding on valid code.
 */

#ifndef ASTRA_LINT_SYMBOLS_HH
#define ASTRA_LINT_SYMBOLS_HH

#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hh"

namespace astra::lint
{

/** Where a variable declaration sits. */
enum class VarScope
{
    kNamespace,   //!< namespace scope (incl. anonymous namespaces)
    kClassStatic, //!< static data member
    kClassMember, //!< non-static data member
    kLocalStatic, //!< function-local static
};

/** One recognized variable declaration. */
struct VarDecl
{
    std::string file; //!< repo-relative path of the declaring TU
    int line = 0;
    std::string name;
    VarScope scope = VarScope::kNamespace;

    bool isConst = false;       //!< const / constexpr / constinit
    bool isAtomic = false;      //!< std::atomic<T> / atomic_*
    bool isThreadLocal = false; //!< thread_local storage
    bool isSync = false;        //!< mutex/condition_variable/once_flag

    /** guarded-by(<mutex>) annotation bound to the declaration. */
    std::string guardedBy;
    /** thread-confined(<reason>) annotation bound to the declaration. */
    bool threadConfined = false;
};

/** One function (or lambda) body extent. */
struct FunctionExtent
{
    std::string file;
    int firstLine = 0; //!< line of the statement head
    int lastLine = 0;  //!< line of the closing brace
    /** Head carries a thread-confined(<reason>) annotation. */
    bool threadConfined = false;
    /** Head carries a signal-handler annotation (signal-unsafe rule). */
    bool signalHandler = false;

    /**
     * Declarator identifier — the ident right before the head's first
     * statement-level `(` (`outcome` for `RunOutcome C::outcome()`).
     * Empty when the recognizer could not name the function. Feeds
     * the name-based call graph of the flow rules (flow_rules.hh).
     */
    std::string name;

    /**
     * First head identifier that is not a specifier — `RunOutcome`
     * for `RunOutcome Cluster::outcome() const`. Heuristic (a
     * qualified `std::vector<..>` return reads as `std`); only its
     * membership in SymbolIndex::mustUseTypes is ever consulted.
     */
    std::string returnType;

    /**
     * Body delimiters as indices into the owning LexedFile::tokens:
     * bodyBegin is the opening `{`, bodyEnd its matching `}`. Valid
     * only when hasBody — the CFG builder (cfg.hh) parses this range.
     */
    std::size_t bodyBegin = 0;
    std::size_t bodyEnd = 0;
    bool hasBody = false;
};

/** The cross-TU index the concurrency rules run against. */
struct SymbolIndex
{
    std::vector<VarDecl> vars;
    std::vector<FunctionExtent> functions;

    /**
     * Every mutex-typed variable name seen in any analyzed TU
     * (std::mutex, shared_mutex, recursive_mutex, ... — members and
     * globals alike). `guarded-by(<name>)` resolves against this set.
     */
    std::set<std::string> mutexNames;

    /**
     * Class/enum names whose head carries a `must-use` annotation,
     * unioned across all analyzed TUs. A function extent whose
     * returnType is in this set yields results the unchecked-outcome
     * rule refuses to see discarded.
     */
    std::set<std::string> mustUseTypes;

    /**
     * True when (file, line) sits inside a function extent whose head
     * is annotated thread-confined. Innermost-wins is irrelevant: any
     * enclosing confined extent exempts.
     */
    bool threadConfinedAt(const std::string &file, int line) const;
};

/** Index the declarations of every file in @p files. */
SymbolIndex buildSymbolIndex(const std::vector<LexedFile> &files);

} // namespace astra::lint

#endif // ASTRA_LINT_SYMBOLS_HH
