// Positive fixture for no-naked-new: every allocating `new` without a
// suppression comment fires.
struct Foo
{
    int x;
};

Foo *
build(int n)
{
    int *p = new int(3);        // FIRE(no-naked-new)
    Foo *f = new Foo{*p};       // FIRE(no-naked-new)
    Foo *arr = new Foo[4];      // FIRE(no-naked-new)
    return n > 0 ? f : arr;
}
