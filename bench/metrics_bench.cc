/**
 * @file
 * metrics_bench — measures the cost of the observability layer.
 *
 * Runs the same collective twice per backend: once with network
 * instrumentation enabled (net-metrics=1, the default) and once with
 * it compiled out of the hot path (net-metrics=0). The simulated
 * results are identical by construction (the instrumentation is
 * observer-only); only the host wall-clock differs. The ratio is the
 * price of per-link usage tracking, histograms, and counter lanes —
 * the PR budget is <= 10% on both backends.
 *
 * Emits the numbers as JSON (--out=FILE, default BENCH_metrics.json)
 * so the overhead trajectory is tracked across PRs. --quick shrinks
 * the message sizes for CI; checked-in numbers come from the full run.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

#include "bench/support.hh"
#include "common/logging.hh"

using namespace astra;
using namespace astra::bench;

namespace
{

double
wallMs(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct Measurement
{
    double onMs = 0;     //!< best-of-reps, net-metrics=1
    double offMs = 0;    //!< best-of-reps, net-metrics=0
    Tick commOn = 0;     //!< simulated result with metrics on
    Tick commOff = 0;    //!< ... and off (must be identical)

    double overhead() const { return safeDiv(onMs - offMs, offMs); }
};

Measurement
measure(SimConfig cfg, CollectiveKind kind, Bytes bytes, int reps)
{
    Measurement m;
    m.onMs = m.offMs = 1e300;
    for (int r = 0; r < reps; ++r) {
        // Alternate the order so cache warm-up noise cancels out.
        for (bool metrics : {r % 2 == 0, r % 2 != 0}) {
            cfg.netMetrics = metrics;
            Tick comm = 0;
            const double ms = wallMs([&] {
                Cluster cluster(cfg);
                comm = cluster.runCollective(kind, bytes);
            });
            if (metrics) {
                m.onMs = std::min(m.onMs, ms);
                m.commOn = comm;
            } else {
                m.offMs = std::min(m.offMs, ms);
                m.commOff = comm;
            }
        }
    }
    if (m.commOn != m.commOff)
        fatal("net-metrics changed the simulation: %llu != %llu ticks "
              "(observer-only contract violated)",
              static_cast<unsigned long long>(m.commOn),
              static_cast<unsigned long long>(m.commOff));
    return m;
}

void
report(const char *name, const Measurement &m)
{
    std::printf("  %-12s on %8.1f ms, off %8.1f ms, overhead %+.1f%%\n",
                name, m.onMs, m.offMs, 100 * m.overhead());
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv);
    banner("metrics_bench", "network instrumentation overhead "
                            "(net-metrics on vs off)");

    std::string out_path = "BENCH_metrics.json";
    std::erase_if(args.rawOverrides, [&](const auto &kv) {
        if (kv.first != "out")
            return false;
        out_path = kv.second;
        return true;
    });

    const int reps = args.quick ? 2 : 5;
    const Bytes ana_bytes = args.quick ? 2 * MiB : 16 * MiB;
    const Bytes gar_bytes = args.quick ? 512 * KiB : 2 * MiB;

    SimConfig ana;
    ana.torus(4, 4, 4);
    ana.local.bandwidth = 8 * ana.package.bandwidth;
    ana.algorithm = AlgorithmFlavor::Enhanced;
    applyOverrides(args, ana);

    SimConfig gar = ana;
    gar.backend = NetworkBackend::GarnetLite;

    const Measurement a =
        measure(ana, CollectiveKind::AllReduce, ana_bytes, reps);
    report("analytical", a);
    const Measurement g =
        measure(gar, CollectiveKind::AllReduce, gar_bytes, reps);
    report("garnet-lite", g);

    const double worst = std::max(a.overhead(), g.overhead());
    std::printf("  worst-case overhead: %+.1f%% (budget 10%%)\n", worst * 100);
    if (worst > 0.10)
        std::printf("  WARNING: instrumentation overhead exceeds the "
                    "10%% budget\n");

    FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f)
        fatal("cannot write %s", out_path.c_str());
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"metrics\",\n"
        "  \"quick\": %s,\n"
        "  \"reps\": %d,\n"
        "  \"analytical\": {\n"
        "    \"config\": \"torus-4x4x4 allreduce\",\n"
        "    \"bytes\": %llu,\n"
        "    \"metrics_on_ms\": %.2f,\n"
        "    \"metrics_off_ms\": %.2f,\n"
        "    \"overhead\": %.4f,\n"
        "    \"comm_cycles\": %llu\n"
        "  },\n"
        "  \"garnet_lite\": {\n"
        "    \"config\": \"garnet-lite torus-4x4x4 allreduce\",\n"
        "    \"bytes\": %llu,\n"
        "    \"metrics_on_ms\": %.2f,\n"
        "    \"metrics_off_ms\": %.2f,\n"
        "    \"overhead\": %.4f,\n"
        "    \"comm_cycles\": %llu\n"
        "  },\n"
        "  \"worst_overhead\": %.4f,\n"
        "  \"budget\": 0.10,\n"
        "  \"within_budget\": %s\n"
        "}\n",
        args.quick ? "true" : "false", reps,
        static_cast<unsigned long long>(ana_bytes), a.onMs, a.offMs,
        a.overhead(), static_cast<unsigned long long>(a.commOn),
        static_cast<unsigned long long>(gar_bytes), g.onMs, g.offMs,
        g.overhead(), static_cast<unsigned long long>(g.commOn),
        worst, worst <= 0.10 ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
