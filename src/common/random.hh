/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Simulations must be bit-for-bit repeatable given a seed, so all
 * stochastic choices (synthetic workload jitter, randomized tests) go
 * through this generator instead of std::rand / random_device.
 */

#ifndef ASTRA_COMMON_RANDOM_HH
#define ASTRA_COMMON_RANDOM_HH

#include <cstdint>

namespace astra
{

/**
 * xoshiro256** by Blackman & Vigna (public domain reference code).
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x5eed)
    {
        std::uint64_t x = seed;
        for (auto &word : _s) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
        const std::uint64_t t = _s[1] << 17;
        _s[2] ^= _s[0];
        _s[3] ^= _s[1];
        _s[1] ^= _s[2];
        _s[0] ^= _s[3];
        _s[2] ^= t;
        _s[3] = rotl(_s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _s[4];
};

} // namespace astra

#endif // ASTRA_COMMON_RANDOM_HH
