file(REMOVE_RECURSE
  "CMakeFiles/fig10_torus_dims.dir/fig10_torus_dims.cc.o"
  "CMakeFiles/fig10_torus_dims.dir/fig10_torus_dims.cc.o.d"
  "fig10_torus_dims"
  "fig10_torus_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_torus_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
