#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/units.hh"
#include "core/cluster.hh"

namespace astra
{
namespace
{

TEST(Scheduler, DispatcherHonorsThresholdAndWidth)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    cfg.dispatchThreshold = 2;
    cfg.dispatchWidth = 3;
    cfg.preferredSetSplits = 10;
    Cluster cluster(cfg);
    // Issue without running: dispatch happens at submit time.
    CollectiveRequest req;
    req.kind = CollectiveKind::AllReduce;
    req.bytes = 1 * MiB;
    auto handles = cluster.issueAll(req);
    // Submits trickle in one at a time, so the dispatcher releases
    // chunks until phase0Active reaches the threshold.
    Sys &sys = cluster.node(0);
    EXPECT_EQ(sys.scheduler().phase0Active(), 2);
    EXPECT_EQ(sys.scheduler().readyQueueDepth(), 8u);
    cluster.run();
    for (auto &h : handles)
        EXPECT_TRUE(h->done());
}

TEST(Scheduler, QueueDelayStatsArePopulated)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    cfg.preferredSetSplits = 16;
    Cluster cluster(cfg);
    cluster.runCollective(CollectiveKind::AllReduce, 4 * MiB);
    StatGroup stats = cluster.aggregateStats();
    // P0 (ready queue) samples: one per chunk per node.
    EXPECT_EQ(stats.accumulator("queue.P0").count(), 16u * 8);
    // Per-phase queue and network delays exist for all 3 phases.
    for (int p = 1; p <= 3; ++p) {
        EXPECT_EQ(stats.accumulator(strprintf("queue.P%d", p)).count(),
                  16u * 8)
            << "phase " << p;
        EXPECT_EQ(stats.accumulator(strprintf("network.P%d", p)).count(),
                  16u * 8)
            << "phase " << p;
        EXPECT_GT(stats.accumulator(strprintf("network.P%d", p)).mean(),
                  0.0);
    }
    // No phase 4 in the baseline 3-phase plan.
    EXPECT_EQ(stats.accumulator("queue.P4").count(), 0u);
}

TEST(Scheduler, EnhancedPlanHasFourPhases)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    cfg.algorithm = AlgorithmFlavor::Enhanced;
    Cluster cluster(cfg);
    cluster.runCollective(CollectiveKind::AllReduce, 1 * MiB);
    StatGroup stats = cluster.aggregateStats();
    EXPECT_GT(stats.accumulator("queue.P4").count(), 0u);
    EXPECT_GT(stats.accumulator("network.P4").count(), 0u);
}

TEST(Scheduler, LsqConcurrencyChangesTiming)
{
    auto run = [](int conc) {
        SimConfig cfg;
        cfg.torus(1, 8, 1);
        cfg.lsqConcurrency = conc;
        cfg.preferredSetSplits = 8;
        Cluster cluster(cfg);
        return cluster.runCollective(CollectiveKind::AllReduce, 4 * MiB);
    };
    const Tick serial = run(1);
    const Tick interleaved = run(4);
    // Interleaving chunks within a queue exploits the pipeline.
    EXPECT_LE(interleaved, serial);
}

TEST(Scheduler, FifoAndLifoBothComplete)
{
    for (SchedulingPolicy pol :
         {SchedulingPolicy::FIFO, SchedulingPolicy::LIFO}) {
        SimConfig cfg;
        cfg.torus(2, 2, 2);
        cfg.schedulingPolicy = pol;
        Cluster cluster(cfg);
        // Two back-to-back sets stress the ready queue ordering.
        CollectiveRequest req;
        req.kind = CollectiveKind::AllReduce;
        req.bytes = 512 * KiB;
        auto h1 = cluster.issueAll(req);
        auto h2 = cluster.issueAll(req);
        cluster.run();
        for (auto &h : h1)
            EXPECT_TRUE(h->done());
        for (auto &h : h2)
            EXPECT_TRUE(h->done());
    }
}

TEST(Scheduler, LifoPrioritizesTheLatestSetWhenContended)
{
    // Issue a big set, then a small one. Under LIFO the small set's
    // undispatched chunks jump the queue, so it finishes much earlier
    // than the big one; under FIFO it waits for the backlog.
    auto run = [](SchedulingPolicy pol) {
        SimConfig cfg;
        cfg.torus(1, 4, 1);
        cfg.schedulingPolicy = pol;
        cfg.preferredSetSplits = 32;
        cfg.dispatchThreshold = 2;
        cfg.dispatchWidth = 2;
        Cluster cluster(cfg);
        CollectiveRequest big;
        big.kind = CollectiveKind::AllReduce;
        big.bytes = 32 * MiB;
        CollectiveRequest small;
        small.kind = CollectiveKind::AllReduce;
        small.bytes = 32 * KiB;
        auto hb = cluster.issueAll(big);
        auto hs = cluster.issueAll(small);
        cluster.run();
        Tick small_done = 0;
        for (auto &h : hs)
            small_done = std::max(small_done, h->completedAt);
        return small_done;
    };
    EXPECT_LT(run(SchedulingPolicy::LIFO), run(SchedulingPolicy::FIFO));
}

TEST(Scheduler, LayerPriorityFavorsEarlyLayers)
{
    // Sec. III-E: the first layer's collective should complete before
    // later layers' even when issued after them. Issue layer 5 first,
    // then layer 0, under heavy contention.
    auto run = [](SchedulingPolicy pol) {
        SimConfig cfg;
        cfg.torus(1, 4, 1);
        cfg.schedulingPolicy = pol;
        cfg.preferredSetSplits = 32;
        cfg.dispatchThreshold = 2;
        cfg.dispatchWidth = 2;
        Cluster cluster(cfg);
        CollectiveRequest late;
        late.kind = CollectiveKind::AllReduce;
        late.bytes = 16 * MiB;
        late.layer = 5;
        CollectiveRequest first;
        first.kind = CollectiveKind::AllReduce;
        first.bytes = 1 * MiB;
        first.layer = 0;
        auto hl = cluster.issueAll(late);
        auto hf = cluster.issueAll(first);
        cluster.run();
        Tick done0 = 0;
        for (auto &h : hf)
            done0 = std::max(done0, h->completedAt);
        return done0;
    };
    // Layer 0 finishes earlier under layer-priority than under FIFO.
    EXPECT_LT(run(SchedulingPolicy::LayerPriority),
              run(SchedulingPolicy::FIFO));
}

TEST(Scheduler, LayerPriorityUntaggedSortsLast)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    cfg.schedulingPolicy = SchedulingPolicy::LayerPriority;
    Cluster cluster(cfg);
    // Mixed tagged/untagged issues must all complete.
    CollectiveRequest tagged;
    tagged.kind = CollectiveKind::AllReduce;
    tagged.bytes = 256 * KiB;
    tagged.layer = 3;
    CollectiveRequest untagged;
    untagged.kind = CollectiveKind::AllReduce;
    untagged.bytes = 256 * KiB;
    auto h1 = cluster.issueAll(untagged);
    auto h2 = cluster.issueAll(tagged);
    cluster.run();
    for (auto &h : h1)
        EXPECT_TRUE(h->done());
    for (auto &h : h2)
        EXPECT_TRUE(h->done());
}

TEST(Scheduler, InFlightDrainsToZero)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Cluster cluster(cfg);
    cluster.runCollective(CollectiveKind::AllReduce, 1 * MiB);
    for (NodeId n = 0; n < cluster.numNodes(); ++n) {
        EXPECT_EQ(cluster.node(n).scheduler().inFlight(), 0);
        EXPECT_EQ(cluster.node(n).scheduler().phase0Active(), 0);
        EXPECT_EQ(cluster.node(n).scheduler().readyQueueDepth(), 0u);
        EXPECT_EQ(cluster.node(n).liveStreams(), 0u);
    }
}

} // namespace
} // namespace astra
