file(REMOVE_RECURSE
  "CMakeFiles/astra_test_main.dir/test_main.cc.o"
  "CMakeFiles/astra_test_main.dir/test_main.cc.o.d"
  "libastra_test_main.a"
  "libastra_test_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_test_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
