// Positive fixture for no-wall-clock: header pulls and clock reads.
#include <chrono> // FIRE(no-wall-clock)
#include <ctime>  // FIRE(no-wall-clock)

long
now_host()
{
    auto tp = std::chrono::steady_clock::now();  // FIRE(no-wall-clock)
    long a = time(NULL);                         // FIRE(no-wall-clock)
    long b = time(nullptr);                      // FIRE(no-wall-clock)
    long c = clock();                            // FIRE(no-wall-clock)
    return a + b + c + tp.time_since_epoch().count();
}
