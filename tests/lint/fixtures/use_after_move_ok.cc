// Clean counterparts: every moved-from local is reassigned or reset
// before any read, on every path that reaches the read.

void
reassignedAfterMove()
{
    auto buf = makeBuffer();
    enqueue(std::move(buf));
    buf = makeBuffer();
    consume(buf);
}

void
resetOnMovedPath(bool flip)
{
    auto plan = makePlan();
    if (flip) {
        enqueue(std::move(plan));
        plan.clear();
    }
    apply(plan);
}

void
movedFreshEachIteration(int n)
{
    for (int i = 0; i < n; ++i) {
        auto chunk = makeChunk(i);
        enqueue(std::move(chunk));
    }
}

void
moveIsLastUse()
{
    auto buf = makeBuffer();
    consume(buf);
    enqueue(std::move(buf));
}
