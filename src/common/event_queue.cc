#include "common/event_queue.hh"

#include "common/logging.hh"

namespace astra
{

EventId
EventQueue::schedule(Tick when, EventCallback cb, int priority)
{
    if (when < _now) {
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    }
    EventId id = _nextId++;
    _heap.push(Entry{when, priority, _seq++, id, std::move(cb)});
    _live.insert(id);
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    // An id is cancellable exactly while it is live: still in the heap
    // and not yet fired. Cancelled/fired entries are simply skipped at
    // pop time.
    return _live.erase(id) > 0;
}

void
EventQueue::skim()
{
    while (!_heap.empty() && !_live.count(_heap.top().id))
        _heap.pop();
}

bool
EventQueue::popNext(Entry &out)
{
    skim();
    if (_heap.empty())
        return false;
    out = std::move(const_cast<Entry &>(_heap.top()));
    _heap.pop();
    _live.erase(out.id);
    return true;
}

bool
EventQueue::step()
{
    Entry e;
    if (!popNext(e))
        return false;
    _now = e.when;
    ++_executed;
    e.cb();
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && step())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t n = 0;
    while (true) {
        skim();
        if (_heap.empty() || _heap.top().when > until)
            break;
        Entry e;
        if (!popNext(e))
            break;
        _now = e.when;
        ++_executed;
        e.cb();
        ++n;
    }
    if (_now < until)
        _now = until;
    return n;
}

} // namespace astra
