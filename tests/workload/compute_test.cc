#include <gtest/gtest.h>

#include <cmath>
#include "compute/systolic.hh"
#include "common/logging.hh"

namespace astra
{
namespace
{

TEST(Systolic, SingleTileCost)
{
    SystolicParams p;
    p.rows = 256;
    p.cols = 256;
    // A 256x256x256 GEMM is one tile: K + rows + cols - 2 cycles.
    GemmShape s{256, 256, 256};
    EXPECT_EQ(systolicComputeCycles(p, s), 256u + 256 + 256 - 2);
}

TEST(Systolic, TilesMultiplyCost)
{
    SystolicParams p;
    GemmShape one{256, 128, 256};
    GemmShape four{512, 128, 512};
    EXPECT_EQ(systolicComputeCycles(p, four),
              4 * systolicComputeCycles(p, one));
}

TEST(Systolic, PartialTilesRoundUp)
{
    SystolicParams p;
    GemmShape s{257, 64, 1};
    // ceil(257/256) * ceil(1/256) = 2 tiles.
    EXPECT_EQ(systolicComputeCycles(p, s),
              2 * (64u + 256 + 256 - 2));
}

TEST(Systolic, MemoryCyclesFollowTraffic)
{
    SystolicParams p;
    p.dramBandwidth = 100.0;
    p.dtypeBytes = 2;
    GemmShape s{100, 200, 300};
    const double bytes = (100.0 * 200 + 200 * 300 + 100 * 300) * 2;
    EXPECT_EQ(systolicMemoryCycles(p, s),
              static_cast<Tick>(std::ceil(bytes / 100.0)));
}

TEST(Systolic, LatencyIsRooflinePlusOverhead)
{
    SystolicParams p;
    p.layerOverhead = 500;
    p.clockGhz = 1.0;
    // Compute bound: many tiles with deep accumulation reuse operands.
    GemmShape cb{2048, 4096, 2048};
    EXPECT_EQ(systolicGemmLatency(p, cb),
              systolicComputeCycles(p, cb) + 500);
    // Memory bound: big matrices with tiny accumulation depth.
    SystolicParams slow = p;
    slow.dramBandwidth = 1.0;
    GemmShape mb{4096, 1, 4096};
    EXPECT_EQ(systolicGemmLatency(slow, mb),
              systolicMemoryCycles(slow, mb) + 500);
}

TEST(Systolic, MonotoneInEveryDimension)
{
    SystolicParams p;
    GemmShape base{512, 512, 512};
    const Tick t0 = systolicGemmLatency(p, base);
    for (GemmShape bigger : {GemmShape{1024, 512, 512},
                             GemmShape{512, 1024, 512},
                             GemmShape{512, 512, 1024}}) {
        EXPECT_GE(systolicGemmLatency(p, bigger), t0);
    }
}

TEST(Systolic, RejectsDegenerateShapes)
{
    SystolicParams p;
    EXPECT_THROW(systolicComputeCycles(p, GemmShape{0, 1, 1}), FatalError);
    EXPECT_THROW(systolicMemoryCycles(p, GemmShape{1, -1, 1}), FatalError);
    EXPECT_THROW(systolicGemmLatency(p, GemmShape{1, 1, 0}), FatalError);
    SystolicParams bad;
    bad.clockGhz = 0;
    EXPECT_THROW(systolicGemmLatency(bad, GemmShape{1, 1, 1}), FatalError);
}

TEST(Systolic, FasterClockShortensLatency)
{
    SystolicParams slow;
    slow.clockGhz = 1.0;
    SystolicParams fast;
    fast.clockGhz = 4.0;
    GemmShape s{2048, 2048, 2048};
    EXPECT_LT(systolicGemmLatency(fast, s), systolicGemmLatency(slow, s));
    // Roughly 4x, modulo the fixed overhead.
    const double ratio =
        double(systolicGemmLatency(slow, s) - slow.layerOverhead) /
        double(systolicGemmLatency(fast, s) - fast.layerOverhead);
    EXPECT_NEAR(ratio, 4.0, 0.01);
}

} // namespace
} // namespace astra
