file(REMOVE_RECURSE
  "libastra_common.a"
)
