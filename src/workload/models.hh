/**
 * @file
 * Workload generators for the DNNs the paper evaluates.
 *
 * These play the role of the paper's "DNN compute simulator" input
 * stage (the green box of Fig. 6): layer shapes are turned into
 * per-layer compute delays with the systolic-array model of
 * src/compute, and into communication sizes from parameter/activation
 * footprints. The generated WorkloadSpec can be serialized to the
 * Fig. 8 file format and re-parsed.
 *
 *  - ResNet-50 [16]: 53 convolutions + the final FC layer, im2col'ed
 *    to GEMMs; data-parallel weight-gradient all-reduce per layer
 *    (Figs. 14-18).
 *  - Transformer [8]: encoder stack; hybrid-parallel with activation /
 *    input-gradient exchange across the model group and sharded
 *    weight-gradient all-reduce across the data group (Fig. 13).
 *  - DLRM [17]: bottom MLP, an embedding-exchange layer using
 *    all-to-all (the "distributed key/value table" use-case of
 *    Sec. II), top MLP.
 *  - Synthetic: n identical layers, for tests and ablations.
 */

#ifndef ASTRA_WORKLOAD_MODELS_HH
#define ASTRA_WORKLOAD_MODELS_HH

#include "compute/systolic.hh"
#include "workload/layer.hh"

namespace astra
{

/** Common generator knobs. */
struct ModelConfig
{
    int batch = 32;          //!< per-NPU minibatch (Sec. V-E)
    SystolicParams accel;    //!< compute model parameters
    int gradBytes = 4;       //!< bytes per gradient element (fp32)
    double updateTimePerKiB = 2.0;
};

/** ResNet-50, data-parallel. */
WorkloadSpec resnet50Workload(const ModelConfig &cfg = {});

/** Transformer encoder configuration. */
struct TransformerConfig
{
    ModelConfig base;
    int layers = 6;     //!< encoder layers (paper Fig. 13 shows 1..6)
    int seqLen = 128;
    int dModel = 512;
    int dFf = 2048;
    int heads = 8;
    /**
     * Number of model-parallel shards each layer's weights/activations
     * are split into (the vertical dimension size in the paper's
     * 2x2x2 hybrid run).
     */
    int modelShards = 2;
};

/** Transformer encoder stack, hybrid-parallel. */
WorkloadSpec transformerWorkload(const TransformerConfig &cfg = {});

/** DLRM-style recommendation model configuration. */
struct DlrmConfig
{
    ModelConfig base;
    int denseFeatures = 13;
    int embeddingDim = 64;
    int tablesPerNode = 8;  //!< embedding tables resident on each NPU
    std::vector<int> bottomMlp = {512, 256, 64};
    std::vector<int> topMlp = {512, 256, 1};
};

/** DLRM with all-to-all embedding exchange. */
WorkloadSpec dlrmWorkload(const DlrmConfig &cfg = {});

/** GPT-2-style decoder configuration (Megatron-style sharding). */
struct GptConfig
{
    ModelConfig base;
    int layers = 12;
    int seqLen = 1024;
    int dModel = 768;
    int heads = 12;
    int modelShards = 2; //!< tensor-parallel ways
};

/**
 * GPT-2-style decoder stack, hybrid-parallel with Megatron-style
 * tensor parallelism: each decoder layer all-reduces its partial
 * activations across the model group after the attention block and
 * after the MLP block (approximated as one all-reduce per direction),
 * and all-reduces its sharded weight gradients across the data group.
 */
WorkloadSpec gptWorkload(const GptConfig &cfg = {});

/** VGG-16, data-parallel (a second conv workload with a very
 *  different weight distribution: 90% of parameters in the FCs). */
WorkloadSpec vgg16Workload(const ModelConfig &cfg = {});

/** n identical layers (tests/ablations). */
WorkloadSpec syntheticWorkload(int layers, Tick compute_cycles,
                               Bytes wg_bytes,
                               ParallelismKind parallelism =
                                   ParallelismKind::Data);

} // namespace astra

#endif // ASTRA_WORKLOAD_MODELS_HH
