#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/units.hh"
#include "core/cluster.hh"

namespace astra
{
namespace
{

TEST(Sys, RejectsBadRequests)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Cluster cluster(cfg);
    CollectiveRequest req;
    req.kind = CollectiveKind::None;
    req.bytes = 100;
    EXPECT_THROW(cluster.node(0).issueCollective(req), FatalError);
    req.kind = CollectiveKind::AllReduce;
    req.bytes = 0;
    EXPECT_THROW(cluster.node(0).issueCollective(req), FatalError);
}

TEST(Sys, HandleTracksLifecycle)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    cfg.preferredSetSplits = 4;
    Cluster cluster(cfg);
    CollectiveRequest req;
    req.kind = CollectiveKind::AllReduce;
    req.bytes = 4096;
    req.layer = 7;
    auto handles = cluster.issueAll(req);
    auto &h = handles[0];
    EXPECT_FALSE(h->done());
    EXPECT_EQ(h->remainingChunks, 4);
    EXPECT_EQ(h->layer, 7);
    EXPECT_EQ(h->kind, CollectiveKind::AllReduce);
    EXPECT_EQ(h->totalBytes, 4096u);
    cluster.run();
    EXPECT_TRUE(h->done());
    EXPECT_EQ(h->remainingChunks, 0);
    EXPECT_GT(h->duration(), 0u);
}

TEST(Sys, CompletionCallbackFiresOncePerNode)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    Cluster cluster(cfg);
    int calls = 0;
    CollectiveRequest req;
    req.kind = CollectiveKind::AllGather;
    req.bytes = 1024;
    req.onComplete = [&calls] { ++calls; };
    cluster.issueAll(req);
    cluster.run();
    EXPECT_EQ(calls, 2);
}

TEST(Sys, SingleParticipantGroupCompletesWithoutTraffic)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1); // horizontal only; local dim is size 1
    Cluster cluster(cfg);
    CollectiveRequest req;
    req.kind = CollectiveKind::AllReduce;
    req.bytes = 4096;
    req.dims = {0}; // the degenerate dimension
    auto handles = cluster.issueAll(req);
    cluster.run();
    for (auto &h : handles)
        EXPECT_TRUE(h->done());
    EXPECT_EQ(cluster.network().deliveredMessages(), 0u);
}

TEST(Sys, StatsCountIssuesAndCompletions)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    cfg.preferredSetSplits = 4;
    Cluster cluster(cfg);
    CollectiveRequest req;
    req.kind = CollectiveKind::AllReduce;
    req.bytes = 64 * KiB;
    cluster.issueAll(req);
    cluster.run();
    const StatGroup &s = cluster.node(0).stats();
    EXPECT_DOUBLE_EQ(s.counter("issued.sets"), 1.0);
    EXPECT_DOUBLE_EQ(s.counter("issued.chunks"), 4.0);
    EXPECT_DOUBLE_EQ(s.counter("completed.sets"), 1.0);
    EXPECT_DOUBLE_EQ(s.counter("completed.chunks"), 4.0);
    EXPECT_DOUBLE_EQ(s.counter("issued.bytes"), 64.0 * KiB);
    EXPECT_GT(s.counter("sent.bytes"), 0.0);
    EXPECT_GT(s.counter("sent.messages"), 0.0);
}

TEST(Sys, SentBytesMatchRingAllReduceVolume)
{
    // One chunk, ring of 4, C bytes: RS sends 3 messages of C/4, AG
    // sends 3 of C/4 -> 1.5 C per node.
    SimConfig cfg;
    cfg.torus(1, 4, 1);
    cfg.preferredSetSplits = 1;
    Cluster cluster(cfg);
    const Bytes c = 64 * KiB;
    cluster.runCollective(CollectiveKind::AllReduce, c);
    const StatGroup &s = cluster.node(0).stats();
    EXPECT_DOUBLE_EQ(s.counter("sent.bytes"), 1.5 * double(c));
    EXPECT_DOUBLE_EQ(s.counter("sent.messages"), 6.0);
}

TEST(Sys, BackToBackSetsComplete)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Cluster cluster(cfg);
    std::vector<std::shared_ptr<CollectiveHandle>> all;
    for (int i = 0; i < 5; ++i) {
        CollectiveRequest req;
        req.kind = (i % 2) ? CollectiveKind::AllToAll
                           : CollectiveKind::AllReduce;
        req.bytes = 128 * KiB;
        auto hs = cluster.issueAll(req);
        all.insert(all.end(), hs.begin(), hs.end());
    }
    cluster.run();
    for (auto &h : all)
        EXPECT_TRUE(h->done());
}

TEST(Sys, ChainedIssueFromCompletionCallback)
{
    // Issuing a new collective from inside onComplete must work (the
    // workload layer does exactly this).
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    Cluster cluster(cfg);
    int completed = 0;
    std::function<void(NodeId)> issue_next = [&](NodeId n) {
        CollectiveRequest req;
        req.kind = CollectiveKind::AllReduce;
        req.bytes = 4096;
        req.onComplete = [&completed] { ++completed; };
        cluster.node(n).issueCollective(req);
    };
    CollectiveRequest first;
    first.kind = CollectiveKind::AllReduce;
    first.bytes = 4096;
    first.onComplete = [&] {
        // Each node chains one more collective.
        static int fired = 0;
        issue_next(fired++ % 2);
    };
    cluster.issueAll(first);
    cluster.run();
    EXPECT_EQ(completed, 2);
}

TEST(Sys, InspectorSeesEveryChunk)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    cfg.preferredSetSplits = 3;
    Cluster cluster(cfg);
    int seen = 0;
    cluster.node(0).setStreamInspector([&](const Stream &s) {
        ++seen;
        EXPECT_EQ(s.kind(), CollectiveKind::AllReduce);
        EXPECT_EQ(s.plan().size(), 1u);
    });
    cluster.runCollective(CollectiveKind::AllReduce, 3000);
    EXPECT_EQ(seen, 3);
}

} // namespace
} // namespace astra
