#include <gtest/gtest.h>

#include "common/stats.hh"
#include "tests/support/json_lite.hh"

namespace astra
{
namespace
{

using testsupport::jsonValid;

TEST(SafeDiv, ZeroDurationIsZeroNotNaN)
{
    // The zero-elapsed guard: a cluster that ran zero ticks reports
    // 0.0 utilization, never NaN or Inf.
    EXPECT_DOUBLE_EQ(safeDiv(5.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(safeDiv(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(safeDiv(1.0, -2.0), 0.0);
    EXPECT_DOUBLE_EQ(safeDiv(6.0, 3.0), 2.0);
    EXPECT_FALSE(std::isnan(safeDiv(1e300, 0.0)));
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.total(), 0.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.minimum(), 0.0);
    EXPECT_DOUBLE_EQ(a.maximum(), 0.0);
}

TEST(Accumulator, TracksMoments)
{
    Accumulator a;
    a.sample(3);
    a.sample(1);
    a.sample(8);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 12.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.minimum(), 1.0);
    EXPECT_DOUBLE_EQ(a.maximum(), 8.0);
}

TEST(Accumulator, MergeCombines)
{
    Accumulator a, b;
    a.sample(1);
    a.sample(2);
    b.sample(10);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.maximum(), 10.0);
    EXPECT_DOUBLE_EQ(a.minimum(), 1.0);
    // Merging an empty accumulator changes nothing.
    Accumulator empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);
}

TEST(StatGroup, CountersDefaultToZero)
{
    StatGroup g;
    EXPECT_DOUBLE_EQ(g.counter("missing"), 0.0);
    g.inc("x");
    g.inc("x", 2.5);
    EXPECT_DOUBLE_EQ(g.counter("x"), 3.5);
}

TEST(StatGroup, AccumulatorsByName)
{
    StatGroup g;
    g.sample("lat", 5);
    g.sample("lat", 15);
    EXPECT_EQ(g.accumulator("lat").count(), 2u);
    EXPECT_DOUBLE_EQ(g.accumulator("lat").mean(), 10.0);
    EXPECT_EQ(g.accumulator("absent").count(), 0u);
}

TEST(StatGroup, MergeAddsCountersAndAccs)
{
    StatGroup a, b;
    a.inc("n", 1);
    b.inc("n", 2);
    b.inc("only-b", 5);
    a.sample("q", 1);
    b.sample("q", 3);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.counter("n"), 3.0);
    EXPECT_DOUBLE_EQ(a.counter("only-b"), 5.0);
    EXPECT_EQ(a.accumulator("q").count(), 2u);
    EXPECT_DOUBLE_EQ(a.accumulator("q").total(), 4.0);
}

TEST(StatGroup, ClearDropsEverything)
{
    StatGroup g;
    g.inc("a");
    g.sample("b", 1);
    g.record("c", 1);
    g.clear();
    EXPECT_TRUE(g.counters().empty());
    EXPECT_TRUE(g.accumulators().empty());
    EXPECT_TRUE(g.histograms().empty());
}

TEST(Histogram, BucketBoundaries)
{
    // Bucket 0: v < 1. Bucket i >= 1: [2^(i-1), 2^i).
    EXPECT_EQ(Histogram::bucketOf(0.0), 0);
    EXPECT_EQ(Histogram::bucketOf(0.999), 0);
    EXPECT_EQ(Histogram::bucketOf(1.0), 1);
    EXPECT_EQ(Histogram::bucketOf(1.999), 1);
    EXPECT_EQ(Histogram::bucketOf(2.0), 2);
    EXPECT_EQ(Histogram::bucketOf(3.0), 2);
    EXPECT_EQ(Histogram::bucketOf(4.0), 3);
    EXPECT_EQ(Histogram::bucketOf(1024.0), 11);
    // A sample sits inside its bucket's [lower, upper) range.
    for (double v : {0.5, 1.0, 7.0, 100.0, 65536.0, 1e15}) {
        const int b = Histogram::bucketOf(v);
        EXPECT_GE(v, Histogram::lowerBound(b)) << v;
        EXPECT_LT(v, Histogram::upperBound(b)) << v;
    }
    // Huge values saturate into the last bucket instead of overflowing.
    EXPECT_EQ(Histogram::bucketOf(1e300), Histogram::kBuckets - 1);
}

TEST(Histogram, RecordsAndCounts)
{
    Histogram h;
    h.record(0.5);
    h.record(1.5);
    h.record(1.6);
    h.record(100.0);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(Histogram::bucketOf(100.0)), 1u);
    EXPECT_DOUBLE_EQ(h.minimum(), 0.5);
    EXPECT_DOUBLE_EQ(h.maximum(), 100.0);
    // Negative samples clamp to zero rather than underflowing.
    h.record(-3.0);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_DOUBLE_EQ(h.minimum(), 0.0);
}

TEST(Histogram, PercentilesAreClampedEstimates)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(i);
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
    // Interpolated mid-percentiles stay within the observed range and
    // are monotone.
    const double p50 = h.percentile(50);
    const double p90 = h.percentile(90);
    const double p99 = h.percentile(99);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p99, 100.0);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    // Empty histogram: all percentiles are zero.
    Histogram empty;
    EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);
}

TEST(Histogram, MergeIsExact)
{
    Histogram a, b;
    a.record(1);
    a.record(500);
    b.record(0.25);
    b.record(500);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.bucketCount(0), 1u);
    EXPECT_EQ(a.bucketCount(1), 1u);
    EXPECT_EQ(a.bucketCount(Histogram::bucketOf(500)), 2u);
    EXPECT_DOUBLE_EQ(a.minimum(), 0.25);
    EXPECT_DOUBLE_EQ(a.maximum(), 500.0);
}

TEST(StatGroup, MergeCombinesHistogramsOnOverlap)
{
    StatGroup a, b;
    a.record("lat", 4);
    b.record("lat", 8);
    b.record("only-b", 1);
    a.merge(b);
    EXPECT_EQ(a.histogram("lat").count(), 2u);
    EXPECT_DOUBLE_EQ(a.histogram("lat").maximum(), 8.0);
    EXPECT_EQ(a.histogram("only-b").count(), 1u);
}

TEST(StatGroup, JsonIsWellFormed)
{
    StatGroup g;
    g.inc("bytes.total", 4096);
    g.sample("queue.P0", 17);
    g.record("hop.latency", 12);
    g.record("hop.latency", 900);
    std::string err;
    const std::string json = g.toJson();
    EXPECT_TRUE(jsonValid(json, &err)) << err << "\n" << json;
    EXPECT_NE(json.find("\"bytes.total\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(MetricRegistry, GroupsMergeAndRenderValidJson)
{
    MetricRegistry a, b;
    a.group("sys").inc("completed.chunks", 3);
    a.group("net").record("hop.latency", 40);
    b.group("sys").inc("completed.chunks", 2);
    b.group("workload").set("makespan.ticks", 1e6);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.group("sys").counter("completed.chunks"), 5.0);
    EXPECT_DOUBLE_EQ(a.group("workload").counter("makespan.ticks"), 1e6);

    const std::string json = a.toJson();
    std::string err;
    EXPECT_TRUE(jsonValid(json, &err)) << err << "\n" << json;
    EXPECT_NE(json.find("\"astra-metrics-v1\""), std::string::npos);
    EXPECT_NE(json.find("\"groups\""), std::string::npos);

    // Metric names with characters JSON cares about must round-trip
    // into valid output.
    MetricRegistry weird;
    weird.group("g").inc("odd\"name\\with\tchars\x01");
    EXPECT_TRUE(jsonValid(weird.toJson(), &err)) << err;
}

TEST(MetricRegistry, ConstLookupDoesNotCreate)
{
    const MetricRegistry reg;
    EXPECT_DOUBLE_EQ(reg.group("absent").counter("x"), 0.0);
    EXPECT_TRUE(reg.groups().empty());
}

} // namespace
} // namespace astra
