// collective -> net (3 -> 2): legal.
#ifndef FIXTURE_GOOD_COLLECTIVE_RING_HH
#define FIXTURE_GOOD_COLLECTIVE_RING_HH
#include "net/wire.hh"
inline int ringValue() { return wireValue() + 1; }
#endif
