#include "explore/design_space.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/cluster.hh"

namespace astra
{

namespace
{

std::vector<std::pair<std::string, SimConfig>>
enumeratePlatforms(const ExploreSpec &spec)
{
    std::vector<std::pair<std::string, SimConfig>> out;
    for (int m : spec.localDims) {
        if (m < 1 || spec.modules % m)
            continue;
        const int packages = spec.modules / m;
        for (int h = 1; h <= packages; ++h) {
            if (packages % h)
                continue;
            const int v = packages / h;
            if (h < v)
                continue; // mirror-symmetric duplicate
            SimConfig cfg;
            cfg.torus(m, h, v);
            cfg.local.bandwidth =
                spec.localBandwidthRatio * cfg.package.bandwidth;
            out.emplace_back(strprintf("torus-%dx%dx%d", m, h, v), cfg);
        }
        if (spec.includeAllToAll && packages >= 2 && packages <= 64) {
            SimConfig cfg;
            cfg.allToAll(m, packages, std::min(packages - 1, 7));
            cfg.local.bandwidth =
                spec.localBandwidthRatio * cfg.package.bandwidth;
            out.emplace_back(strprintf("a2a-%dx%d", m, packages), cfg);
        }
    }
    if (out.empty())
        fatal("design space is empty: no factorization of %d modules "
              "matches the candidate local dimensions",
              spec.modules);
    return out;
}

} // namespace

std::vector<CandidateResult>
exploreDesignSpace(const ExploreSpec &spec)
{
    if (spec.modules < 2)
        fatal("need at least 2 modules to explore");
    if (spec.bytes == 0)
        fatal("cannot explore a zero-byte collective");

    std::vector<AlgorithmFlavor> flavors = {AlgorithmFlavor::Baseline};
    if (spec.sweepFlavors)
        flavors.push_back(AlgorithmFlavor::Enhanced);
    std::vector<int> splits = spec.setSplits;
    if (splits.empty())
        splits.push_back(0); // configuration default

    std::vector<CandidateResult> results;
    for (const auto &[name, platform] : enumeratePlatforms(spec)) {
        for (AlgorithmFlavor flavor : flavors) {
            for (int split : splits) {
                CandidateResult r;
                r.cfg = platform;
                r.cfg.algorithm = flavor;
                if (split > 0)
                    r.cfg.preferredSetSplits = split;
                r.label = name + "/" + toString(flavor);
                if (split > 0)
                    r.label += strprintf("/%dch", split);

                Cluster cluster(r.cfg);
                r.commTime =
                    cluster.runCollective(spec.kind, spec.bytes);
                r.energyUj = cluster.network().energy().totalUj();
                results.push_back(std::move(r));
            }
        }
    }

    std::sort(results.begin(), results.end(),
              [](const CandidateResult &a, const CandidateResult &b) {
                  if (a.commTime != b.commTime)
                      return a.commTime < b.commTime;
                  return a.energyUj < b.energyUj;
              });
    return results;
}

CandidateResult
bestDesign(const ExploreSpec &spec)
{
    return exploreDesignSpace(spec).front();
}

} // namespace astra
