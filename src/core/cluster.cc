#include "core/cluster.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/logging.hh"
#include "guard/guard.hh"
#include "guard/interrupt.hh"
#include "net/analytical.hh"
#include "net/garnet_lite.hh"

namespace astra
{

Cluster::Cluster(const SimConfig &cfg) : _cfg(cfg), _topo(cfg)
{
    // The network backend is built from the *physical* fabric; the
    // system layer keeps its logical view (one-to-one by default).
    const bool one_to_one = !_cfg.physicalDistinct;
    if (!one_to_one)
        _physTopo = std::make_unique<Topology>(_cfg.physicalConfig());
    const Topology &net_topo = _physTopo ? *_physTopo : _topo;
    const SimConfig net_cfg =
        _physTopo ? _cfg.physicalConfig() : _cfg;

    switch (_cfg.backend) {
      case NetworkBackend::Analytical:
        _net = std::make_unique<AnalyticalNetwork>(_eq, net_topo,
                                                   net_cfg, one_to_one);
        break;
      case NetworkBackend::GarnetLite:
        _net = std::make_unique<GarnetLiteNetwork>(_eq, net_topo,
                                                   net_cfg, one_to_one);
        break;
    }
    _nodes.reserve(std::size_t(_topo.numNodes()));
    for (NodeId n = 0; n < _topo.numNodes(); ++n)
        _nodes.push_back(std::make_unique<Sys>(n, _topo, *_net, _cfg));

    // Fault layer: only wired when the plan has rules, so a fault-free
    // run takes none of the hooks and stays bit-for-bit identical.
    FaultPlan plan = FaultPlan::fromConfig(_cfg);
    if (!plan.empty()) {
        _faults = std::make_unique<FaultManager>(std::move(plan));
        if (one_to_one) {
            // Ring re-planning needs the literal hint->link mapping;
            // mapped fabrics only seed channels, so skip binding there.
            switch (_cfg.backend) {
              case NetworkBackend::Analytical:
                _faults->bindRingChannels(
                    static_cast<AnalyticalNetwork *>(_net.get())
                        ->fabric()
                        .ringLinks());
                break;
              case NetworkBackend::GarnetLite:
                _faults->bindRingChannels(
                    static_cast<GarnetLiteNetwork *>(_net.get())
                        ->fabric()
                        .ringLinks());
                break;
            }
        }
        _net->setFaults(_faults.get());
        _net->setLossHandler([this](const Message &msg, int link) {
            ASTRA_CHECK(msg.src >= 0 &&
                            std::size_t(msg.src) < _nodes.size(),
                        "loss reported for out-of-range sender %d",
                        msg.src);
            _nodes[std::size_t(msg.src)]->onMessageLost(msg, link);
        });
        for (auto &node : _nodes) {
            node->setFaults(_faults.get(),
                            [this](const FailureRecord &rec) {
                                _failures.push_back(rec);
                            });
        }
    }

    if (!_cfg.traceFile.empty()) {
        _trace = std::make_unique<TraceRecorder>();
        // Lane names: one process per NPU plus one for the network's
        // utilization counter lanes (pid = numNodes, above all NPUs).
        const int net_pid = _topo.numNodes();
        _trace->processName(net_pid, "network");
        for (auto &node : _nodes) {
            _trace->processName(int(node->id()),
                                strprintf("npu%d", int(node->id())));
            node->setTrace(_trace.get());
        }
        _net->setTrace(_trace.get(), net_pid);
    }

    // Determinism auditor: accumulate the retired-event digest.
    if (_cfg.digest)
        _eq.enableDigest();

    // Integrity layer: drain-time checkers, run at the end of run()
    // when the runtime validation level is at least basic.
    if (validationAtLeast(ValidateLevel::kBasic)) {
        _validators.add("common.event_queue.drain",
                        [this] { _eq.validateDrained(); });
        _net->registerCheckers(_validators);
        for (auto &node : _nodes) {
            Sys *sys = node.get();
            _validators.add(
                strprintf("core.scheduler.npu%d.drain", int(sys->id())),
                [sys] { sys->scheduler().validateDrained(); });
        }
    }
}

Cluster::~Cluster()
{
    if (_trace && !_cfg.traceFile.empty() && _trace->size() > 0) {
        // Best effort: never let trace I/O failures mask the real
        // outcome of a run during stack unwinding.
        try {
            flushTrace();
        } catch (...) {
        }
    }
}

void
Cluster::flushTrace()
{
    if (!_trace)
        return;
    _trace->writeFile(_cfg.traceFile);
    _trace->clear();
}

std::vector<std::shared_ptr<CollectiveHandle>>
Cluster::issueAll(const CollectiveRequest &req)
{
    std::vector<std::shared_ptr<CollectiveHandle>> handles;
    handles.reserve(_nodes.size());
    for (auto &node : _nodes)
        handles.push_back(node->issueCollective(req));
    return handles;
}

Tick
Cluster::run()
{
    // Supervised event loop (docs/robustness.md): events fire in
    // fixed-size slices and budgets, the interrupt flag and the
    // progress watchdog are polled only *between* slices — never
    // inside an event — so a run that stays under budget retires the
    // exact event stream an unsliced _eq.run() would (digests
    // unchanged), and a tripped run stops at a clean event boundary
    // with partial metrics and the digest so far intact.
    const guard::RunBudget budget = guard::RunBudget::fromConfig(_cfg);
    constexpr std::uint64_t kSlice = 4096;

    std::uint64_t since_progress = 0;
    std::uint64_t last_progress = progressSum();

    for (;;) {
        if (guard::interruptRequested()) {
            trip(RunOutcome::Interrupted,
                 "interrupted: cooperative SIGINT/SIGTERM drain at "
                 "event boundary");
            return _eq.now();
        }
        if (budget.maxSlabBytes != 0 &&
            _eq.slabBytes() > budget.maxSlabBytes) {
            trip(RunOutcome::BudgetExceeded,
                 strprintf("budget: max-slab-bytes=%llu exceeded "
                           "(slab holds %zu bytes)",
                           static_cast<unsigned long long>(
                               budget.maxSlabBytes),
                           _eq.slabBytes()));
            return _eq.now();
        }
        std::uint64_t slice = kSlice;
        if (budget.maxEvents != 0) {
            // The ceiling covers the queue's whole lifetime, so a
            // multi-phase workload cannot dodge it by splitting the
            // run into many run() calls.
            const std::uint64_t used = _eq.executedEvents();
            if (used >= budget.maxEvents && !_eq.empty()) {
                trip(RunOutcome::BudgetExceeded,
                     strprintf("budget: max-events=%llu exceeded",
                               static_cast<unsigned long long>(
                                   budget.maxEvents)));
                return _eq.now();
            }
            slice = std::min(slice, budget.maxEvents - used);
        }
        const std::uint64_t fired =
            budget.maxSimTime != 0
                ? _eq.runBounded(budget.maxSimTime, slice)
                : _eq.run(slice);
        if (_eq.empty())
            break; // normal drain
        if (budget.maxSimTime != 0 && fired < slice) {
            // Slice undershot with events still pending: everything
            // left is beyond the time ceiling.
            trip(RunOutcome::BudgetExceeded,
                 strprintf("budget: max-sim-time=%llu reached (next "
                           "event is later)",
                           static_cast<unsigned long long>(
                               budget.maxSimTime)));
            return _eq.now();
        }
        if (budget.watchdogWindow != 0) {
            const std::uint64_t p = progressSum();
            if (p != last_progress) {
                last_progress = p;
                since_progress = 0;
            } else {
                since_progress += fired;
                if (since_progress >= budget.watchdogWindow) {
                    // Livelock: the queue keeps retiring events but no
                    // stream or chunk has completed a phase for a full
                    // window — the spinning cousin of the stranded-work
                    // Deadlocked detection below.
                    trip(RunOutcome::Deadlocked,
                         strprintf(
                             "watchdog: no stream/chunk progress in "
                             "%llu events",
                             static_cast<unsigned long long>(
                                 since_progress)));
                    return _eq.now();
                }
            }
        }
    }
    refreshOutcome();
    // The drain checkers assume a fully completed run: a degraded run
    // legitimately strands streams, queued transfers and credits, so
    // they only execute on Completed outcomes (the failure report is
    // the diagnostic for the others).
    if (_outcome == RunOutcome::Completed)
        _validators.runAll();
    return _eq.now();
}

std::uint64_t
Cluster::progressSum() const
{
    std::uint64_t sum = 0;
    for (const auto &node : _nodes)
        sum += node->progressCount();
    return sum;
}

void
Cluster::trip(RunOutcome outcome, const std::string &reason)
{
    _outcome = outcome;
    FailureRecord rec;
    rec.tick = _eq.now();
    rec.reason = reason;
    _failures.push_back(rec);
}

void
Cluster::refreshOutcome()
{
    if (!_faults) {
        _outcome = RunOutcome::Completed; // historical behavior
        return;
    }
    if (!_failures.empty()) {
        _outcome = RunOutcome::Degraded;
        return;
    }
    bool live = false;
    for (const auto &node : _nodes) {
        if (node->liveStreams() > 0 || node->pendingP2P() > 0)
            live = true;
    }
    _outcome = live ? RunOutcome::Deadlocked : RunOutcome::Completed;
}

Tick
Cluster::runCollective(CollectiveKind kind, Bytes bytes,
                       std::vector<int> dims, int set_splits)
{
    CollectiveRequest req;
    req.kind = kind;
    req.bytes = bytes;
    req.dims = std::move(dims);
    req.setSplits = set_splits;

    const Tick issued = _eq.now();
    auto handles = issueAll(req);
    run();

    Tick finish = issued;
    for (const auto &h : handles) {
        if (!h->done()) {
            // Under a fault plan an incomplete collective is the
            // Degraded/Deadlocked outcome's business, not a fatal.
            if (_outcome != RunOutcome::Completed)
                continue;
            fatal("collective did not complete (deadlock?)");
        }
        finish = std::max(finish, h->completedAt);
    }
    return finish - issued;
}

StatGroup
Cluster::aggregateStats() const
{
    StatGroup all;
    for (const auto &node : _nodes)
        all.merge(node->stats());
    return all;
}

MetricRegistry
Cluster::exportMetrics() const
{
    MetricRegistry reg;
    reg.group("sys") = aggregateStats();
    _net->exportStats(reg.group("net"));

    StatGroup &cl = reg.group("cluster");
    cl.set("elapsed.ticks", static_cast<double>(_eq.now()));
    cl.set("events.executed",
           static_cast<double>(_eq.executedEvents()));
    cl.set("nodes", double(_topo.numNodes()));

    // Only present when a run budget / watchdog is configured, so
    // unsupervised metric JSON is byte-identical to pre-guard output.
    if (guard::RunBudget::fromConfig(_cfg).active()) {
        StatGroup &g = reg.group("guard");
        g.set("outcome", double(int(_outcome)));
        g.set("slab.bytes", double(_eq.slabBytes()));
        g.set("progress.count", double(progressSum()));
    }

    // Only present under a fault plan, so fault-free metric JSON is
    // byte-identical to the pre-fault-layer output.
    if (_faults) {
        StatGroup &f = reg.group("fault");
        f.set("outcome", double(int(_outcome)));
        f.set("failures", double(_failures.size()));
        f.set("drops.injected",
              double(_faults->dropsInjected()));
        f.set("lost.messages", double(_net->lostMessages()));
    }
    return reg;
}

} // namespace astra
