file(REMOVE_RECURSE
  "CMakeFiles/fig11_asymmetric.dir/fig11_asymmetric.cc.o"
  "CMakeFiles/fig11_asymmetric.dir/fig11_asymmetric.cc.o.d"
  "fig11_asymmetric"
  "fig11_asymmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_asymmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
