#include <gtest/gtest.h>

#include "common/units.hh"
#include "core/cluster.hh"
#include "tests/support/json_lite.hh"

namespace astra
{
namespace
{

using testsupport::jsonValid;

TEST(NetStats, AnalyticalExportsLinkUtilization)
{
    SimConfig cfg;
    cfg.torus(2, 2, 1);
    Cluster cluster(cfg);
    cluster.runCollective(CollectiveKind::AllReduce, 1 * MiB);

    MetricRegistry reg = cluster.exportMetrics();
    const StatGroup &net = reg.group("net");
    EXPECT_DOUBLE_EQ(net.counter("backend"), 0.0);
    EXPECT_GT(net.counter("elapsed.ticks"), 0.0);
    EXPECT_GT(net.counter("links.total"), 0.0);
    EXPECT_GT(net.counter("bytes.total"), 0.0);
    EXPECT_GT(net.counter("util.mean"), 0.0);
    EXPECT_LE(net.counter("util.mean"), 1.0);
    EXPECT_GT(net.histogram("link.util.pct").count(), 0u);
    EXPECT_GT(net.histogram("hop.tx_time").count(), 0u);

    // The system layer rides along: chunk latency and the P0 ready
    // queue delay are histogrammed per completed stream.
    const StatGroup &sys = reg.group("sys");
    EXPECT_GT(sys.histogram("chunk.latency").count(), 0u);
    EXPECT_GT(sys.histogram("queue.P0").count(), 0u);
}

TEST(NetStats, GarnetExportsPacketAndHopStats)
{
    SimConfig cfg;
    cfg.torus(2, 2, 1);
    cfg.backend = NetworkBackend::GarnetLite;
    Cluster cluster(cfg);
    cluster.runCollective(CollectiveKind::AllReduce, 256 * KiB);

    MetricRegistry reg = cluster.exportMetrics();
    const StatGroup &net = reg.group("net");
    EXPECT_DOUBLE_EQ(net.counter("backend"), 1.0);
    EXPECT_GT(net.counter("packets.injected"), 0.0);
    // Every injected packet/flit is retired once the run drains.
    EXPECT_DOUBLE_EQ(net.counter("packets.injected"),
                     net.counter("packets.retired"));
    EXPECT_DOUBLE_EQ(net.counter("flits.injected"),
                     net.counter("flits.retired"));
    EXPECT_GT(net.histogram("hop.latency").count(), 0u);
    EXPECT_GT(net.histogram("vc.occupancy").count(), 0u);
    EXPECT_GT(net.counter("util.mean"), 0.0);
    EXPECT_LE(net.counter("util.mean"), 1.0);
}

TEST(NetStats, ZeroElapsedUtilizationIsZeroNotNaN)
{
    // Exporting before anything ran must not divide by zero ticks.
    SimConfig cfg;
    cfg.torus(2, 2, 1);
    Cluster cluster(cfg);
    MetricRegistry reg = cluster.exportMetrics();
    const StatGroup &net = reg.group("net");
    EXPECT_DOUBLE_EQ(net.counter("elapsed.ticks"), 0.0);
    EXPECT_DOUBLE_EQ(net.counter("util.mean"), 0.0);
    const std::string json = reg.toJson();
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);
    std::string err;
    EXPECT_TRUE(jsonValid(json, &err)) << err;
}

TEST(NetStats, DisablingNetMetricsIsObserverOnly)
{
    SimConfig cfg;
    cfg.torus(2, 2, 1);
    cfg.backend = NetworkBackend::GarnetLite;

    Tick t_on = 0, t_off = 0;
    MetricRegistry off_reg;
    {
        Cluster cluster(cfg);
        t_on = cluster.runCollective(CollectiveKind::AllReduce, 64 * KiB);
    }
    {
        cfg.netMetrics = false;
        Cluster cluster(cfg);
        t_off = cluster.runCollective(CollectiveKind::AllReduce, 64 * KiB);
        off_reg = cluster.exportMetrics();
    }
    // Instrumentation never changes simulated time...
    EXPECT_EQ(t_on, t_off);
    // ... and switching it off leaves the link-level metrics empty.
    const StatGroup &net = off_reg.group("net");
    EXPECT_DOUBLE_EQ(net.counter("bytes.total"), 0.0);
    EXPECT_DOUBLE_EQ(net.counter("util.mean"), 0.0);
    EXPECT_EQ(net.histogram("hop.latency").count(), 0u);
    // Delivery accounting is part of the simulation proper and stays.
    EXPECT_GT(net.counter("delivered.messages"), 0.0);
}

TEST(NetStats, FullRegistryRendersValidJson)
{
    SimConfig cfg;
    cfg.torus(2, 2, 1);
    cfg.backend = NetworkBackend::GarnetLite;
    Cluster cluster(cfg);
    cluster.runCollective(CollectiveKind::AllReduce, 256 * KiB);
    const std::string json = cluster.exportMetrics().toJson();
    std::string err;
    EXPECT_TRUE(jsonValid(json, &err)) << err;
    EXPECT_NE(json.find("\"astra-metrics-v1\""), std::string::npos);
    EXPECT_NE(json.find("\"net\""), std::string::npos);
    EXPECT_NE(json.find("\"sys\""), std::string::npos);
    EXPECT_NE(json.find("\"cluster\""), std::string::npos);
}

} // namespace
} // namespace astra
