// net -> topo (same rank) and net -> fault (2 -> 1): both legal.
#ifndef FIXTURE_GOOD_NET_WIRE_HH
#define FIXTURE_GOOD_NET_WIRE_HH
#include "fault/plan.hh"
#include "topo/grid.hh"
inline int wireValue() { return gridValue() + planValue(); }
#endif
