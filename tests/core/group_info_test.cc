#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "core/group_info.hh"

namespace astra
{
namespace
{

Topology
torus(int m, int n, int k)
{
    SimConfig cfg;
    cfg.torus(m, n, k);
    return Topology(cfg);
}

TEST(GroupInfo, FullMachineRanksAreDenseAndUnique)
{
    Topology t = torus(2, 3, 4);
    std::set<int> ranks;
    for (NodeId n = 0; n < t.numNodes(); ++n) {
        GroupInfo g(t, n, {0, 1, 2});
        EXPECT_EQ(g.size(), 24);
        EXPECT_GE(g.myRank(), 0);
        EXPECT_LT(g.myRank(), 24);
        ranks.insert(g.myRank());
    }
    EXPECT_EQ(ranks.size(), 24u);
}

TEST(GroupInfo, RadixOrderFollowsPhaseOrder)
{
    // local is least significant, then vertical, then horizontal.
    Topology t = torus(2, 3, 4);
    ASSERT_EQ(t.phaseOrderKey(0), 0);
    GroupInfo g0(t, 0, {0, 1, 2});
    // Node with local coordinate 1, others 0: rank 1.
    Coord c;
    c[0] = 1;
    EXPECT_EQ(GroupInfo(t, t.nodeAt(c), {0, 1, 2}).myRank(), 1);
    // Node with vertical coordinate 1: rank == localSize (2).
    Coord cv;
    cv[2] = 1;
    EXPECT_EQ(GroupInfo(t, t.nodeAt(cv), {0, 1, 2}).myRank(), 2);
    // Node with horizontal coordinate 1: rank == local*vertical (8).
    Coord ch;
    ch[1] = 1;
    EXPECT_EQ(GroupInfo(t, t.nodeAt(ch), {0, 1, 2}).myRank(), 8);
}

TEST(GroupInfo, CoordOfInvertsRanking)
{
    Topology t = torus(2, 3, 4);
    for (NodeId n = 0; n < t.numNodes(); ++n) {
        GroupInfo g(t, n, {0, 1, 2});
        Coord c = t.coordOf(n);
        EXPECT_EQ(g.coordOf(g.myRank(), 0), c[0]);
        EXPECT_EQ(g.coordOf(g.myRank(), 1), c[1]);
        EXPECT_EQ(g.coordOf(g.myRank(), 2), c[2]);
    }
}

TEST(GroupInfo, SubgroupSizesAndRanks)
{
    Topology t = torus(2, 3, 4);
    Coord c;
    c[0] = 1;
    c[1] = 2;
    c[2] = 3;
    NodeId n = t.nodeAt(c);
    GroupInfo g(t, n, {1, 2}); // package dims only
    EXPECT_EQ(g.size(), 12);
    // vertical before horizontal in the radix: rank = v + 4*h.
    EXPECT_EQ(g.myRank(), 3 + 4 * 2);
    EXPECT_EQ(g.coordOf(g.myRank(), 2), 3);
    EXPECT_EQ(g.coordOf(g.myRank(), 1), 2);
}

TEST(GroupInfo, RankWithReplacesOneCoordinate)
{
    Topology t = torus(2, 3, 4);
    GroupInfo g(t, 0, {0, 1, 2});
    EXPECT_EQ(g.rankWith(0, 0), 0);
    EXPECT_EQ(g.rankWith(0, 1), 1);
    EXPECT_EQ(g.rankWith(2, 3), 2 * 3);       // vertical stride = 2
    EXPECT_EQ(g.rankWith(1, 2), 2 * 4 * 2);   // horizontal stride = 8
}

TEST(GroupInfo, SizeOneDimensionsContributeRadixOne)
{
    Topology t = torus(1, 8, 1);
    GroupInfo g(t, 5, {0, 1, 2});
    EXPECT_EQ(g.size(), 8);
    EXPECT_EQ(g.myRank(), 5);
}

TEST(GroupInfo, Errors)
{
    Topology t = torus(2, 2, 2);
    GroupInfo g(t, 0, {0, 1});
    EXPECT_THROW(g.coordOf(99, 0), FatalError);
    EXPECT_THROW(g.coordOf(0, 2), FatalError);   // dim not in group
    EXPECT_THROW(g.rankWith(2, 0), FatalError);
    EXPECT_THROW(g.rankWith(0, 7), FatalError);  // coord out of range
    EXPECT_THROW(GroupInfo(t, 0, {0, 0}), FatalError);
    EXPECT_THROW(GroupInfo(t, 0, {9}), FatalError);
}

} // namespace
} // namespace astra
