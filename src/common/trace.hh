/**
 * @file
 * Chrome-trace (about://tracing / Perfetto) event recording.
 *
 * When enabled (parameter `trace-file`), the simulator records
 * complete spans — per-node compute intervals, exposed-communication
 * waits, and every chunk's per-phase execution — and writes them in
 * the Chrome Trace Event JSON format, one process lane per NPU.
 * Loading the file in Perfetto gives the classic compute/communication
 * overlap picture the paper's Figs. 15/16 aggregate.
 */

#ifndef ASTRA_COMMON_TRACE_HH
#define ASTRA_COMMON_TRACE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace astra
{

/**
 * Collects complete ("ph":"X") trace events.
 */
class TraceRecorder
{
  public:
    /**
     * Record one span.
     *
     * @param node   NPU id (trace process lane).
     * @param lane   Thread lane within the node (0 = workload,
     *               1 + phase index for collective phases).
     * @param category  Event category ("compute", "wait", "phase").
     * @param name   Display name.
     * @param start  Span start tick.
     * @param end    Span end tick (>= start).
     */
    void span(NodeId node, int lane, const std::string &category,
              const std::string &name, Tick start, Tick end);

    /** Number of recorded events. */
    std::size_t size() const { return _events.size(); }

    /** Serialize as a Chrome Trace Event JSON array document. */
    std::string toJson() const;

    /** Write toJson() to @p path; fatal() on I/O error. */
    void writeFile(const std::string &path) const;

    /** Drop all recorded events. */
    void clear() { _events.clear(); }

  private:
    struct Event
    {
        NodeId node;
        int lane;
        std::string category;
        std::string name;
        Tick start;
        Tick duration;
    };

    std::vector<Event> _events;
};

} // namespace astra

#endif // ASTRA_COMMON_TRACE_HH
