#include "collective/phase_plan.hh"

#include <algorithm>

#include "common/logging.hh"

namespace astra
{

namespace
{

std::vector<int>
orderedActiveDims(const Topology &topo, const std::vector<int> &dims)
{
    std::vector<int> active;
    for (int d : dims) {
        if (d < 0 || d >= topo.numDims())
            fatal("phase plan: dimension %d out of range", d);
        if (topo.dim(d).size > 1)
            active.push_back(d);
    }
    std::sort(active.begin(), active.end(), [&](int a, int b) {
        return topo.phaseOrderKey(a) < topo.phaseOrderKey(b);
    });
    auto dup = std::adjacent_find(active.begin(), active.end());
    if (dup != active.end())
        fatal("phase plan: dimension %d listed twice", *dup);
    return active;
}

} // namespace

PhasePlan
buildPhasePlan(const Topology &topo, const std::vector<int> &dims,
               CollectiveKind kind, AlgorithmFlavor flavor)
{
    std::vector<int> active = orderedActiveDims(topo, dims);
    PhasePlan plan;
    if (active.empty())
        return plan; // single-node group: nothing to communicate

    switch (kind) {
      case CollectiveKind::AllReduce: {
        const bool local_first =
            active.front() == Topology::kDimLocal && active.size() >= 2;
        if (flavor == AlgorithmFlavor::Enhanced && local_first) {
            // Enhanced: RS(local) -> AR(inter-package dims) -> AG(local)
            plan.push_back({active.front(), CollectiveKind::ReduceScatter});
            for (std::size_t i = 1; i < active.size(); ++i)
                plan.push_back({active[i], CollectiveKind::AllReduce});
            plan.push_back({active.front(), CollectiveKind::AllGather});
        } else {
            for (int d : active)
                plan.push_back({d, CollectiveKind::AllReduce});
        }
        break;
      }
      case CollectiveKind::ReduceScatter:
        for (int d : active)
            plan.push_back({d, CollectiveKind::ReduceScatter});
        break;
      case CollectiveKind::AllGather:
        for (int d : active)
            plan.push_back({d, CollectiveKind::AllGather});
        break;
      case CollectiveKind::AllToAll:
        for (int d : active)
            plan.push_back({d, CollectiveKind::AllToAll});
        break;
      case CollectiveKind::None:
        fatal("cannot plan CollectiveKind::None");
    }
    return plan;
}

Bytes
phaseEntryBytes(const Topology &topo, const PhasePlan &plan, int phase_idx,
                Bytes chunk_bytes)
{
    double bytes = static_cast<double>(chunk_bytes);
    for (int i = 0; i < phase_idx; ++i) {
        const PhaseDesc &ph = plan[std::size_t(i)];
        const int d = topo.dim(ph.dim).size;
        if (ph.op == CollectiveKind::ReduceScatter)
            bytes /= d;
        else if (ph.op == CollectiveKind::AllGather)
            bytes *= d;
    }
    return static_cast<Bytes>(bytes + 0.5);
}

double
planSendVolume(const Topology &topo, const PhasePlan &plan,
               Bytes chunk_bytes, int dim)
{
    double volume = 0;
    for (std::size_t i = 0; i < plan.size(); ++i) {
        const PhaseDesc &ph = plan[i];
        if (ph.dim != dim)
            continue;
        const double entry = static_cast<double>(phaseEntryBytes(
            topo, plan, static_cast<int>(i), chunk_bytes));
        const double d = topo.dim(ph.dim).size;
        switch (ph.op) {
          case CollectiveKind::ReduceScatter:
            volume += entry * (d - 1) / d;
            break;
          case CollectiveKind::AllGather:
            volume += entry * (d - 1);
            break;
          case CollectiveKind::AllReduce:
            volume += 2 * entry * (d - 1) / d;
            break;
          case CollectiveKind::AllToAll:
            volume += entry * (d - 1) / d;
            break;
          case CollectiveKind::None:
            break;
        }
    }
    return volume;
}

std::string
toString(const Topology &topo, const PhasePlan &plan)
{
    std::string out;
    for (std::size_t i = 0; i < plan.size(); ++i) {
        if (i)
            out += " -> ";
        const PhaseDesc &ph = plan[i];
        const char *op = "?";
        switch (ph.op) {
          case CollectiveKind::ReduceScatter: op = "RS"; break;
          case CollectiveKind::AllGather: op = "AG"; break;
          case CollectiveKind::AllReduce: op = "AR"; break;
          case CollectiveKind::AllToAll: op = "A2A"; break;
          case CollectiveKind::None: op = "NOP"; break;
        }
        out += op;
        out += "(" + topo.dim(ph.dim).name + ")";
    }
    return out;
}

} // namespace astra
