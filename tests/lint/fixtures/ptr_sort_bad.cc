// Positive fixture for ptr-sort: comparators over raw pointer values
// produce an address-dependent order that varies run to run.
#include <algorithm>
#include <vector>

struct Chunk
{
    int seq;
};

void
arrange(std::vector<Chunk *> &v)
{
    std::sort(v.begin(), v.end(), // FIRE(ptr-sort)
              [](Chunk *a, Chunk *b) { return a < b; });
    std::stable_sort(v.begin(), v.end(), // FIRE(ptr-sort)
                     [](const Chunk *a, const Chunk *b) { return a > b; });
}
