/**
 * @file
 * FaultPlan parsing/normalization and FaultManager query semantics
 * (docs/faults.md). Pure unit tests — no cluster, no event queue.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/config.hh"
#include "common/logging.hh"
#include "fault/fault.hh"

namespace astra
{
namespace
{

// --- parsing ----------------------------------------------------------

TEST(FaultPlan, ParsesDegradeRule)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(plan.parseRule(
        "degrade link=3 from=100 to=500 factor=0.25", &err))
        << err;
    ASSERT_EQ(plan.windows().size(), 1u);
    const LinkWindow &w = plan.windows()[0];
    EXPECT_EQ(w.link, 3);
    EXPECT_EQ(w.t0, 100u);
    EXPECT_EQ(w.t1, 500u);
    EXPECT_DOUBLE_EQ(w.factor, 0.25);
}

TEST(FaultPlan, ParsesDownRuleWithAliasesAndOpenEnd)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(plan.parseRule("down link=7 t0=50 t1=end", &err)) << err;
    ASSERT_EQ(plan.windows().size(), 1u);
    EXPECT_DOUBLE_EQ(plan.windows()[0].factor, 0.0);
    EXPECT_EQ(plan.windows()[0].t1, FaultPlan::kEnd);
}

TEST(FaultPlan, ParsesStragglerAndDropRules)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(plan.parseRule("straggle node=5 factor=1.5", &err))
        << err;
    ASSERT_TRUE(plan.parseRule("straggler node=2 factor=2", &err))
        << err;
    ASSERT_TRUE(plan.parseRule("drop link=0 every=64 limit=10", &err))
        << err;
    EXPECT_EQ(plan.stragglers().size(), 2u);
    ASSERT_EQ(plan.drops().size(), 1u);
    // Window defaults: the whole run.
    EXPECT_EQ(plan.drops()[0].t0, 0u);
    EXPECT_EQ(plan.drops()[0].t1, FaultPlan::kEnd);
    EXPECT_EQ(plan.drops()[0].limit, 10u);
}

TEST(FaultPlan, RejectsMalformedRules)
{
    const char *bad[] = {
        "",                                        // empty
        "explode link=1 from=0 to=9",              // unknown verb
        "degrade link=1 from=0 to=9",              // missing factor
        "degrade link=1 from=0 to=9 factor=0",     // factor out of range
        "degrade link=1 from=0 to=9 factor=1.5",   // factor out of range
        "degrade link=1 from=9 to=9 factor=0.5",   // empty window
        "degrade link=1 from=end to=end factor=1", // t0 must be finite
        "down link=-1 from=0 to=9",                // negative link
        "down link=1",                             // missing window
        "down link=1 from=0 to=9 from=2",          // duplicate key
        "down link=1 from=0 to=9 bogus=3",         // unknown key
        "straggle node=0 factor=0.5",              // factor < 1
        "drop link=1 every=0",                     // every must be >= 1
        "drop link=1",                             // missing every
    };
    for (const char *rule : bad) {
        FaultPlan plan;
        std::string err;
        EXPECT_FALSE(plan.parseRule(rule, &err)) << rule;
        EXPECT_FALSE(err.empty()) << rule;
        EXPECT_TRUE(plan.empty()) << rule; // plan unchanged on failure
    }
}

TEST(FaultPlan, AddRuleIsFatalOnMalformedRule)
{
    FaultPlan plan;
    EXPECT_THROW(plan.addRule("degrade link=1"), FatalError);
    EXPECT_NO_THROW(plan.addRule("down link=1 from=0 to=10"));
}

TEST(FaultPlan, LoadsFileWithCommentsCrlfAndNoTrailingNewline)
{
    const std::string path = ::testing::TempDir() + "plan_crlf.txt";
    {
        std::ofstream out(path, std::ios::binary);
        out << "# header comment\r\n"
            << "down link=1 from=0 to=10\r\n"
            << "\r\n"
            << "straggle node=0 factor=2"; // no trailing newline
    }
    FaultPlan plan;
    plan.loadFile(path);
    EXPECT_EQ(plan.windows().size(), 1u);
    EXPECT_EQ(plan.stragglers().size(), 1u);
    std::remove(path.c_str());
}

TEST(FaultPlan, LoadFileCollectsEveryBadLineIntoOneError)
{
    const std::string path = ::testing::TempDir() + "plan_bad.txt";
    {
        std::ofstream out(path);
        out << "down link=1 from=0 to=10\n"
            << "explode everything\n"
            << "drop link=2 every=0\n";
    }
    FaultPlan plan;
    try {
        plan.loadFile(path);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("2 bad fault rule(s)"), std::string::npos)
            << what;
        EXPECT_NE(what.find(":2:"), std::string::npos) << what;
        EXPECT_NE(what.find(":3:"), std::string::npos) << what;
    }
    std::remove(path.c_str());
}

TEST(FaultPlan, FromConfigCollectsRuleErrorsAndCopiesRetryPolicy)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    cfg.faultRules = {"down link=0 from=0 to=10"};
    cfg.faultTimeout = 500;
    cfg.faultMaxRetries = 7;
    FaultPlan plan = FaultPlan::fromConfig(cfg);
    EXPECT_EQ(plan.windows().size(), 1u);
    EXPECT_EQ(plan.retryTimeout, 500u);
    EXPECT_EQ(plan.maxRetries, 7);

    cfg.faultRules = {"bogus one", "drop link=1 every=0"};
    try {
        FaultPlan::fromConfig(cfg);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("2 bad fault rule(s)"), std::string::npos)
            << what;
        EXPECT_NE(what.find("fault rule 1"), std::string::npos) << what;
        EXPECT_NE(what.find("fault rule 2"), std::string::npos) << what;
    }
}

// --- normalization ----------------------------------------------------

TEST(FaultPlan, NormalizeMergesOverlappingDownWindows)
{
    FaultPlan plan;
    plan.addRule("down link=2 from=100 to=200");
    plan.addRule("down link=2 from=150 to=300");
    plan.addRule("down link=2 from=300 to=400"); // adjacent
    plan.addRule("down link=3 from=100 to=200"); // other link untouched
    plan.normalize();
    ASSERT_EQ(plan.windows().size(), 2u);
    EXPECT_EQ(plan.windows()[0].link, 2);
    EXPECT_EQ(plan.windows()[0].t0, 100u);
    EXPECT_EQ(plan.windows()[0].t1, 400u);
    EXPECT_EQ(plan.windows()[1].link, 3);
}

TEST(FaultPlan, NormalizeKeepsDegradedWindowsSeparate)
{
    FaultPlan plan;
    plan.addRule("degrade link=1 from=0 to=100 factor=0.5");
    plan.addRule("degrade link=1 from=50 to=150 factor=0.25");
    plan.normalize();
    EXPECT_EQ(plan.windows().size(), 2u);
}

// --- FaultManager queries ---------------------------------------------

TEST(FaultManager, BandwidthFactorIsMinOverCoveringWindows)
{
    FaultPlan plan;
    plan.addRule("degrade link=1 from=100 to=200 factor=0.5");
    plan.addRule("degrade link=1 from=150 to=250 factor=0.25");
    FaultManager fm(std::move(plan));
    EXPECT_DOUBLE_EQ(fm.bandwidthFactor(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(fm.bandwidthFactor(1, 100), 0.5);
    EXPECT_DOUBLE_EQ(fm.bandwidthFactor(1, 175), 0.25);
    EXPECT_DOUBLE_EQ(fm.bandwidthFactor(1, 200), 0.25);
    EXPECT_DOUBLE_EQ(fm.bandwidthFactor(1, 250), 1.0); // t1 exclusive
    EXPECT_DOUBLE_EQ(fm.bandwidthFactor(9, 175), 1.0); // other link
}

TEST(FaultManager, DownUntilAndDownForever)
{
    FaultPlan plan;
    plan.addRule("down link=4 from=100 to=200");
    plan.addRule("down link=5 from=100 to=end");
    FaultManager fm(std::move(plan));
    EXPECT_EQ(fm.downUntil(4, 50), 0u);
    EXPECT_EQ(fm.downUntil(4, 150), 200u);
    EXPECT_DOUBLE_EQ(fm.bandwidthFactor(4, 150), 0.0);
    EXPECT_EQ(fm.downUntil(5, 150), FaultPlan::kEnd);
    EXPECT_FALSE(fm.downForever(4));
    EXPECT_TRUE(fm.downForever(5));
}

TEST(FaultManager, ComputeSlowdownTakesTheLargestFactor)
{
    FaultPlan plan;
    plan.addRule("straggle node=3 factor=1.5");
    plan.addRule("straggle node=3 factor=2.5");
    FaultManager fm(std::move(plan));
    EXPECT_DOUBLE_EQ(fm.computeSlowdown(3), 2.5);
    EXPECT_DOUBLE_EQ(fm.computeSlowdown(0), 1.0);
}

TEST(FaultManager, CountedDropPatternIsDeterministic)
{
    FaultPlan plan;
    plan.addRule("drop link=0 every=4 limit=2");
    FaultManager fm(std::move(plan));
    std::vector<bool> pattern;
    for (int i = 0; i < 16; ++i)
        pattern.push_back(fm.shouldDropPacket(0, Tick(i)));
    // Grants 4 and 8 drop; the limit stops the third.
    const std::vector<bool> expect = {false, false, false, true,
                                      false, false, false, true,
                                      false, false, false, false,
                                      false, false, false, false};
    EXPECT_EQ(pattern, expect);
    EXPECT_EQ(fm.dropsInjected(), 2u);
    // Other links never drop.
    EXPECT_FALSE(fm.shouldDropPacket(1, 0));
}

TEST(FaultManager, DropWindowGatesTheCounter)
{
    FaultPlan plan;
    plan.addRule("drop link=0 every=2 from=10 to=20");
    FaultManager fm(std::move(plan));
    EXPECT_FALSE(fm.shouldDropPacket(0, 5));  // outside: not counted
    EXPECT_FALSE(fm.shouldDropPacket(0, 10)); // seen=1
    EXPECT_TRUE(fm.shouldDropPacket(0, 11));  // seen=2 -> drop
    EXPECT_FALSE(fm.shouldDropPacket(0, 25)); // outside again
}

TEST(FaultManager, PickChannelReplansAroundForeverDownLinks)
{
    // Ring table: dim 0 has channels 0 (links 0,1) and 1 (links 2,3).
    std::map<std::pair<int, int>, std::vector<std::int32_t>> rings;
    rings[{0, 0}] = {0, 1};
    rings[{0, 1}] = {2, 3};

    {
        // No relevant faults: the historical id % channels choice.
        FaultPlan plan;
        plan.addRule("down link=2 from=0 to=100"); // transient only
        FaultManager fm(std::move(plan));
        fm.bindRingChannels(rings);
        EXPECT_EQ(fm.pickChannel(0, 2, 5), 1);
        EXPECT_EQ(fm.pickChannel(0, 2, 6), 0);
    }
    {
        // Channel 1 contains a forever-down link: re-plan onto 0.
        FaultPlan plan;
        plan.addRule("down link=2 from=50 to=end");
        FaultManager fm(std::move(plan));
        fm.bindRingChannels(rings);
        EXPECT_EQ(fm.pickChannel(0, 2, 5), 0);
        EXPECT_EQ(fm.pickChannel(0, 2, 6), 0);
        // Unbound dimension: fall back to id % channels.
        EXPECT_EQ(fm.pickChannel(1, 2, 5), 1);
    }
    {
        // Every channel dead: nowhere to re-plan, keep the fallback.
        FaultPlan plan;
        plan.addRule("down link=0 from=0 to=end");
        plan.addRule("down link=2 from=0 to=end");
        FaultManager fm(std::move(plan));
        fm.bindRingChannels(rings);
        EXPECT_EQ(fm.pickChannel(0, 2, 5), 1);
    }
}

// --- failure reports --------------------------------------------------

TEST(FailureReport, FormatsTextAndJson)
{
    std::vector<FailureRecord> failures(1);
    failures[0].node = 2;
    failures[0].link = 7;
    failures[0].stream = 11;
    failures[0].tick = 1234;
    failures[0].retries = 3;
    failures[0].reason = "send 2 -> 3 lost";

    EXPECT_EQ(formatFailureReport(RunOutcome::Completed, {}), "");
    const std::string text =
        formatFailureReport(RunOutcome::Degraded, failures);
    EXPECT_NE(text.find("outcome: degraded"), std::string::npos);
    EXPECT_NE(text.find("1 failed transfer(s)"), std::string::npos);
    EXPECT_NE(text.find("node 2 link 7 stream 11"), std::string::npos);

    const std::string json =
        failureReportJsonMembers(RunOutcome::Degraded, failures);
    EXPECT_NE(json.find("\"outcome\": \"degraded\""), std::string::npos);
    EXPECT_NE(json.find("\"retries\": 3"), std::string::npos);
    // Raw members ready for MetricRegistry::toJson splicing.
    EXPECT_EQ(json.substr(json.size() - 2), ",\n");
}

} // namespace
} // namespace astra
