// Seeded violation: the bottom layer reaching up into core inverts
// the architecture DAG, and together with core/engine.hh forms an
// include cycle.
#ifndef FIXTURE_COMMON_UTIL_HH
#define FIXTURE_COMMON_UTIL_HH

#include "core/engine.hh" // FIRE(layer-dag)

inline int
utilValue()
{
    return 1;
}

#endif
