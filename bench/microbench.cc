/**
 * @file
 * Simulator micro-benchmarks and design-choice ablations
 * (google-benchmark). Not a paper figure: these quantify the
 * simulator's own costs (events/second) and the sensitivity of the
 * modelled communication time to the system-layer knobs that
 * DESIGN.md calls out (chunking, LSQ concurrency, backend
 * granularity, routing mode).
 *
 * Simulated communication time is reported through the "sim_cycles"
 * counter; wall-clock time measures the simulator itself.
 */

#include <benchmark/benchmark.h>

#include "common/event_queue.hh"
#include "common/units.hh"
#include "core/cluster.hh"

namespace
{

using namespace astra;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        int fired = 0;
        for (int i = 0; i < n; ++i)
            eq.schedule(Tick(i % 64), [&fired] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void
BM_RingAllReduce(benchmark::State &state)
{
    const Bytes bytes = Bytes(state.range(0)) * KiB;
    Tick cycles = 0;
    for (auto _ : state) {
        SimConfig cfg;
        cfg.torus(1, 8, 1);
        Cluster cluster(cfg);
        cycles = cluster.runCollective(CollectiveKind::AllReduce, bytes);
    }
    state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_RingAllReduce)->Arg(64)->Arg(1024)->Arg(8192);

void
BM_BackendGranularity(benchmark::State &state)
{
    // Ablation: analytical vs garnet-lite on the same transfer — the
    // wall-clock gap is the price of packet-level modelling.
    const bool garnet = state.range(0) != 0;
    Tick cycles = 0;
    for (auto _ : state) {
        SimConfig cfg;
        cfg.torus(2, 2, 2);
        cfg.backend = garnet ? NetworkBackend::GarnetLite
                             : NetworkBackend::Analytical;
        Cluster cluster(cfg);
        cycles =
            cluster.runCollective(CollectiveKind::AllReduce, 1 * MiB);
    }
    state.counters["sim_cycles"] = static_cast<double>(cycles);
    state.SetLabel(garnet ? "garnet-lite" : "analytical");
}
BENCHMARK(BM_BackendGranularity)->Arg(0)->Arg(1);

void
BM_ChunkingAblation(benchmark::State &state)
{
    // Design choice #1 (DESIGN.md): chunks pipeline across phases.
    const int splits = static_cast<int>(state.range(0));
    Tick cycles = 0;
    for (auto _ : state) {
        SimConfig cfg;
        cfg.torus(2, 4, 4);
        cfg.algorithm = AlgorithmFlavor::Enhanced;
        cfg.local.bandwidth = 8 * cfg.package.bandwidth;
        Cluster cluster(cfg);
        cycles = cluster.runCollective(CollectiveKind::AllReduce,
                                       8 * MiB, {}, splits);
    }
    state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_ChunkingAblation)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void
BM_LsqConcurrencyAblation(benchmark::State &state)
{
    // Design choice: chunks interleaved per LSQ (Sec. IV-B).
    const int conc = static_cast<int>(state.range(0));
    Tick cycles = 0;
    for (auto _ : state) {
        SimConfig cfg;
        cfg.torus(1, 8, 1);
        cfg.lsqConcurrency = conc;
        Cluster cluster(cfg);
        cycles =
            cluster.runCollective(CollectiveKind::AllReduce, 4 * MiB);
    }
    state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_LsqConcurrencyAblation)->Arg(1)->Arg(2)->Arg(8);

void
BM_RoutingModeAblation(benchmark::State &state)
{
    // Parameter #14: software store-and-forward vs hardware
    // cut-through, visible on the multi-hop all-to-all.
    const bool hardware = state.range(0) != 0;
    Tick cycles = 0;
    for (auto _ : state) {
        SimConfig cfg;
        cfg.torus(1, 8, 1);
        cfg.packetRouting = hardware ? PacketRouting::Hardware
                                     : PacketRouting::Software;
        Cluster cluster(cfg);
        cycles =
            cluster.runCollective(CollectiveKind::AllToAll, 4 * MiB);
    }
    state.counters["sim_cycles"] = static_cast<double>(cycles);
    state.SetLabel(hardware ? "hardware" : "software");
}
BENCHMARK(BM_RoutingModeAblation)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
