#include "compute/systolic.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace astra
{

namespace
{

std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

void
checkShape(const GemmShape &s)
{
    if (s.m < 1 || s.k < 1 || s.n < 1)
        fatal("GEMM dimensions must be positive (%lld x %lld x %lld)",
              static_cast<long long>(s.m), static_cast<long long>(s.k),
              static_cast<long long>(s.n));
}

} // namespace

Tick
systolicComputeCycles(const SystolicParams &p, const GemmShape &s)
{
    checkShape(s);
    const std::int64_t tiles = ceilDiv(s.m, p.rows) * ceilDiv(s.n, p.cols);
    const std::int64_t tile_cost = s.k + p.rows + p.cols - 2;
    return static_cast<Tick>(tiles * tile_cost);
}

Tick
systolicMemoryCycles(const SystolicParams &p, const GemmShape &s)
{
    checkShape(s);
    const double bytes =
        static_cast<double>(s.m * s.k + s.k * s.n + s.m * s.n) *
        p.dtypeBytes;
    return static_cast<Tick>(std::ceil(bytes / p.dramBandwidth));
}

Tick
systolicGemmLatency(const SystolicParams &p, const GemmShape &s)
{
    if (p.clockGhz <= 0)
        fatal("accelerator clock must be positive");
    const Tick accel_cycles = std::max(systolicComputeCycles(p, s),
                                       systolicMemoryCycles(p, s));
    // Convert accelerator cycles to 1 GHz fabric cycles.
    return static_cast<Tick>(
               std::ceil(static_cast<double>(accel_cycles) / p.clockGhz)) +
           p.layerOverhead;
}

} // namespace astra
