/**
 * @file
 * Fig. 11 — asymmetric hierarchical topology, 64 modules as 4x4x4
 * (4 NAMs per NAP, 16 NAPs).
 *
 * Compares, for all-reduce and all-to-all:
 *  - symmetric fabric (local links at inter-package bandwidth) vs.
 *    asymmetric (local links 8x faster — multi-chip packaging);
 *  - the 3-phase baseline algorithm vs. the 4-phase enhanced one
 *    (RS local -> AR vertical -> AR horizontal -> AG local), which
 *    cuts inter-package volume by the local dimension size (4x).
 *
 * Expected shape: asymmetric >> symmetric; enhanced beats baseline on
 * the asymmetric fabric for all-reduce.
 */

#include "bench/support.hh"

using namespace astra;
using namespace astra::bench;

namespace
{

SimConfig
makeConfig(bool asymmetric, AlgorithmFlavor flavor)
{
    SimConfig cfg;
    cfg.torus(4, 4, 4);
    if (!asymmetric) {
        // Symmetric: local links run at inter-package speed.
        Tick lat = cfg.local.latency;
        cfg.local = cfg.package;
        cfg.local.latency = lat;
    } else {
        cfg.local.bandwidth = 8 * cfg.package.bandwidth;
    }
    cfg.algorithm = flavor;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv);
    banner("Fig. 11", "asymmetric hierarchical 4x4x4: symmetric vs "
                      "asymmetric links, baseline vs enhanced");

    const auto sizes = args.quick ? sizeSweep(256 * KiB, 4 * MiB)
                                  : sizeSweep(64 * KiB, 64 * MiB);

    // All-reduce: the headline comparison.
    {
        Table t;
        t.header({"size", "sym_baseline", "asym_baseline(3ph)",
                  "asym_enhanced(4ph)", "enh_speedup"});
        for (Bytes size : sizes) {
            SimConfig sym = makeConfig(false, AlgorithmFlavor::Baseline);
            SimConfig ab = makeConfig(true, AlgorithmFlavor::Baseline);
            SimConfig ae = makeConfig(true, AlgorithmFlavor::Enhanced);
            applyOverrides(args, sym);
            applyOverrides(args, ab);
            applyOverrides(args, ae);
            const Tick ts =
                timeCollective(sym, CollectiveKind::AllReduce, size);
            const Tick tb =
                timeCollective(ab, CollectiveKind::AllReduce, size);
            const Tick te =
                timeCollective(ae, CollectiveKind::AllReduce, size);
            t.row()
                .cell(formatBytes(size))
                .cell(std::uint64_t(ts))
                .cell(std::uint64_t(tb))
                .cell(std::uint64_t(te))
                .cell(double(tb) / double(te), "%.3f");
        }
        std::printf("collective: ALLREDUCE\n");
        emitTable(args, "fig11_allreduce.csv", t);
    }

    // All-to-all: symmetric vs asymmetric.
    {
        Table t;
        t.header({"size", "symmetric", "asymmetric", "speedup"});
        for (Bytes size : sizes) {
            SimConfig sym = makeConfig(false, AlgorithmFlavor::Baseline);
            SimConfig asym = makeConfig(true, AlgorithmFlavor::Baseline);
            applyOverrides(args, sym);
            applyOverrides(args, asym);
            const Tick ts =
                timeCollective(sym, CollectiveKind::AllToAll, size);
            const Tick ta =
                timeCollective(asym, CollectiveKind::AllToAll, size);
            t.row()
                .cell(formatBytes(size))
                .cell(std::uint64_t(ts))
                .cell(std::uint64_t(ta))
                .cell(double(ts) / double(ta), "%.3f");
        }
        std::printf("collective: ALLTOALL\n");
        emitTable(args, "fig11_alltoall.csv", t);
    }
    return 0;
}
