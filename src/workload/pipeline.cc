#include "workload/pipeline.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"

namespace astra
{

PipelineNode::PipelineNode(Sys &sys, const WorkloadSpec &spec,
                           const PipelineOptions &opts,
                           std::function<void()> on_finish)
    : _sys(sys), _spec(spec), _opts(opts), _onFinish(std::move(on_finish))
{
    if (_spec.layers.empty())
        fatal("pipeline workload has no layers");
    if (_opts.numPasses < 1 || _opts.microbatches < 1)
        fatal("pipeline passes/microbatches must be >= 1");
    if (_opts.computeScale <= 0)
        fatal("compute scale must be positive");

    const Topology &topo = _sys.topology();
    _pipeDim = _opts.pipelineDim;
    if (_pipeDim < 0) {
        // Pick the largest inter-package dimension.
        _pipeDim = Topology::kDimLocal;
        for (int d = 0; d < topo.numDims(); ++d) {
            if (topo.dim(d).linkClass == LinkClass::Package &&
                topo.dim(d).size > topo.dim(_pipeDim).size) {
                _pipeDim = d;
            }
        }
        if (topo.dim(_pipeDim).linkClass != LinkClass::Package)
            fatal("no inter-package dimension to pipeline over; pass "
                  "PipelineOptions::pipelineDim");
    }
    if (_pipeDim >= topo.numDims())
        fatal("pipeline dimension %d out of range", _pipeDim);

    _numStages = topo.dim(_pipeDim).size;
    if (_numStages < 2)
        fatal("pipeline dimension must have size >= 2");
    if (static_cast<std::size_t>(_numStages) > _spec.layers.size())
        fatal("more pipeline stages (%d) than layers (%zu)", _numStages,
              _spec.layers.size());

    _stage = topo.rankInGroup(_pipeDim, _sys.id());
    Coord c = topo.coordOf(_sys.id());
    if (_stage > 0) {
        Coord pc = c;
        pc[_pipeDim] = _stage - 1;
        _prev = topo.nodeAt(pc);
    }
    if (_stage < _numStages - 1) {
        Coord nc = c;
        nc[_pipeDim] = _stage + 1;
        _next = topo.nodeAt(nc);
    }
    for (int d = 0; d < topo.numDims(); ++d) {
        if (d != _pipeDim)
            _dataDims.push_back(d);
    }

    // Contiguous layer partition, remainder to the early stages.
    const std::size_t layers = _spec.layers.size();
    const std::size_t base = layers / std::size_t(_numStages);
    const std::size_t rem = layers % std::size_t(_numStages);
    std::size_t lo = 0;
    for (int s = 0; s <= _stage; ++s) {
        const std::size_t len = base + (std::size_t(s) < rem ? 1 : 0);
        _layerLo = lo;
        _layerHi = lo + len;
        lo += len;
    }
    _stats.layers = static_cast<int>(_layerHi - _layerLo);
}

Tick
PipelineNode::stageCompute(CommSlot slot) const
{
    Tick total = 0;
    for (std::size_t l = _layerLo; l < _layerHi; ++l)
        total += _spec.layers[l].compute(slot);
    return static_cast<Tick>(std::ceil(
        static_cast<double>(total) /
        (_opts.computeScale * _opts.microbatches)));
}

Bytes
PipelineNode::stageWgBytes() const
{
    Bytes total = 0;
    for (std::size_t l = _layerLo; l < _layerHi; ++l)
        total += _spec.layers[l].wgCommSize;
    return total;
}

Bytes
PipelineNode::microActivationBytes() const
{
    Bytes act = _opts.activationBytes;
    if (act == 0) {
        // Derive from the boundary layer's declared forward comm.
        const std::size_t boundary = _layerHi - 1;
        act = _spec.layers[boundary].fwdCommSize;
        if (act == 0)
            act = 1 * MiB;
    }
    return std::max<Bytes>(1, act / Bytes(_opts.microbatches));
}

std::uint64_t
PipelineNode::tagFor(int m, bool backward, int boundary) const
{
    // Unique per (pass, microbatch, direction, stage boundary).
    return ((std::uint64_t(_pass) * 4096 + std::uint64_t(m)) * 2 +
            (backward ? 1 : 0)) *
               256 +
           std::uint64_t(boundary);
}

void
PipelineNode::await(NodeId src, std::uint64_t tag,
                    std::function<void()> cont)
{
    const Tick wait_start = _sys.now();
    _sys.expectP2P(src, tag, [this, wait_start, cont = std::move(cont)] {
        _stats.bubble += _sys.now() - wait_start;
        cont();
    });
}

void
PipelineNode::compute(Tick cycles, EventCallback cont)
{
    _stats.compute += cycles;
    if (cycles == 0) {
        cont();
        return;
    }
    _sys.eventQueue().scheduleAfter(cycles, std::move(cont));
}

void
PipelineNode::start()
{
    _startedAt = _sys.now();
    beginPass();
}

void
PipelineNode::beginPass()
{
    forwardMicrobatch(0);
}

void
PipelineNode::forwardMicrobatch(int m)
{
    if (m == _opts.microbatches) {
        backwardMicrobatch(_opts.microbatches - 1);
        return;
    }
    const auto run = [this, m] {
        compute(stageCompute(CommSlot::Forward), [this, m] {
            if (_next != kNodeInvalid) {
                _sys.sendP2P(_next, microActivationBytes(),
                             tagFor(m, false, _stage));
            }
            forwardMicrobatch(m + 1);
        });
    };
    if (_prev != kNodeInvalid) {
        await(_prev, tagFor(m, false, _stage - 1), run);
    } else {
        run();
    }
}

void
PipelineNode::backwardMicrobatch(int m)
{
    if (m < 0) {
        reduceWeights();
        return;
    }
    const auto run = [this, m] {
        const Tick cycles = stageCompute(CommSlot::InputGrad) +
                            stageCompute(CommSlot::WeightGrad);
        compute(cycles, [this, m] {
            if (_prev != kNodeInvalid) {
                _sys.sendP2P(_prev, microActivationBytes(),
                             tagFor(m, true, _stage - 1));
            }
            backwardMicrobatch(m - 1);
        });
    };
    if (_next != kNodeInvalid) {
        await(_next, tagFor(m, true, _stage), run);
    } else {
        run();
    }
}

void
PipelineNode::reduceWeights()
{
    const Bytes bytes = stageWgBytes();
    if (bytes == 0 || _dataDims.empty()) {
        finishPass();
        return;
    }
    bool has_group = false;
    for (int d : _dataDims) {
        if (_sys.topology().dim(d).size > 1)
            has_group = true;
    }
    if (!has_group) {
        finishPass();
        return;
    }
    CollectiveRequest req;
    req.kind = CollectiveKind::AllReduce;
    req.bytes = bytes;
    req.dims = _dataDims;
    req.layer = _stage; // per-stage breakdown
    const Tick issued = _sys.now();
    auto handle = _sys.issueCollective(req);
    handle->onComplete = [this, handle, issued] {
        _stats.commWg += _sys.now() - issued;
        finishPass();
    };
}

void
PipelineNode::finishPass()
{
    ++_pass;
    if (_pass < _opts.numPasses) {
        beginPass();
        return;
    }
    _finished = true;
    _finishedAt = _sys.now();
    if (_onFinish)
        _onFinish();
}

// --- PipelineRun ---------------------------------------------------------

PipelineRun::PipelineRun(Cluster &cluster, WorkloadSpec spec,
                         PipelineOptions opts)
    : _cluster(cluster), _spec(std::move(spec))
{
    _unfinished = cluster.numNodes();
    _nodes.reserve(std::size_t(cluster.numNodes()));
    for (NodeId n = 0; n < cluster.numNodes(); ++n) {
        _nodes.push_back(std::make_unique<PipelineNode>(
            cluster.node(n), _spec, opts, [this] { --_unfinished; }));
    }
}

Tick
PipelineRun::run()
{
    for (auto &n : _nodes)
        n->start();
    _cluster.run();
    if (_unfinished != 0)
        fatal("%d pipeline nodes did not finish (deadlock?)",
              _unfinished);
    _makespan = 0;
    for (auto &n : _nodes)
        _makespan = std::max(_makespan, n->totalTime());
    return _makespan;
}

const StageStats &
PipelineRun::stage(int s) const
{
    for (const auto &n : _nodes) {
        if (n->stage() == s)
            return n->stats();
    }
    fatal("no node holds stage %d", s);
    return _nodes.front()->stats(); // unreachable
}

double
PipelineRun::bubbleRatio() const
{
    if (_makespan == 0)
        return 0;
    double total = 0;
    for (int s = 0; s < numStages(); ++s)
        total += static_cast<double>(stage(s).bubble);
    return total / (static_cast<double>(_makespan) * numStages());
}

} // namespace astra
