// Deliberate violations: locals read after being moved-from.
// Fixtures are lexed, never compiled.

void
straightLine()
{
    auto buf = makeBuffer();
    auto sink = std::move(buf);
    consume(buf); // FIRE(use-after-move)
}

void
movedOnOnePath(bool flip)
{
    auto plan = makePlan();
    if (flip)
        enqueue(std::move(plan));
    apply(plan); // FIRE(use-after-move)
}
