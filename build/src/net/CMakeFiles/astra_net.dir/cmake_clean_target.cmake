file(REMOVE_RECURSE
  "libastra_net.a"
)
