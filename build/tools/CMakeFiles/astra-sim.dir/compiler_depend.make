# Empty compiler generated dependencies file for astra-sim.
# This may be replaced when dependencies are built.
