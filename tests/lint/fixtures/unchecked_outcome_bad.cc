// Deliberate violations: full-statement calls discarding a must-use
// result type.

// astra-lint: must-use
enum class ParseStatus
{
    kOk,
    kFailed,
};

ParseStatus
parseHeader(int x)
{
    if (x > 0)
        return ParseStatus::kOk;
    return ParseStatus::kFailed;
}

struct Loader
{
    ParseStatus
    load(int x)
    {
        return parseHeader(x);
    }
};

void
dropsFreeCall()
{
    parseHeader(3); // FIRE(unchecked-outcome)
}

void
dropsMemberCall(Loader &ld)
{
    ld.load(7); // FIRE(unchecked-outcome)
}
