/**
 * @file
 * astra-lint test suite (docs/static-analysis.md): lexer units, the
 * fixture corpus under tests/lint/fixtures/ (one positive and one
 * negative file per rule — positives declare their expected findings
 * inline with `FIRE(rule-id)` markers, asserted by exact rule-id,
 * file and line), the layering mini-trees, and a clean run over the
 * real src/tools/tests trees with the shipped allowlist.
 *
 * ASTRA_SOURCE_DIR is injected by tests/CMakeLists.txt.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/analyzer.hh"
#include "lint/include_graph.hh"
#include "lint/lexer.hh"
#include "tests/support/json_lite.hh"

namespace astra::lint
{
namespace
{

const std::string kRoot = ASTRA_SOURCE_DIR;
const std::string kFixtures = "tests/lint/fixtures/";

using Finding = std::pair<int, std::string>; // (line, rule)

/** The deduplicated (line, rule) set of @p diags. */
std::set<Finding>
findingSet(const std::vector<Diagnostic> &diags)
{
    std::set<Finding> out;
    for (const Diagnostic &d : diags)
        out.insert({d.line, d.rule});
    return out;
}

/** Expected findings: every `FIRE(rule-id)` marker in @p relpath. */
std::set<Finding>
expectedFindings(const std::string &relpath)
{
    std::ifstream in(kRoot + "/" + relpath);
    EXPECT_TRUE(in.good()) << relpath;
    std::set<Finding> out;
    std::regex marker("FIRE\\(([a-z-]+)\\)");
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        auto begin = std::sregex_iterator(line.begin(), line.end(), marker);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            out.insert({lineno, (*it)[1].str()});
    }
    return out;
}

/** Analyze fixture files in-process, without any allowlist. */
std::vector<Diagnostic>
analyzeFixtures(const std::vector<std::string> &files, bool strict = false)
{
    LintOptions opts;
    opts.root = kRoot;
    opts.strictSuppressions = strict;
    return analyzeFiles(opts, files);
}

/** Positive fixture: diagnostics must equal the FIRE markers exactly. */
void
expectMarkersMatch(const std::string &file,
                   const std::vector<std::string> &together = {},
                   bool strict = false)
{
    std::vector<std::string> files = together;
    files.push_back(kFixtures + file);
    std::vector<Diagnostic> diags = analyzeFixtures(files, strict);
    for (const Diagnostic &d : diags)
        EXPECT_EQ(d.file, kFixtures + file) << d.rule;
    EXPECT_EQ(findingSet(diags), expectedFindings(kFixtures + file))
        << "fixture " << file;
    EXPECT_FALSE(expectedFindings(kFixtures + file).empty())
        << "positive fixture " << file << " declares no FIRE markers";
}

/** Negative fixture: zero diagnostics. */
void
expectClean(const std::string &file, bool strict = false)
{
    std::vector<Diagnostic> diags =
        analyzeFixtures({kFixtures + file}, strict);
    EXPECT_TRUE(diags.empty())
        << "fixture " << file << " reported:\n" << renderText(diags);
}

// ---- lexer units -----------------------------------------------------

TEST(LintLexer, SkipsCommentsAndStrings)
{
    LexedFile f = lexSource("t.cc",
                            "int a; // float rand() throw\n"
                            "/* new Foo() */ const char *s = \"float\";\n");
    for (const Token &t : f.tokens) {
        EXPECT_NE(t.text, "float");
        EXPECT_NE(t.text, "rand");
        EXPECT_NE(t.text, "throw");
        EXPECT_NE(t.text, "new");
        EXPECT_NE(t.text, "Foo");
    }
    EXPECT_TRUE(f.errors.empty());
}

TEST(LintLexer, RawStringsAreOpaque)
{
    LexedFile f = lexSource(
        "t.cc", "const char *s = R\"x(float \" rand() )\" )x\"; int z;\n");
    bool saw_z = false;
    for (const Token &t : f.tokens) {
        EXPECT_NE(t.text, "float");
        EXPECT_NE(t.text, "rand");
        saw_z = saw_z || t.text == "z";
    }
    EXPECT_TRUE(saw_z); // lexing resumed after the raw string
    EXPECT_TRUE(f.errors.empty());
}

TEST(LintLexer, RecordsIncludesWithLines)
{
    LexedFile f = lexSource("t.cc",
                            "#include <vector>\n"
                            "#include \"common/types.hh\"\n");
    ASSERT_EQ(f.includes.size(), 2u);
    EXPECT_TRUE(f.includes[0].angled);
    EXPECT_EQ(f.includes[0].target, "vector");
    EXPECT_EQ(f.includes[0].line, 1);
    EXPECT_FALSE(f.includes[1].angled);
    EXPECT_EQ(f.includes[1].target, "common/types.hh");
    EXPECT_EQ(f.includes[1].line, 2);
}

TEST(LintLexer, ParsesSuppressionMarks)
{
    LexedFile f = lexSource(
        "t.cc",
        "int a; // NOLINT\n"
        "int b; // astra-lint: allow(no-float, unordered-iter)\n"
        "int c;\n");
    ASSERT_TRUE(f.marks.count(1));
    EXPECT_TRUE(f.marks.at(1).nolint);
    ASSERT_TRUE(f.marks.count(2));
    EXPECT_TRUE(f.marks.at(2).allowed.count("no-float"));
    EXPECT_TRUE(f.marks.at(2).allowed.count("unordered-iter"));
    EXPECT_FALSE(f.marks.count(3));
}

TEST(LintLexer, ParsesFileTags)
{
    LexedFile f = lexSource(
        "t.cc",
        "// astra-lint: allocator-tu (slab implementation)\n"
        "int a; // astra-lint: allow(no-float)\n"
        "// plain prose mentioning astra-lint: nothing more\n");
    EXPECT_TRUE(f.fileTags.count("allocator-tu"));
    // allow(...) lists are line marks, never file tags.
    EXPECT_FALSE(f.fileTags.count("allow"));
    // Prose after the colon still yields a word ("nothing") — tags are
    // cheap declarations, not validated identifiers — but only exact
    // matches mean anything to the rules.
    EXPECT_FALSE(f.fileTags.count("prose"));
    ASSERT_TRUE(f.marks.count(2));
    EXPECT_TRUE(f.marks.at(2).allowed.count("no-float"));
}

TEST(LintLexer, SplicesLinesInsideTokens)
{
    // Translation phase 2: `flo\<newline>at` is the single token
    // `float`, exactly what a determined contributor would write to
    // sneak a float past a byte-oriented grep.
    LexedFile f = lexSource("t.cc", "flo\\\nat x = 1;\n");
    ASSERT_FALSE(f.tokens.empty());
    EXPECT_EQ(f.tokens[0].text, "float");
    EXPECT_EQ(f.tokens[0].line, 1);
    EXPECT_TRUE(f.errors.empty());
}

TEST(LintLexer, SplicedCommentSwallowsNextLine)
{
    // A `//` comment ending in a backslash continues onto the next
    // physical line, so the `float` below never becomes a token.
    LexedFile f = lexSource("t.cc", "int a; // spliced \\\nfloat b;\nint c;\n");
    for (const Token &t : f.tokens)
        EXPECT_NE(t.text, "float");
    bool saw_c = false;
    for (const Token &t : f.tokens)
        saw_c = saw_c || t.text == "c";
    EXPECT_TRUE(saw_c);
}

TEST(LintLexer, RawStringsDoNotSplice)
{
    // Inside a raw string a backslash-newline is literal content, not
    // a splice: the `)x"` terminator on the next line must still be
    // found, and lexing resumes after it.
    LexedFile f =
        lexSource("t.cc", "const char *s = R\"x(a\\\nb)x\"; int z;\n");
    EXPECT_TRUE(f.errors.empty())
        << (f.errors.empty() ? "" : f.errors[0].what);
    bool saw_z = false;
    for (const Token &t : f.tokens)
        saw_z = saw_z || t.text == "z";
    EXPECT_TRUE(saw_z);
}

TEST(LintLexer, RawStringDelimiterValidated)
{
    // A d-char-seq may not contain spaces (or parens/backslash) and is
    // capped at 16 characters; both malformations are reported instead
    // of silently desynchronizing the lexer.
    LexedFile bad_space = lexSource("t.cc", "auto s = R\"a b(x)a b\";\n");
    EXPECT_FALSE(bad_space.errors.empty());
    LexedFile bad_long = lexSource(
        "t.cc", "auto s = R\"abcdefghijklmnopq(x)abcdefghijklmnopq\";\n");
    EXPECT_FALSE(bad_long.errors.empty());
    LexedFile unterminated = lexSource("t.cc", "auto s = R\"x(never ends\n");
    EXPECT_FALSE(unterminated.errors.empty());
}

TEST(LintLexer, RecordsDirectiveSpans)
{
    // `#define` bodies are tokenized (rules still see them) but their
    // physical-line spans — splice continuations included — are
    // recorded so the symbol indexer can skip the non-declarations.
    LexedFile f = lexSource("t.cc",
                            "#define ACC(x) \\\n    ((x) + 1)\n"
                            "#pragma once\n"
                            "#include <vector>\n"
                            "int g = 0;\n");
    ASSERT_EQ(f.directiveSpans.size(), 2u);
    EXPECT_EQ(f.directiveSpans[0].first, 1);
    EXPECT_GE(f.directiveSpans[0].second, 2);
    EXPECT_EQ(f.directiveSpans[1].first, 3);
    ASSERT_EQ(f.includes.size(), 1u); // #include is its own channel
}

TEST(LintLexer, ParsesConcurrencyAnnotations)
{
    LexedFile f = lexSource(
        "t.cc",
        "int a; // astra-lint: guarded-by(g_lock)\n"
        "// astra-lint: thread-confined(joined before return)\n"
        "int b;\n");
    ASSERT_TRUE(f.marks.count(1));
    EXPECT_EQ(f.marks.at(1).guardedBy, "g_lock");
    ASSERT_TRUE(f.marks.count(2));
    EXPECT_TRUE(f.marks.at(2).threadConfined);
    EXPECT_FALSE(f.marks.count(3));
}

TEST(LintLexer, ParsesMustUseAnnotation)
{
    LexedFile f = lexSource("t.cc",
                            "// astra-lint: must-use\n"
                            "enum class Outcome { kOk, kBad };\n"
                            "// astra-lint: must-used-not-a-mark\n"
                            "int a;\n");
    ASSERT_TRUE(f.marks.count(1));
    EXPECT_TRUE(f.marks.at(1).mustUse);
    // `must-use` is a line mark, not a file tag.
    EXPECT_FALSE(f.fileTags.count("must-use"));
    // Longer words sharing the prefix are ordinary (meaningless) tags.
    if (f.marks.count(3)) {
        EXPECT_FALSE(f.marks.at(3).mustUse);
    }
}

TEST(LintLexer, TracksPositions)
{
    LexedFile f = lexSource("t.cc", "int a;\n  long b;\n");
    ASSERT_GE(f.tokens.size(), 5u);
    EXPECT_EQ(f.tokens[0].text, "int");
    EXPECT_EQ(f.tokens[0].line, 1);
    EXPECT_EQ(f.tokens[0].col, 1);
    EXPECT_EQ(f.tokens[3].text, "long");
    EXPECT_EQ(f.tokens[3].line, 2);
    EXPECT_EQ(f.tokens[3].col, 3);
}

// ---- rule registry ---------------------------------------------------

TEST(LintRules, RegistryKnowsEveryRule)
{
    EXPECT_TRUE(knownRule("no-float"));
    EXPECT_TRUE(knownRule("layer-dag"));
    EXPECT_TRUE(knownRule("allocator-tu"));
    EXPECT_TRUE(knownRule("shared-state"));
    EXPECT_TRUE(knownRule("unresolved-mutex"));
    EXPECT_TRUE(knownRule("thread-capture"));
    EXPECT_TRUE(knownRule("hot-path-alloc"));
    EXPECT_TRUE(knownRule("stale-suppression"));
    EXPECT_TRUE(knownRule("use-after-move"));
    EXPECT_TRUE(knownRule("lock-across-wait"));
    EXPECT_TRUE(knownRule("unchecked-outcome"));
    EXPECT_TRUE(knownRule("signal-unsafe-transitive"));
    EXPECT_FALSE(knownRule("no-such-rule"));
    EXPECT_GE(allRules().size(), 23u);
}

// ---- symbol index ----------------------------------------------------

TEST(LintSymbols, IndexesVariableScopesAndTraits)
{
    LexedFile f = lexSource("t.cc",
                            "#include <atomic>\n"
                            "#include <mutex>\n"
                            "int g_plain = 0;\n"
                            "std::atomic<int> g_atomic{0};\n"
                            "std::mutex g_lock;\n"
                            "struct S { static int s_count; int _m; };\n"
                            "int f() { static int s_local = 1;"
                            " int autovar = 2; return s_local + autovar; }\n");
    SymbolIndex idx = buildSymbolIndex({f});
    auto find = [&](const std::string &name) -> const VarDecl * {
        for (const VarDecl &v : idx.vars)
            if (v.name == name)
                return &v;
        return nullptr;
    };
    ASSERT_NE(find("g_plain"), nullptr);
    EXPECT_EQ(find("g_plain")->scope, VarScope::kNamespace);
    EXPECT_FALSE(find("g_plain")->isAtomic);
    ASSERT_NE(find("g_atomic"), nullptr);
    EXPECT_TRUE(find("g_atomic")->isAtomic);
    ASSERT_NE(find("g_lock"), nullptr);
    EXPECT_TRUE(find("g_lock")->isSync);
    EXPECT_TRUE(idx.mutexNames.count("g_lock"));
    ASSERT_NE(find("s_count"), nullptr);
    EXPECT_EQ(find("s_count")->scope, VarScope::kClassStatic);
    ASSERT_NE(find("_m"), nullptr);
    EXPECT_EQ(find("_m")->scope, VarScope::kClassMember);
    ASSERT_NE(find("s_local"), nullptr);
    EXPECT_EQ(find("s_local")->scope, VarScope::kLocalStatic);
    EXPECT_EQ(find("autovar"), nullptr); // automatic storage not indexed
}

TEST(LintSymbols, FunctionExtentsCarryNamesAndBodies)
{
    LexedFile f = lexSource("t.cc",
                            "RunOutcome\n"
                            "outcome(int x)\n"
                            "{\n"
                            "    return decide(x);\n"
                            "}\n"
                            "static const Plan &Cluster::plan() const\n"
                            "{\n"
                            "    return _plan;\n"
                            "}\n");
    SymbolIndex idx = buildSymbolIndex({f});
    ASSERT_GE(idx.functions.size(), 2u);
    const FunctionExtent &fe0 = idx.functions[0];
    EXPECT_EQ(fe0.name, "outcome");
    EXPECT_EQ(fe0.returnType, "RunOutcome");
    ASSERT_TRUE(fe0.hasBody);
    EXPECT_EQ(f.tokens[fe0.bodyBegin].text, "{");
    EXPECT_EQ(f.tokens[fe0.bodyEnd].text, "}");
    EXPECT_LT(fe0.bodyBegin, fe0.bodyEnd);
    const FunctionExtent &fe1 = idx.functions[1];
    EXPECT_EQ(fe1.name, "plan");
    EXPECT_TRUE(fe1.hasBody);
}

TEST(LintSymbols, MustUseTypesCollectAnnotatedHeads)
{
    LexedFile f = lexSource("t.cc",
                            "// astra-lint: must-use\n"
                            "enum class ParseStatus { kOk, kBad };\n"
                            "// astra-lint: must-use\n"
                            "struct Outcome { int code; };\n"
                            "enum class Plain { kA };\n");
    SymbolIndex idx = buildSymbolIndex({f});
    EXPECT_TRUE(idx.mustUseTypes.count("ParseStatus"));
    EXPECT_TRUE(idx.mustUseTypes.count("Outcome"));
    EXPECT_FALSE(idx.mustUseTypes.count("Plain"));
}

TEST(LintSymbols, FunctionExtentsCarryThreadConfinement)
{
    LexedFile f = lexSource(
        "t.cc",
        "// astra-lint: thread-confined(joins before return)\n"
        "void confined() {\n"
        "    int x = 0;\n"
        "    (void)x;\n"
        "}\n"
        "void open() {\n"
        "    int y = 0;\n"
        "    (void)y;\n"
        "}\n");
    SymbolIndex idx = buildSymbolIndex({f});
    EXPECT_TRUE(idx.threadConfinedAt("t.cc", 3));
    EXPECT_FALSE(idx.threadConfinedAt("t.cc", 7));
}

// ---- fixture corpus: one positive + one negative per rule ------------

TEST(LintFixtures, NoRand)
{
    expectMarkersMatch("no_rand_bad.cc");
    expectClean("no_rand_ok.cc");
}

TEST(LintFixtures, NoWallClock)
{
    expectMarkersMatch("no_wall_clock_bad.cc");
    expectClean("no_wall_clock_ok.cc");
}

TEST(LintFixtures, NoFloat)
{
    expectMarkersMatch("no_float_bad.cc");
    expectClean("no_float_ok.cc");
}

TEST(LintFixtures, NoNakedNew)
{
    expectMarkersMatch("no_naked_new_bad.cc");
    expectClean("no_naked_new_ok.cc");
}

TEST(LintFixtures, AllocatorTu)
{
    expectMarkersMatch("allocator_tu_bad.cc");
    expectClean("allocator_tu_ok.cc");
}

TEST(LintFixtures, NoThrow)
{
    expectMarkersMatch("no_throw_bad.cc");
    expectClean("no_throw_ok.cc");
}

TEST(LintFixtures, NoAbort)
{
    expectMarkersMatch("no_abort_bad.cc");
    expectClean("no_abort_ok.cc");
}

TEST(LintFixtures, UnorderedIter)
{
    expectMarkersMatch("unordered_iter_bad.cc");
    expectClean("unordered_iter_ok.cc");
}

TEST(LintFixtures, UnorderedIterAcrossSiblingHeader)
{
    // The .cc iterates a member its sibling .hh declares; the header
    // itself is clean.
    expectMarkersMatch("member_iter.cc", {kFixtures + "member_iter.hh"});
}

TEST(LintFixtures, PtrKeyOrder)
{
    expectMarkersMatch("ptr_key_order_bad.cc");
    expectClean("ptr_key_order_ok.cc");
}

TEST(LintFixtures, PtrSort)
{
    expectMarkersMatch("ptr_sort_bad.cc");
    expectClean("ptr_sort_ok.cc");
}

TEST(LintFixtures, ParseError)
{
    expectMarkersMatch("parse_error_bad.cc");
}

TEST(LintFixtures, SharedState)
{
    expectMarkersMatch("shared_state_bad.cc");
    expectClean("shared_state_ok.cc");
}

TEST(LintFixtures, UnresolvedMutex)
{
    expectMarkersMatch("unresolved_mutex_bad.cc");
    expectClean("unresolved_mutex_ok.cc");
}

TEST(LintFixtures, ThreadCapture)
{
    expectMarkersMatch("thread_capture_bad.cc");
    expectClean("thread_capture_ok.cc");
}

TEST(LintFixtures, SignalUnsafe)
{
    expectMarkersMatch("signal_unsafe_bad.cc");
    expectClean("signal_unsafe_ok.cc");
}

TEST(LintFixtures, HotPathAlloc)
{
    expectMarkersMatch("hot_path_alloc_bad.cc");
    expectClean("hot_path_alloc_ok.cc");
}

TEST(LintFixtures, UseAfterMove)
{
    expectMarkersMatch("use_after_move_bad.cc");
    expectClean("use_after_move_ok.cc");
}

TEST(LintFixtures, LockAcrossWait)
{
    expectMarkersMatch("lock_across_wait_bad.cc");
    expectClean("lock_across_wait_ok.cc");
}

TEST(LintFixtures, UncheckedOutcome)
{
    expectMarkersMatch("unchecked_outcome_bad.cc");
    expectClean("unchecked_outcome_ok.cc");
}

TEST(LintFixtures, SignalUnsafeTransitive)
{
    expectMarkersMatch("signal_unsafe_transitive_bad.cc");
    expectClean("signal_unsafe_transitive_ok.cc");
}

TEST(LintFixtures, StaleSuppression)
{
    // Stale detection only runs under strict suppressions, as CI does.
    expectMarkersMatch("stale_suppression_bad.cc", {}, /*strict=*/true);
    expectClean("stale_suppression_ok.cc", /*strict=*/true);
    // Without strict mode the same dead allows pass silently.
    expectClean("stale_suppression_bad.cc", /*strict=*/false);
}

// ---- layering mini-trees ---------------------------------------------

TEST(LintLayering, SeededViolationsFire)
{
    LintOptions opts;
    opts.root = kRoot + "/tests/lint/fixtures/layering/bad";
    std::vector<Diagnostic> diags =
        analyzeFiles(opts, collectFiles(opts, {"src"}));

    std::set<std::string> files_with_markers = {
        "src/common/util.hh", "src/core/engine.hh", "src/net/wire.hh"};
    std::set<Finding> got;
    for (const Diagnostic &d : diags)
        got.insert({d.line, d.rule});
    std::set<Finding> want;
    for (const std::string &f : files_with_markers) {
        std::ifstream in(opts.root + "/" + f);
        std::regex marker("FIRE\\(([a-z-]+)\\)");
        std::string line;
        int lineno = 0;
        while (std::getline(in, line)) {
            ++lineno;
            auto begin =
                std::sregex_iterator(line.begin(), line.end(), marker);
            for (auto it = begin; it != std::sregex_iterator(); ++it)
                want.insert({lineno, (*it)[1].str()});
        }
    }
    EXPECT_EQ(got, want) << renderText(diags);
}

TEST(LintLayering, RealShapedTreePasses)
{
    LintOptions opts;
    opts.root = kRoot + "/tests/lint/fixtures/layering/good";
    std::vector<Diagnostic> diags =
        analyzeFiles(opts, collectFiles(opts, {"src"}));
    EXPECT_TRUE(diags.empty()) << renderText(diags);
}

TEST(LintLayering, RankTableMatchesDesign)
{
    EXPECT_EQ(layerRank("src/common/json.hh"), 0);
    EXPECT_EQ(layerRank("src/fault/fault.hh"),
              layerRank("src/compute/systolic.hh"));
    EXPECT_EQ(layerRank("src/net/fabric.hh"),
              layerRank("src/topo/topology.hh"));
    EXPECT_LT(layerRank("src/collective/algorithm.hh"),
              layerRank("src/core/sys.hh"));
    EXPECT_LT(layerRank("src/core/sys.hh"),
              layerRank("src/workload/trainer.hh"));
    EXPECT_GT(layerRank("tools/astra_sim.cc"),
              layerRank("src/explore/sweep_runner.hh"));
    EXPECT_EQ(layerName("src/core/sys.hh"), "core");
    EXPECT_EQ(layerName("tests/lint/lint_test.cc"), "tests");
}

// ---- selection, allowlist, rendering ---------------------------------

TEST(LintConfig, RuleSelectionFilters)
{
    LintOptions opts;
    opts.root = kRoot;
    opts.rules = {"no-float"};
    std::vector<Diagnostic> diags =
        analyzeFiles(opts, {kFixtures + "no_rand_bad.cc"});
    EXPECT_TRUE(diags.empty()) << renderText(diags);
    diags = analyzeFiles(opts, {kFixtures + "no_float_bad.cc"});
    EXPECT_FALSE(diags.empty());
    for (const Diagnostic &d : diags)
        EXPECT_EQ(d.rule, "no-float");
}

TEST(LintConfig, AllowlistSuppressesByPath)
{
    LintOptions opts;
    opts.root = kRoot;
    opts.allow.push_back(AllowEntry{"no-rand", "no_rand_bad\\.cc$"});
    std::vector<Diagnostic> diags =
        analyzeFiles(opts, {kFixtures + "no_rand_bad.cc"});
    EXPECT_TRUE(diags.empty()) << renderText(diags);
}

TEST(LintConfig, ShippedAllowlistParses)
{
    LintOptions opts;
    std::string err;
    EXPECT_TRUE(loadAllowlist(kRoot + "/tools/lint-allow.conf", opts, &err))
        << err;
    EXPECT_FALSE(opts.allow.empty());
}

TEST(LintConfig, BadAllowlistRejected)
{
    LintOptions opts;
    std::string err;
    std::string bad = testing::TempDir() + "/bad_allow.conf";
    std::ofstream(bad) << "definitely-not-a-rule .*\n";
    EXPECT_FALSE(loadAllowlist(bad, opts, &err));
    EXPECT_NE(err.find("unknown rule"), std::string::npos) << err;
}

TEST(LintRender, JsonIsValidAndComplete)
{
    LintOptions opts;
    opts.root = kRoot;
    std::vector<Diagnostic> diags =
        analyzeFiles(opts, {kFixtures + "no_float_bad.cc"});
    ASSERT_FALSE(diags.empty());
    std::string json = renderJson(diags);
    EXPECT_TRUE(astra::testsupport::jsonValid(json)) << json;
    EXPECT_NE(json.find("\"rule\": \"no-float\""), std::string::npos);
    EXPECT_TRUE(astra::testsupport::jsonValid(renderJson({})));
}

TEST(LintRender, FixableSummarizesPerRule)
{
    LintOptions opts;
    opts.root = kRoot;
    std::vector<Diagnostic> diags =
        analyzeFiles(opts, {kFixtures + "no_float_bad.cc"});
    std::string summary = renderFixable(diags);
    EXPECT_NE(summary.find("[no-float]"), std::string::npos);
    EXPECT_NE(summary.find("fix:"), std::string::npos);
    EXPECT_TRUE(renderFixable({}).empty());
}

TEST(LintRender, SarifIsValidAndCarriesRuleCatalog)
{
    LintOptions opts;
    opts.root = kRoot;
    std::vector<Diagnostic> diags =
        analyzeFiles(opts, {kFixtures + "no_float_bad.cc"});
    ASSERT_FALSE(diags.empty());
    std::string sarif = renderSarif(diags);
    EXPECT_TRUE(astra::testsupport::jsonValid(sarif)) << sarif;
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"name\": \"astra-lint\""), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"no-float\""), std::string::npos);
    // The full rule catalog ships in every log, findings or not.
    for (const RuleInfo &r : allRules())
        EXPECT_NE(sarif.find("\"id\": \"" + r.id + "\""),
                  std::string::npos)
            << r.id;
    EXPECT_TRUE(astra::testsupport::jsonValid(renderSarif({})));
}

TEST(LintBaseline, KeyIgnoresPosition)
{
    // Baseline keys deliberately omit line/col so unrelated edits that
    // shift a pre-existing finding do not resurrect it.
    Diagnostic a{"src/a.cc", 10, 3, "no-float", "float here"};
    Diagnostic b{"src/a.cc", 99, 1, "no-float", "float here"};
    Diagnostic c{"src/b.cc", 10, 3, "no-float", "float here"};
    EXPECT_EQ(baselineKey(a), baselineKey(b));
    EXPECT_NE(baselineKey(a), baselineKey(c));
}

TEST(LintBaseline, RoundTripsThroughFile)
{
    LintOptions opts;
    opts.root = kRoot;
    std::vector<Diagnostic> diags =
        analyzeFiles(opts, {kFixtures + "no_float_bad.cc"});
    ASSERT_FALSE(diags.empty());
    std::string path = testing::TempDir() + "/lint_baseline.txt";
    std::ofstream(path) << renderBaselineFile(diags);
    std::set<std::string> keys;
    std::string err;
    ASSERT_TRUE(loadBaseline(path, keys, &err)) << err;
    EXPECT_FALSE(keys.empty());
    EXPECT_LE(keys.size(), diags.size()); // keys dedupe by design
    for (const Diagnostic &d : diags)
        EXPECT_TRUE(keys.count(baselineKey(d))) << baselineKey(d);
    std::set<std::string> missing;
    EXPECT_FALSE(loadBaseline(path + ".nope", missing, &err));
}

// ---- parallel analysis -----------------------------------------------

TEST(LintThreads, DiagnosticsIdenticalAtAnyWorkerCount)
{
    // --threads must never change what is reported or in what order:
    // per-file slots are merged in file order and the final sort is
    // total, so the diagnostic streams are equal element-for-element.
    LintOptions serial;
    serial.root = kRoot;
    serial.skipFixtureDirs = false;
    std::vector<std::string> files =
        collectFiles(serial, {"tests/lint/fixtures"});
    ASSERT_GT(files.size(), 20u);
    std::vector<Diagnostic> one = analyzeFiles(serial, files);
    ASSERT_FALSE(one.empty());

    LintOptions parallel = serial;
    parallel.threads = 4;
    std::vector<Diagnostic> four = analyzeFiles(parallel, files);
    ASSERT_EQ(one.size(), four.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].file, four[i].file);
        EXPECT_EQ(one[i].line, four[i].line);
        EXPECT_EQ(one[i].col, four[i].col);
        EXPECT_EQ(one[i].rule, four[i].rule);
        EXPECT_EQ(one[i].message, four[i].message);
    }
}

// ---- the real tree ---------------------------------------------------

TEST(LintRealTree, SrcToolsTestsAreClean)
{
    LintOptions opts;
    opts.root = kRoot;
    // Strict suppressions, as CI runs: every inline allow and every
    // allowlist entry must absorb at least one finding.
    opts.strictSuppressions = true;
    std::string err;
    ASSERT_TRUE(loadAllowlist(kRoot + "/tools/lint-allow.conf", opts, &err))
        << err;
    std::vector<std::string> files =
        collectFiles(opts, {"src", "tools", "tests"});
    EXPECT_GT(files.size(), 100u); // the walk really found the tree
    for (const std::string &f : files)
        EXPECT_EQ(f.find("lint/fixtures/"), std::string::npos) << f;
    std::vector<Diagnostic> diags = analyzeFiles(opts, files);
    EXPECT_TRUE(diags.empty()) << renderText(diags);
}

} // namespace
} // namespace astra::lint
