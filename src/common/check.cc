#include "common/check.hh"

#include <atomic>
#include <cstdarg>

#include "common/logging.hh"

namespace astra
{

namespace
{

// Builds configured with the ASTRA_VALIDATE CMake option run every
// checker by default; release builds pay nothing unless --validate is
// passed. Atomic: sweep workers read the level while the CLI/tests on
// another thread may have set it.
#ifdef ASTRA_VALIDATE
std::atomic<int> gLevel{static_cast<int>(ValidateLevel::kFull)};
#else
std::atomic<int> gLevel{static_cast<int>(ValidateLevel::kOff)};
#endif

} // namespace

void
setValidationLevel(ValidateLevel level)
{
    gLevel = static_cast<int>(level);
}

ValidateLevel
validationLevel()
{
    return static_cast<ValidateLevel>(gLevel.load());
}

bool
validationAtLeast(ValidateLevel level)
{
    return gLevel.load() >= static_cast<int>(level);
}

ValidateLevel
parseValidateLevel(const std::string &s)
{
    if (s.empty() || s == "full" || s == "2")
        return ValidateLevel::kFull;
    if (s == "basic" || s == "1")
        return ValidateLevel::kBasic;
    if (s == "off" || s == "0")
        return ValidateLevel::kOff;
    fatal("unknown validation level '%s' (off/basic/full)", s.c_str());
    return ValidateLevel::kOff;
}

const char *
toString(ValidateLevel level)
{
    switch (level) {
      case ValidateLevel::kOff: return "off";
      case ValidateLevel::kBasic: return "basic";
      case ValidateLevel::kFull: return "full";
    }
    return "?";
}

namespace detail
{

void
checkFailed(const char *file, int line, const char *expr,
            const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    fatal("%s:%d: check failed: (%s) %s", file, line, expr, msg.c_str());
}

} // namespace detail

} // namespace astra
