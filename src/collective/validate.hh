/**
 * @file
 * Chunk state-machine legality (integrity layer, docs/validation.md).
 *
 * Every ChunkState mutation is classified as a ChunkOp; which ops are
 * legal depends only on the collective kind and on whether the chunk
 * has been finalized. The table lives here as a free function so the
 * death tests can probe it directly, and ChunkState consults the same
 * table (runtime level >= basic) before mutating:
 *
 *  - reduce-scatter moves partial sums: payloads may only reduce-merge,
 *    never install, and block ops never apply;
 *  - all-gather moves finished elements: payloads may only install;
 *  - all-reduce is RS followed by AG, so both payload flavours and the
 *    phase-boundary restrict are legal;
 *  - all-to-all moves (src,dst) blocks and never touches the
 *    range/contribution view;
 *  - a finalized (Done) chunk accepts no further ops.
 */

#ifndef ASTRA_COLLECTIVE_VALIDATE_HH
#define ASTRA_COLLECTIVE_VALIDATE_HH

#include "common/types.hh"

namespace astra
{

/** Classification of every ChunkState mutation the FSM gates. */
enum class ChunkOp
{
    MakePayload,  //!< extract a RangePayload to send
    ApplyReduce,  //!< merge an incoming reduce payload
    ApplyInstall, //!< install an incoming all-gather payload
    Restrict,     //!< shrink the valid range at an RS phase boundary
    TakeBlocks,   //!< remove all-to-all blocks for forwarding
    AddBlocks,    //!< install forwarded all-to-all blocks
    Timeout,      //!< a send of this chunk timed out (fault layer)
    Retry,        //!< the timed-out send is being retransmitted
    Finalize,     //!< seal the chunk when its collective completes
};

const char *toString(ChunkOp op);

namespace validate
{

/**
 * The legal-transition table: is @p op permitted on a chunk of
 * collective @p kind that is (@p done) already finalized?
 */
bool chunkOpLegal(CollectiveKind kind, ChunkOp op, bool done);

/**
 * Check @p op against the table and raise an ASTRA_CHECK diagnostic
 * naming the op, collective kind, and @p rank on violation.
 */
void chunkTransition(CollectiveKind kind, ChunkOp op, bool done,
                     int rank);

} // namespace validate

} // namespace astra

#endif // ASTRA_COLLECTIVE_VALIDATE_HH
