#include <gtest/gtest.h>

#include "common/logging.hh"
#include "net/fabric.hh"

namespace astra
{
namespace
{

TEST(Fabric, TorusLinkCount)
{
    SimConfig cfg;
    cfg.torus(2, 3, 4);
    Topology topo(cfg);
    Fabric f(topo, cfg);
    // Per ring channel: one link per node. Local: 2 channels, package
    // dims: 4 channels each.
    const int nodes = 24;
    EXPECT_EQ(f.numLinks(), nodes * (2 + 4 + 4));
}

TEST(Fabric, DegenerateDimensionsHaveNoLinks)
{
    SimConfig cfg;
    cfg.torus(1, 8, 1);
    Topology topo(cfg);
    Fabric f(topo, cfg);
    EXPECT_EQ(f.numLinks(), 8 * 4); // only the horizontal dimension
}

TEST(Fabric, AllToAllLinkCount)
{
    SimConfig cfg;
    cfg.allToAll(2, 8, 7);
    Topology topo(cfg);
    Fabric f(topo, cfg);
    // Local rings: 16 nodes x 2 channels; switches: 7 x 16 x (up+down).
    EXPECT_EQ(f.numLinks(), 16 * 2 + 7 * 16 * 2);
}

TEST(Fabric, RingRouteWalksTheChannel)
{
    SimConfig cfg;
    cfg.torus(1, 8, 1);
    Topology topo(cfg);
    Fabric f(topo, cfg);
    // Forward channel: 2 -> 5 is 3 hops.
    auto path = f.route(2, 5, RouteHint{1, 0});
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(f.link(path[0]).from, 2);
    EXPECT_EQ(f.link(path[0]).to, 3);
    EXPECT_EQ(f.link(path[2]).to, 5);
    EXPECT_EQ(f.hopCount(2, 5, RouteHint{1, 0}), 3);
    // Backward channel: 2 -> 5 is 5 hops the other way.
    auto back = f.route(2, 5, RouteHint{1, 1});
    EXPECT_EQ(back.size(), 5u);
    EXPECT_EQ(f.hopCount(2, 5, RouteHint{1, 1}), 5);
}

TEST(Fabric, SwitchRouteIsTwoHops)
{
    SimConfig cfg;
    cfg.allToAll(1, 4, 3);
    Topology topo(cfg);
    Fabric f(topo, cfg);
    auto path = f.route(0, 3, RouteHint{1, 2});
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(f.link(path[0]).from, 0);
    EXPECT_EQ(f.link(path[0]).to, 4 + 2); // switch port
    EXPECT_EQ(f.link(path[1]).from, 4 + 2);
    EXPECT_EQ(f.link(path[1]).to, 3);
    EXPECT_EQ(f.hopCount(0, 3, RouteHint{1, 2}), 2);
}

TEST(Fabric, SelfRouteIsEmpty)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Topology topo(cfg);
    Fabric f(topo, cfg);
    EXPECT_TRUE(f.route(3, 3, RouteHint{0, 0}).empty());
    EXPECT_EQ(f.hopCount(3, 3, RouteHint{0, 0}), 0);
}

TEST(Fabric, RouteLinkClassMatchesDimension)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Topology topo(cfg);
    Fabric f(topo, cfg);
    auto local = f.route(0, 1, RouteHint{0, 0});
    ASSERT_FALSE(local.empty());
    EXPECT_EQ(f.link(local[0]).cls, LinkClass::Local);
    auto pkg = f.route(0, 2, RouteHint{1, 0});
    ASSERT_FALSE(pkg.empty());
    EXPECT_EQ(f.link(pkg[0]).cls, LinkClass::Package);
    EXPECT_DOUBLE_EQ(f.linkParams(local[0]).bandwidth, 200.0);
    EXPECT_DOUBLE_EQ(f.linkParams(pkg[0]).bandwidth, 25.0);
}

TEST(Fabric, RouteRejectsCrossDimensionPairs)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Topology topo(cfg);
    Fabric f(topo, cfg);
    // Nodes 0 (0,0,0) and 3 (1,1,0) differ in two dimensions.
    EXPECT_THROW(f.route(0, 3, RouteHint{0, 0}), FatalError);
    EXPECT_THROW(f.route(0, 3, RouteHint{1, 0}), FatalError);
}

TEST(Fabric, RouteRejectsBadHints)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Topology topo(cfg);
    Fabric f(topo, cfg);
    EXPECT_THROW(f.route(0, 1, RouteHint{7, 0}), FatalError);
    EXPECT_THROW(f.route(0, 1, RouteHint{0, 99}), FatalError);
}

} // namespace
} // namespace astra
