/**
 * @file
 * Cluster — owns one complete simulated platform: the event queue, the
 * logical topology, the network backend selected by the configuration,
 * and one Sys per NPU.
 *
 * Benchmarks, tests and examples use this to run collectives without
 * hand-wiring the layers; the workload layer builds on it for full
 * training runs.
 */

#ifndef ASTRA_CORE_CLUSTER_HH
#define ASTRA_CORE_CLUSTER_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/validate.hh"
#include "core/sys.hh"
#include "fault/fault.hh"
#include "net/network_api.hh"
#include "topo/topology.hh"

namespace astra
{

/**
 * A fully wired simulated platform.
 */
class Cluster
{
  public:
    explicit Cluster(const SimConfig &cfg);
    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    const SimConfig &config() const { return _cfg; }
    EventQueue &eventQueue() { return _eq; }

    /** The logical topology the system layer runs against. */
    const Topology &topology() const { return _topo; }

    /**
     * The physical topology the fabric is built from — identical to
     * topology() unless the configuration maps the logical view onto
     * a distinct physical network (Sec. IV-B, physical-topology=...).
     */
    const Topology &physicalTopology() const
    {
        return _physTopo ? *_physTopo : _topo;
    }

    NetworkApi &network() { return *_net; }
    int numNodes() const { return _topo.numNodes(); }
    Sys &node(NodeId id) { return *_nodes.at(std::size_t(id)); }

    /**
     * Issue the same collective on every node (per-node handles in
     * node order). The cluster-wide completion time is the max of the
     * per-node completedAt values.
     */
    std::vector<std::shared_ptr<CollectiveHandle>>
    issueAll(const CollectiveRequest &req);

    /**
     * Drain all events. @return final simulated time. When the runtime
     * validation level is at least basic, every registered drain-time
     * checker (event queue, network backend, per-node schedulers) runs
     * after the queue empties; a violated invariant is fatal.
     *
     * The loop is supervised (docs/robustness.md): the configuration's
     * run budgets (max-events / max-sim-time / max-slab-bytes), the
     * progress watchdog (watchdog-window) and the cooperative
     * interrupt flag (guard::interruptRequested) are checked at slice
     * boundaries. A tripped run returns early with outcome()
     * BudgetExceeded / Deadlocked / Interrupted and a FailureRecord
     * naming the tripped ceiling; partial metrics and the digest
     * accumulated so far remain valid.
     */
    Tick run();

    /**
     * Retired-event-stream digest (determinism auditor). Zero unless
     * SimConfig::digest enabled accumulation at construction; two runs
     * of the same configuration must produce identical values.
     */
    std::uint64_t digest() const { return _eq.digest(); }

    /** The drain-time checker registry (for tests). */
    const ValidatorRegistry &validators() const { return _validators; }

    // --- fault layer (docs/faults.md) ---------------------------------

    /** The fault schedule, or nullptr when the plan is empty. */
    const FaultManager *faults() const { return _faults.get(); }

    /**
     * How the last run() ended. Completed unless a fault plan degraded
     * or deadlocked the run, a run budget tripped (BudgetExceeded),
     * the progress watchdog fired (Deadlocked with a "watchdog:"
     * record), or a cooperative interrupt drained it (Interrupted) —
     * see docs/robustness.md for the taxonomy.
     */
    RunOutcome outcome() const { return _outcome; }

    /** One record per retries-exhausted send (Degraded runs). */
    const std::vector<FailureRecord> &failures() const
    {
        return _failures;
    }

    /**
     * Convenience: issue @p kind of @p bytes on every node, run to
     * completion and return the cluster-wide communication time
     * (max completedAt - issue time).
     */
    Tick runCollective(CollectiveKind kind, Bytes bytes,
                       std::vector<int> dims = {}, int set_splits = 0);

    /** Merge of all per-node stat groups. */
    StatGroup aggregateStats() const;

    /**
     * Snapshot the whole platform's metrics as one registry:
     *  - "sys": all per-node StatGroups merged (queue/network delays,
     *    chunk latency histograms, issued/completed totals);
     *  - "net": the backend's exportStats (per-link utilization,
     *    backend-specific histograms, energy);
     *  - "cluster": elapsed ticks, executed events, node count.
     * This is what --report-json serializes.
     */
    MetricRegistry exportMetrics() const;

    /** The trace recorder, or nullptr when tracing is disabled. */
    TraceRecorder *trace() { return _trace.get(); }

    /** Write the trace to the configured trace-file (if any). */
    void flushTrace();

  private:
    /** Recompute _outcome after the event queue drains. */
    void refreshOutcome();

    /** Sum of every node's progress counter (watchdog heartbeat). */
    std::uint64_t progressSum() const;

    /** End the run early: set @p outcome and record @p reason. */
    void trip(RunOutcome outcome, const std::string &reason);

    SimConfig _cfg;
    EventQueue _eq;
    Topology _topo; //!< logical
    std::unique_ptr<Topology> _physTopo; //!< set when mapping is on
    std::unique_ptr<NetworkApi> _net;
    std::vector<std::unique_ptr<Sys>> _nodes;
    std::unique_ptr<TraceRecorder> _trace;
    ValidatorRegistry _validators;
    std::unique_ptr<FaultManager> _faults; //!< null = empty plan
    RunOutcome _outcome = RunOutcome::Completed;
    std::vector<FailureRecord> _failures;
};

} // namespace astra

#endif // ASTRA_CORE_CLUSTER_HH
