/**
 * @file
 * Unit tests for astra-lint's per-function CFG builder (cfg.hh) and
 * the forward-dataflow fixpoint engine (dataflow.hh): block/edge
 * structure for branches, nested loops, switch fallthrough, early
 * returns and try/catch, plus may-analysis propagation with and
 * without back edges.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/cfg.hh"
#include "lint/dataflow.hh"
#include "lint/lexer.hh"
#include "lint/symbols.hh"

namespace astra::lint
{
namespace
{

/** CFG of the first function in @p src (asserts one is found). */
FunctionCfg
cfgOf(const std::string &src)
{
    LexedFile f = lexSource("t.cc", src);
    SymbolIndex idx = buildSymbolIndex({f});
    EXPECT_FALSE(idx.functions.empty()) << src;
    if (idx.functions.empty() || !idx.functions[0].hasBody)
        return FunctionCfg{};
    const FunctionExtent &fe = idx.functions[0];
    return buildFunctionCfg(f, fe.bodyBegin, fe.bodyEnd);
}

std::size_t
countBackEdges(const FunctionCfg &cfg)
{
    std::size_t n = 0;
    for (const BasicBlock &b : cfg.blocks) {
        for (const CfgEdge &e : b.succs)
            n += e.back ? 1 : 0;
    }
    return n;
}

std::size_t
countEdgesInto(const FunctionCfg &cfg, std::size_t to)
{
    std::size_t n = 0;
    for (const BasicBlock &b : cfg.blocks) {
        for (const CfgEdge &e : b.succs)
            n += e.to == to ? 1 : 0;
    }
    return n;
}

std::size_t
countStmts(const FunctionCfg &cfg, bool scope_exits = false)
{
    std::size_t n = 0;
    for (const BasicBlock &b : cfg.blocks) {
        for (const CfgStmt &s : b.stmts)
            n += s.scopeExit == scope_exits ? 1 : 0;
    }
    return n;
}

TEST(LintCfg, StraightLineIsOneChain)
{
    FunctionCfg cfg = cfgOf("void f() { a(); b(); c(); }");
    ASSERT_TRUE(cfg.wellFormed);
    EXPECT_EQ(countStmts(cfg), 3u);
    EXPECT_EQ(countBackEdges(cfg), 0u);
    EXPECT_GE(countEdgesInto(cfg, cfg.exit), 1u);
}

TEST(LintCfg, IfElseBranchesAndMerges)
{
    FunctionCfg cfg = cfgOf("void f(bool c) {\n"
                            "    pre();\n"
                            "    if (c)\n"
                            "        yes();\n"
                            "    else\n"
                            "        no();\n"
                            "    post();\n"
                            "}\n");
    ASSERT_TRUE(cfg.wellFormed);
    // The block holding the condition fans out to then and else.
    bool saw_branch = false;
    for (const BasicBlock &b : cfg.blocks)
        saw_branch = saw_branch || b.succs.size() >= 2;
    EXPECT_TRUE(saw_branch);
    EXPECT_EQ(countStmts(cfg), 5u); // pre, if-head, yes, no, post
}

TEST(LintCfg, ElseLessIfKeepsFallthroughEdge)
{
    FunctionCfg cfg = cfgOf("void f(bool c) { if (c) yes(); post(); }");
    ASSERT_TRUE(cfg.wellFormed);
    // cond -> then -> merge plus the direct cond -> merge edge.
    bool saw_two_out = false;
    for (const BasicBlock &b : cfg.blocks)
        saw_two_out = saw_two_out || b.succs.size() == 2;
    EXPECT_TRUE(saw_two_out);
}

TEST(LintCfg, NestedLoopsMarkEachBackEdge)
{
    FunctionCfg cfg = cfgOf("void f(int n) {\n"
                            "    for (int i = 0; i < n; ++i) {\n"
                            "        int j = 0;\n"
                            "        while (j < i) {\n"
                            "            step(i, j);\n"
                            "            ++j;\n"
                            "        }\n"
                            "    }\n"
                            "}\n");
    ASSERT_TRUE(cfg.wellFormed);
    EXPECT_GE(countBackEdges(cfg), 2u); // one per loop
}

TEST(LintCfg, DoWhileLoopsBack)
{
    FunctionCfg cfg = cfgOf("void f() { do { pump(); } while (more()); }");
    ASSERT_TRUE(cfg.wellFormed);
    EXPECT_EQ(countBackEdges(cfg), 1u);
}

TEST(LintCfg, RangedForLoopsBack)
{
    FunctionCfg cfg =
        cfgOf("void f(const V &v) { for (const auto &x : v) use(x); }");
    ASSERT_TRUE(cfg.wellFormed);
    EXPECT_EQ(countBackEdges(cfg), 1u);
}

TEST(LintCfg, SwitchFansOutAndFallsThrough)
{
    FunctionCfg cfg = cfgOf("void f(int k) {\n"
                            "    switch (k) {\n"
                            "    case 0:\n"
                            "        zero();\n" // falls through to 1
                            "    case 1:\n"
                            "        one();\n"
                            "        break;\n"
                            "    default:\n"
                            "        rest();\n"
                            "    }\n"
                            "    post();\n"
                            "}\n");
    ASSERT_TRUE(cfg.wellFormed);
    // The switch head dispatches to every case label (3) and to the
    // no-match exit.
    bool saw_dispatch = false;
    for (const BasicBlock &b : cfg.blocks)
        saw_dispatch = saw_dispatch || b.succs.size() >= 4;
    EXPECT_TRUE(saw_dispatch);
    // The case-0 block both receives the dispatch edge and passes
    // control on to case 1 (the fallthrough): some case block has two
    // inbound edges, one from the head and one from the prior case.
    EXPECT_EQ(countBackEdges(cfg), 0u);
}

TEST(LintCfg, EarlyReturnEdgesToExit)
{
    FunctionCfg cfg = cfgOf("int f(bool c) {\n"
                            "    if (c)\n"
                            "        return 1;\n"
                            "    work();\n"
                            "    return 0;\n"
                            "}\n");
    ASSERT_TRUE(cfg.wellFormed);
    // Early return, final return, and the builder's fall-off edge.
    EXPECT_GE(countEdgesInto(cfg, cfg.exit), 2u);
}

TEST(LintCfg, BreakAndContinueTargetLoopBlocks)
{
    FunctionCfg cfg = cfgOf("void f(int n) {\n"
                            "    while (spin()) {\n"
                            "        if (done())\n"
                            "            break;\n"
                            "        if (skip())\n"
                            "            continue;\n"
                            "        work();\n"
                            "    }\n"
                            "    post();\n"
                            "}\n");
    ASSERT_TRUE(cfg.wellFormed);
    // continue closes the loop too, so at least two back edges (the
    // normal body->head edge plus continue's).
    EXPECT_GE(countBackEdges(cfg), 2u);
}

TEST(LintCfg, TryCatchBranchesAtEntryAndMerges)
{
    FunctionCfg cfg = cfgOf("void f() {\n"
                            "    before();\n"
                            "    try {\n"
                            "        risky();\n"
                            "    } catch (const E &e) {\n"
                            "        recover();\n"
                            "    }\n"
                            "    after();\n"
                            "}\n");
    ASSERT_TRUE(cfg.wellFormed);
    // The pre-try block fans out to the try body AND the handler (the
    // exception can fire at any try statement, so the handler sees the
    // try-entry state).
    bool saw_fan = false;
    for (const BasicBlock &b : cfg.blocks)
        saw_fan = saw_fan || b.succs.size() >= 2;
    EXPECT_TRUE(saw_fan);
}

TEST(LintCfg, ScopeExitMarkersCarryBraceSpan)
{
    FunctionCfg cfg = cfgOf("void f() {\n"
                            "    {\n"
                            "        inner();\n"
                            "    }\n"
                            "    outer();\n"
                            "}\n");
    ASSERT_TRUE(cfg.wellFormed);
    EXPECT_EQ(countStmts(cfg, /*scope_exits=*/true), 1u);
    for (const BasicBlock &b : cfg.blocks) {
        for (const CfgStmt &s : b.stmts) {
            if (s.scopeExit) {
                EXPECT_LT(s.firstTok, s.lastTok); // the brace pair
            }
        }
    }
}

TEST(LintCfg, DoWithoutWhileIsIllFormed)
{
    FunctionCfg cfg = cfgOf("void f() { do { pump(); } g(); }");
    EXPECT_FALSE(cfg.wellFormed);
}

TEST(LintCfg, BraceInitializersStayInsideOneStatement)
{
    FunctionCfg cfg = cfgOf("void f() {\n"
                            "    std::vector<int> v{1, 2, 3};\n"
                            "    auto fn = [&]() { return v.size(); };\n"
                            "    use(v, fn);\n"
                            "}\n");
    ASSERT_TRUE(cfg.wellFormed);
    EXPECT_EQ(countStmts(cfg), 3u); // init + lambda decl + call
}

// ---- dataflow engine -------------------------------------------------

TEST(LintDataflow, FactSetOps)
{
    FactSet a(70);
    EXPECT_FALSE(a.any());
    a.set(0);
    a.set(69);
    EXPECT_TRUE(a.test(0));
    EXPECT_TRUE(a.test(69));
    EXPECT_FALSE(a.test(42));
    EXPECT_FALSE(a.test(1000)); // out of range is never set
    a.reset(0);
    EXPECT_FALSE(a.test(0));
    EXPECT_TRUE(a.any());

    FactSet b(70);
    EXPECT_TRUE(b.uniteWith(a));  // picks up bit 69
    EXPECT_FALSE(b.uniteWith(a)); // second union changes nothing
    EXPECT_TRUE(b.test(69));
}

/** Gen/kill keyed on magic firstTok values, for hand-built CFGs. */
class TokTransfer : public Transfer
{
  public:
    void
    apply(const CfgStmt &s, FactSet &f) const override
    {
        if (s.firstTok == 100)
            f.set(0);
        if (s.firstTok == 200)
            f.reset(0);
    }
};

TEST(LintDataflow, LoopFactRespectsBackEdgeSwitch)
{
    // entry(0) -> head(1) -> body(2) -back-> head; head -> exit(3).
    // The gen sits in the body, so the fact reaches the head only
    // around the back edge.
    FunctionCfg cfg;
    cfg.blocks.resize(4);
    cfg.entry = 0;
    cfg.exit = 3;
    cfg.blocks[0].succs = {CfgEdge{1, false}};
    cfg.blocks[1].succs = {CfgEdge{2, false}, CfgEdge{3, false}};
    cfg.blocks[2].stmts = {CfgStmt{100, 100, false}};
    cfg.blocks[2].succs = {CfgEdge{1, true}};

    TokTransfer tf;
    std::vector<FactSet> with = solveForward(cfg, 1, tf, true);
    EXPECT_TRUE(with[1].test(0));  // propagated around the loop
    EXPECT_TRUE(with[3].test(0));
    std::vector<FactSet> without = solveForward(cfg, 1, tf, false);
    EXPECT_FALSE(without[1].test(0));
    EXPECT_FALSE(without[3].test(0));
}

TEST(LintDataflow, MergeIsUnionAndKillIsLocal)
{
    // entry(0) branches to gen(1) and clean(2), merging into 3; a
    // kill block (4) follows. May-analysis: the fact holds at the
    // merge (one path genned it) and is gone after the kill.
    FunctionCfg cfg;
    cfg.blocks.resize(6);
    cfg.entry = 0;
    cfg.exit = 5;
    cfg.blocks[0].succs = {CfgEdge{1, false}, CfgEdge{2, false}};
    cfg.blocks[1].stmts = {CfgStmt{100, 100, false}};
    cfg.blocks[1].succs = {CfgEdge{3, false}};
    cfg.blocks[2].succs = {CfgEdge{3, false}};
    cfg.blocks[3].succs = {CfgEdge{4, false}};
    cfg.blocks[4].stmts = {CfgStmt{200, 200, false}};
    cfg.blocks[4].succs = {CfgEdge{5, false}};

    TokTransfer tf;
    std::vector<FactSet> ins = solveForward(cfg, 1, tf, true);
    EXPECT_FALSE(ins[1].test(0)); // nothing genned before the branch
    EXPECT_TRUE(ins[3].test(0));  // union at the merge
    EXPECT_TRUE(ins[4].test(0));  // still held entering the kill
    EXPECT_FALSE(ins[5].test(0)); // killed before the exit
}

} // namespace
} // namespace astra::lint
