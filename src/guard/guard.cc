#include "guard/guard.hh"

#include "common/config.hh"

namespace astra
{
namespace guard
{

RunBudget
RunBudget::fromConfig(const SimConfig &cfg)
{
    RunBudget b;
    b.maxEvents = cfg.maxEvents;
    b.maxSimTime = cfg.maxSimTime;
    b.maxSlabBytes = cfg.maxSlabBytes;
    b.watchdogWindow = cfg.watchdogWindow;
    return b;
}

} // namespace guard
} // namespace astra
