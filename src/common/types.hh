/**
 * @file
 * Fundamental scalar types shared by every ASTRA-SIM layer.
 *
 * One simulated cycle corresponds to one nanosecond (a 1 GHz fabric
 * clock), so a bandwidth of "200 GB/s" is exactly 200 bytes per cycle.
 */

#ifndef ASTRA_COMMON_TYPES_HH
#define ASTRA_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace astra
{

/** Simulated time, in cycles (== nanoseconds at the 1 GHz fabric clock). */
using Tick = std::uint64_t;

/** Sentinel for "no time" / "not yet happened". */
inline constexpr Tick kTickInvalid = std::numeric_limits<Tick>::max();

/** Data sizes, in bytes. */
using Bytes = std::uint64_t;

/** Global identifier of an NPU endpoint (dense, 0-based). */
using NodeId = std::int32_t;

/** Sentinel node id. */
inline constexpr NodeId kNodeInvalid = -1;

/** Identifier of a collective stream (one chunk's journey). */
using StreamId = std::uint64_t;

/** Identifier of a workload layer. */
using LayerId = std::int32_t;

/** Bandwidth in bytes per cycle (== GB/s given the 1 GHz clock). */
using BytesPerCycle = double;

/**
 * The four collective operations of Fig. 4.
 */
enum class CollectiveKind
{
    ReduceScatter,
    AllGather,
    AllReduce,
    AllToAll,
    None,
};

/** Human-readable name for a collective kind. */
const char *toString(CollectiveKind kind);

/**
 * Parse a collective name ("ALLREDUCE", "all_to_all", ...) as it appears
 * in workload files. Returns CollectiveKind::None for "NONE" / empty.
 */
CollectiveKind parseCollectiveKind(const char *name);

} // namespace astra

#endif // ASTRA_COMMON_TYPES_HH
