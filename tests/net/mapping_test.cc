#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/units.hh"
#include "core/cluster.hh"
#include "net/analytical.hh"

namespace astra
{
namespace
{

SimConfig
logical3dOnPhysicalRing()
{
    // Logical 2x2x2 torus mapped onto a physical 1x8x1 ring
    // (the paper's "map a 3D logical topology on a 1D physical torus").
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    cfg.physicalDistinct = true;
    cfg.physTopology = TopologyKind::Torus3D;
    cfg.physLocalDim = 1;
    cfg.physHorizontalDim = 8;
    cfg.physVerticalDim = 1;
    return cfg;
}

TEST(Mapping, ValidationRequiresMatchingNodeCounts)
{
    SimConfig cfg = logical3dOnPhysicalRing();
    cfg.physHorizontalDim = 4; // 4 != 8 logical nodes
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.physHorizontalDim = 8;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Mapping, RouteMappedCorrectsAllDimensions)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Topology topo(cfg);
    Fabric f(topo, cfg, /*one_to_one=*/false);
    // Node 0 (0,0,0) -> node 7 (1,1,1): one local hop plus package
    // ring hops in each package dimension.
    auto path = f.routeMapped(0, 7, /*channel_seed=*/0);
    ASSERT_FALSE(path.empty());
    // The walk must end at node 7.
    EXPECT_EQ(f.link(path.back()).to, 7);
    // Consecutive links chain.
    for (std::size_t i = 1; i < path.size(); ++i)
        EXPECT_EQ(f.link(path[i]).from, f.link(path[i - 1]).to);
    // First segment is the local dimension (cheapest first).
    EXPECT_EQ(f.link(path.front()).cls, LinkClass::Local);
}

TEST(Mapping, SeedSpreadsChannels)
{
    SimConfig cfg;
    cfg.torus(1, 8, 1);
    Topology topo(cfg);
    Fabric f(topo, cfg, false);
    // Seed 0 walks forward (3 hops to rank 3); an odd seed picks the
    // backward channel (5 hops).
    EXPECT_EQ(f.routeMapped(0, 3, 0).size(), 3u);
    EXPECT_EQ(f.routeMapped(0, 3, 1).size(), 5u);
}

TEST(Mapping, Logical3dCollectivesRunOnPhysicalRing)
{
    SimConfig cfg = logical3dOnPhysicalRing();
    Cluster cluster(cfg);
    EXPECT_EQ(cluster.topology().numDims(), 3);
    EXPECT_EQ(cluster.physicalTopology().toString(),
              "Torus3D 1x8x1 (8 NPUs)");
    // Post-conditions are enforced by Sys on completion: running to
    // completion proves the mapping carries the collective correctly.
    for (CollectiveKind kind :
         {CollectiveKind::AllReduce, CollectiveKind::AllToAll,
          CollectiveKind::ReduceScatter, CollectiveKind::AllGather}) {
        SimConfig c = cfg;
        Cluster cl(c);
        EXPECT_GT(cl.runCollective(kind, 256 * KiB), 0u) << toString(kind);
    }
}

TEST(Mapping, LogicalAllToAllOnPhysicalTorus)
{
    // The paper's other direction: logical alltoall connectivity
    // emulated by a switchless physical torus.
    SimConfig cfg;
    cfg.allToAll(2, 4, 2);
    cfg.physicalDistinct = true;
    cfg.physTopology = TopologyKind::Torus3D;
    cfg.physLocalDim = 2;
    cfg.physHorizontalDim = 4;
    cfg.physVerticalDim = 1;
    Cluster cluster(cfg);
    EXPECT_GT(cluster.runCollective(CollectiveKind::AllReduce, 256 * KiB),
              0u);
}

TEST(Mapping, PhysicalRingIsSlowerThanNativeTorus)
{
    // Squeezing a 3D logical topology through a 1D physical ring must
    // cost more than the native 3D fabric (shared links, longer
    // routes).
    Tick native, mapped;
    {
        SimConfig cfg;
        cfg.torus(2, 2, 2);
        Cluster cluster(cfg);
        native = cluster.runCollective(CollectiveKind::AllReduce, 1 * MiB);
    }
    {
        SimConfig cfg = logical3dOnPhysicalRing();
        Cluster cluster(cfg);
        mapped = cluster.runCollective(CollectiveKind::AllReduce, 1 * MiB);
    }
    EXPECT_GT(mapped, native);
}

TEST(Mapping, GarnetBackendSupportsMappingToo)
{
    SimConfig cfg = logical3dOnPhysicalRing();
    cfg.backend = NetworkBackend::GarnetLite;
    Cluster cluster(cfg);
    EXPECT_GT(cluster.runCollective(CollectiveKind::AllReduce, 64 * KiB),
              0u);
}

TEST(Mapping, DeterministicUnderMapping)
{
    auto once = [] {
        SimConfig cfg = logical3dOnPhysicalRing();
        Cluster cluster(cfg);
        return cluster.runCollective(CollectiveKind::AllReduce, 512 * KiB);
    };
    EXPECT_EQ(once(), once());
}

} // namespace
} // namespace astra
