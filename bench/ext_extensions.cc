/**
 * @file
 * Extension studies beyond the paper's figures (DESIGN.md "future
 * work implemented" items):
 *
 *  (a) scheduling-policy ablation — LIFO / FIFO / layer-priority
 *      (Sec. III-E's prioritization proposal) on a contended
 *      ResNet-50 run: first-layer exposure and makespan;
 *  (b) scale-out scaling — the paper's future-work fabric: the same
 *      64 modules as 1, 2 and 4 ethernet-joined pods, all-reduce time
 *      and interconnect energy split;
 *  (c) pipeline parallelism — bubble ratio vs microbatch count on an
 *      8-stage pipeline (the third strategy of Sec. III-A).
 */

#include "bench/support.hh"

#include "common/logging.hh"
#include "workload/models.hh"
#include "workload/pipeline.hh"
#include "workload/trainer.hh"

using namespace astra;
using namespace astra::bench;

namespace
{

void
schedulingAblation(BenchArgs &args)
{
    // Expected outcome: all three policies coincide. The paper makes
    // the same observation for LIFO vs FIFO (Fig. 16) and our
    // implementation strengthens it: on a symmetric data-parallel
    // workload every node issues the same sets, so as soon as any
    // node dispatches a chunk its messages promote that chunk out of
    // every peer's ready queue ("wanted promotion", the scheduler's
    // deadlock guard) — ready-queue order stops mattering. The
    // policies do separate when sets become ready at different times;
    // tests/core/scheduler_test.cc pins that behaviour down.
    std::printf("(a) scheduling policies on ResNet-50 (2x4x4, "
                "2 iterations, tight dispatcher T=2/P=4)\n");
    Table t;
    t.header({"policy", "makespan", "exposed", "first_layer_exposed"});
    for (SchedulingPolicy pol :
         {SchedulingPolicy::LIFO, SchedulingPolicy::FIFO,
          SchedulingPolicy::LayerPriority}) {
        SimConfig cfg;
        cfg.torus(2, 4, 4);
        cfg.local.bandwidth = 8 * cfg.package.bandwidth;
        cfg.schedulingPolicy = pol;
        cfg.dispatchThreshold = 2;
        cfg.dispatchWidth = 4;
        applyOverrides(args, cfg);
        Cluster cluster(cfg);
        WorkloadRun run(cluster, resnet50Workload(),
                        TrainerOptions{.numPasses = 2});
        const Tick makespan = run.run();
        mergeReport(args, cluster);
        t.row()
            .cell(toString(pol))
            .cell(std::uint64_t(makespan))
            .cell(100 * run.exposedRatio(), "%.1f%%")
            .cell(std::uint64_t(run.layerStats().front().exposed));
    }
    emitTable(args, "ext_scheduling.csv", t);
}

void
scaleOutScaling(BenchArgs &args)
{
    std::printf("(b) scale-out fabric: 64 modules as 1/2/4 pods, "
                "16MB all-reduce\n");
    struct Shape
    {
        const char *name;
        int m, h, v, pods;
    };
    const Shape shapes[] = {
        {"4x4x4 x1", 4, 4, 4, 1},
        {"4x4x2 x2", 4, 4, 2, 2},
        {"4x2x2 x4", 4, 2, 2, 4},
    };
    Table t;
    t.header({"shape", "allreduce_cycles", "energy_uJ",
              "scaleout_energy_share"});
    for (const Shape &s : shapes) {
        SimConfig cfg;
        cfg.torus(s.m, s.h, s.v);
        cfg.scaleoutDimSize = s.pods;
        cfg.local.bandwidth = 8 * cfg.package.bandwidth;
        cfg.algorithm = AlgorithmFlavor::Enhanced;
        applyOverrides(args, cfg);
        Cluster cluster(cfg);
        const Bytes size = args.quick ? 2 * MiB : 16 * MiB;
        const Tick tick =
            cluster.runCollective(CollectiveKind::AllReduce, size);
        mergeReport(args, cluster);
        const auto &e = cluster.network().energy();
        t.row()
            .cell(s.name)
            .cell(std::uint64_t(tick))
            .cell(e.totalUj(), "%.1f")
            .cell(100 * e.scaleoutLinkPj / std::max(1.0, e.totalPj()),
                  "%.1f%%");
    }
    emitTable(args, "ext_scaleout.csv", t);
}

void
pipelineBubbles(BenchArgs &args)
{
    std::printf("(c) pipeline parallelism: bubble ratio vs "
                "microbatches (8 stages, ResNet-50)\n");
    Table t;
    t.header({"microbatches", "makespan", "bubble_ratio"});
    for (int m : {1, 2, 4, 8, 16}) {
        SimConfig cfg;
        cfg.torus(2, 8, 1); // pipeline over the 8-wide horizontal dim
        cfg.local.bandwidth = 8 * cfg.package.bandwidth;
        applyOverrides(args, cfg);
        Cluster cluster(cfg);
        PipelineRun run(cluster, resnet50Workload(),
                        PipelineOptions{.numPasses = 2,
                                        .microbatches = m});
        const Tick makespan = run.run();
        mergeReport(args, cluster);
        t.row()
            .cell(std::uint64_t(m))
            .cell(std::uint64_t(makespan))
            .cell(100 * run.bubbleRatio(), "%.1f%%");
    }
    emitTable(args, "ext_pipeline.csv", t);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv);
    banner("Extensions", "scheduling policies, scale-out pods, "
                         "pipeline parallelism");
    schedulingAblation(args);
    scaleOutScaling(args);
    pipelineBubbles(args);
    writeReport(args);
    return 0;
}
