#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>

#include "common/logging.hh"

namespace astra
{

int
ThreadPool::defaultThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        threads = defaultThreads();
    // Workers block on a condition variable between jobs (no spinning),
    // so oversubscription does not burn cycles while idle — but with
    // more runnable workers than hardware threads the active jobs
    // context-switch against each other and a "parallel" run can come
    // out *slower* than serial. That is a caller mistake worth
    // flagging, not failing: --jobs is user-controlled.
    if (threads > defaultThreads()) {
        warn("thread pool created with %d workers on %d hardware "
             "thread(s): expect oversubscription, not speedup",
             threads, defaultThreads());
    }
    _workers.reserve(static_cast<std::size_t>(threads));
    try {
        for (int i = 0; i < threads; ++i)
            _workers.emplace_back([this] { workerLoop(); });
    } catch (...) {
        // Thread spawn failed partway (std::system_error under resource
        // exhaustion). The workers that DID start must be stopped and
        // joined before the rethrow destroys _workers — a joinable
        // std::thread's destructor calls std::terminate.
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _stop = true;
        }
        _workCv.notify_all();
        for (std::thread &w : _workers)
            w.join();
        // Rethrow the original system_error: the caller's report keeps
        // the real spawn-failure context.
        throw; // astra-lint: allow(no-throw)
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stop = true;
    }
    _workCv.notify_all();
    for (std::thread &w : _workers)
        w.join();
    // Every worker is joined, so _firstError needs no lock. A job that
    // threw during the destructor drain (after the last wait()) has no
    // thread left to rethrow on; surfacing it beats silent loss.
    if (_firstError)
        warn("thread pool destroyed with an unreported job exception");
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _jobs.push_back(std::move(job));
    }
    _workCv.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _idleCv.wait(lock, [this] { return _jobs.empty() && _inFlight == 0; });
    if (_firstError) {
        std::exception_ptr e = _firstError;
        _firstError = nullptr;
        std::rethrow_exception(e);
    }
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(_mutex);
    while (true) {
        _workCv.wait(lock, [this] { return _stop || !_jobs.empty(); });
        if (_jobs.empty()) {
            // _stop and drained: exit.
            return;
        }
        std::function<void()> job = std::move(_jobs.front());
        _jobs.pop_front();
        ++_inFlight;
        lock.unlock();

        std::exception_ptr error;
        try {
            job();
        } catch (...) {
            error = std::current_exception();
        }

        lock.lock();
        if (error && !_firstError)
            _firstError = error;
        --_inFlight;
        if (_jobs.empty() && _inFlight == 0)
            _idleCv.notify_all();
    }
}

// pool.wait() joins every worker before this frame returns, so the
// by-reference captures below cannot dangle or race past the call.
// astra-lint: thread-confined(pool.wait joins before return)
void
parallelFor(int jobs, std::size_t count,
            const std::function<void(std::size_t)> &fn)
{
    if (jobs <= 0)
        jobs = ThreadPool::defaultThreads();
    jobs = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs), count));
    if (jobs <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    ThreadPool pool(jobs);
    for (int w = 0; w < jobs; ++w) {
        pool.submit([&] {
            for (std::size_t i = next.fetch_add(1); i < count;
                 i = next.fetch_add(1)) {
                fn(i);
            }
        });
    }
    pool.wait();
}

} // namespace astra
