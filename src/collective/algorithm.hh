/**
 * @file
 * Per-node collective algorithm state machines.
 *
 * One PhaseAlgorithm instance runs on each participating node for each
 * (chunk, phase). Instances communicate only through the network (via
 * the AlgContext), exactly as the distributed implementations they
 * model: a node cannot observe a peer's state, only its messages.
 *
 * The system layer (src/core) implements AlgContext; the algorithms
 * are agnostic of streams, LSQs and the physical network.
 */

#ifndef ASTRA_COLLECTIVE_ALGORITHM_HH
#define ASTRA_COLLECTIVE_ALGORITHM_HH

#include <functional>
#include <memory>

#include "common/event_queue.hh"
#include "collective/chunk_state.hh"
#include "collective/phase_plan.hh"
#include "net/network_api.hh"
#include "topo/topology.hh"

namespace astra
{

/**
 * Services the system layer provides to an algorithm instance.
 */
class AlgContext
{
  public:
    virtual ~AlgContext() = default;

    /** Number of nodes in this phase's group. */
    virtual int groupSize() const = 0;

    /** This node's rank within the phase group (== its coordinate). */
    virtual int myRank() const = 0;

    /** Ring direction (+1/-1) of the channel this chunk was assigned. */
    virtual int direction() const = 0;

    /** Bytes this node holds entering the phase. */
    virtual Bytes entryBytes() const = 0;

    /** The chunk's trackable data state. */
    virtual ChunkState &data() = 0;

    /**
     * Send @p bytes to the phase-group member with rank @p dst_rank on
     * the chunk's assigned channel. @p step disambiguates algorithm
     * steps at the receiver; @p payload carries tracking state.
     */
    virtual void sendToRank(int dst_rank, Bytes bytes, int step,
                            std::shared_ptr<void> payload) = 0;

    /**
     * Like sendToRank but through an explicit channel — used on switch
     * dimensions where simultaneous transfers to different peers take
     * different global switches (Sec. III-B: "receiving data from all
     * other nodes at the same time").
     */
    virtual void sendToRankVia(int dst_rank, int channel, Bytes bytes,
                               int step,
                               std::shared_ptr<void> payload) = 0;

    /** Number of channels available in this phase's dimension. */
    virtual int numChannels() const = 0;

    /** Channel this chunk's LSQ is bound to. */
    virtual int myChannel() const = 0;

    /**
     * Run @p fn after @p delay cycles. Takes the event queue's own
     * EventCallback (not std::function) so a small lambda goes from
     * the algorithm into the queue's slab without an intermediate
     * type-erased wrapper — this is the per-chunk hot path.
     */
    virtual void scheduleAfter(Tick delay, EventCallback fn) = 0;

    /** Per-received-message endpoint processing delay (parameter #13). */
    virtual Tick endpointDelay() const = 0;

    /**
     * Coordinate along this phase's dimension of the participant with
     * global rank @p global_rank (multi-phase all-to-all routing).
     */
    virtual int phaseCoordOfGlobalRank(int global_rank) const = 0;

    /** Signal that this node has finished the phase. */
    virtual void phaseDone() = 0;
};

/**
 * Abstract per-node, per-phase algorithm.
 */
class PhaseAlgorithm
{
  public:
    virtual ~PhaseAlgorithm() = default;

    /** Begin executing (the chunk reached the head of its LSQ). */
    virtual void start() = 0;

    /** A message for this (chunk, phase) arrived. */
    virtual void onMessage(const Message &msg) = 0;
};

/**
 * Instantiate the algorithm for @p op on a dimension with pattern
 * @p pattern (Ring -> ring algorithms of Fig. 5 left; Switch -> direct
 * algorithms of Fig. 5 right).
 */
std::unique_ptr<PhaseAlgorithm>
makePhaseAlgorithm(DimPattern pattern, CollectiveKind op, AlgContext &ctx);

} // namespace astra

#endif // ASTRA_COLLECTIVE_ALGORITHM_HH
