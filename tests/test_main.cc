/**
 * @file
 * Shared gtest main: fatal()/panic() throw FatalError so error paths
 * are testable, and status output is silenced.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    astra::setLoggingThrowOnFatal(true);
    astra::setLoggingQuiet(true);
    return RUN_ALL_TESTS();
}
