// Negative fixture: the word "float" in comments, strings and larger
// identifiers must not fire (the grep rule's false positives).
#include <string>

// A float here is prose. vector<float> in a comment is prose too.
static const std::string kDoc = "float is banned; std::vector<float> too";
static const char *kRaw = R"(raw float, even with "quotes" inside)";

double
keep(double v)
{
    int float_bits = 24;   // identifier containing "float"
    double floaty = v;     // identifier starting with "float"
    return floaty + float_bits + (kDoc.empty() ? 0 : kRaw[0]);
}
