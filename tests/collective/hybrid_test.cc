#include <gtest/gtest.h>

#include <set>

#include "common/units.hh"
#include "core/cluster.hh"

namespace astra
{
namespace
{

TEST(HybridGroups, SingleDimensionCollectiveStaysInGroup)
{
    // An all-reduce over only the vertical dimension must not touch
    // local or horizontal links.
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Cluster cluster(cfg);
    const Tick t = cluster.runCollective(CollectiveKind::AllReduce,
                                         128 * KiB, {2});
    EXPECT_GT(t, 0u);
    StatGroup stats = cluster.aggregateStats();
    EXPECT_GT(stats.counter("sent.bytes.vertical"), 0.0);
    EXPECT_EQ(stats.counter("sent.bytes.local"), 0.0);
    EXPECT_EQ(stats.counter("sent.bytes.horizontal"), 0.0);
}

TEST(HybridGroups, TwoDimensionSubgroup)
{
    SimConfig cfg;
    cfg.torus(2, 4, 2);
    Cluster cluster(cfg);
    const Tick t = cluster.runCollective(CollectiveKind::AllReduce,
                                         128 * KiB, {0, 1});
    EXPECT_GT(t, 0u);
    StatGroup stats = cluster.aggregateStats();
    EXPECT_GT(stats.counter("sent.bytes.local"), 0.0);
    EXPECT_GT(stats.counter("sent.bytes.horizontal"), 0.0);
    EXPECT_EQ(stats.counter("sent.bytes.vertical"), 0.0);
}

TEST(HybridGroups, SubgroupCollectivesAreSmallerThanGlobal)
{
    SimConfig cfg;
    cfg.torus(2, 4, 4);
    const Bytes c = 1 * MiB;
    Tick sub, full;
    {
        Cluster cluster(cfg);
        sub = cluster.runCollective(CollectiveKind::AllReduce, c, {2});
    }
    {
        Cluster cluster(cfg);
        full = cluster.runCollective(CollectiveKind::AllReduce, c);
    }
    EXPECT_LT(sub, full);
}

TEST(HybridGroups, DisjointGroupsRunConcurrently)
{
    // Vertical-dimension groups partition the machine; running them
    // all at once should cost about the same as one (they use disjoint
    // links), not N times more.
    SimConfig cfg;
    cfg.torus(2, 2, 4);
    Cluster cluster(cfg);
    const Tick t = cluster.runCollective(CollectiveKind::AllGather,
                                         256 * KiB, {2});
    SimConfig cfg2 = cfg;
    Cluster single(cfg2);
    // Issue on a single group only (nodes sharing local==0,h==0).
    CollectiveRequest req;
    req.kind = CollectiveKind::AllGather;
    req.bytes = 256 * KiB;
    req.dims = {2};
    std::vector<std::shared_ptr<CollectiveHandle>> handles;
    const Topology &topo = single.topology();
    for (NodeId n = 0; n < single.numNodes(); ++n) {
        Coord c = topo.coordOf(n);
        if (c[0] == 0 && c[1] == 0)
            handles.push_back(single.node(n).issueCollective(req));
    }
    single.run();
    Tick t_single = 0;
    for (auto &h : handles) {
        ASSERT_TRUE(h->done());
        t_single = std::max(t_single, h->completedAt);
    }
    // All groups together within 25% of a single group's time.
    EXPECT_LT(static_cast<double>(t),
              1.25 * static_cast<double>(t_single));
}

TEST(HybridGroups, AllToAllWithinSubgroup)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Cluster cluster(cfg);
    // All-to-all across the local+vertical subgroup (4 participants).
    const Tick t = cluster.runCollective(CollectiveKind::AllToAll,
                                         128 * KiB, {0, 2});
    EXPECT_GT(t, 0u);
    StatGroup stats = cluster.aggregateStats();
    EXPECT_EQ(stats.counter("sent.bytes.horizontal"), 0.0);
}

TEST(HybridGroups, MixedConcurrentCollectivesOnDisjointDims)
{
    // A data-parallel-style all-reduce on {0,1} and a model-parallel
    // all-gather on {2} issued together must both complete (they share
    // the scheduler but not the links).
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Cluster cluster(cfg);
    CollectiveRequest ar;
    ar.kind = CollectiveKind::AllReduce;
    ar.bytes = 256 * KiB;
    ar.dims = {0, 1};
    CollectiveRequest ag;
    ag.kind = CollectiveKind::AllGather;
    ag.bytes = 64 * KiB;
    ag.dims = {2};
    std::vector<std::shared_ptr<CollectiveHandle>> handles;
    for (NodeId n = 0; n < cluster.numNodes(); ++n) {
        handles.push_back(cluster.node(n).issueCollective(ar));
        handles.push_back(cluster.node(n).issueCollective(ag));
    }
    cluster.run();
    for (auto &h : handles)
        EXPECT_TRUE(h->done());
}

} // namespace
} // namespace astra
