#include "lint/flow_rules.hh"

#include <cstddef>
#include <deque>
#include <map>
#include <utility>

#include "lint/cfg.hh"
#include "lint/dataflow.hh"

namespace astra::lint
{

namespace
{

const std::set<std::string> kLockTypes = {"lock_guard", "unique_lock",
                                          "scoped_lock", "shared_lock"};

/** Member calls that return a moved-from local to a known state. */
const std::set<std::string> kResetMethods = {"clear", "reset", "assign",
                                             "swap"};

/** Wait-like members: block the caller until other threads progress. */
const std::set<std::string> kWaitMembers = {"wait", "wait_for",
                                            "wait_until", "run",
                                            "runUntil", "runFor"};

/** Pool entry points: hand work to other threads, member or free. */
const std::set<std::string> kPoolSubmits = {"submit", "forEach",
                                            "parallelFor"};

/** Identifiers before a local's first occurrence that are not a
 *  declaring type name. */
const std::set<std::string> kNotDeclPrev = {
    "return", "delete", "throw",     "case",    "goto",
    "new",    "else",   "co_return", "co_yield"};

/** Keywords that read like `ident (` but are not calls. */
const std::set<std::string> kNotCalls = {
    "if",     "while",    "for",           "switch",  "return",
    "sizeof", "alignof",  "decltype",      "catch",   "noexcept",
    "throw",  "static_assert", "defined",  "typeid"};

bool
ruleOn(const std::set<std::string> &enabled, const std::string &rule)
{
    return enabled.empty() || enabled.count(rule) > 0;
}

/** Same suppression semantics as the token rules' RuleContext. */
void
emitFlow(const LexedFile &file, std::vector<Diagnostic> &out,
         std::vector<SuppressionUse> *uses, const Token &at,
         const std::string &rule, const std::string &message)
{
    auto it = file.marks.find(at.line);
    if (it != file.marks.end() &&
        (it->second.nolint || it->second.allowed.count(rule) > 0)) {
        if (uses)
            uses->push_back(SuppressionUse{file.path, at.line, rule});
        return;
    }
    out.push_back(Diagnostic{file.path, at.line, at.col, rule, message});
}

bool
isIdentAt(const std::vector<Token> &t, std::size_t i, const char *text)
{
    return i < t.size() && t[i].kind == TokKind::kIdent &&
           t[i].text == text;
}

bool
isPunctAt(const std::vector<Token> &t, std::size_t i, const char *text)
{
    return i < t.size() && t[i].kind == TokKind::kPunct &&
           t[i].text == text;
}

bool
punctIn(const std::vector<Token> &t, std::size_t i,
        std::initializer_list<const char *> texts)
{
    if (i >= t.size() || t[i].kind != TokKind::kPunct)
        return false;
    for (const char *s : texts) {
        if (t[i].text == s)
            return true;
    }
    return false;
}

/** `move ( <name> )` with `move` not behind `.`/`->` at position i. */
bool
isMoveOf(const std::vector<Token> &t, std::size_t i,
         const std::string &name)
{
    if (!isIdentAt(t, i, "move"))
        return false;
    if (i > 0 && punctIn(t, i - 1, {".", "->"}))
        return false;
    return isPunctAt(t, i + 1, "(") && i + 2 < t.size() &&
           t[i + 2].kind == TokKind::kIdent && t[i + 2].text == name &&
           isPunctAt(t, i + 3, ")");
}

/** Token i looks like a declaration of the identifier at i: the
 *  previous token is a plausible type name or declarator punctuation. */
bool
declLike(const std::vector<Token> &t, std::size_t i)
{
    if (i == 0)
        return false;
    const Token &prev = t[i - 1];
    if (prev.kind == TokKind::kIdent)
        return kNotDeclPrev.count(prev.text) == 0;
    return prev.text == ">" || prev.text == "&" || prev.text == "*";
}

// ---------------------------------------------------------------- //
// use-after-move
// ---------------------------------------------------------------- //

struct MovedVar
{
    std::string name;
    int firstMoveLine = 0;
};

class MoveTransfer : public Transfer
{
  public:
    MoveTransfer(const std::vector<Token> &toks,
                 const std::vector<MovedVar> &vars)
        : _t(toks), _vars(vars)
    {
    }

    bool
    stmtGens(const CfgStmt &s, const std::string &name) const
    {
        for (std::size_t k = s.firstTok;
             k <= s.lastTok && k < _t.size(); ++k) {
            if (isMoveOf(_t, k, name))
                return true;
        }
        return false;
    }

    bool
    stmtKills(const CfgStmt &s, const std::string &name) const
    {
        for (std::size_t k = s.firstTok;
             k <= s.lastTok && k < _t.size(); ++k) {
            if (_t[k].kind != TokKind::kIdent || _t[k].text != name)
                continue;
            if (k > s.firstTok && punctIn(_t, k - 1, {".", "->", "::"}))
                continue; // member of some other object
            if (isPunctAt(_t, k + 1, "="))
                return true; // reassignment
            if (punctIn(_t, k + 1, {".", "->"}) && k + 2 < _t.size() &&
                _t[k + 2].kind == TokKind::kIdent &&
                kResetMethods.count(_t[k + 2].text) > 0 &&
                isPunctAt(_t, k + 3, "("))
                return true; // v.clear() / v.reset() / ...
            if (declLike(_t, k))
                return true; // (re)declaration in a fresh scope
        }
        return false;
    }

    void
    apply(const CfgStmt &s, FactSet &facts) const override
    {
        if (s.scopeExit)
            return;
        for (std::size_t vi = 0; vi < _vars.size(); ++vi) {
            if (stmtGens(s, _vars[vi].name))
                facts.set(vi);
            else if (stmtKills(s, _vars[vi].name))
                facts.reset(vi);
        }
    }

  private:
    const std::vector<Token> &_t;
    const std::vector<MovedVar> &_vars;
};

void
ruleUseAfterMove(const LexedFile &file, const FunctionExtent &fe,
                 const FunctionCfg &cfg, std::vector<Diagnostic> &out,
                 std::vector<SuppressionUse> *uses)
{
    const std::vector<Token> &t = file.tokens;

    // Track locals that are both declared and moved-from in this body
    // (members and parameters stay out: their lifetime is not ours to
    // reason about from one function).
    std::vector<MovedVar> vars;
    std::set<std::string> seen;
    for (std::size_t i = fe.bodyBegin + 1;
         i + 3 < t.size() && i < fe.bodyEnd; ++i) {
        if (!isIdentAt(t, i, "move") ||
            (i > 0 && punctIn(t, i - 1, {".", "->"})))
            continue;
        if (!isPunctAt(t, i + 1, "(") ||
            t[i + 2].kind != TokKind::kIdent ||
            !isPunctAt(t, i + 3, ")"))
            continue;
        const std::string &name = t[i + 2].text;
        if (seen.count(name) > 0)
            continue;
        bool declared = false;
        for (std::size_t j = fe.bodyBegin + 1; j < fe.bodyEnd; ++j) {
            if (t[j].kind == TokKind::kIdent && t[j].text == name &&
                declLike(t, j)) {
                declared = true;
                break;
            }
        }
        if (!declared)
            continue;
        seen.insert(name);
        vars.push_back(MovedVar{name, t[i].line});
    }
    if (vars.empty())
        return;

    MoveTransfer transfer(t, vars);
    // No back-edge propagation: a value moved late in iteration N is
    // normally reassigned before the read early in iteration N+1.
    std::vector<FactSet> entry =
        solveForward(cfg, vars.size(), transfer, false);

    std::vector<bool> reported(vars.size(), false);
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        FactSet state = entry[b];
        for (const CfgStmt &s : cfg.blocks[b].stmts) {
            if (!s.scopeExit) {
                for (std::size_t vi = 0; vi < vars.size(); ++vi) {
                    if (reported[vi] || !state.test(vi) ||
                        transfer.stmtGens(s, vars[vi].name))
                        continue;
                    for (std::size_t k = s.firstTok;
                         k <= s.lastTok && k < t.size(); ++k) {
                        if (t[k].kind != TokKind::kIdent ||
                            t[k].text != vars[vi].name)
                            continue;
                        if (k > 0 &&
                            punctIn(t, k - 1, {".", "->", "::"}))
                            continue;
                        if (isPunctAt(t, k + 1, "="))
                            continue; // reassignment anchor
                        if (punctIn(t, k + 1, {".", "->"}) &&
                            k + 2 < t.size() &&
                            kResetMethods.count(t[k + 2].text) > 0 &&
                            isPunctAt(t, k + 3, "("))
                            continue; // reset anchor
                        if (declLike(t, k))
                            continue; // declaration anchor
                        emitFlow(
                            file, out, uses, t[k], "use-after-move",
                            "local `" + vars[vi].name +
                                "` was moved-from (line " +
                                std::to_string(vars[vi].firstMoveLine) +
                                ") on a path reaching this read; "
                                "reassign or .clear()/.reset() it "
                                "before reuse");
                        reported[vi] = true;
                        break;
                    }
                }
            }
            transfer.apply(s, state);
        }
    }
}

// ---------------------------------------------------------------- //
// lock-across-wait
// ---------------------------------------------------------------- //

struct LockDecl
{
    std::string name;
    std::size_t typeTok = 0; //!< index of the lock_guard/... token
    int line = 0;
};

class LockTransfer : public Transfer
{
  public:
    LockTransfer(const std::vector<Token> &toks,
                 const std::vector<LockDecl> &locks)
        : _t(toks), _locks(locks)
    {
    }

    void
    apply(const CfgStmt &s, FactSet &facts) const override
    {
        for (std::size_t li = 0; li < _locks.size(); ++li) {
            const LockDecl &d = _locks[li];
            bool in_span =
                s.firstTok <= d.typeTok && d.typeTok <= s.lastTok;
            if (s.scopeExit) {
                // The destructor runs where the declaring scope ends.
                if (in_span)
                    facts.reset(li);
                continue;
            }
            if (in_span) {
                facts.set(li);
                continue;
            }
            for (std::size_t k = s.firstTok;
                 k <= s.lastTok && k < _t.size(); ++k) {
                if (_t[k].kind == TokKind::kIdent &&
                    _t[k].text == d.name &&
                    punctIn(_t, k + 1, {".", "->"}) &&
                    (isIdentAt(_t, k + 2, "unlock") ||
                     isIdentAt(_t, k + 2, "release")) &&
                    isPunctAt(_t, k + 3, "(")) {
                    facts.reset(li);
                    break;
                }
            }
        }
    }

  private:
    const std::vector<Token> &_t;
    const std::vector<LockDecl> &_locks;
};

void
ruleLockAcrossWait(const LexedFile &file, const FunctionExtent &fe,
                   const FunctionCfg &cfg, std::vector<Diagnostic> &out,
                   std::vector<SuppressionUse> *uses)
{
    const std::vector<Token> &t = file.tokens;

    std::vector<LockDecl> locks;
    for (std::size_t i = fe.bodyBegin + 1; i < fe.bodyEnd; ++i) {
        if (t[i].kind != TokKind::kIdent ||
            kLockTypes.count(t[i].text) == 0)
            continue;
        if (i > 0 && punctIn(t, i - 1, {".", "->"}))
            continue;
        std::size_t j = i + 1;
        if (isPunctAt(t, j, "<")) { // skip the template argument list
            int depth = 1;
            ++j;
            while (j < fe.bodyEnd && depth > 0) {
                if (t[j].kind == TokKind::kPunct) {
                    if (t[j].text == "<")
                        ++depth;
                    else if (t[j].text == ">")
                        --depth;
                    else if (t[j].text == ">>")
                        depth -= 2;
                    else if (t[j].text == ";")
                        break; // lone less-than, not a template
                }
                ++j;
            }
            if (depth > 0)
                continue;
        }
        if (j >= fe.bodyEnd || t[j].kind != TokKind::kIdent)
            continue;
        if (!isPunctAt(t, j + 1, "(") && !isPunctAt(t, j + 1, "{"))
            continue;
        locks.push_back(LockDecl{t[j].text, i, t[j].line});
    }
    if (locks.empty())
        return;

    LockTransfer transfer(t, locks);
    // Back edges ARE followed: a lock acquired before a loop is still
    // held at a wait inside it, every iteration.
    std::vector<FactSet> entry =
        solveForward(cfg, locks.size(), transfer, true);

    std::set<std::pair<std::size_t, std::size_t>> fired; // (lock, site)
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        FactSet state = entry[b];
        for (const CfgStmt &s : cfg.blocks[b].stmts) {
            if (!s.scopeExit) {
                for (std::size_t k = s.firstTok;
                     k <= s.lastTok && k < t.size(); ++k) {
                    if (t[k].kind != TokKind::kIdent ||
                        !isPunctAt(t, k + 1, "("))
                        continue;
                    bool member =
                        k > 0 && punctIn(t, k - 1, {".", "->"});
                    bool site =
                        (member && kWaitMembers.count(t[k].text) > 0) ||
                        kPoolSubmits.count(t[k].text) > 0;
                    if (!site)
                        continue;
                    // cv.wait(lk, ...) hands the lock to the wait —
                    // the sanctioned pattern, exempt for that lock.
                    std::string first_arg;
                    if (k + 2 < t.size() &&
                        t[k + 2].kind == TokKind::kIdent &&
                        punctIn(t, k + 3, {")", ","}))
                        first_arg = t[k + 2].text;
                    for (std::size_t li = 0; li < locks.size(); ++li) {
                        if (!state.test(li) ||
                            locks[li].name == first_arg ||
                            !fired.insert({li, k}).second)
                            continue;
                        emitFlow(
                            file, out, uses, t[k], "lock-across-wait",
                            "scoped lock `" + locks[li].name +
                                "` (line " +
                                std::to_string(locks[li].line) +
                                ") is held across this `" + t[k].text +
                                "`; narrow the lock scope or unlock "
                                "before blocking");
                    }
                }
            }
            transfer.apply(s, state);
        }
    }
}

// ---------------------------------------------------------------- //
// unchecked-outcome
// ---------------------------------------------------------------- //

void
ruleUncheckedOutcome(const LexedFile &file, const FunctionCfg &cfg,
                     const std::map<std::string, std::string> &mustUseFns,
                     std::vector<Diagnostic> &out,
                     std::vector<SuppressionUse> *uses)
{
    const std::vector<Token> &t = file.tokens;
    for (const BasicBlock &blk : cfg.blocks) {
        for (const CfgStmt &s : blk.stmts) {
            if (s.scopeExit || s.firstTok >= t.size() ||
                t[s.firstTok].kind != TokKind::kIdent)
                continue;
            // Walk a qualified chain `a::b`, `obj.f`, `p->f` from the
            // statement head; anything else (return x(), auto r = x(),
            // (void)x(), if (x())) is not a bare discarding call.
            std::size_t k = s.firstTok;
            while (k + 2 <= s.lastTok &&
                   punctIn(t, k + 1, {".", "->", "::"}) &&
                   t[k + 2].kind == TokKind::kIdent)
                k += 2;
            if (!isPunctAt(t, k + 1, "("))
                continue;
            auto fn = mustUseFns.find(t[k].text);
            if (fn == mustUseFns.end())
                continue;
            // The call's close paren must end the statement: the
            // result feeds nothing.
            int depth = 0;
            std::size_t close = t.size();
            for (std::size_t q = k + 1; q <= s.lastTok; ++q) {
                if (t[q].kind != TokKind::kPunct)
                    continue;
                if (t[q].text == "(")
                    ++depth;
                else if (t[q].text == ")" && --depth == 0) {
                    close = q;
                    break;
                }
            }
            if (close != s.lastTok)
                continue;
            emitFlow(file, out, uses, t[k], "unchecked-outcome",
                     "call to `" + t[k].text + "` discards its `" +
                         fn->second +
                         "` result (a must-use type); assign and "
                         "check it, or cast to (void) with a comment");
        }
    }
}

// ---------------------------------------------------------------- //
// signal-unsafe-transitive
// ---------------------------------------------------------------- //

struct CallSite
{
    std::string callee;
    std::size_t tok = 0;
};

/** Call sites of one extent: `name (` where name is not preceded by
 *  `.`/`->`/ident/`new` (member calls and declarations excluded — the
 *  graph is name-based and must not fabricate edges). */
std::vector<CallSite>
collectCallSites(const LexedFile &file, const FunctionExtent &fe)
{
    const std::vector<Token> &t = file.tokens;
    std::vector<CallSite> sites;
    for (std::size_t k = fe.bodyBegin + 1;
         k < fe.bodyEnd && k < t.size(); ++k) {
        if (t[k].kind != TokKind::kIdent || !isPunctAt(t, k + 1, "("))
            continue;
        if (kNotCalls.count(t[k].text) > 0)
            continue;
        if (k > 0) {
            const Token &prev = t[k - 1];
            if (prev.kind == TokKind::kIdent &&
                (prev.text != "return" &&
                 kNotCalls.count(prev.text) == 0))
                continue; // declaration or `new T(...)`-like
            if (prev.text == "new" || punctIn(t, k - 1, {".", "->"}))
                continue;
        }
        sites.push_back(CallSite{t[k].text, k});
    }
    return sites;
}

void
ruleSignalUnsafeTransitive(const std::vector<LexedFile> &files,
                           const SymbolIndex &index,
                           std::vector<Diagnostic> &out,
                           std::vector<SuppressionUse> *uses)
{
    std::map<std::string, const LexedFile *> by_path;
    for (const LexedFile &f : files)
        by_path[f.path] = &f;

    // Bodied extents, their call sites, and the name -> extents map.
    std::vector<std::size_t> extents;
    std::map<std::string, std::vector<std::size_t>> by_name;
    std::map<std::size_t, std::vector<CallSite>> calls;
    for (std::size_t e = 0; e < index.functions.size(); ++e) {
        const FunctionExtent &fe = index.functions[e];
        if (!fe.hasBody)
            continue;
        auto fit = by_path.find(fe.file);
        if (fit == by_path.end())
            continue;
        extents.push_back(e);
        calls[e] = collectCallSites(*fit->second, fe);
        if (!fe.name.empty())
            by_name[fe.name].push_back(e);
    }

    // First async-signal-unsafe token of an extent's body, or npos.
    auto direct_unsafe =
        [&](std::size_t e) -> std::pair<std::size_t, const char *> {
        const FunctionExtent &fe = index.functions[e];
        const std::vector<Token> &t = by_path.at(fe.file)->tokens;
        for (std::size_t k = fe.bodyBegin + 1;
             k < fe.bodyEnd && k < t.size(); ++k) {
            if (t[k].kind != TokKind::kIdent)
                continue;
            const char *what = signalUnsafeCategory(t[k].text);
            if (what != nullptr)
                return {k, what};
        }
        return {static_cast<std::size_t>(-1), nullptr};
    };

    for (std::size_t h : extents) {
        const FunctionExtent &handler = index.functions[h];
        if (!handler.signalHandler)
            continue;
        const LexedFile &hfile = *by_path.at(handler.file);

        std::set<std::size_t> visited = {h};
        // extent -> (caller extent, call-site token in the caller)
        std::map<std::size_t, std::pair<std::size_t, std::size_t>> via;
        std::deque<std::size_t> queue = {h};
        while (!queue.empty()) {
            std::size_t u = queue.front();
            queue.pop_front();
            for (const CallSite &site : calls[u]) {
                auto tgt = by_name.find(site.callee);
                if (tgt == by_name.end())
                    continue;
                for (std::size_t v : tgt->second) {
                    if (!visited.insert(v).second)
                        continue;
                    via[v] = {u, site.tok};
                    auto [bad_tok, what] = direct_unsafe(v);
                    if (what == nullptr) {
                        queue.push_back(v);
                        continue;
                    }
                    // Reconstruct handler -> ... -> v and find the
                    // first hop's call token inside the handler.
                    std::vector<std::string> chain;
                    std::size_t hop_tok = site.tok;
                    for (std::size_t cur = v; cur != h;) {
                        chain.insert(chain.begin(),
                                     index.functions[cur].name);
                        auto [caller, tok] = via.at(cur);
                        if (caller == h)
                            hop_tok = tok;
                        cur = caller;
                    }
                    std::string path_str = handler.name.empty()
                                               ? "handler"
                                               : handler.name;
                    for (const std::string &n : chain)
                        path_str += " -> " + n;
                    const FunctionExtent &fv = index.functions[v];
                    const std::vector<Token> &vt =
                        by_path.at(fv.file)->tokens;
                    emitFlow(hfile, out, uses, hfile.tokens[hop_tok],
                             "signal-unsafe-transitive",
                             "signal handler reaches `" +
                                 vt[bad_tok].text + "` (" + what +
                                 ") via " + path_str +
                                 "; handlers may only set a lock-free "
                                 "atomic flag");
                }
            }
        }
    }
}

} // namespace

void
runFlowRulesFile(const LexedFile &file, const SymbolIndex &index,
                 const std::set<std::string> &enabled,
                 std::vector<Diagnostic> &out,
                 std::vector<SuppressionUse> *uses)
{
    bool want_move = ruleOn(enabled, "use-after-move");
    bool want_lock = ruleOn(enabled, "lock-across-wait");
    bool want_outcome = ruleOn(enabled, "unchecked-outcome");
    if (!want_move && !want_lock && !want_outcome)
        return;

    // Functions whose (heuristic, name-based) return type is tagged
    // must-use; names with a conflicting non-must-use overload drop
    // out rather than risk a false fire.
    std::map<std::string, std::string> must_use_fns;
    if (want_outcome && !index.mustUseTypes.empty()) {
        std::set<std::string> ambiguous;
        for (const FunctionExtent &fe : index.functions) {
            if (fe.name.empty())
                continue;
            if (index.mustUseTypes.count(fe.returnType) > 0)
                must_use_fns.emplace(fe.name, fe.returnType);
            else
                ambiguous.insert(fe.name);
        }
        for (const std::string &n : ambiguous)
            must_use_fns.erase(n);
    }

    for (const FunctionExtent &fe : index.functions) {
        if (!fe.hasBody || fe.file != file.path ||
            fe.bodyEnd >= file.tokens.size() ||
            fe.bodyEnd <= fe.bodyBegin)
            continue;
        FunctionCfg cfg =
            buildFunctionCfg(file, fe.bodyBegin, fe.bodyEnd);
        if (!cfg.wellFormed)
            continue;
        if (want_move)
            ruleUseAfterMove(file, fe, cfg, out, uses);
        if (want_lock)
            ruleLockAcrossWait(file, fe, cfg, out, uses);
        if (want_outcome && !must_use_fns.empty())
            ruleUncheckedOutcome(file, cfg, must_use_fns, out, uses);
    }
}

void
runFlowRulesGlobal(const std::vector<LexedFile> &files,
                   const SymbolIndex &index,
                   const std::set<std::string> &enabled,
                   std::vector<Diagnostic> &out,
                   std::vector<SuppressionUse> *uses)
{
    if (!ruleOn(enabled, "signal-unsafe-transitive"))
        return;
    ruleSignalUnsafeTransitive(files, index, out, uses);
}

} // namespace astra::lint
