# Empty compiler generated dependencies file for astra_common.
# This may be replaced when dependencies are built.
