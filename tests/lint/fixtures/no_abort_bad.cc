// Positive fixture for no-abort: abort/terminate skip the failure
// handler and the throw-on-fatal test hook.
#include <cstdlib>
#include <exception>

void
die(int v)
{
    if (v == 1)
        abort(); // FIRE(no-abort)
    if (v == 2)
        std::abort(); // FIRE(no-abort)
    std::terminate(); // FIRE(no-abort)
}
