// Positive fixture for allocator-tu: this file carries no file-level
// allocator tag, so every placement new fires — ordinary simulation
// code must not manage object lifetimes by hand. The per-line
// suppressions still work as an escape hatch.
#include <new>

struct Slot
{
    alignas(8) unsigned char bytes[32];
};

int *
construct(Slot &s, Slot &t, Slot &u)
{
    int *a = ::new (static_cast<void *>(s.bytes)) int(1); // FIRE(allocator-tu)
    int *b = new (static_cast<void *>(t.bytes)) int(2);   // FIRE(allocator-tu)
    int *c = new (static_cast<void *>(u.bytes)) int(3); // NOLINT: escape hatch
    return *a + *b > 0 ? a : c;
}
