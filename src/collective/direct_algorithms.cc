#include "collective/direct_algorithms.hh"

#include "common/logging.hh"

namespace astra
{

// --- DirectBase ---------------------------------------------------------

DirectBase::DirectBase(AlgContext &ctx, int wire_step,
                       std::function<void()> on_complete)
    : _ctx(ctx), _d(ctx.groupSize()), _r(ctx.myRank()),
      _wireStep(wire_step), _onComplete(std::move(on_complete))
{
}

int
DirectBase::channelFor(int dst_rank) const
{
    const int n = _ctx.numChannels();
    return (_r + dst_rank + _ctx.myChannel()) % n;
}

void
DirectBase::onMessage(const Message &msg)
{
    if (msg.tag.step != _wireStep)
        panic("direct pass got step %d, expected %d", msg.tag.step,
              _wireStep);
    _queue.push_back(msg.payload);
    pumpReceives();
}

void
DirectBase::pumpReceives()
{
    if (!_started || _completed || _processing || _queue.empty())
        return;
    auto payload = std::move(_queue.front());
    _queue.pop_front();
    _processing = true;
    _ctx.scheduleAfter(_ctx.endpointDelay(),
                       [this, payload = std::move(payload)] {
                           _processing = false;
                           ++_processed;
                           processPayload(payload);
                           if (!_completed)
                               pumpReceives();
                       });
}

void
DirectBase::complete()
{
    if (_completed)
        panic("direct pass completed twice");
    _completed = true;
    _onComplete();
}

// --- DirectReduceScatter ------------------------------------------------

DirectReduceScatter::DirectReduceScatter(AlgContext &ctx, int wire_step,
                                         std::function<void()> on_complete)
    : DirectBase(ctx, wire_step, std::move(on_complete))
{
}

void
DirectReduceScatter::start()
{
    _started = true;
    _entryRange = _ctx.data().current();
    if (_d == 1) {
        complete();
        return;
    }
    // Send block j to node j, all peers at once (Fig. 5 right).
    for (int j = 0; j < _d; ++j) {
        if (j == _r)
            continue;
        const ElemRange br = _entryRange.subRange(_d, j);
        auto payload = std::make_shared<RangePayload>(
            _ctx.data().makeRangePayload(br, /*reduce=*/true));
        _ctx.sendToRankVia(j, channelFor(j),
                           _ctx.data().bytesFor(br.length()), _wireStep,
                           std::move(payload));
    }
    pumpReceives();
}

void
DirectReduceScatter::processPayload(const std::shared_ptr<void> &payload)
{
    auto p = std::static_pointer_cast<RangePayload>(payload);
    if (!(p->range == _entryRange.subRange(_d, _r)))
        panic("direct RS received a block not owned by this node");
    _ctx.data().applyRangePayload(*p);
    if (_processed == _d - 1) {
        _ctx.data().restrictValidTo(_entryRange.subRange(_d, _r));
        complete();
    }
}

// --- DirectAllGather ------------------------------------------------------

DirectAllGather::DirectAllGather(AlgContext &ctx, int wire_step,
                                 std::function<void()> on_complete)
    : DirectBase(ctx, wire_step, std::move(on_complete))
{
}

void
DirectAllGather::start()
{
    _started = true;
    const ElemRange cur = _ctx.data().current();
    _hullLo = cur.lo;
    _hullHi = cur.hi;
    if (_d == 1) {
        complete();
        return;
    }
    // Broadcast the own block to every peer.
    for (int j = 0; j < _d; ++j) {
        if (j == _r)
            continue;
        auto payload = std::make_shared<RangePayload>(
            _ctx.data().makeRangePayload(cur, /*reduce=*/false));
        _ctx.sendToRankVia(j, channelFor(j),
                           _ctx.data().bytesFor(cur.length()), _wireStep,
                           std::move(payload));
    }
    pumpReceives();
}

void
DirectAllGather::processPayload(const std::shared_ptr<void> &payload)
{
    auto p = std::static_pointer_cast<RangePayload>(payload);
    _ctx.data().applyRangePayload(*p);
    _hullLo = std::min(_hullLo, p->range.lo);
    _hullHi = std::max(_hullHi, p->range.hi);
    if (_processed == _d - 1) {
        _ctx.data().setCurrent(ElemRange{_hullLo, _hullHi});
        complete();
    }
}

// --- DirectAllReduce -------------------------------------------------------

DirectAllReduce::DirectAllReduce(AlgContext &ctx)
    : _ctx(ctx),
      _rs(ctx, 0,
          [this] {
              _inGather = true;
              _ag.start();
              for (const Message &m : _earlyGather)
                  _ag.onMessage(m);
              _earlyGather.clear();
          }),
      _ag(ctx, 1, [this] { _ctx.phaseDone(); })
{
}

void
DirectAllReduce::start()
{
    _rs.start();
}

void
DirectAllReduce::onMessage(const Message &msg)
{
    if (msg.tag.step == 0) {
        _rs.onMessage(msg);
    } else if (_inGather) {
        _ag.onMessage(msg);
    } else {
        _earlyGather.push_back(msg);
    }
}

// --- DirectAllToAll ---------------------------------------------------------

DirectAllToAll::DirectAllToAll(AlgContext &ctx)
    : DirectBase(ctx, /*wire_step=*/0, [&ctx] { ctx.phaseDone(); })
{
}

void
DirectAllToAll::start()
{
    _started = true;
    if (_d == 1) {
        complete();
        return;
    }
    const Bytes msg_bytes =
        (_ctx.entryBytes() + Bytes(_d) - 1) / Bytes(_d);
    for (int j = 0; j < _d; ++j) {
        if (j == _r)
            continue;
        auto payload = std::make_shared<BlockPayload>();
        payload->blocks = _ctx.data().takeBlocksIf(
            [this, j](int, int blk_dst) {
                return _ctx.phaseCoordOfGlobalRank(blk_dst) == j;
            });
        _ctx.sendToRankVia(j, channelFor(j), msg_bytes, _wireStep,
                           std::move(payload));
    }
    pumpReceives();
}

void
DirectAllToAll::processPayload(const std::shared_ptr<void> &payload)
{
    auto p = std::static_pointer_cast<BlockPayload>(payload);
    _ctx.data().addBlocks(p->blocks);
    if (_processed == _d - 1)
        complete();
}

} // namespace astra
