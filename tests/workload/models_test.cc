#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "workload/models.hh"

namespace astra
{
namespace
{

TEST(Models, Resnet50HasTheRightShape)
{
    WorkloadSpec spec = resnet50Workload();
    EXPECT_EQ(spec.parallelism, ParallelismKind::Data);
    // 53 convolutions + fc1000.
    EXPECT_EQ(spec.layers.size(), 54u);
    EXPECT_EQ(spec.layers.front().name, "conv1");
    EXPECT_EQ(spec.layers.back().name, "fc1000");
    // Data parallel: only weight gradients are communicated (Table I).
    for (const LayerSpec &l : spec.layers) {
        EXPECT_EQ(l.fwdComm, CollectiveKind::None) << l.name;
        EXPECT_EQ(l.igComm, CollectiveKind::None) << l.name;
        EXPECT_EQ(l.wgComm, CollectiveKind::AllReduce) << l.name;
        EXPECT_GT(l.wgCommSize, 0u) << l.name;
        EXPECT_GT(l.fwdCompute, 0u) << l.name;
    }
}

TEST(Models, Resnet50ParameterCountIsRight)
{
    // Conv + FC weights of ResNet-50 are ~25.0M parameters (the full
    // model's 25.6M includes BN and biases, which carry no GEMM).
    WorkloadSpec spec = resnet50Workload();
    Bytes grad_bytes = 0;
    for (const LayerSpec &l : spec.layers)
        grad_bytes += l.wgCommSize;
    const double params = static_cast<double>(grad_bytes) / 4;
    EXPECT_GT(params, 23.0e6);
    EXPECT_LT(params, 26.5e6);
}

TEST(Models, Resnet50EarlyLayersAreSmallerInWeights)
{
    WorkloadSpec spec = resnet50Workload();
    // conv1 (7x7x3x64 = ~9.4k params) vs the last 1x1 (512x2048 ~ 1M).
    EXPECT_LT(spec.layers.front().wgCommSize, 64 * 1024u);
    Bytes last_stage = 0;
    for (const LayerSpec &l : spec.layers) {
        if (l.name.rfind("conv5", 0) == 0)
            last_stage = std::max(last_stage, l.wgCommSize);
    }
    EXPECT_GT(last_stage, 4 * 1024 * 1024u);
}

TEST(Models, TransformerEncoderLayersAreUniform)
{
    WorkloadSpec spec = transformerWorkload();
    EXPECT_EQ(spec.parallelism, ParallelismKind::Hybrid);
    ASSERT_EQ(spec.layers.size(), 8u); // embedding + 6 encoders + output
    // Fig. 13: layers 1-6 are structurally identical.
    const LayerSpec &ref = spec.layers[1];
    for (std::size_t i = 2; i <= 6; ++i) {
        EXPECT_EQ(spec.layers[i].fwdCompute, ref.fwdCompute);
        EXPECT_EQ(spec.layers[i].fwdCommSize, ref.fwdCommSize);
        EXPECT_EQ(spec.layers[i].wgCommSize, ref.wgCommSize);
    }
    // The embedding layer has no communication.
    EXPECT_EQ(spec.layers[0].fwdComm, CollectiveKind::None);
    EXPECT_EQ(spec.layers[0].wgComm, CollectiveKind::None);
    // Encoder layers exchange activations and gradients.
    EXPECT_EQ(ref.fwdComm, CollectiveKind::AllGather);
    EXPECT_EQ(ref.igComm, CollectiveKind::AllGather);
    EXPECT_EQ(ref.wgComm, CollectiveKind::AllReduce);
}

TEST(Models, TransformerShardingDividesWork)
{
    TransformerConfig one;
    one.modelShards = 1;
    TransformerConfig four;
    four.modelShards = 4;
    WorkloadSpec w1 = transformerWorkload(one);
    WorkloadSpec w4 = transformerWorkload(four);
    EXPECT_GT(w1.layers[1].fwdCompute, w4.layers[1].fwdCompute);
    EXPECT_EQ(w1.layers[1].wgCommSize, 4 * w4.layers[1].wgCommSize);
    EXPECT_EQ(w1.layers[1].fwdCommSize, 4 * w4.layers[1].fwdCommSize);
}

TEST(Models, DlrmUsesAllToAllForEmbeddings)
{
    WorkloadSpec spec = dlrmWorkload();
    bool found = false;
    for (const LayerSpec &l : spec.layers) {
        if (l.name == "embedding_exchange") {
            found = true;
            EXPECT_EQ(l.fwdComm, CollectiveKind::AllToAll);
            EXPECT_EQ(l.igComm, CollectiveKind::AllToAll);
            EXPECT_GT(l.fwdCommSize, 0u);
        }
    }
    EXPECT_TRUE(found);
    // MLP layers are data-parallel style.
    EXPECT_EQ(spec.layers.front().wgComm, CollectiveKind::AllReduce);
}

TEST(Models, GptDecoderLayersAreUniformAndSharded)
{
    WorkloadSpec spec = gptWorkload();
    EXPECT_EQ(spec.parallelism, ParallelismKind::Hybrid);
    // embedding + 12 decoders + lm head.
    ASSERT_EQ(spec.layers.size(), 14u);
    const LayerSpec &ref = spec.layers[1];
    EXPECT_EQ(ref.fwdComm, CollectiveKind::AllReduce);
    EXPECT_EQ(ref.igComm, CollectiveKind::AllReduce);
    for (std::size_t i = 2; i <= 12; ++i) {
        EXPECT_EQ(spec.layers[i].fwdCompute, ref.fwdCompute);
        EXPECT_EQ(spec.layers[i].wgCommSize, ref.wgCommSize);
    }
    // More shards -> less per-shard compute and fewer grad bytes.
    GptConfig four;
    four.modelShards = 4;
    WorkloadSpec sharded = gptWorkload(four);
    EXPECT_LT(sharded.layers[1].fwdCompute, ref.fwdCompute);
    EXPECT_EQ(ref.wgCommSize, 2 * sharded.layers[1].wgCommSize);
}

TEST(Models, Gpt2ParameterCountIsRight)
{
    // GPT-2 small: ~124M params; our GEMM-only accounting (12 layers
    // x 12 d^2 + d x vocab) lands at ~123M with shards = 1.
    GptConfig gc;
    gc.modelShards = 1;
    WorkloadSpec spec = gptWorkload(gc);
    Bytes grad = 0;
    for (const LayerSpec &l : spec.layers)
        grad += l.wgCommSize;
    const double params = static_cast<double>(grad) / 4;
    EXPECT_GT(params, 110e6);
    EXPECT_LT(params, 135e6);
}

TEST(Models, Vgg16IsFcDominated)
{
    WorkloadSpec spec = vgg16Workload();
    EXPECT_EQ(spec.parallelism, ParallelismKind::Data);
    ASSERT_EQ(spec.layers.size(), 16u); // 13 convs + 3 FCs
    Bytes conv_bytes = 0, fc_bytes = 0;
    for (const LayerSpec &l : spec.layers) {
        if (l.name.rfind("fc", 0) == 0)
            fc_bytes += l.wgCommSize;
        else
            conv_bytes += l.wgCommSize;
    }
    // VGG-16's defining property: FC weights dwarf conv weights.
    EXPECT_GT(fc_bytes, 5 * conv_bytes);
    // Total ~138M params.
    const double params =
        static_cast<double>(conv_bytes + fc_bytes) / 4;
    EXPECT_GT(params, 130e6);
    EXPECT_LT(params, 145e6);
}

TEST(Models, SyntheticWorkloadMatchesRequest)
{
    WorkloadSpec s =
        syntheticWorkload(5, 1000, 2048, ParallelismKind::Model);
    EXPECT_EQ(s.layers.size(), 5u);
    EXPECT_EQ(s.parallelism, ParallelismKind::Model);
    for (const LayerSpec &l : s.layers) {
        EXPECT_EQ(l.fwdCompute, 1000u);
        EXPECT_EQ(l.fwdComm, CollectiveKind::AllGather);
        EXPECT_EQ(l.wgComm, CollectiveKind::None);
    }
    WorkloadSpec d = syntheticWorkload(2, 10, 64, ParallelismKind::Data);
    EXPECT_EQ(d.layers[0].wgComm, CollectiveKind::AllReduce);
    EXPECT_EQ(d.layers[0].fwdComm, CollectiveKind::None);
    EXPECT_THROW(syntheticWorkload(0, 1, 1), FatalError);
}

TEST(Models, GeneratedSpecsSurviveTheFileFormat)
{
    for (const WorkloadSpec &spec :
         {resnet50Workload(), transformerWorkload(), dlrmWorkload()}) {
        std::istringstream in(spec.serialize());
        WorkloadSpec back = WorkloadSpec::parse(in, spec.name);
        EXPECT_EQ(back.layers.size(), spec.layers.size());
        EXPECT_EQ(back.parallelism, spec.parallelism);
        EXPECT_EQ(back.totalCompute(), spec.totalCompute());
        EXPECT_EQ(back.totalCommBytes(), spec.totalCommBytes());
    }
}

TEST(Models, BiggerBatchMeansMoreCompute)
{
    ModelConfig small;
    small.batch = 16;
    ModelConfig big;
    big.batch = 64;
    EXPECT_GT(resnet50Workload(big).totalCompute(),
              resnet50Workload(small).totalCompute());
    // Weight gradient sizes do not depend on batch.
    EXPECT_EQ(resnet50Workload(big).totalCommBytes(),
              resnet50Workload(small).totalCommBytes());
}

} // namespace
} // namespace astra
