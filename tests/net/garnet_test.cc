#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/event_queue.hh"
#include "net/analytical.hh"
#include "net/garnet_lite.hh"

namespace astra
{
namespace
{

struct Harness
{
    EventQueue eq;
    Topology topo;
    GarnetLiteNetwork net;
    std::vector<std::pair<NodeId, Tick>> deliveries;

    explicit Harness(const SimConfig &cfg)
        : topo(cfg), net(eq, topo, cfg)
    {
        for (NodeId n = 0; n < topo.numNodes(); ++n) {
            net.setReceiver(n, [this, n](const Message &) {
                deliveries.emplace_back(n, eq.now());
            });
        }
    }

    void
    send(NodeId src, NodeId dst, Bytes bytes, RouteHint hint)
    {
        Message m;
        m.src = src;
        m.dst = dst;
        m.bytes = bytes;
        m.hint = hint;
        net.send(std::move(m));
    }
};

TEST(GarnetLite, PacketizesPerLinkClass)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    Harness h(cfg);
    // 1000 B on a 256 B inter-package link -> 4 packets.
    h.send(0, 1, 1000, RouteHint{1, 0});
    h.eq.run();
    EXPECT_EQ(h.net.deliveredPackets(), 4u);
    EXPECT_EQ(h.net.deliveredMessages(), 1u);
}

TEST(GarnetLite, SinglePacketTiming)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    Harness h(cfg);
    h.send(0, 1, 200, RouteHint{1, 0}); // one 200 B packet, 2 flits
    h.eq.run();
    ASSERT_EQ(h.deliveries.size(), 1u);
    // 2 flits x 128 B at 25 B/cyc x 0.94 -> ceil(10.89) = 11 cycles,
    // plus wire latency and router pipeline.
    EXPECT_EQ(h.deliveries[0].second, 11u + 200u + 1u);
}

TEST(GarnetLite, MessageTimeMatchesFlitSerialization)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    Harness h(cfg);
    h.send(0, 1, 1024, RouteHint{1, 0}); // 4 packets x 2 flits
    h.eq.run();
    ASSERT_EQ(h.deliveries.size(), 1u);
    // Packets serialize: grants at 0,11,22,33; last arrives at
    // 33 + 11 + 200 + 1.
    EXPECT_EQ(h.deliveries[0].second, 33u + 11u + 201u);
}

TEST(GarnetLite, AgreesWithAnalyticalWithinPacketizationOverhead)
{
    // On an uncongested single link the two backends should agree to
    // within the per-packet rounding overhead.
    for (Bytes bytes : {Bytes(4096), Bytes(65536), Bytes(1048576)}) {
        SimConfig cfg;
        cfg.torus(1, 2, 1);
        Tick tg, ta;
        {
            Harness h(cfg);
            h.send(0, 1, bytes, RouteHint{1, 0});
            h.eq.run();
            tg = h.deliveries.at(0).second;
        }
        {
            EventQueue eq;
            Topology topo(cfg);
            AnalyticalNetwork net(eq, topo, cfg);
            Tick got = 0;
            net.setReceiver(1, [&](const Message &) { got = eq.now(); });
            net.setReceiver(0, [](const Message &) {});
            Message m;
            m.src = 0;
            m.dst = 1;
            m.bytes = bytes;
            m.hint = RouteHint{1, 0};
            net.send(std::move(m));
            eq.run();
            ta = got;
        }
        const double ratio = static_cast<double>(tg) / double(ta);
        EXPECT_GT(ratio, 0.95) << "bytes=" << bytes;
        EXPECT_LT(ratio, 1.25) << "bytes=" << bytes;
    }
}

TEST(GarnetLite, TinyBuffersBackpressure)
{
    SimConfig cfg;
    cfg.torus(1, 4, 1);
    cfg.vcsPerVnet = 1;
    cfg.buffersPerVc = 2; // room for a single 2-flit packet per buffer
    Harness h(cfg);
    h.send(0, 2, 4096, RouteHint{1, 0}); // 16 packets over 2 hops
    h.eq.run();
    ASSERT_EQ(h.deliveries.size(), 1u);
    EXPECT_EQ(h.net.deliveredPackets(), 16u);
    EXPECT_LE(h.net.peakBufferOccupancy(), 2);
}

TEST(GarnetLite, SmallBuffersSlowCongestedTransfers)
{
    auto run = [](int buffers) {
        SimConfig cfg;
        cfg.torus(1, 8, 1);
        cfg.vcsPerVnet = 1;
        cfg.buffersPerVc = buffers;
        Harness h(cfg);
        h.send(0, 4, 64 * 1024, RouteHint{1, 0});
        h.eq.run();
        return h.deliveries.at(0).second;
    };
    // With deep buffers the pipeline streams; with room for only one
    // packet in flight per hop it must stall.
    EXPECT_GT(run(2), run(1000));
}

TEST(GarnetLite, NormalInjectionPacesPackets)
{
    auto run = [](InjectionPolicy pol) {
        SimConfig cfg;
        cfg.torus(1, 2, 1);
        cfg.injectionPolicy = pol;
        Harness h(cfg);
        h.send(0, 1, 16 * 1024, RouteHint{1, 0});
        h.eq.run();
        return h.deliveries.at(0).second;
    };
    // A single uncongested link drains either way; aggressive must not
    // be slower.
    EXPECT_LE(run(InjectionPolicy::Aggressive),
              run(InjectionPolicy::Normal));
}

TEST(GarnetLite, ZeroByteMessageStillDelivers)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    Harness h(cfg);
    h.send(0, 1, 0, RouteHint{1, 0});
    h.eq.run();
    EXPECT_EQ(h.deliveries.size(), 1u);
    EXPECT_EQ(h.net.deliveredPackets(), 1u);
}

TEST(GarnetLite, LoopbackBypassesNetwork)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    Harness h(cfg);
    h.send(1, 1, 999, RouteHint{1, 0});
    h.eq.run();
    ASSERT_EQ(h.deliveries.size(), 1u);
    EXPECT_EQ(h.net.deliveredPackets(), 0u);
}

TEST(GarnetLite, ContendingFlowsShareALink)
{
    SimConfig cfg;
    cfg.torus(1, 4, 1);
    Harness h(cfg);
    // Both flows traverse link 1->2 on channel 0.
    h.send(0, 2, 32 * 1024, RouteHint{1, 0});
    h.send(1, 2, 32 * 1024, RouteHint{1, 0});
    h.eq.run();
    ASSERT_EQ(h.deliveries.size(), 2u);
    Tick lone;
    {
        Harness solo(cfg);
        solo.send(1, 2, 32 * 1024, RouteHint{1, 0});
        solo.eq.run();
        lone = solo.deliveries.at(0).second;
    }
    // The flow sharing the link must finish later than it would alone.
    const Tick later =
        std::max(h.deliveries[0].second, h.deliveries[1].second);
    EXPECT_GT(later, lone);
}

TEST(GarnetLite, PacketPoolRecyclesAcrossMessages)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    Harness h(cfg);
    // Many sequential messages of many packets each: the free list
    // must keep the arena near the peak in-flight count instead of
    // allocating one Packet per delivered packet.
    for (int i = 0; i < 20; ++i) {
        h.send(0, 1, 64 * 1024, RouteHint{1, 0});
        h.eq.run();
    }
    EXPECT_EQ(h.net.deliveredMessages(), 20u);
    EXPECT_GT(h.net.deliveredPackets(), h.net.allocatedPackets());
    // 64 KiB / 256 B = 256 packets per message; one message's worth of
    // concurrently-live packets bounds the arena.
    EXPECT_LE(h.net.allocatedPackets(), 256u);
}

struct ScenarioResult
{
    std::vector<std::pair<NodeId, Tick>> deliveries;
    std::uint64_t packets;
    std::uint64_t events;
};

ScenarioResult
runCoalesceScenario(const SimConfig &cfg)
{
    Harness h(cfg);
    // Deep source queues (Aggressive injection) plus cross-traffic
    // sharing links, so grants interleave across senders and credits
    // run out on the fat message's path.
    h.send(0, 1, 8 * 1024, RouteHint{0, 0});
    h.send(0, 2, 8 * 1024, RouteHint{1, 0});
    h.send(3, 1, 4 * 1024, RouteHint{1, 0});
    h.send(2, 3, 32 * 1024, RouteHint{0, 0});
    h.send(1, 0, 8 * 1024, RouteHint{0, 0});
    h.eq.run();
    return ScenarioResult{std::move(h.deliveries),
                          h.net.deliveredPackets(),
                          h.eq.executedEvents()};
}

TEST(GarnetLite, CoalescedPumpsMatchBaselineDeliveries)
{
    // net-coalesce folds a busy source link's per-packet pump wake-ups
    // into batched grants. The fold must be observationally pure: the
    // same packets arrive at the same nodes at the same ticks, in the
    // same order — only the event count drops.
    SimConfig cfg;
    cfg.torus(2, 2, 1);
    cfg.injectionPolicy = InjectionPolicy::Aggressive;
    const ScenarioResult base = runCoalesceScenario(cfg);

    SimConfig coalesced = cfg;
    coalesced.netCoalesce = true;
    const ScenarioResult coal = runCoalesceScenario(coalesced);

    EXPECT_EQ(base.deliveries, coal.deliveries);
    EXPECT_EQ(base.packets, coal.packets);
    EXPECT_LT(coal.events, base.events);
}

TEST(GarnetLite, CoalescingIsOffByDefault)
{
    // The determinism-digest contract covers default-config runs, so
    // the default must retire the exact un-coalesced event stream.
    SimConfig cfg;
    EXPECT_FALSE(cfg.netCoalesce);
    cfg.set("net-coalesce", "true");
    EXPECT_TRUE(cfg.netCoalesce);
    cfg.set("net-coalesce", "false");
    EXPECT_FALSE(cfg.netCoalesce);
}

} // namespace
} // namespace astra
