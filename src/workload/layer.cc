#include "workload/layer.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace astra
{

const char *
toString(ParallelismKind p)
{
    switch (p) {
      case ParallelismKind::Data: return "DATA";
      case ParallelismKind::Model: return "MODEL";
      case ParallelismKind::Hybrid: return "HYBRID";
    }
    return "?";
}

ParallelismKind
parseParallelismKind(const std::string &s)
{
    if (s == "DATA" || s == "data")
        return ParallelismKind::Data;
    if (s == "MODEL" || s == "model")
        return ParallelismKind::Model;
    if (s == "HYBRID" || s == "hybrid")
        return ParallelismKind::Hybrid;
    fatal("unknown parallelism '%s' (DATA/MODEL/HYBRID)", s.c_str());
    return ParallelismKind::Data;
}

CollectiveKind
LayerSpec::comm(CommSlot slot) const
{
    switch (slot) {
      case CommSlot::Forward: return fwdComm;
      case CommSlot::InputGrad: return igComm;
      case CommSlot::WeightGrad: return wgComm;
    }
    return CollectiveKind::None;
}

Bytes
LayerSpec::commSize(CommSlot slot) const
{
    switch (slot) {
      case CommSlot::Forward: return fwdCommSize;
      case CommSlot::InputGrad: return igCommSize;
      case CommSlot::WeightGrad: return wgCommSize;
    }
    return 0;
}

Tick
LayerSpec::compute(CommSlot slot) const
{
    switch (slot) {
      case CommSlot::Forward: return fwdCompute;
      case CommSlot::InputGrad: return igCompute;
      case CommSlot::WeightGrad: return wgCompute;
    }
    return 0;
}

Tick
LayerSpec::updateDelay(CommSlot slot) const
{
    const double kib = static_cast<double>(commSize(slot)) / 1024.0;
    return static_cast<Tick>(std::llround(updateTimePerKiB * kib));
}

namespace
{

struct LineReader
{
    std::istream &in;
    const std::string &what;
    int lineno = 0;

    /** Next non-empty, non-comment line; false at EOF. */
    bool
    next(std::string &out)
    {
        std::string line;
        while (std::getline(in, line)) {
            ++lineno;
            auto hash = line.find('#');
            if (hash != std::string::npos)
                line.erase(hash);
            auto b = line.find_first_not_of(" \t\r");
            if (b == std::string::npos)
                continue;
            auto e = line.find_last_not_of(" \t\r");
            out = line.substr(b, e - b + 1);
            return true;
        }
        return false;
    }

    [[noreturn]] void
    fail(const char *msg) const
    {
        fatal("%s:%d: %s", what.c_str(), lineno, msg);
    }
};

} // namespace

WorkloadSpec
WorkloadSpec::parse(std::istream &in, const std::string &what)
{
    WorkloadSpec spec;
    spec.name = what;
    LineReader rd{in, what};
    std::string line;

    if (!rd.next(line))
        rd.fail("empty workload file");
    {
        std::istringstream ls(line);
        std::string key, value;
        ls >> key >> value;
        if (key != "PARALLELISM:")
            rd.fail("expected 'PARALLELISM: <kind>'");
        spec.parallelism = parseParallelismKind(value);
    }

    int layer_count = 0;
    if (!rd.next(line))
        rd.fail("expected 'LAYERS: <n>'");
    {
        std::istringstream ls(line);
        std::string key;
        ls >> key >> layer_count;
        if (key != "LAYERS:" || !ls || layer_count < 1)
            rd.fail("expected 'LAYERS: <n>' with n >= 1");
    }

    for (int i = 0; i < layer_count; ++i) {
        LayerSpec layer;

        if (!rd.next(line))
            rd.fail("unexpected EOF: expected 'LAYER <name>'");
        {
            std::istringstream ls(line);
            std::string key;
            ls >> key >> layer.name;
            if (key != "LAYER" || layer.name.empty())
                rd.fail("expected 'LAYER <name>'");
        }

        if (!rd.next(line))
            rd.fail("unexpected EOF: expected 'COMPUTE ...'");
        {
            std::istringstream ls(line);
            std::string key;
            long long f = -1, g = -1, w = -1;
            ls >> key >> f >> g >> w;
            if (key != "COMPUTE" || !ls || f < 0 || g < 0 || w < 0)
                rd.fail("expected 'COMPUTE <fwd> <ig> <wg>'");
            layer.fwdCompute = static_cast<Tick>(f);
            layer.igCompute = static_cast<Tick>(g);
            layer.wgCompute = static_cast<Tick>(w);
        }

        if (!rd.next(line))
            rd.fail("unexpected EOF: expected 'COMM ...'");
        {
            std::istringstream ls(line);
            std::string key, tf, tg, tw;
            long long sf = -1, sg = -1, sw = -1;
            ls >> key >> tf >> sf >> tg >> sg >> tw >> sw;
            if (key != "COMM" || !ls || sf < 0 || sg < 0 || sw < 0) {
                rd.fail("expected 'COMM <fwdType> <fwdSize> <igType> "
                        "<igSize> <wgType> <wgSize>'");
            }
            layer.fwdComm = parseCollectiveKind(tf.c_str());
            layer.igComm = parseCollectiveKind(tg.c_str());
            layer.wgComm = parseCollectiveKind(tw.c_str());
            layer.fwdCommSize = static_cast<Bytes>(sf);
            layer.igCommSize = static_cast<Bytes>(sg);
            layer.wgCommSize = static_cast<Bytes>(sw);
            if (layer.fwdComm != CollectiveKind::None && sf == 0)
                rd.fail("forward comm declared with size 0");
            if (layer.igComm != CollectiveKind::None && sg == 0)
                rd.fail("input-grad comm declared with size 0");
            if (layer.wgComm != CollectiveKind::None && sw == 0)
                rd.fail("weight-grad comm declared with size 0");
        }

        if (!rd.next(line))
            rd.fail("unexpected EOF: expected 'UPDATE ...'");
        {
            std::istringstream ls(line);
            std::string key;
            double u = -1;
            ls >> key >> u;
            if (key != "UPDATE" || !ls || u < 0)
                rd.fail("expected 'UPDATE <cycles-per-KiB>'");
            layer.updateTimePerKiB = u;
        }

        spec.layers.push_back(std::move(layer));
    }

    if (rd.next(line))
        rd.fail("trailing content after last layer");
    return spec;
}

WorkloadSpec
WorkloadSpec::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open workload file '%s'", path.c_str());
    return parse(in, path);
}

std::string
WorkloadSpec::serialize() const
{
    std::ostringstream os;
    os << "# " << name << "\n";
    os << "PARALLELISM: " << astra::toString(parallelism) << "\n";
    os << "LAYERS: " << layers.size() << "\n";
    for (const LayerSpec &l : layers) {
        os << "LAYER " << l.name << "\n";
        os << "COMPUTE " << l.fwdCompute << " " << l.igCompute << " "
           << l.wgCompute << "\n";
        os << "COMM " << astra::toString(l.fwdComm) << " " << l.fwdCommSize
           << " " << astra::toString(l.igComm) << " " << l.igCommSize
           << " " << astra::toString(l.wgComm) << " " << l.wgCommSize
           << "\n";
        os << "UPDATE " << l.updateTimePerKiB << "\n";
    }
    return os.str();
}

void
WorkloadSpec::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out << serialize();
}

Tick
WorkloadSpec::totalCompute() const
{
    Tick t = 0;
    for (const LayerSpec &l : layers)
        t += l.fwdCompute + l.igCompute + l.wgCompute;
    return t;
}

Bytes
WorkloadSpec::totalCommBytes() const
{
    Bytes b = 0;
    for (const LayerSpec &l : layers)
        b += l.fwdCommSize + l.igCommSize + l.wgCommSize;
    return b;
}

} // namespace astra
