// Positive fixture for ptr-key-order: ordered containers keyed by raw
// pointers order by address, which varies run to run (ASLR), so any
// iteration order leaks nondeterminism into the event stream.
#include <map>
#include <set>

struct Node
{
    int id;
};

const std::map<Node *, int> g_rank;         // FIRE(ptr-key-order)
const std::set<const Node *> g_members;     // FIRE(ptr-key-order)
const std::multimap<int *, int> g_multi;    // FIRE(ptr-key-order)

int
use()
{
    return static_cast<int>(g_rank.size() + g_members.size() +
                            g_multi.size());
}
