file(REMOVE_RECURSE
  "libastra_collective.a"
)
