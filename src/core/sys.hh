/**
 * @file
 * Sys — the system layer of one NPU (Fig. 6, middle box).
 *
 * Every NPU endpoint owns a Sys. The workload layer (or a benchmark
 * harness) calls issueCollective(); the Sys splits the set into chunks
 * (Table II), runs them through the scheduler's LSQ pipeline, executes
 * the topology-aware phase algorithms, and exchanges messages with
 * peer Sys instances through the NetworkApi. Completion is reported
 * per set via CollectiveHandle.
 *
 * Stream ids must be cluster-consistent: all participating nodes must
 * issue the same sequence of collectives (they run the same training
 * program), so each node's local id counter yields the same ids for
 * the same logical operation. This mirrors ASTRA-SIM, where every NPU
 * executes an identical workload loop.
 */

#ifndef ASTRA_CORE_SYS_HH
#define ASTRA_CORE_SYS_HH

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "core/scheduler.hh"
#include "core/stream.hh"
#include "net/network_api.hh"
#include "topo/topology.hh"

namespace astra
{

class FaultManager;
struct FailureRecord;

/** Parameters of one collective issue. */
struct CollectiveRequest
{
    CollectiveKind kind = CollectiveKind::AllReduce;
    Bytes bytes = 0;          //!< set size at this node
    std::vector<int> dims;    //!< participating dims; empty = all
    LayerId layer = -1;       //!< for per-layer statistics
    std::function<void()> onComplete; //!< optional completion callback
    /** Override the configured set splitting (0 = use config). */
    int setSplits = 0;
};

/**
 * The per-NPU system layer.
 */
class Sys
{
  public:
    Sys(NodeId id, const Topology &topo, NetworkApi &net,
        const SimConfig &cfg);

    NodeId id() const { return _id; }
    const Topology &topology() const { return _topo; }
    const SimConfig &config() const { return _cfg; }
    EventQueue &eventQueue() { return _net.eventQueue(); }
    Tick now() { return eventQueue().now(); }

    /**
     * Issue one collective set. The same call must be made (in the
     * same order) on every participating node.
     */
    std::shared_ptr<CollectiveHandle>
    issueCollective(const CollectiveRequest &req);

    // --- point-to-point transfers (pipeline parallelism) --------------

    /**
     * Send @p bytes to @p dst, routed dimension-ordered through the
     * fabric. @p tag must be agreed between sender and receiver (the
     * pipeline trainer derives it from (pass, microbatch, direction)).
     */
    void sendP2P(NodeId dst, Bytes bytes, std::uint64_t tag);

    /**
     * Register @p cb to run (after the endpoint delay) when the
     * transfer tagged (@p src, @p tag) arrives; fires immediately if
     * it already has. One expectation per (src, tag).
     */
    void expectP2P(NodeId src, std::uint64_t tag,
                   std::function<void()> cb);

    /** Per-node statistics (queue/network delay breakdown etc.). */
    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    /**
     * Install an inspector invoked on every completed stream before it
     * is destroyed (tests use this to check chunk post-conditions;
     * built-in post-condition panics run regardless).
     */
    void
    setStreamInspector(std::function<void(const Stream &)> fn)
    {
        _inspector = std::move(fn);
    }

    /** Streams still alive (issued, not completed). */
    std::size_t liveStreams() const { return _streams.size(); }

    /**
     * Monotonic progress heartbeat for the livelock watchdog
     * (docs/robustness.md): bumped whenever a stream finishes or
     * completes a phase. The supervised loop compares the cluster-wide
     * sum between slices — events draining without this moving for a
     * full watchdog window is a livelocked run.
     */
    std::uint64_t progressCount() const { return _progress; }

    /** Outstanding P2P expectations (Cluster's deadlock scan). */
    std::size_t pendingP2P() const { return _p2pExpected.size(); }

    // --- fault layer (docs/faults.md) ---------------------------------

    /**
     * Wire the fault layer: @p faults drives retry pacing, straggler
     * slowdown, and ring-channel re-planning; @p sink receives the
     * FailureRecord of every retries-exhausted send. Never wired on a
     * fault-free run, so the hooks below fall back to the historical,
     * bit-for-bit-identical behavior.
     */
    void setFaults(const FaultManager *faults,
                   std::function<void(const FailureRecord &)> sink);

    /**
     * The backend discarded @p msg on @p link (fault layer). Retries
     * with bounded exponential backoff until the plan's retry budget is
     * exhausted, then reports a FailureRecord through the sink — never
     * a fatal.
     */
    void onMessageLost(const Message &msg, int link);

    /**
     * Ring channel a stream should use in @p dim: the historical
     * `id % channels` without faults, re-planned around forever-down
     * links otherwise (FaultManager::pickChannel).
     */
    int pickChannel(int dim, int channels, StreamId id) const;

    /** This node's straggler slowdown factor (1.0 = not a straggler). */
    double computeSlowdown() const;

    /** Endpoint processing delay, stretched on a straggler node. */
    Tick scaledEndpointDelay() const;

    /** Attach a trace recorder (Cluster wires this when enabled). */
    void setTrace(TraceRecorder *trace) { _trace = trace; }

    /** The attached trace recorder, or nullptr. */
    TraceRecorder *trace() { return _trace; }

    // --- internal interfaces (Stream / Scheduler) ---------------------

    /** Transmit a message on behalf of @p stream's current phase. */
    void sendMessage(Stream &stream, int dst_rank, int channel,
                     Bytes bytes, int step, std::shared_ptr<void> payload);

    /** Called by Stream::phaseDone (defers the transition). */
    void streamPhaseDone(Stream &stream);

    /** Called by the Scheduler when a stream is admitted to its LSQ. */
    void startStreamPhase(Stream &stream);

    /** Messages already buffered for (sid, phase)? (wanted-promotion) */
    bool hasBufferedMessages(StreamId sid, int phase) const;

    Scheduler &scheduler() { return _scheduler; }

  private:
    /** Network receiver callback for this node. */
    void onMessage(const Message &msg);

    /** Phase transition after streamPhaseDone (runs off the stack). */
    void advanceStream(StreamId sid);

    /** Verify post-conditions, notify the handle, destroy the stream. */
    void finishStream(Stream &stream);

    /** Replay any messages buffered for (sid, phase). */
    void drainUnmatched(Stream &stream);

    NodeId _id;
    const Topology &_topo;
    NetworkApi &_net;
    const SimConfig &_cfg;
    Scheduler _scheduler;
    StatGroup _stats;

    /** Dispatch a point-to-point arrival. */
    void onP2PMessage(const Message &msg);

    StreamId _nextStreamId = 1;
    std::map<StreamId, std::unique_ptr<Stream>> _streams;
    std::map<std::pair<StreamId, std::int32_t>, std::vector<Message>>
        _unmatched;
    /** (src, tag) -> pending receive callback / early arrival count. */
    std::map<std::pair<NodeId, std::uint64_t>, std::function<void()>>
        _p2pExpected;
    std::map<std::pair<NodeId, std::uint64_t>, int> _p2pArrived;
    std::function<void(const Stream &)> _inspector;
    std::uint64_t _progress = 0; //!< watchdog heartbeat (progressCount)
    TraceRecorder *_trace = nullptr;
    const FaultManager *_faults = nullptr; //!< null = no fault plan
    std::function<void(const FailureRecord &)> _failureSink;
};

} // namespace astra

#endif // ASTRA_CORE_SYS_HH
