# Empty dependencies file for astra_bench_support.
# This may be replaced when dependencies are built.
