/**
 * @file
 * Analytical compute model of a TPU-like systolic-array NPU.
 *
 * The paper feeds ASTRA-SIM layer compute times produced by an
 * analytical DNN accelerator simulator modelling a 256x256 TPU-like
 * systolic array [12], plus parameterized delays for the non-GEMM part
 * of each layer and stalls from limited DRAM bandwidth (Sec. IV-A).
 * This module is the stand-in (DESIGN.md substitution #2): an
 * output-stationary tiling latency model
 *
 *     tiles      = ceil(M/rows) * ceil(N/cols)
 *     tile cost  = K + rows + cols - 2        (fill + drain + stream)
 *     compute    = tiles * tile cost
 *     memory     = (M*K + K*N + M*N) * dtype / DRAM bandwidth
 *     layer time = max(compute, memory) + fixed overhead
 *
 * at the 1 GHz fabric clock.
 */

#ifndef ASTRA_COMPUTE_SYSTOLIC_HH
#define ASTRA_COMPUTE_SYSTOLIC_HH

#include <cstdint>

#include "common/types.hh"

namespace astra
{

/** Parameters of the modelled accelerator (Table IV: 256x256). */
struct SystolicParams
{
    int rows = 256;
    int cols = 256;
    /** HBM bandwidth in bytes/cycle (== GB/s at 1 GHz). */
    double dramBandwidth = 900.0;
    /** Bytes per matrix element (fp16 storage). */
    int dtypeBytes = 2;
    /** Fixed non-GEMM cost added per layer invocation, cycles. */
    Tick layerOverhead = 2000;
    /**
     * Accelerator clock relative to the 1 GHz fabric clock. The
     * paper's compute numbers come from SIGMA's analytical model whose
     * absolute scale is not published; this factor calibrates the
     * compute/communication balance so the ResNet-50 scaling study
     * lands in the paper's regime (Fig. 17: a few percent exposed
     * communication at 8 NPUs rising to ~25% at 128).
     * See DESIGN.md, substitution #2.
     */
    double clockGhz = 14.0;
};

/** GEMM dimensions: C[M,N] += A[M,K] * B[K,N]. */
struct GemmShape
{
    std::int64_t m = 1;
    std::int64_t k = 1;
    std::int64_t n = 1;
};

/** Pure compute cycles for @p shape (no memory stalls, no overhead). */
Tick systolicComputeCycles(const SystolicParams &p, const GemmShape &shape);

/** DRAM traffic cycles for @p shape. */
Tick systolicMemoryCycles(const SystolicParams &p, const GemmShape &shape);

/** Full layer delay: max(compute, memory) + overhead. */
Tick systolicGemmLatency(const SystolicParams &p, const GemmShape &shape);

} // namespace astra

#endif // ASTRA_COMPUTE_SYSTOLIC_HH
