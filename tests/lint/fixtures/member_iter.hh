// Header half of the sibling-pair fixture: the unordered member is
// declared here, iterated in member_iter.cc. The analyzer must share
// the header's symbol table with its sibling source.
#ifndef TESTS_LINT_FIXTURES_MEMBER_ITER_HH
#define TESTS_LINT_FIXTURES_MEMBER_ITER_HH

#include <unordered_map>

class Table
{
  public:
    int sum() const;

  private:
    std::unordered_map<int, int> _rows;
};

#endif
