# Empty dependencies file for fig13_transformer.
# This may be replaced when dependencies are built.
