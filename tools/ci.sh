#!/usr/bin/env bash
# CI driver: lint, build and test the normal configuration, then the
# sanitizer matrix.
#
#   tools/ci.sh          # lint gate, normal build + full ctest,
#                        # validated smoke, TSan build + concurrency
#                        # subset
#   tools/ci.sh --lint   # the static-analysis gate only (tools/lint.sh
#                        # + SARIF artifact validation + baseline mode)
#   tools/ci.sh --ubsan  # + UBSan tree with -DASTRA_VALIDATE=ON, full
#                        # ctest (every integrity checker enabled)
#   tools/ci.sh --asan   # + ASan tree, full ctest
#   tools/ci.sh --tsan   # gated TSan stage only: thread-sanitized
#                        # build, *full* ctest, --jobs=4 sweep smoke
#   tools/ci.sh --full   # also run the *full* suite under TSan (slow)
#
# Build trees: build/ (normal), build-tsan/, build-ubsan/, build-asan/,
# all gitignored.
set -euo pipefail
cd "$(dirname "$0")/.."

FULL_TSAN=0
LINT_ONLY=0
RUN_UBSAN=0
RUN_ASAN=0
TSAN_ONLY=0
for arg in "$@"; do
    case "$arg" in
        --full) FULL_TSAN=1 ;;
        --lint) LINT_ONLY=1 ;;
        --ubsan) RUN_UBSAN=1 ;;
        --asan) RUN_ASAN=1 ;;
        --tsan) TSAN_ONLY=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"

if [ "$TSAN_ONLY" -eq 1 ]; then
    # Gated TSan stage: everything the default run only samples. A
    # thread-sanitized build of the whole tree, the complete test
    # suite under it, and the parallel sweep smoke with the digest
    # gates — the strongest dynamic complement to astra-lint's static
    # concurrency rules (shared-state / thread-capture).
    echo "=== TSan gate: build (-DASTRA_SANITIZE=thread) ==="
    cmake -B build-tsan -S . -DASTRA_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$JOBS"
    export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
    echo "=== TSan gate: ctest (full suite) ==="
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
    echo "=== TSan gate: sweep smoke (--jobs=4) ==="
    ./build-tsan/bench/sweep_bench --quick --jobs=4 \
        --out=build-tsan/ci_tsan_bench.json
    python3 -m json.tool build-tsan/ci_tsan_bench.json >/dev/null
    grep -q '"results_identical": true' build-tsan/ci_tsan_bench.json \
        || { echo "TSan sweep smoke: results diverged" >&2; exit 1; }
    grep -q '"digests_identical": true' build-tsan/ci_tsan_bench.json \
        || { echo "TSan sweep smoke: digests diverged" >&2; exit 1; }
    echo "=== ci.sh: TSan gate green ==="
    exit 0
fi

echo "=== lint gate (tools/lint.sh -> astra-lint) ==="
# Builds astra-lint from this tree and fails on any diagnostic over
# src/, tools/ and tests/ (docs/static-analysis.md), stale
# suppressions included. clang-tidy runs additionally when installed;
# it is not required.
tools/lint.sh

echo "=== lint artifacts (SARIF + baseline mode) ==="
# The SARIF log CI archives must parse and carry the right schema; the
# checked-in baseline (empty: the tree is clean) must hold. lint.sh
# just built the binary above — unless it fell back to grep rules in a
# toolchain-less bootstrap environment, where there is no binary (and
# no build either, so nothing downstream needs the artifact).
if [ ! -x build/tools/astra-lint ]; then
    echo "astra-lint binary missing (grep fallback?); skipping artifacts" >&2
else
./build/tools/astra-lint --sarif=build/lint.sarif src tools tests
python3 -m json.tool build/lint.sarif >/dev/null
grep -q '"version": "2.1.0"' build/lint.sarif \
    || { echo "lint.sarif: missing SARIF 2.1.0 version" >&2; exit 1; }
grep -q '"name": "astra-lint"' build/lint.sarif \
    || { echo "lint.sarif: missing tool.driver.name" >&2; exit 1; }
./build/tools/astra-lint --baseline=tools/lint-baseline.txt \
    src tools tests
echo "SARIF artifact valid; baseline holds"

echo "=== flow-sensitive rules (CFG + dataflow layer) ==="
# The four statement-level rules must run clean over the real tree on
# their own, and the enlarged SARIF rule catalog must carry their ids
# (an archived artifact with a silently shrunken catalog would hide a
# rule regression from downstream dashboards).
./build/tools/astra-lint \
    --rule=use-after-move,lock-across-wait,unchecked-outcome,signal-unsafe-transitive \
    src tools tests
for rule in use-after-move lock-across-wait unchecked-outcome \
        signal-unsafe-transitive; do
    grep -q "\"id\": \"$rule\"" build/lint.sarif \
        || { echo "lint.sarif: rule catalog missing $rule" >&2; exit 1; }
done
# Self-analysis smoke: the analyzer must hold its own sources to the
# same bar. --no-allowlist because the shipped allowlist's entries for
# the rest of the tree would all be stale over this narrow file set.
./build/tools/astra-lint --no-allowlist src/lint tools/astra_lint.cc
echo "flow rules clean; SARIF catalog complete; self-analysis green"
fi

if [ "$LINT_ONLY" -eq 1 ]; then
    echo "=== ci.sh: lint green ==="
    exit 0
fi

echo "=== normal build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "=== normal ctest ==="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== observability smoke (trace + metric report, --validate) ==="
# The CLI must emit a Chrome trace and a metric report that an
# independent parser accepts; run once with every integrity checker
# enabled (--validate) and the determinism digest on, then validate
# both outputs with Python's json module.
./build/tools/astra-sim --collective=allreduce --bytes=1MB \
    --validate --digest \
    --trace-file=build/ci_trace.json --report-json=build/ci_report.json
python3 -m json.tool build/ci_trace.json >/dev/null
python3 -m json.tool build/ci_report.json >/dev/null
grep -q '"ph": "C"' build/ci_trace.json \
    || { echo "trace has no counter lane" >&2; exit 1; }
grep -q 'astra-metrics-v1' build/ci_report.json \
    || { echo "report missing schema marker" >&2; exit 1; }
echo "trace and report are valid JSON"

echo "=== fault-injection smoke (docs/faults.md) ==="
# The shipped fault scenario must complete on both backends with every
# integrity checker and the determinism digest on, and the failure
# report members must keep the metric report valid JSON.
for backend in analytical garnet-lite; do
    ./build/tools/astra-sim --collective=allreduce --bytes=256KB \
        --config=configs/faulty_4x4x4.cfg --backend="$backend" \
        --validate --digest=verify \
        --report-json="build/ci_fault_${backend}.json"
    python3 -m json.tool "build/ci_fault_${backend}.json" >/dev/null
    grep -q '"outcome": "completed"' "build/ci_fault_${backend}.json" \
        || { echo "fault smoke ($backend): not completed" >&2; exit 1; }
done
# Retries-exhausted must surface as the Degraded exit code (3) with a
# machine-readable failure report, not a fatal.
set +e
./build/tools/astra-sim --collective=allreduce --bytes=16KB \
    --local-dim=1 --num-packages=4 --package-rows=1 --package-rings=1 \
    --fault='down link=0 from=0 to=end' \
    --fault='down link=4 from=0 to=end' \
    --fault-timeout=10 --fault-max-retries=2 \
    --report-json=build/ci_fault_degraded.json >/dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 3 ] \
    || { echo "degraded run exited $rc, want 3" >&2; exit 1; }
python3 -m json.tool build/ci_fault_degraded.json >/dev/null
grep -q '"outcome": "degraded"' build/ci_fault_degraded.json \
    || { echo "degraded report missing outcome" >&2; exit 1; }
# A malformed fault rule is a config error: exit code 2, before any
# simulation runs.
set +e
./build/tools/astra-sim --collective=allreduce --bytes=1KB \
    --fault='down link=0 from=5 to=2' >/dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 2 ] \
    || { echo "bad fault rule exited $rc, want 2" >&2; exit 1; }
echo "fault smoke green (completed/degraded/config-error all correct)"

echo "=== perf smoke (bench/sweep_bench --quick) ==="
# Determinism gates hard: the parallel sweep must reproduce the serial
# reference bit-for-bit — ranked results AND per-candidate event
# digests. Timing is printed for the CI log but never gates (shared
# runners are too noisy for wall-clock thresholds).
./build/bench/sweep_bench --quick --jobs=4 --out=build/ci_bench.json
python3 -m json.tool build/ci_bench.json >/dev/null
grep -q '"results_identical": true' build/ci_bench.json \
    || { echo "perf smoke: parallel sweep results diverged" >&2; exit 1; }
grep -q '"digests_identical": true' build/ci_bench.json \
    || { echo "perf smoke: parallel sweep digests diverged" >&2; exit 1; }
echo "perf smoke: $(grep -o '"per_event_ns": [0-9.]*' build/ci_bench.json) (informational)"

echo "=== interrupt/resume smoke (docs/robustness.md) ==="
# Journaled resume gates hard: a sweep SIGINTed mid-flight and resumed
# from its journal must merge to the bit-identical result table (and
# digests) of a never-interrupted run.
./build/tools/astra-sim --explore=16 --bytes=256KB --jobs=2 --digest \
    --report-csv=build/ci_resume_base.csv >/dev/null
rm -f build/ci_resume.journal
set +e
./build/tools/astra-sim --explore=16 --bytes=256KB --jobs=2 --digest \
    --journal=build/ci_resume.journal \
    --report-csv=build/ci_resume_int.csv >/dev/null 2>&1 &
resume_pid=$!
sleep 0.3
kill -INT "$resume_pid" 2>/dev/null
wait "$resume_pid"
rc=$?
set -e
# 5 = interrupted mid-flight; 0 = the sweep won the race and finished
# first. Both are legitimate — the cmp below is the actual gate.
[ "$rc" -eq 5 ] || [ "$rc" -eq 0 ] \
    || { echo "interrupted sweep exited $rc, want 5 or 0" >&2; exit 1; }
./build/tools/astra-sim --explore=16 --bytes=256KB --jobs=2 --digest \
    --journal=build/ci_resume.journal --resume \
    --report-csv=build/ci_resume_merged.csv >/dev/null
cmp build/ci_resume_base.csv build/ci_resume_merged.csv \
    || { echo "resumed sweep table differs from uninterrupted baseline" >&2
         exit 1; }
echo "interrupt/resume smoke green (merged table bit-identical)"

if [ "$RUN_UBSAN" -eq 1 ]; then
    # UBSan doubles as the "full suite with checkers on" job: the tree
    # also sets -DASTRA_VALIDATE=ON, which compiles the hot-path
    # ASTRA_DCHECKs in and defaults the runtime level to full.
    echo "=== UBSan build (-DASTRA_SANITIZE=undefined -DASTRA_VALIDATE=ON) ==="
    cmake -B build-ubsan -S . -DASTRA_SANITIZE=undefined \
        -DASTRA_VALIDATE=ON >/dev/null
    cmake --build build-ubsan -j "$JOBS"
    echo "=== UBSan ctest (full suite, all checkers) ==="
    ctest --test-dir build-ubsan --output-on-failure -j "$JOBS"
fi

if [ "$RUN_ASAN" -eq 1 ]; then
    echo "=== ASan build (-DASTRA_SANITIZE=address) ==="
    cmake -B build-asan -S . -DASTRA_SANITIZE=address >/dev/null
    cmake --build build-asan -j "$JOBS"
    echo "=== ASan ctest (full suite) ==="
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

echo "=== TSan build (-DASTRA_SANITIZE=thread) ==="
cmake -B build-tsan -S . -DASTRA_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"

# TSan aborts the process on the first detected race.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

if [ "$FULL_TSAN" -eq 1 ]; then
    echo "=== TSan ctest (full suite) ==="
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
else
    # The concurrency surface: the sweep engine, the thread pool, and
    # the event queue they drive, plus the parallelized CLI/bench paths.
    echo "=== TSan ctest (concurrency subset) ==="
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
        -R 'Sweep|ThreadPool|ParallelFor|EventQueue|DesignSpace|cli_explore_mode|bench_sweep_quick'
fi

echo "=== ci.sh: all green ==="
