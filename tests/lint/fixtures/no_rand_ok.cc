// Negative fixture: none of these occurrences of "rand" are calls to
// the banned functions, so the file must lint clean.
#include "common/random.hh"

// rand() and srand() in a comment never fire: the rule matches tokens.
static const char *kDoc = "call rand() or srand(7) at your peril";

int
roll(astra::Rng &rng)
{
    int operand = 3;        // identifier containing "rand"
    int strand = operand;   // identifier ending in "rand"
    int rand = strand;      // plain variable named rand: no call syntax
    return rand + static_cast<int>(rng.next()) + (kDoc ? 1 : 0);
}
