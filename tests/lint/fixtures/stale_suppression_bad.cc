// Positive fixture for stale-suppression (analyzed with strict
// suppressions on, as CI runs): each inline allow below either names
// a rule that does not exist or sits on a line where its rule finds
// nothing — dead weight that would silently mask a future regression.

int
answer()
{
    return 42; // astra-lint: allow(no-rand) FIRE(stale-suppression)
}

int
sum(int a, int b)
{
    return a + b; // astra-lint: allow(not-a-rule) FIRE(stale-suppression)
}
