/**
 * @file
 * Fig. 11 — asymmetric hierarchical topology, 64 modules as 4x4x4
 * (4 NAMs per NAP, 16 NAPs).
 *
 * Compares, for all-reduce and all-to-all:
 *  - symmetric fabric (local links at inter-package bandwidth) vs.
 *    asymmetric (local links 8x faster — multi-chip packaging);
 *  - the 3-phase baseline algorithm vs. the 4-phase enhanced one
 *    (RS local -> AR vertical -> AR horizontal -> AG local), which
 *    cuts inter-package volume by the local dimension size (4x).
 *
 * Expected shape: asymmetric >> symmetric; enhanced beats baseline on
 * the asymmetric fabric for all-reduce.
 */

#include "bench/support.hh"

using namespace astra;
using namespace astra::bench;

namespace
{

SimConfig
makeConfig(bool asymmetric, AlgorithmFlavor flavor)
{
    SimConfig cfg;
    cfg.torus(4, 4, 4);
    if (!asymmetric) {
        // Symmetric: local links run at inter-package speed.
        Tick lat = cfg.local.latency;
        cfg.local = cfg.package;
        cfg.local.latency = lat;
    } else {
        cfg.local.bandwidth = 8 * cfg.package.bandwidth;
    }
    cfg.algorithm = flavor;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv);
    banner("Fig. 11", "asymmetric hierarchical 4x4x4: symmetric vs "
                      "asymmetric links, baseline vs enhanced");

    const auto sizes = args.quick ? sizeSweep(256 * KiB, 4 * MiB)
                                  : sizeSweep(64 * KiB, 64 * MiB);

    // All five columns of both tables are independent simulations:
    // one flat job list, fanned out across --jobs workers.
    std::vector<CollectiveJob> sweep;
    for (Bytes size : sizes) {
        SimConfig sym = makeConfig(false, AlgorithmFlavor::Baseline);
        SimConfig ab = makeConfig(true, AlgorithmFlavor::Baseline);
        SimConfig ae = makeConfig(true, AlgorithmFlavor::Enhanced);
        applyOverrides(args, sym);
        applyOverrides(args, ab);
        applyOverrides(args, ae);
        sweep.push_back({sym, CollectiveKind::AllReduce, size});
        sweep.push_back({ab, CollectiveKind::AllReduce, size});
        sweep.push_back({ae, CollectiveKind::AllReduce, size});
        sweep.push_back({sym, CollectiveKind::AllToAll, size});
        sweep.push_back({ab, CollectiveKind::AllToAll, size});
    }
    const std::vector<Tick> times = timeCollectives(args, sweep);

    // All-reduce: the headline comparison.
    {
        Table t;
        t.header({"size", "sym_baseline", "asym_baseline(3ph)",
                  "asym_enhanced(4ph)", "enh_speedup"});
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const Tick ts = times[5 * i];
            const Tick tb = times[5 * i + 1];
            const Tick te = times[5 * i + 2];
            t.row()
                .cell(formatBytes(sizes[i]))
                .cell(std::uint64_t(ts))
                .cell(std::uint64_t(tb))
                .cell(std::uint64_t(te))
                .cell(double(tb) / double(te), "%.3f");
        }
        std::printf("collective: ALLREDUCE\n");
        emitTable(args, "fig11_allreduce.csv", t);
    }

    // All-to-all: symmetric vs asymmetric.
    {
        Table t;
        t.header({"size", "symmetric", "asymmetric", "speedup"});
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const Tick ts = times[5 * i + 3];
            const Tick ta = times[5 * i + 4];
            t.row()
                .cell(formatBytes(sizes[i]))
                .cell(std::uint64_t(ts))
                .cell(std::uint64_t(ta))
                .cell(double(ts) / double(ta), "%.3f");
        }
        std::printf("collective: ALLTOALL\n");
        emitTable(args, "fig11_alltoall.csv", t);
    }
    writeReport(args);
    return 0;
}
