#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/logging.hh"
#include "topo/topology.hh"

namespace astra
{
namespace
{

SimConfig
torusCfg(int m, int n, int k)
{
    SimConfig cfg;
    cfg.torus(m, n, k);
    return cfg;
}

TEST(Topology, TorusDimensionLayout)
{
    Topology t(torusCfg(2, 3, 4));
    EXPECT_EQ(t.kind(), TopologyKind::Torus3D);
    EXPECT_EQ(t.numNodes(), 24);
    ASSERT_EQ(t.numDims(), 3);
    EXPECT_EQ(t.dim(0).name, "local");
    EXPECT_EQ(t.dim(1).name, "horizontal");
    EXPECT_EQ(t.dim(2).name, "vertical");
    EXPECT_EQ(t.dim(0).size, 2);
    EXPECT_EQ(t.dim(1).size, 3);
    EXPECT_EQ(t.dim(2).size, 4);
    EXPECT_EQ(t.dim(0).linkClass, LinkClass::Local);
    EXPECT_EQ(t.dim(1).linkClass, LinkClass::Package);
    EXPECT_EQ(t.dim(0).pattern, DimPattern::Ring);
    // Local rings are unidirectional; package rings split into two
    // unidirectional channels each (2 bidirectional -> 4 channels).
    EXPECT_EQ(t.dim(0).channels, 2);
    EXPECT_EQ(t.dim(1).channels, 4);
    EXPECT_EQ(t.dim(2).channels, 4);
}

TEST(Topology, AllToAllDimensionLayout)
{
    SimConfig cfg;
    cfg.allToAll(2, 8, 7);
    Topology t(cfg);
    EXPECT_EQ(t.kind(), TopologyKind::AllToAll);
    EXPECT_EQ(t.numNodes(), 16);
    ASSERT_EQ(t.numDims(), 2);
    EXPECT_EQ(t.dim(1).name, "alltoall");
    EXPECT_EQ(t.dim(1).pattern, DimPattern::Switch);
    EXPECT_EQ(t.dim(1).channels, 7);
    EXPECT_EQ(t.numSwitches(1), 7);
}

class CoordRoundTrip : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(CoordRoundTrip, EveryNodeRoundTrips)
{
    auto [m, n, k] = GetParam();
    Topology t(torusCfg(m, n, k));
    std::set<NodeId> seen;
    for (NodeId node = 0; node < t.numNodes(); ++node) {
        Coord c = t.coordOf(node);
        EXPECT_GE(c[0], 0);
        EXPECT_LT(c[0], m);
        EXPECT_LT(c[1], n);
        EXPECT_LT(c[2], k);
        EXPECT_EQ(t.nodeAt(c), node);
        seen.insert(node);
    }
    EXPECT_EQ(seen.size(), std::size_t(m * n * k));
}

INSTANTIATE_TEST_SUITE_P(Shapes, CoordRoundTrip,
                         ::testing::Values(std::make_tuple(2, 2, 2),
                                           std::make_tuple(1, 8, 1),
                                           std::make_tuple(4, 4, 4),
                                           std::make_tuple(2, 8, 8),
                                           std::make_tuple(3, 5, 7)));

TEST(Topology, GroupsVaryExactlyOneDimension)
{
    Topology t(torusCfg(2, 3, 4));
    for (NodeId node = 0; node < t.numNodes(); ++node) {
        for (int d = 0; d < t.numDims(); ++d) {
            auto g = t.group(d, node);
            ASSERT_EQ(static_cast<int>(g.size()), t.dim(d).size);
            // Element i sits at coordinate i; the node is a member.
            bool found = false;
            for (int i = 0; i < static_cast<int>(g.size()); ++i) {
                Coord c = t.coordOf(g[std::size_t(i)]);
                EXPECT_EQ(c[d], i);
                // Other coordinates match the member's.
                Coord cn = t.coordOf(node);
                for (int o = 0; o < 3; ++o) {
                    if (o != d) {
                        EXPECT_EQ(c[o], cn[o]);
                    }
                }
                if (g[std::size_t(i)] == node)
                    found = true;
            }
            EXPECT_TRUE(found);
            EXPECT_EQ(g[std::size_t(t.rankInGroup(d, node))], node);
        }
    }
}

TEST(Topology, LocalRingsAreUnidirectional)
{
    Topology t(torusCfg(4, 2, 2));
    for (int ch = 0; ch < t.dim(0).channels; ++ch)
        EXPECT_EQ(t.channelDirection(0, ch), +1);
}

TEST(Topology, PackageChannelsAlternateDirection)
{
    Topology t(torusCfg(2, 4, 4));
    EXPECT_EQ(t.channelDirection(1, 0), +1);
    EXPECT_EQ(t.channelDirection(1, 1), -1);
    EXPECT_EQ(t.channelDirection(1, 2), +1);
    EXPECT_EQ(t.channelDirection(1, 3), -1);
}

TEST(Topology, RingNextWrapsInBothDirections)
{
    Topology t(torusCfg(1, 4, 1));
    // Forward channel 0: 0 -> 1 -> 2 -> 3 -> 0.
    NodeId n = 0;
    for (int i = 0; i < 4; ++i)
        n = t.ringNext(1, 0, n);
    EXPECT_EQ(n, 0);
    EXPECT_EQ(t.ringNext(1, 0, 3), 0);
    // Backward channel 1: 0 -> 3.
    EXPECT_EQ(t.ringNext(1, 1, 0), 3);
}

TEST(Topology, RingDistanceFollowsDirection)
{
    Topology t(torusCfg(1, 8, 1));
    // Forward: distance from rank 2 to rank 5 is 3.
    EXPECT_EQ(t.ringDistance(1, 0, 2, 5), 3);
    // Backward channel: distance from 2 to 5 going down is 5.
    EXPECT_EQ(t.ringDistance(1, 1, 2, 5), 5);
    EXPECT_EQ(t.ringDistance(1, 0, 5, 5), 0);
}

TEST(Topology, WalkingAnyChannelVisitsWholeRing)
{
    Topology t(torusCfg(2, 4, 3));
    for (int d = 0; d < 3; ++d) {
        for (int ch = 0; ch < t.dim(d).channels; ++ch) {
            NodeId start = 7; // arbitrary
            std::set<NodeId> visited{start};
            NodeId cur = start;
            for (int i = 1; i < t.dim(d).size; ++i) {
                cur = t.ringNext(d, ch, cur);
                visited.insert(cur);
            }
            EXPECT_EQ(t.ringNext(d, ch, cur), start);
            EXPECT_EQ(visited.size(), std::size_t(t.dim(d).size));
        }
    }
}

TEST(Topology, PhaseOrderIsLocalVerticalHorizontal)
{
    Topology t(torusCfg(2, 3, 4));
    EXPECT_LT(t.phaseOrderKey(Topology::kDimLocal),
              t.phaseOrderKey(Topology::kDimVertical));
    EXPECT_LT(t.phaseOrderKey(Topology::kDimVertical),
              t.phaseOrderKey(Topology::kDimHorizontal));
}

TEST(Topology, ErrorsOnBadInput)
{
    Topology t(torusCfg(2, 2, 2));
    EXPECT_THROW(t.coordOf(-1), FatalError);
    EXPECT_THROW(t.coordOf(8), FatalError);
    EXPECT_THROW(t.dim(5), std::out_of_range);
    EXPECT_THROW(t.channelDirection(0, 99), FatalError);
    Coord bad;
    bad[0] = 5;
    EXPECT_THROW(t.nodeAt(bad), FatalError);
}

TEST(Topology, SwitchDimensionRejectsRingOps)
{
    SimConfig cfg;
    cfg.allToAll(2, 4, 2);
    Topology t(cfg);
    EXPECT_THROW(t.channelDirection(1, 0), FatalError);
}

TEST(Topology, ToStringDescribesShape)
{
    Topology t(torusCfg(4, 4, 4));
    EXPECT_EQ(t.toString(), "Torus3D 4x4x4 (64 NPUs)");
    SimConfig cfg;
    cfg.allToAll(2, 3, 2);
    Topology a(cfg);
    EXPECT_EQ(a.toString(), "AllToAll 2x3 (6 NPUs, 2 switches)");
}

} // namespace
} // namespace astra
