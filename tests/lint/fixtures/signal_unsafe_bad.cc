// Positive fixture for signal-unsafe: a function whose head carries
// the `astra-lint: signal-handler` mark may run between any two
// instructions of the interrupted thread, so allocating, locking or
// doing IO inside its extent is a finding — malloc holds the heap
// lock, the mutex may already be held by this very thread, and stdio
// buffers are in an unknown state.

std::atomic<int> g_pending{0};
std::mutex g_handler_mutex;

// astra-lint: signal-handler
extern "C" void
onSignalBad(int)
{
    char *buf = static_cast<char *>(malloc(64));       // FIRE(signal-unsafe)
    std::lock_guard<std::mutex> hold(g_handler_mutex); // FIRE(signal-unsafe)
    std::printf("interrupted\n");                      // FIRE(signal-unsafe)
    free(buf);                                         // FIRE(signal-unsafe)
    g_pending.store(1);
}
