#!/usr/bin/env bash
# CI driver: lint, build and test the normal configuration, then the
# sanitizer matrix.
#
#   tools/ci.sh          # lint gate, normal build + full ctest,
#                        # validated smoke, TSan build + concurrency
#                        # subset
#   tools/ci.sh --lint   # the static-analysis gate only (tools/lint.sh)
#   tools/ci.sh --ubsan  # + UBSan tree with -DASTRA_VALIDATE=ON, full
#                        # ctest (every integrity checker enabled)
#   tools/ci.sh --asan   # + ASan tree, full ctest
#   tools/ci.sh --full   # also run the *full* suite under TSan (slow)
#
# Build trees: build/ (normal), build-tsan/, build-ubsan/, build-asan/,
# all gitignored.
set -euo pipefail
cd "$(dirname "$0")/.."

FULL_TSAN=0
LINT_ONLY=0
RUN_UBSAN=0
RUN_ASAN=0
for arg in "$@"; do
    case "$arg" in
        --full) FULL_TSAN=1 ;;
        --lint) LINT_ONLY=1 ;;
        --ubsan) RUN_UBSAN=1 ;;
        --asan) RUN_ASAN=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== lint gate (tools/lint.sh) ==="
tools/lint.sh

if [ "$LINT_ONLY" -eq 1 ]; then
    echo "=== ci.sh: lint green ==="
    exit 0
fi

echo "=== normal build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "=== normal ctest ==="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== observability smoke (trace + metric report, --validate) ==="
# The CLI must emit a Chrome trace and a metric report that an
# independent parser accepts; run once with every integrity checker
# enabled (--validate) and the determinism digest on, then validate
# both outputs with Python's json module.
./build/tools/astra-sim --collective=allreduce --bytes=1MB \
    --validate --digest \
    --trace-file=build/ci_trace.json --report-json=build/ci_report.json
python3 -m json.tool build/ci_trace.json >/dev/null
python3 -m json.tool build/ci_report.json >/dev/null
grep -q '"ph": "C"' build/ci_trace.json \
    || { echo "trace has no counter lane" >&2; exit 1; }
grep -q 'astra-metrics-v1' build/ci_report.json \
    || { echo "report missing schema marker" >&2; exit 1; }
echo "trace and report are valid JSON"

if [ "$RUN_UBSAN" -eq 1 ]; then
    # UBSan doubles as the "full suite with checkers on" job: the tree
    # also sets -DASTRA_VALIDATE=ON, which compiles the hot-path
    # ASTRA_DCHECKs in and defaults the runtime level to full.
    echo "=== UBSan build (-DASTRA_SANITIZE=undefined -DASTRA_VALIDATE=ON) ==="
    cmake -B build-ubsan -S . -DASTRA_SANITIZE=undefined \
        -DASTRA_VALIDATE=ON >/dev/null
    cmake --build build-ubsan -j "$JOBS"
    echo "=== UBSan ctest (full suite, all checkers) ==="
    ctest --test-dir build-ubsan --output-on-failure -j "$JOBS"
fi

if [ "$RUN_ASAN" -eq 1 ]; then
    echo "=== ASan build (-DASTRA_SANITIZE=address) ==="
    cmake -B build-asan -S . -DASTRA_SANITIZE=address >/dev/null
    cmake --build build-asan -j "$JOBS"
    echo "=== ASan ctest (full suite) ==="
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

echo "=== TSan build (-DASTRA_SANITIZE=thread) ==="
cmake -B build-tsan -S . -DASTRA_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"

# TSan aborts the process on the first detected race.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

if [ "$FULL_TSAN" -eq 1 ]; then
    echo "=== TSan ctest (full suite) ==="
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
else
    # The concurrency surface: the sweep engine, the thread pool, and
    # the event queue they drive, plus the parallelized CLI/bench paths.
    echo "=== TSan ctest (concurrency subset) ==="
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
        -R 'Sweep|ThreadPool|ParallelFor|EventQueue|DesignSpace|cli_explore_mode|bench_sweep_quick'
fi

echo "=== ci.sh: all green ==="
