#include "bench/support.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace astra::bench
{

BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--quick] [--csv=DIR] [--key=value ...]\n"
                "  --quick      reduced sweep (CI)\n"
                "  --csv=DIR    also write series as CSV into DIR\n"
                "  --key=value  override any simulator parameter\n",
                argv[0]);
            std::exit(0);
        }
        if (arg == "--quick") {
            args.quick = true;
            continue;
        }
        if (arg.rfind("--csv=", 0) == 0) {
            args.csvDir = arg.substr(6);
            continue;
        }
        if (arg.rfind("--", 0) == 0) {
            auto eq = arg.find('=');
            if (eq == std::string::npos)
                fatal("expected --key=value, got '%s'", arg.c_str());
            args.rawOverrides.emplace_back(arg.substr(2, eq - 2),
                                           arg.substr(eq + 1));
            continue;
        }
        fatal("unexpected argument '%s'", arg.c_str());
    }
    return args;
}

void
applyOverrides(const BenchArgs &args, SimConfig &cfg)
{
    for (const auto &[k, v] : args.rawOverrides)
        cfg.set(k, v);
}

void
banner(const std::string &fig, const std::string &what)
{
    std::printf("=== %s — %s ===\n", fig.c_str(), what.c_str());
}

std::vector<Bytes>
sizeSweep(Bytes lo, Bytes hi, int factor)
{
    std::vector<Bytes> sizes;
    for (Bytes s = lo; s <= hi; s *= Bytes(factor))
        sizes.push_back(s);
    return sizes;
}

Tick
timeCollective(const SimConfig &cfg, CollectiveKind kind, Bytes bytes)
{
    Cluster cluster(cfg);
    return cluster.runCollective(kind, bytes);
}

void
emitTable(const BenchArgs &args, const std::string &name,
          const Table &table)
{
    table.print();
    std::printf("\n");
    if (!args.csvDir.empty())
        table.writeCsv(args.csvDir + "/" + name);
}

} // namespace astra::bench
