/**
 * @file
 * The system-layer scheduler of Fig. 7: ready queue, logical
 * scheduling queues (LSQs) and the dispatcher.
 *
 * - The *ready queue* holds issued chunks that have not entered the
 *   collective pipeline. Ordering follows the scheduling policy
 *   (parameter #7): FIFO appends, LIFO prepends (prioritizing the
 *   latest layer's collectives, Sec. III-E).
 *
 * - One *LSQ* exists per (phase index, dimension, channel): each ring
 *   of a torus dimension and each global switch of the alltoall
 *   dimension gets its own queue (Sec. IV-B). An LSQ admits up to
 *   lsq-concurrency chunks at a time, lowest stream id first.
 *
 * - The *dispatcher* issues dispatch-width (P) chunks from the ready
 *   queue whenever fewer than dispatch-threshold (T) chunks are still
 *   in the first phase of their plan.
 *
 * Deadlock note: chunks reach a given phase's LSQ in an order that can
 * differ across nodes (their pipelines run at different speeds), so a
 * strict per-LSQ serialization could produce a cross-node cycle: node
 * X runs chunk A and queues B while node Y runs B and queues A. Two
 * mechanisms break such cycles: admission is by ascending stream id
 * (globally consistent), and a queued chunk for which messages have
 * already arrived — proof that peers are actively executing it — is
 * promoted past the concurrency cap ("wanted promotion").
 */

#ifndef ASTRA_CORE_SCHEDULER_HH
#define ASTRA_CORE_SCHEDULER_HH

#include <deque>
#include <map>
#include <vector>

#include "common/config.hh"
#include "core/stream.hh"

namespace astra
{

class Sys;

/**
 * Per-node scheduler.
 */
class Scheduler
{
  public:
    Scheduler(Sys &sys, const SimConfig &cfg);

    /** A new chunk enters the ready queue. */
    void submit(Stream *stream);

    /** Chunk entered phase @p p (p > 0): put it into its LSQ. */
    void enqueuePhase(Stream *stream, int p);

    /**
     * Chunk finished phase @p p: release its LSQ slot, trigger the
     * dispatcher (p == 0) and admissions. @p stream_complete marks the
     * final phase.
     */
    void onPhaseFinished(Stream *stream, int p, bool stream_complete);

    /**
     * Messages arrived for @p stream's phase @p p; promote it if it is
     * waiting in that phase's LSQ (see deadlock note above).
     */
    void promoteIfWaiting(Stream *stream, int p);

    /** Chunks past the dispatcher but not yet done with phase 0. */
    int phase0Active() const { return _phase0Active; }

    /** Chunks still waiting in the ready queue. */
    std::size_t readyQueueDepth() const { return _ready.size(); }

    /** Total chunks currently inside any LSQ (waiting or running). */
    int inFlight() const { return _inFlight; }

    /**
     * Drain-time invariants (integrity layer, src/core/validate.cc):
     * once the event queue has drained, the ready queue must be empty,
     * no chunk may still be in phase 0 or in flight, and every LSQ
     * must have released all its slots. Diagnostics carry the npu id.
     */
    void validateDrained() const;

  private:
    struct LsqKey
    {
        int phase;
        int dim;
        int channel;

        auto operator<=>(const LsqKey &) const = default;
    };

    struct Lsq
    {
        std::vector<Stream *> waiting; //!< kept sorted by stream id
        int active = 0;
    };

    /** Key of the LSQ stream @p s uses for phase @p p. */
    LsqKey keyFor(const Stream *s, int p) const;

    /** Put @p s into its phase-@p p LSQ and try admissions. */
    void enqueue(Stream *s, int p);

    /** Admit eligible waiters of @p key. */
    void pump(const LsqKey &key);

    /** Start @p s's current phase (admission). */
    void admit(Stream *s, const LsqKey &key);

    /** Record ready-queue (P0) delay, globally and per layer. */
    void sampleReadyDelay(Stream *s, Tick now);

    /** Emit a ready-queue depth trace counter (no-op without trace). */
    void traceReadyDepth();

    /** Move ready-queue chunks into phase-0 LSQs per the T/P rule. */
    void dispatch();

    Sys &_sys;
    SchedulingPolicy _policy;
    int _threshold;
    int _width;
    int _concurrency;

    std::deque<Stream *> _ready;
    std::map<LsqKey, Lsq> _lsqs;
    int _phase0Active = 0;
    int _inFlight = 0;
};

} // namespace astra

#endif // ASTRA_CORE_SCHEDULER_HH
