#include "lint/analyzer.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

#include "common/json.hh"
#include "lint/include_graph.hh"

namespace astra::lint
{

namespace
{

namespace fs = std::filesystem;

bool
isSourceFile(const fs::path &p)
{
    std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".hpp";
}

/** True when @p relpath sits inside a lint fixture corpus. */
bool
inFixtureDir(const std::string &relpath)
{
    return relpath.find("lint/fixtures/") != std::string::npos;
}

std::string
relNormal(const std::string &p)
{
    return fs::path(p).lexically_normal().generic_string();
}

/** Compile @p pattern as ERE; nullopt-style via the bool result. */
bool
compileRegex(const std::string &pattern, std::regex &out)
{
    try {
        out = std::regex(pattern, std::regex::extended);
    } catch (const std::regex_error &) {
        return false;
    }
    return true;
}

} // namespace

bool
loadAllowlist(const std::string &path, LintOptions &opts, std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = path + ": cannot open allowlist";
        return false;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ss(line);
        std::string rule, pattern, extra;
        if (!(ss >> rule))
            continue; // blank line
        if (!(ss >> pattern) || (ss >> extra)) {
            if (err)
                *err = path + ":" + std::to_string(lineno) +
                       ": want `<rule-id> <path-regex>`";
            return false;
        }
        if (rule != "*" && !knownRule(rule)) {
            if (err)
                *err = path + ":" + std::to_string(lineno) +
                       ": unknown rule id '" + rule + "'";
            return false;
        }
        std::regex probe;
        if (!compileRegex(pattern, probe)) {
            if (err)
                *err = path + ":" + std::to_string(lineno) +
                       ": bad regex '" + pattern + "'";
            return false;
        }
        opts.allow.push_back(AllowEntry{rule, pattern});
    }
    return true;
}

std::vector<std::string>
collectFiles(const LintOptions &opts, const std::vector<std::string> &paths)
{
    std::vector<std::string> out;
    for (const std::string &p : paths) {
        fs::path abs = fs::path(opts.root) / p;
        if (fs::is_directory(abs)) {
            for (fs::recursive_directory_iterator
                     it(abs, fs::directory_options::skip_permission_denied),
                 end;
                 it != end; ++it) {
                if (!it->is_regular_file() || !isSourceFile(it->path()))
                    continue;
                std::string rel =
                    fs::path(it->path())
                        .lexically_relative(opts.root)
                        .generic_string();
                rel = relNormal(rel);
                if (opts.skipFixtureDirs && inFixtureDir(rel))
                    continue;
                out.push_back(rel);
            }
        } else if (fs::exists(abs)) {
            out.push_back(relNormal(p));
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::vector<Diagnostic>
analyzeFiles(const LintOptions &opts, const std::vector<std::string> &files)
{
    std::vector<LexedFile> lexed;
    lexed.reserve(files.size());
    for (const std::string &f : files) {
        LexedFile lf =
            lexFile((fs::path(opts.root) / f).generic_string());
        lf.path = relNormal(f); // diagnostics carry repo-relative paths
        lexed.push_back(std::move(lf));
    }

    // Unordered-container names declared per file, so a .cc sees the
    // members its sibling .hh declares.
    std::map<std::string, std::set<std::string>> declared;
    for (const LexedFile &lf : lexed)
        declared[lf.path] = unorderedNames(lf);

    std::vector<Diagnostic> diags;
    for (const LexedFile &lf : lexed) {
        std::set<std::string> extra;
        fs::path p(lf.path);
        if (p.extension() == ".cc" || p.extension() == ".cpp") {
            for (const char *hext : {".hh", ".hpp"}) {
                fs::path sibling = p;
                sibling.replace_extension(hext);
                auto it = declared.find(sibling.generic_string());
                if (it != declared.end())
                    extra.insert(it->second.begin(), it->second.end());
            }
        }
        runTokenRules(lf, opts.rules, extra, diags);
    }

    checkIncludeGraph(lexed, opts.root, opts.rules, diags);

    // Allowlist filter.
    if (!opts.allow.empty()) {
        std::vector<std::pair<const AllowEntry *, std::regex>> compiled;
        for (const AllowEntry &a : opts.allow) {
            std::regex re;
            if (compileRegex(a.pattern, re))
                compiled.emplace_back(&a, std::move(re));
        }
        auto allowed = [&](const Diagnostic &d) {
            for (const auto &[entry, re] : compiled) {
                if ((entry->rule == "*" || entry->rule == d.rule) &&
                    std::regex_search(d.file, re))
                    return true;
            }
            return false;
        };
        diags.erase(std::remove_if(diags.begin(), diags.end(), allowed),
                    diags.end());
    }

    std::sort(diags.begin(), diags.end(), diagnosticLess);
    return diags;
}

std::string
renderText(const std::vector<Diagnostic> &diags)
{
    std::ostringstream ss;
    for (const Diagnostic &d : diags) {
        ss << d.file << ":" << d.line << ":" << d.col << ": [" << d.rule
           << "] " << d.message << "\n";
    }
    return ss.str();
}

std::string
renderJson(const std::vector<Diagnostic> &diags)
{
    std::ostringstream ss;
    ss << "[";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        ss << (i ? ",\n " : "\n ") << "{\"file\": \"" << jsonEscape(d.file)
           << "\", \"line\": " << d.line << ", \"col\": " << d.col
           << ", \"rule\": \"" << jsonEscape(d.rule)
           << "\", \"message\": \"" << jsonEscape(d.message) << "\"}";
    }
    ss << (diags.empty() ? "]" : "\n]") << "\n";
    return ss.str();
}

std::string
renderFixable(const std::vector<Diagnostic> &diags)
{
    std::map<std::string, int> counts;
    for (const Diagnostic &d : diags)
        ++counts[d.rule];
    if (counts.empty())
        return std::string();
    std::ostringstream ss;
    ss << "fixable summary (" << diags.size() << " finding"
       << (diags.size() == 1 ? "" : "s") << "):\n";
    for (const RuleInfo &r : allRules()) {
        auto it = counts.find(r.id);
        if (it == counts.end())
            continue;
        ss << "  " << it->second << "x [" << r.id << "] fix: " << r.fix
           << "\n";
    }
    return ss.str();
}

} // namespace astra::lint
