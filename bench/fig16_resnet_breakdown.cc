/**
 * @file
 * Fig. 16 — ResNet-50 layer-wise queue/network delay breakdown under
 * FIFO vs. LIFO collective scheduling.
 *
 * Same platform as Figs. 14/15. The paper's observation (Sec. V-F):
 * the two policies behave nearly identically, because the 8x local
 * bandwidth drains phase 1 before the next layer's chunks arrive,
 * which enforces in-order execution regardless of the ready-queue
 * discipline; most of the waiting accumulates in queue stage P2
 * (the first inter-package phase).
 */

#include "bench/support.hh"

#include "common/logging.hh"
#include "workload/models.hh"
#include "workload/trainer.hh"

using namespace astra;
using namespace astra::bench;

namespace
{

void
runPolicy(BenchArgs &args, SchedulingPolicy policy)
{
    SimConfig cfg;
    cfg.torus(2, 4, 4);
    cfg.local.bandwidth = 8 * cfg.package.bandwidth;
    cfg.algorithm = AlgorithmFlavor::Enhanced;
    cfg.schedulingPolicy = policy;
    applyOverrides(args, cfg);

    Cluster cluster(cfg);
    WorkloadRun run(cluster, resnet50Workload(),
                    TrainerOptions{.numPasses = 2});
    const Tick makespan = run.run();
    mergeReport(args, cluster);
    StatGroup stats = cluster.aggregateStats();

    Table t;
    t.header({"layer", "queue.P0", "queue.P1", "queue.P2", "queue.P3",
              "queue.P4", "net.P1", "net.P2", "net.P3", "net.P4"});
    const int layers = static_cast<int>(run.spec().layers.size());
    // Print a representative subset of layers (every 8th) plus the
    // ends, mirroring the paper's per-layer bars without 54 rows.
    for (int l = 0; l < layers; ++l) {
        if (l % 8 != 0 && l != layers - 1)
            continue;
        auto &row = t.row().cell(std::uint64_t(l));
        for (int p = 0; p <= 4; ++p) {
            row.cell(stats
                         .accumulator(
                             strprintf("layer%d.queue.P%d", l, p))
                         .mean(),
                     "%.0f");
        }
        for (int p = 1; p <= 4; ++p) {
            row.cell(stats
                         .accumulator(
                             strprintf("layer%d.network.P%d", l, p))
                         .mean(),
                     "%.0f");
        }
    }
    std::printf("policy: %s (makespan %s)\n", toString(policy),
                formatTicks(makespan).c_str());
    emitTable(args,
              strprintf("fig16_breakdown_%s.csv", toString(policy)), t);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv);
    banner("Fig. 16", "ResNet-50 layer-wise delay breakdown, "
                      "FIFO vs LIFO");
    runPolicy(args, SchedulingPolicy::LIFO);
    runPolicy(args, SchedulingPolicy::FIFO);
    writeReport(args);
    return 0;
}
