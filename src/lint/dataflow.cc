#include "lint/dataflow.hh"

#include <deque>

namespace astra::lint
{

std::vector<FactSet>
solveForward(const FunctionCfg &cfg, std::size_t numFacts,
             const Transfer &transfer, bool followBackEdges)
{
    std::vector<FactSet> ins(cfg.blocks.size(), FactSet(numFacts));
    if (cfg.blocks.empty())
        return ins;

    std::deque<std::size_t> worklist;
    std::vector<bool> queued(cfg.blocks.size(), false);
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        worklist.push_back(b);
        queued[b] = true;
    }

    while (!worklist.empty()) {
        std::size_t b = worklist.front();
        worklist.pop_front();
        queued[b] = false;

        FactSet out = ins[b];
        for (const CfgStmt &s : cfg.blocks[b].stmts)
            transfer.apply(s, out);
        for (const CfgEdge &e : cfg.blocks[b].succs) {
            if (e.back && !followBackEdges)
                continue;
            if (ins[e.to].uniteWith(out) && !queued[e.to]) {
                worklist.push_back(e.to);
                queued[e.to] = true;
            }
        }
    }
    return ins;
}

} // namespace astra::lint
