// topo -> common: legal (rank 2 -> 0).
#ifndef FIXTURE_GOOD_TOPO_GRID_HH
#define FIXTURE_GOOD_TOPO_GRID_HH
#include "common/util.hh"
inline int gridValue() { return utilValue() + 3; }
#endif
