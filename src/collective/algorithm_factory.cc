#include "collective/algorithm.hh"

#include "collective/direct_algorithms.hh"
#include "collective/ring_algorithms.hh"
#include "common/logging.hh"

namespace astra
{

std::unique_ptr<PhaseAlgorithm>
makePhaseAlgorithm(DimPattern pattern, CollectiveKind op, AlgContext &ctx)
{
    if (pattern == DimPattern::Ring) {
        switch (op) {
          case CollectiveKind::ReduceScatter:
            return std::make_unique<RingReduceScatter>(
                ctx, 0, [&ctx] { ctx.phaseDone(); });
          case CollectiveKind::AllGather:
            return std::make_unique<RingAllGather>(
                ctx, 0, [&ctx] { ctx.phaseDone(); });
          case CollectiveKind::AllReduce:
            return std::make_unique<RingAllReduce>(ctx);
          case CollectiveKind::AllToAll:
            return std::make_unique<RingAllToAll>(ctx);
          case CollectiveKind::None:
            break;
        }
    } else {
        switch (op) {
          case CollectiveKind::ReduceScatter:
            return std::make_unique<DirectReduceScatter>(
                ctx, 0, [&ctx] { ctx.phaseDone(); });
          case CollectiveKind::AllGather:
            return std::make_unique<DirectAllGather>(
                ctx, 0, [&ctx] { ctx.phaseDone(); });
          case CollectiveKind::AllReduce:
            return std::make_unique<DirectAllReduce>(ctx);
          case CollectiveKind::AllToAll:
            return std::make_unique<DirectAllToAll>(ctx);
          case CollectiveKind::None:
            break;
        }
    }
    panic("no algorithm for collective kind %d", static_cast<int>(op));
    return nullptr;
}

} // namespace astra
