/**
 * @file
 * A small dynamic bit vector used for collective contribution tracking.
 *
 * Every data segment travelling through a collective carries a BitVec
 * recording which participants' partial values have been reduced into
 * it. The property tests use these to prove the algorithms implement
 * the semantics of Fig. 4 (e.g. after all-reduce, every node holds
 * every segment with all N contributions).
 */

#ifndef ASTRA_COMMON_BITVEC_HH
#define ASTRA_COMMON_BITVEC_HH

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace astra
{

/**
 * Fixed-size-at-construction bit vector with set-algebra operations.
 */
class BitVec
{
  public:
    BitVec() = default;

    /** Construct @p nbits zeroed bits. */
    explicit BitVec(std::size_t nbits)
        : _nbits(nbits), _words((nbits + 63) / 64, 0)
    {}

    /** Number of bits. */
    std::size_t size() const { return _nbits; }

    /** Set bit @p i. */
    void
    set(std::size_t i)
    {
        _words[i / 64] |= (std::uint64_t{1} << (i % 64));
    }

    /** Clear bit @p i. */
    void
    reset(std::size_t i)
    {
        _words[i / 64] &= ~(std::uint64_t{1} << (i % 64));
    }

    /** Test bit @p i. */
    bool
    test(std::size_t i) const
    {
        return (_words[i / 64] >> (i % 64)) & 1;
    }

    /** Number of set bits. */
    std::size_t count() const;

    /** True if no bit is set. */
    bool none() const;

    /** True if every bit is set. */
    bool all() const { return count() == _nbits; }

    /** In-place union. Sizes must match. */
    BitVec &operator|=(const BitVec &o);

    /** In-place intersection. Sizes must match. */
    BitVec &operator&=(const BitVec &o);

    /** True if this and @p o share any set bit. */
    bool intersects(const BitVec &o) const;

    bool operator==(const BitVec &o) const = default;

    /** "0101..." rendering, bit 0 first. */
    std::string toString() const;

  private:
    std::size_t _nbits = 0;
    std::vector<std::uint64_t> _words;
};

} // namespace astra

#endif // ASTRA_COMMON_BITVEC_HH
