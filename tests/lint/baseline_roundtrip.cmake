# Round-trip check of astra-lint's baseline mode, run via ctest:
#   1. --write-baseline over a seeded fixture captures its findings
#      (and must exit 0 even though findings exist),
#   2. re-running with --baseline=<that file> filters every finding
#      (exit 0),
#   3. running a *different* bad fixture against the same baseline
#      still fails — a baseline only forgives what it lists.
#
# Invoked with -DLINT_TOOL=... -DSOURCE_DIR=... -DWORK_DIR=...

set(baseline "${WORK_DIR}/lint_roundtrip_baseline.txt")
set(fixture "tests/lint/fixtures/no_float_bad.cc")
set(other "tests/lint/fixtures/no_rand_bad.cc")

execute_process(
    COMMAND "${LINT_TOOL}" "--root=${SOURCE_DIR}" --no-allowlist
            "--write-baseline=${baseline}" "${fixture}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--write-baseline exited ${rc}, want 0")
endif()
if(NOT EXISTS "${baseline}")
    message(FATAL_ERROR "--write-baseline wrote no file")
endif()

execute_process(
    COMMAND "${LINT_TOOL}" "--root=${SOURCE_DIR}" --no-allowlist
            "--baseline=${baseline}" "${fixture}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "baselined fixture exited ${rc}, want 0")
endif()

execute_process(
    COMMAND "${LINT_TOOL}" "--root=${SOURCE_DIR}" --no-allowlist
            "--baseline=${baseline}" "${other}"
    RESULT_VARIABLE rc)
if(rc EQUAL 0)
    message(FATAL_ERROR "unlisted findings passed under a foreign baseline")
endif()
