#include "bench/support.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "explore/sweep_runner.hh"

namespace astra::bench
{

BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--quick] [--jobs=N] [--csv=DIR] "
                "[--report-json=FILE] [--key=value ...]\n"
                "  --quick      reduced sweep (CI)\n"
                "  --jobs=N     parallel simulations (default: all\n"
                "               hardware threads; results identical)\n"
                "  --csv=DIR    also write series as CSV into DIR\n"
                "  --report-json=FILE  write the merged metric registry\n"
                "               of every simulated run as JSON\n"
                "  --key=value  override any simulator parameter\n",
                argv[0]);
            std::exit(0);
        }
        if (arg == "--quick") {
            args.quick = true;
            continue;
        }
        if (arg.rfind("--jobs=", 0) == 0) {
            args.jobs = std::atoi(arg.c_str() + 7);
            continue;
        }
        if (arg.rfind("--csv=", 0) == 0) {
            args.csvDir = arg.substr(6);
            continue;
        }
        if (arg.rfind("--report-json=", 0) == 0) {
            args.reportJson = arg.substr(14);
            continue;
        }
        if (arg.rfind("--", 0) == 0) {
            auto eq = arg.find('=');
            if (eq == std::string::npos)
                fatal("expected --key=value, got '%s'", arg.c_str());
            args.rawOverrides.emplace_back(arg.substr(2, eq - 2),
                                           arg.substr(eq + 1));
            continue;
        }
        fatal("unexpected argument '%s'", arg.c_str());
    }
    return args;
}

void
applyOverrides(const BenchArgs &args, SimConfig &cfg)
{
    for (const auto &[k, v] : args.rawOverrides)
        cfg.set(k, v);
}

void
banner(const std::string &fig, const std::string &what)
{
    std::printf("=== %s — %s ===\n", fig.c_str(), what.c_str());
}

std::vector<Bytes>
sizeSweep(Bytes lo, Bytes hi, int factor)
{
    std::vector<Bytes> sizes;
    for (Bytes s = lo; s <= hi; s *= Bytes(factor))
        sizes.push_back(s);
    return sizes;
}

Tick
timeCollective(const SimConfig &cfg, CollectiveKind kind, Bytes bytes,
               MetricRegistry *metrics)
{
    Cluster cluster(cfg);
    const Tick t = cluster.runCollective(kind, bytes);
    if (metrics)
        metrics->merge(cluster.exportMetrics());
    return t;
}

std::vector<Tick>
timeCollectives(BenchArgs &args,
                const std::vector<CollectiveJob> &jobs_list)
{
    std::vector<Tick> out(jobs_list.size(), 0);
    const bool want_metrics = !args.reportJson.empty();
    // Workers fill private slots; the merge into the shared report
    // happens serially afterwards (deterministic, no locking).
    std::vector<MetricRegistry> regs(want_metrics ? jobs_list.size() : 0);
    SweepRunner runner(args.jobs);
    runner.forEach(jobs_list.size(), [&](std::size_t i) {
        const CollectiveJob &job = jobs_list[i];
        out[i] = timeCollective(job.cfg, job.kind, job.bytes,
                                want_metrics ? &regs[i] : nullptr);
    });
    for (const MetricRegistry &r : regs)
        args.report.merge(r);
    return out;
}

void
emitTable(const BenchArgs &args, const std::string &name,
          const Table &table)
{
    table.print();
    std::printf("\n");
    if (!args.csvDir.empty())
        table.writeCsv(args.csvDir + "/" + name);
}

void
mergeReport(BenchArgs &args, const Cluster &cluster)
{
    if (args.reportJson.empty())
        return;
    args.report.merge(cluster.exportMetrics());
}

void
writeReport(const BenchArgs &args)
{
    if (args.reportJson.empty())
        return;
    args.report.writeFile(args.reportJson);
    std::printf("wrote metric report: %s\n", args.reportJson.c_str());
}

} // namespace astra::bench
