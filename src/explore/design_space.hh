/**
 * @file
 * Design-space exploration driver — the paper's stated purpose
 * ("enabling researchers to ... design efficient SW/HW co-design
 * solutions", Sec. I) as a library API.
 *
 * Given a module budget and a target operation (a collective of a
 * given size, or a full workload), the explorer enumerates candidate
 * platforms — torus factorizations, an alltoall alternative, both
 * collective algorithm flavours, optionally a chunking sweep — runs
 * each through the simulator, and returns the results ranked by
 * communication time (ties broken by interconnect energy).
 */

#ifndef ASTRA_EXPLORE_DESIGN_SPACE_HH
#define ASTRA_EXPLORE_DESIGN_SPACE_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "fault/fault.hh"

namespace astra
{

namespace guard
{
class SweepJournal;
}

/** What to optimize over. */
struct ExploreSpec
{
    /** Total NAM/module budget (candidates multiply out to this). */
    int modules = 16;
    /** Candidate local dimension sizes (package integration options). */
    std::vector<int> localDims = {1, 2, 4};
    /** Also consider hierarchical alltoall platforms. */
    bool includeAllToAll = true;
    /** Try both baseline and enhanced algorithm flavours. */
    bool sweepFlavors = true;
    /** Chunk counts to sweep (empty = configuration default only). */
    std::vector<int> setSplits;
    /** Local-link bandwidth multiplier over inter-package links. */
    double localBandwidthRatio = 8.0;

    /** The operation under optimization. */
    CollectiveKind kind = CollectiveKind::AllReduce;
    Bytes bytes = 4 * 1024 * 1024;

    /**
     * Per-candidate run budgets (docs/robustness.md), stamped onto
     * every enumerated candidate's SimConfig. 0 disables each ceiling;
     * a candidate that trips one ends with a contained BudgetExceeded
     * outcome instead of stalling the whole sweep.
     */
    std::uint64_t maxEvents = 0;
    Tick maxSimTime = 0;
    std::uint64_t maxSlabBytes = 0;
    std::uint64_t watchdogWindow = 0;
};

/** One evaluated candidate. */
struct CandidateResult
{
    std::string label;   //!< e.g. "torus-2x4x2/enhanced/16ch"
    SimConfig cfg;       //!< the full platform configuration
    Tick commTime = 0;   //!< simulated collective time
    double energyUj = 0; //!< interconnect energy
    /**
     * Retired-event-stream digest of the candidate's run (determinism
     * auditor, docs/validation.md). Always filled by SweepRunner::
     * evaluate: equal configurations must yield equal digests, whether
     * the sweep ran serially or under --jobs=N.
     */
    std::uint64_t digest = 0;
    /**
     * Full metric snapshot of the candidate's run (Cluster::
     * exportMetrics), filled by SweepRunner::evaluate. Serialized per
     * candidate by --report-json in explore mode. Empty for journal-
     * restored candidates (the journal carries the ranked-table fields,
     * not the full registry — docs/robustness.md).
     */
    MetricRegistry metrics;

    /**
     * How the candidate's run ended (docs/robustness.md taxonomy).
     * Failed means the simulation itself died — an ASTRA_CHECK or
     * config error contained by the sweep instead of aborting it; the
     * first failure record's reason carries the diagnostic.
     */
    RunOutcome outcome = RunOutcome::Completed;

    /** Structured failure records of a non-Completed candidate. */
    std::vector<FailureRecord> failures;

    /** True when the result was restored from a sweep journal. */
    bool restored = false;
};

/**
 * Enumerate the candidate list (cfg and label filled, timings zero)
 * without simulating anything. Exact-duplicate platforms — possible
 * when localDims contains repeated or unit factors that multiply out
 * to the same configuration — are emitted once. fatal()s on an
 * unsatisfiable spec.
 */
std::vector<CandidateResult> enumerateCandidates(const ExploreSpec &spec);

/**
 * Enumerate, simulate and rank all candidates (best first).
 * fatal()s on an unsatisfiable spec (e.g. a prime module budget with
 * no matching factorization is still fine — 1xNx1 always exists).
 *
 * @param jobs  Worker threads for the sweep: 1 (the default) runs the
 *              classic serial loop, 0 uses every hardware thread, N
 *              uses N. Results are bit-for-bit identical for every
 *              value — candidates are simulated on private event
 *              queues and collected in enumeration order (see
 *              SweepRunner).
 * @param journal  Optional sweep journal (docs/robustness.md):
 *              already-journaled candidates are restored instead of
 *              re-simulated, freshly completed ones are appended.
 *
 * Candidates that did not complete (contained failures, budget trips,
 * interrupts) rank after every completed candidate; an all-completed
 * sweep's ranking is bit-for-bit the historical one.
 */
std::vector<CandidateResult>
exploreDesignSpace(const ExploreSpec &spec, int jobs = 1,
                   guard::SweepJournal *journal = nullptr);

/** Convenience: the winning candidate. */
CandidateResult bestDesign(const ExploreSpec &spec, int jobs = 1);

} // namespace astra

#endif // ASTRA_EXPLORE_DESIGN_SPACE_HH
