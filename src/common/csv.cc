#include "common/csv.hh"

#include <algorithm>

#include "common/logging.hh"

namespace astra
{

void
Table::addRow(std::vector<std::string> cells)
{
    _rows.push_back(std::move(cells));
}

Table &
Table::row()
{
    _rows.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &v)
{
    if (_rows.empty())
        _rows.emplace_back();
    _rows.back().push_back(v);
    return *this;
}

Table &
Table::cell(double v, const char *fmt)
{
    return cell(strprintf(fmt, v));
}

Table &
Table::cell(std::uint64_t v)
{
    return cell(strprintf("%llu", static_cast<unsigned long long>(v)));
}

namespace
{

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
Table::toCsv() const
{
    std::string out;
    auto emit = [&out](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                out += ',';
            out += csvEscape(cells[i]);
        }
        out += '\n';
    };
    if (!_header.empty())
        emit(_header);
    for (const auto &r : _rows)
        emit(r);
    return out;
}

std::string
Table::toText() const
{
    std::vector<std::size_t> width;
    auto widen = [&width](const std::vector<std::string> &cells) {
        if (cells.size() > width.size())
            width.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    if (!_header.empty())
        widen(_header);
    for (const auto &r : _rows)
        widen(r);

    std::string out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                out += "  ";
            out += cells[i];
            out.append(width[i] - cells[i].size(), ' ');
        }
        while (!out.empty() && out.back() == ' ')
            out.pop_back();
        out += '\n';
    };
    if (!_header.empty()) {
        emit(_header);
        std::size_t total = 0;
        for (std::size_t i = 0; i < width.size(); ++i)
            total += width[i] + (i ? 2 : 0);
        out.append(total, '-');
        out += '\n';
    }
    for (const auto &r : _rows)
        emit(r);
    return out;
}

void
Table::print(std::FILE *out) const
{
    std::string text = toText();
    std::fwrite(text.data(), 1, text.size(), out);
}

void
Table::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
    std::string text = toCsv();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

} // namespace astra
