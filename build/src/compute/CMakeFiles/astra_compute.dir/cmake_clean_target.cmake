file(REMOVE_RECURSE
  "libastra_compute.a"
)
