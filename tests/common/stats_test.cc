#include <gtest/gtest.h>

#include "common/stats.hh"

namespace astra
{
namespace
{

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.total(), 0.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.minimum(), 0.0);
    EXPECT_DOUBLE_EQ(a.maximum(), 0.0);
}

TEST(Accumulator, TracksMoments)
{
    Accumulator a;
    a.sample(3);
    a.sample(1);
    a.sample(8);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 12.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.minimum(), 1.0);
    EXPECT_DOUBLE_EQ(a.maximum(), 8.0);
}

TEST(Accumulator, MergeCombines)
{
    Accumulator a, b;
    a.sample(1);
    a.sample(2);
    b.sample(10);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.maximum(), 10.0);
    EXPECT_DOUBLE_EQ(a.minimum(), 1.0);
    // Merging an empty accumulator changes nothing.
    Accumulator empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);
}

TEST(StatGroup, CountersDefaultToZero)
{
    StatGroup g;
    EXPECT_DOUBLE_EQ(g.counter("missing"), 0.0);
    g.inc("x");
    g.inc("x", 2.5);
    EXPECT_DOUBLE_EQ(g.counter("x"), 3.5);
}

TEST(StatGroup, AccumulatorsByName)
{
    StatGroup g;
    g.sample("lat", 5);
    g.sample("lat", 15);
    EXPECT_EQ(g.accumulator("lat").count(), 2u);
    EXPECT_DOUBLE_EQ(g.accumulator("lat").mean(), 10.0);
    EXPECT_EQ(g.accumulator("absent").count(), 0u);
}

TEST(StatGroup, MergeAddsCountersAndAccs)
{
    StatGroup a, b;
    a.inc("n", 1);
    b.inc("n", 2);
    b.inc("only-b", 5);
    a.sample("q", 1);
    b.sample("q", 3);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.counter("n"), 3.0);
    EXPECT_DOUBLE_EQ(a.counter("only-b"), 5.0);
    EXPECT_EQ(a.accumulator("q").count(), 2u);
    EXPECT_DOUBLE_EQ(a.accumulator("q").total(), 4.0);
}

TEST(StatGroup, ClearDropsEverything)
{
    StatGroup g;
    g.inc("a");
    g.sample("b", 1);
    g.clear();
    EXPECT_TRUE(g.counters().empty());
    EXPECT_TRUE(g.accumulators().empty());
}

} // namespace
} // namespace astra
