#include "net/analytical.hh"

#include "common/logging.hh"

namespace astra
{

AnalyticalNetwork::AnalyticalNetwork(EventQueue &eq, const Topology &topo,
                                     const SimConfig &cfg,
                                     bool one_to_one)
    : _eq(eq), _fabric(topo, cfg, one_to_one), _routing(cfg.packetRouting),
      _routerLatency(cfg.routerLatency),
      _protocolDelay(cfg.scaleoutProtocolDelay),
      _freeAt(std::size_t(_fabric.numLinks()), 0)
{
    setEnergyParams(cfg.energy, cfg.flitWidthBits);
}

void
AnalyticalNetwork::send(Message msg)
{
    msg.sentAt = _eq.now();
    if (msg.src == msg.dst) {
        // Loopback: deliver on the next tick with no link usage.
        _eq.scheduleAfter(1, [this, msg] { deliver(msg); });
        return;
    }
    auto path = std::make_shared<std::vector<LinkId>>(
        _fabric.resolve(msg.src, msg.dst, msg.hint));
    // Transport-layer cost: messages leaving the pod pay the sender's
    // protocol-stack processing once (scale-out extension).
    Tick proto = 0;
    for (LinkId l : *path) {
        if (_fabric.link(l).cls == LinkClass::ScaleOut) {
            proto = _protocolDelay;
            break;
        }
    }
    if (proto > 0) {
        _eq.scheduleAfter(proto,
                          [this, msg = std::move(msg), path]() mutable {
                              hop(std::move(msg), path, 0);
                          });
        return;
    }
    hop(std::move(msg), std::move(path), 0);
}

void
AnalyticalNetwork::hop(Message msg,
                       std::shared_ptr<std::vector<LinkId>> path,
                       std::size_t idx)
{
    const LinkId l = (*path)[idx];
    const LinkDesc &desc = _fabric.link(l);
    const LinkParams &p = _fabric.params(desc.cls);
    Tick &free_at = _freeAt[std::size_t(l)];

    const Tick now = _eq.now();
    if (free_at > now) {
        // Link busy: retry when it frees up. FIFO order is preserved by
        // the event queue's deterministic tiebreak.
        _eq.schedule(free_at,
                     [this, msg = std::move(msg), path, idx]() mutable {
                         hop(std::move(msg), path, idx);
                     });
        return;
    }

    const Tick tx = txTime(desc.cls, msg.bytes);
    const Tick start = now;
    free_at = start + tx;
    accountHop(msg.bytes, desc.cls);

    const bool last = (idx + 1 == path->size());
    if (last) {
        // Full message present at destination after serialization and
        // propagation.
        _eq.schedule(start + tx + p.latency,
                     [this, msg = std::move(msg)] { deliver(msg); });
        return;
    }

    Tick next_ready;
    if (_routing == PacketRouting::Software) {
        // Store-and-forward: entire message must arrive before the next
        // hop can begin.
        next_ready = start + tx + p.latency + _routerLatency;
    } else {
        // Virtual cut-through: the head moves on after the wire
        // latency; serialization overlaps across hops. The next link
        // still serializes the full message, so bandwidth is conserved.
        next_ready = start + p.latency + _routerLatency;
    }
    _eq.schedule(next_ready,
                 [this, msg = std::move(msg), path, idx]() mutable {
                     hop(std::move(msg), path, idx + 1);
                 });
}

} // namespace astra
