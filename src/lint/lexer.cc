#include "lint/lexer.hh"

#include <cctype>
#include <fstream>
#include <sstream>

namespace astra::lint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** True if @p id is a valid encoding prefix of a string literal. */
bool
isStringPrefix(const std::string &id)
{
    return id == "R" || id == "L" || id == "u" || id == "U" ||
           id == "u8" || id == "LR" || id == "uR" || id == "UR" ||
           id == "u8R";
}

/**
 * Parse suppression markers and annotations out of one comment line:
 * a NOLINT word, plus the constructs behind the `astra-lint:` comment
 * tag — rule-id allow-lists, the concurrency annotations naming a
 * guarding mutex or declaring thread confinement (into @p marks), and
 * bare tag words, which are file-scoped declarations (into
 * @p file_tags): an allocator-tu tag marks a TU that legitimately
 * uses placement new, a hot-path tag opts it into the allocation
 * rule. (This doc spells the grammar indirectly on purpose: writing a
 * literal mark here would annotate this very line.)
 */
void
parseMarkers(const std::string &comment, LineMarks &marks,
             std::set<std::string> &file_tags)
{
    if (comment.find("NOLINT") != std::string::npos)
        marks.nolint = true;

    auto isTagChar = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
               c == '-';
    };

    static const std::string kTag = "astra-lint:";
    std::size_t pos = 0;
    while ((pos = comment.find(kTag, pos)) != std::string::npos) {
        std::size_t p = pos + kTag.size();
        while (p < comment.size() && comment[p] == ' ')
            ++p;
        static const std::string kGuard = "guarded-by(";
        if (comment.compare(p, kGuard.size(), kGuard) == 0) {
            std::size_t b = p + kGuard.size();
            std::size_t close = comment.find(')', b);
            if (close == std::string::npos)
                break;
            std::size_t s = comment.find_first_not_of(" \t", b);
            std::size_t e = comment.find_last_not_of(" \t", close - 1);
            if (s != std::string::npos && s <= e)
                marks.guardedBy = comment.substr(s, e - s + 1);
            pos = close;
            continue;
        }
        static const std::string kConfined = "thread-confined(";
        if (comment.compare(p, kConfined.size(), kConfined) == 0) {
            // The reason is documentation for the reader; the mark is
            // what the rules consume.
            marks.threadConfined = true;
            std::size_t close = comment.find(')', p + kConfined.size());
            pos = close == std::string::npos ? p + kConfined.size()
                                             : close;
            continue;
        }
        static const std::string kSignal = "signal-handler";
        if (comment.compare(p, kSignal.size(), kSignal) == 0 &&
            (p + kSignal.size() >= comment.size() ||
             !isTagChar(comment[p + kSignal.size()]))) {
            // A line mark, not a file tag: it binds to the function
            // head on (or right below) this line, like thread-confined.
            marks.signalHandler = true;
            pos = p + kSignal.size();
            continue;
        }
        static const std::string kMustUse = "must-use";
        if (comment.compare(p, kMustUse.size(), kMustUse) == 0 &&
            (p + kMustUse.size() >= comment.size() ||
             !isTagChar(comment[p + kMustUse.size()]))) {
            // Binds to the class/enum head on (or right below) this
            // line, like signal-handler binds to a function head.
            marks.mustUse = true;
            pos = p + kMustUse.size();
            continue;
        }
        static const std::string kAllow = "allow(";
        if (comment.compare(p, kAllow.size(), kAllow) != 0) {
            // Not an allow-list: a bare lowercase word here is a
            // file-level tag ("astra-lint: allocator-tu"). Anything
            // else is prose mentioning the tool.
            std::size_t e = p;
            while (e < comment.size() && isTagChar(comment[e]))
                ++e;
            if (e > p)
                file_tags.insert(comment.substr(p, e - p));
            pos = e > p ? e : p;
            continue;
        }
        p += kAllow.size();
        std::size_t close = comment.find(')', p);
        if (close == std::string::npos)
            break;
        std::string list = comment.substr(p, close - p);
        std::string id;
        std::istringstream ss(list);
        while (std::getline(ss, id, ',')) {
            std::size_t b = id.find_first_not_of(" \t");
            std::size_t e = id.find_last_not_of(" \t");
            if (b != std::string::npos)
                marks.allowed.insert(id.substr(b, e - b + 1));
        }
        pos = close;
    }
}

/**
 * Character-cursor over the source with 1-based line/col tracking.
 *
 * Performs translation phase 2: a backslash immediately followed by a
 * newline (or CRLF) is a line splice and is skipped transparently by
 * peek()/advance(), so callers never observe it — an identifier,
 * string literal, comment or #include target split across a splice
 * reads as one contiguous construct. Raw string literals revert the
 * splice (the standard's exception); setSplicing(false) turns the
 * transparency off while their bodies are consumed.
 */
class Cursor
{
  public:
    explicit Cursor(const std::string &src) : _src(src) {}

    bool atEnd() const { return spliced(_i) >= _src.size(); }

    char
    peek(std::size_t ahead = 0) const
    {
        std::size_t i = spliced(_i);
        while (ahead > 0 && i < _src.size()) {
            i = spliced(i + 1);
            --ahead;
        }
        return i < _src.size() ? _src[i] : '\0';
    }

    int line() const { return _line; }
    int col() const { return _col; }

    /** Toggle splice transparency (off inside raw string literals). */
    void setSplicing(bool on) { _splice = on; }

    char
    advance()
    {
        skipSplices();
        char c = _src[_i++];
        if (c == '\n') {
            ++_line;
            _col = 1;
        } else {
            ++_col;
        }
        return c;
    }

  private:
    /** Length of the splice starting at @p i, or 0. */
    std::size_t
    spliceLen(std::size_t i) const
    {
        if (!_splice || i + 1 >= _src.size() || _src[i] != '\\')
            return 0;
        if (_src[i + 1] == '\n')
            return 2;
        if (_src[i + 1] == '\r' && i + 2 < _src.size() &&
            _src[i + 2] == '\n')
            return 3;
        return 0;
    }

    /** First non-splice position at or after @p i. */
    std::size_t
    spliced(std::size_t i) const
    {
        for (std::size_t n; (n = spliceLen(i)) != 0;)
            i += n;
        return i;
    }

    /** Consume splices at the cursor, keeping line/col honest. */
    void
    skipSplices()
    {
        for (std::size_t n; (n = spliceLen(_i)) != 0;) {
            _i += n;
            ++_line;
            _col = 1;
        }
    }

    const std::string &_src;
    std::size_t _i = 0;
    int _line = 1;
    int _col = 1;
    bool _splice = true;
};

} // namespace

LexedFile
lexSource(const std::string &path, const std::string &source)
{
    LexedFile out;
    out.path = path;
    Cursor c(source);
    bool line_start = true; // only whitespace seen so far on this line

    auto addError = [&](const std::string &what) {
        out.errors.push_back(LexError{c.line(), what});
    };

    auto markLine = [&](int line, const std::string &text) {
        LineMarks &m = out.marks[line];
        parseMarkers(text, m, out.fileTags);
        if (m.allowed.empty() && !m.nolint && m.guardedBy.empty() &&
            !m.threadConfined && !m.signalHandler && !m.mustUse)
            out.marks.erase(line);
    };

    // Physical start line of the preprocessing directive currently
    // being tokenized (0 = none); closed at the next real newline.
    int directive_start = 0;
    auto closeDirective = [&](int end_line) {
        if (directive_start != 0) {
            out.directiveSpans.emplace_back(directive_start, end_line);
            directive_start = 0;
        }
    };

    // Consume a (non-raw) quoted literal whose opening delimiter has
    // been consumed; handles backslash escapes.
    auto skipQuoted = [&](char quote, const char *what) {
        int start_line = c.line();
        while (!c.atEnd()) {
            char ch = c.advance();
            if (ch == '\\' && !c.atEnd()) {
                c.advance();
                continue;
            }
            if (ch == quote)
                return;
            if (ch == '\n')
                break; // unterminated on this line
        }
        out.errors.push_back(
            LexError{start_line, std::string("unterminated ") + what});
    };

    while (!c.atEnd()) {
        char ch = c.peek();

        if (ch == '\n') {
            closeDirective(c.line());
            c.advance();
            line_start = true;
            continue;
        }
        if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\v' ||
            ch == '\f') {
            c.advance();
            continue;
        }

        // ---- comments --------------------------------------------
        if (ch == '/' && c.peek(1) == '/') {
            int line = c.line();
            std::string text;
            while (!c.atEnd() && c.peek() != '\n')
                text += c.advance();
            markLine(line, text);
            continue;
        }
        if (ch == '/' && c.peek(1) == '*') {
            c.advance();
            c.advance();
            std::string text;
            int line = c.line();
            bool closed = false;
            while (!c.atEnd()) {
                if (c.peek() == '*' && c.peek(1) == '/') {
                    c.advance();
                    c.advance();
                    closed = true;
                    break;
                }
                char cc = c.advance();
                if (cc == '\n') {
                    // Markers bind to the line they appear on.
                    markLine(line, text);
                    text.clear();
                    line = c.line();
                } else {
                    text += cc;
                }
            }
            markLine(line, text);
            if (!closed)
                out.errors.push_back(
                    LexError{line, "unterminated block comment"});
            continue;
        }

        // ---- #include directives ---------------------------------
        if (ch == '#' && line_start) {
            int line = c.line();
            int col = c.col();
            c.advance();
            while (c.peek() == ' ' || c.peek() == '\t')
                c.advance();
            std::string directive;
            while (isIdentChar(c.peek()))
                directive += c.advance();
            if (directive == "include" || directive == "include_next") {
                while (c.peek() == ' ' || c.peek() == '\t')
                    c.advance();
                char open = c.peek();
                if (open == '"' || open == '<') {
                    char close = open == '<' ? '>' : '"';
                    c.advance();
                    IncludeDirective inc;
                    inc.angled = open == '<';
                    inc.line = c.line();
                    while (!c.atEnd() && c.peek() != close &&
                           c.peek() != '\n')
                        inc.target += c.advance();
                    if (c.peek() == close)
                        c.advance();
                    else
                        addError("unterminated #include target");
                    out.includes.push_back(inc);
                }
                // Fall through to the main loop: a trailing comment on
                // the directive line still feeds suppression marks.
            } else {
                // Other directives are tokenized like code so rules
                // still see `#define BAD float`; record the span so
                // the symbol indexer can skip the non-declaration.
                directive_start = line;
                out.tokens.push_back({TokKind::kPunct, "#", line, col});
                if (!directive.empty())
                    out.tokens.push_back(
                        {TokKind::kIdent, directive, line, col + 1});
            }
            line_start = false;
            continue;
        }

        line_start = false;
        int line = c.line();
        int col = c.col();

        // ---- identifiers (and string-literal prefixes) -----------
        if (isIdentStart(ch)) {
            std::string id;
            while (isIdentChar(c.peek()))
                id += c.advance();
            if (isStringPrefix(id) && (c.peek() == '"' || c.peek() == '\'')) {
                char quote = c.peek();
                c.advance();
                if (id.back() == 'R' && quote == '"') {
                    // Raw string: R"delim( ... )delim". Splices are
                    // reverted inside (the standard's exception to
                    // phase 2), so a backslash-newline in the body is
                    // two literal characters, never a continuation.
                    c.setSplicing(false);
                    int start_line = line;
                    std::string delim;
                    bool bad_delim = false;
                    while (!c.atEnd() && c.peek() != '(' &&
                           c.peek() != '\n') {
                        char dc = c.advance();
                        // d-chars exclude space, parens, backslash and
                        // control characters; 16 chars max.
                        if (dc == ' ' || dc == ')' || dc == '\\' ||
                            static_cast<unsigned char>(dc) < 0x20)
                            bad_delim = true;
                        delim += dc;
                    }
                    if (delim.size() > 16)
                        bad_delim = true;
                    if (c.peek() != '(' || bad_delim) {
                        addError(delim.size() > 16
                                     ? "raw string delimiter longer "
                                       "than 16 characters"
                                     : "malformed raw string delimiter");
                        c.setSplicing(true);
                        continue;
                    }
                    c.advance();
                    std::string close = ")" + delim + "\"";
                    std::string window;
                    bool done = false;
                    while (!c.atEnd()) {
                        window += c.advance();
                        if (window.size() >= close.size() &&
                            window.compare(window.size() - close.size(),
                                           close.size(), close) == 0) {
                            done = true;
                            break;
                        }
                    }
                    if (!done)
                        out.errors.push_back(LexError{
                            start_line, "unterminated raw string"});
                    c.setSplicing(true);
                } else {
                    skipQuoted(quote, quote == '"' ? "string literal"
                                                   : "character literal");
                }
                continue;
            }
            out.tokens.push_back({TokKind::kIdent, id, line, col});
            continue;
        }

        // ---- numbers (pp-number: digits, ', exponents, suffixes) --
        if (std::isdigit(static_cast<unsigned char>(ch)) ||
            (ch == '.' &&
             std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
            std::string num;
            num += c.advance();
            while (!c.atEnd()) {
                char p = c.peek();
                if (isIdentChar(p) || p == '.') {
                    num += c.advance();
                } else if (p == '\'' &&
                           isIdentChar(c.peek(1))) {
                    c.advance(); // digit separator
                } else if ((p == '+' || p == '-') && !num.empty() &&
                           (num.back() == 'e' || num.back() == 'E' ||
                            num.back() == 'p' || num.back() == 'P')) {
                    num += c.advance();
                } else {
                    break;
                }
            }
            out.tokens.push_back({TokKind::kNumber, num, line, col});
            continue;
        }

        // ---- plain string / char literals ------------------------
        if (ch == '"') {
            c.advance();
            skipQuoted('"', "string literal");
            continue;
        }
        if (ch == '\'') {
            c.advance();
            skipQuoted('\'', "character literal");
            continue;
        }

        // ---- punctuation: `::` and `->` fused, rest single-char --
        if (ch == ':' && c.peek(1) == ':') {
            c.advance();
            c.advance();
            out.tokens.push_back({TokKind::kPunct, "::", line, col});
            continue;
        }
        if (ch == '-' && c.peek(1) == '>') {
            c.advance();
            c.advance();
            out.tokens.push_back({TokKind::kPunct, "->", line, col});
            continue;
        }
        c.advance();
        out.tokens.push_back({TokKind::kPunct, std::string(1, ch),
                              line, col});
    }
    closeDirective(c.line()); // directive on the last line, no newline

    return out;
}

LexedFile
lexFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        LexedFile out;
        out.path = path;
        out.errors.push_back(LexError{0, "cannot open file"});
        return out;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return lexSource(path, ss.str());
}

} // namespace astra::lint
