# Empty dependencies file for astra_core.
# This may be replaced when dependencies are built.
