// astra-lint: hot-path (every event schedule/retire crosses this TU)
// astra-lint: allocator-tu (the slab below is the amortization point:
// allocSlot() grabs whole chunks so the per-event path never mallocs)
#include "common/event_queue.hh"

#include <algorithm>
#include <bit>

namespace astra
{

EventQueue::EventQueue()
    : _buckets(kWindow),
      _auditOrder(validationAtLeast(ValidateLevel::kFull))
{
}

std::uint32_t
EventQueue::allocSlot()
{
    if (_freeList.empty()) {
        // A slot index must stay addressable in 32 bits next to its
        // generation tag; 2^32 concurrently pending events would mean
        // something far worse is wrong anyway.
        ASTRA_CHECK(_slotCount <= 0xffffffffU - kChunkSize,
                    "event slab exhausted (%u slots live)", _slotCount);
        _chunks.push_back(std::make_unique<Entry[]>(kChunkSize));
        _freeList.reserve(_freeList.capacity() + kChunkSize);
        // Reverse order so the lowest new slot is handed out first.
        for (std::size_t i = kChunkSize; i-- > 0;)
            _freeList.push_back(_slotCount + static_cast<std::uint32_t>(i));
        _slotCount += static_cast<std::uint32_t>(kChunkSize);
    }
    const std::uint32_t slot = _freeList.back();
    _freeList.pop_back();
    return slot;
}

EventId
EventQueue::schedule(Tick when, EventCallback cb, int priority)
{
    // A past-dated event would fire "now" but after everything already
    // run this tick, silently corrupting the non-decreasing-time
    // ordering every layer assumes. This is a caller bug expressed
    // through user-facing APIs (e.g. a negative delay computed from a
    // bad config), so fail loudly with the offending values.
    ASTRA_CHECK(when >= _now,
                "event scheduled in the past (when=%llu now=%llu "
                "delta=-%llu priority=%d): delays must be non-negative",
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(_now),
                static_cast<unsigned long long>(
                    when < _now ? _now - when : 0),
                priority);
    const std::uint32_t slot = allocSlot();
    Entry &e = entryAt(slot);
    e.when = when;
    e.seq = _seq++;
    e.priority = priority;
    e.cb = std::move(cb);
    const EventId id = (std::uint64_t(e.gen) << 32) | slot;

    if (when - _now < Tick(kWindow)) {
        // Near future: append to the tick's bucket. Appends carry
        // strictly increasing seq, so the bucket stays sorted by
        // (priority, seq) unless this priority undercuts the tail.
        e.region = Region::kNear;
        Bucket &b = bucketAt(when);
        if (b.refs.empty())
            markBucket(static_cast<std::size_t>(when & kWindowMask));
        else if (priority < b.lastPrio)
            b.dirty = true;
        b.refs.push_back(id);
        b.lastPrio = priority;
        ++_nearLive;
        // The cursor can sit ahead of now() after runUntil() stopped
        // short; a schedule behind it must pull it back (the skipped
        // buckets are empty of live refs, so rescanning is exact).
        if (when < _cursorTick) {
            _cursorTick = when;
            _cursorIdx = 0;
        }
    } else {
        e.region = Region::kFar;
        _far.push_back(FarRef{when, e.seq, slot, e.gen, priority});
        std::push_heap(_far.begin(), _far.end(),
                       [](const FarRef &a, const FarRef &b) {
                           return a > b;
                       });
        _farMin = _far.front().when;
    }
    ++_size;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    // An id is cancellable exactly while its generation tag matches
    // the slot's: one probe. The entry (callback included) is
    // reclaimed immediately; only the slot's 8-byte ref stays parked
    // in its bucket or the far heap, skipped by the mismatch when its
    // position is reached (or purged in bulk, for the far heap).
    const std::uint32_t slot = slotOf(id);
    if (slot >= _slotCount)
        return false;
    Entry &e = entryAt(slot);
    if (e.gen != genOf(id))
        return false;
    const Region region = e.region;
    freeSlot(slot);
    --_size;
    if (region == Region::kNear) {
        --_nearLive;
    } else {
        ++_staleFar;
        maybePurgeFar();
    }
    return true;
}

void
EventQueue::maybePurgeFar()
{
    if (_far.size() < kPurgeMinFar || _staleFar * 2 < _far.size())
        return;
    std::erase_if(_far, [this](const FarRef &fr) {
        return entryAt(fr.slot).gen != fr.gen;
    });
    std::make_heap(_far.begin(), _far.end(),
                   [](const FarRef &a, const FarRef &b) { return a > b; });
    _staleFar = 0;
    _farMin = _far.empty() ? kTickInvalid : _far.front().when;
}

std::size_t
EventQueue::findMarked(std::size_t from) const
{
    if (_bmSummary == 0)
        return kWindow;
    constexpr std::size_t kWords = kWindow / 64;
    const std::size_t w0 = from >> 6;
    const std::size_t b0 = from & 63;
    const std::uint64_t head = _bmWords[w0] >> b0;
    if (head != 0)
        return static_cast<std::size_t>(std::countr_zero(head));
    for (std::size_t k = 1; k <= kWords; ++k) {
        const std::size_t wi = (w0 + k) & (kWords - 1);
        std::uint64_t word = _bmWords[wi];
        if (wi == w0) // wrapped to the start word: only bits below from
            word &= (std::uint64_t(1) << b0) - 1;
        if (word != 0) {
            return 64 * k - b0 +
                   static_cast<std::size_t>(std::countr_zero(word));
        }
    }
    return kWindow;
}

void
EventQueue::migrateNear(Tick base)
{
    // Pull every far event inside [base, base + kWindow) into its
    // bucket. Heap pops arrive in (when, priority, seq) order, so
    // consecutive migrations into an empty bucket stay sorted; a
    // bucket that already has refs goes dirty and is cleaned once,
    // when its tick fires.
    const auto greater = [](const FarRef &a, const FarRef &b) {
        return a > b;
    };
    while (!_far.empty() && _far.front().when - base < Tick(kWindow)) {
        std::pop_heap(_far.begin(), _far.end(), greater);
        const FarRef fr = _far.back();
        _far.pop_back();
        Entry &e = entryAt(fr.slot);
        if (e.gen != fr.gen) {
            --_staleFar; // cancelled while parked: drop the ref here
            continue;
        }
        ASTRA_DCHECK(fr.when >= _now,
                     "far event migrating into the past (when=%llu "
                     "now=%llu)",
                     static_cast<unsigned long long>(fr.when),
                     static_cast<unsigned long long>(_now));
        e.region = Region::kNear;
        Bucket &b = bucketAt(fr.when);
        if (b.refs.empty())
            markBucket(static_cast<std::size_t>(fr.when & kWindowMask));
        else
            b.dirty = true;
        b.refs.push_back((std::uint64_t(fr.gen) << 32) | fr.slot);
        b.lastPrio = fr.priority;
        ++_nearLive;
    }
    _farMin = _far.empty() ? kTickInvalid : _far.front().when;
}

void
EventQueue::cleanBucket(Bucket &b)
{
    // Drop stale refs from the unfired remainder, then restore
    // (priority, seq) order. Live refs have unique seq, so the order
    // is strict and deterministic; no stable_sort needed.
    const auto first = b.refs.begin() +
                       static_cast<std::ptrdiff_t>(_cursorIdx);
    b.refs.erase(std::remove_if(first, b.refs.end(),
                                [this](Ref r) {
                                    return entryAt(slotOf(r)).gen !=
                                           genOf(r);
                                }),
                 b.refs.end());
    std::sort(b.refs.begin() + static_cast<std::ptrdiff_t>(_cursorIdx),
              b.refs.end(), [this](Ref a, Ref c) {
                  const Entry &ea = entryAt(slotOf(a));
                  const Entry &ec = entryAt(slotOf(c));
                  if (ea.priority != ec.priority)
                      return ea.priority < ec.priority;
                  return ea.seq < ec.seq;
              });
    b.dirty = false;
    if (b.refs.size() > _cursorIdx)
        b.lastPrio = entryAt(slotOf(b.refs.back())).priority;
}

std::uint32_t
EventQueue::findNext(Tick bound)
{
    for (;;) {
        // Far events entering the near horizon must be bucketed
        // before anything at or past their tick can fire.
        if (_farMin != kTickInvalid && _farMin - _now < Tick(kWindow))
            migrateNear(_now);
        if (_nearLive == 0) {
            if (_far.empty())
                return kNoSlot;
            // Everything pending is far. Only leap the window there
            // if the caller will actually fire that event: jumping
            // commits its tick to a bucket, and a bucket is only
            // unambiguous while every live near event is within
            // kWindow of now() — which the immediate fire (advancing
            // now() to the jump target) is what re-establishes.
            if (_farMin > bound)
                return kNoSlot;
            const Tick base = _farMin;
            migrateNear(base);
            if (_cursorTick < base) {
                _cursorTick = base;
                _cursorIdx = 0;
            }
            continue;
        }
        for (;;) {
            Bucket &b = bucketAt(_cursorTick);
            if (b.dirty && _cursorIdx < b.refs.size())
                cleanBucket(b);
            while (_cursorIdx < b.refs.size()) {
                const Ref r = b.refs[_cursorIdx];
                if (entryAt(slotOf(r)).gen == genOf(r))
                    return slotOf(r);
                ++_cursorIdx; // stale (cancelled or recycled): skip
            }
            // Bucket exhausted: reset it and advance to the next
            // marked tick inside the window.
            b.refs.clear();
            b.dirty = false;
            clearBucket(static_cast<std::size_t>(_cursorTick &
                                                 kWindowMask));
            _cursorIdx = 0;
            const std::size_t d = findMarked(static_cast<std::size_t>(
                (_cursorTick + 1) & kWindowMask));
            if (d == kWindow)
                break; // no marked buckets left: far heap or drained
            _cursorTick += 1 + Tick(d);
        }
    }
}

void
EventQueue::fireAt(std::uint32_t slot)
{
    Entry &e = entryAt(slot);
    ASTRA_DCHECK(e.when == _cursorTick && e.when >= _now,
                 "ladder returned an out-of-order event (when=%llu "
                 "cursor=%llu now=%llu)",
                 static_cast<unsigned long long>(e.when),
                 static_cast<unsigned long long>(_cursorTick),
                 static_cast<unsigned long long>(_now));
    ++_cursorIdx; // consume the cursor's ref
    --_nearLive;
    --_size;
    _now = e.when;
    noteFired(e);
    ++_executed;
    // Retire the handle before invoking: cancel() of this event now
    // reports false, and the slot cannot be recycled mid-fire because
    // it only reaches the free list after the callback returns (so
    // re-entrant schedule() calls can never alias it).
    e.gen = nextGen(e.gen);
    e.cb();
    e.cb.reset();
    _freeList.push_back(slot);
}

bool
EventQueue::step()
{
    const std::uint32_t slot = findNext(kTickInvalid);
    if (slot == kNoSlot)
        return false;
    fireAt(slot);
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && step())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runBounded(Tick until, std::uint64_t max_events)
{
    // The guard loop's primitive: a strict prefix of run()'s firing
    // stream. Stopping leaves _now at the last fired tick — a tripped
    // budget reports where the run actually got to, and a later slice
    // resumes the identical stream.
    std::uint64_t n = 0;
    while (n < max_events) {
        const std::uint32_t slot = findNext(until);
        if (slot == kNoSlot || entryAt(slot).when > until)
            break;
        fireAt(slot);
        ++n;
    }
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t n = 0;
    for (;;) {
        const std::uint32_t slot = findNext(until);
        if (slot == kNoSlot || entryAt(slot).when > until)
            break;
        fireAt(slot);
        ++n;
    }
    if (_now < until) {
        _now = until;
        // Ticks in (cursor, now] fired nothing, so their buckets hold
        // at most stale refs; restart the scan at now.
        if (_cursorTick < _now) {
            _cursorTick = _now;
            _cursorIdx = 0;
        }
    }
    return n;
}

void
EventQueue::debugSetFreeSlotGeneration(std::uint32_t slot,
                                       std::uint32_t gen)
{
    ASTRA_CHECK(slot < _slotCount,
                "debugSetFreeSlotGeneration: slot %u out of range (%u "
                "allocated)",
                slot, _slotCount);
    ASTRA_CHECK(std::find(_freeList.begin(), _freeList.end(), slot) !=
                    _freeList.end(),
                "debugSetFreeSlotGeneration: slot %u is live", slot);
    ASTRA_CHECK(gen != 0, "generation 0 is reserved for kEventIdInvalid");
    entryAt(slot).gen = gen;
}

void
EventQueue::validateDrained() const
{
    ASTRA_CHECK(_size == 0,
                "event queue drained with %zu live event(s) still "
                "pending at tick %llu",
                _size, static_cast<unsigned long long>(_now));
    ASTRA_CHECK(_freeList.size() == _slotCount,
                "event queue drained with %zu slab slot(s) unreclaimed "
                "at tick %llu",
                static_cast<std::size_t>(_slotCount) - _freeList.size(),
                static_cast<unsigned long long>(_now));
}

} // namespace astra
