#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hh"
#include "common/logging.hh"

namespace astra
{
namespace
{

TEST(Table, CsvWithHeader)
{
    Table t;
    t.header({"a", "b"});
    t.row().cell("1").cell("2");
    t.row().cell("x").cell("y");
    EXPECT_EQ(t.toCsv(), "a,b\n1,2\nx,y\n");
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvEscapesSpecials)
{
    Table t;
    t.row().cell("has,comma").cell("has\"quote").cell("plain");
    EXPECT_EQ(t.toCsv(), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(Table, NumericCells)
{
    Table t;
    t.row().cell(std::uint64_t{42}).cell(3.14159, "%.2f");
    EXPECT_EQ(t.toCsv(), "42,3.14\n");
}

TEST(Table, TextAlignsColumns)
{
    Table t;
    t.header({"name", "v"});
    t.row().cell("x").cell("100");
    t.row().cell("longer").cell("5");
    std::string s = t.toText();
    std::istringstream is(s);
    std::string l1, l2, l3, l4;
    std::getline(is, l1);
    std::getline(is, l2); // separator
    std::getline(is, l3);
    std::getline(is, l4);
    EXPECT_EQ(l2.find_first_not_of('-'), std::string::npos);
    // Column 2 starts at the same offset in all data rows.
    EXPECT_EQ(l3.find("100"), l1.find("v"));
    EXPECT_EQ(l4.find("5"), l1.find("v"));
}

TEST(Table, WriteCsvRoundTrip)
{
    Table t;
    t.header({"k"});
    t.row().cell("v");
    const char *path = "/tmp/astra_csv_test.csv";
    t.writeCsv(path);
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), "k\nv\n");
    std::remove(path);
}

TEST(Table, WriteCsvBadPathFails)
{
    Table t;
    t.row().cell("v");
    EXPECT_THROW(t.writeCsv("/nonexistent-dir/x.csv"), FatalError);
}

} // namespace
} // namespace astra
