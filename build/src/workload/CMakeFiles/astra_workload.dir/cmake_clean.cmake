file(REMOVE_RECURSE
  "CMakeFiles/astra_workload.dir/layer.cc.o"
  "CMakeFiles/astra_workload.dir/layer.cc.o.d"
  "CMakeFiles/astra_workload.dir/models.cc.o"
  "CMakeFiles/astra_workload.dir/models.cc.o.d"
  "CMakeFiles/astra_workload.dir/pipeline.cc.o"
  "CMakeFiles/astra_workload.dir/pipeline.cc.o.d"
  "CMakeFiles/astra_workload.dir/trainer.cc.o"
  "CMakeFiles/astra_workload.dir/trainer.cc.o.d"
  "libastra_workload.a"
  "libastra_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
