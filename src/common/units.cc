#include "common/units.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace astra
{

Bytes
parseBytes(const std::string &text)
{
    if (text.empty())
        fatal("empty size string");
    const char *s = text.c_str();
    char *end = nullptr;
    double value = std::strtod(s, &end);
    if (end == s || value < 0)
        fatal("malformed size string '%s'", text.c_str());
    while (*end && std::isspace(static_cast<unsigned char>(*end)))
        ++end;
    double mult = 1;
    switch (std::toupper(static_cast<unsigned char>(*end))) {
      case '\0':
        break;
      case 'B':
        ++end;
        break;
      case 'K':
        mult = static_cast<double>(KiB);
        ++end;
        break;
      case 'M':
        mult = static_cast<double>(MiB);
        ++end;
        break;
      case 'G':
        mult = static_cast<double>(GiB);
        ++end;
        break;
      default:
        fatal("malformed size suffix in '%s'", text.c_str());
    }
    // Allow a trailing 'B' / "iB" after K/M/G.
    if (*end == 'i' || *end == 'I')
        ++end;
    if (*end == 'b' || *end == 'B')
        ++end;
    if (*end != '\0')
        fatal("trailing junk in size string '%s'", text.c_str());
    return static_cast<Bytes>(std::llround(value * mult));
}

std::string
formatBytes(Bytes bytes)
{
    if (bytes >= GiB) {
        double g = static_cast<double>(bytes) / static_cast<double>(GiB);
        return strprintf("%.4gGB", g);
    }
    if (bytes >= MiB) {
        double m = static_cast<double>(bytes) / static_cast<double>(MiB);
        return strprintf("%.4gMB", m);
    }
    if (bytes >= KiB) {
        double k = static_cast<double>(bytes) / static_cast<double>(KiB);
        return strprintf("%.4gKB", k);
    }
    return strprintf("%lluB", static_cast<unsigned long long>(bytes));
}

std::string
formatTicks(Tick ticks)
{
    double us = static_cast<double>(ticks) / 1e3;
    return strprintf("%llu cycles (%.3f us)",
                     static_cast<unsigned long long>(ticks), us);
}

} // namespace astra
