#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hh"

namespace astra
{
namespace
{

TEST(ThreadPool, DefaultThreadsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
}

// astra-lint: thread-confined(pool.wait joins before the frame exits)
TEST(ThreadPool, RunsEverySubmittedJob)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

// astra-lint: thread-confined(every submit is followed by a wait)
TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
    pool.submit([&] { ran.fetch_add(1); });
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
}

// The pool's destructor drains the queue before the captured counter
// dies; that drain is exactly what this test proves.
// astra-lint: thread-confined(pool destructor drains before counter dies)
TEST(ThreadPool, DestructorDrainsOutstandingJobs)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { ran.fetch_add(1); });
        // No wait(): the destructor must finish the queue.
    }
    EXPECT_EQ(ran.load(), 50);
}

// astra-lint: thread-confined(pool.wait joins before the frame exits)
TEST(ThreadPool, WaitRethrowsFirstJobException)
{
    ThreadPool pool(2);
    // Deliberately throwing job: the test proves wait() rethrows.
    pool.submit([] {
        throw std::runtime_error("job failed"); // astra-lint: allow(no-throw)
    });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed; the pool stays usable.
    std::atomic<int> ran{0};
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

// A worker exception must be captured on the worker and rethrown by
// wait() — never allowed to escape the worker thread, where it would
// call std::terminate. The drain path has no wait() left to rethrow
// on, so surviving the scope exit IS the assertion.
// astra-lint: thread-confined(pool destructor drains before counter dies)
TEST(ThreadPool, DestructorDrainsThrowingJobsWithoutTerminate)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 20; ++i) {
            pool.submit([&] {
                ran.fetch_add(1);
                if (ran.load() % 3 == 0) // deliberate: tests containment
                    throw std::runtime_error("drain boom"); // astra-lint: allow(no-throw)
            });
        }
        // No wait(): the destructor must drain the queue, capturing
        // (not terminating on) every job exception.
    }
    EXPECT_EQ(ran.load(), 20);
}

// astra-lint: thread-confined(pool.wait joins before the frame exits)
TEST(ThreadPool, EveryJobRunsEvenWhenEarlierJobsThrow)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&, i] {
            ran.fetch_add(1);
            if (i % 10 == 0) // deliberate: tests rethrow + continuation
                throw std::runtime_error("boom"); // astra-lint: allow(no-throw)
        });
    }
    // The first captured exception surfaces; the rest of the queue
    // still runs to completion (workers never die with the job).
    EXPECT_THROW(pool.wait(), std::runtime_error);
    pool.wait(); // error consumed above; pool idle and healthy
    EXPECT_EQ(ran.load(), 100);
}

// astra-lint: thread-confined(parallelFor joins before returning)
TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (int jobs : {1, 2, 4, 8}) {
        std::vector<std::atomic<int>> hits(257);
        parallelFor(jobs, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1) << "jobs=" << jobs;
    }
}

// astra-lint: thread-confined(parallelFor joins; disjoint out[i] slots)
TEST(ParallelFor, SerialAndParallelProduceIdenticalOutput)
{
    auto compute = [](int jobs) {
        std::vector<std::uint64_t> out(1000);
        parallelFor(jobs, out.size(),
                    [&](std::size_t i) { out[i] = i * i + 7; });
        return out;
    };
    EXPECT_EQ(compute(1), compute(4));
}

// astra-lint: thread-confined(parallelFor joins before returning)
TEST(ParallelFor, ZeroCountIsANoop)
{
    bool ran = false;
    parallelFor(4, 0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelFor, PropagatesExceptions)
{
    EXPECT_THROW(parallelFor(4, 100,
                             [](std::size_t i) {
                                 if (i == 42) // deliberate: tests rethrow
                                     throw std::runtime_error("boom"); // astra-lint: allow(no-throw)
                             }),
                 std::runtime_error);
}

} // namespace
} // namespace astra
