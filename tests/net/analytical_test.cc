#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/event_queue.hh"
#include "net/analytical.hh"

namespace astra
{
namespace
{

/** Serialization time mirroring the backend's formula. */
Tick
tx(double bw, double eff, Bytes bytes)
{
    return static_cast<Tick>(
        std::ceil(static_cast<double>(bytes) / (bw * eff)));
}

struct Harness
{
    EventQueue eq;
    Topology topo;
    AnalyticalNetwork net;
    std::vector<std::pair<NodeId, Tick>> deliveries;

    explicit Harness(const SimConfig &cfg)
        : topo(cfg), net(eq, topo, cfg)
    {
        for (NodeId n = 0; n < topo.numNodes(); ++n) {
            net.setReceiver(n, [this, n](const Message &) {
                deliveries.emplace_back(n, eq.now());
            });
        }
    }

    void
    send(NodeId src, NodeId dst, Bytes bytes, RouteHint hint)
    {
        Message m;
        m.src = src;
        m.dst = dst;
        m.bytes = bytes;
        m.hint = hint;
        net.send(std::move(m));
    }
};

TEST(Analytical, SingleHopTimingIsTxPlusLatency)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    Harness h(cfg);
    h.send(0, 1, 1000, RouteHint{1, 0});
    h.eq.run();
    ASSERT_EQ(h.deliveries.size(), 1u);
    const Tick expect = tx(25.0, 0.94, 1000) + 200;
    EXPECT_EQ(h.deliveries[0].second, expect);
}

TEST(Analytical, LocalLinksAreFaster)
{
    SimConfig cfg;
    cfg.torus(2, 2, 1);
    Harness h(cfg);
    h.send(0, 1, 100000, RouteHint{0, 0});
    h.eq.run();
    ASSERT_EQ(h.deliveries.size(), 1u);
    const Tick expect = tx(200.0, 0.94, 100000) + 90;
    EXPECT_EQ(h.deliveries[0].second, expect);
}

TEST(Analytical, TwoMessagesOnOneLinkSerialize)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    Harness h(cfg);
    h.send(0, 1, 1000, RouteHint{1, 0});
    h.send(0, 1, 1000, RouteHint{1, 0});
    h.eq.run();
    ASSERT_EQ(h.deliveries.size(), 2u);
    const Tick t1 = tx(25.0, 0.94, 1000);
    EXPECT_EQ(h.deliveries[0].second, t1 + 200);
    EXPECT_EQ(h.deliveries[1].second, 2 * t1 + 200);
}

TEST(Analytical, DifferentChannelsDoNotContend)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    Harness h(cfg);
    h.send(0, 1, 1000, RouteHint{1, 0});
    h.send(0, 1, 1000, RouteHint{1, 2}); // another forward ring
    h.eq.run();
    ASSERT_EQ(h.deliveries.size(), 2u);
    EXPECT_EQ(h.deliveries[0].second, h.deliveries[1].second);
}

TEST(Analytical, SoftwareRoutingStoresAndForwards)
{
    SimConfig cfg;
    cfg.torus(1, 4, 1);
    cfg.packetRouting = PacketRouting::Software;
    Harness h(cfg);
    h.send(0, 2, 1000, RouteHint{1, 0}); // 2 hops
    h.eq.run();
    ASSERT_EQ(h.deliveries.size(), 1u);
    const Tick t1 = tx(25.0, 0.94, 1000);
    // hop1: tx + lat + router; hop2: tx + lat.
    EXPECT_EQ(h.deliveries[0].second, (t1 + 200 + 1) + (t1 + 200));
}

TEST(Analytical, HardwareRoutingCutsThrough)
{
    SimConfig cfg;
    cfg.torus(1, 4, 1);
    cfg.packetRouting = PacketRouting::Hardware;
    Harness h(cfg);
    h.send(0, 2, 1000, RouteHint{1, 0});
    h.eq.run();
    ASSERT_EQ(h.deliveries.size(), 1u);
    const Tick t1 = tx(25.0, 0.94, 1000);
    // Head advances after latency+router; serialization overlaps.
    EXPECT_EQ(h.deliveries[0].second, (200 + 1) + (t1 + 200));
}

TEST(Analytical, HardwareNeverSlowerThanSoftware)
{
    for (Bytes bytes : {Bytes(100), Bytes(10000), Bytes(1000000)}) {
        Tick sw, hw;
        {
            SimConfig cfg;
            cfg.torus(1, 8, 1);
            cfg.packetRouting = PacketRouting::Software;
            Harness h(cfg);
            h.send(0, 5, bytes, RouteHint{1, 0});
            h.eq.run();
            sw = h.deliveries.at(0).second;
        }
        {
            SimConfig cfg;
            cfg.torus(1, 8, 1);
            cfg.packetRouting = PacketRouting::Hardware;
            Harness h(cfg);
            h.send(0, 5, bytes, RouteHint{1, 0});
            h.eq.run();
            hw = h.deliveries.at(0).second;
        }
        EXPECT_LE(hw, sw) << "bytes=" << bytes;
    }
}

TEST(Analytical, LoopbackDeliversWithoutLinks)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    Harness h(cfg);
    h.send(0, 0, 12345, RouteHint{1, 0});
    h.eq.run();
    ASSERT_EQ(h.deliveries.size(), 1u);
    EXPECT_EQ(h.deliveries[0].first, 0);
    EXPECT_EQ(h.net.byteHops(), 0u);
}

TEST(Analytical, ByteHopsAccumulatePerLink)
{
    SimConfig cfg;
    cfg.torus(1, 4, 1);
    Harness h(cfg);
    h.send(0, 2, 1000, RouteHint{1, 0}); // 2 hops
    h.eq.run();
    EXPECT_EQ(h.net.byteHops(), 2000u);
    EXPECT_EQ(h.net.deliveredMessages(), 1u);
}

TEST(Analytical, SwitchPathCrossesTwoPackageLinks)
{
    SimConfig cfg;
    cfg.allToAll(1, 4, 2);
    Harness h(cfg);
    h.send(0, 3, 1000, RouteHint{1, 1});
    h.eq.run();
    ASSERT_EQ(h.deliveries.size(), 1u);
    const Tick t1 = tx(25.0, 0.94, 1000);
    EXPECT_EQ(h.deliveries[0].second, (t1 + 200 + 1) + (t1 + 200));
    EXPECT_EQ(h.net.byteHops(), 2000u);
}

TEST(Analytical, EfficiencyStretchesSerialization)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    cfg.package.efficiency = 0.5;
    Harness h(cfg);
    h.send(0, 1, 10000, RouteHint{1, 0});
    h.eq.run();
    EXPECT_EQ(h.deliveries.at(0).second, tx(25.0, 0.5, 10000) + 200);
}

} // namespace
} // namespace astra
