/**
 * @file
 * Lightweight statistics package (counters, accumulators, histograms).
 *
 * The system layer publishes per-phase queue and network delays through
 * these (the P0..P4 breakdown of Fig. 12b); the workload layer publishes
 * per-layer compute / communication / exposed-communication time.
 */

#ifndef ASTRA_COMMON_STATS_HH
#define ASTRA_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace astra
{

/**
 * Mean/min/max/total accumulator over double samples.
 */
class Accumulator
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        _sum += v;
        _count += 1;
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }

    std::uint64_t count() const { return _count; }
    double total() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double minimum() const { return _count ? _min : 0.0; }
    double maximum() const { return _count ? _max : 0.0; }

    /** Merge another accumulator into this one. */
    void
    merge(const Accumulator &o)
    {
        _sum += o._sum;
        _count += o._count;
        if (o._count) {
            _min = std::min(_min, o._min);
            _max = std::max(_max, o._max);
        }
    }

  private:
    double _sum = 0;
    std::uint64_t _count = 0;
    double _min = 1e300;
    double _max = -1e300;
};

/**
 * A named bag of counters and accumulators. Hierarchical names use
 * dots ("sys3.queue.P2").
 */
class StatGroup
{
  public:
    /** Add @p delta to counter @p name (creates it at zero). */
    void
    inc(const std::string &name, double delta = 1.0)
    {
        _counters[name] += delta;
    }

    /** Read counter @p name (zero if absent). */
    double
    counter(const std::string &name) const
    {
        auto it = _counters.find(name);
        return it == _counters.end() ? 0.0 : it->second;
    }

    /** Record a sample into accumulator @p name. */
    void
    sample(const std::string &name, double v)
    {
        _accs[name].sample(v);
    }

    /** Read accumulator @p name (empty default if absent). */
    const Accumulator &
    accumulator(const std::string &name) const
    {
        static const Accumulator empty;
        auto it = _accs.find(name);
        return it == _accs.end() ? empty : it->second;
    }

    /** All counters, sorted by name. */
    const std::map<std::string, double> &counters() const
    {
        return _counters;
    }

    /** All accumulators, sorted by name. */
    const std::map<std::string, Accumulator> &accumulators() const
    {
        return _accs;
    }

    /** Merge another group into this one (counters add, accs merge). */
    void merge(const StatGroup &o);

    /** Drop all recorded data. */
    void
    clear()
    {
        _counters.clear();
        _accs.clear();
    }

  private:
    std::map<std::string, double> _counters;
    std::map<std::string, Accumulator> _accs;
};

} // namespace astra

#endif // ASTRA_COMMON_STATS_HH
