#include "common/event_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace astra
{

namespace
{

struct EntryGreater
{
    template <typename E>
    bool
    operator()(const E &a, const E &b) const
    {
        return a > b;
    }
};

} // namespace

EventId
EventQueue::schedule(Tick when, EventCallback cb, int priority)
{
    // A past-dated event would fire "now" but after everything already
    // run this tick, silently corrupting the non-decreasing-time
    // ordering every layer assumes. This is a caller bug expressed
    // through user-facing APIs (e.g. a negative delay computed from a
    // bad config), so fail loudly with the offending values.
    ASTRA_CHECK(when >= _now,
                "event scheduled in the past (when=%llu now=%llu "
                "delta=-%llu priority=%d): delays must be non-negative",
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(_now),
                static_cast<unsigned long long>(
                    when < _now ? _now - when : 0),
                priority);
    EventId id = _nextId++;
    if (_heap.empty() && _heap.capacity() < kInitialReserve)
        _heap.reserve(kInitialReserve);
    _heap.push_back(Entry{when, priority, _seq++, id, std::move(cb)});
    std::push_heap(_heap.begin(), _heap.end(), EntryGreater{});
    _live.insert(id);
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    // An id is cancellable exactly while it is live: still in the heap
    // and not yet fired. Cancelled entries stay in the heap and are
    // skipped at pop time — unless they pile up, in which case
    // maybePurge() compacts them away in bulk.
    if (_live.erase(id) == 0)
        return false;
    ++_cancelledInHeap;
    maybePurge();
    return true;
}

void
EventQueue::maybePurge()
{
    if (_heap.size() < kPurgeMinHeap ||
        _cancelledInHeap * 2 < _heap.size()) {
        return;
    }
    std::erase_if(_heap, [this](const Entry &e) {
        return _live.find(e.id) == _live.end();
    });
    std::make_heap(_heap.begin(), _heap.end(), EntryGreater{});
    _cancelledInHeap = 0;
}

void
EventQueue::skim()
{
    while (!_heap.empty() && !_live.count(_heap.front().id)) {
        std::pop_heap(_heap.begin(), _heap.end(), EntryGreater{});
        _heap.pop_back();
        --_cancelledInHeap;
    }
}

bool
EventQueue::popNext(Entry &out)
{
    skim();
    if (_heap.empty())
        return false;
    std::pop_heap(_heap.begin(), _heap.end(), EntryGreater{});
    out = std::move(_heap.back());
    _heap.pop_back();
    _live.erase(out.id);
    ASTRA_DCHECK(out.when >= _now,
                 "heap returned a past event (when=%llu now=%llu)",
                 static_cast<unsigned long long>(out.when),
                 static_cast<unsigned long long>(_now));
    return true;
}

bool
EventQueue::step()
{
    Entry e;
    if (!popNext(e))
        return false;
    noteFired(e);
    _now = e.when;
    ++_executed;
    e.cb();
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && step())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t n = 0;
    while (true) {
        skim();
        if (_heap.empty() || _heap.front().when > until)
            break;
        Entry e;
        if (!popNext(e))
            break;
        noteFired(e);
        _now = e.when;
        ++_executed;
        e.cb();
        ++n;
    }
    if (_now < until)
        _now = until;
    return n;
}

void
EventQueue::validateDrained() const
{
    ASTRA_CHECK(_live.empty(),
                "event queue drained with %zu live event(s) still "
                "pending at tick %llu",
                _live.size(), static_cast<unsigned long long>(_now));
    ASTRA_CHECK(_heap.empty() && _cancelledInHeap == 0,
                "event queue drained with %zu heap entr(ies) "
                "(%zu cancelled) unreclaimed at tick %llu",
                _heap.size(), _cancelledInHeap,
                static_cast<unsigned long long>(_now));
}

} // namespace astra
