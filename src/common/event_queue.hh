/**
 * @file
 * The event-driven execution core of ASTRA-SIM (Sec. IV of the paper).
 *
 * ASTRA-SIM maintains its own event queue in the system layer and
 * exposes it to the workload layer to schedule events. All three layers
 * (workload / system / network) share one EventQueue instance. Each
 * simulated platform owns a *private* EventQueue — queues are never
 * shared across simulations, which is what lets the sweep engine run
 * independent simulations on separate threads with no locking here.
 *
 * Ordering guarantees:
 *  - events fire in non-decreasing tick order;
 *  - events scheduled for the same tick fire in ascending priority;
 *  - events with equal (tick, priority) fire in insertion (FIFO) order.
 *
 * The FIFO tiebreak makes simulations bit-for-bit deterministic, which
 * the repeatability tests (and the sweep engine's determinism
 * contract, DESIGN.md) rely on. The retired-event digest (--digest)
 * folds every fired (tick, priority, seq) triple, so any change to the
 * firing stream is detectable; the structures below are pure mechanics
 * and retire the exact same stream as a binary heap would.
 *
 * Hot-path design (docs/performance.md has the full rationale):
 *  - **Ladder buckets, not a heap.** Discrete-event traffic here
 *    schedules overwhelmingly at `now + small latency`, so events land
 *    in a kWindow-tick array of per-tick buckets indexed by `when &
 *    kWindowMask`. schedule() is an append; popping walks the current
 *    tick's bucket with a cursor. No O(log n) sift, no Entry moves.
 *    A two-level bitmap finds the next non-empty tick in O(1).
 *  - **Far-future overflow heap.** The rare event beyond the window
 *    (compute phases, retry backoff) waits in a small binary heap of
 *    32-byte POD refs — the callback never moves — and migrates into
 *    the bucket array as the window reaches it.
 *  - **Slab-allocated entries.** Entry objects (callback included)
 *    live in chunked slab storage with a free list; scheduling never
 *    touches the general heap and a fired entry's storage is reused by
 *    the next schedule(). Chunk addresses are stable, so callbacks run
 *    in place — no move out of the container to invoke.
 *  - **Generation-tagged handles, no hash set.** An EventId packs
 *    {generation, slot}; cancel() and liveness checks are one slab
 *    probe comparing generations. The old per-event unordered_set
 *    insert/erase/find pair is gone entirely.
 *  - EventCallback stores small callables inline (48 bytes of
 *    in-object storage) instead of heap-allocating through
 *    std::function — nearly every callback in the simulator captures
 *    only a pointer or two plus an id.
 */

// astra-lint: hot-path (every event schedule/retire crosses this TU)
// astra-lint: allocator-tu (EventCallback's small-buffer storage and
// the entry slab construct objects via placement new; this TU owns
// that machinery — see docs/static-analysis.md.)

#ifndef ASTRA_COMMON_EVENT_QUEUE_HH
#define ASTRA_COMMON_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hh"
#include "common/types.hh"
#include "common/validate.hh"

namespace astra
{

/**
 * Move-only callable with small-buffer storage.
 *
 * Drop-in for the scheduling subset of std::function<void()>: any
 * callable whose state fits kInlineBytes and moves without throwing
 * lives inside the EventQueue entry itself; larger callables fall back
 * to one heap allocation, exactly like std::function.
 */
class EventCallback
{
  public:
    /** Inline storage: enough for several pointers/ids per capture. */
    static constexpr std::size_t kInlineBytes = 48;

    EventCallback() noexcept = default;

    template <typename F,
              typename Fn = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<Fn, EventCallback> &&
                  std::is_invocable_r_v<void, Fn &>>>
    EventCallback(F &&f) // NOLINT: implicit by design, like std::function
    {
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(_buf)) Fn(std::forward<F>(f));
            _ops = &kInlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(_buf) =
                new Fn(std::forward<F>(f)); // NOLINT: SBO heap fallback
            _ops = &kHeapOps<Fn>;
        }
    }

    EventCallback(EventCallback &&o) noexcept { moveFrom(o); }

    EventCallback &
    operator=(EventCallback &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    explicit operator bool() const noexcept { return _ops != nullptr; }

    /** True when the callable lives in the inline buffer (no heap). */
    bool storedInline() const noexcept { return _ops && _ops->isInline; }

    void operator()() { _ops->invoke(_buf); }

    /** Destroy the stored callable (no-op when already empty). */
    void
    reset() noexcept
    {
        if (_ops) {
            _ops->destroy(_buf);
            _ops = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
        bool isInline;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops kInlineOps = {
        [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
        [](void *dst, void *src) noexcept {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) noexcept {
            std::launder(reinterpret_cast<Fn *>(p))->~Fn();
        },
        /*isInline=*/true,
    };

    template <typename Fn>
    static constexpr Ops kHeapOps = {
        [](void *p) { (**reinterpret_cast<Fn **>(p))(); },
        [](void *dst, void *src) noexcept {
            *reinterpret_cast<Fn **>(dst) = *reinterpret_cast<Fn **>(src);
        },
        [](void *p) noexcept { delete *reinterpret_cast<Fn **>(p); },
        /*isInline=*/false,
    };

    void
    moveFrom(EventCallback &o) noexcept
    {
        _ops = o._ops;
        if (_ops) {
            _ops->relocate(_buf, o._buf);
            o._ops = nullptr;
        }
    }

    const Ops *_ops = nullptr;
    alignas(std::max_align_t) unsigned char _buf[kInlineBytes];
};

/**
 * Generation-tagged handle to a scheduled event: the high 32 bits are
 * the slab slot's generation at schedule time, the low 32 bits the
 * slot index. cancel()/live() compare the tag against the slot's
 * current generation — one array probe, no hashing. Never zero for a
 * real event (generations start at 1), so 0 can mean "no event".
 */
using EventId = std::uint64_t;

/** No-event sentinel (never returned by schedule()). */
inline constexpr EventId kEventIdInvalid = 0;

/**
 * A deterministic discrete-event queue (ladder buckets + far heap over
 * a slab of recycled entries; see the file comment).
 */
class EventQueue
{
  public:
    /** Default priority for ordinary events. */
    static constexpr int kDefaultPriority = 0;

    /**
     * Near-future horizon: events within kWindow ticks of now() are
     * bucketed per tick; anything farther waits in the far heap. Sized
     * so link/router/endpoint latencies land in buckets and only
     * compute phases and retry backoffs spill far.
     */
    static constexpr std::size_t kWindowBits = 12;
    static constexpr std::size_t kWindow = std::size_t(1) << kWindowBits;
    static constexpr Tick kWindowMask = Tick(kWindow) - 1;

    /**
     * The ordering audit (validate::eventOrder per fired event) is
     * armed here when the process-global validation level is `full` at
     * construction time; set the level before building the queue (the
     * CLI does, before any Cluster exists).
     */
    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when  Absolute tick; must be >= now(). Scheduling into
     *              the past is a fatal() error — it would silently
     *              violate the non-decreasing-time guarantee.
     * @param cb    Callback to invoke.
     * @param priority  Lower fires first within a tick.
     * @return a generation-tagged handle usable with cancel()/live().
     */
    EventId schedule(Tick when, EventCallback cb,
                     int priority = kDefaultPriority);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId
    scheduleAfter(Tick delay, EventCallback cb,
                  int priority = kDefaultPriority)
    {
        return schedule(_now + delay, std::move(cb), priority);
    }

    /**
     * Cancel a previously scheduled event. One slab probe: the slot's
     * entry is destroyed and recycled immediately (only an 8-byte
     * stale ref stays behind, skipped by its generation mismatch).
     *
     * @return true if the event was pending and is now cancelled,
     *         false if it already fired or was already cancelled.
     */
    bool cancel(EventId id);

    /**
     * True while @p id is scheduled and not yet fired or cancelled.
     * One generation compare against the slab — no hashing.
     */
    bool
    live(EventId id) const
    {
        const std::uint32_t slot = slotOf(id);
        return slot < _slotCount && entryAt(slot).gen == genOf(id);
    }

    /** Slot index of a handle (for diagnostics/tests). */
    static std::uint32_t
    slotOf(EventId id)
    {
        return static_cast<std::uint32_t>(id & 0xffffffffU);
    }

    /** Generation tag of a handle (for diagnostics/tests). */
    static std::uint32_t
    genOf(EventId id)
    {
        return static_cast<std::uint32_t>(id >> 32);
    }

    /** Number of pending (live, non-cancelled) events. */
    std::size_t pendingEvents() const { return _size; }

    /** True when no runnable events remain. */
    bool empty() const { return _size == 0; }

    /**
     * Run events until the queue drains or @p max_events fire.
     *
     * @return the number of events executed.
     */
    std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

    /**
     * Run events with tick <= @p until (inclusive). Time advances to
     * @p until even if the queue drains earlier.
     *
     * @return the number of events executed.
     */
    std::uint64_t runUntil(Tick until);

    /**
     * Run up to @p max_events events with tick <= @p until (inclusive),
     * for the supervised loop (src/guard): unlike runUntil(), time is
     * NOT advanced past the last fired event when the queue still holds
     * later work — a budget-tripped run reports the tick it genuinely
     * reached. The fired stream is a strict prefix of what run() would
     * fire, so resuming the loop (or never tripping) retires the
     * identical stream and the determinism digest is unchanged.
     *
     * @return the number of events executed (< max_events means
     *         nothing fireable at or before @p until remains).
     */
    std::uint64_t runBounded(Tick until, std::uint64_t max_events);

    /** Execute exactly one event if available; @return true if one ran. */
    bool step();

    /** Total number of events executed over the queue's lifetime. */
    std::uint64_t executedEvents() const { return _executed; }

    // --- introspection for tests -------------------------------------

    /** Far-heap refs whose event was cancelled but not yet purged. */
    std::size_t staleFarRefs() const { return _staleFar; }

    /** Entries currently parked in the far-future heap (incl. stale). */
    std::size_t farHeapSize() const { return _far.size(); }

    /** Slab slots ever allocated (high-water mark of pending events). */
    std::size_t allocatedSlots() const { return _slotCount; }

    /**
     * Bytes of entry-slab storage currently allocated (chunk payloads;
     * the dominant memory consumer of a runaway schedule loop). What
     * the max-slab-bytes run budget is checked against.
     */
    std::size_t
    slabBytes() const
    {
        return _chunks.size() * kChunkSize * sizeof(Entry);
    }

    /**
     * Test hook for generation wraparound: retag a *free* slot so the
     * next event allocated into it starts at @p gen. Fatal if the slot
     * is live or out of range.
     */
    void debugSetFreeSlotGeneration(std::uint32_t slot,
                                    std::uint32_t gen);

    // --- integrity layer (docs/validation.md) -------------------------

    /**
     * Start folding every retired event's (tick, priority, seq) into
     * an FNV-1a determinism digest. Observer-only: enabling it never
     * changes simulated results, only makes them attributable.
     */
    void enableDigest() { _digestOn = true; }

    /** True when the determinism digest is being accumulated. */
    bool digestEnabled() const { return _digestOn; }

    /** The retired-event-stream digest accumulated so far. */
    std::uint64_t digest() const { return _digest.value(); }

    /** Force the per-event ordering audit on/off (tests). */
    void setOrderAudit(bool on) { _auditOrder = on; }

    /**
     * Drain-time checker: after run() returns, no live events may
     * remain and every entry slot must be back on the free list.
     * Raises an ASTRA_CHECK diagnostic otherwise.
     */
    void validateDrained() const;

  private:
    /** Where an entry's pending ref currently lives. */
    enum class Region : std::uint8_t { kNear, kFar };

    /**
     * One slab slot. `gen` is the slot's *current* generation: equal
     * to a ref's tag iff that ref's event is live. Bumped (skipping 0)
     * every time the slot is freed, which is what invalidates every
     * outstanding handle and bucket/heap ref in O(1).
     */
    struct Entry
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        int priority = 0;
        std::uint32_t gen = 1;
        Region region = Region::kNear;
        EventCallback cb;
    };

    /** Slab granularity: chunk addresses are stable forever. */
    static constexpr std::size_t kChunkBits = 8;
    static constexpr std::size_t kChunkSize = std::size_t(1) << kChunkBits;
    static constexpr std::size_t kChunkMask = kChunkSize - 1;

    /** Far-heap purge threshold (entries; below this, skipping wins). */
    static constexpr std::size_t kPurgeMinFar = 64;

    /** An 8-byte bucket ref: {generation, slot} packed like EventId. */
    using Ref = std::uint64_t;

    /**
     * One tick's pending events, in append order. `lastPrio` is the
     * priority of the last ref appended; `dirty` is set when an append
     * (or a far-heap migration) may have broken the (priority, seq)
     * sort order, and triggers one cleanup pass when the tick fires.
     */
    struct Bucket
    {
        std::vector<Ref> refs;
        int lastPrio = 0;
        bool dirty = false;
    };

    /** Far-heap element: POD ref, ordered by (when, priority, seq). */
    struct FarRef
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
        int priority;

        bool
        operator>(const FarRef &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return seq > o.seq;
        }
    };

    Entry &
    entryAt(std::uint32_t slot)
    {
        return _chunks[slot >> kChunkBits][slot & kChunkMask];
    }

    const Entry &
    entryAt(std::uint32_t slot) const
    {
        return _chunks[slot >> kChunkBits][slot & kChunkMask];
    }

    Bucket &
    bucketAt(Tick when)
    {
        return _buckets[static_cast<std::size_t>(when & kWindowMask)];
    }

    /** Next generation for a freed slot (never 0, so ids stay valid). */
    static std::uint32_t
    nextGen(std::uint32_t gen)
    {
        ++gen;
        return gen == 0 ? 1 : gen;
    }

    /** Take a free slot, growing the slab by one chunk when dry. */
    std::uint32_t allocSlot();

    /** Recycle @p slot: destroy its callback and retag the handle. */
    void
    freeSlot(std::uint32_t slot)
    {
        Entry &e = entryAt(slot);
        e.cb.reset();
        e.gen = nextGen(e.gen);
        _freeList.push_back(slot);
    }

    // Bitmap over the kWindow buckets (two levels: one summary word,
    // kWindow/64 leaf words), tracking which buckets hold refs.
    void
    markBucket(std::size_t idx)
    {
        _bmWords[idx >> 6] |= std::uint64_t(1) << (idx & 63);
        _bmSummary |= std::uint64_t(1) << (idx >> 6);
    }

    void
    clearBucket(std::size_t idx)
    {
        _bmWords[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
        if (_bmWords[idx >> 6] == 0)
            _bmSummary &= ~(std::uint64_t(1) << (idx >> 6));
    }

    /**
     * Circular-scan the bitmap for the first marked bucket at or after
     * window index @p from; @return its distance (0..kWindow-1), or
     * kWindow when every bucket is empty.
     */
    std::size_t findMarked(std::size_t from) const;

    /**
     * Move every far-heap event with when < @p base + kWindow into its
     * bucket (stale refs are dropped). Called when the window reaches
     * the far heap's minimum.
     */
    void migrateNear(Tick base);

    /** Compact the far heap when stale refs dominate it. */
    void maybePurgeFar();

    /**
     * Position the cursor on the next live ref in firing order.
     * @param bound  Highest tick the caller may fire. When everything
     *        pending is beyond the near window, the queue must NOT
     *        leap the window there unless that event is fireable
     *        (<= bound): committing the jump early would leave far
     *        events bucketed kWindow+ ticks ahead of now(), and a
     *        later schedule() inside the window would alias their
     *        bucket indices (ticks are bucketed modulo kWindow).
     * @return the live ref's slot, or kNoSlot when nothing <= bound
     *         remains (far events may still be parked).
     */
    static constexpr std::uint32_t kNoSlot = 0xffffffffU;
    std::uint32_t findNext(Tick bound);

    /** Drop stale refs and restore (priority, seq) order from the
     *  cursor onward in @p b. */
    void cleanBucket(Bucket &b);

    /** Fire the entry the cursor points at (advances the cursor). */
    void fireAt(std::uint32_t slot);

    /**
     * Bookkeeping for the integrity layer, called once per fired
     * event: the ordering audit (level `full`) and the determinism
     * digest. Two branch tests on the fast path when both are off.
     */
    void
    noteFired(const Entry &e)
    {
        if (_auditOrder) {
            if (_firedAny) {
                validate::eventOrder(_lastWhen, _lastPrio, _lastSeq,
                                     e.when, e.priority, e.seq);
            }
            _firedAny = true;
            _lastWhen = e.when;
            _lastPrio = e.priority;
            _lastSeq = e.seq;
        }
        if (_digestOn) {
            _digest.mix(e.when);
            _digest.mix(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(e.priority)));
            _digest.mix(e.seq);
        }
    }

    // Entry slab.
    std::vector<std::unique_ptr<Entry[]>> _chunks;
    std::vector<std::uint32_t> _freeList;
    std::uint32_t _slotCount = 0;

    // Ladder: per-tick buckets + occupancy bitmap.
    std::vector<Bucket> _buckets;
    std::uint64_t _bmSummary = 0;
    std::uint64_t _bmWords[kWindow / 64] = {};
    std::size_t _nearLive = 0; //!< live (non-cancelled) bucket refs

    // Scan cursor: next tick to examine and position within its
    // bucket. Invariant outside pops: _cursorTick >= _now and every
    // bucket for a tick < _cursorTick is empty.
    Tick _cursorTick = 0;
    std::size_t _cursorIdx = 0;

    // Far-future overflow heap.
    std::vector<FarRef> _far; //!< binary min-heap (std::*_heap helpers)
    Tick _farMin = kTickInvalid; //!< cached _far top when (or invalid)
    std::size_t _staleFar = 0;   //!< cancelled refs still in _far

    std::size_t _size = 0; //!< live events across buckets and far heap
    Tick _now = 0;
    std::uint64_t _seq = 0;
    std::uint64_t _executed = 0;

    // Integrity layer (see noteFired).
    bool _auditOrder;
    bool _digestOn = false;
    bool _firedAny = false;
    Tick _lastWhen = 0;
    int _lastPrio = 0;
    std::uint64_t _lastSeq = 0;
    Fnv1aDigest _digest;
};

} // namespace astra

#endif // ASTRA_COMMON_EVENT_QUEUE_HH
