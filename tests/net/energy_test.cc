#include <gtest/gtest.h>

#include "common/units.hh"
#include "core/cluster.hh"

namespace astra
{
namespace
{

TEST(Energy, SingleHopMatchesTheBitCost)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    cfg.preferredSetSplits = 1;
    Cluster cluster(cfg);
    cluster.runCollective(CollectiveKind::AllGather, 1000);
    // All-gather on a 2-ring: each node sends its 500 B block once.
    const auto &e = cluster.network().energy();
    const double bits = 2 * 500 * 8;
    EXPECT_DOUBLE_EQ(e.packageLinkPj, bits * cfg.energy.packagePjPerBit);
    EXPECT_DOUBLE_EQ(e.localLinkPj, 0.0);
    EXPECT_DOUBLE_EQ(e.routerPj,
                     bits / cfg.flitWidthBits *
                         cfg.energy.routerPjPerFlit);
    EXPECT_GT(e.totalPj(), 0.0);
    EXPECT_DOUBLE_EQ(e.totalUj(), e.totalPj() * 1e-6);
}

TEST(Energy, SplitsByLinkClass)
{
    SimConfig cfg;
    cfg.torus(2, 2, 1);
    Cluster cluster(cfg);
    cluster.runCollective(CollectiveKind::AllReduce, 64 * KiB);
    const auto &e = cluster.network().energy();
    EXPECT_GT(e.localLinkPj, 0.0);
    EXPECT_GT(e.packageLinkPj, 0.0);
    // Inter-package bits cost more per bit by configuration.
    EXPECT_GT(cfg.energy.packagePjPerBit, cfg.energy.localPjPerBit);
}

TEST(Energy, EnhancedAlgorithmSavesInterPackageEnergy)
{
    // The 4-phase algorithm moves 4x less data over the expensive
    // inter-package links (Fig. 11's mechanism) — the energy model
    // makes the saving directly measurable.
    SimConfig cfg;
    cfg.torus(4, 4, 4);
    const Bytes c = 4 * MiB;
    double base_pkg, enh_pkg;
    {
        SimConfig b = cfg;
        b.algorithm = AlgorithmFlavor::Baseline;
        Cluster cluster(b);
        cluster.runCollective(CollectiveKind::AllReduce, c);
        base_pkg = cluster.network().energy().packageLinkPj;
    }
    {
        SimConfig e = cfg;
        e.algorithm = AlgorithmFlavor::Enhanced;
        Cluster cluster(e);
        cluster.runCollective(CollectiveKind::AllReduce, c);
        enh_pkg = cluster.network().energy().packageLinkPj;
    }
    EXPECT_NEAR(base_pkg / enh_pkg, 4.0, 0.1);
}

TEST(Energy, BothBackendsChargeComparableEnergy)
{
    SimConfig base;
    base.torus(1, 4, 1);
    double ea, eg;
    {
        SimConfig cfg = base;
        cfg.backend = NetworkBackend::Analytical;
        Cluster cluster(cfg);
        cluster.runCollective(CollectiveKind::AllReduce, 256 * KiB);
        ea = cluster.network().energy().totalPj();
    }
    {
        SimConfig cfg = base;
        cfg.backend = NetworkBackend::GarnetLite;
        Cluster cluster(cfg);
        cluster.runCollective(CollectiveKind::AllReduce, 256 * KiB);
        eg = cluster.network().energy().totalPj();
    }
    EXPECT_GT(ea, 0.0);
    // Garnet-lite charges whole flits per packet, so it is slightly
    // higher, never lower.
    EXPECT_GE(eg, ea * 0.99);
    EXPECT_LT(eg, ea * 1.3);
}

TEST(Energy, ParametersAreConfigurable)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    cfg.preferredSetSplits = 1;
    cfg.set("package-pj-per-bit", "10.0");
    cfg.set("router-pj-per-flit", "0");
    cfg.set("local-pj-per-bit", "0.1");
    EXPECT_DOUBLE_EQ(cfg.energy.packagePjPerBit, 10.0);
    Cluster cluster(cfg);
    cluster.runCollective(CollectiveKind::AllGather, 1000);
    const auto &e = cluster.network().energy();
    EXPECT_DOUBLE_EQ(e.routerPj, 0.0);
    EXPECT_DOUBLE_EQ(e.packageLinkPj, 2 * 500 * 8 * 10.0);
}

} // namespace
} // namespace astra
