#!/usr/bin/env bash
# CI driver: build and test the normal configuration, then prove the
# sweep engine race-free under ThreadSanitizer.
#
#   tools/ci.sh          # normal build + full ctest, TSan build +
#                        # concurrency-focused ctest subset
#   tools/ci.sh --full   # also run the *full* suite under TSan (slow)
#
# Build trees: build/ (normal) and build-tsan/ (TSan), both gitignored.
set -euo pipefail
cd "$(dirname "$0")/.."

FULL_TSAN=0
for arg in "$@"; do
    case "$arg" in
        --full) FULL_TSAN=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== normal build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "=== normal ctest ==="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== observability smoke (trace + metric report) ==="
# The CLI must emit a Chrome trace and a metric report that an
# independent parser accepts; validate both with Python's json module.
./build/tools/astra-sim --collective=allreduce --bytes=1MB \
    --trace-file=build/ci_trace.json --report-json=build/ci_report.json
python3 -m json.tool build/ci_trace.json >/dev/null
python3 -m json.tool build/ci_report.json >/dev/null
grep -q '"ph": "C"' build/ci_trace.json \
    || { echo "trace has no counter lane" >&2; exit 1; }
grep -q 'astra-metrics-v1' build/ci_report.json \
    || { echo "report missing schema marker" >&2; exit 1; }
echo "trace and report are valid JSON"

echo "=== TSan build (-DASTRA_SANITIZE=thread) ==="
cmake -B build-tsan -S . -DASTRA_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"

# TSan aborts the process on the first detected race.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

if [ "$FULL_TSAN" -eq 1 ]; then
    echo "=== TSan ctest (full suite) ==="
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
else
    # The concurrency surface: the sweep engine, the thread pool, and
    # the event queue they drive, plus the parallelized CLI/bench paths.
    echo "=== TSan ctest (concurrency subset) ==="
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
        -R 'Sweep|ThreadPool|ParallelFor|EventQueue|DesignSpace|cli_explore_mode|bench_sweep_quick'
fi

echo "=== ci.sh: all green ==="
