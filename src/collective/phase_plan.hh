/**
 * @file
 * Multi-phase collective planning (Sec. III-D).
 *
 * Hierarchical topologies execute collectives as a sequence of phases,
 * each phase confined to one topology dimension. The planner turns
 * (collective kind, participating dimensions, algorithm flavour) into
 * an ordered list of per-dimension operations, plus the data-size
 * scaling each phase applies:
 *
 *  All-reduce, baseline  : AR(local), AR(vertical), AR(horizontal)
 *  All-reduce, enhanced  : RS(local), AR(vertical), AR(horizontal),
 *                          AG(local)
 *      — the enhanced 4-phase algorithm sends 1/M of the data over the
 *        inter-package links (M = local dimension size), exploiting the
 *        asymmetric bandwidth (Fig. 11).
 *  All-to-all            : A2A on every dimension in order.
 *  Reduce-scatter        : RS on every dimension in order.
 *  All-gather            : AG on every dimension in order.
 *
 * The paper's phase order is local first, then vertical, then
 * horizontal (Sec. III-D); the enhanced all-gather phase runs on the
 * local dimension last.
 */

#ifndef ASTRA_COLLECTIVE_PHASE_PLAN_HH
#define ASTRA_COLLECTIVE_PHASE_PLAN_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "topo/topology.hh"

namespace astra
{

/** One phase of a multi-phase collective. */
struct PhaseDesc
{
    int dim;           //!< topology dimension the phase runs on
    CollectiveKind op; //!< operation performed within the dimension

    bool operator==(const PhaseDesc &) const = default;
};

/** An ordered multi-phase plan. */
using PhasePlan = std::vector<PhaseDesc>;

/**
 * Build the phase plan for @p kind over the dimensions listed in
 * @p dims (in increasing "inner-ness": the local dimension, when
 * present, must be dims[0]). Dimensions of size 1 are skipped.
 *
 * @param topo    The logical topology.
 * @param dims    Participating dimension indices. For ordinary
 *                (machine-wide) collectives pass all dimensions; for
 *                hybrid parallelism pass the subgroup's dimensions.
 * @param kind    The collective operation.
 * @param flavor  Baseline or Enhanced (all-reduce only; other kinds
 *                ignore it).
 */
PhasePlan buildPhasePlan(const Topology &topo, const std::vector<int> &dims,
                         CollectiveKind kind, AlgorithmFlavor flavor);

/**
 * Data each node holds entering phase @p phase_idx of @p plan, given
 * it holds @p chunk_bytes entering phase 0.
 */
Bytes phaseEntryBytes(const Topology &topo, const PhasePlan &plan,
                      int phase_idx, Bytes chunk_bytes);

/**
 * Total bytes one node sends onto dimension-@p dim links over the whole
 * plan (analytical expectation used by tests and the Fig. 10 analysis).
 */
double planSendVolume(const Topology &topo, const PhasePlan &plan,
                      Bytes chunk_bytes, int dim);

/** "RS(local) -> AR(vertical) -> ..." rendering. */
std::string toString(const Topology &topo, const PhasePlan &plan);

} // namespace astra

#endif // ASTRA_COLLECTIVE_PHASE_PLAN_HH
