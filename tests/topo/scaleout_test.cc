#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "common/units.hh"
#include "collective/phase_plan.hh"
#include "core/cluster.hh"
#include "workload/models.hh"
#include "workload/trainer.hh"

namespace astra
{
namespace
{

SimConfig
twoPods()
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    cfg.scaleoutDimSize = 2;
    cfg.scaleoutSwitches = 2;
    return cfg;
}

TEST(ScaleOut, AddsAFourthDimension)
{
    Topology t(twoPods());
    ASSERT_EQ(t.numDims(), 4);
    EXPECT_EQ(t.scaleoutDim(), 3);
    EXPECT_EQ(t.dim(3).name, "scaleout");
    EXPECT_EQ(t.dim(3).linkClass, LinkClass::ScaleOut);
    EXPECT_EQ(t.dim(3).pattern, DimPattern::Switch);
    EXPECT_EQ(t.dim(3).channels, 2);
    EXPECT_EQ(t.numNodes(), 16);
    EXPECT_EQ(t.toString(), "Torus3D 2x2x2 x 2 pods (16 NPUs)");
}

TEST(ScaleOut, DisabledByDefault)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Topology t(cfg);
    EXPECT_EQ(t.numDims(), 3);
    EXPECT_EQ(t.scaleoutDim(), -1);
}

TEST(ScaleOut, CoordinatesRoundTripAcrossPods)
{
    Topology t(twoPods());
    std::set<NodeId> seen;
    for (NodeId n = 0; n < t.numNodes(); ++n) {
        Coord c = t.coordOf(n);
        EXPECT_LT(c[3], 2);
        EXPECT_EQ(t.nodeAt(c), n);
        seen.insert(n);
    }
    EXPECT_EQ(seen.size(), 16u);
    // The pod group of node 0 has one member per pod.
    auto g = t.group(3, 0);
    ASSERT_EQ(g.size(), 2u);
    EXPECT_EQ(g[0], 0);
    EXPECT_EQ(g[1], 8);
}

TEST(ScaleOut, PhaseOrderPutsScaleOutLast)
{
    Topology t(twoPods());
    EXPECT_GT(t.phaseOrderKey(3), t.phaseOrderKey(1));
    EXPECT_GT(t.phaseOrderKey(3), t.phaseOrderKey(2));
}

TEST(ScaleOut, AllToAllFamilySupportsPodsToo)
{
    SimConfig cfg;
    cfg.allToAll(2, 4, 2);
    cfg.scaleoutDimSize = 3;
    Topology t(cfg);
    ASSERT_EQ(t.numDims(), 3);
    EXPECT_EQ(t.scaleoutDim(), 2);
    EXPECT_EQ(t.numNodes(), 24);
}

TEST(ScaleOut, ValidationErrors)
{
    SimConfig cfg = twoPods();
    cfg.scaleoutDimSize = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = twoPods();
    cfg.scaleoutSwitches = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = twoPods();
    cfg.scaleout.bandwidth = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(ScaleOut, CollectivesSpanPods)
{
    for (CollectiveKind kind :
         {CollectiveKind::AllReduce, CollectiveKind::AllGather,
          CollectiveKind::ReduceScatter, CollectiveKind::AllToAll}) {
        SimConfig cfg = twoPods();
        Cluster cluster(cfg);
        // Post-conditions enforced at completion: this proves the
        // cross-pod phases carry the data correctly.
        EXPECT_GT(cluster.runCollective(kind, 256 * KiB), 0u)
            << toString(kind);
        StatGroup stats = cluster.aggregateStats();
        EXPECT_GT(stats.counter("sent.bytes.scaleout"), 0.0)
            << toString(kind);
    }
}

TEST(ScaleOut, CrossPodTrafficPaysProtocolAndEthernetCosts)
{
    // Same total nodes: one pod of 2x2x4 vs two pods of 2x2x2. The
    // pod-crossing all-reduce must be slower — ethernet bandwidth,
    // microsecond latency and the transport-layer overhead all bite.
    Tick one_pod, two_pod;
    {
        SimConfig cfg;
        cfg.torus(2, 2, 4);
        Cluster cluster(cfg);
        one_pod = cluster.runCollective(CollectiveKind::AllReduce, 4 * MiB);
    }
    {
        SimConfig cfg = twoPods();
        Cluster cluster(cfg);
        two_pod = cluster.runCollective(CollectiveKind::AllReduce, 4 * MiB);
    }
    EXPECT_GT(two_pod, one_pod);
}

TEST(ScaleOut, ProtocolDelayIsCharged)
{
    // With an enormous protocol delay, even a tiny cross-pod transfer
    // takes at least that long.
    SimConfig cfg = twoPods();
    cfg.scaleoutProtocolDelay = 1'000'000;
    cfg.preferredSetSplits = 1;
    Cluster cluster(cfg);
    const Tick t =
        cluster.runCollective(CollectiveKind::AllReduce, 4 * KiB);
    EXPECT_GT(t, 1'000'000u);
}

TEST(ScaleOut, EnergyChargesTheEthernetRate)
{
    SimConfig cfg = twoPods();
    Cluster cluster(cfg);
    cluster.runCollective(CollectiveKind::AllReduce, 1 * MiB);
    const auto &e = cluster.network().energy();
    EXPECT_GT(e.scaleoutLinkPj, 0.0);
    EXPECT_GT(e.totalPj(),
              e.localLinkPj + e.packageLinkPj); // scale-out included
}

TEST(ScaleOut, EnhancedPlanKeepsLocalFirstAndPodsLast)
{
    SimConfig cfg = twoPods();
    cfg.algorithm = AlgorithmFlavor::Enhanced;
    Topology t(cfg);
    PhasePlan plan = buildPhasePlan(t, {0, 1, 2, 3},
                                    CollectiveKind::AllReduce,
                                    AlgorithmFlavor::Enhanced);
    ASSERT_EQ(plan.size(), 5u);
    EXPECT_EQ(plan.front(),
              (PhaseDesc{0, CollectiveKind::ReduceScatter}));
    EXPECT_EQ(plan[3], (PhaseDesc{3, CollectiveKind::AllReduce}));
    EXPECT_EQ(plan.back(), (PhaseDesc{0, CollectiveKind::AllGather}));
}

TEST(ScaleOut, DataParallelTrainingAcrossPods)
{
    SimConfig cfg = twoPods();
    Cluster cluster(cfg);
    WorkloadRun run(cluster, syntheticWorkload(6, 100'000, 1 * MiB),
                    TrainerOptions{.numPasses = 1});
    EXPECT_GT(run.run(), 0u);
    StatGroup stats = cluster.aggregateStats();
    EXPECT_GT(stats.counter("sent.bytes.scaleout"), 0.0);
}

TEST(ScaleOut, GarnetBackendModelsPodsToo)
{
    SimConfig cfg = twoPods();
    cfg.backend = NetworkBackend::GarnetLite;
    Cluster cluster(cfg);
    EXPECT_GT(cluster.runCollective(CollectiveKind::AllReduce, 128 * KiB),
              0u);
}

} // namespace
} // namespace astra
