/**
 * @file
 * End-to-end distributed training of ResNet-50 (the paper's Sec. V-F
 * scenario): data-parallel on a 2x4x4 hierarchical torus, minibatch 32
 * per NPU, two iterations.
 *
 * Prints the per-layer compute / communication / exposed-communication
 * profile and the headline compute-vs-exposed split, then re-runs with
 * the enhanced collective algorithm to show the system-level effect of
 * an algorithm/topology co-design choice.
 *
 *   ./examples/resnet50_training [--key=value ...]
 */

#include <cstdio>

#include "common/csv.hh"
#include "common/units.hh"
#include "workload/models.hh"
#include "workload/trainer.hh"

using namespace astra;

namespace
{

Tick
trainOnce(SimConfig cfg, bool print_layers)
{
    Cluster cluster(cfg);
    WorkloadRun run(cluster, resnet50Workload(),
                    TrainerOptions{.numPasses = 2});
    const Tick makespan = run.run();

    if (print_layers) {
        Table t;
        t.header({"layer", "compute", "comm", "exposed"});
        const auto &layers = run.spec().layers;
        const auto &stats = run.layerStats();
        for (std::size_t i = 0; i < stats.size(); ++i) {
            // Print the interesting rows: stage boundaries + ends.
            if (i != 0 && i + 1 != stats.size() && i % 10 != 0)
                continue;
            t.row()
                .cell(layers[i].name)
                .cell(std::uint64_t(stats[i].compute))
                .cell(std::uint64_t(stats[i].commTotal()))
                .cell(std::uint64_t(stats[i].exposed));
        }
        t.print();
    }
    std::printf("algorithm=%s: makespan %s, compute %.1f%%, "
                "exposed comm %.1f%%\n",
                toString(cfg.algorithm), formatTicks(makespan).c_str(),
                100 * run.computeRatio(), 100 * run.exposedRatio());
    return makespan;
}

} // namespace

int
main(int argc, char **argv)
{
    SimConfig cfg;
    cfg.torus(2, 4, 4);
    cfg.local.bandwidth = 8 * cfg.package.bandwidth;
    cfg.applyArgs(argc, argv);
    cfg.validate();

    std::printf("ResNet-50, data-parallel, minibatch 32/NPU, "
                "2 iterations on %dx%dx%d\n\n",
                cfg.localDim, cfg.horizontalDim, cfg.verticalDim);

    cfg.algorithm = AlgorithmFlavor::Baseline;
    const Tick base = trainOnce(cfg, /*print_layers=*/true);

    cfg.algorithm = AlgorithmFlavor::Enhanced;
    const Tick enh = trainOnce(cfg, /*print_layers=*/false);

    std::printf("\nenhanced vs baseline end-to-end speedup: %.3fx\n",
                static_cast<double>(base) / static_cast<double>(enh));
    return 0;
}
