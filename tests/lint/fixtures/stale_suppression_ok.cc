// Negative fixture for stale-suppression (analyzed with strict
// suppressions on): the allow below absorbs a live no-rand finding,
// so it is earning its keep and nothing fires.
#include <cstdlib>

int
roll()
{
    return rand(); // astra-lint: allow(no-rand)
}
