#include "common/config.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/units.hh"

namespace astra
{

namespace
{

std::string
lower(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

/**
 * First parse error hit by the current trySet() call. Exception-free
 * error plumbing: the leaf helpers record here and leave their target
 * untouched, trySet() reports it.
 */
thread_local std::string t_parseError;

void
parseFail(const std::string &msg)
{
    if (t_parseError.empty())
        t_parseError = msg;
}

void
setBool(bool &dst, const std::string &key, const std::string &value)
{
    const std::string v = lower(value);
    if (v == "1" || v == "true" || v == "on" || v == "yes") {
        dst = true;
    } else if (v == "0" || v == "false" || v == "off" || v == "no") {
        dst = false;
    } else {
        parseFail("parameter '" + key + "': '" + value +
                  "' is not a boolean");
    }
}

void
setInt(int &dst, const std::string &key, const std::string &value,
       int min = INT_MIN)
{
    char *end = nullptr;
    errno = 0;
    const long v = std::strtol(value.c_str(), &end, 10);
    if (value.empty() || end == value.c_str() || errno != 0 ||
        v < INT_MIN || v > INT_MAX) {
        parseFail("parameter '" + key + "': '" + value +
                  "' is not an integer");
        return;
    }
    if (*end != '\0') {
        parseFail("parameter '" + key + "': trailing junk in '" + value +
                  "'");
        return;
    }
    if (v < min) {
        parseFail("parameter '" + key + "': must be >= " +
                  std::to_string(min) + ", got " + value);
        return;
    }
    dst = static_cast<int>(v);
}

void
setTick(Tick &dst, const std::string &key, const std::string &value,
        Tick min = 0)
{
    char *end = nullptr;
    errno = 0;
    if (value.empty() || value[0] == '-') {
        parseFail("parameter '" + key + "': '" + value +
                  "' is not a non-negative integer");
        return;
    }
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || errno != 0) {
        parseFail("parameter '" + key + "': '" + value +
                  "' is not a non-negative integer");
        return;
    }
    if (*end != '\0') {
        parseFail("parameter '" + key + "': trailing junk in '" + value +
                  "'");
        return;
    }
    if (v < min) {
        parseFail("parameter '" + key + "': must be >= " +
                  std::to_string(min) + ", got " + value);
        return;
    }
    dst = v;
}

enum class Range
{
    Any,          //!< any finite value
    Positive,     //!< > 0
    UnitInterval, //!< (0, 1]
};

void
setDouble(double &dst, const std::string &key, const std::string &value,
          Range range = Range::Any)
{
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end == value.c_str() || errno != 0) {
        parseFail("parameter '" + key + "': '" + value +
                  "' is not a number");
        return;
    }
    if (*end != '\0') {
        parseFail("parameter '" + key + "': trailing junk in '" + value +
                  "'");
        return;
    }
    if (range == Range::Positive && !(v > 0)) {
        parseFail("parameter '" + key + "': must be > 0, got " + value);
        return;
    }
    if (range == Range::UnitInterval && !(v > 0 && v <= 1)) {
        parseFail("parameter '" + key + "': must be in (0, 1], got " +
                  value);
        return;
    }
    dst = v;
}

void
setBytes(Bytes &dst, const std::string &key, const std::string &value)
{
    Bytes out = 0;
    std::string err;
    if (!tryParseBytes(value, &out, &err)) {
        parseFail("parameter '" + key + "': " + err);
        return;
    }
    if (out == 0) {
        parseFail("parameter '" + key + "': must be positive");
        return;
    }
    dst = out;
}

/**
 * Enum lookups: parse into @p out on success, parseFail() and leave
 * @p out untouched otherwise. The public fatal-on-bad-input parse*
 * functions wrap these.
 */
bool
lookupTopologyKind(const std::string &s, TopologyKind *out)
{
    const std::string v = lower(s);
    if (v == "torus3d" || v == "torus" || v == "torus2d") {
        *out = TopologyKind::Torus3D;
        return true;
    }
    if (v == "alltoall" || v == "all_to_all" || v == "a2a") {
        *out = TopologyKind::AllToAll;
        return true;
    }
    parseFail("unknown topology '" + s + "'");
    return false;
}

bool
lookupAlgorithmFlavor(const std::string &s, AlgorithmFlavor *out)
{
    const std::string v = lower(s);
    if (v == "baseline") {
        *out = AlgorithmFlavor::Baseline;
        return true;
    }
    if (v == "enhanced") {
        *out = AlgorithmFlavor::Enhanced;
        return true;
    }
    parseFail("unknown algorithm '" + s + "' (baseline/enhanced)");
    return false;
}

bool
lookupSchedulingPolicy(const std::string &s, SchedulingPolicy *out)
{
    const std::string v = lower(s);
    if (v == "lifo") {
        *out = SchedulingPolicy::LIFO;
        return true;
    }
    if (v == "fifo") {
        *out = SchedulingPolicy::FIFO;
        return true;
    }
    if (v == "layer-priority" || v == "layerpriority" ||
        v == "priority") {
        *out = SchedulingPolicy::LayerPriority;
        return true;
    }
    parseFail("unknown scheduling policy '" + s +
              "' (LIFO/FIFO/layer-priority)");
    return false;
}

bool
lookupNetworkBackend(const std::string &s, NetworkBackend *out)
{
    const std::string v = lower(s);
    if (v == "analytical") {
        *out = NetworkBackend::Analytical;
        return true;
    }
    if (v == "garnet" || v == "garnet-lite" || v == "garnetlite") {
        *out = NetworkBackend::GarnetLite;
        return true;
    }
    parseFail("unknown network backend '" + s + "' (analytical/garnet)");
    return false;
}

bool
lookupPacketRouting(const std::string &s, PacketRouting *out)
{
    const std::string v = lower(s);
    if (v == "software") {
        *out = PacketRouting::Software;
        return true;
    }
    if (v == "hardware") {
        *out = PacketRouting::Hardware;
        return true;
    }
    parseFail("unknown packet routing '" + s + "' (software/hardware)");
    return false;
}

bool
lookupInjectionPolicy(const std::string &s, InjectionPolicy *out)
{
    const std::string v = lower(s);
    if (v == "normal") {
        *out = InjectionPolicy::Normal;
        return true;
    }
    if (v == "aggressive") {
        *out = InjectionPolicy::Aggressive;
        return true;
    }
    parseFail("unknown injection policy '" + s + "' (normal/aggressive)");
    return false;
}

std::string
normalizeKey(const std::string &key)
{
    std::string k = lower(key);
    std::replace(k.begin(), k.end(), '_', '-');
    return k;
}

} // namespace

namespace
{

/** Shared tail of the fatal parse* wrappers around the lookups. */
void
consumeParseError()
{
    if (t_parseError.empty())
        return;
    const std::string msg = t_parseError;
    t_parseError.clear();
    fatal("%s", msg.c_str());
}

} // namespace

TopologyKind
parseTopologyKind(const std::string &s)
{
    TopologyKind out = TopologyKind::Torus3D;
    if (!lookupTopologyKind(s, &out))
        consumeParseError();
    return out;
}

AlgorithmFlavor
parseAlgorithmFlavor(const std::string &s)
{
    AlgorithmFlavor out = AlgorithmFlavor::Baseline;
    if (!lookupAlgorithmFlavor(s, &out))
        consumeParseError();
    return out;
}

SchedulingPolicy
parseSchedulingPolicy(const std::string &s)
{
    SchedulingPolicy out = SchedulingPolicy::LIFO;
    if (!lookupSchedulingPolicy(s, &out))
        consumeParseError();
    return out;
}

NetworkBackend
parseNetworkBackend(const std::string &s)
{
    NetworkBackend out = NetworkBackend::Analytical;
    if (!lookupNetworkBackend(s, &out))
        consumeParseError();
    return out;
}

PacketRouting
parsePacketRouting(const std::string &s)
{
    PacketRouting out = PacketRouting::Software;
    if (!lookupPacketRouting(s, &out))
        consumeParseError();
    return out;
}

InjectionPolicy
parseInjectionPolicy(const std::string &s)
{
    InjectionPolicy out = InjectionPolicy::Normal;
    if (!lookupInjectionPolicy(s, &out))
        consumeParseError();
    return out;
}

const char *
toString(TopologyKind k)
{
    switch (k) {
      case TopologyKind::Torus3D: return "Torus3D";
      case TopologyKind::AllToAll: return "AllToAll";
    }
    return "?";
}

const char *
toString(AlgorithmFlavor f)
{
    switch (f) {
      case AlgorithmFlavor::Baseline: return "baseline";
      case AlgorithmFlavor::Enhanced: return "enhanced";
    }
    return "?";
}

const char *
toString(SchedulingPolicy p)
{
    switch (p) {
      case SchedulingPolicy::LIFO: return "LIFO";
      case SchedulingPolicy::FIFO: return "FIFO";
      case SchedulingPolicy::LayerPriority: return "layer-priority";
    }
    return "?";
}

const char *
toString(NetworkBackend b)
{
    switch (b) {
      case NetworkBackend::Analytical: return "analytical";
      case NetworkBackend::GarnetLite: return "garnet-lite";
    }
    return "?";
}

const char *
toString(PacketRouting r)
{
    switch (r) {
      case PacketRouting::Software: return "software";
      case PacketRouting::Hardware: return "hardware";
    }
    return "?";
}

const char *
toString(InjectionPolicy p)
{
    switch (p) {
      case InjectionPolicy::Normal: return "normal";
      case InjectionPolicy::Aggressive: return "aggressive";
    }
    return "?";
}

SimConfig &
SimConfig::torus(int m, int n, int k)
{
    topology = TopologyKind::Torus3D;
    localDim = m;
    horizontalDim = n;
    verticalDim = k;
    return *this;
}

SimConfig &
SimConfig::allToAll(int m, int packages, int switches)
{
    topology = TopologyKind::AllToAll;
    localDim = m;
    horizontalDim = packages;
    verticalDim = 1;
    globalSwitches = switches;
    return *this;
}

void
SimConfig::set(const std::string &key, const std::string &value)
{
    std::string err;
    if (!trySet(key, value, &err))
        fatal("%s", err.c_str());
}

bool
SimConfig::trySet(const std::string &key, const std::string &value,
                  std::string *err)
{
    const std::string k = normalizeKey(key);
    t_parseError.clear();

    if (k == "dnn-name") {
        dnnName = value;
    } else if (k == "trace-file") {
        traceFile = value;
    } else if (k == "net-metrics") {
        setBool(netMetrics, k, value);
    } else if (k == "net-coalesce") {
        setBool(netCoalesce, k, value);
    } else if (k == "digest") {
        setBool(digest, k, value);
    } else if (k == "num-passes") {
        setInt(numPasses, k, value, 1);
    } else if (k == "algorithm") {
        lookupAlgorithmFlavor(value, &algorithm);
    } else if (k == "topology") {
        lookupTopologyKind(value, &topology);
    } else if (k == "local-dim") {
        setInt(localDim, k, value, 1);
    } else if (k == "horizontal-dim" || k == "num-packages") {
        setInt(horizontalDim, k, value, 1);
    } else if (k == "vertical-dim" || k == "package-rows") {
        setInt(verticalDim, k, value, 1);
    } else if (k == "scheduling-policy") {
        lookupSchedulingPolicy(value, &schedulingPolicy);
    } else if (k == "global-switches") {
        setInt(globalSwitches, k, value, 1);
    } else if (k == "endpoint-delay") {
        setTick(endpointDelay, k, value);
    } else if (k == "packet-routing") {
        lookupPacketRouting(value, &packetRouting);
    } else if (k == "injection-policy") {
        lookupInjectionPolicy(value, &injectionPolicy);
    } else if (k == "preferred-set-splits") {
        setInt(preferredSetSplits, k, value, 1);
    } else if (k == "dispatch-threshold") {
        setInt(dispatchThreshold, k, value, 1);
    } else if (k == "dispatch-width") {
        setInt(dispatchWidth, k, value, 1);
    } else if (k == "lsq-concurrency") {
        setInt(lsqConcurrency, k, value, 1);
    } else if (k == "local-update-time") {
        setDouble(localUpdateTimePerKiB, k, value);
    } else if (k == "backend") {
        lookupNetworkBackend(value, &backend);
    } else if (k == "local-rings") {
        setInt(local.rings, k, value, 1);
    } else if (k == "vertical-rings" || k == "horizontal-rings" ||
               k == "package-rings") {
        // The paper exposes separate ring counts for the two package
        // dimensions; this implementation uses one inter-package link
        // class, so the counts are tied together.
        setInt(package.rings, k, value, 1);
    } else if (k == "local-link-bw") {
        setDouble(local.bandwidth, k, value, Range::Positive);
    } else if (k == "package-link-bw") {
        setDouble(package.bandwidth, k, value, Range::Positive);
    } else if (k == "local-link-latency") {
        setTick(local.latency, k, value);
    } else if (k == "package-link-latency") {
        setTick(package.latency, k, value);
    } else if (k == "local-link-efficiency") {
        setDouble(local.efficiency, k, value, Range::UnitInterval);
    } else if (k == "package-link-efficiency") {
        setDouble(package.efficiency, k, value, Range::UnitInterval);
    } else if (k == "local-packet-size") {
        setBytes(local.packetSize, k, value);
    } else if (k == "package-packet-size") {
        setBytes(package.packetSize, k, value);
    } else if (k == "flit-width") {
        setInt(flitWidthBits, k, value, 8);
    } else if (k == "router-latency") {
        setTick(routerLatency, k, value);
    } else if (k == "vcs-per-vnet") {
        setInt(vcsPerVnet, k, value, 1);
    } else if (k == "buffers-per-vc") {
        setInt(buffersPerVc, k, value, 1);
    } else if (k == "physical-topology") {
        if (lower(value) == "logical") {
            physicalDistinct = false;
        } else if (lookupTopologyKind(value, &physTopology)) {
            physicalDistinct = true;
        }
    } else if (k == "physical-local-dim") {
        setInt(physLocalDim, k, value, 1);
    } else if (k == "physical-horizontal-dim" ||
               k == "physical-num-packages") {
        setInt(physHorizontalDim, k, value, 1);
    } else if (k == "physical-vertical-dim" ||
               k == "physical-package-rows") {
        setInt(physVerticalDim, k, value, 1);
    } else if (k == "physical-global-switches") {
        setInt(physGlobalSwitches, k, value, 1);
    } else if (k == "scaleout-dim" || k == "pods") {
        setInt(scaleoutDimSize, k, value, 1);
    } else if (k == "scaleout-switches") {
        setInt(scaleoutSwitches, k, value, 1);
    } else if (k == "scaleout-link-bw") {
        setDouble(scaleout.bandwidth, k, value, Range::Positive);
    } else if (k == "scaleout-link-latency") {
        setTick(scaleout.latency, k, value);
    } else if (k == "scaleout-link-efficiency") {
        setDouble(scaleout.efficiency, k, value, Range::UnitInterval);
    } else if (k == "scaleout-packet-size") {
        setBytes(scaleout.packetSize, k, value);
    } else if (k == "scaleout-protocol-delay") {
        setTick(scaleoutProtocolDelay, k, value);
    } else if (k == "scaleout-pj-per-bit") {
        setDouble(energy.scaleoutPjPerBit, k, value);
    } else if (k == "local-pj-per-bit") {
        setDouble(energy.localPjPerBit, k, value);
    } else if (k == "package-pj-per-bit") {
        setDouble(energy.packagePjPerBit, k, value);
    } else if (k == "router-pj-per-flit") {
        setDouble(energy.routerPjPerFlit, k, value);
    } else if (k == "fault") {
        // The one intentionally repeatable key: rules accumulate. The
        // rule text is validated when the FaultPlan is built, so a bad
        // rule surfaces with every other config problem.
        faultRules.push_back(value);
    } else if (k == "fault-plan") {
        faultPlanFile = value;
    } else if (k == "fault-timeout") {
        setTick(faultTimeout, k, value, 1);
    } else if (k == "fault-max-retries") {
        setInt(faultMaxRetries, k, value, 0);
    } else if (k == "max-events") {
        setTick(maxEvents, k, value, 1);
    } else if (k == "max-sim-time") {
        setTick(maxSimTime, k, value, 1);
    } else if (k == "max-slab-bytes") {
        setBytes(maxSlabBytes, k, value);
    } else if (k == "watchdog-window") {
        setTick(watchdogWindow, k, value, 1);
    } else {
        parseFail("unknown parameter '" + key + "'");
    }

    if (!t_parseError.empty()) {
        if (err)
            *err = t_parseError;
        t_parseError.clear();
        return false;
    }
    return true;
}

void
SimConfig::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '%s'", path.c_str());
    // Collect every problem — malformed lines, unknown or duplicate
    // keys, out-of-range values — and report them all at once, so one
    // edit-run cycle fixes the whole file.
    std::vector<std::string> errors;
    std::set<std::string> seen;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        // std::getline also yields a final line that lacks the
        // trailing newline, and the trims below strip the '\r' of
        // CRLF files; both kinds of file parse identically to their
        // clean LF-terminated equivalent.
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        // Trim.
        auto b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        auto e = line.find_last_not_of(" \t\r");
        line = line.substr(b, e - b + 1);
        auto eq = line.find('=');
        if (eq == std::string::npos) {
            errors.push_back(strprintf("%s:%d: expected key=value, got "
                                       "'%s'",
                                       path.c_str(), lineno,
                                       line.c_str()));
            continue;
        }
        std::string key = line.substr(0, eq);
        std::string value = line.substr(eq + 1);
        auto trim = [](std::string &s) {
            auto b2 = s.find_first_not_of(" \t\r");
            auto e2 = s.find_last_not_of(" \t\r");
            s = (b2 == std::string::npos) ? "" : s.substr(b2, e2 - b2 + 1);
        };
        trim(key);
        trim(value);
        // "fault" accumulates by design; everything else set twice is
        // almost certainly an editing mistake.
        const std::string norm = normalizeKey(key);
        if (norm != "fault" && !seen.insert(norm).second) {
            errors.push_back(strprintf("%s:%d: duplicate key '%s'",
                                       path.c_str(), lineno,
                                       key.c_str()));
            continue;
        }
        std::string err;
        if (!trySet(key, value, &err))
            errors.push_back(strprintf("%s:%d: %s", path.c_str(), lineno,
                                       err.c_str()));
    }
    if (!errors.empty()) {
        std::string all;
        for (const std::string &err : errors)
            all += "\n  " + err;
        fatal("config file '%s': %zu error(s):%s", path.c_str(),
              errors.size(), all.c_str());
    }
}

std::map<std::string, std::string>
SimConfig::applyArgs(int argc, char **argv)
{
    std::map<std::string, std::string> leftover;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            leftover[arg] = "";
            continue;
        }
        auto eq = arg.find('=');
        if (eq == std::string::npos) {
            leftover[arg.substr(2)] = "";
            continue;
        }
        std::string key = arg.substr(2, eq - 2);
        std::string value = arg.substr(eq + 1);
        // Arguments this config does not accept are left for the
        // caller (the CLI has flags of its own); it decides whether a
        // leftover is an error.
        if (!trySet(key, value, nullptr))
            leftover[key] = value;
    }
    return leftover;
}

void
SimConfig::validate() const
{
    // ASTRA_CHECK rather than bare fatal(): a rejected configuration
    // should always print the offending values, not just the rule.
    ASTRA_CHECK(localDim >= 1 && horizontalDim >= 1 && verticalDim >= 1,
                "topology dimensions must be >= 1 (got %dx%dx%d)",
                localDim, horizontalDim, verticalDim);
    ASTRA_CHECK(numNpus() >= 2, "need at least 2 NPUs, got %d",
                numNpus());
    if (topology == TopologyKind::AllToAll && verticalDim != 1)
        fatal("AllToAll topology is local x packages (vertical-dim==1)");
    ASTRA_CHECK(topology != TopologyKind::AllToAll ||
                    globalSwitches >= 1,
                "AllToAll topology needs >= 1 global switch (got %d)",
                globalSwitches);
    ASTRA_CHECK(local.rings >= 1 && package.rings >= 1,
                "ring counts must be >= 1 (local=%d package=%d)",
                local.rings, package.rings);
    ASTRA_CHECK(local.bandwidth > 0 && package.bandwidth > 0,
                "link bandwidth must be positive (local=%g package=%g)",
                local.bandwidth, package.bandwidth);
    ASTRA_CHECK(local.efficiency > 0 && local.efficiency <= 1 &&
                    package.efficiency > 0 && package.efficiency <= 1,
                "link efficiency must be in (0, 1] (local=%g package=%g)",
                local.efficiency, package.efficiency);
    ASTRA_CHECK(local.packetSize != 0 && package.packetSize != 0,
                "packet sizes must be positive (local=%llu package=%llu)",
                static_cast<unsigned long long>(local.packetSize),
                static_cast<unsigned long long>(package.packetSize));
    ASTRA_CHECK(preferredSetSplits >= 1,
                "preferred-set-splits must be >= 1 (got %d)",
                preferredSetSplits);
    ASTRA_CHECK(dispatchThreshold >= 1 && dispatchWidth >= 1,
                "dispatcher threshold/width must be >= 1 "
                "(threshold=%d width=%d)",
                dispatchThreshold, dispatchWidth);
    ASTRA_CHECK(lsqConcurrency >= 1,
                "lsq-concurrency must be >= 1 (got %d)", lsqConcurrency);
    ASTRA_CHECK(numPasses >= 1, "num-passes must be >= 1 (got %d)",
                numPasses);
    ASTRA_CHECK(flitWidthBits >= 8,
                "flit-width must be at least one byte (got %d bits)",
                flitWidthBits);
    ASTRA_CHECK(vcsPerVnet >= 1 && buffersPerVc >= 1,
                "VC configuration must be >= 1 (vcs-per-vnet=%d "
                "buffers-per-vc=%d)",
                vcsPerVnet, buffersPerVc);
    ASTRA_CHECK(scaleoutDimSize >= 1,
                "scaleout-dim must be >= 1 (got %d)", scaleoutDimSize);
    ASTRA_CHECK(faultTimeout >= 1,
                "fault-timeout must be >= 1 cycle (got %llu)",
                static_cast<unsigned long long>(faultTimeout));
    ASTRA_CHECK(faultMaxRetries >= 0,
                "fault-max-retries must be >= 0 (got %d)",
                faultMaxRetries);
    if (scaleoutDimSize > 1) {
        ASTRA_CHECK(scaleoutSwitches >= 1,
                    "scale-out needs >= 1 switch (got %d)",
                    scaleoutSwitches);
        ASTRA_CHECK(scaleout.bandwidth > 0 && scaleout.packetSize != 0 &&
                        scaleout.efficiency > 0 &&
                        scaleout.efficiency <= 1,
                    "bad scale-out link parameters (bw=%g packet=%llu "
                    "efficiency=%g)",
                    scaleout.bandwidth,
                    static_cast<unsigned long long>(scaleout.packetSize),
                    scaleout.efficiency);
    }
    if (physicalDistinct) {
        ASTRA_CHECK(physLocalDim >= 1 && physHorizontalDim >= 1 &&
                        physVerticalDim >= 1,
                    "physical topology dimensions must be >= 1 "
                    "(got %dx%dx%d)",
                    physLocalDim, physHorizontalDim, physVerticalDim);
        if (physLocalDim * physHorizontalDim * physVerticalDim !=
            numNpus()) {
            fatal("physical topology has %d NPUs but the logical one "
                  "has %d",
                  physLocalDim * physHorizontalDim * physVerticalDim,
                  numNpus());
        }
        if (physTopology == TopologyKind::AllToAll &&
            physVerticalDim != 1)
            fatal("physical AllToAll is local x packages");
        if (physTopology == TopologyKind::AllToAll &&
            physGlobalSwitches < 1)
            fatal("physical AllToAll needs >= 1 global switch");
    }
}

SimConfig
SimConfig::physicalConfig() const
{
    if (!physicalDistinct)
        return *this;
    SimConfig phys = *this;
    phys.topology = physTopology;
    phys.localDim = physLocalDim;
    phys.horizontalDim = physHorizontalDim;
    phys.verticalDim = physVerticalDim;
    phys.globalSwitches = physGlobalSwitches;
    phys.physicalDistinct = false;
    return phys;
}

std::string
SimConfig::toString() const
{
    std::ostringstream os;
    os << "topology=" << astra::toString(topology) << " " << localDim << "x"
       << horizontalDim << "x" << verticalDim
       << " (npus=" << numNpus() << ")\n";
    os << "algorithm=" << astra::toString(algorithm)
       << " scheduling=" << astra::toString(schedulingPolicy)
       << " set-splits=" << preferredSetSplits << " dispatcher(T="
       << dispatchThreshold << ",P=" << dispatchWidth << ")\n";
    os << "backend=" << astra::toString(backend)
       << " routing=" << astra::toString(packetRouting) << "\n";
    os << strprintf("local: bw=%.1fB/cyc lat=%llu eff=%.2f pkt=%llu "
                    "rings=%d\n",
                    local.bandwidth,
                    static_cast<unsigned long long>(local.latency),
                    local.efficiency,
                    static_cast<unsigned long long>(local.packetSize),
                    local.rings);
    os << strprintf("package: bw=%.1fB/cyc lat=%llu eff=%.2f pkt=%llu "
                    "rings=%d switches=%d\n",
                    package.bandwidth,
                    static_cast<unsigned long long>(package.latency),
                    package.efficiency,
                    static_cast<unsigned long long>(package.packetSize),
                    package.rings, globalSwitches);
    // Only when supervised: the default dump stays byte-identical to
    // pre-guard builds, and the journal key (which folds this text)
    // distinguishes runs under different ceilings.
    if (maxEvents != 0 || maxSimTime != 0 || maxSlabBytes != 0 ||
        watchdogWindow != 0) {
        os << strprintf("budget: max-events=%llu max-sim-time=%llu "
                        "max-slab-bytes=%llu watchdog-window=%llu\n",
                        static_cast<unsigned long long>(maxEvents),
                        static_cast<unsigned long long>(maxSimTime),
                        static_cast<unsigned long long>(maxSlabBytes),
                        static_cast<unsigned long long>(watchdogWindow));
    }
    return os.str();
}

} // namespace astra
