file(REMOVE_RECURSE
  "CMakeFiles/multi_pod_gpt.dir/multi_pod_gpt.cpp.o"
  "CMakeFiles/multi_pod_gpt.dir/multi_pod_gpt.cpp.o.d"
  "multi_pod_gpt"
  "multi_pod_gpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_pod_gpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
