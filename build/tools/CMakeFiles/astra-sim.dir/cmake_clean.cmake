file(REMOVE_RECURSE
  "CMakeFiles/astra-sim.dir/astra_sim.cc.o"
  "CMakeFiles/astra-sim.dir/astra_sim.cc.o.d"
  "astra-sim"
  "astra-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
