#include <gtest/gtest.h>

#include "common/units.hh"
#include "core/cluster.hh"

namespace astra
{
namespace
{

/**
 * Per-stream timing invariants, checked through the inspector on every
 * completed chunk: each phase is enqueued, then started, then
 * finished, monotonically; phases follow each other; the chunk's last
 * phase ends no later than its set's completion.
 */
TEST(StreamTiming, PhaseTimestampsAreMonotone)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    cfg.algorithm = AlgorithmFlavor::Enhanced; // 4 phases
    cfg.preferredSetSplits = 8;
    Cluster cluster(cfg);

    int inspected = 0;
    for (NodeId n = 0; n < cluster.numNodes(); ++n) {
        cluster.node(n).setStreamInspector([&](const Stream &s) {
            ++inspected;
            ASSERT_EQ(s.plan().size(), 4u);
            ASSERT_NE(s.submittedAt, kTickInvalid);
            Tick prev_end = s.submittedAt;
            for (std::size_t p = 0; p < s.plan().size(); ++p) {
                ASSERT_NE(s.enqueuedAt[p], kTickInvalid);
                ASSERT_NE(s.startedAt[p], kTickInvalid);
                ASSERT_NE(s.finishedAt[p], kTickInvalid);
                EXPECT_GE(s.enqueuedAt[p], prev_end);
                EXPECT_GE(s.startedAt[p], s.enqueuedAt[p]);
                // A phase takes real time (messages + endpoint work).
                EXPECT_GT(s.finishedAt[p], s.startedAt[p]);
                prev_end = s.finishedAt[p];
            }
        });
    }
    cluster.runCollective(CollectiveKind::AllReduce, 1 * MiB);
    EXPECT_EQ(inspected, 8 * 8);
}

TEST(StreamTiming, SetCompletesAfterItsLastChunk)
{
    SimConfig cfg;
    cfg.torus(1, 4, 1);
    cfg.preferredSetSplits = 4;
    Cluster cluster(cfg);

    Tick last_finish = 0;
    cluster.node(0).setStreamInspector([&](const Stream &s) {
        last_finish =
            std::max(last_finish, s.finishedAt[s.plan().size() - 1]);
    });
    CollectiveRequest req;
    req.kind = CollectiveKind::AllReduce;
    req.bytes = 256 * KiB;
    auto handles = cluster.issueAll(req);
    cluster.run();
    EXPECT_EQ(handles[0]->completedAt, last_finish);
    EXPECT_GE(handles[0]->completedAt, handles[0]->issuedAt);
}

TEST(StreamTiming, QueueDelaysExplainStartLag)
{
    // The per-phase queue-delay samples must equal startedAt -
    // enqueuedAt summed over all chunks (the Fig. 12b bookkeeping is
    // exact, not estimated).
    SimConfig cfg;
    cfg.torus(1, 8, 1);
    cfg.preferredSetSplits = 16;
    cfg.lsqConcurrency = 1; // force visible queueing
    Cluster cluster(cfg);

    double expected = 0;
    for (NodeId n = 0; n < cluster.numNodes(); ++n) {
        cluster.node(n).setStreamInspector([&](const Stream &s) {
            expected += static_cast<double>(s.startedAt[0] -
                                            s.enqueuedAt[0]);
        });
    }
    cluster.runCollective(CollectiveKind::AllReduce, 2 * MiB);
    StatGroup stats = cluster.aggregateStats();
    EXPECT_DOUBLE_EQ(stats.accumulator("queue.P1").total(), expected);
    EXPECT_GT(expected, 0.0);
}

TEST(StreamTiming, NetworkDelaysMatchPhaseDurations)
{
    SimConfig cfg;
    cfg.torus(1, 4, 1);
    cfg.preferredSetSplits = 4;
    Cluster cluster(cfg);

    double expected = 0;
    for (NodeId n = 0; n < cluster.numNodes(); ++n) {
        cluster.node(n).setStreamInspector([&](const Stream &s) {
            expected += static_cast<double>(s.finishedAt[0] -
                                            s.startedAt[0]);
        });
    }
    cluster.runCollective(CollectiveKind::AllGather, 512 * KiB);
    StatGroup stats = cluster.aggregateStats();
    EXPECT_DOUBLE_EQ(stats.accumulator("network.P1").total(), expected);
}

} // namespace
} // namespace astra
