#include "common/trace.hh"

#include <cstdio>

#include "common/json.hh"
#include "common/logging.hh"

namespace astra
{

void
TraceRecorder::span(NodeId node, int lane, const std::string &category,
                    const std::string &name, Tick start, Tick end)
{
    if (end < start)
        panic("trace span ends (%llu) before it starts (%llu)",
              static_cast<unsigned long long>(end),
              static_cast<unsigned long long>(start));
    _events.push_back(Event{Kind::Span, node, lane, category, name, start,
                            end - start, 0.0});
    ++_spans;
}

void
TraceRecorder::counter(int pid, const std::string &name, Tick at,
                       double value)
{
    _events.push_back(
        Event{Kind::Counter, pid, 0, {}, name, at, 0, value});
    ++_counters;
}

void
TraceRecorder::processName(int pid, const std::string &name)
{
    _events.push_back(
        Event{Kind::Meta, pid, 0, "process_name", name, 0, 0, 0.0});
}

void
TraceRecorder::threadName(int pid, int tid, const std::string &name)
{
    _events.push_back(
        Event{Kind::Meta, pid, tid, "thread_name", name, 0, 0, 0.0});
}

std::string
TraceRecorder::toJson() const
{
    // Chrome Trace Event format: timestamps in microseconds; our ticks
    // are nanoseconds, so scale by 1e-3 (fractional ts is allowed).
    std::string out = "[\n";
    for (std::size_t i = 0; i < _events.size(); ++i) {
        const Event &e = _events[i];
        const char *sep = i + 1 == _events.size() ? "" : ",";
        switch (e.kind) {
          case Kind::Span:
            out += strprintf(
                "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                "\"ts\": %.3f, \"dur\": %.3f, \"pid\": %d, \"tid\": "
                "%d}%s\n",
                jsonEscape(e.name).c_str(),
                jsonEscape(e.category).c_str(),
                static_cast<double>(e.start) / 1e3,
                static_cast<double>(e.duration) / 1e3, e.node, e.lane,
                sep);
            break;
          case Kind::Counter:
            out += strprintf(
                "  {\"name\": \"%s\", \"ph\": \"C\", \"ts\": %.3f, "
                "\"pid\": %d, \"args\": {\"value\": %s}}%s\n",
                jsonEscape(e.name).c_str(),
                static_cast<double>(e.start) / 1e3, e.node,
                jsonNumber(e.value).c_str(), sep);
            break;
          case Kind::Meta:
            out += strprintf(
                "  {\"name\": \"%s\", \"ph\": \"M\", \"ts\": 0, "
                "\"pid\": %d, \"tid\": %d, \"args\": {\"name\": "
                "\"%s\"}}%s\n",
                jsonEscape(e.category).c_str(), e.node, e.lane,
                jsonEscape(e.name).c_str(), sep);
            break;
        }
    }
    out += "]\n";
    return out;
}

void
TraceRecorder::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    const std::string json = toJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
}

} // namespace astra
