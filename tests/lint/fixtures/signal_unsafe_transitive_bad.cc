// Deliberate violation: the handler itself is clean, but its callee
// chain reaches async-signal-unsafe operations.

void
logStatus(int code)
{
    printf("status %d", code);
}

void
noteInterrupt(int code)
{
    logStatus(code);
}

// astra-lint: signal-handler
extern "C" void
onSignalChained(int sig)
{
    noteInterrupt(sig); // FIRE(signal-unsafe-transitive)
}
