file(REMOVE_RECURSE
  "libastra_test_main.a"
)
