/**
 * @file
 * Token-aware C++ lexer of astra-lint (docs/static-analysis.md).
 *
 * The grep gate this tool replaces matched raw bytes, so the word
 * "float" in a comment or the string "rand()" in a log message could
 * fail CI. This lexer produces real preprocessing tokens — comments,
 * string literals (including raw strings) and character literals are
 * consumed and never reach a rule — plus the two side channels the
 * analyzer needs:
 *
 *   - per-line suppression marks parsed out of comments
 *     (`// NOLINT`, and rule-id allow-lists behind the `astra-lint:`
 *     comment tag),
 *   - file-level tags (`// astra-lint: allocator-tu`) that describe
 *     the whole translation unit rather than one line, and
 *   - the file's `#include` directives with line numbers, feeding the
 *     layering check (include_graph.hh).
 *
 * Phase 2 of translation (backslash line-splices) is performed: a
 * `\` immediately followed by a newline is transparent everywhere
 * except inside raw string literals, exactly as the standard orders
 * the phases — so `flo\<newline>at` lexes as the single token `float`
 * and a `//` comment ending in `\` swallows the next physical line.
 * Trigraphs are not handled (removed from the language in C++17), and
 * preprocessing directives other than #include are tokenized like
 * ordinary code so rules still see `#define BAD float`; their line
 * spans are recorded in `directiveSpans` so the symbol indexer
 * (symbols.hh) can tell directive tokens from declarations.
 */

#ifndef ASTRA_LINT_LEXER_HH
#define ASTRA_LINT_LEXER_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace astra::lint
{

/** Kind of a lexed token. */
enum class TokKind
{
    kIdent,  //!< identifier or keyword
    kNumber, //!< pp-number (1'000, 0x1f, 1e-3, 2.5f)
    kPunct,  //!< punctuation; `::` and `->` are single tokens
};

/** One preprocessing token with its source position (1-based). */
struct Token
{
    TokKind kind;
    std::string text;
    int line = 0;
    int col = 0;
};

/**
 * Suppression marks and concurrency annotations found in the comments
 * of one source line (the annotation grammar, docs/static-analysis.md).
 */
struct LineMarks
{
    bool nolint = false;            //!< line carries a NOLINT comment
    std::set<std::string> allowed;  //!< rule ids from an allow-list mark

    /**
     * Mutex named by a guarded-by annotation, empty when the line
     * carries none. The shared-state rule accepts the annotated
     * declaration; the unresolved-mutex rule checks the name resolves
     * in the cross-TU symbol index.
     */
    std::string guardedBy;

    /**
     * Line carries a thread-confined annotation: the declaration (or
     * the scope whose head this line is) never escapes its owning
     * thread, for the reason stated in the annotation.
     */
    bool threadConfined = false;

    /**
     * Line carries a signal-handler annotation: the function whose
     * head this line is (or precedes) runs in async-signal context,
     * so the signal-unsafe rule restricts its body to
     * async-signal-safe operations.
     */
    bool signalHandler = false;

    /**
     * Line carries a must-use annotation: the class/enum whose head
     * this line is (or precedes) is a result type that callers may
     * never silently drop — the unchecked-outcome rule flags call
     * statements that discard a value of this type.
     */
    bool mustUse = false;
};

/** One #include directive. */
struct IncludeDirective
{
    std::string target; //!< text between the delimiters
    bool angled = false; //!< <...> (system) vs "..." (project)
    int line = 0;
};

/** A malformed construct the lexer could not consume cleanly. */
struct LexError
{
    int line = 0;
    std::string what;
};

/** The lexer's complete output for one file. */
struct LexedFile
{
    std::string path;                //!< as given to lexFile()
    std::vector<Token> tokens;       //!< comment/string-free token stream
    std::map<int, LineMarks> marks;  //!< line -> suppression marks
    std::vector<IncludeDirective> includes;
    std::vector<LexError> errors;    //!< unterminated literals etc.

    /**
     * Inclusive (first, last) physical-line spans of preprocessing
     * directives other than #include (`#define`, `#pragma`, `#if`...),
     * splice-continued lines included. Directive bodies are tokenized
     * so token rules still see them, but they are not declarations —
     * the symbol indexer skips tokens inside these spans.
     */
    std::vector<std::pair<int, int>> directiveSpans;

    /**
     * File-level tags: `// astra-lint: <tag>` comments whose word after
     * the colon is not `allow(`. Unlike line marks, a tag describes the
     * whole translation unit — e.g. `allocator-tu` declares that this
     * file implements an arena/slab and may use placement new.
     */
    std::set<std::string> fileTags;
};

/** Lex @p source (contents of @p path) into tokens + side channels. */
LexedFile lexSource(const std::string &path, const std::string &source);

/**
 * Read @p path from disk and lex it. A file that cannot be read
 * produces a LexedFile whose `errors` is non-empty.
 */
LexedFile lexFile(const std::string &path);

} // namespace astra::lint

#endif // ASTRA_LINT_LEXER_HH
