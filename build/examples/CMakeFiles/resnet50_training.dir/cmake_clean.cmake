file(REMOVE_RECURSE
  "CMakeFiles/resnet50_training.dir/resnet50_training.cpp.o"
  "CMakeFiles/resnet50_training.dir/resnet50_training.cpp.o.d"
  "resnet50_training"
  "resnet50_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet50_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
