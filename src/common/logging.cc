#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace astra
{

namespace
{

// Atomic so sweep worker threads can read the flags while a test or
// driver on another thread configures them, without a data race.
std::atomic<bool> throwOnFatal{false};
std::atomic<bool> quiet{false};

} // namespace

void
setLoggingThrowOnFatal(bool throw_on_fatal)
{
    throwOnFatal = throw_on_fatal;
}

bool
loggingThrowsOnFatal()
{
    return throwOnFatal;
}

void
setLoggingQuiet(bool q)
{
    quiet = q;
}

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    return s;
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    if (throwOnFatal)
        throw FatalError("fatal: " + msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    if (throwOnFatal)
        throw FatalError("panic: " + msg);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const char *fmt, ...)
{
    if (quiet)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quiet)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace astra
