/**
 * @file
 * Chrome-trace (about://tracing / Perfetto) event recording.
 *
 * When enabled (parameter `trace-file`), the simulator records
 * complete spans — per-node compute intervals, exposed-communication
 * waits, and every chunk's per-phase execution — and writes them in
 * the Chrome Trace Event JSON format, one process lane per NPU.
 * Loading the file in Perfetto gives the classic compute/communication
 * overlap picture the paper's Figs. 15/16 aggregate.
 *
 * Besides spans the recorder supports:
 *  - counter events ("ph":"C"): time series such as per-dimension link
 *    utilization or a node's ready-queue depth, rendered by Perfetto
 *    as timeline graphs next to the spans;
 *  - metadata events ("ph":"M"): process/thread display names, so the
 *    lanes read "npu3" / "network" instead of bare pids.
 *
 * Recording is observer-only: it appends to an in-memory vector and
 * never touches the event queue, so an enabled trace cannot change a
 * single simulated tick (see DESIGN.md).
 */

#ifndef ASTRA_COMMON_TRACE_HH
#define ASTRA_COMMON_TRACE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace astra
{

/**
 * Collects complete ("ph":"X"), counter ("ph":"C") and metadata
 * ("ph":"M") trace events.
 */
class TraceRecorder
{
  public:
    /**
     * Record one span.
     *
     * @param node   NPU id (trace process lane).
     * @param lane   Thread lane within the node (0 = workload,
     *               1 + phase index for collective phases).
     * @param category  Event category ("compute", "wait", "phase").
     * @param name   Display name.
     * @param start  Span start tick.
     * @param end    Span end tick (>= start).
     */
    void span(NodeId node, int lane, const std::string &category,
              const std::string &name, Tick start, Tick end);

    /**
     * Record one counter sample: the series @p name of process @p pid
     * takes value @p value at tick @p at. Perfetto draws one graph
     * track per (pid, name).
     */
    void counter(int pid, const std::string &name, Tick at, double value);

    /** Name the process lane @p pid (metadata event). */
    void processName(int pid, const std::string &name);

    /** Name thread lane (@p pid, @p tid) (metadata event). */
    void threadName(int pid, int tid, const std::string &name);

    /** Number of recorded events (all kinds). */
    std::size_t size() const { return _events.size(); }

    /** Number of recorded "ph":"X" span events only. */
    std::size_t spanCount() const { return _spans; }

    /** Number of recorded "ph":"C" counter events only. */
    std::size_t counterCount() const { return _counters; }

    /** Serialize as a Chrome Trace Event JSON array document. */
    std::string toJson() const;

    /** Write toJson() to @p path; fatal() on I/O error. */
    void writeFile(const std::string &path) const;

    /** Drop all recorded events. */
    void
    clear()
    {
        _events.clear();
        _spans = 0;
        _counters = 0;
    }

  private:
    enum class Kind
    {
        Span,
        Counter,
        Meta,
    };

    struct Event
    {
        Kind kind;
        NodeId node; //!< pid of the event
        int lane;    //!< tid (spans, thread metadata)
        std::string category; //!< span category / metadata key
        std::string name;
        Tick start;
        Tick duration;
        double value; //!< counter value
    };

    std::vector<Event> _events;
    std::size_t _spans = 0;
    std::size_t _counters = 0;
};

} // namespace astra

#endif // ASTRA_COMMON_TRACE_HH
