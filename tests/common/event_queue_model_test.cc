/**
 * @file
 * Model-based tests for the ladder-queue event core: a reference
 * binary-heap queue with the contractual (tick, priority, seq) FIFO
 * ordering runs side by side with the real EventQueue through
 * deterministic, counter-derived schedule/cancel/runUntil sequences,
 * and both must fire the exact same event stream.
 *
 * No RNG anywhere (astra-lint bans it): every "varied" quantity is
 * derived from the operation index through an integer mixing function,
 * so a failure reproduces bit-for-bit from the test source alone.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/event_queue.hh"

namespace astra
{
namespace
{

/**
 * SplitMix64-style finalizer: a fixed bijective scramble of the
 * operation counter. Deterministic arithmetic, not a random source.
 */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Reference implementation of the EventQueue ordering contract: an
 * unordered pending list popped by exhaustive (when, priority, seq)
 * minimum search. Obviously correct, O(n) per pop — the oracle the
 * ladder queue must match event for event.
 */
class ReferenceQueue
{
  public:
    std::uint64_t
    schedule(Tick when, int priority, int tag)
    {
        EXPECT_GE(when, _now);
        _pending.push_back(Ev{when, _seq, priority, tag});
        return _seq++;
    }

    bool
    cancel(std::uint64_t id)
    {
        for (std::size_t i = 0; i < _pending.size(); ++i) {
            if (_pending[i].seq == id) {
                _pending.erase(_pending.begin() +
                               static_cast<std::ptrdiff_t>(i));
                return true;
            }
        }
        return false;
    }

    /** Fire everything with when <= until into @p fired (tags). */
    void
    runUntil(Tick until, std::vector<int> &fired)
    {
        for (;;) {
            std::size_t best = _pending.size();
            for (std::size_t i = 0; i < _pending.size(); ++i) {
                if (_pending[i].when > until)
                    continue;
                if (best == _pending.size() ||
                    firesBefore(_pending[i], _pending[best])) {
                    best = i;
                }
            }
            if (best == _pending.size())
                break;
            _now = _pending[best].when;
            fired.push_back(_pending[best].tag);
            _pending.erase(_pending.begin() +
                           static_cast<std::ptrdiff_t>(best));
        }
        _now = std::max(_now, until);
    }

    /**
     * Fire exactly the next pending event (unbounded), writing its tag
     * to @p tag. @return false when drained. Lets a driver interleave
     * re-entrant scheduling between pops, like a real callback would.
     */
    bool
    stepOne(int *tag)
    {
        std::size_t best = _pending.size();
        for (std::size_t i = 0; i < _pending.size(); ++i) {
            if (best == _pending.size() ||
                firesBefore(_pending[i], _pending[best])) {
                best = i;
            }
        }
        if (best == _pending.size())
            return false;
        _now = _pending[best].when;
        *tag = _pending[best].tag;
        _pending.erase(_pending.begin() +
                       static_cast<std::ptrdiff_t>(best));
        return true;
    }

    Tick now() const { return _now; }
    std::size_t pending() const { return _pending.size(); }

  private:
    struct Ev
    {
        Tick when;
        std::uint64_t seq;
        int priority;
        int tag;
    };

    static bool
    firesBefore(const Ev &a, const Ev &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq < b.seq;
    }

    std::vector<Ev> _pending;
    Tick _now = 0;
    std::uint64_t _seq = 0;
};

/**
 * Drive @p ops counter-derived operations through both queues with
 * tick deltas drawn from [0, spread) and compare the fired-tag streams
 * after every runUntil window and at the final drain.
 */
void
runSideBySide(int ops, std::uint64_t spread)
{
    EventQueue eq;
    ReferenceQueue ref;
    std::vector<int> eq_fired, ref_fired;
    std::vector<std::pair<EventId, std::uint64_t>> live;

    for (int i = 0; i < ops; ++i) {
        const std::uint64_t r = mix(std::uint64_t(i));
        const Tick when = eq.now() + Tick(mix(r) % spread);
        const int priority = int(mix(r + 1) % 5) - 2;
        const int tag = i;

        const EventId id = eq.schedule(
            when, [&eq_fired, tag] { eq_fired.push_back(tag); },
            priority);
        const std::uint64_t rid = ref.schedule(when, priority, tag);
        live.emplace_back(id, rid);

        // Every third op cancels a mixer-chosen earlier event; the
        // two queues must agree on whether it was still pending.
        if (i % 3 == 2 && !live.empty()) {
            const std::size_t victim = std::size_t(r % live.size());
            EXPECT_EQ(eq.cancel(live[victim].first),
                      ref.cancel(live[victim].second))
                << "op " << i;
        }
        // Every seventh op runs a window forward.
        if (i % 7 == 6) {
            const Tick until = eq.now() + Tick(mix(r + 2) % (2 * spread));
            eq.runUntil(until);
            ref.runUntil(until, ref_fired);
            ASSERT_EQ(eq_fired, ref_fired) << "after op " << i;
            EXPECT_EQ(eq.now(), ref.now());
        }
    }

    eq.run();
    ref.runUntil(kTickInvalid - 1, ref_fired);
    ASSERT_EQ(eq_fired, ref_fired);
    EXPECT_EQ(eq.pendingEvents(), ref.pending());
    eq.validateDrained();
}

TEST(EventQueueModel, DenseNearTraffic)
{
    // Deltas inside a few buckets: same-tick FIFO ties, priority
    // inversions, dirty-bucket sorts.
    runSideBySide(3000, 16);
}

TEST(EventQueueModel, WindowStraddlingTraffic)
{
    // Deltas up to 1.5 windows: every event class — bucket appends,
    // far-heap parks, migration back into the buckets, cancellations
    // of both near refs and parked FarRefs.
    runSideBySide(2000, EventQueue::kWindow + EventQueue::kWindow / 2);
}

TEST(EventQueueModel, SparseFarTraffic)
{
    // Mostly-far deltas: epoch jumps where the whole window is empty
    // and the cursor leaps to the far heap's minimum.
    runSideBySide(600, 64 * EventQueue::kWindow);
}

TEST(EventQueueModel, SameTickBucketStorm)
{
    // Bucket overflow: thousands of refs in one tick's bucket with
    // mixed priorities must still fire in exact (priority, seq) order.
    EventQueue eq;
    ReferenceQueue ref;
    std::vector<int> eq_fired, ref_fired;
    for (int i = 0; i < 5000; ++i) {
        const int priority = int(mix(std::uint64_t(i)) % 7) - 3;
        eq.schedule(
            100, [&eq_fired, i] { eq_fired.push_back(i); }, priority);
        ref.schedule(100, priority, i);
    }
    eq.run();
    ref.runUntil(100, ref_fired);
    ASSERT_EQ(eq_fired, ref_fired);
    eq.validateDrained();
}

constexpr int kCascadeDepth = 6;

Tick
successorDelta(int tag)
{
    return Tick(mix(std::uint64_t(tag)) % (2 * EventQueue::kWindow));
}

int
successorPriority(int tag)
{
    return int(mix(std::uint64_t(tag) + 7) % 3) - 1;
}

/** Re-entrant cascade driver for the real queue: each fired event
 *  schedules its successor from inside the callback. */
struct Cascade
{
    EventQueue &eq;
    std::vector<int> &fired;

    void
    fire(int tag)
    {
        fired.push_back(tag);
        if (tag % kCascadeDepth == kCascadeDepth - 1)
            return;
        eq.scheduleAfter(
            successorDelta(tag), [this, tag] { fire(tag + 1); },
            successorPriority(tag));
    }
};

TEST(EventQueueModel, ReentrantCascadesMatch)
{
    // Callbacks that schedule follow-ups while the cursor is mid-
    // bucket: successor deltas derived from the firing tag, spanning
    // same-tick appends, near appends and far spills. The reference
    // runs the identical cascade rule, one pop at a time.
    constexpr int kSeeds = 40;

    EventQueue eq;
    std::vector<int> eq_fired;
    Cascade cascade{eq, eq_fired};
    for (int s = 0; s < kSeeds; ++s) {
        const int tag = s * kCascadeDepth;
        eq.schedule(
            Tick(mix(std::uint64_t(s) + 99) % 200),
            [&cascade, tag] { cascade.fire(tag); },
            successorPriority(tag));
    }
    eq.run();

    ReferenceQueue ref;
    std::vector<int> ref_fired;
    for (int s = 0; s < kSeeds; ++s) {
        const int tag = s * kCascadeDepth;
        ref.schedule(Tick(mix(std::uint64_t(s) + 99) % 200),
                     successorPriority(tag), tag);
    }
    int tag = 0;
    while (ref.stepOne(&tag)) {
        ref_fired.push_back(tag);
        if (tag % kCascadeDepth != kCascadeDepth - 1) {
            ref.schedule(ref.now() + successorDelta(tag),
                         successorPriority(tag), tag + 1);
        }
    }
    ASSERT_EQ(eq_fired, ref_fired);
    eq.validateDrained();
}

TEST(EventQueueModel, CancelAfterFireFails)
{
    EventQueue eq;
    int fired = 0;
    const EventId id = eq.schedule(5, [&fired] { ++fired; });
    EXPECT_TRUE(eq.live(id));
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.live(id));
    EXPECT_FALSE(eq.cancel(id)) << "cancel after fire must fail";
    EXPECT_FALSE(eq.cancel(id)) << "and stay failed";

    // Cancelling yourself from inside your own callback is also a
    // miss: the handle dies the moment the event is taken to fire.
    EventId self = kEventIdInvalid;
    bool self_cancelled = true;
    self = eq.schedule(10, [&eq, &self, &self_cancelled] {
        self_cancelled = eq.cancel(self);
    });
    eq.run();
    EXPECT_FALSE(self_cancelled);
    eq.validateDrained();
}

TEST(EventQueueModel, GenerationWraparoundOfRecycledSlots)
{
    EventQueue eq;
    int fired = 0;
    const EventId first = eq.schedule(1, [&fired] { ++fired; });
    const std::uint32_t slot = EventQueue::slotOf(first);
    eq.run();
    EXPECT_EQ(fired, 1);

    // Park the freed slot at the maximum generation; the slab hands
    // the same slot back LIFO, so the next event allocates it.
    eq.debugSetFreeSlotGeneration(slot, 0xffffffffU);
    const EventId wrapped = eq.schedule(2, [&fired] { ++fired; });
    ASSERT_EQ(EventQueue::slotOf(wrapped), slot);
    EXPECT_EQ(EventQueue::genOf(wrapped), 0xffffffffU);
    EXPECT_TRUE(eq.live(wrapped));
    EXPECT_FALSE(eq.live(first));
    eq.run();
    EXPECT_EQ(fired, 2);

    // Firing at generation 2^32-1 wraps — but never through 0, which
    // is reserved so kEventIdInvalid can never match a live slot.
    const EventId after = eq.schedule(3, [&fired] { ++fired; });
    ASSERT_EQ(EventQueue::slotOf(after), slot);
    EXPECT_EQ(EventQueue::genOf(after), 1u);
    EXPECT_NE(EventQueue::genOf(after), 0u);
    EXPECT_FALSE(eq.live(wrapped));
    EXPECT_FALSE(eq.cancel(wrapped));
    EXPECT_FALSE(eq.live(kEventIdInvalid));
    EXPECT_FALSE(eq.cancel(kEventIdInvalid));
    eq.run();
    EXPECT_EQ(fired, 3);
    eq.validateDrained();
}

TEST(EventQueueModel, FarSpillMigratesInOrder)
{
    // Events parked far and events bucketed near that collide on the
    // same window index (ticks congruent modulo kWindow) must still
    // fire strictly by time.
    EventQueue eq;
    std::vector<int> fired;
    const Tick w = Tick(EventQueue::kWindow);
    const Tick ticks[] = {5,     w - 1, w,     w + 5, 2 * w + 5,
                          3 * w, 7 * w, 7 * w, 9 * w - 1};
    int tag = 0;
    for (const Tick t : ticks) {
        eq.schedule(t, [&fired, tag] { fired.push_back(tag); });
        ++tag;
    }
    EXPECT_GT(eq.farHeapSize(), 0u);
    eq.run();
    ASSERT_EQ(fired.size(), std::size(ticks));
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
    eq.validateDrained();
}

} // namespace
} // namespace astra
