/**
 * @file
 * The lightweight network interface the system layer programs against.
 *
 * The paper emphasizes that ASTRA-SIM is portable: it can sit on top of
 * any network simulator through a small interface that minimizes
 * changes on the network side (Sec. IV). This header is that
 * interface. Two backends implement it here — an analytical link-level
 * model and "garnet-lite", a packet/credit-level model standing in for
 * Garnet (see DESIGN.md for the substitution rationale).
 *
 * The system layer addresses the network with *logical* route hints
 * (dimension + channel); the backend resolves them onto physical links.
 */

#ifndef ASTRA_NET_NETWORK_API_HH
#define ASTRA_NET_NETWORK_API_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/types.hh"
#include "topo/topology.hh"

namespace astra
{

class FaultManager;
class StatGroup;
class TraceRecorder;
class ValidatorRegistry;

/**
 * Per-link usage tallies, kept as plain integers so the hot path pays
 * a few adds per grant; they are folded into StatGroup metrics only
 * when exportStats() runs (see exportLinkUsage in net/fabric.hh).
 */
struct LinkUsage
{
    Tick busy = 0;       //!< ticks the link spent serializing
    Tick queueWait = 0;  //!< ticks transfers waited for the link
    std::uint64_t bytes = 0;  //!< payload bytes carried
    std::uint64_t grants = 0; //!< transfers granted the link
};

/**
 * Logical routing hint: which topology dimension the transfer belongs
 * to and which channel (ring index for Ring dimensions, global-switch
 * index for Switch dimensions) it should use.
 */
struct RouteHint
{
    int dim = 0;
    int channel = 0;
};

/**
 * Demultiplexing tag carried by every message so the receiving node can
 * route it to the right collective algorithm instance.
 */
struct MessageTag
{
    StreamId stream = 0; //!< which chunk's collective
    std::int32_t phase = 0; //!< phase index within the multi-phase plan
    std::int32_t step = 0;  //!< algorithm step within the phase
    std::int32_t srcRank = 0; //!< sender's rank within the phase group
};

/**
 * A message in flight. `payload` carries the contribution-tracking
 * state (opaque to the network); `bytes` is what the network actually
 * models.
 */
struct Message
{
    NodeId src = kNodeInvalid;
    NodeId dst = kNodeInvalid;
    Bytes bytes = 0;
    RouteHint hint;
    MessageTag tag;
    std::shared_ptr<void> payload;
    Tick sentAt = 0; //!< stamped by the backend at send()
    /**
     * Transmission attempt: 0 for the original send, incremented by
     * the system layer's retry path each retransmission (fault layer).
     */
    std::int32_t attempt = 0;
};

/**
 * Abstract network backend.
 */
class NetworkApi
{
  public:
    /** Invoked at the destination when the full message has arrived. */
    using Receiver = std::function<void(const Message &)>;

    virtual ~NetworkApi() = default;

    /**
     * Inject @p msg at its source. Delivery is signalled through the
     * receiver registered for msg.dst. Never fails; backpressure shows
     * up as time.
     */
    virtual void send(Message msg) = 0;

    /** Register the (single) receiver callback for @p node. */
    void
    setReceiver(NodeId node, Receiver r)
    {
        if (node < 0 || std::size_t(node) >= _receivers.size())
            resizeReceivers(std::size_t(node) + 1);
        _receivers[std::size_t(node)] = std::move(r);
    }

    /**
     * Invoked when the fault layer discards a message instead of
     * delivering it: (message, link the loss happened on). The system
     * layer's timeout/retry machinery hangs off this.
     */
    using LossHandler = std::function<void(const Message &, int)>;

    /** Register the (single, cluster-wide) loss handler. */
    void setLossHandler(LossHandler h) { _lossHandler = std::move(h); }

    /**
     * Attach the fault schedule this backend must honor. Null (the
     * default) disables every fault hook: the backend's behavior is
     * bit-for-bit the no-fault simulation.
     */
    void setFaults(FaultManager *faults) { _faults = faults; }

    /** Messages the fault layer discarded (all attempts included). */
    std::uint64_t lostMessages() const { return _lostMessages; }

    /** The event queue all layers share. */
    virtual EventQueue &eventQueue() = 0;

    /** Current simulated time. */
    Tick now() { return eventQueue().now(); }

    /** Total messages delivered (for sanity checks). */
    std::uint64_t deliveredMessages() const { return _delivered; }

    /** Total bytes-times-links traversed (link load metric). */
    std::uint64_t byteHops() const { return _byteHops; }

    /** Accumulated interconnect energy (paper future work, ref [4]). */
    struct Energy
    {
        double localLinkPj = 0;    //!< intra-package wire energy
        double packageLinkPj = 0;  //!< inter-package wire energy
        double scaleoutLinkPj = 0; //!< inter-pod wire energy
        double routerPj = 0;       //!< router traversal energy

        double
        totalPj() const
        {
            return localLinkPj + packageLinkPj + scaleoutLinkPj +
                   routerPj;
        }

        double totalUj() const { return totalPj() * 1e-6; }
    };

    /** Energy consumed by all traffic so far. */
    const Energy &energy() const { return _energy; }

    /**
     * Attach a trace recorder: the backend emits throttled "ph":"C"
     * per-dimension link-utilization counters into process lane
     * @p pid. Observer-only (never schedules events). Null detaches.
     */
    void
    setTrace(TraceRecorder *trace, int pid)
    {
        _trace = trace;
        _tracePid = pid;
    }

    /**
     * Fold the backend's metrics into @p g. The base implementation
     * publishes delivery/energy totals; backends extend it with link
     * usage and backend-specific histograms.
     */
    virtual void exportStats(StatGroup &g) const;

    /**
     * Register the backend's drain-time invariant checkers with the
     * Cluster's registry (integrity layer, docs/validation.md). The
     * base implementation registers none.
     */
    virtual void registerCheckers(ValidatorRegistry &reg) { (void)reg; }

  protected:
    /** Configure the energy model (called by backend constructors). */
    void
    setEnergyParams(const EnergyParams &params, int flit_bits)
    {
        _eparams = params;
        _flitBits = flit_bits;
    }

    /** Hand a fully-arrived message to its destination's receiver. */
    void deliver(const Message &msg);

    /**
     * Record a fault-layer loss of @p msg on @p link and notify the
     * registered loss handler (if any). Backends call this instead of
     * deliver() when the plan discarded the message.
     */
    void notifyLoss(const Message &msg, int link);

    /** The attached fault schedule (null = no faults). */
    FaultManager *faults() const { return _faults; }

    /** Account @p bytes crossing one link of class @p cls. */
    void
    accountHop(Bytes bytes, LinkClass cls)
    {
        _byteHops += bytes;
        const double bits = static_cast<double>(bytes) * 8;
        switch (cls) {
          case LinkClass::Local:
            _energy.localLinkPj += bits * _eparams.localPjPerBit;
            break;
          case LinkClass::Package:
            _energy.packageLinkPj += bits * _eparams.packagePjPerBit;
            break;
          case LinkClass::ScaleOut:
            _energy.scaleoutLinkPj += bits * _eparams.scaleoutPjPerBit;
            break;
        }
        const double flits =
            _flitBits > 0 ? bits / _flitBits : 0.0;
        _energy.routerPj += flits * _eparams.routerPjPerFlit;
    }

    /**
     * Declare the counter lanes for per-dimension utilization tracing:
     * one lane per topology dimension, with @p link_counts[i] links
     * behind lane @p names[i]. Called once from backend constructors.
     */
    void setupUtilLanes(std::vector<std::string> names,
                        std::vector<int> link_counts);

    /** Accumulate @p tx busy ticks against dimension lane @p dim. */
    void
    addDimBusy(int dim, Tick tx)
    {
        if (dim >= 0 && std::size_t(dim) < _dimBusy.size())
            _dimBusy[std::size_t(dim)] += tx;
    }

    /**
     * Emit one utilization counter sample per dimension lane if at
     * least kUtilCounterInterval ticks have passed since the last
     * emission. Cheap no-op when no trace is attached. Called from the
     * backends' grant paths.
     */
    void
    maybeEmitUtilCounters(Tick now)
    {
        if (_trace && now >= _nextCounterAt)
            emitUtilCounters(now);
    }

    /** Ticks between consecutive utilization counter samples. */
    static constexpr Tick kUtilCounterInterval = 2048;

    /** The attached trace recorder (null when tracing is off). */
    TraceRecorder *trace() const { return _trace; }

    /** Trace process lane utilization counters are emitted into. */
    int tracePid() const { return _tracePid; }

  private:
    void resizeReceivers(std::size_t n) { _receivers.resize(n); }

    void emitUtilCounters(Tick now);

    std::vector<Receiver> _receivers;
    LossHandler _lossHandler;
    FaultManager *_faults = nullptr;
    std::uint64_t _lostMessages = 0;
    std::uint64_t _delivered = 0;
    std::uint64_t _byteHops = 0;
    Energy _energy;
    EnergyParams _eparams;
    int _flitBits = 0;

    TraceRecorder *_trace = nullptr;
    int _tracePid = 0;
    Tick _nextCounterAt = 0;
    std::vector<std::string> _dimNames;
    std::vector<int> _dimLinkCounts;
    std::vector<Tick> _dimBusy;     //!< cumulative busy ticks per dim
    std::vector<Tick> _dimBusyAtEmit; //!< snapshot at the last emission
    Tick _lastEmitAt = 0;
};

} // namespace astra

#endif // ASTRA_NET_NETWORK_API_HH
