// Positive fixture for shared-state: every mutable static-storage
// variable below lacks synchronization and carries no guarded-by /
// thread-confined annotation, so each declaration line fires.
#include <string>
#include <vector>

int g_counter = 0;       // FIRE(shared-state)
static long g_total;     // FIRE(shared-state)
std::string g_name;      // FIRE(shared-state)
std::vector<int> g_log;  // FIRE(shared-state)

namespace fixture
{
int g_nested = 1; // FIRE(shared-state)
} // namespace fixture

struct Registry
{
    static int s_instances; // FIRE(shared-state)
    int _perObject = 0;     // instance state: never required to annotate
};

int
bump()
{
    static int s_calls = 0; // FIRE(shared-state)
    return ++s_calls + g_counter + Registry::s_instances;
}
