// Positive fixture for thread-capture: lambdas handed to the pool
// entry points (submit / forEach / parallelFor) capture by reference
// with no thread-confined annotation in sight, so a worker may outlive
// or race the captured frame.

struct FixturePool
{
    template <class F>
    void
    submit(F f)
    {
        f();
    }
    void wait() {}
};

template <class F>
void
parallelFor(int jobs, int count, F fn)
{
    (void)jobs;
    for (int i = 0; i < count; ++i)
        fn(i);
}

int
run()
{
    int counter = 0;
    FixturePool pool;
    pool.submit([&] { ++counter; });         // FIRE(thread-capture)
    pool.submit([&counter] { ++counter; });  // FIRE(thread-capture)
    pool.wait();
    int sum = 0;
    parallelFor(2, 8, [&](int i) { sum += i; }); // FIRE(thread-capture)
    return counter + sum;
}
