#!/usr/bin/env bash
# Static-analysis gate of the simulation integrity layer
# (docs/static-analysis.md, docs/validation.md):
#
#  1. astra-lint — the in-repo token-aware analyzer (src/lint/,
#     tools/astra_lint.cc). Built on demand from this same CMake
#     project (zero external deps) and run over src/, tools/ and
#     tests/. It owns every determinism/layering rule: banned
#     constructs matched on real tokens (never comments or strings),
#     unordered-container iteration, pointer-keyed ordering, the
#     include-graph layer DAG with cycle detection, and the
#     declaration-indexed concurrency rules (shared-state,
#     thread-capture, hot-path-alloc). Stale suppressions fail the
#     gate too (--strict-suppressions is always on here). Run
#     `astra-lint --list-rules` for the full catalogue.
#  2. a grep fallback for bootstrap environments with no working
#     compiler/cmake: a strictly weaker approximation of the token
#     rules, retained only so the gate never silently vanishes.
#  3. config-key drift — every `key=` the SimConfig parser accepts
#     (src/common/config.cc) must have a row in docs/PARAMETERS.md,
#     and every documented key must still parse. Pure grep/comm, so
#     it runs in both modes above.
#  4. clang-tidy (checks in .clang-tidy) over src/, when a clang-tidy
#     binary and a compile_commands.json are available. The pinned CI
#     container ships gcc only; astra-lint is the gate that always
#     runs there.
#
#   tools/lint.sh [--json] [--fixable] [BUILD_DIR]
#
#   --json     emit astra-lint diagnostics as a JSON array on stdout
#              (status chatter goes to stderr; clang-tidy is skipped
#              so stdout stays machine-parsable)
#   --fixable  append astra-lint's per-rule fix summary
#   BUILD_DIR  tree holding the astra-lint binary and
#              compile_commands.json (default: build)
set -uo pipefail
cd "$(dirname "$0")/.."

JSON=0
FIXABLE=0
BUILD_DIR=build
for arg in "$@"; do
    case "$arg" in
        --json) JSON=1 ;;
        --fixable) FIXABLE=1 ;;
        -*) echo "lint.sh: unknown option $arg" >&2; exit 2 ;;
        *) BUILD_DIR="$arg" ;;
    esac
done

STATUS=0
LINT_PATHS=(src tools tests)

# --- 1. astra-lint ---------------------------------------------------
have_toolchain() {
    command -v cmake >/dev/null 2>&1 &&
        { command -v c++ >/dev/null 2>&1 || command -v g++ >/dev/null 2>&1 \
            || command -v clang++ >/dev/null 2>&1; }
}

if have_toolchain; then
    if [ ! -x "$BUILD_DIR/tools/astra-lint" ] ||
       [ -n "$(find src/lint tools/astra_lint.cc \
                -newer "$BUILD_DIR/tools/astra-lint" 2>/dev/null)" ]; then
        echo "lint: building astra-lint" >&2
        cmake -B "$BUILD_DIR" -S . >/dev/null &&
            cmake --build "$BUILD_DIR" --target astra-lint \
                -j "$(nproc 2>/dev/null || echo 2)" >/dev/null ||
            { echo "lint: astra-lint build FAILED" >&2; exit 1; }
    fi
    # Strict suppressions always: an inline allow() or allowlist entry
    # that matches no finding is itself a finding (stale-suppression),
    # so dead escape hatches cannot accumulate.
    LINT_ARGS=(--strict-suppressions)
    [ "$JSON" -eq 1 ] && LINT_ARGS+=(--json)
    [ "$FIXABLE" -eq 1 ] && LINT_ARGS+=(--fixable)
    if ! "$BUILD_DIR/tools/astra-lint" "${LINT_ARGS[@]+"${LINT_ARGS[@]}"}" \
            "${LINT_PATHS[@]}"; then
        STATUS=1
    fi
else
    # --- 2. grep fallback (bootstrap only: no compiler available) ----
    echo "lint: no compiler/cmake found; falling back to grep rules" \
        "(weaker: matches comments/strings too)" >&2
    run_grep_rule() {
        local pattern="$1" message="$2" allow="${3:-}"
        local hits
        hits=$(grep -rnE "$pattern" src --include='*.cc' --include='*.hh' \
            | grep -v '// NOLINT' | grep -v 'astra-lint: allow' || true)
        if [ -n "$allow" ] && [ -n "$hits" ]; then
            hits=$(echo "$hits" | grep -vE "$allow" || true)
        fi
        if [ -n "$hits" ]; then
            echo "lint: $message"
            echo "$hits" | sed 's/^/    /'
            STATUS=1
        fi
    }
    run_grep_rule '\<s?rand\(' \
        'rand()/srand() break simulation determinism'
    run_grep_rule 'std::chrono|gettimeofday\(|time\(NULL\)|time\(nullptr\)|\<clock\(\)' \
        'wall-clock time in simulation code (simulated time only)'
    run_grep_rule '\<float\>' \
        'float is too narrow for ticks/sizes (use Tick/Bytes/double)'
    run_grep_rule '= *new\>|\<new [A-Za-z_][A-Za-z0-9_:<>]*(\(|\[|\{)' \
        'naked new (own memory via containers/unique_ptr/arenas)'
    run_grep_rule '\<throw\>|\<abort\(' \
        'raw throw/abort (use ASTRA_CHECK/fatal()/panic())' \
        '^src/common/(check|logging)\.(cc|hh):'
fi

# --- 3. config-key drift ---------------------------------------------
# The authoritative key list is the chain of `k == "..."` comparisons
# in SimConfig::trySet; the user-facing list is the backticked first
# column of the tables in docs/PARAMETERS.md. Both directions drift:
# a new parameter lands without docs, or a doc row outlives a rename.
code_keys=$(grep -oE 'k == "[a-z0-9-]+"' src/common/config.cc \
    | grep -oE '"[a-z0-9-]+"' | tr -d '"' | sort -u)
doc_keys=$(grep -E '^\|' docs/PARAMETERS.md | awk -F'|' '{print $2}' \
    | grep -oE '`[a-z0-9-]+`' | tr -d '`' | sort -u)
undocumented=$(comm -23 <(echo "$code_keys") <(echo "$doc_keys"))
unparsed=$(comm -13 <(echo "$code_keys") <(echo "$doc_keys"))
if [ -n "$undocumented" ]; then
    echo "lint: config keys parsed by src/common/config.cc but missing" \
        "from docs/PARAMETERS.md:" >&2
    echo "$undocumented" | sed 's/^/    /' >&2
    STATUS=1
fi
if [ -n "$unparsed" ]; then
    echo "lint: keys documented in docs/PARAMETERS.md that" \
        "src/common/config.cc no longer parses:" >&2
    echo "$unparsed" | sed 's/^/    /' >&2
    STATUS=1
fi

# --- 4. clang-tidy ---------------------------------------------------
if [ "$JSON" -eq 0 ] && command -v clang-tidy >/dev/null 2>&1; then
    if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
        echo "lint: generating $BUILD_DIR/compile_commands.json" >&2
        cmake -B "$BUILD_DIR" -S . \
            -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    fi
    echo "lint: clang-tidy over src/" >&2
    if ! find src -name '*.cc' -print0 \
        | xargs -0 clang-tidy -p "$BUILD_DIR" --quiet; then
        STATUS=1
    fi
elif [ "$JSON" -eq 0 ]; then
    echo "lint: clang-tidy not installed; astra-lint is the gate" >&2
fi

if [ "$STATUS" -eq 0 ]; then
    echo "lint: all green" >&2
else
    echo "lint: FAILED" >&2
fi
exit "$STATUS"
