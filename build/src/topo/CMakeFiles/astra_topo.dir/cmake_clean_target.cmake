file(REMOVE_RECURSE
  "libastra_topo.a"
)
