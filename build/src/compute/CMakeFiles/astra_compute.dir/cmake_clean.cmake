file(REMOVE_RECURSE
  "CMakeFiles/astra_compute.dir/systolic.cc.o"
  "CMakeFiles/astra_compute.dir/systolic.cc.o.d"
  "libastra_compute.a"
  "libastra_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
