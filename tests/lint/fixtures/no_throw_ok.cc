// Negative fixture: catching is fine (tests install a throwing fatal
// handler); only the throw keyword as a token fires.
#include "common/logging.hh"

// saying "throw" in a comment, or "throw" in a string, is prose
static const char *kDoc = "fatal() may throw FatalError under test";

int
shield(int v)
{
    try {
        if (v < 0)
            astra::fatal("negative v=%d", v);
    } catch (const astra::FatalError &) {
        return -1;
    }
    return kDoc ? v : 0;
}
