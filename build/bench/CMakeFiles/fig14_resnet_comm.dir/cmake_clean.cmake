file(REMOVE_RECURSE
  "CMakeFiles/fig14_resnet_comm.dir/fig14_resnet_comm.cc.o"
  "CMakeFiles/fig14_resnet_comm.dir/fig14_resnet_comm.cc.o.d"
  "fig14_resnet_comm"
  "fig14_resnet_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_resnet_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
