/**
 * @file
 * astra-lint driver library (docs/static-analysis.md): file
 * collection, rule selection, the allowlist, and diagnostic rendering.
 * tools/astra_lint.cc is a thin CLI over this so the test suite can
 * drive the analyzer in-process and assert exact diagnostics.
 */

#ifndef ASTRA_LINT_ANALYZER_HH
#define ASTRA_LINT_ANALYZER_HH

#include <set>
#include <string>
#include <vector>

#include "lint/rules.hh"

namespace astra::lint
{

/** One allowlist entry: suppress @p rule where the path matches. */
struct AllowEntry
{
    std::string rule;    //!< rule id, or "*" for every rule
    std::string pattern; //!< ERE matched against the relative path
    std::string file;    //!< allowlist file the entry came from
    int line = 0;        //!< its line there (for stale reports)
};

/** Analyzer configuration. */
struct LintOptions
{
    std::string root = ".";       //!< repo root; paths are relative to it
    std::set<std::string> rules;  //!< enabled rule ids; empty = all
    std::vector<AllowEntry> allow;
    bool skipFixtureDirs = true;  //!< skip */lint/fixtures/* in dir walks

    /**
     * Worker threads for the per-file phases (lexing, token rules,
     * indexed and flow rules). The cross-TU phases (symbol index,
     * call graph, include graph, allowlist/stale passes) stay serial,
     * and diagnostics are merged and sorted identically whatever the
     * count — `--threads=8` and `--threads=1` print the same bytes.
     */
    int threads = 1;

    /**
     * Report stale suppressions: every inline `allow(<rule>)` comment
     * and every allowlist entry that absorbed zero findings in this
     * run becomes a `stale-suppression` finding, so the suppression
     * surface can only shrink. On in CI (tools/lint.sh).
     */
    bool strictSuppressions = false;
};

/**
 * Parse an allowlist file (one `<rule-id> <path-ERE>` pair per line;
 * `#` comments and blank lines ignored) into @p opts. Returns false
 * and fills @p err on malformed lines or unknown rule ids.
 */
bool loadAllowlist(const std::string &path, LintOptions &opts,
                   std::string *err);

/**
 * Expand @p paths (files or directories, relative to opts.root) into a
 * sorted list of *.cc / *.hh / *.cpp / *.hpp files. Directory walks
 * skip `lint/fixtures` subtrees (the checked-in corpus of deliberate
 * violations) unless opts.skipFixtureDirs is cleared; explicitly named
 * files are always included.
 */
std::vector<std::string> collectFiles(const LintOptions &opts,
                                      const std::vector<std::string> &paths);

/**
 * Lex and analyze @p files (relative to opts.root): token rules per
 * file (sharing unordered-container declarations between a header and
 * its sibling source), then the project-wide include-graph checks.
 * Returns diagnostics sorted by (file, line, col, rule), after
 * allowlist filtering.
 */
std::vector<Diagnostic> analyzeFiles(const LintOptions &opts,
                                     const std::vector<std::string> &files);

/** Render @p diags as `file:line:col: [rule] message` lines. */
std::string renderText(const std::vector<Diagnostic> &diags);

/** Render @p diags as a JSON array (stable field order). */
std::string renderJson(const std::vector<Diagnostic> &diags);

/**
 * Render the per-rule finding counts with each rule's suggested
 * mechanical fix (the `--fixable` summary). Empty string when clean.
 */
std::string renderFixable(const std::vector<Diagnostic> &diags);

/**
 * Render @p diags as a minimal SARIF 2.1.0 log (one run, the full
 * rule catalog in the driver, one result per diagnostic) for code-
 * scanning upload. Always a single valid JSON document.
 */
std::string renderSarif(const std::vector<Diagnostic> &diags);

/**
 * Baseline identity of @p d: file, rule and message — deliberately no
 * line/column, so editing unrelated parts of a file cannot resurrect
 * a baselined finding.
 */
std::string baselineKey(const Diagnostic &d);

/** Render @p diags as a baseline file (sorted unique keys). */
std::string renderBaselineFile(const std::vector<Diagnostic> &diags);

/**
 * Load a baseline written by renderBaselineFile() (or an empty file)
 * into @p keys. Returns false and fills @p err when unreadable.
 */
bool loadBaseline(const std::string &path, std::set<std::string> &keys,
                  std::string *err);

} // namespace astra::lint

#endif // ASTRA_LINT_ANALYZER_HH
