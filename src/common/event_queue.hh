/**
 * @file
 * The event-driven execution core of ASTRA-SIM (Sec. IV of the paper).
 *
 * ASTRA-SIM maintains its own event queue in the system layer and
 * exposes it to the workload layer to schedule events. All three layers
 * (workload / system / network) share one EventQueue instance.
 *
 * Ordering guarantees:
 *  - events fire in non-decreasing tick order;
 *  - events scheduled for the same tick fire in ascending priority;
 *  - events with equal (tick, priority) fire in insertion (FIFO) order.
 *
 * The FIFO tiebreak makes simulations bit-for-bit deterministic, which
 * the repeatability tests rely on.
 */

#ifndef ASTRA_COMMON_EVENT_QUEUE_HH
#define ASTRA_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace astra
{

/** Callback type executed when an event fires. */
using EventCallback = std::function<void()>;

/** Opaque handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * A deterministic discrete-event queue.
 */
class EventQueue
{
  public:
    /** Default priority for ordinary events. */
    static constexpr int kDefaultPriority = 0;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when  Absolute tick; must be >= now().
     * @param cb    Callback to invoke.
     * @param priority  Lower fires first within a tick.
     * @return a handle usable with cancel().
     */
    EventId schedule(Tick when, EventCallback cb,
                     int priority = kDefaultPriority);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId
    scheduleAfter(Tick delay, EventCallback cb,
                  int priority = kDefaultPriority)
    {
        return schedule(_now + delay, std::move(cb), priority);
    }

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event was pending and is now cancelled,
     *         false if it already fired or was already cancelled.
     */
    bool cancel(EventId id);

    /** Number of pending (live, non-cancelled) events. */
    std::size_t pendingEvents() const { return _live.size(); }

    /** True when no runnable events remain. */
    bool empty() const { return _live.empty(); }

    /**
     * Run events until the queue drains or @p max_events fire.
     *
     * @return the number of events executed.
     */
    std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

    /**
     * Run events with tick <= @p until (inclusive). Time advances to
     * @p until even if the queue drains earlier.
     *
     * @return the number of events executed.
     */
    std::uint64_t runUntil(Tick until);

    /** Execute exactly one event if available; @return true if one ran. */
    bool step();

    /** Total number of events executed over the queue's lifetime. */
    std::uint64_t executedEvents() const { return _executed; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq; //!< insertion order, for the FIFO tiebreak
        EventId id;
        EventCallback cb;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return seq > o.seq;
        }
    };

    /** Pop the next live entry; false if drained. */
    bool popNext(Entry &out);

    /** Drop cancelled entries off the top of the heap. */
    void skim();

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> _heap;
    std::unordered_set<EventId> _live; //!< ids scheduled and not yet
                                       //!< fired or cancelled
    Tick _now = 0;
    std::uint64_t _seq = 0;
    EventId _nextId = 1;
    std::uint64_t _executed = 0;
};

} // namespace astra

#endif // ASTRA_COMMON_EVENT_QUEUE_HH
