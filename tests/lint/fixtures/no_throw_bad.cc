// Positive fixture for no-throw: raw throws bypass ASTRA_CHECK/fatal.
#include <stdexcept>

void
explode(int v)
{
    if (v < 0)
        throw std::runtime_error("negative"); // FIRE(no-throw)
    try {
        explode(v - 1);
    } catch (...) {
        throw; // FIRE(no-throw)
    }
}
