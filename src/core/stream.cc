#include "core/stream.hh"

#include "common/logging.hh"
#include "core/sys.hh"

namespace astra
{

Stream::Stream(Sys &sys, StreamId id, CollectiveKind kind,
               Bytes chunk_bytes, PhasePlan plan, GroupInfo group,
               std::shared_ptr<CollectiveHandle> handle)
    : _sys(sys), _id(id), _kind(kind), _chunkBytes(chunk_bytes),
      _plan(std::move(plan)), _group(std::move(group)),
      _handle(std::move(handle)),
      _data(_group.size(), _group.myRank(), chunk_bytes, kind)
{
    enqueuedAt.assign(_plan.size(), kTickInvalid);
    startedAt.assign(_plan.size(), kTickInvalid);
    finishedAt.assign(_plan.size(), kTickInvalid);
}

const PhaseDesc &
Stream::phaseDesc() const
{
    if (_phase < 0 || std::size_t(_phase) >= _plan.size())
        panic("stream %llu: no active phase",
              static_cast<unsigned long long>(_id));
    return _plan[std::size_t(_phase)];
}

int
Stream::channelFor(int p) const
{
    const PhaseDesc &ph = _plan.at(std::size_t(p));
    const int channels = _sys.topology().dim(ph.dim).channels;
    // Delegated so the fault layer can re-plan rings around links that
    // are down for the whole run; `id % channels` without faults.
    return _sys.pickChannel(ph.dim, channels, _id);
}

int
Stream::groupSize() const
{
    return _sys.topology().dim(phaseDesc().dim).size;
}

int
Stream::myRank() const
{
    return _sys.topology().rankInGroup(phaseDesc().dim, _sys.id());
}

int
Stream::direction() const
{
    const PhaseDesc &ph = phaseDesc();
    const DimInfo &info = _sys.topology().dim(ph.dim);
    if (info.pattern != DimPattern::Ring)
        return +1;
    return _sys.topology().channelDirection(ph.dim, channelFor(_phase));
}

int
Stream::numChannels() const
{
    return _sys.topology().dim(phaseDesc().dim).channels;
}

void
Stream::sendToRank(int dst_rank, Bytes bytes, int step,
                   std::shared_ptr<void> payload)
{
    _sys.sendMessage(*this, dst_rank, myChannel(), bytes, step,
                     std::move(payload));
}

void
Stream::sendToRankVia(int dst_rank, int channel, Bytes bytes, int step,
                      std::shared_ptr<void> payload)
{
    _sys.sendMessage(*this, dst_rank, channel, bytes, step,
                     std::move(payload));
}

void
Stream::scheduleAfter(Tick delay, EventCallback fn)
{
    _sys.eventQueue().scheduleAfter(delay, std::move(fn));
}

Tick
Stream::endpointDelay() const
{
    return _sys.scaledEndpointDelay();
}

int
Stream::phaseCoordOfGlobalRank(int global_rank) const
{
    return _group.coordOf(global_rank, phaseDesc().dim);
}

void
Stream::phaseDone()
{
    _sys.streamPhaseDone(*this);
}

void
Stream::enterPhase(int p, Tick now)
{
    if (p != _phase + 1)
        panic("stream %llu: phase jump %d -> %d",
              static_cast<unsigned long long>(_id), _phase, p);
    _phase = p;
    _entryBytes = phaseEntryBytes(_sys.topology(), _plan, p, _chunkBytes);
    enqueuedAt[std::size_t(p)] = now;
}

void
Stream::startPhase(Tick now)
{
    if (_alg)
        panic("stream %llu: phase %d already started",
              static_cast<unsigned long long>(_id), _phase);
    startedAt[std::size_t(_phase)] = now;
    const PhaseDesc &ph = phaseDesc();
    const DimPattern pattern = _sys.topology().dim(ph.dim).pattern;
    _alg = makePhaseAlgorithm(pattern, ph.op, *this);
    _alg->start();
}

} // namespace astra
