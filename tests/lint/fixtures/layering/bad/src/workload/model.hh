// Legal downward include; this file itself is clean.
#ifndef FIXTURE_WORKLOAD_MODEL_HH
#define FIXTURE_WORKLOAD_MODEL_HH

#include "common/util.hh"

inline int
modelValue()
{
    return utilValue() + 4;
}

#endif
