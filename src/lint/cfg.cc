#include "lint/cfg.hh"

#include <set>
#include <string>

namespace astra::lint
{

namespace
{

/** Hard cap on blocks per function: a runaway-recognizer backstop. */
constexpr std::size_t kMaxBlocks = 4096;

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/**
 * Recursive-descent CFG builder over the directive-filtered token
 * positions of one function body. Statement spans are recorded as
 * original LexedFile token indices so rules can re-read their tokens.
 */
class Builder
{
  public:
    Builder(const LexedFile &file, std::size_t body_begin,
            std::size_t body_end)
        : _file(file)
    {
        std::set<int> directive_lines;
        for (const auto &[first, last] : file.directiveSpans) {
            for (int l = first; l <= last; ++l)
                directive_lines.insert(l);
        }
        for (std::size_t t = body_begin + 1;
             t < body_end && t < file.tokens.size(); ++t) {
            if (directive_lines.count(file.tokens[t].line) == 0)
                _idx.push_back(t);
        }
        _cfg.entry = newBlock();
        _cfg.exit = newBlock();
    }

    FunctionCfg
    build()
    {
        _cur = _cfg.entry;
        parseSeq(0, _idx.size(), kNone, kNone, false);
        edge(_cur, _cfg.exit, false);
        return std::move(_cfg);
    }

  private:
    const Token &tok(std::size_t p) const { return _file.tokens[_idx[p]]; }

    bool
    isP(std::size_t p, const char *text) const
    {
        return p < _idx.size() && tok(p).kind == TokKind::kPunct &&
               tok(p).text == text;
    }

    bool
    isI(std::size_t p, const char *text) const
    {
        return p < _idx.size() && tok(p).kind == TokKind::kIdent &&
               tok(p).text == text;
    }

    std::size_t
    newBlock()
    {
        if (_cfg.blocks.size() >= kMaxBlocks) {
            _cfg.wellFormed = false;
            return _cfg.exit;
        }
        _cfg.blocks.emplace_back();
        return _cfg.blocks.size() - 1;
    }

    void
    edge(std::size_t from, std::size_t to, bool back)
    {
        for (const CfgEdge &e : _cfg.blocks[from].succs) {
            if (e.to == to && e.back == back)
                return;
        }
        _cfg.blocks[from].succs.push_back(CfgEdge{to, back});
    }

    /** Append the token span [@p first, @p last] (positions) to _cur. */
    void
    appendStmt(std::size_t first, std::size_t last)
    {
        if (first > last || last >= _idx.size())
            return;
        _cfg.blocks[_cur].stmts.push_back(
            CfgStmt{_idx[first], _idx[last], false});
    }

    void
    appendScopeExit(std::size_t open, std::size_t close)
    {
        _cfg.blocks[_cur].stmts.push_back(
            CfgStmt{_idx[open], _idx[close], true});
    }

    /**
     * Position of the token matching the opener (one of `(` `[` `{`)
     * at @p open, counting all three pair kinds, or _idx.size() on
     * imbalance (which also clears wellFormed).
     */
    std::size_t
    matchForward(std::size_t open)
    {
        int paren = 0, bracket = 0, brace = 0;
        for (std::size_t p = open; p < _idx.size(); ++p) {
            if (tok(p).kind != TokKind::kPunct)
                continue;
            const std::string &t = tok(p).text;
            if (t == "(")
                ++paren;
            else if (t == ")")
                --paren;
            else if (t == "[")
                ++bracket;
            else if (t == "]")
                --bracket;
            else if (t == "{")
                ++brace;
            else if (t == "}")
                --brace;
            if (paren == 0 && bracket == 0 && brace == 0)
                return p;
            if (paren < 0 || bracket < 0 || brace < 0)
                break;
        }
        _cfg.wellFormed = false;
        return _idx.size();
    }

    void
    parseSeq(std::size_t p, std::size_t end, std::size_t break_tgt,
             std::size_t cont_tgt, bool cont_back)
    {
        while (p < end && _cfg.wellFormed) {
            std::size_t np =
                parseStatement(p, end, break_tgt, cont_tgt, cont_back);
            if (np <= p) { // recognizer failed to advance: bail
                _cfg.wellFormed = false;
                return;
            }
            p = np;
        }
    }

    /**
     * Consume one plain (non-control) statement starting at @p p:
     * scan to the `;` at delimiter depth zero, treating brace
     * initializers and lambda bodies (a `{` whose previous token can
     * end an expression) as part of the statement. Returns the
     * position after the statement.
     */
    std::size_t
    scanSimple(std::size_t p, std::size_t end)
    {
        int depth = 0;
        std::size_t q = p;
        while (q < end) {
            if (tok(q).kind != TokKind::kPunct) {
                ++q;
                continue;
            }
            const std::string &t = tok(q).text;
            if (t == "(" || t == "[") {
                ++depth;
            } else if (t == ")" || t == "]") {
                if (depth > 0)
                    --depth;
            } else if (t == ";" && depth == 0) {
                appendStmt(p, q > p ? q - 1 : p);
                return q + 1;
            } else if (t == "{") {
                if (depth > 0) {
                    ++depth;
                } else {
                    // Brace initializer / lambda body when the prior
                    // token can end an expression; otherwise this is
                    // a fresh block statement — end here.
                    bool init = false;
                    if (q > p) {
                        const Token &prev = tok(q - 1);
                        init = prev.kind != TokKind::kPunct ||
                               prev.text == ">" || prev.text == ")" ||
                               prev.text == "]" || prev.text == "=" ||
                               prev.text == "," || prev.text == "::";
                    }
                    if (!init) {
                        appendStmt(p, q - 1);
                        return q;
                    }
                    std::size_t close = matchForward(q);
                    if (close >= end)
                        return end;
                    q = close;
                }
            } else if (t == "}") {
                if (depth > 0) {
                    --depth;
                } else {
                    // Sequence bound miscount; end the statement.
                    appendStmt(p, q > p ? q - 1 : p);
                    return q + 1;
                }
            }
            ++q;
        }
        appendStmt(p, end - 1);
        return end;
    }

    std::size_t
    parseStatement(std::size_t p, std::size_t end, std::size_t break_tgt,
                   std::size_t cont_tgt, bool cont_back)
    {
        if (!_cfg.wellFormed || p >= end)
            return end;
        if (isP(p, ";"))
            return p + 1;

        if (isP(p, "{")) {
            std::size_t close = matchForward(p);
            if (close >= end)
                return end;
            parseSeq(p + 1, close, break_tgt, cont_tgt, cont_back);
            appendScopeExit(p, close);
            return close + 1;
        }

        if (isI(p, "if"))
            return parseIf(p, end, break_tgt, cont_tgt, cont_back);
        if (isI(p, "while"))
            return parseWhile(p, end);
        if (isI(p, "do"))
            return parseDo(p, end);
        if (isI(p, "for"))
            return parseFor(p, end);
        if (isI(p, "switch"))
            return parseSwitch(p, end, cont_tgt, cont_back);
        if (isI(p, "try"))
            return parseTry(p, end, break_tgt, cont_tgt, cont_back);

        if (isI(p, "return")) {
            std::size_t np = scanSimple(p, end);
            edge(_cur, _cfg.exit, false);
            _cur = newBlock(); // anything after is unreachable
            return np;
        }
        if (isI(p, "break")) {
            if (break_tgt != kNone)
                edge(_cur, break_tgt, false);
            _cur = newBlock();
            return isP(p + 1, ";") ? p + 2 : scanSimple(p, end);
        }
        if (isI(p, "continue")) {
            if (cont_tgt != kNone)
                edge(_cur, cont_tgt, cont_back);
            _cur = newBlock();
            return isP(p + 1, ";") ? p + 2 : scanSimple(p, end);
        }

        return scanSimple(p, end);
    }

    std::size_t
    parseIf(std::size_t p, std::size_t end, std::size_t break_tgt,
            std::size_t cont_tgt, bool cont_back)
    {
        std::size_t q = p + 1;
        if (isI(q, "constexpr"))
            ++q;
        if (!isP(q, "("))
            return scanSimple(p, end);
        std::size_t close = matchForward(q);
        if (close >= end)
            return end;
        appendStmt(p, close);
        std::size_t cond_blk = _cur;

        std::size_t then_blk = newBlock();
        edge(cond_blk, then_blk, false);
        _cur = then_blk;
        std::size_t np =
            parseStatement(close + 1, end, break_tgt, cont_tgt, cont_back);
        std::size_t after_then = _cur;

        std::size_t merge = kNone;
        if (isI(np, "else")) {
            std::size_t else_blk = newBlock();
            edge(cond_blk, else_blk, false);
            _cur = else_blk;
            np = parseStatement(np + 1, end, break_tgt, cont_tgt,
                                cont_back);
            std::size_t after_else = _cur;
            merge = newBlock();
            edge(after_then, merge, false);
            edge(after_else, merge, false);
        } else {
            merge = newBlock();
            edge(after_then, merge, false);
            edge(cond_blk, merge, false);
        }
        _cur = merge;
        return np;
    }

    std::size_t
    parseWhile(std::size_t p, std::size_t end)
    {
        if (!isP(p + 1, "("))
            return scanSimple(p, end);
        std::size_t close = matchForward(p + 1);
        if (close >= end)
            return end;
        std::size_t head = newBlock();
        edge(_cur, head, false);
        _cur = head;
        appendStmt(p, close);
        std::size_t body = newBlock();
        std::size_t exit_blk = newBlock();
        edge(head, body, false);
        edge(head, exit_blk, false);
        _cur = body;
        std::size_t np =
            parseStatement(close + 1, end, exit_blk, head, true);
        edge(_cur, head, true);
        _cur = exit_blk;
        return np;
    }

    std::size_t
    parseDo(std::size_t p, std::size_t end)
    {
        std::size_t body = newBlock();
        std::size_t cond_blk = newBlock();
        std::size_t exit_blk = newBlock();
        edge(_cur, body, false);
        _cur = body;
        std::size_t np =
            parseStatement(p + 1, end, exit_blk, cond_blk, false);
        edge(_cur, cond_blk, false);
        if (!isI(np, "while") || !isP(np + 1, "(")) {
            _cfg.wellFormed = false;
            _cur = exit_blk;
            return np > p ? np : end;
        }
        std::size_t close = matchForward(np + 1);
        if (close >= end)
            return end;
        _cur = cond_blk;
        appendStmt(np, close);
        edge(cond_blk, body, true);
        edge(cond_blk, exit_blk, false);
        _cur = exit_blk;
        return isP(close + 1, ";") ? close + 2 : close + 1;
    }

    std::size_t
    parseFor(std::size_t p, std::size_t end)
    {
        if (!isP(p + 1, "("))
            return scanSimple(p, end);
        std::size_t open = p + 1;
        std::size_t close = matchForward(open);
        if (close >= end)
            return end;

        // Classic `for (init; cond; inc)` vs ranged `for (decl : range)`:
        // decided by whichever of `;` / `:` appears first at depth 0.
        std::size_t semi1 = kNone, semi2 = kNone;
        bool ranged = false;
        int depth = 0;
        for (std::size_t q = open + 1; q < close; ++q) {
            if (tok(q).kind != TokKind::kPunct)
                continue;
            const std::string &t = tok(q).text;
            if (t == "(" || t == "[" || t == "{")
                ++depth;
            else if (t == ")" || t == "]" || t == "}")
                --depth;
            else if (depth == 0 && t == ":" && semi1 == kNone) {
                ranged = true;
                break;
            } else if (depth == 0 && t == ";") {
                if (semi1 == kNone)
                    semi1 = q;
                else if (semi2 == kNone)
                    semi2 = q;
            }
        }
        if (!ranged && (semi1 == kNone || semi2 == kNone))
            ranged = true; // recognizer miss: fall back to one head stmt

        if (ranged) {
            std::size_t head = newBlock();
            edge(_cur, head, false);
            _cur = head;
            appendStmt(p, close);
            std::size_t body = newBlock();
            std::size_t exit_blk = newBlock();
            edge(head, body, false);
            edge(head, exit_blk, false);
            _cur = body;
            std::size_t np =
                parseStatement(close + 1, end, exit_blk, head, true);
            edge(_cur, head, true);
            _cur = exit_blk;
            return np;
        }

        if (semi1 > open + 1)
            appendStmt(open + 1, semi1 - 1); // init runs once, pre-loop
        std::size_t head = newBlock();
        edge(_cur, head, false);
        _cur = head;
        if (semi2 > semi1 + 1)
            appendStmt(semi1 + 1, semi2 - 1); // condition
        std::size_t body = newBlock();
        std::size_t exit_blk = newBlock();
        std::size_t inc_blk = newBlock();
        edge(head, body, false);
        edge(head, exit_blk, false);
        _cur = body;
        std::size_t np =
            parseStatement(close + 1, end, exit_blk, inc_blk, false);
        edge(_cur, inc_blk, false);
        _cur = inc_blk;
        if (close > semi2 + 1)
            appendStmt(semi2 + 1, close - 1); // increment
        edge(inc_blk, head, true);
        _cur = exit_blk;
        return np;
    }

    std::size_t
    parseSwitch(std::size_t p, std::size_t end, std::size_t cont_tgt,
                bool cont_back)
    {
        if (!isP(p + 1, "("))
            return scanSimple(p, end);
        std::size_t close = matchForward(p + 1);
        if (close >= end || !isP(close + 1, "{"))
            return scanSimple(p, end);
        appendStmt(p, close);
        std::size_t head = _cur;
        std::size_t body_open = close + 1;
        std::size_t body_close = matchForward(body_open);
        if (body_close >= end)
            return end;
        std::size_t exit_blk = newBlock();

        // Statements before the first label are unreachable; park them
        // in a predecessor-less block.
        _cur = newBlock();
        std::size_t pos = body_open + 1;
        while (pos < body_close && _cfg.wellFormed) {
            bool is_case = isI(pos, "case");
            bool is_default = isI(pos, "default") && isP(pos + 1, ":");
            if (is_case || is_default) {
                std::size_t label_end = pos + 1;
                if (is_case) {
                    // The label's `:` at depth 0; `::` is one fused
                    // token and `?:` tracks its pending `?`.
                    int depth = 0, pending = 0;
                    for (; label_end < body_close; ++label_end) {
                        if (tok(label_end).kind != TokKind::kPunct)
                            continue;
                        const std::string &t = tok(label_end).text;
                        if (t == "(" || t == "[" || t == "{")
                            ++depth;
                        else if (t == ")" || t == "]" || t == "}")
                            --depth;
                        else if (t == "?" && depth == 0)
                            ++pending;
                        else if (t == ":" && depth == 0) {
                            if (pending > 0)
                                --pending;
                            else
                                break;
                        }
                    }
                    if (label_end >= body_close) {
                        _cfg.wellFormed = false;
                        break;
                    }
                }
                std::size_t case_blk = newBlock();
                edge(head, case_blk, false);
                edge(_cur, case_blk, false); // fallthrough from above
                _cur = case_blk;
                pos = label_end + 1;
                continue;
            }
            pos = parseStatement(pos, body_close, exit_blk, cont_tgt,
                                 cont_back);
        }
        edge(_cur, exit_blk, false); // fall off the last case
        edge(head, exit_blk, false); // no matching label / no default
        _cur = exit_blk;
        return body_close + 1;
    }

    std::size_t
    parseTry(std::size_t p, std::size_t end, std::size_t break_tgt,
             std::size_t cont_tgt, bool cont_back)
    {
        if (!isP(p + 1, "{"))
            return scanSimple(p, end);
        std::size_t pre_try = _cur;
        std::size_t try_blk = newBlock();
        edge(pre_try, try_blk, false);
        _cur = try_blk;
        std::size_t np =
            parseStatement(p + 1, end, break_tgt, cont_tgt, cont_back);
        std::size_t merge = newBlock();
        edge(_cur, merge, false);
        bool any_catch = false;
        while (isI(np, "catch") && isP(np + 1, "(")) {
            any_catch = true;
            std::size_t close = matchForward(np + 1);
            if (close >= end)
                return end;
            std::size_t catch_blk = newBlock();
            // The exception can fire at any try statement; the
            // handler conservatively sees the try-entry state.
            edge(pre_try, catch_blk, false);
            _cur = catch_blk;
            appendStmt(np, close);
            np = parseStatement(close + 1, end, break_tgt, cont_tgt,
                                cont_back);
            edge(_cur, merge, false);
        }
        if (!any_catch)
            _cfg.wellFormed = false;
        _cur = merge;
        return np;
    }

    const LexedFile &_file;
    std::vector<std::size_t> _idx; //!< positions -> token indices
    FunctionCfg _cfg;
    std::size_t _cur = 0;
};

} // namespace

FunctionCfg
buildFunctionCfg(const LexedFile &file, std::size_t bodyBegin,
                 std::size_t bodyEnd)
{
    return Builder(file, bodyBegin, bodyEnd).build();
}

} // namespace astra::lint
