file(REMOVE_RECURSE
  "libastra_explore.a"
)
