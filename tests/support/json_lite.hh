/**
 * @file
 * A minimal recursive-descent JSON validator for tests.
 *
 * The simulator emits JSON (trace files, metric reports) with its own
 * tiny serializer; the tests need an *independent* check that the
 * output is well-formed without pulling in a JSON library dependency.
 * This validates RFC 8259 syntax — structure, string escapes, number
 * grammar — and nothing more (no parse tree, no semantics).
 */

#ifndef ASTRA_TESTS_SUPPORT_JSON_LITE_HH
#define ASTRA_TESTS_SUPPORT_JSON_LITE_HH

#include <cctype>
#include <string>

namespace astra::testsupport
{

class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : _s(text) {}

    /** True iff the whole input is exactly one valid JSON value. */
    bool valid()
    {
        _pos = 0;
        _err.clear();
        if (!value())
            return false;
        skipWs();
        if (_pos != _s.size())
            return fail("trailing garbage");
        return true;
    }

    /** Human-readable reason of the last valid() == false. */
    const std::string &error() const { return _err; }

  private:
    bool fail(const std::string &what)
    {
        _err = what + " at offset " + std::to_string(_pos);
        return false;
    }

    void skipWs()
    {
        while (_pos < _s.size() &&
               (_s[_pos] == ' ' || _s[_pos] == '\t' || _s[_pos] == '\n' ||
                _s[_pos] == '\r')) {
            ++_pos;
        }
    }

    bool literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++_pos) {
            if (_pos >= _s.size() || _s[_pos] != *p)
                return fail(std::string("bad literal '") + word + "'");
        }
        return true;
    }

    bool value()
    {
        if (++_depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (_pos >= _s.size())
            return fail("unexpected end of input");
        bool ok;
        switch (_s[_pos]) {
          case '{': ok = object(); break;
          case '[': ok = array(); break;
          case '"': ok = string(); break;
          case 't': ok = literal("true"); break;
          case 'f': ok = literal("false"); break;
          case 'n': ok = literal("null"); break;
          default:  ok = number(); break;
        }
        --_depth;
        return ok;
    }

    bool object()
    {
        ++_pos; // '{'
        skipWs();
        if (_pos < _s.size() && _s[_pos] == '}') {
            ++_pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (_pos >= _s.size() || _s[_pos] != '"')
                return fail("expected object key");
            if (!string())
                return false;
            skipWs();
            if (_pos >= _s.size() || _s[_pos] != ':')
                return fail("expected ':'");
            ++_pos;
            if (!value())
                return false;
            skipWs();
            if (_pos < _s.size() && _s[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_pos < _s.size() && _s[_pos] == '}') {
                ++_pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool array()
    {
        ++_pos; // '['
        skipWs();
        if (_pos < _s.size() && _s[_pos] == ']') {
            ++_pos;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (_pos < _s.size() && _s[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_pos < _s.size() && _s[_pos] == ']') {
                ++_pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool string()
    {
        ++_pos; // '"'
        while (_pos < _s.size()) {
            const unsigned char c =
                static_cast<unsigned char>(_s[_pos]);
            if (c == '"') {
                ++_pos;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                ++_pos;
                if (_pos >= _s.size())
                    return fail("dangling escape");
                const char e = _s[_pos];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++_pos;
                        if (_pos >= _s.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                _s[_pos]))) {
                            return fail("bad \\u escape");
                        }
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return fail("bad escape character");
                }
            }
            ++_pos;
        }
        return fail("unterminated string");
    }

    bool number()
    {
        const std::size_t start = _pos;
        if (_pos < _s.size() && _s[_pos] == '-')
            ++_pos;
        if (_pos >= _s.size() ||
            !std::isdigit(static_cast<unsigned char>(_s[_pos]))) {
            return fail("expected value");
        }
        if (_s[_pos] == '0') {
            ++_pos;
        } else {
            while (_pos < _s.size() &&
                   std::isdigit(static_cast<unsigned char>(_s[_pos])))
                ++_pos;
        }
        if (_pos < _s.size() && _s[_pos] == '.') {
            ++_pos;
            if (_pos >= _s.size() ||
                !std::isdigit(static_cast<unsigned char>(_s[_pos])))
                return fail("bad fraction");
            while (_pos < _s.size() &&
                   std::isdigit(static_cast<unsigned char>(_s[_pos])))
                ++_pos;
        }
        if (_pos < _s.size() && (_s[_pos] == 'e' || _s[_pos] == 'E')) {
            ++_pos;
            if (_pos < _s.size() && (_s[_pos] == '+' || _s[_pos] == '-'))
                ++_pos;
            if (_pos >= _s.size() ||
                !std::isdigit(static_cast<unsigned char>(_s[_pos])))
                return fail("bad exponent");
            while (_pos < _s.size() &&
                   std::isdigit(static_cast<unsigned char>(_s[_pos])))
                ++_pos;
        }
        return _pos > start;
    }

    static constexpr int kMaxDepth = 64;

    const std::string &_s;
    std::size_t _pos = 0;
    int _depth = 0;
    std::string _err;
};

/** One-shot convenience: is @p text a single well-formed JSON value? */
inline bool
jsonValid(const std::string &text, std::string *err = nullptr)
{
    JsonValidator v(text);
    const bool ok = v.valid();
    if (err)
        *err = v.error();
    return ok;
}

} // namespace astra::testsupport

#endif // ASTRA_TESTS_SUPPORT_JSON_LITE_HH
