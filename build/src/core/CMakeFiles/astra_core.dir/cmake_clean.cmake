file(REMOVE_RECURSE
  "CMakeFiles/astra_core.dir/cluster.cc.o"
  "CMakeFiles/astra_core.dir/cluster.cc.o.d"
  "CMakeFiles/astra_core.dir/group_info.cc.o"
  "CMakeFiles/astra_core.dir/group_info.cc.o.d"
  "CMakeFiles/astra_core.dir/scheduler.cc.o"
  "CMakeFiles/astra_core.dir/scheduler.cc.o.d"
  "CMakeFiles/astra_core.dir/stream.cc.o"
  "CMakeFiles/astra_core.dir/stream.cc.o.d"
  "CMakeFiles/astra_core.dir/sys.cc.o"
  "CMakeFiles/astra_core.dir/sys.cc.o.d"
  "libastra_core.a"
  "libastra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
