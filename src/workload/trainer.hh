/**
 * @file
 * The workload layer: the distributed training loop (Sec. IV-A).
 *
 * Every NPU runs an identical synchronous-training loop over the
 * workload's layers, for num-passes iterations:
 *
 *   forward, layer 0..L-1:
 *     - wait for the layer's weight-gradient collective from the
 *       previous iteration (data/hybrid parallelism) — time spent
 *       blocked here is *exposed* communication;
 *     - apply the local weight update (update-time x size);
 *     - run the forward compute;
 *     - model/hybrid: exchange output activations (blocking).
 *   backward, layer L-1..0:
 *     - compute the input gradient (layers > 0) and exchange it
 *       (model/hybrid, blocking);
 *     - compute the weight gradient;
 *     - issue the weight-gradient collective *asynchronously* and move
 *       on — this is the compute/communication overlap the paper's
 *       scheduling discussion (Sec. III-E) revolves around.
 *
 * After the final pass the loop waits for all outstanding collectives
 * (the weights must be consistent), so trailing communication is
 * exposed — prominently the first layer's, which has no compute left
 * to hide behind.
 *
 * Communication slots map to dimension groups by parallelism:
 * weight gradients travel over the *data* dimensions, activations and
 * input gradients over the *model* dimensions. DATA uses all
 * dimensions as data dims; MODEL uses all as model dims; HYBRID
 * defaults to the paper's Transformer setup (model-parallel across
 * vertical, data-parallel across the rest) and is overridable.
 */

#ifndef ASTRA_WORKLOAD_TRAINER_HH
#define ASTRA_WORKLOAD_TRAINER_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/cluster.hh"
#include "workload/layer.hh"

namespace astra
{

/** Options of one training run. */
struct TrainerOptions
{
    int numPasses = 1;
    /**
     * Compute-power multiplier relative to the baseline accelerator
     * (Fig. 18): 2.0 halves every compute delay.
     */
    double computeScale = 1.0;
    /** Dimension groups; empty = derive from the parallelism kind. */
    std::vector<int> dataDims;
    std::vector<int> modelDims;
};

/** Per-layer timing results, totals across all passes. */
struct LayerRunStats
{
    Tick compute = 0;   //!< compute + local-update cycles
    Tick commFwd = 0;   //!< raw forward-activation comm latency
    Tick commIg = 0;    //!< raw input-gradient comm latency
    Tick commWg = 0;    //!< raw weight-gradient comm latency
    Tick exposed = 0;   //!< time the loop sat blocked on this layer

    Tick commTotal() const { return commFwd + commIg + commWg; }
};

/**
 * The training loop of one NPU.
 */
class NodeTrainer
{
  public:
    NodeTrainer(Sys &sys, const WorkloadSpec &spec,
                const TrainerOptions &opts,
                std::function<void()> on_finish);

    /** Kick off pass 0 (schedules events; run the cluster to advance). */
    void start();

    bool finished() const { return _finished; }
    Tick startedAt() const { return _startedAt; }
    Tick finishedAt() const { return _finishedAt; }

    /** Wall-clock of the whole run at this node. */
    Tick totalTime() const { return _finishedAt - _startedAt; }

    const std::vector<LayerRunStats> &layerStats() const { return _stats; }

    /** Sum of exposed comm across layers. */
    Tick totalExposed() const;

    /** Sum of compute across layers. */
    Tick totalCompute() const;

  private:
    void beginPass();
    void forwardLayer(std::size_t l);
    void forwardCompute(std::size_t l);
    void backwardLayer(std::size_t l);
    void backwardWeight(std::size_t l);
    void finishPass();
    void drainFinalHandles(std::size_t l);
    void finishRun();

    /** Dimension group for @p slot (may be empty: no communication). */
    const std::vector<int> &dimsFor(CommSlot slot) const;

    /** Issue @p slot's collective for layer @p l; null if none. */
    std::shared_ptr<CollectiveHandle> issue(std::size_t l, CommSlot slot);

    /**
     * Continue with @p cont once @p handle (nullable) completes,
     * charging blocked time to layer @p l as exposed communication and
     * accumulating the raw latency into @p raw_acc.
     */
    void waitHandle(const std::shared_ptr<CollectiveHandle> &handle,
                    std::size_t l, Tick *raw_acc,
                    std::function<void()> cont);

    /** Busy the NPU for @p cycles of compute charged to layer @p l. */
    void compute(std::size_t l, Tick cycles, EventCallback cont);

    /** Compute delay under the compute-power scale. */
    Tick scaled(Tick base) const;

    Sys &_sys;
    const WorkloadSpec &_spec;
    TrainerOptions _opts;
    std::function<void()> _onFinish;

    std::vector<int> _dataDims;
    std::vector<int> _modelDims;
    static const std::vector<int> kNoDims;

    int _pass = 0;
    bool _finished = false;
    Tick _startedAt = 0;
    Tick _finishedAt = 0;
    std::vector<LayerRunStats> _stats;
    /** Outstanding weight-gradient handles, per layer. */
    std::vector<std::shared_ptr<CollectiveHandle>> _wgHandles;
};

/**
 * A cluster-wide training run: one NodeTrainer per NPU.
 */
class WorkloadRun
{
  public:
    WorkloadRun(Cluster &cluster, WorkloadSpec spec, TrainerOptions opts);

    /** Run to completion; @return the makespan (max node total time). */
    Tick run();

    const WorkloadSpec &spec() const { return _spec; }
    const NodeTrainer &trainer(NodeId n) const
    {
        return *_trainers.at(std::size_t(n));
    }

    /** Node 0's per-layer stats (nodes are symmetric). */
    const std::vector<LayerRunStats> &layerStats() const
    {
        return _trainers.front()->layerStats();
    }

    Tick makespan() const { return _makespan; }

    /** Exposed-communication ratio: exposed / makespan (Fig. 17/18). */
    double exposedRatio() const;
    /** Compute ratio: compute / makespan. */
    double computeRatio() const;

    /**
     * Publish the run's workload-level metrics into @p g: makespan and
     * ratios, plus node 0's per-layer compute / per-slot communication
     * / exposed-communication totals under "layer<N>.<name>.*" keys.
     * Call after run().
     */
    void exportStats(StatGroup &g) const;

  private:
    Cluster &_cluster;
    WorkloadSpec _spec;
    TrainerOptions _opts;
    std::vector<std::unique_ptr<NodeTrainer>> _trainers;
    int _unfinished = 0;
    Tick _makespan = 0;
};

} // namespace astra

#endif // ASTRA_WORKLOAD_TRAINER_HH
