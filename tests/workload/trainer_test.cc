#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/units.hh"
#include "workload/models.hh"
#include "workload/trainer.hh"

namespace astra
{
namespace
{

TEST(Trainer, DataParallelOnlyCommunicatesWeightGradients)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Cluster cluster(cfg);
    WorkloadSpec spec = syntheticWorkload(4, 5000, 256 * KiB,
                                          ParallelismKind::Data);
    WorkloadRun run(cluster, spec, TrainerOptions{.numPasses = 1});
    run.run();
    for (const LayerRunStats &s : run.layerStats()) {
        EXPECT_EQ(s.commFwd, 0u);
        EXPECT_EQ(s.commIg, 0u);
        EXPECT_GT(s.commWg, 0u);
    }
}

TEST(Trainer, ModelParallelBlocksOnActivations)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Cluster cluster(cfg);
    WorkloadSpec spec = syntheticWorkload(4, 100, 256 * KiB,
                                          ParallelismKind::Model);
    WorkloadRun run(cluster, spec, TrainerOptions{.numPasses = 1});
    run.run();
    Tick exposed = 0;
    for (const LayerRunStats &s : run.layerStats()) {
        EXPECT_GT(s.commFwd, 0u);
        // Layer 0 computes no input gradient.
        EXPECT_EQ(s.commWg, 0u);
        exposed += s.exposed;
    }
    // Tiny compute + blocking comm: nearly everything is exposed.
    EXPECT_GT(static_cast<double>(exposed),
              0.5 * static_cast<double>(run.makespan()));
}

TEST(Trainer, HugeComputeHidesDataParallelComm)
{
    // Fig. 18's left edge: with slow compute, collectives overlap
    // completely (exposed < 1%).
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Cluster cluster(cfg);
    WorkloadSpec spec = syntheticWorkload(8, 2'000'000, 64 * KiB,
                                          ParallelismKind::Data);
    WorkloadRun run(cluster, spec, TrainerOptions{.numPasses = 2});
    run.run();
    EXPECT_LT(run.exposedRatio(), 0.01);
}

TEST(Trainer, ExposureGrowsWithComputePower)
{
    // Fig. 18's trend: scaling compute power up exposes communication.
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    WorkloadSpec spec = syntheticWorkload(8, 200'000, 2 * MiB,
                                          ParallelismKind::Data);
    double prev = -1;
    for (double scale : {0.5, 1.0, 4.0}) {
        Cluster cluster(cfg);
        WorkloadRun run(cluster, spec,
                        TrainerOptions{.numPasses = 2,
                                       .computeScale = scale});
        run.run();
        EXPECT_GT(run.exposedRatio(), prev) << "scale " << scale;
        prev = run.exposedRatio();
    }
}

TEST(Trainer, MorePassesMoreTime)
{
    SimConfig cfg;
    cfg.torus(1, 4, 1);
    WorkloadSpec spec = syntheticWorkload(3, 10'000, 256 * KiB,
                                          ParallelismKind::Data);
    Tick t1, t3;
    {
        Cluster cluster(cfg);
        WorkloadRun run(cluster, spec, TrainerOptions{.numPasses = 1});
        t1 = run.run();
    }
    {
        Cluster cluster(cfg);
        WorkloadRun run(cluster, spec, TrainerOptions{.numPasses = 3});
        t3 = run.run();
    }
    EXPECT_GT(t3, 2 * t1);
    EXPECT_LT(t3, 4 * t1);
}

TEST(Trainer, FirstLayerWeightGradientIsExposed)
{
    // Sec. III-E: the first layer's weight-gradient communication has
    // no compute left to hide behind, so it shows up as exposed time
    // while later layers overlap.
    SimConfig cfg;
    cfg.torus(1, 4, 1);
    Cluster cluster(cfg);
    WorkloadSpec spec = syntheticWorkload(6, 50'000, 4 * MiB,
                                          ParallelismKind::Data);
    WorkloadRun run(cluster, spec, TrainerOptions{.numPasses = 1});
    run.run();
    const auto &stats = run.layerStats();
    EXPECT_GT(stats[0].exposed, 0u);
    // The first layer dominates the exposure of the deepest layers.
    EXPECT_GT(stats[0].exposed, stats[5].exposed);
}

TEST(Trainer, ComputeScaleShortensComputeTime)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    WorkloadSpec spec = syntheticWorkload(2, 100'000, 1 * KiB,
                                          ParallelismKind::Data);
    Tick slow, fast;
    {
        Cluster cluster(cfg);
        WorkloadRun run(cluster, spec,
                        TrainerOptions{.numPasses = 1,
                                       .computeScale = 1.0});
        slow = run.run();
    }
    {
        Cluster cluster(cfg);
        WorkloadRun run(cluster, spec,
                        TrainerOptions{.numPasses = 1,
                                       .computeScale = 2.0});
        fast = run.run();
    }
    EXPECT_LT(fast, slow);
}

TEST(Trainer, HybridUsesBothGroups)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Cluster cluster(cfg);
    WorkloadSpec spec = syntheticWorkload(3, 10'000, 128 * KiB,
                                          ParallelismKind::Hybrid);
    WorkloadRun run(cluster, spec, TrainerOptions{.numPasses = 1});
    run.run();
    StatGroup stats = cluster.aggregateStats();
    // wg all-reduce over local+horizontal, activations over vertical.
    EXPECT_GT(stats.counter("sent.bytes.vertical"), 0.0);
    EXPECT_GT(stats.counter("sent.bytes.local"), 0.0);
    EXPECT_GT(stats.counter("sent.bytes.horizontal"), 0.0);
}

TEST(Trainer, ExplicitDimOverridesWin)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Cluster cluster(cfg);
    WorkloadSpec spec = syntheticWorkload(2, 1000, 64 * KiB,
                                          ParallelismKind::Hybrid);
    TrainerOptions opts;
    opts.numPasses = 1;
    opts.dataDims = {0};
    opts.modelDims = {1};
    WorkloadRun run(cluster, spec, opts);
    run.run();
    StatGroup stats = cluster.aggregateStats();
    EXPECT_EQ(stats.counter("sent.bytes.vertical"), 0.0);
    EXPECT_GT(stats.counter("sent.bytes.local"), 0.0);
    EXPECT_GT(stats.counter("sent.bytes.horizontal"), 0.0);
}

TEST(Trainer, AllNodesFinishTogetherOnSymmetricWorkloads)
{
    SimConfig cfg;
    cfg.torus(2, 2, 2);
    Cluster cluster(cfg);
    WorkloadSpec spec = syntheticWorkload(3, 10'000, 128 * KiB,
                                          ParallelismKind::Data);
    WorkloadRun run(cluster, spec, TrainerOptions{.numPasses = 1});
    run.run();
    const Tick t0 = run.trainer(0).totalTime();
    for (NodeId n = 1; n < cluster.numNodes(); ++n)
        EXPECT_EQ(run.trainer(n).totalTime(), t0);
}

TEST(Trainer, RejectsBadOptions)
{
    SimConfig cfg;
    cfg.torus(1, 2, 1);
    Cluster cluster(cfg);
    WorkloadSpec spec = syntheticWorkload(1, 100, 64);
    EXPECT_THROW(WorkloadRun(cluster, spec,
                             TrainerOptions{.numPasses = 0}),
                 FatalError);
    EXPECT_THROW(WorkloadRun(cluster, spec,
                             TrainerOptions{.numPasses = 1,
                                            .computeScale = 0.0}),
                 FatalError);
    WorkloadSpec empty;
    EXPECT_THROW(WorkloadRun(cluster, empty, TrainerOptions{}),
                 FatalError);
}

} // namespace
} // namespace astra
