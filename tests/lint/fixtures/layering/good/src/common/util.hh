// Bottom layer: includes nothing above it.
#ifndef FIXTURE_GOOD_COMMON_UTIL_HH
#define FIXTURE_GOOD_COMMON_UTIL_HH
inline int utilValue() { return 1; }
#endif
