// Negative fixture: membership-only use of unordered containers is
// fine (that is why they exist); ordered containers may be iterated;
// a deliberate sorted drain carries the allow annotation.
#include <algorithm>
#include <map>
#include <unordered_set>
#include <vector>

int
tally(const std::map<int, int> &ordered)
{
    std::unordered_set<int> seen; // membership-only: never iterated
    int sum = 0;
    for (const auto &kv : ordered) { // ordered: deterministic
        if (seen.insert(kv.first).second)
            sum += kv.second;
    }
    // Sorted drain: the one sanctioned way to iterate, made explicit.
    std::vector<int> keys(seen.begin(), seen.end()); // astra-lint: allow(unordered-iter)
    std::sort(keys.begin(), keys.end());
    for (int k : keys)
        sum += k;
    return sum + static_cast<int>(seen.count(0));
}
