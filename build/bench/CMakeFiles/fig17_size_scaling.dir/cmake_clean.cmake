file(REMOVE_RECURSE
  "CMakeFiles/fig17_size_scaling.dir/fig17_size_scaling.cc.o"
  "CMakeFiles/fig17_size_scaling.dir/fig17_size_scaling.cc.o.d"
  "fig17_size_scaling"
  "fig17_size_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_size_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
