// Positive fixture for unresolved-mutex: the guarded-by annotations
// below name mutexes that are declared nowhere in the analyzed file
// set — a typo, or a lock that was deleted while its annotations
// stayed behind. The annotated variables themselves do not fire
// shared-state (the annotation is present, just dangling).
#include <mutex>

std::mutex g_present;

int g_guarded = 0; // astra-lint: guarded-by(g_missing) FIRE(unresolved-mutex)

// An orphan annotation (attached to no declaration) is still checked:
// astra-lint: guarded-by(g_typo_lock) FIRE(unresolved-mutex)

int g_fine = 1; // astra-lint: guarded-by(g_present)

int
use()
{
    std::lock_guard<std::mutex> guard(g_present);
    return g_guarded + g_fine;
}
