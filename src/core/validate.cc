/**
 * @file
 * System-layer drain-time validators (integrity layer,
 * docs/validation.md). Lives in its own translation unit so the
 * accounting checks stay out of the scheduler hot path while keeping
 * access to its private queues.
 */

#include "common/check.hh"
#include "core/scheduler.hh"
#include "core/sys.hh"

namespace astra
{

void
Scheduler::validateDrained() const
{
    const int npu = int(_sys.id());
    ASTRA_CHECK(_ready.empty(),
                "scheduler on npu %d drained with %zu chunk(s) still "
                "in the ready queue",
                npu, _ready.size());
    ASTRA_CHECK(_phase0Active == 0,
                "scheduler on npu %d drained with %d chunk(s) still "
                "active in phase 0",
                npu, _phase0Active);
    ASTRA_CHECK(_inFlight == 0,
                "scheduler on npu %d drained with %d chunk(s) still "
                "in flight",
                npu, _inFlight);
    for (const auto &[key, q] : _lsqs) {
        ASTRA_CHECK(q.waiting.empty() && q.active == 0,
                    "LSQ (phase %d dim %d channel %d) on npu %d "
                    "drained with %zu waiting and %d active chunk(s)",
                    key.phase, key.dim, key.channel, npu,
                    q.waiting.size(), q.active);
    }
}

} // namespace astra
