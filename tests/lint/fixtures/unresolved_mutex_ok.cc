// Negative fixture for unresolved-mutex: every guarded-by annotation
// names a mutex the symbol index finds in the analyzed file set.
#include <mutex>

std::mutex g_lock;
static std::recursive_mutex g_reentrant;

int g_count = 0;   // astra-lint: guarded-by(g_lock)
long g_bytes = 0;  // astra-lint: guarded-by(g_reentrant)

int
use()
{
    std::lock_guard<std::mutex> guard(g_lock);
    std::lock_guard<std::recursive_mutex> inner(g_reentrant);
    return g_count + static_cast<int>(g_bytes);
}
