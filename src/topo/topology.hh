/**
 * @file
 * Logical topology of the hierarchical scale-up fabric (Sec. III-C).
 *
 * Two families are modelled:
 *
 *  - Hierarchical Torus  M x N x K  — dimension 0 is the *local*
 *    (intra-package) dimension built from unidirectional high-bandwidth
 *    rings; dimension 1 is *horizontal* and dimension 2 is *vertical*,
 *    both built from bidirectional inter-package rings (each
 *    bidirectional ring is used as two unidirectional rings).
 *
 *  - Hierarchical AllToAll  M x P — dimension 0 is the local ring
 *    dimension; dimension 1 is the *alltoall* dimension where every
 *    NPU connects to every global switch, and NPUs with equal local
 *    rank across the P packages form a fully-connected group.
 *
 * The system layer works purely against this *logical* view; the
 * network backends translate (dimension, channel) hints into physical
 * links. The paper notes logical and physical topologies may differ;
 * here — as in ASTRA-SIM's default configuration — the mapping is
 * one-to-one.
 */

#ifndef ASTRA_TOPO_TOPOLOGY_HH
#define ASTRA_TOPO_TOPOLOGY_HH

#include <array>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace astra
{

/** Which link technology a dimension is built from (Table IV classes,
 *  plus the scale-out class of the paper's future-work extension). */
enum class LinkClass
{
    Local,    //!< intra-package NAM links
    Package,  //!< inter-package NAP links
    ScaleOut, //!< inter-pod (rack-to-rack) ethernet-class links
};

/** Communication pattern available inside a dimension. */
enum class DimPattern
{
    Ring,   //!< neighbours along a (uni/bi-directional) ring
    Switch, //!< all-to-all connectivity through global switches
};

/**
 * Static description of one topology dimension.
 */
struct DimInfo
{
    std::string name; //!< "local" / "horizontal" / "vertical" / "alltoall"
    int size;         //!< number of NPUs along the dimension
    LinkClass linkClass;
    DimPattern pattern;
    /**
     * Independent channels through the dimension: unidirectional rings
     * for Ring dimensions, global switches for Switch dimensions. The
     * scheduler creates one logical scheduling queue per channel
     * (Sec. IV-B).
     */
    int channels;
};

/** A coordinate in (local, horizontal, vertical, pod) space. */
struct Coord
{
    std::array<int, 4> c{0, 0, 0, 0};

    int &operator[](int d) { return c[static_cast<std::size_t>(d)]; }
    int operator[](int d) const { return c[static_cast<std::size_t>(d)]; }
    bool operator==(const Coord &) const = default;
};

/**
 * The logical topology built from a SimConfig.
 */
class Topology
{
  public:
    /** Dimension indices; collective phase order is defined elsewhere. */
    static constexpr int kDimLocal = 0;
    static constexpr int kDimHorizontal = 1;
    static constexpr int kDimVertical = 2;
    /** In the AllToAll family, dimension 1 is the switch dimension. */
    static constexpr int kDimAllToAll = 1;

    /**
     * Index of the scale-out (inter-pod) dimension, or -1 when the
     * platform has a single pod. The scale-out fabric is the paper's
     * stated future work ("extend it to a scale-out fabric, modeling
     * the transport layer, e.g., Ethernet"): pods of the scale-up
     * topology are joined through ethernet-class switches.
     */
    int scaleoutDim() const { return _scaleoutDim; }

    explicit Topology(const SimConfig &cfg);

    /** Topology family. */
    TopologyKind kind() const { return _kind; }

    /** Total number of NPUs. */
    int numNodes() const { return _numNodes; }

    /** Number of dimensions (3 for Torus3D, 2 for AllToAll). */
    int numDims() const { return static_cast<int>(_dims.size()); }

    /** Static info for dimension @p d. */
    const DimInfo &dim(int d) const { return _dims.at(std::size_t(d)); }

    /** Coordinates of @p node. */
    Coord coordOf(NodeId node) const;

    /** Node at coordinates @p c. */
    NodeId nodeAt(const Coord &c) const;

    /**
     * The ordered group of nodes that vary along dimension @p d while
     * sharing @p member's other coordinates. Element i has coordinate
     * i along @p d; @p member is at index rankInGroup(d, member).
     */
    std::vector<NodeId> group(int d, NodeId member) const;

    /** @p node's rank inside its dimension-@p d group (== coordinate). */
    int rankInGroup(int d, NodeId node) const;

    /**
     * Direction of ring channel @p ch in dimension @p d: +1 (ascending
     * coordinates) or -1. Local rings are unidirectional (+1); package
     * rings alternate direction (bidirectional rings split in two).
     * Only valid for Ring dimensions.
     */
    int channelDirection(int d, int ch) const;

    /**
     * Successor of @p node on ring channel @p ch of dimension @p d
     * (one hop in the channel's direction, wrapping).
     */
    NodeId ringNext(int d, int ch, NodeId node) const;

    /**
     * Hop distance from @p node to the group member at coordinate
     * @p dst_rank, travelling in channel @p ch's direction.
     */
    int ringDistance(int d, int ch, NodeId node, int dst_rank) const;

    /** Number of global switches of switch dimension @p d. */
    int numSwitches(int d) const;

    /**
     * Canonical traversal order of the dimensions (Sec. III-D): local
     * first, then vertical, then horizontal (then the alltoall
     * dimension for the AllToAll family). Multi-phase plans follow
     * this order, and collective groups number their participants in
     * the same mixed-radix order — multi-phase all-gather relies on
     * the two orders agreeing to keep gathered ranges contiguous.
     */
    int phaseOrderKey(int dim) const;

    /** One-line description, e.g. "Torus3D 4x4x4 (64 NPUs)". */
    std::string toString() const;

  private:
    TopologyKind _kind;
    std::array<int, 4> _size{1, 1, 1, 1}; //!< extent per dim index
    std::vector<DimInfo> _dims;
    int _numNodes;
    int _scaleoutDim = -1;

    void checkDim(int d) const;
};

} // namespace astra

#endif // ASTRA_TOPO_TOPOLOGY_HH
