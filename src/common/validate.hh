/**
 * @file
 * The Validator registry and determinism-digest primitives of the
 * simulation integrity layer (docs/validation.md).
 *
 * Subsystems register named drain-time checkers with the registry
 * owned by their Cluster; `Cluster::run()` invokes them once the event
 * queue drains, whenever the runtime validation level is at least
 * `basic`. A checker inspects its subsystem's final state and raises an
 * ASTRA_CHECK diagnostic on any broken invariant — packets that never
 * retired, credits still held, a scheduler queue that is not empty.
 *
 * Fnv1aDigest is the determinism auditor's accumulator: the event
 * queue folds every retired event's (tick, priority, sequence) into a
 * 64-bit FNV-1a hash, so two runs are bit-for-bit identical iff their
 * digests match. This is what `--digest` prints and what the
 * serial-vs-parallel sweep audit compares.
 */

#ifndef ASTRA_COMMON_VALIDATE_HH
#define ASTRA_COMMON_VALIDATE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace astra
{

/**
 * A named collection of drain-time invariant checkers.
 *
 * Checkers run in registration order (deterministic output) and report
 * violations by raising an ASTRA_CHECK diagnostic themselves — a
 * checker that returns normally passed.
 */
class ValidatorRegistry
{
  public:
    using Checker = std::function<void()>;

    /** Register @p fn under @p name (shown in diagnostics/tests). */
    void
    add(std::string name, Checker fn)
    {
        _checkers.push_back(Entry{std::move(name), std::move(fn)});
    }

    /** Run every checker, in registration order. */
    void
    runAll() const
    {
        for (const Entry &e : _checkers)
            e.fn();
    }

    /** Number of registered checkers. */
    std::size_t size() const { return _checkers.size(); }

    /** Registered checker names, in registration order. */
    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        out.reserve(_checkers.size());
        for (const Entry &e : _checkers)
            out.push_back(e.name);
        return out;
    }

  private:
    struct Entry
    {
        std::string name;
        Checker fn;
    };

    std::vector<Entry> _checkers;
};

/**
 * 64-bit FNV-1a accumulator over the retired-event stream.
 */
class Fnv1aDigest
{
  public:
    static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ULL;
    static constexpr std::uint64_t kPrime = 1099511628211ULL;

    /** Fold the 8 bytes of @p v into the hash, low byte first. */
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            _h ^= (v >> (8 * i)) & 0xffU;
            _h *= kPrime;
        }
    }

    /** The accumulated hash. */
    std::uint64_t value() const { return _h; }

  private:
    std::uint64_t _h = kOffsetBasis;
};

namespace validate
{

/**
 * Event-queue ordering checker: firing (when, prio, seq) immediately
 * after (last_when, last_prio, last_seq) must respect non-decreasing
 * tick order, ascending priority within a tick, and FIFO (ascending
 * sequence) within equal (tick, priority). Raises an ASTRA_CHECK
 * diagnostic on violation.
 */
void eventOrder(Tick last_when, int last_prio, std::uint64_t last_seq,
                Tick when, int prio, std::uint64_t seq);

} // namespace validate

} // namespace astra

#endif // ASTRA_COMMON_VALIDATE_HH
