#include <gtest/gtest.h>

#include "collective/phase_plan.hh"
#include "common/logging.hh"
#include "common/units.hh"

namespace astra
{
namespace
{

Topology
torus(int m, int n, int k)
{
    SimConfig cfg;
    cfg.torus(m, n, k);
    return Topology(cfg);
}

std::vector<int>
allDims(const Topology &t)
{
    std::vector<int> d;
    for (int i = 0; i < t.numDims(); ++i)
        d.push_back(i);
    return d;
}

TEST(PhasePlan, BaselineAllReduceIsPerDimension)
{
    Topology t = torus(4, 4, 4);
    PhasePlan plan = buildPhasePlan(t, allDims(t), CollectiveKind::AllReduce,
                                    AlgorithmFlavor::Baseline);
    ASSERT_EQ(plan.size(), 3u);
    // Local first, then vertical, then horizontal (Sec. III-D).
    EXPECT_EQ(plan[0], (PhaseDesc{0, CollectiveKind::AllReduce}));
    EXPECT_EQ(plan[1], (PhaseDesc{2, CollectiveKind::AllReduce}));
    EXPECT_EQ(plan[2], (PhaseDesc{1, CollectiveKind::AllReduce}));
}

TEST(PhasePlan, EnhancedAllReduceIsFourPhase)
{
    Topology t = torus(4, 4, 4);
    PhasePlan plan = buildPhasePlan(t, allDims(t), CollectiveKind::AllReduce,
                                    AlgorithmFlavor::Enhanced);
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan[0], (PhaseDesc{0, CollectiveKind::ReduceScatter}));
    EXPECT_EQ(plan[1], (PhaseDesc{2, CollectiveKind::AllReduce}));
    EXPECT_EQ(plan[2], (PhaseDesc{1, CollectiveKind::AllReduce}));
    EXPECT_EQ(plan[3], (PhaseDesc{0, CollectiveKind::AllGather}));
}

TEST(PhasePlan, EnhancedDegeneratesWithoutLocalDimension)
{
    Topology t = torus(1, 8, 8);
    PhasePlan plan = buildPhasePlan(t, allDims(t), CollectiveKind::AllReduce,
                                    AlgorithmFlavor::Enhanced);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].op, CollectiveKind::AllReduce);
    EXPECT_EQ(plan[1].op, CollectiveKind::AllReduce);
}

TEST(PhasePlan, SizeOneDimensionsAreSkipped)
{
    Topology t = torus(1, 64, 1);
    PhasePlan plan = buildPhasePlan(t, allDims(t), CollectiveKind::AllReduce,
                                    AlgorithmFlavor::Baseline);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].dim, 1);
}

TEST(PhasePlan, AllToAllVisitsEveryDimension)
{
    Topology t = torus(2, 2, 2);
    PhasePlan plan = buildPhasePlan(t, allDims(t), CollectiveKind::AllToAll,
                                    AlgorithmFlavor::Baseline);
    ASSERT_EQ(plan.size(), 3u);
    for (const PhaseDesc &p : plan)
        EXPECT_EQ(p.op, CollectiveKind::AllToAll);
}

TEST(PhasePlan, AllToAllTopologyEnhanced)
{
    SimConfig cfg;
    cfg.allToAll(2, 8, 2);
    Topology t(cfg);
    PhasePlan plan = buildPhasePlan(t, {0, 1}, CollectiveKind::AllReduce,
                                    AlgorithmFlavor::Enhanced);
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan[0], (PhaseDesc{0, CollectiveKind::ReduceScatter}));
    EXPECT_EQ(plan[1], (PhaseDesc{1, CollectiveKind::AllReduce}));
    EXPECT_EQ(plan[2], (PhaseDesc{0, CollectiveKind::AllGather}));
}

TEST(PhasePlan, SubgroupPlansUseOnlyGivenDims)
{
    Topology t = torus(2, 2, 2);
    PhasePlan plan = buildPhasePlan(t, {2}, CollectiveKind::AllGather,
                                    AlgorithmFlavor::Baseline);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].dim, 2);
}

TEST(PhasePlan, EmptyGroupGivesEmptyPlan)
{
    Topology t = torus(1, 2, 1);
    PhasePlan plan = buildPhasePlan(t, {0}, CollectiveKind::AllReduce,
                                    AlgorithmFlavor::Baseline);
    EXPECT_TRUE(plan.empty());
}

TEST(PhasePlan, RejectsBadDims)
{
    Topology t = torus(2, 2, 2);
    EXPECT_THROW(buildPhasePlan(t, {5}, CollectiveKind::AllReduce,
                                AlgorithmFlavor::Baseline),
                 FatalError);
    EXPECT_THROW(buildPhasePlan(t, {0, 0}, CollectiveKind::AllReduce,
                                AlgorithmFlavor::Baseline),
                 FatalError);
    EXPECT_THROW(buildPhasePlan(t, {0}, CollectiveKind::None,
                                AlgorithmFlavor::Baseline),
                 FatalError);
}

TEST(PhasePlan, EntryBytesFollowScatterGatherScaling)
{
    Topology t = torus(4, 4, 4);
    PhasePlan plan = buildPhasePlan(t, allDims(t), CollectiveKind::AllReduce,
                                    AlgorithmFlavor::Enhanced);
    const Bytes chunk = 64 * KiB;
    EXPECT_EQ(phaseEntryBytes(t, plan, 0, chunk), chunk);
    EXPECT_EQ(phaseEntryBytes(t, plan, 1, chunk), chunk / 4); // after RS
    EXPECT_EQ(phaseEntryBytes(t, plan, 2, chunk), chunk / 4);
    EXPECT_EQ(phaseEntryBytes(t, plan, 3, chunk), chunk / 4);
}

TEST(PhasePlan, SendVolumesMatchThePapersFig10Arithmetic)
{
    // Sec. V-B: baseline all-reduce sends 126/64 N on 1x64x1,
    // 28/8 N on 1x8x8 and 36/8 N on 4x4x4.
    const Bytes n = 64 * KiB;
    auto total_volume = [&](int m, int h, int v) {
        Topology t = torus(m, h, v);
        PhasePlan plan = buildPhasePlan(t, allDims(t),
                                        CollectiveKind::AllReduce,
                                        AlgorithmFlavor::Baseline);
        double vol = 0;
        for (int d = 0; d < t.numDims(); ++d)
            vol += planSendVolume(t, plan, n, d);
        return vol / static_cast<double>(n);
    };
    EXPECT_NEAR(total_volume(1, 64, 1), 126.0 / 64, 1e-9);
    EXPECT_NEAR(total_volume(1, 8, 8), 28.0 / 8, 1e-9);
    EXPECT_NEAR(total_volume(2, 8, 4), 4.25, 1e-9);
    EXPECT_NEAR(total_volume(4, 4, 4), 36.0 / 8, 1e-9);
}

TEST(PhasePlan, EnhancedCutsInterPackageVolumeByLocalSize)
{
    // Fig. 11: the 4-phase algorithm reduces inter-package volume 4x
    // at local dimension size 4.
    Topology t = torus(4, 4, 4);
    const Bytes n = 1 * MiB;
    PhasePlan base = buildPhasePlan(t, allDims(t), CollectiveKind::AllReduce,
                                    AlgorithmFlavor::Baseline);
    PhasePlan enh = buildPhasePlan(t, allDims(t), CollectiveKind::AllReduce,
                                   AlgorithmFlavor::Enhanced);
    const double base_pkg = planSendVolume(t, base, n, 1) +
                            planSendVolume(t, base, n, 2);
    const double enh_pkg = planSendVolume(t, enh, n, 1) +
                           planSendVolume(t, enh, n, 2);
    EXPECT_NEAR(base_pkg / enh_pkg, 4.0, 1e-9);
}

TEST(PhasePlan, ToStringReadsAsPipeline)
{
    Topology t = torus(4, 4, 4);
    PhasePlan plan = buildPhasePlan(t, allDims(t), CollectiveKind::AllReduce,
                                    AlgorithmFlavor::Enhanced);
    EXPECT_EQ(toString(t, plan),
              "RS(local) -> AR(vertical) -> AR(horizontal) -> AG(local)");
}

} // namespace
} // namespace astra
