// Positive fixture for hot-path-alloc: this TU opts in via the
// hot-path file tag but is NOT an allocator TU, so every heap
// allocation fires. A naked `new` additionally trips no-naked-new —
// the rules compose, they do not shadow each other.
//
// astra-lint: hot-path
#include <memory>

int
pump()
{
    auto owned = std::make_unique<int>(7);  // FIRE(hot-path-alloc)
    auto shared = std::make_shared<int>(9); // FIRE(hot-path-alloc)
    int *raw = new int(3); // FIRE(hot-path-alloc) FIRE(no-naked-new)
    int out = *owned + *shared + *raw;
    delete raw;
    return out;
}
