#include "workload/trainer.hh"

#include <cmath>

#include "common/logging.hh"

namespace astra
{

const std::vector<int> NodeTrainer::kNoDims;

NodeTrainer::NodeTrainer(Sys &sys, const WorkloadSpec &spec,
                         const TrainerOptions &opts,
                         std::function<void()> on_finish)
    : _sys(sys), _spec(spec), _opts(opts), _onFinish(std::move(on_finish))
{
    if (_spec.layers.empty())
        fatal("workload has no layers");
    if (_opts.numPasses < 1)
        fatal("num-passes must be >= 1");
    if (_opts.computeScale <= 0)
        fatal("compute scale must be positive");

    const Topology &topo = _sys.topology();
    auto all_dims = [&topo] {
        std::vector<int> d;
        for (int i = 0; i < topo.numDims(); ++i)
            d.push_back(i);
        return d;
    };

    _dataDims = _opts.dataDims;
    _modelDims = _opts.modelDims;
    switch (_spec.parallelism) {
      case ParallelismKind::Data:
        if (_dataDims.empty())
            _dataDims = all_dims();
        _modelDims.clear();
        break;
      case ParallelismKind::Model:
        if (_modelDims.empty())
            _modelDims = all_dims();
        _dataDims.clear();
        break;
      case ParallelismKind::Hybrid:
        if (_dataDims.empty() && _modelDims.empty()) {
            // Defaults: on a torus, the paper's Transformer setup
            // (Sec. V-E) — model-parallel across the vertical
            // dimension, data-parallel across the rest. On the
            // AllToAll family, model-parallel within the package
            // (local rings), data-parallel across packages.
            const int model_dim =
                topo.kind() == TopologyKind::Torus3D
                    ? Topology::kDimVertical
                    : Topology::kDimLocal;
            for (int d : all_dims()) {
                if (d == model_dim)
                    _modelDims.push_back(d);
                else
                    _dataDims.push_back(d);
            }
        }
        break;
    }

    _stats.assign(_spec.layers.size(), LayerRunStats{});
    _wgHandles.assign(_spec.layers.size(), nullptr);
}

const std::vector<int> &
NodeTrainer::dimsFor(CommSlot slot) const
{
    switch (slot) {
      case CommSlot::WeightGrad:
        return _dataDims;
      case CommSlot::Forward:
      case CommSlot::InputGrad:
        return _modelDims;
    }
    return kNoDims;
}

Tick
NodeTrainer::scaled(Tick base) const
{
    // Straggler nodes (fault layer) multiply every compute delay; the
    // factor is 1.0 on a fault-free run, leaving `base / computeScale`
    // bit-for-bit unchanged.
    const double slow = _sys.computeSlowdown();
    return static_cast<Tick>(std::ceil(
        static_cast<double>(base) * slow / _opts.computeScale));
}

void
NodeTrainer::start()
{
    _startedAt = _sys.now();
    beginPass();
}

void
NodeTrainer::beginPass()
{
    forwardLayer(0);
}

std::shared_ptr<CollectiveHandle>
NodeTrainer::issue(std::size_t l, CommSlot slot)
{
    const LayerSpec &layer = _spec.layers[l];
    if (layer.comm(slot) == CollectiveKind::None)
        return nullptr;
    const std::vector<int> &dims = dimsFor(slot);
    if (dims.empty()) {
        // Declared in the workload file but the parallelism strategy
        // gives it no group to run over (e.g. activations under pure
        // data parallelism) — nothing to exchange.
        return nullptr;
    }
    CollectiveRequest req;
    req.kind = layer.comm(slot);
    req.bytes = layer.commSize(slot);
    req.dims = dims;
    req.layer = static_cast<LayerId>(l);
    return _sys.issueCollective(req);
}

void
NodeTrainer::waitHandle(const std::shared_ptr<CollectiveHandle> &handle,
                        std::size_t l, Tick *raw_acc,
                        std::function<void()> cont)
{
    if (!handle) {
        cont();
        return;
    }
    if (handle->done()) {
        if (raw_acc)
            *raw_acc += handle->duration();
        cont();
        return;
    }
    const Tick wait_start = _sys.now();
    handle->onComplete = [this, handle, l, raw_acc,
                          cont = std::move(cont), wait_start] {
        const Tick blocked = _sys.now() - wait_start;
        _stats[l].exposed += blocked;
        _sys.stats().inc("exposed.cycles",
                         static_cast<double>(blocked));
        _sys.stats().record("exposed.wait",
                            static_cast<double>(blocked));
        if (TraceRecorder *tr = _sys.trace()) {
            tr->span(_sys.id(), 0, "wait",
                     "exposed: " + _spec.layers[l].name, wait_start,
                     _sys.now());
        }
        if (raw_acc)
            *raw_acc += handle->duration();
        cont();
    };
}

void
NodeTrainer::compute(std::size_t l, Tick cycles, EventCallback cont)
{
    _stats[l].compute += cycles;
    if (cycles == 0) {
        cont();
        return;
    }
    if (TraceRecorder *tr = _sys.trace()) {
        tr->span(_sys.id(), 0, "compute", _spec.layers[l].name,
                 _sys.now(), _sys.now() + cycles);
    }
    _sys.eventQueue().scheduleAfter(cycles, std::move(cont));
}

void
NodeTrainer::forwardLayer(std::size_t l)
{
    if (l == _spec.layers.size()) {
        backwardLayer(_spec.layers.size() - 1);
        return;
    }
    // Weights must be up to date before this layer's forward pass: the
    // previous iteration's weight-gradient collective gates us here.
    auto handle = std::move(_wgHandles[l]);
    _wgHandles[l] = nullptr;
    const bool had_comm = handle != nullptr;
    waitHandle(handle, l, &_stats[l].commWg, [this, l, had_comm] {
        const LayerSpec &layer = _spec.layers[l];
        const Tick update =
            had_comm ? layer.updateDelay(CommSlot::WeightGrad) : 0;
        compute(l, update + scaled(layer.fwdCompute),
                [this, l] { forwardCompute(l); });
    });
}

void
NodeTrainer::forwardCompute(std::size_t l)
{
    // Output activations of this layer may need to be exchanged before
    // the next layer can start (model/hybrid parallelism) — a strict,
    // blocking dependency (Sec. V-E).
    auto handle = issue(l, CommSlot::Forward);
    const bool had_comm = handle != nullptr;
    waitHandle(handle, l, &_stats[l].commFwd, [this, l, had_comm] {
        const Tick update =
            had_comm ? _spec.layers[l].updateDelay(CommSlot::Forward) : 0;
        compute(l, update, [this, l] { forwardLayer(l + 1); });
    });
}

void
NodeTrainer::backwardLayer(std::size_t l)
{
    const LayerSpec &layer = _spec.layers[l];
    // Input (error) gradients: needed by layer l-1's backward step;
    // computed and exchanged for every layer but the first.
    if (l == 0) {
        backwardWeight(l);
        return;
    }
    compute(l, scaled(layer.igCompute), [this, l] {
        auto handle = issue(l, CommSlot::InputGrad);
        const bool had_comm = handle != nullptr;
        waitHandle(handle, l, &_stats[l].commIg, [this, l, had_comm] {
            const Tick update =
                had_comm ? _spec.layers[l].updateDelay(CommSlot::InputGrad)
                         : 0;
            compute(l, update, [this, l] { backwardWeight(l); });
        });
    });
}

void
NodeTrainer::backwardWeight(std::size_t l)
{
    compute(l, scaled(_spec.layers[l].wgCompute), [this, l] {
        // Fire-and-forget: the all-reduce overlaps with the rest of
        // back-propagation; only the next iteration's forward pass (or
        // the end of the run) waits on it.
        _wgHandles[l] = issue(l, CommSlot::WeightGrad);
        if (l == 0) {
            finishPass();
        } else {
            backwardLayer(l - 1);
        }
    });
}

void
NodeTrainer::finishPass()
{
    ++_pass;
    if (_pass < _opts.numPasses) {
        beginPass();
        return;
    }
    // Final pass: all weight gradients must land before training ends.
    drainFinalHandles(0);
}

void
NodeTrainer::drainFinalHandles(std::size_t l)
{
    if (l == _spec.layers.size()) {
        finishRun();
        return;
    }
    auto handle = std::move(_wgHandles[l]);
    _wgHandles[l] = nullptr;
    const bool had_comm = handle != nullptr;
    waitHandle(handle, l, &_stats[l].commWg, [this, l, had_comm] {
        const Tick update =
            had_comm ? _spec.layers[l].updateDelay(CommSlot::WeightGrad)
                     : 0;
        compute(l, update, [this, l] { drainFinalHandles(l + 1); });
    });
}

void
NodeTrainer::finishRun()
{
    _finished = true;
    _finishedAt = _sys.now();
    if (_onFinish)
        _onFinish();
}

Tick
NodeTrainer::totalExposed() const
{
    Tick t = 0;
    for (const LayerRunStats &s : _stats)
        t += s.exposed;
    return t;
}

Tick
NodeTrainer::totalCompute() const
{
    Tick t = 0;
    for (const LayerRunStats &s : _stats)
        t += s.compute;
    return t;
}

// --- WorkloadRun ----------------------------------------------------------

WorkloadRun::WorkloadRun(Cluster &cluster, WorkloadSpec spec,
                         TrainerOptions opts)
    : _cluster(cluster), _spec(std::move(spec)), _opts(std::move(opts))
{
    _trainers.reserve(std::size_t(cluster.numNodes()));
    _unfinished = cluster.numNodes();
    for (NodeId n = 0; n < cluster.numNodes(); ++n) {
        _trainers.push_back(std::make_unique<NodeTrainer>(
            cluster.node(n), _spec, _opts, [this] { --_unfinished; }));
    }
}

Tick
WorkloadRun::run()
{
    for (auto &t : _trainers)
        t->start();
    _cluster.run();
    if (_unfinished != 0)
        fatal("%d trainers did not finish (deadlock?)", _unfinished);
    _makespan = 0;
    for (auto &t : _trainers)
        _makespan = std::max(_makespan, t->totalTime());
    return _makespan;
}

double
WorkloadRun::exposedRatio() const
{
    if (_makespan == 0)
        return 0;
    return static_cast<double>(_trainers.front()->totalExposed()) /
           static_cast<double>(_makespan);
}

double
WorkloadRun::computeRatio() const
{
    if (_makespan == 0)
        return 0;
    return static_cast<double>(_trainers.front()->totalCompute()) /
           static_cast<double>(_makespan);
}

void
WorkloadRun::exportStats(StatGroup &g) const
{
    g.set("makespan.ticks", static_cast<double>(_makespan));
    g.set("exposed.ratio", exposedRatio());
    g.set("compute.ratio", computeRatio());
    g.set("passes", double(_opts.numPasses));
    g.set("layers", double(_spec.layers.size()));

    const std::vector<LayerRunStats> &stats = layerStats();
    for (std::size_t l = 0; l < stats.size(); ++l) {
        const LayerRunStats &s = stats[l];
        const std::string prefix =
            strprintf("layer%zu.%s.", l, _spec.layers[l].name.c_str());
        g.set(prefix + "compute", static_cast<double>(s.compute));
        g.set(prefix + "comm_fwd", static_cast<double>(s.commFwd));
        g.set(prefix + "comm_ig", static_cast<double>(s.commIg));
        g.set(prefix + "comm_wg", static_cast<double>(s.commWg));
        g.set(prefix + "comm_total",
              static_cast<double>(s.commTotal()));
        g.set(prefix + "exposed", static_cast<double>(s.exposed));
    }
}

} // namespace astra
