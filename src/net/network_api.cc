#include "net/network_api.hh"

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/trace.hh"

namespace astra
{

void
NetworkApi::deliver(const Message &msg)
{
    if (msg.dst < 0 || std::size_t(msg.dst) >= _receivers.size() ||
        !_receivers[std::size_t(msg.dst)]) {
        panic("message delivered to node %d with no receiver", msg.dst);
    }
    ++_delivered;
    _receivers[std::size_t(msg.dst)](msg);
}

void
NetworkApi::notifyLoss(const Message &msg, int link)
{
    ++_lostMessages;
    if (_lossHandler)
        _lossHandler(msg, link);
}

void
NetworkApi::exportStats(StatGroup &g) const
{
    g.set("delivered.messages", double(_delivered));
    if (_lostMessages)
        g.set("lost.messages", double(_lostMessages));
    g.set("byte.hops", double(_byteHops));
    g.set("energy.local_pj", _energy.localLinkPj);
    g.set("energy.package_pj", _energy.packageLinkPj);
    g.set("energy.scaleout_pj", _energy.scaleoutLinkPj);
    g.set("energy.router_pj", _energy.routerPj);
    g.set("energy.total_uj", _energy.totalUj());
}

void
NetworkApi::setupUtilLanes(std::vector<std::string> names,
                           std::vector<int> link_counts)
{
    _dimNames = std::move(names);
    _dimLinkCounts = std::move(link_counts);
    _dimBusy.assign(_dimNames.size(), 0);
    _dimBusyAtEmit.assign(_dimNames.size(), 0);
}

void
NetworkApi::emitUtilCounters(Tick now)
{
    const Tick window = now - _lastEmitAt;
    if (window == 0)
        return;
    for (std::size_t d = 0; d < _dimNames.size(); ++d) {
        const Tick busy = _dimBusy[d] - _dimBusyAtEmit[d];
        const double capacity =
            static_cast<double>(window) * _dimLinkCounts[d];
        _trace->counter(_tracePid, "net.util." + _dimNames[d], now,
                        safeDiv(static_cast<double>(busy), capacity));
        _dimBusyAtEmit[d] = _dimBusy[d];
    }
    _lastEmitAt = now;
    _nextCounterAt = now + kUtilCounterInterval;
}

} // namespace astra
