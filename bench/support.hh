/**
 * @file
 * Shared helpers for the figure-reproduction harnesses.
 *
 * Every binary in bench/ regenerates one table/figure of the paper's
 * evaluation (Sec. V): it sets up the experiment's platform
 * configuration, sweeps the paper's parameter, and prints the same
 * rows/series the paper plots. Pass --csv=<dir> to also write the
 * series as CSV, --quick for a reduced sweep (CI-friendly), and
 * --key=value to override any Table III parameter.
 */

#ifndef ASTRA_BENCH_SUPPORT_HH
#define ASTRA_BENCH_SUPPORT_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "common/csv.hh"
#include "common/stats.hh"
#include "common/units.hh"
#include "core/cluster.hh"

namespace astra::bench
{

/** Command-line state common to all harnesses. */
struct BenchArgs
{
    SimConfig overrides;   //!< parsed --key=value overrides
    std::string csvDir;    //!< --csv=<dir>, empty = stdout only
    bool quick = false;    //!< --quick: reduced sweeps
    int jobs = 0;          //!< --jobs=N sweep workers; 0 = all threads
    std::string reportJson; //!< --report-json=<path>, empty = off

    /** Raw overrides to re-apply onto per-experiment configs. */
    std::vector<std::pair<std::string, std::string>> rawOverrides;

    /**
     * Merged metric registries of every simulation the harness ran
     * (filled by timeCollectives/mergeReport when --report-json is
     * given); writeReport serializes it at the end of the run.
     */
    MetricRegistry report;
};

/** Parse argv; exits on --help. */
BenchArgs parseArgs(int argc, char **argv);

/** Apply the user's --key=value overrides onto @p cfg. */
void applyOverrides(const BenchArgs &args, SimConfig &cfg);

/** Print the figure banner. */
void banner(const std::string &fig, const std::string &what);

/** Geometric size sweep [lo, hi] with the given factor. */
std::vector<Bytes> sizeSweep(Bytes lo, Bytes hi, int factor = 4);

/**
 * Run one collective on a fresh cluster; returns comm time. When
 * @p metrics is non-null the run's full registry is merged into it.
 */
Tick timeCollective(const SimConfig &cfg, CollectiveKind kind,
                    Bytes bytes, MetricRegistry *metrics = nullptr);

/** One independent simulation of a figure sweep. */
struct CollectiveJob
{
    SimConfig cfg;
    CollectiveKind kind;
    Bytes bytes;
};

/**
 * Time every job, fanning the simulations out across args.jobs worker
 * threads (SweepRunner). Results are indexed like @p jobs_list — the
 * numbers and their order are identical to calling timeCollective in
 * a serial loop, only the wall-clock changes.
 */
std::vector<Tick> timeCollectives(BenchArgs &args,
                                  const std::vector<CollectiveJob> &jobs_list);

/** Emit @p table to stdout and, when requested, to <csvDir>/<name>. */
void emitTable(const BenchArgs &args, const std::string &name,
               const Table &table);

/**
 * Merge @p cluster's metric registry into args.report (no-op unless
 * --report-json was given). Call after running a cluster the harness
 * drives directly, outside timeCollectives.
 */
void mergeReport(BenchArgs &args, const Cluster &cluster);

/** Write args.report to --report-json=<path>; no-op when unset. */
void writeReport(const BenchArgs &args);

} // namespace astra::bench

#endif // ASTRA_BENCH_SUPPORT_HH
