file(REMOVE_RECURSE
  "libastra_workload.a"
)
